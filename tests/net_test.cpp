// Tests for the synchronous network simulator and sub-protocol framing.
#include <gtest/gtest.h>

#include "common/serial.hpp"
#include "net/parallel.hpp"
#include "net/simulator.hpp"
#include "net/subproto.hpp"

namespace srds {
namespace {

/// Test party: floods a fixed peer list with one byte per round for
/// `rounds` rounds, records everything it receives.
class FloodParty final : public Party {
 public:
  FloodParty(PartyId id, std::vector<PartyId> peers, std::size_t rounds)
      : id_(id), peers_(std::move(peers)), rounds_(rounds) {}

  std::vector<Message> on_round(std::size_t round,
                                const std::vector<Message>& inbox) override {
    for (const auto& m : inbox) received_.push_back(m);
    if (round >= rounds_) {
      done_ = true;
      return {};
    }
    std::vector<Message> out;
    for (auto p : peers_) {
      out.push_back(Message{id_, p, Bytes{static_cast<std::uint8_t>(round)}});
    }
    return out;
  }

  bool done() const override { return done_; }

  const std::vector<Message>& received() const { return received_; }

 private:
  PartyId id_;
  std::vector<PartyId> peers_;
  std::size_t rounds_;
  bool done_ = false;
  std::vector<Message> received_;
};

std::unique_ptr<Simulator> make_flood_sim(std::size_t n, std::size_t rounds) {
  std::vector<std::unique_ptr<Party>> parties;
  std::vector<bool> corrupt(n, false);
  for (PartyId i = 0; i < n; ++i) {
    std::vector<PartyId> peers;
    for (PartyId j = 0; j < n; ++j) {
      if (j != i) peers.push_back(j);
    }
    parties.push_back(std::make_unique<FloodParty>(i, peers, rounds));
  }
  return std::make_unique<Simulator>(std::move(parties), corrupt, nullptr);
}

TEST(Simulator, DeliversAllToAllNextRound) {
  auto sim = make_flood_sim(4, 1);
  sim->run(10);
  for (PartyId i = 0; i < 4; ++i) {
    auto* p = dynamic_cast<FloodParty*>(sim->party(i));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->received().size(), 3u);  // one from each other party
    for (const auto& m : p->received()) {
      EXPECT_EQ(m.to, i);
      EXPECT_NE(m.from, i);
    }
  }
}

TEST(Simulator, AccountsBytesSymmetrically) {
  auto sim = make_flood_sim(5, 2);
  sim->run(10);
  const auto& st = sim->stats();
  for (PartyId i = 0; i < 5; ++i) {
    EXPECT_EQ(st.party[i].bytes_sent, 2u * 4u);  // 2 rounds x 4 peers x 1 byte
    EXPECT_EQ(st.party[i].bytes_recv, 2u * 4u);
    EXPECT_EQ(st.party[i].msgs_sent, 8u);
    EXPECT_EQ(st.party[i].locality(), 4u);
  }
  EXPECT_EQ(st.total_bytes(), 5u * 8u);
  EXPECT_EQ(st.max_bytes_sent(), 8u);
  EXPECT_EQ(st.max_bytes_total(), 16u);
  EXPECT_EQ(st.max_locality(), 4u);
}

TEST(Simulator, StopsWhenAllHonestDone) {
  auto sim = make_flood_sim(3, 2);
  std::size_t rounds = sim->run(100);
  EXPECT_LE(rounds, 4u);
  EXPECT_EQ(sim->stats().rounds, rounds);
}

TEST(Simulator, RespectsMaxRounds) {
  // rounds_ = huge, so parties never finish; simulator must cap.
  auto sim = make_flood_sim(3, 1000000);
  EXPECT_EQ(sim->run(5), 5u);
}

/// Adversary that spoofs: tries to send with an honest `from` field.
class SpoofingAdversary final : public Adversary {
 public:
  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    if (round > 0) return {};
    return {
        Message{0, 1, to_bytes("spoofed-as-honest")},   // party 0 is honest
        Message{2, 1, to_bytes("legit-corrupt-msg")},   // party 2 is corrupt
        Message{2, 99, to_bytes("out-of-range-dest")},  // invalid recipient
    };
  }
};

class SinkParty final : public Party {
 public:
  explicit SinkParty(std::size_t rounds) : rounds_(rounds) {}
  std::vector<Message> on_round(std::size_t round, const std::vector<Message>& inbox) override {
    for (const auto& m : inbox) received_.push_back(m);
    if (round >= rounds_) done_ = true;
    return {};
  }
  bool done() const override { return done_; }
  const std::vector<Message>& received() const { return received_; }

 private:
  std::size_t rounds_;
  bool done_ = false;
  std::vector<Message> received_;
};

TEST(Simulator, ChannelsAreAuthenticated) {
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<SinkParty>(3));
  parties.push_back(std::make_unique<SinkParty>(3));
  parties.push_back(nullptr);  // corrupt
  std::vector<bool> corrupt{false, false, true};
  Simulator sim(std::move(parties), corrupt, std::make_unique<SpoofingAdversary>());
  sim.run(10);
  auto* p1 = dynamic_cast<SinkParty*>(sim.party(1));
  ASSERT_NE(p1, nullptr);
  // Only the legitimately-addressed corrupt message arrives; the spoof and
  // the out-of-range message are dropped by the network.
  ASSERT_EQ(p1->received().size(), 1u);
  EXPECT_EQ(p1->received()[0].from, 2u);
  EXPECT_EQ(to_string(p1->received()[0].payload), "legit-corrupt-msg");
}

TEST(Simulator, ConstructorValidatesSlots) {
  {
    std::vector<std::unique_ptr<Party>> parties;
    parties.push_back(std::make_unique<SinkParty>(1));
    std::vector<bool> corrupt{true};  // corrupt slot holding honest logic
    EXPECT_THROW(Simulator(std::move(parties), corrupt, nullptr), std::invalid_argument);
  }
  {
    std::vector<std::unique_ptr<Party>> parties;
    parties.push_back(nullptr);
    std::vector<bool> corrupt{false};  // honest slot missing logic
    EXPECT_THROW(Simulator(std::move(parties), corrupt, nullptr), std::invalid_argument);
  }
}

/// Adversary that records what it saw (to verify rushing visibility).
class PeekingAdversary final : public Adversary {
 public:
  explicit PeekingAdversary(std::vector<std::size_t>* honest_msgs_seen)
      : seen_(honest_msgs_seen) {}
  std::vector<Message> on_round(std::size_t, const std::vector<Message>&,
                                const std::vector<Message>& honest_outbox) override {
    seen_->push_back(honest_outbox.size());
    return {};
  }

 private:
  std::vector<std::size_t>* seen_;
};

TEST(Simulator, AdversaryIsRushing) {
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<FloodParty>(0, std::vector<PartyId>{1}, 1));
  parties.push_back(std::make_unique<SinkParty>(2));
  parties.push_back(nullptr);
  std::vector<bool> corrupt{false, false, true};
  std::vector<std::size_t> seen;
  Simulator sim(std::move(parties), corrupt, std::make_unique<PeekingAdversary>(&seen));
  sim.run(10);
  // Round 0: party 0 sends one message; the adversary saw it the same round.
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen[0], 1u);
}

// --- Fault-injection layer (net/faults.hpp) -------------------------------

/// Sends one uniquely-tagged message to party 1 per round for `rounds`
/// rounds; stays alive until told how many messages to expect back.
class CountingReceiver final : public Party {
 public:
  CountingReceiver(std::size_t expect, std::size_t give_up_round)
      : expect_(expect), give_up_(give_up_round) {}
  std::vector<Message> on_round(std::size_t round,
                                const std::vector<Message>& inbox) override {
    for (const auto& m : inbox) received_.push_back(m);
    if (received_.size() >= expect_ || round >= give_up_) done_ = true;
    return {};
  }
  bool done() const override { return done_; }
  const std::vector<Message>& received() const { return received_; }

 private:
  std::size_t expect_, give_up_;
  bool done_ = false;
  std::vector<Message> received_;
};

TEST(FaultInjection, DropsAreCountedAndConserved) {
  auto run_once = [] {
    auto sim = make_flood_sim(4, 6);
    FaultPlan plan;
    plan.seed = 42;
    plan.drop_prob = 0.5;
    sim->set_fault_plan(plan);
    sim->run(20);
    return sim->stats();
  };
  NetworkStats a = run_once();
  EXPECT_GT(a.faults.dropped, 0u);
  // Every sent message is either received or dropped — nothing vanishes
  // unaccounted (no delay/duplication in this plan).
  std::size_t sent = 0, recv = 0;
  for (const auto& p : a.party) {
    sent += p.msgs_sent;
    recv += p.msgs_recv;
  }
  EXPECT_EQ(sent, recv + a.faults.dropped);
  // Determinism: the same plan reproduces byte-identical stats.
  NetworkStats b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.faults, b.faults);
}

TEST(FaultInjection, DelayedMessageArrivesLaterExactlyOnce) {
  std::vector<std::unique_ptr<Party>> parties;
  const std::size_t kSends = 5;
  parties.push_back(std::make_unique<FloodParty>(0, std::vector<PartyId>{1}, kSends));
  parties.push_back(std::make_unique<CountingReceiver>(kSends, 30));
  Simulator sim(std::move(parties), std::vector<bool>{false, false}, nullptr);
  FaultPlan plan;
  plan.seed = 9;
  plan.delay_prob = 1.0;  // defer every message
  plan.max_delay = 2;
  sim.set_fault_plan(plan);
  sim.run(40);
  const auto& st = sim.stats();
  EXPECT_EQ(st.faults.delayed, kSends);
  EXPECT_EQ(st.faults.late_delivered, kSends);
  EXPECT_EQ(st.faults.dropped, 0u);
  auto* rx = dynamic_cast<CountingReceiver*>(sim.party(1));
  ASSERT_NE(rx, nullptr);
  // Each of the k tagged messages arrived exactly once, strictly later than
  // the perfect-delivery round. FloodParty tags payload[0] with the send
  // round, so the multiset of tags must be {0, 1, ..., k-1}.
  ASSERT_EQ(rx->received().size(), kSends);
  std::vector<int> tally(kSends, 0);
  for (const auto& m : rx->received()) {
    ASSERT_LT(m.payload[0], kSends);
    ++tally[m.payload[0]];
  }
  for (std::size_t r = 0; r < kSends; ++r) EXPECT_EQ(tally[r], 1) << "send round " << r;
}

TEST(FaultInjection, DuplicationDeliversExactlyTwoCopies) {
  auto sim = make_flood_sim(3, 4);
  FaultPlan plan;
  plan.seed = 10;
  plan.duplicate_prob = 1.0;
  sim->set_fault_plan(plan);
  sim->run(20);
  const auto& st = sim->stats();
  std::size_t sent = 0, recv = 0;
  for (const auto& p : st.party) {
    sent += p.msgs_sent;
    recv += p.msgs_recv;
  }
  EXPECT_EQ(st.faults.duplicated, sent);
  EXPECT_EQ(recv, 2 * sent);
}

TEST(FaultInjection, CrashStopHaltsPartyMidRun) {
  auto sim = make_flood_sim(3, 6);
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{2, 2});
  sim->set_fault_plan(plan);
  sim->run(20);
  EXPECT_TRUE(sim->is_crashed(2));
  EXPECT_FALSE(sim->is_crashed(0));
  EXPECT_EQ(sim->stats().faults.crashed_parties, 1u);
  // Party 2 sent during rounds 0 and 1 only (2 peers x 1 byte each).
  EXPECT_EQ(sim->stats().party[2].bytes_sent, 4u);
  EXPECT_EQ(sim->stats().party[0].bytes_sent, 12u);  // all 6 rounds
}

TEST(FaultInjection, PartitionCutsExactlyCrossTraffic) {
  auto sim = make_flood_sim(4, 4);
  FaultPlan plan;
  PartitionWindow w;
  w.from_round = 1;
  w.until_round = 3;  // send rounds 1 and 2
  w.group = {0, 1};
  plan.partitions.push_back(w);
  sim->set_fault_plan(plan);
  sim->run(20);
  // Per partitioned send round: 2x2 cross pairs in each direction = 8 msgs.
  EXPECT_EQ(sim->stats().faults.partitioned, 16u);
  EXPECT_EQ(sim->stats().faults.dropped, 0u);
  // Intra-side traffic flowed: party 0 still heard party 1 those rounds.
  auto* p0 = dynamic_cast<FloodParty*>(sim->party(0));
  ASSERT_NE(p0, nullptr);
  // 4 rounds x 3 peers = 12 expected without faults; minus 2 rounds x 2
  // cross-cut senders = 4 lost.
  EXPECT_EQ(p0->received().size(), 8u);
}

/// Adversary that sends one oversized and one in-bounds payload.
class OversizeAdversary final : public Adversary {
 public:
  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    if (round > 0) return {};
    return {
        Message{2, 0, Bytes(100, 0xEE)},  // over the 8-byte cap below
        Message{2, 0, Bytes(4, 0xDD)},    // fine
    };
  }
};

TEST(FaultInjection, AdversaryPayloadBoundEnforced) {
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<SinkParty>(3));
  parties.push_back(std::make_unique<SinkParty>(3));
  parties.push_back(nullptr);  // corrupt
  std::vector<bool> corrupt{false, false, true};
  Simulator sim(std::move(parties), corrupt, std::make_unique<OversizeAdversary>());
  sim.set_max_adversary_payload(8);
  sim.run(10);
  EXPECT_EQ(sim.stats().faults.adversary_rejected, 1u);
  auto* p0 = dynamic_cast<SinkParty*>(sim.party(0));
  ASSERT_NE(p0, nullptr);
  ASSERT_EQ(p0->received().size(), 1u);
  EXPECT_EQ(p0->received()[0].payload.size(), 4u);
}

TEST(FaultInjection, SpoofedAdversaryMessagesAreCounted) {
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<SinkParty>(3));
  parties.push_back(std::make_unique<SinkParty>(3));
  parties.push_back(nullptr);
  std::vector<bool> corrupt{false, false, true};
  Simulator sim(std::move(parties), corrupt, std::make_unique<SpoofingAdversary>());
  sim.run(10);
  // The spoof (honest from) and the out-of-range destination are rejected.
  EXPECT_EQ(sim.stats().faults.adversary_rejected, 2u);
}

// --- Fault-plan validation (errors reject, warnings surface) ---------------

TEST(FaultPlanValidation, ErrorsRejectThePlanAtInstall) {
  {
    auto sim = make_flood_sim(4, 2);
    FaultPlan plan;
    plan.drop_prob = 1.5;  // not a probability
    EXPECT_THROW(sim->set_fault_plan(plan), std::invalid_argument);
  }
  {
    auto sim = make_flood_sim(4, 2);
    FaultPlan plan;
    PartitionWindow w;
    w.from_round = 0;
    w.until_round = 5;
    w.group = {0, 99};  // 99 out of range for n = 4
    plan.partitions.push_back(w);
    EXPECT_THROW(sim->set_fault_plan(plan), std::invalid_argument);
  }
  {
    auto sim = make_flood_sim(4, 2);
    FaultPlan plan;
    plan.churn.push_back(ChurnWindow{1, 5, 3});  // until_round <= from_round
    EXPECT_THROW(sim->set_fault_plan(plan), std::invalid_argument);
  }
}

TEST(FaultPlanValidation, WarningsAreSurfacedNotSilent) {
  FaultPlan plan;
  plan.delay_prob = 0.5;  // inert without max_delay
  plan.crashes.push_back(CrashFault{2, 1});  // party 2 will be corrupt below
  PartitionWindow a;
  a.from_round = 0;
  a.until_round = 6;
  a.group = {0, 1};
  PartitionWindow b = a;  // same cut, overlapping in time
  b.from_round = 4;
  b.until_round = 9;
  plan.partitions.push_back(a);
  plan.partitions.push_back(b);

  std::vector<bool> corrupt{false, false, true, false};
  auto issues = validate_fault_plan(plan, 4, &corrupt);
  ASSERT_EQ(issues.size(), 3u);
  for (const auto& i : issues) {
    EXPECT_EQ(i.severity, FaultPlanIssue::Severity::kWarning) << i.what;
  }
  EXPECT_NE(issues[0].what.find("delay_prob"), std::string::npos);
  EXPECT_NE(issues[1].what.find("corrupt party 2"), std::string::npos);
  EXPECT_NE(issues[2].what.find("overlap"), std::string::npos);

  // Installing a warnings-only plan succeeds and keeps the findings
  // queryable — the simulator never swallows them.
  std::vector<std::unique_ptr<Party>> parties;
  for (int i = 0; i < 3; ++i) parties.push_back(std::make_unique<SinkParty>(2));
  parties.push_back(nullptr);
  std::vector<bool> mask{false, false, false, true};
  Simulator sim(std::move(parties), mask, std::make_unique<SpoofingAdversary>());
  FaultPlan ok;
  ok.delay_prob = 0.5;  // warning only
  sim.set_fault_plan(ok);
  ASSERT_EQ(sim.plan_issues().size(), 1u);
  EXPECT_EQ(sim.plan_issues()[0].severity, FaultPlanIssue::Severity::kWarning);
}

TEST(FaultInjection, CrashedPartyLeavesPartitionGroups) {
  // Party 0 sits inside a partitioned group and crashes mid-window. From the
  // crash round on, traffic to/from it must not be attributed to the cut:
  // the dead mailbox is ordinary (non-partition) delivery.
  FaultPlan plan;
  PartitionWindow w;
  w.from_round = 0;
  w.until_round = 10;
  w.group = {0, 1};
  plan.partitions.push_back(w);
  plan.crashes.push_back(CrashFault{0, 3});
  FaultInjector inj(plan, 4);
  Message cross{0, 2, Bytes{1}};
  EXPECT_FALSE(inj.on_message(2, cross).deliver);  // pre-crash: cut applies
  EXPECT_TRUE(inj.on_message(2, cross).partitioned);
  EXPECT_TRUE(inj.on_message(3, cross).deliver);  // post-crash: no cut
  EXPECT_FALSE(inj.on_message(3, cross).partitioned);
  Message inbound{2, 0, Bytes{1}};
  EXPECT_FALSE(inj.on_message(3, inbound).partitioned);
  // The surviving pair keeps the cut for the rest of the window.
  Message live{1, 2, Bytes{1}};
  EXPECT_TRUE(inj.on_message(3, live).partitioned);
}

// --- Adaptive corruption (budgeted mid-run party seizure) ------------------

/// Adversary that asks to corrupt a fixed request list at round 0 and
/// records every party actually handed over.
class GrabbyAdversary final : public Adversary {
 public:
  explicit GrabbyAdversary(std::vector<PartyId> wants) : wants_(std::move(wants)) {}
  std::vector<Message> on_round(std::size_t, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    return {};
  }
  std::vector<PartyId> corruption_requests(std::size_t round) override {
    requests_solicited_ = true;
    return round == 0 ? wants_ : std::vector<PartyId>{};
  }
  void on_corrupted(std::size_t, PartyId p, Party* seized) override {
    EXPECT_NE(seized, nullptr);
    granted_.push_back(p);
  }
  std::vector<PartyId> granted_;
  bool requests_solicited_ = false;

 private:
  std::vector<PartyId> wants_;
};

TEST(AdaptiveCorruption, BudgetGrantsInOrderAndCountsDenials) {
  std::vector<std::unique_ptr<Party>> parties;
  for (int i = 0; i < 3; ++i) parties.push_back(std::make_unique<SinkParty>(3));
  parties.push_back(nullptr);  // slot 3 statically corrupt
  std::vector<bool> corrupt{false, false, false, true};
  // Requests: honest, out-of-range, already-corrupt, honest, honest.
  auto adv = std::make_unique<GrabbyAdversary>(std::vector<PartyId>{0, 99, 3, 1, 2});
  auto* advp = adv.get();
  Simulator sim(std::move(parties), corrupt, std::move(adv));
  sim.set_corruption_budget(2);
  EXPECT_EQ(sim.corruption_budget(), 2u);
  sim.run(10);
  // Grants follow the adversary's priority order until the budget runs out.
  ASSERT_EQ(advp->granted_, (std::vector<PartyId>{0, 1}));
  EXPECT_TRUE(sim.is_corrupt(0));
  EXPECT_TRUE(sim.is_corrupt(1));
  EXPECT_FALSE(sim.is_corrupt(2));
  EXPECT_EQ(sim.stats().faults.adaptive_corruptions, 2u);
  // Denied: 99 (out of range), 3 (already corrupt), 2 (budget exhausted).
  EXPECT_EQ(sim.stats().faults.corruptions_denied, 3u);
}

TEST(AdaptiveCorruption, ZeroBudgetNeverSolicitsRequests) {
  std::vector<std::unique_ptr<Party>> parties;
  for (int i = 0; i < 2; ++i) parties.push_back(std::make_unique<SinkParty>(2));
  parties.push_back(nullptr);
  std::vector<bool> corrupt{false, false, true};
  auto adv = std::make_unique<GrabbyAdversary>(std::vector<PartyId>{0, 1});
  auto* advp = adv.get();
  Simulator sim(std::move(parties), corrupt, std::move(adv));
  sim.run(10);  // default budget = 0: static-corruption model unchanged
  EXPECT_FALSE(advp->requests_solicited_);
  EXPECT_EQ(sim.stats().faults.adaptive_corruptions, 0u);
  EXPECT_FALSE(sim.is_corrupt(0));
}

// --- Churn (leave / rejoin windows) ----------------------------------------

TEST(Churn, OfflineWindowDropsDeliveriesAndFreezesParty) {
  // Party 0 floods party 1 with one round-tagged byte per round; party 1 is
  // churned offline during rounds [2, 4). Sends from rounds 1 and 2 would be
  // delivered in rounds 2 and 3 — both lost to churn; everything else
  // arrives, and party 1 resumes with its state intact.
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<FloodParty>(0, std::vector<PartyId>{1}, 6));
  parties.push_back(std::make_unique<CountingReceiver>(4, 30));
  Simulator sim(std::move(parties), std::vector<bool>{false, false}, nullptr);
  FaultPlan plan;
  plan.churn.push_back(ChurnWindow{1, 2, 4});
  sim.set_fault_plan(plan);
  sim.run(40);
  EXPECT_EQ(sim.stats().faults.churn_dropped, 2u);
  EXPECT_EQ(sim.stats().faults.dropped, 0u);
  auto* rx = dynamic_cast<CountingReceiver*>(sim.party(1));
  ASSERT_NE(rx, nullptr);
  std::vector<std::uint8_t> tags;
  for (const auto& m : rx->received()) tags.push_back(m.payload[0]);
  EXPECT_EQ(tags, (std::vector<std::uint8_t>{0, 3, 4, 5}));
}

TEST(SubProto, TagRoundTrip) {
  Bytes body = to_bytes("payload");
  Bytes tagged = tag_body(7, 123456789ULL, body);
  std::uint32_t phase = 0;
  std::uint64_t inst = 0;
  Bytes out;
  ASSERT_TRUE(untag_body(tagged, phase, inst, out));
  EXPECT_EQ(phase, 7u);
  EXPECT_EQ(inst, 123456789ULL);
  EXPECT_EQ(out, body);
}

TEST(SubProto, UntagRejectsShortPayload) {
  std::uint32_t phase;
  std::uint64_t inst;
  Bytes body;
  EXPECT_FALSE(untag_body(Bytes{1, 2, 3}, phase, inst, body));
}

TEST(SubProto, EmptyBodyAllowed) {
  Bytes tagged = tag_body(1, 2, Bytes{});
  std::uint32_t phase;
  std::uint64_t inst;
  Bytes body;
  ASSERT_TRUE(untag_body(tagged, phase, inst, body));
  EXPECT_TRUE(body.empty());
}

/// Child double for ParallelProto: runs `rounds` subrounds, emits one tagged
/// byte pair to party 0 each subround, records every body it is handed.
class ProbeProto final : public SubProtocol {
 public:
  ProbeProto(std::size_t rounds, std::uint8_t tag) : rounds_(rounds), tag_(tag) {}

  std::size_t rounds() const override { return rounds_; }

  std::vector<std::pair<PartyId, Bytes>> step(
      std::size_t subround, const std::vector<TaggedMsg>& inbox) override {
    for (const auto& m : inbox) got_.push_back(m.body);
    return {{0, Bytes{tag_, static_cast<std::uint8_t>(subround)}}};
  }

  const std::vector<Bytes>& got() const { return got_; }

 private:
  std::size_t rounds_;
  std::uint8_t tag_;
  std::vector<Bytes> got_;
};

TEST(ParallelProtoFraming, ChildrenMayDifferInRoundsAndGarbageIsCounted) {
  std::vector<std::unique_ptr<SubProtocol>> children;
  children.push_back(std::make_unique<ProbeProto>(1, 0xA));
  children.push_back(std::make_unique<ProbeProto>(3, 0xB));
  ParallelProto par(std::move(children));
  EXPECT_EQ(par.rounds(), 3u);  // the composite runs as long as its longest child

  auto out0 = par.step(0, {});
  EXPECT_EQ(out0.size(), 2u);  // both children still running

  // Subround 1: child 0's schedule has ended. A *well-formed* frame addressed
  // to it is dropped silently (late traffic for a shorter child is
  // legitimate); a truncated index header or an out-of-range index is an
  // attack signal and must be counted as malformed.
  std::vector<TaggedMsg> inbox;
  {
    Writer w;
    w.u32(0);  // ended child — silent drop, NOT malformed
    w.u8(0x7);
    inbox.push_back(TaggedMsg{1, std::move(w).take()});
  }
  {
    Writer w;
    w.u32(9);  // out-of-range child index — malformed
    w.u8(0x7);
    inbox.push_back(TaggedMsg{1, std::move(w).take()});
  }
  inbox.push_back(TaggedMsg{1, Bytes{1, 2}});  // truncated index header — malformed

  auto out1 = par.step(1, inbox);
  ASSERT_EQ(out1.size(), 1u);  // only the 3-round child emits now
  Reader r(out1[0].second);
  EXPECT_EQ(r.u32(), 1u);  // and its frames carry its child index
  EXPECT_EQ(par.malformed_frames(), 2u);

  // The ended child never saw the late frame; the live child saw nothing.
  EXPECT_TRUE(static_cast<const ProbeProto*>(par.child(0))->got().empty());
  EXPECT_TRUE(static_cast<const ProbeProto*>(par.child(1))->got().empty());
}

}  // namespace
}  // namespace srds

// Tests for the lower-bound isolation experiments (Theorems 1.3 / 1.4) and
// the broadcast-service corollary (Corollary 1.2(1)).
#include <gtest/gtest.h>

#include "ba/runner.hpp"
#include "lb/isolation.hpp"

namespace srds {
namespace {

IsolationConfig lb_config(std::size_t n, std::uint64_t seed) {
  IsolationConfig c;
  c.n = n;
  c.t = n / 4;
  c.seed = seed;
  return c;
}

TEST(IsolationAttack, CrsOnlySingleRoundBoostFails) {
  // Theorem 1.3: with only public setup, the adversary's Θ(n) identities
  // outvote the target's polylog honest in-degree.
  for (std::size_t n : {256u, 1024u}) {
    auto out = run_isolation_attack(BoostSetup::kCrsOnly, lb_config(n, 1));
    EXPECT_TRUE(out.target_fooled) << "n=" << n;
    EXPECT_GT(out.forged_support, out.honest_support) << "n=" << n;
  }
}

TEST(IsolationAttack, PlainSignaturesDoNotHelp) {
  // A PKI alone stops impersonation but not vote flooding: corrupt parties
  // sign the wrong value *themselves*. This is the gap SRDS fills.
  auto out = run_isolation_attack(BoostSetup::kPkiPlainSigs, lb_config(512, 2));
  EXPECT_TRUE(out.target_fooled);
}

TEST(IsolationAttack, SrdsCertificateDefeatsTheAttack) {
  // π_ba's step 7/8: the certificate is unforgeable below threshold, so a
  // single polylog-size round suffices for the isolated party.
  for (std::size_t n : {256u, 1024u}) {
    auto out = run_isolation_attack(BoostSetup::kPkiSrds, lb_config(n, 3));
    EXPECT_FALSE(out.target_fooled) << "n=" << n;
    EXPECT_TRUE(out.target_correct) << "n=" << n;
    EXPECT_GT(out.honest_support, 0u) << "n=" << n;
  }
}

TEST(IsolationAttack, InvertedOwfBreaksEvenSrds) {
  // Theorem 1.4: if one-way functions are invertible the adversary signs on
  // behalf of everyone and forges the certificate.
  auto out = run_isolation_attack(BoostSetup::kPkiSrdsInvertedKeys, lb_config(256, 4));
  EXPECT_TRUE(out.target_fooled);
}

TEST(IsolationAttack, GapWidensWithN) {
  // The forged-vs-honest support gap grows linearly in n (honest support is
  // polylog), matching the asymptotic statement.
  auto small = run_isolation_attack(BoostSetup::kCrsOnly, lb_config(256, 5));
  auto large = run_isolation_attack(BoostSetup::kCrsOnly, lb_config(2048, 5));
  double gap_small = static_cast<double>(small.forged_support) /
                     static_cast<double>(small.honest_support + 1);
  double gap_large = static_cast<double>(large.forged_support) /
                     static_cast<double>(large.honest_support + 1);
  EXPECT_GT(gap_large, gap_small);
}

// --- Corollary 1.2(1): broadcast service ---

TEST(BroadcastService, DeliversEveryBroadcast) {
  BroadcastRunConfig c;
  c.n = 128;
  c.ell = 3;
  c.beta = 0.1;
  c.seed = 6;
  auto r = run_broadcast_service(c);
  EXPECT_TRUE(r.agreement);
  EXPECT_GE(static_cast<double>(r.delivered), 0.9 * static_cast<double>(r.possible));
}

TEST(BroadcastService, CostScalesLinearlyInEll) {
  BroadcastRunConfig c;
  c.n = 128;
  c.beta = 0.0;
  c.seed = 7;
  c.ell = 1;
  auto one = run_broadcast_service(c);
  c.ell = 4;
  auto four = run_broadcast_service(c);
  double growth = static_cast<double>(four.stats.max_bytes_total()) /
                  static_cast<double>(one.stats.max_bytes_total());
  EXPECT_GT(growth, 2.5);  // roughly linear in ell...
  EXPECT_LT(growth, 6.0);  // ...with no super-linear blowup
}

TEST(BroadcastService, OwfVariantWorks) {
  BroadcastRunConfig c;
  c.n = 128;
  c.ell = 2;
  c.beta = 0.1;
  c.seed = 8;
  c.protocol = BoostProtocol::kPiBaOwf;
  auto r = run_broadcast_service(c);
  EXPECT_TRUE(r.agreement);
  EXPECT_GE(static_cast<double>(r.delivered), 0.9 * static_cast<double>(r.possible));
}

}  // namespace
}  // namespace srds

// π_ba under an actively malicious adversary (ba/attack.hpp): value
// conflicts on every dissemination edge, base-signature replay, garbage
// aggregates, forged-certificate floods. Safety must hold throughout.
#include <gtest/gtest.h>

#include "ba/runner.hpp"

namespace srds {
namespace {

BaRunConfig attack_config(BoostProtocol p, std::size_t n, double beta,
                          std::uint64_t seed) {
  BaRunConfig c;
  c.n = n;
  c.beta = beta;
  c.seed = seed;
  c.protocol = p;
  c.active_adversary = true;
  return c;
}

class ActiveAttackSweep
    : public ::testing::TestWithParam<std::tuple<BoostProtocol, std::uint64_t>> {};

TEST_P(ActiveAttackSweep, SafetyAndValidityHold) {
  auto [proto, seed] = GetParam();
  auto r = run_ba(attack_config(proto, 128, 0.20, seed));
  EXPECT_TRUE(r.agreement) << protocol_name(proto);
  ASSERT_TRUE(r.value.has_value()) << protocol_name(proto);
  // Validity: no honest party may adopt the attacker's y' = 0.
  EXPECT_TRUE(*r.value) << protocol_name(proto);
  EXPECT_EQ(r.correct, r.decided) << protocol_name(proto);
  // Liveness: the attack must not stop (almost) everyone from deciding.
  EXPECT_GE(r.decided_fraction(), 0.9) << protocol_name(proto);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ActiveAttackSweep,
    ::testing::Combine(::testing::Values(BoostProtocol::kPiBaOwf,
                                         BoostProtocol::kPiBaSnark),
                       ::testing::Values(std::uint64_t{21}, std::uint64_t{22},
                                         std::uint64_t{23})));

TEST(ActiveAttack, HigherCorruptionStillSafe) {
  auto r = run_ba(attack_config(BoostProtocol::kPiBaSnark, 256, 0.25, 31));
  EXPECT_TRUE(r.agreement);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_TRUE(*r.value);
  EXPECT_EQ(r.correct, r.decided);
}

TEST(ActiveAttack, AttackInflatesAdversaryBytesNotOutcome) {
  auto silent = run_ba(attack_config(BoostProtocol::kPiBaSnark, 128, 0.2, 41));
  BaRunConfig cfg = attack_config(BoostProtocol::kPiBaSnark, 128, 0.2, 41);
  cfg.active_adversary = false;
  auto quiet = run_ba(cfg);
  // The attacker sends plenty (flood phases) yet changes no honest output.
  EXPECT_GT(silent.stats.total_bytes(), quiet.stats.total_bytes());
  EXPECT_EQ(silent.value, quiet.value);
}

}  // namespace
}  // namespace srds

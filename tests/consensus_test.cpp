// Tests for Dolev-Strong broadcast, committee BA, coin tossing, Shamir
// sharing and phase-king — including adversarial executions.
#include <gtest/gtest.h>

#include <set>

#include "common/serial.hpp"
#include "consensus/coin_toss.hpp"
#include "consensus/committee_ba.hpp"
#include "consensus/dolev_strong.hpp"
#include "consensus/field.hpp"
#include "consensus/phase_king.hpp"
#include "consensus/shamir.hpp"
#include "crypto/sha256.hpp"
#include "sim_helpers.hpp"

namespace srds {
namespace {

using testing::hosted;
using testing::make_subproto_sim;

// --- GF(2^61-1) ---

TEST(Gf61, BasicIdentities) {
  EXPECT_EQ(Gf61::add(Gf61::kP - 1, 1), 0u);
  EXPECT_EQ(Gf61::sub(0, 1), Gf61::kP - 1);
  EXPECT_EQ(Gf61::mul(3, 5), 15u);
  EXPECT_EQ(Gf61::reduce(Gf61::kP), 0u);
}

TEST(Gf61, InverseProperty) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    std::uint64_t a = 1 + rng.below(Gf61::kP - 1);
    EXPECT_EQ(Gf61::mul(a, Gf61::inv(a)), 1u);
  }
}

TEST(Gf61, DistributiveLaw) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    std::uint64_t a = rng.below(Gf61::kP), b = rng.below(Gf61::kP), c = rng.below(Gf61::kP);
    EXPECT_EQ(Gf61::mul(a, Gf61::add(b, c)),
              Gf61::add(Gf61::mul(a, b), Gf61::mul(a, c)));
  }
}

// --- Shamir ---

class ShamirSweep : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ShamirSweep, ShareReconstructRoundTrip) {
  auto [t, n] = GetParam();
  Rng rng(17 + t * 31 + n);
  std::uint64_t secret = rng.below(Gf61::kP);
  auto shares = shamir_share(secret, t, n, rng);
  ASSERT_EQ(shares.size(), n);
  // Any t+1 shares reconstruct.
  for (int trial = 0; trial < 5; ++trial) {
    auto idx = rng.subset(n, t + 1);
    std::vector<Share> subset;
    for (auto i : idx) subset.push_back(shares[i]);
    auto rec = shamir_reconstruct(subset, t);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(*rec, secret);
  }
  EXPECT_TRUE(shamir_consistent(shares, t));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ShamirSweep,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 4},
                                           std::pair<std::size_t, std::size_t>{2, 7},
                                           std::pair<std::size_t, std::size_t>{3, 10},
                                           std::pair<std::size_t, std::size_t>{5, 16},
                                           std::pair<std::size_t, std::size_t>{0, 1}));

TEST(Shamir, TooFewSharesFail) {
  Rng rng(3);
  auto shares = shamir_share(42, 3, 8, rng);
  std::vector<Share> few(shares.begin(), shares.begin() + 3);
  EXPECT_FALSE(shamir_reconstruct(few, 3).has_value());
}

TEST(Shamir, InconsistentSharesDetected) {
  Rng rng(4);
  auto shares = shamir_share(42, 2, 8, rng);
  shares[5].y = Gf61::add(shares[5].y, 1);
  EXPECT_FALSE(shamir_consistent(shares, 2));
}

TEST(Shamir, DuplicatePointsIgnored) {
  Rng rng(5);
  auto shares = shamir_share(7, 1, 4, rng);
  std::vector<Share> dup{shares[0], shares[0], shares[1]};
  auto rec = shamir_reconstruct(dup, 1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, 7u);
}

TEST(Shamir, SecrecyShapeDifferentPolysSameShareSubset) {
  // t shares are consistent with any secret: interpolating t points plus a
  // guessed secret always succeeds, so t points carry no information.
  Rng rng(6);
  auto shares = shamir_share(1234, 2, 6, rng);
  std::vector<Share> two{shares[0], shares[1]};
  for (std::uint64_t guess : {0ULL, 99ULL, 123456789ULL}) {
    std::vector<Share> with_guess = two;
    with_guess.push_back(Share{0 + 7, 0});  // a third point can complete...
    (void)guess;
  }
  SUCCEED();  // structural property; the real check is TooFewSharesFail
}

TEST(Shamir, RejectsBadParameters) {
  Rng rng(7);
  EXPECT_THROW(shamir_share(1, 4, 4, rng), std::invalid_argument);
  EXPECT_THROW(shamir_share(1, 0, 0, rng), std::invalid_argument);
}

// --- Dolev-Strong ---

struct DsFixture {
  std::size_t n = 8;
  std::vector<PartyId> members{0, 1, 2, 3, 4, 5, 6};
  std::size_t t = 2;
  SimSigRegistryPtr registry = std::make_shared<SimSigRegistry>(8, 99);
  Bytes domain = to_bytes("test-ds");
};

std::unique_ptr<Simulator> ds_sim(const DsFixture& fx, std::size_t sender_idx,
                                  const Bytes& value, const std::vector<bool>& corrupt,
                                  std::unique_ptr<Adversary> adv) {
  auto factory = [&](PartyId i) -> std::unique_ptr<SubProtocol> {
    if (std::find(fx.members.begin(), fx.members.end(), i) == fx.members.end()) {
      // Non-member party: trivial no-op protocol.
      class Idle final : public SubProtocol {
       public:
        std::size_t rounds() const override { return 1; }
        std::vector<std::pair<PartyId, Bytes>> step(std::size_t,
                                                    const std::vector<TaggedMsg>&) override {
          return {};
        }
      };
      return std::make_unique<Idle>();
    }
    std::optional<Bytes> input;
    if (fx.members[sender_idx] == i) input = value;
    return std::make_unique<DolevStrongProto>(fx.registry, fx.members, sender_idx, fx.t,
                                              fx.domain, i, input);
  };
  return make_subproto_sim(fx.n, corrupt, factory, std::move(adv));
}

TEST(DolevStrong, HonestSenderDelivers) {
  DsFixture fx;
  Bytes value = to_bytes("v0");
  std::vector<bool> corrupt(fx.n, false);
  auto sim = ds_sim(fx, 0, value, corrupt, nullptr);
  sim->run(32);
  for (PartyId i : fx.members) {
    auto* ds = hosted<DolevStrongProto>(*sim, i);
    ASSERT_NE(ds, nullptr);
    ASSERT_TRUE(ds->output().has_value()) << "member " << i;
    EXPECT_EQ(*ds->output(), value);
  }
}

TEST(DolevStrong, SilentSenderGivesBottom) {
  DsFixture fx;
  std::vector<bool> corrupt(fx.n, false);
  corrupt[fx.members[1]] = false;
  corrupt[fx.members[0]] = true;  // sender corrupt & silent
  auto sim = ds_sim(fx, 0, to_bytes("unused"), corrupt, nullptr);
  sim->run(32);
  for (PartyId i : fx.members) {
    if (corrupt[i]) continue;
    auto* ds = hosted<DolevStrongProto>(*sim, i);
    ASSERT_NE(ds, nullptr);
    EXPECT_FALSE(ds->output().has_value());
  }
}

/// Equivocating sender: signs two different values and sends one to each
/// half of the committee in round 0, then stays silent.
class EquivocatingSender : public Adversary {
 public:
  EquivocatingSender(DsFixture fx, std::size_t sender_idx)
      : fx_(std::move(fx)), sender_idx_(sender_idx) {}

  static Bytes ds_body(const DsFixture& fx, std::size_t sender_idx, const Bytes& value,
                       const std::vector<PartyId>& signers) {
    Writer target;
    target.bytes(fx.domain);
    target.u64(sender_idx);
    target.bytes(value);
    Digest digest = sha256_tagged("ds-sign", target.data());
    Writer w;
    w.bytes(value);
    w.u32(static_cast<std::uint32_t>(signers.size()));
    for (PartyId s : signers) {
      w.u64(s);
      w.raw(fx.registry->sign(s, digest.view()).view());
    }
    return std::move(w).take();
  }

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    if (round != 0) return {};
    PartyId sender = fx_.members[sender_idx_];
    std::vector<Message> out;
    for (std::size_t k = 0; k < fx_.members.size(); ++k) {
      PartyId to = fx_.members[k];
      if (to == sender) continue;
      Bytes value = (k % 2 == 0) ? to_bytes("VALUE-A") : to_bytes("VALUE-B");
      Bytes body = ds_body(fx_, sender_idx_, value, {sender});
      out.push_back(Message{sender, to, tag_body(0, 0, body)});
    }
    return out;
  }

 protected:
  DsFixture fx_;
  std::size_t sender_idx_;
};

TEST(DolevStrong, EquivocationYieldsAgreement) {
  DsFixture fx;
  std::vector<bool> corrupt(fx.n, false);
  corrupt[fx.members[0]] = true;
  auto adv = std::make_unique<EquivocatingSender>(fx, 0);
  auto sim = ds_sim(fx, 0, to_bytes("unused"), corrupt, std::move(adv));
  sim->run(32);
  // All honest members must agree (the relay rounds expose the equivocation).
  std::set<Bytes> outputs;
  bool any_null = false, any_value = false;
  for (PartyId i : fx.members) {
    if (corrupt[i]) continue;
    auto* ds = hosted<DolevStrongProto>(*sim, i);
    ASSERT_NE(ds, nullptr);
    if (ds->output().has_value()) {
      outputs.insert(*ds->output());
      any_value = true;
    } else {
      any_null = true;
    }
  }
  EXPECT_FALSE(any_value && any_null) << "some honest output a value, others bottom";
  EXPECT_LE(outputs.size(), 1u) << "honest members extracted different values";
}

/// Late injection: adversary sends a signed value only in the last relay
/// round with an insufficient chain — must be rejected by the r-signatures
/// rule.
class LateInjector final : public EquivocatingSender {
 public:
  using EquivocatingSender::EquivocatingSender;

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    // Inject at the final arrival round (t+1) with a 1-signature chain.
    if (round != fx_.t) return {};
    PartyId sender = fx_.members[sender_idx_];
    Bytes body = ds_body(fx_, sender_idx_, to_bytes("LATE"), {sender});
    std::vector<Message> out;
    for (PartyId to : fx_.members) {
      if (to != sender) out.push_back(Message{sender, to, tag_body(0, 0, body)});
    }
    return out;
  }
};

TEST(DolevStrong, LateShortChainRejected) {
  DsFixture fx;
  std::vector<bool> corrupt(fx.n, false);
  corrupt[fx.members[0]] = true;
  auto adv = std::make_unique<LateInjector>(fx, 0);
  auto sim = ds_sim(fx, 0, to_bytes("unused"), corrupt, std::move(adv));
  sim->run(32);
  for (PartyId i : fx.members) {
    if (corrupt[i]) continue;
    auto* ds = hosted<DolevStrongProto>(*sim, i);
    ASSERT_NE(ds, nullptr);
    EXPECT_FALSE(ds->output().has_value()) << "member " << i << " accepted a late value";
  }
}

// --- Committee BA ---

std::unique_ptr<Simulator> ba_sim(const DsFixture& fx, const std::vector<Bytes>& inputs,
                                  const std::vector<bool>& corrupt,
                                  std::unique_ptr<Adversary> adv) {
  auto factory = [&](PartyId i) -> std::unique_ptr<SubProtocol> {
    std::size_t idx =
        static_cast<std::size_t>(std::find(fx.members.begin(), fx.members.end(), i) -
                                 fx.members.begin());
    return std::make_unique<CommitteeBaProto>(fx.registry, fx.members, fx.t,
                                              to_bytes("test-ba"), i, inputs[idx]);
  };
  return make_subproto_sim(fx.n, corrupt, factory, std::move(adv));
}

TEST(CommitteeBa, ValidityAllSameInput) {
  DsFixture fx;
  fx.n = 7;
  std::vector<Bytes> inputs(fx.members.size(), to_bytes("1"));
  std::vector<bool> corrupt(fx.n, false);
  auto sim = ba_sim(fx, inputs, corrupt, nullptr);
  sim->run(32);
  for (PartyId i : fx.members) {
    auto* ba = hosted<CommitteeBaProto>(*sim, i);
    ASSERT_NE(ba, nullptr);
    ASSERT_TRUE(ba->output().has_value());
    EXPECT_EQ(*ba->output(), to_bytes("1"));
  }
}

TEST(CommitteeBa, AgreementMixedInputs) {
  DsFixture fx;
  fx.n = 7;
  std::vector<Bytes> inputs;
  for (std::size_t k = 0; k < fx.members.size(); ++k) {
    inputs.push_back(to_bytes(k % 2 == 0 ? "0" : "1"));
  }
  std::vector<bool> corrupt(fx.n, false);
  auto sim = ba_sim(fx, inputs, corrupt, nullptr);
  sim->run(32);
  std::set<Bytes> outputs;
  for (PartyId i : fx.members) {
    auto* ba = hosted<CommitteeBaProto>(*sim, i);
    ASSERT_NE(ba, nullptr);
    ASSERT_TRUE(ba->output().has_value());
    outputs.insert(*ba->output());
  }
  EXPECT_EQ(outputs.size(), 1u);
  // Majority of inputs is "0" (indices 0,2,4,6 of 7).
  EXPECT_EQ(*outputs.begin(), to_bytes("0"));
}

TEST(CommitteeBa, ValidityDespiteCorruptMinority) {
  DsFixture fx;
  fx.n = 7;
  std::vector<Bytes> inputs(fx.members.size(), to_bytes("yes"));
  std::vector<bool> corrupt(fx.n, false);
  corrupt[fx.members[1]] = true;
  corrupt[fx.members[4]] = true;
  auto sim = ba_sim(fx, inputs, corrupt, nullptr);
  sim->run(32);
  for (PartyId i : fx.members) {
    if (corrupt[i]) continue;
    auto* ba = hosted<CommitteeBaProto>(*sim, i);
    ASSERT_NE(ba, nullptr);
    ASSERT_TRUE(ba->output().has_value());
    EXPECT_EQ(*ba->output(), to_bytes("yes"));
  }
}

// --- Coin toss ---

std::unique_ptr<Simulator> coin_sim(const DsFixture& fx, const std::vector<bool>& corrupt,
                                    std::unique_ptr<Adversary> adv, std::uint64_t seed_base) {
  auto factory = [&, seed_base](PartyId i) -> std::unique_ptr<SubProtocol> {
    return std::make_unique<CoinTossProto>(fx.registry, fx.members, fx.t,
                                           to_bytes("test-coin"), i, seed_base + i);
  };
  return make_subproto_sim(fx.n, corrupt, factory, std::move(adv));
}

TEST(CoinToss, AllHonestAgreeOnCoin) {
  DsFixture fx;
  fx.n = 7;
  std::vector<bool> corrupt(fx.n, false);
  auto sim = coin_sim(fx, corrupt, nullptr, 1000);
  sim->run(64);
  std::set<Bytes> coins;
  for (PartyId i : fx.members) {
    auto* ct = hosted<CoinTossProto>(*sim, i);
    ASSERT_NE(ct, nullptr);
    ASSERT_TRUE(ct->output().has_value()) << "member " << i;
    EXPECT_EQ(ct->output()->size(), 32u);
    coins.insert(*ct->output());
  }
  EXPECT_EQ(coins.size(), 1u);
}

TEST(CoinToss, DifferentSeedsDifferentCoin) {
  DsFixture fx;
  fx.n = 7;
  std::vector<bool> corrupt(fx.n, false);
  auto sim1 = coin_sim(fx, corrupt, nullptr, 1000);
  auto sim2 = coin_sim(fx, corrupt, nullptr, 2000);
  sim1->run(64);
  sim2->run(64);
  auto* a = hosted<CoinTossProto>(*sim1, fx.members[0]);
  auto* b = hosted<CoinTossProto>(*sim2, fx.members[0]);
  ASSERT_TRUE(a->output().has_value());
  ASSERT_TRUE(b->output().has_value());
  EXPECT_NE(*a->output(), *b->output());
}

TEST(CoinToss, SilentCorruptionStillAgrees) {
  DsFixture fx;
  fx.n = 7;
  std::vector<bool> corrupt(fx.n, false);
  corrupt[fx.members[2]] = true;
  corrupt[fx.members[5]] = true;
  auto sim = coin_sim(fx, corrupt, nullptr, 3000);
  sim->run(64);
  std::set<Bytes> coins;
  for (PartyId i : fx.members) {
    if (corrupt[i]) continue;
    auto* ct = hosted<CoinTossProto>(*sim, i);
    ASSERT_NE(ct, nullptr);
    ASSERT_TRUE(ct->output().has_value());
    coins.insert(*ct->output());
  }
  EXPECT_EQ(coins.size(), 1u);
}

TEST(CoinToss, HonestEntropySurvivesWithholding) {
  // Two runs differing only in one honest dealer's randomness must give
  // different coins even when the corrupt members stay silent.
  DsFixture fx;
  fx.n = 7;
  std::vector<bool> corrupt(fx.n, false);
  corrupt[fx.members[6]] = true;
  auto sim1 = coin_sim(fx, corrupt, nullptr, 4000);
  auto sim2 = coin_sim(fx, corrupt, nullptr, 4001);  // shifts every seed
  sim1->run(64);
  sim2->run(64);
  auto* a = hosted<CoinTossProto>(*sim1, fx.members[0]);
  auto* b = hosted<CoinTossProto>(*sim2, fx.members[0]);
  ASSERT_TRUE(a->output().has_value());
  ASSERT_TRUE(b->output().has_value());
  EXPECT_NE(*a->output(), *b->output());
}

// --- Phase King ---

std::unique_ptr<Simulator> pk_sim(std::size_t n, std::size_t t, const std::vector<bool>& inputs,
                                  const std::vector<bool>& corrupt,
                                  std::unique_ptr<Adversary> adv) {
  std::vector<PartyId> members(n);
  for (PartyId i = 0; i < n; ++i) members[i] = i;
  auto factory = [&](PartyId i) -> std::unique_ptr<SubProtocol> {
    return std::make_unique<PhaseKingProto>(members, t, i, inputs[i]);
  };
  return make_subproto_sim(n, corrupt, factory, std::move(adv));
}

TEST(PhaseKing, ValidityAllSame) {
  const std::size_t n = 9, t = 2;
  std::vector<bool> inputs(n, true), corrupt(n, false);
  auto sim = pk_sim(n, t, inputs, corrupt, nullptr);
  sim->run(32);
  for (PartyId i = 0; i < n; ++i) {
    auto* pk = hosted<PhaseKingProto>(*sim, i);
    ASSERT_NE(pk, nullptr);
    ASSERT_TRUE(pk->output().has_value());
    EXPECT_TRUE(*pk->output());
  }
}

TEST(PhaseKing, AgreementMixedInputs) {
  const std::size_t n = 9, t = 2;
  std::vector<bool> inputs(n, false), corrupt(n, false);
  for (std::size_t i = 0; i < n; i += 2) inputs[i] = true;
  auto sim = pk_sim(n, t, inputs, corrupt, nullptr);
  sim->run(32);
  std::set<bool> outs;
  for (PartyId i = 0; i < n; ++i) {
    auto* pk = hosted<PhaseKingProto>(*sim, i);
    ASSERT_TRUE(pk->output().has_value());
    outs.insert(*pk->output());
  }
  EXPECT_EQ(outs.size(), 1u);
}

/// Byzantine bit-flippers: corrupt parties vote randomly and, when king,
/// send different bits to different parties.
class BitFlipAdversary final : public Adversary {
 public:
  BitFlipAdversary(std::size_t n, std::vector<bool> corrupt)
      : n_(n), corrupt_(std::move(corrupt)), rng_(777) {}

  std::vector<Message> on_round(std::size_t, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    std::vector<Message> out;
    for (PartyId c = 0; c < n_; ++c) {
      if (!corrupt_[c]) continue;
      for (PartyId to = 0; to < n_; ++to) {
        if (to == c) continue;
        std::uint8_t tag = rng_.chance(0.5) ? 1 : 2;  // vote or king msg
        std::uint8_t bit = rng_.chance(0.5) ? 1 : 0;
        out.push_back(Message{c, to, tag_body(0, 0, Bytes{tag, bit})});
      }
    }
    return out;
  }

 private:
  std::size_t n_;
  std::vector<bool> corrupt_;
  Rng rng_;
};

TEST(PhaseKing, AgreementUnderByzantineFlips) {
  const std::size_t n = 13, t = 3;  // 4t < n
  std::vector<bool> inputs(n, false), corrupt(n, false);
  for (std::size_t i = 0; i < n; i += 3) inputs[i] = true;
  corrupt[1] = corrupt[5] = corrupt[9] = true;  // 3 corrupt
  auto adv = std::make_unique<BitFlipAdversary>(n, corrupt);
  auto sim = pk_sim(n, t, inputs, corrupt, std::move(adv));
  sim->run(32);
  std::set<bool> outs;
  for (PartyId i = 0; i < n; ++i) {
    if (corrupt[i]) continue;
    auto* pk = hosted<PhaseKingProto>(*sim, i);
    ASSERT_NE(pk, nullptr);
    ASSERT_TRUE(pk->output().has_value());
    outs.insert(*pk->output());
  }
  EXPECT_EQ(outs.size(), 1u) << "honest parties disagree";
}

TEST(PhaseKing, ValidityUnderByzantineFlips) {
  const std::size_t n = 13, t = 3;
  std::vector<bool> inputs(n, true), corrupt(n, false);
  corrupt[2] = corrupt[6] = corrupt[10] = true;
  auto adv = std::make_unique<BitFlipAdversary>(n, corrupt);
  auto sim = pk_sim(n, t, inputs, corrupt, std::move(adv));
  sim->run(32);
  for (PartyId i = 0; i < n; ++i) {
    if (corrupt[i]) continue;
    auto* pk = hosted<PhaseKingProto>(*sim, i);
    ASSERT_TRUE(pk->output().has_value());
    EXPECT_TRUE(*pk->output()) << "validity broken for party " << i;
  }
}

}  // namespace
}  // namespace srds

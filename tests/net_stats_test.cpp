// Tests for phase-marked accounting and stats aggregation helpers.
#include <gtest/gtest.h>

#include "net/simulator.hpp"

namespace srds {
namespace {

/// Sends `bytes_per_round` to party 1 every round for `rounds` rounds.
class MeteredSender final : public Party {
 public:
  MeteredSender(PartyId me, std::size_t rounds, std::size_t bytes_per_round)
      : me_(me), rounds_(rounds), bytes_(bytes_per_round) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&) override {
    if (round >= rounds_) {
      done_ = true;
      return {};
    }
    return {Message{me_, 1, Bytes(bytes_, 0xAB)}};
  }
  bool done() const override { return done_; }

 private:
  PartyId me_;
  std::size_t rounds_, bytes_;
  bool done_ = false;
};

class Sink final : public Party {
 public:
  std::vector<Message> on_round(std::size_t, const std::vector<Message>&) override {
    return {};
  }
  bool done() const override { return true; }
};

TEST(PhaseStats, MarkSplitsAccounting) {
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<MeteredSender>(0, 10, 100));
  parties.push_back(std::make_unique<Sink>());
  Simulator sim(std::move(parties), std::vector<bool>{false, false}, nullptr);
  sim.set_phase_mark(6);
  sim.run(32);
  // 10 rounds x 100 bytes total; rounds 6..9 => 400 bytes in the phase bucket.
  EXPECT_EQ(sim.stats().party[0].bytes_sent, 1000u);
  EXPECT_EQ(sim.phase_stats().party[0].bytes_sent, 400u);
  EXPECT_EQ(sim.phase_stats().party[1].bytes_recv, 400u);
}

TEST(PhaseStats, NoMarkMeansEmptyPhaseBucket) {
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<MeteredSender>(0, 3, 10));
  parties.push_back(std::make_unique<Sink>());
  Simulator sim(std::move(parties), std::vector<bool>{false, false}, nullptr);
  sim.run(16);
  EXPECT_EQ(sim.stats().party[0].bytes_sent, 30u);
  EXPECT_EQ(sim.phase_stats().party[0].bytes_sent, 0u);
}

TEST(PhaseStats, MarkAtZeroCapturesEverything) {
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<MeteredSender>(0, 4, 7));
  parties.push_back(std::make_unique<Sink>());
  Simulator sim(std::move(parties), std::vector<bool>{false, false}, nullptr);
  sim.set_phase_mark(0);
  sim.run(16);
  EXPECT_EQ(sim.phase_stats().party[0].bytes_sent, sim.stats().party[0].bytes_sent);
}

TEST(PartyStats, LocalityUnionsDirections) {
  PartyStats s;
  s.peers_out.insert(3);
  s.peers_out.insert(4);
  s.peers_in.insert(4);
  s.peers_in.insert(5);
  EXPECT_EQ(s.locality(), 3u);
  EXPECT_EQ(s.bytes_total(), 0u);
}

TEST(PartyStats, LocalityEdgeCases) {
  PartyStats s;
  EXPECT_EQ(s.locality(), 0u);  // no traffic at all
  s.peers_in.insert(1);
  s.peers_in.insert(2);
  EXPECT_EQ(s.locality(), 2u);  // receive-only
  s.peers_in.clear();
  s.peers_out.insert(7);
  EXPECT_EQ(s.locality(), 1u);  // send-only
  s.peers_in.insert(7);
  EXPECT_EQ(s.locality(), 1u);  // full overlap counts once
  // Repeated calls are pure reads: same answer, no state disturbed
  // (regression for the old merged-set rebuild).
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.locality(), 1u);
  EXPECT_EQ(s.peers_out.size(), 1u);
  EXPECT_EQ(s.peers_in.size(), 1u);
}

TEST(PartyStats, LocalityDisjointSetsSum) {
  PartyStats s;
  for (PartyId p = 0; p < 10; ++p) s.peers_out.insert(p);
  for (PartyId p = 10; p < 25; ++p) s.peers_in.insert(p);
  EXPECT_EQ(s.locality(), 25u);
}

TEST(FaultCounters, DefaultIsAllZero) {
  FaultCounters c;
  EXPECT_EQ(c, FaultCounters{});
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(c.partitioned, 0u);
  EXPECT_EQ(c.delayed, 0u);
  EXPECT_EQ(c.late_delivered, 0u);
  EXPECT_EQ(c.duplicated, 0u);
  EXPECT_EQ(c.crashed_parties, 0u);
  EXPECT_EQ(c.adversary_rejected, 0u);
}

TEST(NetworkStats, EqualityCoversFaultCounters) {
  NetworkStats a(2), b(2);
  EXPECT_EQ(a, b);
  b.faults.dropped = 1;
  EXPECT_FALSE(a == b);
  b.faults.dropped = 0;
  b.party[1].bytes_sent = 5;
  EXPECT_FALSE(a == b);
}

TEST(FaultlessRunHasZeroFaultCounters, EvenWithPlanInstalled) {
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<MeteredSender>(0, 3, 10));
  parties.push_back(std::make_unique<Sink>());
  Simulator sim(std::move(parties), std::vector<bool>{false, false}, nullptr);
  FaultPlan plan;  // all-default: no faults configured
  sim.set_fault_plan(plan);
  sim.run(16);
  EXPECT_EQ(sim.stats().faults, FaultCounters{});
  EXPECT_EQ(sim.stats().party[0].bytes_sent, 30u);
}

TEST(NetworkStats, MaxIfFiltersParties) {
  NetworkStats stats(3);
  stats.party[0].bytes_sent = 100;
  stats.party[1].bytes_sent = 500;
  stats.party[2].bytes_sent = 50;
  EXPECT_EQ(stats.max_bytes_total(), 500u);
  auto only_even = [](PartyId i) { return i % 2 == 0; };
  EXPECT_EQ(stats.max_bytes_total_if(only_even), 100u);
}

}  // namespace
}  // namespace srds

// Tests for the observability primitives: the hand-rolled JSON writer
// (validated against the independent parser in json_parser.hpp), the
// metrics registry with log-scale histograms, and the shared bench CLI.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "json_parser.hpp"
#include "obs/alloc_hooks.hpp"
#include "obs/bench_args.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace srds {
namespace {

using obs::Json;
using testjson::PJson;

TEST(JsonWriter, ScalarsRoundTrip) {
  Json doc = Json::object();
  doc.set("null", nullptr);
  doc.set("true", true);
  doc.set("false", false);
  doc.set("int", -42);
  doc.set("uint", 18446744073709551615ull);  // uint64 max stays exact
  doc.set("double", 0.5);
  doc.set("string", "hello");

  PJson p = testjson::parse(doc.dump());
  ASSERT_EQ(p.type, PJson::Type::kObject);
  EXPECT_EQ(p.get("null")->type, PJson::Type::kNull);
  EXPECT_TRUE(p.get("true")->boolean);
  EXPECT_FALSE(p.get("false")->boolean);
  EXPECT_EQ(p.get("int")->integer, -42);
  EXPECT_EQ(p.get("double")->number, 0.5);
  EXPECT_EQ(p.get("string")->string, "hello");
  // Exactness check directly on the serialized text (the test parser only
  // holds int64): uint64 max must not be rounded through a double.
  EXPECT_NE(doc.dump().find("18446744073709551615"), std::string::npos);
}

TEST(JsonWriter, EscapingRoundTrips) {
  const std::string nasty = "q\"b\\s/c\ncr\rtab\tnul\x01\x1f e";
  Json doc = Json::object();
  doc.set(nasty, nasty);

  std::string text = doc.dump();
  // Control characters must appear as \u00XX escapes, never raw.
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\\u001f"), std::string::npos);
  EXPECT_NE(text.find("\\n"), std::string::npos);
  EXPECT_NE(text.find("\\\""), std::string::npos);

  PJson p = testjson::parse(text);
  ASSERT_EQ(p.object.size(), 1u);
  EXPECT_EQ(p.object[0].first, nasty);
  EXPECT_EQ(p.object[0].second.string, nasty);
}

TEST(JsonWriter, NestedStructuresAndOrder) {
  Json doc = Json::object();
  doc.set("z", 1);  // insertion order, not alphabetical
  doc.set("a", 2);
  Json arr = Json::array();
  arr.push_back(1);
  Json inner = Json::object();
  inner.set("k", "v");
  arr.push_back(std::move(inner));
  arr.push_back(Json::array());
  doc.set("arr", std::move(arr));
  doc.set("z", 3);  // overwrite keeps the original position

  PJson p = testjson::parse(doc.dump());
  ASSERT_EQ(p.object.size(), 3u);
  EXPECT_EQ(p.object[0].first, "z");
  EXPECT_EQ(p.object[0].second.integer, 3);
  EXPECT_EQ(p.object[1].first, "a");
  EXPECT_EQ(p.object[2].first, "arr");
  const PJson& parr = p.object[2].second;
  ASSERT_EQ(parr.array.size(), 3u);
  EXPECT_EQ(parr.array[0].integer, 1);
  EXPECT_EQ(parr.array[1].get("k")->string, "v");
  EXPECT_TRUE(parr.array[2].array.empty());
}

TEST(JsonWriter, PrettyAndCompactAgree) {
  Json doc = Json::object();
  doc.set("a", 1);
  Json arr = Json::array();
  arr.push_back("x");
  arr.push_back(2.25);
  doc.set("b", std::move(arr));

  PJson compact = testjson::parse(doc.dump(-1));
  PJson pretty = testjson::parse(doc.dump(2));
  ASSERT_EQ(pretty.object.size(), compact.object.size());
  EXPECT_EQ(pretty.get("b")->array[1].number, compact.get("b")->array[1].number);
  // Pretty output actually is pretty (has newlines); compact is one line.
  EXPECT_NE(doc.dump(2).find('\n'), std::string::npos);
  EXPECT_EQ(doc.dump(-1).find('\n'), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  Json doc = Json::array();
  doc.push_back(std::numeric_limits<double>::quiet_NaN());
  doc.push_back(std::numeric_limits<double>::infinity());
  doc.push_back(1.5);
  PJson p = testjson::parse(doc.dump());
  EXPECT_EQ(p.array[0].type, PJson::Type::kNull);
  EXPECT_EQ(p.array[1].type, PJson::Type::kNull);
  EXPECT_EQ(p.array[2].number, 1.5);
}

TEST(JsonWriter, DumpIsDeterministic) {
  auto build = [] {
    Json doc = Json::object();
    doc.set("x", 0.1);
    doc.set("y", 3);
    Json arr = Json::array();
    arr.push_back("s");
    doc.set("z", std::move(arr));
    return doc.dump(2);
  };
  EXPECT_EQ(build(), build());
}

TEST(Histogram, BucketBoundaries) {
  using obs::Histogram;
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(7), 2u);
  EXPECT_EQ(Histogram::bucket_of(8), 3u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
  EXPECT_EQ(Histogram::bucket_of(1025), 10u);
  EXPECT_EQ(Histogram::bucket_of(2047), 10u);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 63u);
}

TEST(Histogram, RecordsStats) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  for (std::uint64_t v : {1ull, 2ull, 3ull, 100ull}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 26.5);
  EXPECT_EQ(h.bucket(0), 1u);  // 1
  EXPECT_EQ(h.bucket(1), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(6), 1u);  // 100 in [64,128)
  // Quantiles: the 0.5 bound must cover buckets holding >= half the mass.
  EXPECT_EQ(h.quantile_bound(0.5), 4u);    // buckets 0..1 hold 3/4
  EXPECT_EQ(h.quantile_bound(1.0), 128u);  // everything below 2^7
}

TEST(Histogram, QuantileBoundEdgeCases) {
  obs::Histogram empty;
  EXPECT_EQ(empty.quantile_bound(0.5), 0u);  // no samples: 0, not a boundary
  EXPECT_EQ(empty.quantile_bound(0.0), 0u);
  EXPECT_EQ(empty.quantile_bound(1.0), 0u);

  // A single sample: every positive quantile lands in its bucket.
  obs::Histogram one;
  one.record(5);  // bucket 2 = [4, 8)
  EXPECT_EQ(one.quantile_bound(0.5), 8u);
  EXPECT_EQ(one.quantile_bound(1.0), 8u);
  // q = 0 has target mass 0, satisfied by the very first bucket boundary.
  EXPECT_EQ(one.quantile_bound(0.0), 2u);
  // Out-of-range q clamps rather than misbehaving.
  EXPECT_EQ(one.quantile_bound(-1.0), one.quantile_bound(0.0));
  EXPECT_EQ(one.quantile_bound(2.0), one.quantile_bound(1.0));

  // Exact power of two sits at the *bottom* of its bucket: the reported
  // bound is the bucket's exclusive upper boundary, one power higher.
  obs::Histogram pow2;
  pow2.record(8);  // bucket 3 = [8, 16)
  EXPECT_EQ(pow2.quantile_bound(1.0), 16u);

  // Samples in the top bucket cannot report 2^64; the bound saturates.
  obs::Histogram huge;
  huge.record(~0ull);
  EXPECT_EQ(huge.quantile_bound(1.0), ~0ull);
}

TEST(Registry, LabelOrderIsCanonical) {
  obs::Registry reg;
  auto& a = reg.counter("msgs", {{"proto", "pi_ba"}, {"n", "64"}});
  auto& b = reg.counter("msgs", {{"n", "64"}, {"proto", "pi_ba"}});
  EXPECT_EQ(&a, &b);
  a.inc(5);
  EXPECT_EQ(b.value(), 5u);
  auto& c = reg.counter("msgs", {{"n", "128"}, {"proto", "pi_ba"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, ExportsAllMetricTypes) {
  obs::Registry reg;
  reg.counter("sends").inc(3);
  reg.gauge("fill", {{"phase", "boost"}}).set(0.75);
  reg.histogram("msg_bytes").record(100);
  reg.histogram("msg_bytes").record(5000);

  PJson p = testjson::parse(reg.to_json().dump());
  ASSERT_NE(p.get("counters"), nullptr);
  ASSERT_EQ(p.get("counters")->array.size(), 1u);
  EXPECT_EQ(p.get("counters")->array[0].get("value")->integer, 3);
  ASSERT_EQ(p.get("gauges")->array.size(), 1u);
  EXPECT_EQ(p.get("gauges")->array[0].get("labels")->get("phase")->string, "boost");
  const PJson& h = p.get("histograms")->array[0];
  EXPECT_EQ(h.get("count")->integer, 2);
  EXPECT_EQ(h.get("sum")->integer, 5100);
  EXPECT_EQ(h.get("buckets")->get("2^6")->integer, 1);
  EXPECT_EQ(h.get("buckets")->get("2^12")->integer, 1);
}

TEST(Reporter, SchemaAndParams) {
  bench::Reporter rep("unit");
  rep.set_param("n", 64);
  Json m = Json::object();
  m.set("bytes", 123);
  rep.add_row(64.0, std::move(m));

  PJson p = testjson::parse(rep.to_json().dump(2));
  EXPECT_EQ(p.get("bench")->string, "unit");
  EXPECT_NE(p.get("git_describe"), nullptr);
  EXPECT_NE(p.get("timestamp"), nullptr);
  EXPECT_EQ(p.get("params")->get("n")->integer, 64);
  ASSERT_EQ(p.get("series")->array.size(), 1u);
  EXPECT_EQ(p.get("series")->array[0].get("x")->number, 64.0);
  EXPECT_EQ(p.get("series")->array[0].get("metrics")->get("bytes")->integer, 123);
  // Determinism form: identical content, no timestamp field.
  PJson q = testjson::parse(rep.to_json(false).dump());
  EXPECT_EQ(q.get("timestamp"), nullptr);
}

TEST(Reporter, RejectsNonObjectMetrics) {
  bench::Reporter rep("unit");
  EXPECT_THROW(rep.add_row(1.0, Json(3)), std::invalid_argument);
}

TEST(Reporter, WriteCreatesMissingParentDirectories) {
  // CI points --json-out at artifact directories that do not exist yet;
  // Reporter::write must create the whole chain instead of failing.
  namespace fs = std::filesystem;
  const fs::path root = fs::path("obs_test_artifacts");
  fs::remove_all(root);
  bench::Reporter rep("nested_dir_unit");
  rep.set_param("n", 8);

  const std::string out = rep.write((root / "deeply" / "nested").string());
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(fs::exists(root / "deeply" / "nested" / "BENCH_nested_dir_unit.json"));

  std::ifstream in(out);
  std::ostringstream ss;
  ss << in.rdbuf();
  PJson doc = testjson::parse(ss.str());
  EXPECT_EQ(doc.get("bench")->string, "nested_dir_unit");
  EXPECT_EQ(doc.get("schema")->integer, 3);
  fs::remove_all(root);
}

TEST(JsonParser, RoundTripsWriterOutputByteIdentically) {
  Json doc = Json::object();
  doc.set("uint", 18446744073709551615ull);
  doc.set("int", -42);
  doc.set("double", 0.125);
  doc.set("bool", true);
  doc.set("null", nullptr);
  doc.set("s", "q\"b\\s\nnul\x01 e");
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(Json::object());
  doc.set("arr", std::move(arr));

  for (int indent : {-1, 2}) {
    Json back;
    std::string err;
    ASSERT_TRUE(Json::parse(doc.dump(indent), back, &err)) << err;
    // The parser preserves the writer's number kinds and key order, so
    // re-serialization is byte-identical — what lets bench-diff compare
    // and re-write baseline artifacts without churn.
    EXPECT_EQ(back.dump(indent), doc.dump(indent));
  }
}

TEST(JsonParser, NumberKindsMatchTheWriter) {
  Json v;
  ASSERT_TRUE(Json::parse("42", v));
  EXPECT_EQ(v.type(), Json::Type::kUint);
  EXPECT_EQ(v.as_uint(), 42u);
  ASSERT_TRUE(Json::parse("-42", v));
  EXPECT_EQ(v.type(), Json::Type::kInt);
  EXPECT_EQ(v.as_int(), -42);
  ASSERT_TRUE(Json::parse("4.5", v));
  EXPECT_EQ(v.type(), Json::Type::kDouble);
  EXPECT_EQ(v.as_double(), 4.5);
  ASSERT_TRUE(Json::parse("1e3", v));
  EXPECT_EQ(v.type(), Json::Type::kDouble);
  EXPECT_EQ(v.as_double(), 1000.0);
  // The numeric accessors coerce across kinds with a fallback on mismatch.
  ASSERT_TRUE(Json::parse("7", v));
  EXPECT_EQ(v.as_double(), 7.0);
  EXPECT_EQ(v.as_string(), "");
  ASSERT_TRUE(Json::parse("-1", v));
  EXPECT_EQ(v.as_uint(123), 123u);  // negative cannot coerce to unsigned
}

TEST(JsonParser, DecodesEscapes) {
  Json v;
  ASSERT_TRUE(Json::parse(R"("a\"b\\c\ndAé")", v));
  EXPECT_EQ(v.as_string(), "a\"b\\c\ndA\xc3\xa9");  // é = é in UTF-8
}

TEST(JsonParser, RejectsMalformedInputWithOffset) {
  Json v;
  std::string err;
  EXPECT_FALSE(Json::parse("{\"a\": 1,", v, &err));
  EXPECT_NE(err.find("at byte"), std::string::npos);
  EXPECT_FALSE(Json::parse("[1, 2] trailing", v, &err));
  EXPECT_FALSE(Json::parse("tru", v, &err));
  EXPECT_FALSE(Json::parse("", v, &err));
  EXPECT_FALSE(Json::parse("{\"a\" 1}", v, &err));

  // Pathological nesting is bounded, not a stack overflow.
  std::string deep(512, '[');
  deep += std::string(512, ']');
  EXPECT_FALSE(Json::parse(deep, v, &err));
  EXPECT_NE(err.find("deep"), std::string::npos);
}

TEST(BenchArgs, ParsesKnownFlagsAndCompactsRest) {
  const char* raw[] = {"prog",   "--n-list", "64,128,256", "--quiet",
                       "--seed", "7",        "--benchmark_filter=x",
                       "--json-out", "/tmp/x", nullptr};
  std::vector<char*> argv;
  for (const char* a : raw) argv.push_back(const_cast<char*>(a));
  int argc = static_cast<int>(argv.size()) - 1;

  bench::Args args = bench::Args::parse(argc, argv.data());
  EXPECT_EQ(args.n_list, (std::vector<std::size_t>{64, 128, 256}));
  EXPECT_EQ(args.seed, 7u);
  EXPECT_TRUE(args.quiet);
  EXPECT_EQ(args.json_out, "/tmp/x");
  EXPECT_TRUE(args.json_enabled());
  // The unknown flag survives for a downstream parser.
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "--benchmark_filter=x");
  EXPECT_EQ(argv[2], nullptr);

  EXPECT_TRUE(bench::quiet());
  bench::set_quiet(false);  // do not leak into other tests
}

TEST(BenchArgs, DefaultsAndHelpers) {
  const char* raw[] = {"prog", nullptr};
  std::vector<char*> argv{const_cast<char*>(raw[0]), nullptr};
  int argc = 1;
  bench::Args args = bench::Args::parse(argc, argv.data());
  EXPECT_TRUE(args.n_list.empty());
  EXPECT_EQ(args.seed, 0u);
  EXPECT_EQ(args.json_out, ".");
  EXPECT_FALSE(args.quiet);
  EXPECT_EQ(args.sizes({8, 16}), (std::vector<std::size_t>{8, 16}));
  EXPECT_EQ(args.n_or(512), 512u);
  EXPECT_EQ(args.seed_or(42), 42u);

  const char* raw2[] = {"prog", "--n-list", "32", "--no-json", nullptr};
  std::vector<char*> argv2;
  for (const char* a : raw2) argv2.push_back(const_cast<char*>(a));
  int argc2 = static_cast<int>(argv2.size()) - 1;
  bench::Args args2 = bench::Args::parse(argc2, argv2.data());
  EXPECT_FALSE(args2.json_enabled());
  EXPECT_EQ(args2.sizes({8, 16}), (std::vector<std::size_t>{32}));
  EXPECT_EQ(args2.n_or(512), 32u);
}

TEST(AllocHooks, StubReportsInactiveWhenHooksAreNotLinked) {
  // This binary does NOT link the srds_alloc_hooks OBJECT library, so the
  // [[gnu::weak]] stubs must win: the counter pins at 0 and active() is
  // false (tests/prof_test.cpp asserts the linked side).
  EXPECT_FALSE(obs::alloc_hooks_active());
  const std::uint64_t before = obs::alloc_ops();
  std::vector<std::uint64_t> v(128, 1);
  EXPECT_EQ(v.size(), 128u);
  EXPECT_EQ(obs::alloc_ops(), before);
  EXPECT_EQ(before, 0u);
}

}  // namespace
}  // namespace srds

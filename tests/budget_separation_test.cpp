// The acceptance demonstration for the complexity-budget auditor: at
// n = 2048 (past the measured SRDS/BGT'13 crossover) a seeded fault-free
// run of the SNARK-SRDS boost satisfies its own polylog(n) budget under
// --strict-budgets semantics, while the BGT'13 multisig baseline satisfies
// its declared Θ(n) budget but *fails* the SRDS polylog budget — i.e. the
// paper's Table 1 separation is not just visible in the bench series, it is
// machine-checked on a live run.
//
// This is deliberately a big-n test (~2-3 minutes): below the SRDS budgets'
// validity floor (min_n = 512) the ceil(log)-quantized committee constants
// drown the asymptotic gap and the audits would be skipped, not proven.
#include <gtest/gtest.h>

#include <vector>

#include "ba/runner.hpp"

namespace srds {
namespace {

constexpr std::size_t kN = 2048;
constexpr std::uint64_t kSeed = 42;
constexpr double kBeta = 0.2;

const obs::BudgetEval* find_eval(const std::vector<obs::BudgetEval>& evals,
                                 const std::string& phase) {
  for (const auto& e : evals) {
    if (e.phase == phase) return &e;
  }
  return nullptr;
}

TEST(BudgetSeparation, SnarkSrdsMeetsPolylogBudgetStrictly) {
  obs::Ledger ledger;
  BaRunConfig cfg;
  cfg.n = kN;
  cfg.beta = kBeta;
  cfg.seed = kSeed;
  cfg.protocol = BoostProtocol::kPiBaSnark;
  cfg.ledger = &ledger;
  cfg.strict_budgets = true;  // a violation would throw BudgetViolation

  BaRunResult r;
  ASSERT_NO_THROW(r = run_ba(cfg));
  ASSERT_TRUE(r.agreement);
  EXPECT_EQ(r.decided, r.honest);

  // Every registered claim (boost + the shared f_ba/f_ct front end) was
  // audited — none skipped at this n — and every one held.
  ASSERT_GE(r.budget_evals.size(), 3u);
  for (const auto& e : r.budget_evals) {
    EXPECT_FALSE(e.skipped) << e.protocol << "/" << e.phase << ": " << e.skip_reason;
    EXPECT_TRUE(e.ok) << e.protocol << "/" << e.phase << ": max " << e.max_bits
                      << " bits vs bound " << e.bound_bits;
  }

  const obs::BudgetEval* boost = find_eval(r.budget_evals, "boost");
  ASSERT_NE(boost, nullptr);
  // The boost claim is pure polylog: no polynomial factor registered.
  EXPECT_EQ(boost->budget.n_exp, 0.0);
  EXPECT_GT(boost->budget.k, 0);
  EXPECT_GT(boost->max_bits, 0u);
}

TEST(BudgetSeparation, Bgt13MeetsLinearButFailsPolylogBudget) {
  // First recover the SRDS polylog budget exactly as registered. A cheap
  // n = 64 run suffices: the boost evaluation is *skipped* there (below the
  // validity floor) but still records the declared Budget.
  obs::Budget polylog;
  {
    obs::Ledger ledger;
    BaRunConfig cfg;
    cfg.n = 64;
    cfg.beta = kBeta;
    cfg.seed = kSeed;
    cfg.protocol = BoostProtocol::kPiBaSnark;
    cfg.ledger = &ledger;
    auto r = run_ba(cfg);
    const obs::BudgetEval* boost = find_eval(r.budget_evals, "boost");
    ASSERT_NE(boost, nullptr);
    polylog = boost->budget;
    ASSERT_EQ(polylog.n_exp, 0.0);  // it really is a polylog claim
  }

  obs::Ledger ledger;
  BaRunConfig cfg;
  cfg.n = kN;
  cfg.beta = kBeta;
  cfg.seed = kSeed;
  cfg.protocol = BoostProtocol::kMultisig;
  cfg.ledger = &ledger;
  auto r = run_ba(cfg);
  ASSERT_TRUE(r.agreement);

  // BGT'13 honors the budget it declares for itself — a Θ(n) bound...
  const obs::BudgetEval* own = find_eval(r.budget_evals, "boost");
  ASSERT_NE(own, nullptr);
  EXPECT_FALSE(own->skipped);
  EXPECT_TRUE(own->ok) << "max " << own->max_bits << " bits vs Θ(n) bound "
                       << own->bound_bits;
  EXPECT_DOUBLE_EQ(own->budget.n_exp, 1.0);

  // ...but its measured worst honest party breaks the SRDS polylog budget
  // at the same n: the Õ(n)-vs-Õ(1) separation, as a runtime assertion.
  ASSERT_TRUE(polylog.applicable(kN));
  EXPECT_GT(static_cast<double>(own->max_bits), polylog.bound_bits(kN))
      << "BGT'13 fits the polylog budget at n=" << kN
      << " — the Table 1 separation claim no longer holds on this seed";
}

}  // namespace
}  // namespace srds

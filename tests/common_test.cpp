// Unit and property tests for src/common.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bytes.hpp"
#include "common/hex.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"

namespace srds {
namespace {

TEST(Bytes, ConcatJoinsInOrder) {
  Bytes a = {1, 2}, b = {3}, c = {};
  Bytes r = concat(a, b, c);
  EXPECT_EQ(r, (Bytes{1, 2, 3}));
}

TEST(Bytes, StringRoundTrip) {
  std::string s = "hello srds";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Hex, RoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Serial, IntegersRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serial, BytesAndStrings) {
  Writer w;
  w.bytes(Bytes{9, 8, 7});
  w.str("abc");
  w.raw(Bytes{1});
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.str(), "abc");
  EXPECT_EQ(r.raw(1), Bytes{1});
  EXPECT_TRUE(r.done());
}

TEST(Serial, TruncatedReadFailsSafely) {
  Writer w;
  w.u32(100);  // length prefix promising 100 bytes that are not there
  Reader r(w.data());
  Bytes b = r.bytes();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  // Subsequent reads after failure stay safe.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Serial, EmptyBufferReads) {
  Reader r(Bytes{});
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    auto v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values hit
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.3);
  double f = static_cast<double>(hits) / trials;
  EXPECT_NEAR(f, 0.3, 0.02);
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(5), b(5);
  EXPECT_EQ(a.bytes(33).size(), 33u);
  EXPECT_EQ(Rng(5).bytes(16), Rng(5).bytes(16));
  (void)b;
}

TEST(Rng, SubsetIsSortedUniqueAndInRange) {
  Rng rng(21);
  for (std::size_t n : {10u, 100u, 1000u}) {
    for (std::size_t k : {0u, 1u, 5u, 10u}) {
      if (k > n) continue;
      auto s = rng.subset(n, k);
      ASSERT_EQ(s.size(), k);
      EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
      EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
      for (auto v : s) EXPECT_LT(v, n);
    }
  }
  EXPECT_THROW(rng.subset(3, 4), std::invalid_argument);
}

TEST(Rng, SubsetCoversFullSet) {
  Rng rng(22);
  auto s = rng.subset(8, 8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependence) {
  Rng a(77);
  Rng child = a.fork();
  // Child stream should differ from parent continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == child.next());
  EXPECT_LT(same, 2);
}

TEST(MathUtil, Logs) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(MathUtil, CeilDivAndAtLeast) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(at_least(2, 5), 5u);
  EXPECT_EQ(at_least(7, 5), 7u);
}

// Property sweep: Writer/Reader round-trip on random structures.
class SerialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerialFuzz, RandomRoundTrip) {
  Rng rng(GetParam());
  Writer w;
  struct Item {
    int kind;
    std::uint64_t num;
    Bytes blob;
  };
  std::vector<Item> items;
  int count = static_cast<int>(rng.below(20)) + 1;
  for (int i = 0; i < count; ++i) {
    Item it;
    it.kind = static_cast<int>(rng.below(3));
    switch (it.kind) {
      case 0:
        it.num = rng.next();
        w.u64(it.num);
        break;
      case 1:
        it.num = rng.below(256);
        w.u8(static_cast<std::uint8_t>(it.num));
        break;
      default:
        it.blob = rng.bytes(rng.below(64));
        w.bytes(it.blob);
        break;
    }
    items.push_back(it);
  }
  Reader r(w.data());
  for (const auto& it : items) {
    switch (it.kind) {
      case 0:
        EXPECT_EQ(r.u64(), it.num);
        break;
      case 1:
        EXPECT_EQ(r.u8(), it.num);
        break;
      default:
        EXPECT_EQ(r.bytes(), it.blob);
        break;
    }
  }
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialFuzz, ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace srds

// Tests for the per-party accounting plane (obs/ledger.hpp) and the
// complexity-budget auditor (obs/budget.hpp). The ledger is driven here
// through raw TraceSink events with hand-picked payloads, so every charge
// is known exactly; the integration equivalence against NetworkStats and
// the RoundTracer on a real simulated run lives in tests/trace_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/message.hpp"
#include "json_parser.hpp"
#include "obs/budget.hpp"
#include "obs/ledger.hpp"

namespace srds {
namespace {

using obs::Budget;
using obs::BudgetAuditor;
using obs::BudgetEval;
using obs::Delivery;
using obs::Ledger;
using obs::LedgerField;
using obs::PartyStat;
using testjson::PJson;

Message msg(PartyId from, PartyId to, std::size_t bytes,
            MsgKind kind = MsgKind::kDissem) {
  return make_msg(from, to, Bytes(bytes, 0xAB), kind);
}

TEST(Ledger, ChargesFollowNetworkStatsConventions) {
  Ledger led;
  led.on_run_begin(4);
  led.on_phase(0, "setup");
  led.on_phase(2, "boost");

  // Round 0 (setup): 0 -> 1, 10 bytes, delivered next round (still setup).
  led.on_send(0, msg(0, 1, 10));
  led.on_delivery(1, msg(0, 1, 10), Delivery::kDelivered);
  // Round 2 (boost): 1 -> 2 delivered; 2 -> 3 dropped (sender still pays).
  led.on_send(2, msg(1, 2, 8, MsgKind::kBoostSign));
  led.on_send(2, msg(2, 3, 6, MsgKind::kBoostSign));
  led.on_delivery(3, msg(1, 2, 8, MsgKind::kBoostSign), Delivery::kDelivered);
  led.on_delivery(3, msg(2, 3, 6, MsgKind::kBoostSign), Delivery::kDropped);
  led.on_run_end(4);

  EXPECT_EQ(led.n_parties(), 4u);
  EXPECT_EQ(led.rounds_run(), 4u);

  // Sender pays on accepted send — even for the dropped message.
  EXPECT_EQ(led.total(0).bytes_sent, 10u);
  EXPECT_EQ(led.total(1).bytes_sent, 8u);
  EXPECT_EQ(led.total(2).bytes_sent, 6u);
  // Receiver is charged at actual delivery only.
  EXPECT_EQ(led.total(1).bytes_recv, 10u);
  EXPECT_EQ(led.total(2).bytes_recv, 8u);
  EXPECT_EQ(led.total(3).bytes_recv, 0u);  // its message was dropped
  EXPECT_EQ(led.total(3).msgs_recv, 0u);
  EXPECT_EQ(led.total(0).bytes_total(), 10u);
  EXPECT_EQ(led.total(2).bytes_total(), 14u);

  // Phase attribution is by observed round: the setup send and its round-1
  // delivery both land in "setup"; everything else in "boost".
  const std::size_t setup = led.phase_index("setup");
  const std::size_t boost = led.phase_index("boost");
  ASSERT_NE(setup, Ledger::kAllPhases);
  ASSERT_NE(boost, Ledger::kAllPhases);
  EXPECT_EQ(led.phase_total(setup, 0).bytes_sent, 10u);
  EXPECT_EQ(led.phase_total(setup, 1).bytes_recv, 10u);
  EXPECT_EQ(led.phase_total(setup, 1).bytes_sent, 0u);
  EXPECT_EQ(led.phase_total(boost, 1).bytes_sent, 8u);
  EXPECT_EQ(led.phase_total(boost, 2).bytes_recv, 8u);
  EXPECT_EQ(led.phase_total(boost, 2).bytes_sent, 6u);

  // Per-kind split.
  EXPECT_EQ(led.kind_total(MsgKind::kDissem, 0).bytes_sent, 10u);
  EXPECT_EQ(led.kind_total(MsgKind::kBoostSign, 1).bytes_sent, 8u);
  EXPECT_EQ(led.kind_total(MsgKind::kBoostSign, 2).bytes_recv, 8u);
  EXPECT_EQ(led.kind_total(MsgKind::kDissem, 2).bytes_sent, 0u);
}

TEST(Ledger, ImplicitPrePhaseCoversUnmarkedPrefix) {
  Ledger led;
  led.on_run_begin(2);
  led.on_phase(3, "late-phase");  // first mark after round 0
  led.on_send(0, msg(0, 1, 5));
  led.on_send(3, msg(1, 0, 7));
  led.on_run_end(4);

  const std::size_t pre = led.phase_index("pre");
  ASSERT_NE(pre, Ledger::kAllPhases);
  EXPECT_EQ(led.phase_start(pre), 0u);
  EXPECT_EQ(led.phase_total(pre, 0).bytes_sent, 5u);
  EXPECT_EQ(led.phase_total(led.phase_index("late-phase"), 1).bytes_sent, 7u);
}

TEST(Ledger, StatDistributionAndExcludeMask) {
  Ledger led;
  led.on_run_begin(5);
  // Party i sends 100 * i bytes (party 0 sends nothing).
  for (PartyId i = 1; i < 5; ++i) led.on_send(0, msg(i, 0, 100 * i));
  led.on_run_end(1);

  PartyStat all = led.stat(LedgerField::kBytesSent);
  EXPECT_EQ(all.parties, 5u);
  EXPECT_EQ(all.max, 400u);
  EXPECT_EQ(all.argmax, 4u);
  EXPECT_EQ(all.total, 1000u);
  EXPECT_EQ(all.p50, 200u);  // sorted {0,100,200,300,400}
  EXPECT_EQ(all.p90, 400u);

  // Masking out the worst party (e.g. a corrupted one) changes the stat.
  std::vector<bool> exclude(5, false);
  exclude[4] = true;
  PartyStat honest = led.stat(LedgerField::kBytesSent, Ledger::kAllPhases, &exclude);
  EXPECT_EQ(honest.parties, 4u);
  EXPECT_EQ(honest.max, 300u);
  EXPECT_EQ(honest.argmax, 3u);
  EXPECT_EQ(honest.total, 600u);
}

TEST(Ledger, AccumulateModeCarriesTotalsAcrossRuns) {
  Ledger led;
  led.set_accumulate(true);
  for (int run = 0; run < 3; ++run) {
    led.on_run_begin(2);
    led.on_phase(0, "boost");
    led.on_send(0, msg(0, 1, 10));
    led.on_delivery(1, msg(0, 1, 10), Delivery::kDelivered);
    led.on_run_end(2);
  }
  // Whole-run totals accumulate over the three executions (the ℓ-execution
  // broadcast-service quantity)...
  EXPECT_EQ(led.total(0).bytes_sent, 30u);
  EXPECT_EQ(led.total(1).bytes_recv, 30u);
  // ...while phase tallies restart each run.
  EXPECT_EQ(led.phase_total(led.phase_index("boost"), 0).bytes_sent, 10u);

  // A different n cannot accumulate: the ledger resets.
  led.on_run_begin(3);
  EXPECT_EQ(led.total(0).bytes_sent, 0u);
}

TEST(Budget, BoundBitsMath) {
  // Pure polylog: c * log2(n)^k.
  Budget polylog{.c = 100, .k = 2};
  EXPECT_DOUBLE_EQ(polylog.bound_bits(1024), 100.0 * 10 * 10);
  // Linear: c * n.
  Budget linear{.c = 3, .k = 0, .n_exp = 1};
  EXPECT_DOUBLE_EQ(linear.bound_bits(64), 3.0 * 64);
  // Sqrt with a log factor: c * log2(n) * sqrt(n).
  Budget sqrt_b{.c = 2, .k = 1, .n_exp = 0.5};
  EXPECT_DOUBLE_EQ(sqrt_b.bound_bits(256), 2.0 * 8 * 16);
  // Validity floor.
  Budget floored{.c = 1, .k = 1, .n_exp = 0, .min_n = 512};
  EXPECT_FALSE(floored.applicable(256));
  EXPECT_TRUE(floored.applicable(512));
}

TEST(BudgetAuditor, EvaluatesPassFailAndSkip) {
  Ledger led;
  led.on_run_begin(4);
  led.on_phase(0, "boost");
  // Party 1 sends 100 bytes = 800 bits; parties 2, 3 receive 50 each.
  led.on_send(0, msg(1, 2, 50));
  led.on_send(0, msg(1, 3, 50));
  led.on_delivery(1, msg(1, 2, 50), Delivery::kDelivered);
  led.on_delivery(1, msg(1, 3, 50), Delivery::kDelivered);
  led.on_run_end(2);

  BudgetAuditor auditor;
  auditor.require("proto", "boost", Budget{.c = 1000, .k = 0});   // 1000 >= 800: ok
  auditor.require("tight", "boost", Budget{.c = 500, .k = 0});    // 500 < 800: finding
  auditor.require("floored", "boost", Budget{.c = 1, .k = 0, .n_exp = 0, .min_n = 64});
  auditor.require("ghost", "no-such-phase", Budget{.c = 1, .k = 0});
  ASSERT_EQ(auditor.size(), 4u);

  auto evals = auditor.evaluate(led);
  ASSERT_EQ(evals.size(), 4u);

  EXPECT_TRUE(evals[0].ok);
  EXPECT_FALSE(evals[0].skipped);
  EXPECT_EQ(evals[0].max_bits, 800u);  // party 1: 8 * (50 + 50) sent
  EXPECT_EQ(evals[0].worst_party, 1u);
  EXPECT_EQ(evals[0].audited, 4u);

  EXPECT_FALSE(evals[1].ok);
  EXPECT_EQ(evals[1].violators, 1u);  // only party 1 exceeds 500 bits

  EXPECT_TRUE(evals[2].skipped);  // n = 4 below the min_n = 64 floor
  EXPECT_FALSE(evals[2].skip_reason.empty());
  EXPECT_TRUE(evals[3].skipped);  // the phase never appeared in the ledger

  // audit() returns the findings only: ran and failed.
  auto findings = auditor.audit(led);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].protocol, "tight");

  // The corrupt-party mask changes the verdict: exclude the violator.
  std::vector<bool> exclude(4, false);
  exclude[1] = true;
  auto masked = auditor.evaluate(led, &exclude);
  EXPECT_TRUE(masked[1].ok);
  EXPECT_EQ(masked[1].audited, 3u);
}

TEST(BudgetAuditor, JsonShapeIsParseable) {
  Ledger led;
  led.on_run_begin(2);
  led.on_phase(0, "boost");
  led.on_send(0, msg(0, 1, 10));
  led.on_run_end(1);

  BudgetAuditor auditor;
  auditor.require("p", "boost", Budget{.c = 10, .k = 1, .n_exp = 0.5, .min_n = 2});
  PJson arr = testjson::parse(BudgetAuditor::to_json(auditor.evaluate(led)).dump());
  ASSERT_EQ(arr.array.size(), 1u);
  const PJson& e = arr.array[0];
  EXPECT_EQ(e.get("protocol")->string, "p");
  EXPECT_EQ(e.get("phase")->string, "boost");
  EXPECT_EQ(e.get("n")->integer, 2);
  EXPECT_EQ(e.get("max_bits")->integer, 80);
  ASSERT_NE(e.get("budget"), nullptr);
  EXPECT_EQ(e.get("budget")->get("c")->integer, 10);

  // Ledger::to_json with per-party rows round-trips too.
  PJson doc = testjson::parse(led.to_json(/*per_party=*/true).dump());
  ASSERT_NE(doc.get("per_party"), nullptr);
  ASSERT_EQ(doc.get("per_party")->array.size(), 2u);
  EXPECT_EQ(doc.get("per_party")->array[0].get("bytes_sent")->integer, 10);
  EXPECT_EQ(doc.get("totals")->get("bytes_sent")->get("max")->integer, 10);
}

}  // namespace
}  // namespace srds

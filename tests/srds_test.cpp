// Tests for the SRDS constructions (Theorems 2.7 and 2.8) and the
// robustness/forgery experiments (Figures 1 and 2).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "srds/games.hpp"
#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"

namespace srds {
namespace {

// --- helpers ---

std::unique_ptr<OwfSrds> make_owf(std::size_t n, std::size_t lambda, std::uint64_t seed) {
  OwfSrdsParams p;
  p.n_signers = n;
  p.expected_signers = lambda;
  auto scheme = std::make_unique<OwfSrds>(p, seed);
  for (std::size_t i = 0; i < n; ++i) scheme->keygen(i);
  scheme->finalize_keys();
  return scheme;
}

std::unique_ptr<SnarkSrds> make_snark(std::size_t n, std::uint64_t seed) {
  SnarkSrdsParams p;
  p.n_signers = n;
  auto scheme = std::make_unique<SnarkSrds>(p, seed);
  for (std::size_t i = 0; i < n; ++i) scheme->keygen(i);
  scheme->finalize_keys();
  return scheme;
}

/// All signatures of winners (OWF) / all signers (SNARK) on m.
std::vector<Bytes> sign_all(SrdsScheme& scheme, BytesView m) {
  std::vector<Bytes> sigs;
  for (std::size_t i = 0; i < scheme.signer_count(); ++i) {
    Bytes s = scheme.sign(i, m);
    if (!s.empty()) sigs.push_back(std::move(s));
  }
  return sigs;
}

// --- OWF-SRDS ---

TEST(OwfSrds, SortitionDensity) {
  auto scheme = make_owf(400, 40, 1);
  std::size_t winners = scheme->winner_count();
  EXPECT_GT(winners, 20u);
  EXPECT_LT(winners, 70u);
}

TEST(OwfSrds, LosersCannotSign) {
  auto scheme = make_owf(100, 10, 2);
  Bytes m = to_bytes("m");
  for (std::size_t i = 0; i < 100; ++i) {
    Bytes s = scheme->sign(i, m);
    EXPECT_EQ(s.empty(), !scheme->has_signing_key(i));
  }
}

TEST(OwfSrds, AggregateVerifyHappyPath) {
  auto scheme = make_owf(200, 32, 3);
  Bytes m = to_bytes("agree on y=1");
  auto sigs = sign_all(*scheme, m);
  ASSERT_GE(sigs.size(), scheme->threshold());
  Bytes agg = scheme->aggregate(m, sigs);
  ASSERT_FALSE(agg.empty());
  EXPECT_TRUE(scheme->verify(m, agg));
  EXPECT_EQ(scheme->base_count(agg), sigs.size());
}

TEST(OwfSrds, VerifyRejectsWrongMessage) {
  auto scheme = make_owf(200, 32, 4);
  Bytes m = to_bytes("m1");
  Bytes agg = scheme->aggregate(m, sign_all(*scheme, m));
  ASSERT_FALSE(agg.empty());
  EXPECT_FALSE(scheme->verify(to_bytes("m2"), agg));
}

TEST(OwfSrds, BelowThresholdRejected) {
  auto scheme = make_owf(200, 32, 5);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  ASSERT_GE(sigs.size(), scheme->threshold());
  sigs.resize(scheme->threshold() - 1);
  Bytes agg = scheme->aggregate(m, sigs);
  ASSERT_FALSE(agg.empty());
  EXPECT_FALSE(scheme->verify(m, agg));
}

TEST(OwfSrds, DuplicatesDoNotInflateCount) {
  auto scheme = make_owf(200, 32, 6);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  std::vector<Bytes> dup = sigs;
  dup.insert(dup.end(), sigs.begin(), sigs.end());
  dup.insert(dup.end(), sigs.begin(), sigs.end());
  Bytes agg = scheme->aggregate(m, dup);
  EXPECT_EQ(scheme->base_count(agg), sigs.size());
}

TEST(OwfSrds, RecursiveAggregationMatchesFlat) {
  auto scheme = make_owf(300, 32, 7);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  ASSERT_GE(sigs.size(), 4u);
  // Aggregate in two halves, then combine — tree-style.
  std::vector<Bytes> left(sigs.begin(), sigs.begin() + sigs.size() / 2);
  std::vector<Bytes> right(sigs.begin() + sigs.size() / 2, sigs.end());
  Bytes agg_l = scheme->aggregate(m, left);
  Bytes agg_r = scheme->aggregate(m, right);
  Bytes combined = scheme->aggregate(m, {agg_l, agg_r});
  Bytes flat = scheme->aggregate(m, sigs);
  EXPECT_EQ(combined, flat);
  EXPECT_TRUE(scheme->verify(m, combined));
}

TEST(OwfSrds, Aggregate1FiltersInvalid) {
  auto scheme = make_owf(200, 32, 8);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  std::vector<Bytes> inputs = sigs;
  inputs.push_back(Rng(1).bytes(100));               // garbage
  inputs.push_back(scheme->sign(0, to_bytes("x")));  // possibly ⊥ / wrong m
  auto filtered = scheme->aggregate1(m, inputs);
  EXPECT_EQ(filtered.size(), sigs.size());
}

TEST(OwfSrds, IndexRangeEncoding) {
  auto scheme = make_owf(200, 32, 9);
  Bytes m = to_bytes("m");
  std::size_t first = 0;
  while (!scheme->has_signing_key(first)) ++first;
  Bytes base = scheme->sign(first, m);
  IndexRange r;
  ASSERT_TRUE(scheme->index_range(base, r));
  EXPECT_EQ(r.min, first);
  EXPECT_EQ(r.max, first);

  auto sigs = sign_all(*scheme, m);
  Bytes agg = scheme->aggregate(m, sigs);
  ASSERT_TRUE(scheme->index_range(agg, r));
  EXPECT_LE(r.min, r.max);
  EXPECT_EQ(scheme->base_count(agg), sigs.size());
}

TEST(OwfSrds, TrustedPkiRefusesKeyReplacement) {
  OwfSrdsParams p;
  p.n_signers = 10;
  p.expected_signers = 5;
  OwfSrds scheme(p, 11);
  scheme.keygen(0);
  EXPECT_FALSE(scheme.replace_key(0, Bytes(32, 1)));
}

TEST(OwfSrds, SuccinctnessPolylogSize) {
  // Aggregate size depends on lambda (polylog budget), not on N.
  auto small = make_owf(100, 24, 12);
  auto large = make_owf(3200, 24, 13);
  Bytes m = to_bytes("m");
  Bytes agg_small = small->aggregate(m, sign_all(*small, m));
  Bytes agg_large = large->aggregate(m, sign_all(*large, m));
  ASSERT_FALSE(agg_small.empty());
  ASSERT_FALSE(agg_large.empty());
  // 32x more signers, size within sortition noise (same expected lambda).
  EXPECT_LT(agg_large.size(), agg_small.size() * 3);
}

// --- SNARK-SRDS ---

TEST(SnarkSrds, AggregateVerifyHappyPath) {
  auto scheme = make_snark(80, 1);
  Bytes m = to_bytes("block #7");
  auto sigs = sign_all(*scheme, m);
  ASSERT_EQ(sigs.size(), 80u);
  Bytes agg = scheme->aggregate(m, sigs);
  ASSERT_FALSE(agg.empty());
  EXPECT_TRUE(scheme->verify(m, agg));
  EXPECT_EQ(scheme->base_count(agg), 80u);
}

TEST(SnarkSrds, ConstantSizeAggregate) {
  auto s1 = make_snark(40, 2);
  auto s2 = make_snark(640, 3);
  Bytes m = to_bytes("m");
  Bytes a1 = s1->aggregate(m, sign_all(*s1, m));
  Bytes a2 = s2->aggregate(m, sign_all(*s2, m));
  ASSERT_FALSE(a1.empty());
  ASSERT_FALSE(a2.empty());
  EXPECT_EQ(a1.size(), a2.size());  // Õ(1): byte-identical layout
  EXPECT_LT(a1.size(), 256u);
}

TEST(SnarkSrds, VerifyRejectsWrongMessage) {
  auto scheme = make_snark(60, 4);
  Bytes m = to_bytes("m1");
  Bytes agg = scheme->aggregate(m, sign_all(*scheme, m));
  EXPECT_FALSE(scheme->verify(to_bytes("m2"), agg));
}

TEST(SnarkSrds, BelowThresholdRejected) {
  auto scheme = make_snark(60, 5);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  sigs.resize(scheme->threshold() - 1);
  Bytes agg = scheme->aggregate(m, sigs);
  ASSERT_FALSE(agg.empty());
  EXPECT_EQ(scheme->base_count(agg), scheme->threshold() - 1);
  EXPECT_FALSE(scheme->verify(m, agg));
}

TEST(SnarkSrds, RecursiveTreeAggregation) {
  auto scheme = make_snark(64, 6);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  // Aggregate in 8 leaf groups, then 2 internal, then the root.
  std::vector<Bytes> level1;
  for (std::size_t g = 0; g < 8; ++g) {
    std::vector<Bytes> group(sigs.begin() + g * 8, sigs.begin() + (g + 1) * 8);
    level1.push_back(scheme->aggregate(m, group));
    ASSERT_FALSE(level1.back().empty());
  }
  Bytes left = scheme->aggregate(m, {level1[0], level1[1], level1[2], level1[3]});
  Bytes right = scheme->aggregate(m, {level1[4], level1[5], level1[6], level1[7]});
  Bytes root = scheme->aggregate(m, {left, right});
  ASSERT_FALSE(root.empty());
  EXPECT_TRUE(scheme->verify(m, root));
  EXPECT_EQ(scheme->base_count(root), 64u);
}

TEST(SnarkSrds, DuplicateBaseSignatureRejectedByRanges) {
  auto scheme = make_snark(64, 7);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  // Two aggregates sharing base signature #5 cover overlapping ranges and
  // cannot be combined into a double-counting aggregate.
  std::vector<Bytes> g1(sigs.begin(), sigs.begin() + 10);        // [0, 9]
  std::vector<Bytes> g2(sigs.begin() + 5, sigs.begin() + 20);    // [5, 19]
  Bytes a1 = scheme->aggregate(m, g1);
  Bytes a2 = scheme->aggregate(m, g2);
  Bytes combined = scheme->aggregate(m, {a1, a2});
  // Aggregate1 must have dropped one of them: count < 10 + 15.
  ASSERT_FALSE(combined.empty());
  EXPECT_LT(scheme->base_count(combined), 25u);
}

TEST(SnarkSrds, DuplicatesDoNotInflateCount) {
  auto scheme = make_snark(50, 8);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  std::vector<Bytes> dup = sigs;
  dup.insert(dup.end(), sigs.begin(), sigs.end());
  Bytes agg = scheme->aggregate(m, dup);
  EXPECT_EQ(scheme->base_count(agg), 50u);
}

TEST(SnarkSrds, BareKeyReplacementWorks) {
  SnarkSrdsParams p;
  p.n_signers = 40;
  SnarkSrds scheme(p, 9);
  for (std::size_t i = 0; i < 40; ++i) scheme.keygen(i);
  Rng rng(10);
  WotsKeyPair adv_kp = wots_keygen(rng.bytes(32));
  ASSERT_TRUE(scheme.replace_key(7, adv_kp.verification_key.to_bytes()));
  scheme.finalize_keys();

  Bytes m = to_bytes("m");
  // The scheme no longer holds a signing key for 7...
  EXPECT_TRUE(scheme.sign(7, m).empty());
  // ...but the adversary can sign with its own key and it verifies.
  Bytes adv_sig = SnarkSrds::make_base_signature(7, adv_kp, m);
  auto filtered = scheme.aggregate1(m, {adv_sig});
  EXPECT_EQ(filtered.size(), 1u);
}

TEST(SnarkSrds, ReplacementRejectedAfterFinalize) {
  auto scheme = make_snark(20, 11);
  EXPECT_FALSE(scheme->replace_key(3, Bytes(32, 1)));
}

TEST(SnarkSrds, CrossCrsAggregatesRejected) {
  auto s1 = make_snark(30, 12);
  auto s2 = make_snark(30, 13);
  Bytes m = to_bytes("m");
  Bytes agg = s1->aggregate(m, sign_all(*s1, m));
  EXPECT_TRUE(s1->verify(m, agg));
  EXPECT_FALSE(s2->verify(m, agg));
}

TEST(SnarkSrds, Aggregate1FiltersForgedAndGarbage) {
  auto scheme = make_snark(30, 14);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  std::vector<Bytes> inputs = sigs;
  inputs.push_back(Rng(15).bytes(200));  // garbage
  Rng rng(16);
  WotsKeyPair rogue = wots_keygen(rng.bytes(32));
  inputs.push_back(SnarkSrds::make_base_signature(5, rogue, m));  // wrong key
  auto filtered = scheme->aggregate1(m, inputs);
  EXPECT_EQ(filtered.size(), sigs.size());
}

// --- Security games (Figures 1 and 2) ---

struct GameCase {
  AttackStrategy strategy;
  const char* label;
};

class RobustnessSweep : public ::testing::TestWithParam<GameCase> {};

TEST_P(RobustnessSweep, OwfSchemeRobust) {
  auto [strategy, label] = GetParam();
  CommTree tree = make_game_tree(120, 21);
  OwfSrdsParams p;
  p.n_signers = tree.virtual_count();
  p.expected_signers = 40;
  OwfSrds scheme(p, 22);
  GameConfig cfg;
  cfg.t = 12;  // 10%: the one-third goodness margin exists at this scale
  cfg.strategy = strategy;
  cfg.seed = 23;
  auto outcome = run_robustness_game(scheme, tree, cfg);
  EXPECT_FALSE(outcome.adversary_wins) << label;
  EXPECT_GE(outcome.root_base_count, scheme.threshold()) << label;
}

TEST_P(RobustnessSweep, SnarkSchemeRobust) {
  auto [strategy, label] = GetParam();
  CommTree tree = make_game_tree(120, 31);
  SnarkSrdsParams p;
  p.n_signers = tree.virtual_count();
  SnarkSrds scheme(p, 32);
  GameConfig cfg;
  cfg.t = 12;
  cfg.strategy = strategy;
  cfg.seed = 33;
  auto outcome = run_robustness_game(scheme, tree, cfg);
  EXPECT_FALSE(outcome.adversary_wins) << label;
  EXPECT_GE(outcome.root_base_count, scheme.threshold()) << label;
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, RobustnessSweep,
    ::testing::Values(GameCase{AttackStrategy::kSilent, "silent"},
                      GameCase{AttackStrategy::kGarbage, "garbage"},
                      GameCase{AttackStrategy::kWrongMessage, "wrong-message"},
                      GameCase{AttackStrategy::kDuplicate, "duplicate"},
                      GameCase{AttackStrategy::kBestEffort, "best-effort"}));

class ForgerySweep : public ::testing::TestWithParam<GameCase> {};

TEST_P(ForgerySweep, OwfSchemeUnforgeable) {
  auto [strategy, label] = GetParam();
  OwfSrdsParams p;
  p.n_signers = 150;
  p.expected_signers = 36;
  OwfSrds scheme(p, 41);
  GameConfig cfg;
  cfg.t = 49;  // maximal: |S ∪ I| < n/3
  cfg.strategy = strategy;
  cfg.seed = 42;
  auto outcome = run_forgery_game(scheme, cfg);
  EXPECT_FALSE(outcome.adversary_wins) << label;
}

TEST_P(ForgerySweep, SnarkSchemeUnforgeable) {
  auto [strategy, label] = GetParam();
  SnarkSrdsParams p;
  p.n_signers = 90;
  SnarkSrds scheme(p, 43);
  GameConfig cfg;
  cfg.t = 29;
  cfg.strategy = strategy;
  cfg.seed = 44;
  auto outcome = run_forgery_game(scheme, cfg);
  EXPECT_FALSE(outcome.adversary_wins) << label;
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ForgerySweep,
    ::testing::Values(GameCase{AttackStrategy::kGarbage, "garbage"},
                      GameCase{AttackStrategy::kWrongMessage, "wrong-message"},
                      GameCase{AttackStrategy::kDuplicate, "duplicate"}));

// Ablation: a clairvoyant adversary that sees sortition outcomes (i.e., a
// *broken* oblivious keygen) corrupts exactly the winners and kills
// robustness — demonstrating why the trusted PKI must hide signing ability.
TEST(RobustnessGame, ClairvoyantCorruptionBreaksOwfScheme) {
  CommTree tree = make_game_tree(120, 51);
  OwfSrdsParams p;
  p.n_signers = tree.virtual_count();
  p.expected_signers = 40;
  OwfSrds scheme(p, 52);
  GameConfig cfg;
  cfg.t = 36;  // enough to grab most winners when they are visible
  cfg.strategy = AttackStrategy::kWrongMessage;
  cfg.selector = CorruptionSelector::kClairvoyant;
  cfg.seed = 53;
  auto outcome = run_robustness_game(scheme, tree, cfg);
  EXPECT_TRUE(outcome.adversary_wins);
}

}  // namespace
}  // namespace srds

// Additional security-game coverage: bare-PKI key replacement inside the
// robustness game, WOTS-backend games, and parameterized seed sweeps.
#include <gtest/gtest.h>

#include "srds/games.hpp"
#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"

namespace srds {
namespace {

class GameSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GameSeeds, SnarkRobustnessAcrossSeeds) {
  CommTree tree = make_game_tree(108, GetParam());
  SnarkSrdsParams p;
  p.n_signers = tree.virtual_count();
  p.backend = BaseSigBackend::kCompact;
  SnarkSrds scheme(p, GetParam() * 3 + 1);
  GameConfig cfg;
  cfg.t = 10;
  cfg.strategy = AttackStrategy::kWrongMessage;
  cfg.seed = GetParam() * 7 + 2;
  auto out = run_robustness_game(scheme, tree, cfg);
  EXPECT_FALSE(out.adversary_wins) << "seed " << GetParam();
}

TEST_P(GameSeeds, OwfForgeryAcrossSeeds) {
  OwfSrdsParams p;
  p.n_signers = 150;
  p.expected_signers = 64;  // comfortable concentration margin
  p.backend = BaseSigBackend::kCompact;
  OwfSrds scheme(p, GetParam() * 11 + 3);
  GameConfig cfg;
  cfg.t = 49;
  cfg.strategy = AttackStrategy::kDuplicate;
  cfg.seed = GetParam() * 13 + 4;
  auto out = run_forgery_game(scheme, cfg);
  EXPECT_FALSE(out.adversary_wins) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GameSeeds, ::testing::Range<std::uint64_t>(1, 7));

TEST(GamesExtra, BareKeyReplacementExercisedInRobustness) {
  // The bare-PKI robustness game replaces every corrupted virtual key with
  // an adversary-held WOTS key and signs conflicting values with it; the
  // honest majority must still certify.
  CommTree tree = make_game_tree(108, 71);
  SnarkSrdsParams p;
  p.n_signers = tree.virtual_count();
  p.backend = BaseSigBackend::kWots;  // replacement needs the WOTS backend
  SnarkSrds scheme(p, 72);
  GameConfig cfg;
  cfg.t = 10;
  cfg.strategy = AttackStrategy::kWrongMessage;
  cfg.seed = 73;
  auto out = run_robustness_game(scheme, tree, cfg);
  EXPECT_FALSE(out.adversary_wins);
  EXPECT_GE(out.root_base_count, scheme.threshold());
}

TEST(GamesExtra, WotsBackendForgeryGame) {
  SnarkSrdsParams p;
  p.n_signers = 60;
  p.backend = BaseSigBackend::kWots;
  SnarkSrds scheme(p, 81);
  GameConfig cfg;
  cfg.t = 19;
  cfg.strategy = AttackStrategy::kWrongMessage;
  cfg.seed = 82;
  auto out = run_forgery_game(scheme, cfg);
  EXPECT_FALSE(out.adversary_wins);
}

TEST(GamesExtra, RobustnessReportsIsolationHonestly) {
  CommTree tree = make_game_tree(108, 91);
  OwfSrdsParams p;
  p.n_signers = tree.virtual_count();
  p.expected_signers = 48;
  p.backend = BaseSigBackend::kCompact;
  OwfSrds scheme(p, 92);
  GameConfig cfg;
  cfg.t = 20;
  cfg.strategy = AttackStrategy::kBestEffort;
  cfg.seed = 93;
  auto out = run_robustness_game(scheme, tree, cfg);
  // Diagnostics must be internally consistent.
  EXPECT_EQ(out.corrupted, 20u);
  EXPECT_LE(out.isolated_honest, scheme.signer_count());
  EXPECT_EQ(out.adversary_wins, !out.verified);
}

}  // namespace
}  // namespace srds

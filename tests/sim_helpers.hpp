// Shared helpers for protocol tests: build a Simulator hosting one
// SubProtocol per honest party.
#pragma once

#include <functional>
#include <memory>

#include "net/host.hpp"
#include "net/simulator.hpp"

namespace srds::testing {

/// Factory: party id -> its SubProtocol logic (called for honest ids only).
using ProtoFactory = std::function<std::unique_ptr<SubProtocol>(PartyId)>;

inline std::unique_ptr<Simulator> make_subproto_sim(std::size_t n,
                                                    const std::vector<bool>& corrupt,
                                                    const ProtoFactory& factory,
                                                    std::unique_ptr<Adversary> adversary) {
  std::vector<std::unique_ptr<Party>> parties(n);
  for (PartyId i = 0; i < n; ++i) {
    if (!corrupt[i]) {
      parties[i] = std::make_unique<SubProtocolHost>(i, factory(i));
    }
  }
  return std::make_unique<Simulator>(std::move(parties), corrupt,
                                     std::move(adversary));
}

/// Access the hosted protocol of an honest party, cast to T.
template <typename T>
T* hosted(Simulator& sim, PartyId i) {
  auto* host = dynamic_cast<SubProtocolHost*>(sim.party(i));
  return host ? dynamic_cast<T*>(host->protocol()) : nullptr;
}

}  // namespace srds::testing

// Tests for the simulated SNARK/PCD oracle.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "snark/snark.hpp"

namespace srds {
namespace {

CompliancePredicate statement_equals(const Bytes& expect) {
  return [expect](BytesView st, BytesView, const std::vector<PriorMessage>&) {
    return Bytes(st.begin(), st.end()) == expect;
  };
}

TEST(Snark, ProveVerifyHappyPath) {
  SnarkOracle oracle(1);
  Bytes st = to_bytes("x=5 is a sum");
  auto prover = oracle.register_predicate(statement_equals(st));
  auto proof = prover.prove(st, to_bytes("witness"), {});
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(prover.verifier().verify(st, *proof));
}

TEST(Snark, FalseStatementNotProvable) {
  SnarkOracle oracle(2);
  auto prover = oracle.register_predicate(statement_equals(to_bytes("good")));
  EXPECT_FALSE(prover.prove(to_bytes("evil"), to_bytes("w"), {}).has_value());
}

TEST(Snark, ProofDoesNotTransferAcrossStatements) {
  SnarkOracle oracle(3);
  auto prover = oracle.register_predicate(
      [](BytesView, BytesView, const std::vector<PriorMessage>&) { return true; });
  auto proof = prover.prove(to_bytes("a"), {}, {});
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(prover.verifier().verify(to_bytes("b"), *proof));
}

TEST(Snark, ProofDoesNotTransferAcrossPredicates) {
  SnarkOracle oracle(4);
  auto p1 = oracle.register_predicate(
      [](BytesView, BytesView, const std::vector<PriorMessage>&) { return true; });
  auto p2 = oracle.register_predicate(
      [](BytesView, BytesView, const std::vector<PriorMessage>&) { return true; });
  Bytes st = to_bytes("shared");
  auto proof = p1.prove(st, {}, {});
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(p1.verifier().verify(st, *proof));
  EXPECT_FALSE(p2.verifier().verify(st, *proof));
}

TEST(Snark, GuessedProofRejected) {
  SnarkOracle oracle(5);
  auto prover = oracle.register_predicate(
      [](BytesView, BytesView, const std::vector<PriorMessage>&) { return true; });
  SnarkProof forged;
  Rng rng(9);
  Bytes r = rng.bytes(64);
  std::copy(r.begin(), r.end(), forged.v.begin());
  EXPECT_FALSE(prover.verifier().verify(to_bytes("st"), forged));
}

TEST(Snark, ProofIsConstantSize) {
  EXPECT_EQ(SnarkProof::kSize, 64u);
  SnarkProof p;
  EXPECT_EQ(p.to_bytes().size(), 64u);
}

TEST(Snark, DifferentCrsDifferentProofs) {
  Bytes st = to_bytes("s");
  auto pred = [](BytesView, BytesView, const std::vector<PriorMessage>&) { return true; };
  SnarkOracle o1(10), o2(11);
  auto pr1 = o1.register_predicate(pred);
  auto pr2 = o2.register_predicate(pred);
  auto proof1 = pr1.prove(st, {}, {});
  ASSERT_TRUE(proof1.has_value());
  EXPECT_FALSE(pr2.verifier().verify(st, *proof1));
}

// Recursive composition: a counting PCD. Statement = u64 count; leaf
// statements must be 1 with witness "leaf"; inner statements must equal the
// sum of their children.
TEST(Snark, RecursiveCountingPcd) {
  SnarkOracle oracle(20);
  auto pred = [](BytesView st, BytesView wit, const std::vector<PriorMessage>& priors) {
    Reader r(st);
    std::uint64_t count = r.u64();
    if (!r.done()) return false;
    if (priors.empty()) {
      return count == 1 && to_string(wit) == "leaf";
    }
    std::uint64_t sum = 0;
    for (const auto& p : priors) {
      Reader pr(p.statement);
      sum += pr.u64();
      if (!pr.done()) return false;
    }
    return count == sum;
  };
  auto prover = oracle.register_predicate(pred);

  auto leaf_statement = [] {
    Writer w;
    w.u64(1);
    return std::move(w).take();
  };

  std::vector<PriorMessage> leaves;
  for (int i = 0; i < 4; ++i) {
    Bytes st = leaf_statement();
    auto proof = prover.prove(st, to_bytes("leaf"), {});
    ASSERT_TRUE(proof.has_value());
    leaves.push_back(PriorMessage{st, *proof});
  }

  Writer inner;
  inner.u64(4);
  auto inner_proof = prover.prove(inner.data(), {}, leaves);
  ASSERT_TRUE(inner_proof.has_value());
  EXPECT_TRUE(prover.verifier().verify(inner.data(), *inner_proof));

  // Lying about the count fails even with valid children.
  Writer lie;
  lie.u64(7);
  EXPECT_FALSE(prover.prove(lie.data(), {}, leaves).has_value());
}

TEST(Snark, InvalidPriorProofBlocksRecursion) {
  SnarkOracle oracle(21);
  auto prover = oracle.register_predicate(
      [](BytesView, BytesView, const std::vector<PriorMessage>&) { return true; });
  PriorMessage bogus{to_bytes("child"), SnarkProof{}};
  EXPECT_FALSE(prover.prove(to_bytes("parent"), {}, {bogus}).has_value());
}

TEST(Snark, SerializationRoundTrip) {
  SnarkOracle oracle(22);
  auto prover = oracle.register_predicate(
      [](BytesView, BytesView, const std::vector<PriorMessage>&) { return true; });
  Bytes st = to_bytes("st");
  auto proof = prover.prove(st, {}, {});
  ASSERT_TRUE(proof.has_value());
  Bytes wire = proof->to_bytes();
  SnarkProof back = SnarkProof::from(wire);
  EXPECT_TRUE(prover.verifier().verify(st, back));
}

}  // namespace
}  // namespace srds

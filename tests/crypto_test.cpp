// Unit and property tests for src/crypto.
#include <gtest/gtest.h>

#include <set>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/commit.hpp"
#include "crypto/hmac.hpp"
#include "crypto/lamport.hpp"
#include "crypto/merkle.hpp"
#include "crypto/multisig.hpp"
#include "crypto/prf.hpp"
#include "crypto/prg.hpp"
#include "crypto/sha256.hpp"
#include "crypto/simsig.hpp"
#include "crypto/wots.hpp"

namespace srds {
namespace {

// --- SHA-256: FIPS 180-4 / RFC 6234 test vectors ---

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(to_hex(sha256(Bytes{}).view()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256(to_bytes("abc")).view()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")).view()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 ctx;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish().view()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Bytes data = rng.bytes(1 + rng.below(300));
    Sha256 ctx;
    std::size_t cut = rng.below(data.size());
    ctx.update(BytesView{data.data(), cut});
    ctx.update(BytesView{data.data() + cut, data.size() - cut});
    EXPECT_EQ(ctx.finish(), sha256(data));
  }
}

TEST(Sha256, TaggedDomainSeparation) {
  Bytes m = to_bytes("msg");
  EXPECT_NE(sha256_tagged("a", m), sha256_tagged("b", m));
  EXPECT_NE(sha256_tagged("a", m), sha256(m));
}

// --- HMAC: RFC 4231 test vectors ---

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Hi There")).view()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?")).view()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First")).view()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- PRG ---

TEST(Prg, DeterministicAndSeedSeparated) {
  Bytes seed1(32, 1), seed2(32, 2);
  EXPECT_EQ(Prg(seed1).next(64), Prg(seed1).next(64));
  EXPECT_NE(Prg(seed1).next(64), Prg(seed2).next(64));
}

TEST(Prg, RandomAccessMatchesStream) {
  Bytes seed(32, 7);
  Prg stream(seed);
  Bytes first64 = stream.next(64);
  Prg ra(seed);
  Bytes b0 = ra.block(0).to_bytes();
  Bytes b1 = ra.block(1).to_bytes();
  Bytes joined = concat(b0, b1);
  EXPECT_EQ(first64, joined);
}

TEST(Prg, OddSizedReads) {
  Bytes seed(32, 9);
  Prg a(seed), b(seed);
  Bytes x = a.next(7);
  Bytes y = a.next(10);
  Bytes z = concat(x, y);
  EXPECT_EQ(z, b.next(17));
}

// --- PRF subset (paper Fig. 3 step 7) ---

TEST(PrfSubset, DeterministicSortedUnique) {
  Bytes seed = Rng(1).bytes(32);
  auto s1 = prf_subset(seed, 5, 100, 10);
  auto s2 = prf_subset(seed, 5, 100, 10);
  EXPECT_EQ(s1, s2);
  ASSERT_EQ(s1.size(), 10u);
  EXPECT_TRUE(std::is_sorted(s1.begin(), s1.end()));
  for (auto v : s1) EXPECT_LT(v, 100u);
}

TEST(PrfSubset, DifferentIndexDifferentSubset) {
  Bytes seed = Rng(2).bytes(32);
  EXPECT_NE(prf_subset(seed, 1, 1000, 8), prf_subset(seed, 2, 1000, 8));
}

TEST(PrfSubset, MembershipConsistent) {
  Bytes seed = Rng(3).bytes(32);
  auto s = prf_subset(seed, 9, 64, 6);
  for (std::size_t j = 0; j < 64; ++j) {
    bool in = std::binary_search(s.begin(), s.end(), j);
    EXPECT_EQ(prf_subset_contains(seed, 9, 64, 6, j), in);
  }
}

TEST(PrfSubset, FullSet) {
  Bytes seed = Rng(4).bytes(32);
  auto s = prf_subset(seed, 0, 5, 5);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// --- Merkle ---

class MerkleSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSizes, AllPathsVerify) {
  std::size_t n = GetParam();
  std::vector<Digest> leaves;
  Rng rng(100 + n);
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(Digest::from(rng.bytes(32)));
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    auto p = tree.path(i);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], p, n)) << "leaf " << i;
  }
}

TEST_P(MerkleSizes, WrongLeafRejected) {
  std::size_t n = GetParam();
  std::vector<Digest> leaves;
  Rng rng(200 + n);
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(Digest::from(rng.bytes(32)));
  MerkleTree tree(leaves);
  Digest bogus = Digest::from(rng.bytes(32));
  auto p = tree.path(0);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), bogus, p, n));
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100));

TEST(Merkle, WrongIndexRejected) {
  std::vector<Digest> leaves;
  Rng rng(5);
  for (int i = 0; i < 8; ++i) leaves.push_back(Digest::from(rng.bytes(32)));
  MerkleTree tree(leaves);
  auto p = tree.path(3);
  p.leaf_index = 4;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[3], p, 8));
}

TEST(Merkle, PathDepthMismatchRejected) {
  std::vector<Digest> leaves;
  Rng rng(6);
  for (int i = 0; i < 8; ++i) leaves.push_back(Digest::from(rng.bytes(32)));
  MerkleTree tree(leaves);
  auto p = tree.path(0);
  p.siblings.pop_back();
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[0], p, 8));
}

TEST(Merkle, PathSerializationRoundTrip) {
  std::vector<Digest> leaves;
  Rng rng(7);
  for (int i = 0; i < 12; ++i) leaves.push_back(Digest::from(rng.bytes(32)));
  MerkleTree tree(leaves);
  auto p = tree.path(5);
  Bytes ser = p.serialize();
  MerklePath q;
  ASSERT_TRUE(MerklePath::deserialize(ser, q));
  EXPECT_EQ(q.leaf_index, p.leaf_index);
  EXPECT_EQ(q.siblings, p.siblings);
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[5], q, 12));
}

TEST(Merkle, DeserializeRejectsGarbage) {
  MerklePath p;
  EXPECT_FALSE(MerklePath::deserialize(Bytes{1, 2, 3}, p));
}

TEST(Merkle, EmptyThrows) {
  EXPECT_THROW(MerkleTree(std::vector<Digest>{}), std::invalid_argument);
}

TEST(Merkle, RootDependsOnOrder) {
  Rng rng(8);
  Digest a = Digest::from(rng.bytes(32)), b = Digest::from(rng.bytes(32));
  EXPECT_NE(MerkleTree({a, b}).root(), MerkleTree({b, a}).root());
}

// --- Lamport OTS ---

TEST(Lamport, SignVerify) {
  auto kp = lamport_keygen(Rng(1).bytes(32));
  Bytes m = to_bytes("agree on y=1");
  auto sig = lamport_sign(kp, m);
  EXPECT_TRUE(lamport_verify(kp.verification_key, m, sig));
}

TEST(Lamport, WrongMessageRejected) {
  auto kp = lamport_keygen(Rng(2).bytes(32));
  auto sig = lamport_sign(kp, to_bytes("m1"));
  EXPECT_FALSE(lamport_verify(kp.verification_key, to_bytes("m2"), sig));
}

TEST(Lamport, WrongKeyRejected) {
  auto kp1 = lamport_keygen(Rng(3).bytes(32));
  auto kp2 = lamport_keygen(Rng(4).bytes(32));
  Bytes m = to_bytes("m");
  auto sig = lamport_sign(kp1, m);
  EXPECT_FALSE(lamport_verify(kp2.verification_key, m, sig));
}

TEST(Lamport, TamperedSignatureRejected) {
  auto kp = lamport_keygen(Rng(5).bytes(32));
  Bytes m = to_bytes("m");
  auto sig = lamport_sign(kp, m);
  sig.revealed[17].v[0] ^= 1;
  EXPECT_FALSE(lamport_verify(kp.verification_key, m, sig));
}

TEST(Lamport, SerializationRoundTrip) {
  auto kp = lamport_keygen(Rng(6).bytes(32));
  Bytes m = to_bytes("serialize me");
  auto sig = lamport_sign(kp, m);
  Bytes ser = sig.serialize();
  EXPECT_EQ(ser.size(), LamportSignature::kSerializedSize);
  LamportSignature back;
  ASSERT_TRUE(LamportSignature::deserialize(ser, back));
  EXPECT_TRUE(lamport_verify(kp.verification_key, m, back));
}

TEST(Lamport, ObliviousKeyLooksLikeRealKey) {
  // Same size/shape; no trivial distinguisher on the byte level.
  Rng rng(7);
  Digest ob = lamport_oblivious_keygen(rng);
  auto kp = lamport_keygen(rng.bytes(32));
  EXPECT_EQ(ob.v.size(), kp.verification_key.v.size());
  EXPECT_NE(ob, kp.verification_key);
}

TEST(Lamport, KeygenRequires32ByteSeed) {
  EXPECT_THROW(lamport_keygen(Bytes(16, 0)), std::invalid_argument);
}

// --- WOTS ---

TEST(Wots, SignVerify) {
  auto kp = wots_keygen(Rng(11).bytes(32));
  Bytes m = to_bytes("wots message");
  auto sig = wots_sign(kp, m);
  EXPECT_TRUE(wots_verify(kp.verification_key, m, sig));
}

TEST(Wots, WrongMessageRejected) {
  auto kp = wots_keygen(Rng(12).bytes(32));
  auto sig = wots_sign(kp, to_bytes("a"));
  EXPECT_FALSE(wots_verify(kp.verification_key, to_bytes("b"), sig));
}

TEST(Wots, WrongKeyRejected) {
  auto kp1 = wots_keygen(Rng(13).bytes(32));
  auto kp2 = wots_keygen(Rng(14).bytes(32));
  auto sig = wots_sign(kp1, to_bytes("m"));
  EXPECT_FALSE(wots_verify(kp2.verification_key, to_bytes("m"), sig));
}

TEST(Wots, TamperedChainRejected) {
  auto kp = wots_keygen(Rng(15).bytes(32));
  auto sig = wots_sign(kp, to_bytes("m"));
  sig.chain_values[30].v[5] ^= 0x40;
  EXPECT_FALSE(wots_verify(kp.verification_key, to_bytes("m"), sig));
}

TEST(Wots, SerializationRoundTrip) {
  auto kp = wots_keygen(Rng(16).bytes(32));
  Bytes m = to_bytes("x");
  auto sig = wots_sign(kp, m);
  Bytes ser = sig.serialize();
  EXPECT_EQ(ser.size(), WotsSignature::kSerializedSize);
  WotsSignature back;
  ASSERT_TRUE(WotsSignature::deserialize(ser, back));
  EXPECT_TRUE(wots_verify(kp.verification_key, m, back));
}

TEST(Wots, SignatureMuchSmallerThanLamport) {
  EXPECT_LT(WotsSignature::kSerializedSize * 7, LamportSignature::kSerializedSize);
}

class WotsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WotsFuzz, RandomMessagesRoundTrip) {
  Rng rng(GetParam() * 1000 + 17);
  auto kp = wots_keygen(rng.bytes(32));
  Bytes m = rng.bytes(1 + rng.below(200));
  auto sig = wots_sign(kp, m);
  EXPECT_TRUE(wots_verify(kp.verification_key, m, sig));
  Bytes m2 = m;
  m2[rng.below(m2.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
  EXPECT_FALSE(wots_verify(kp.verification_key, m2, sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WotsFuzz, ::testing::Range<std::uint64_t>(0, 12));

// --- Multisig (BGT'13 baseline stand-in) ---

TEST(Multisig, AggregateAndVerify) {
  MultisigRegistry reg(10, 42);
  Bytes m = to_bytes("block 7");
  std::vector<std::size_t> signers{1, 3, 4, 8};
  std::vector<MultisigTag> tags;
  for (auto i : signers) tags.push_back(reg.sign(i, m));
  Multisig ms = MultisigRegistry::aggregate(10, signers, tags);
  EXPECT_TRUE(reg.verify(m, ms));
  EXPECT_EQ(ms.signer_count(), 4u);
}

TEST(Multisig, WrongBitmapRejected) {
  MultisigRegistry reg(10, 42);
  Bytes m = to_bytes("m");
  Multisig ms = MultisigRegistry::aggregate(10, {1, 2}, {reg.sign(1, m), reg.sign(2, m)});
  ms.signers[5] = true;  // claim a signer who did not sign
  EXPECT_FALSE(reg.verify(m, ms));
}

TEST(Multisig, MergeDisjoint) {
  MultisigRegistry reg(8, 1);
  Bytes m = to_bytes("m");
  Multisig a = MultisigRegistry::aggregate(8, {0, 1}, {reg.sign(0, m), reg.sign(1, m)});
  Multisig b = MultisigRegistry::aggregate(8, {5}, {reg.sign(5, m)});
  ASSERT_TRUE(MultisigRegistry::merge(a, b));
  EXPECT_EQ(a.signer_count(), 3u);
  EXPECT_TRUE(reg.verify(m, a));
}

TEST(Multisig, MergeOverlapRejected) {
  MultisigRegistry reg(8, 1);
  Bytes m = to_bytes("m");
  Multisig a = MultisigRegistry::aggregate(8, {2}, {reg.sign(2, m)});
  Multisig b = MultisigRegistry::aggregate(8, {2}, {reg.sign(2, m)});
  EXPECT_FALSE(MultisigRegistry::merge(a, b));
}

TEST(Multisig, DuplicateSignerThrows) {
  MultisigRegistry reg(4, 1);
  Bytes m = to_bytes("m");
  EXPECT_THROW(
      MultisigRegistry::aggregate(4, {1, 1}, {reg.sign(1, m), reg.sign(1, m)}),
      std::invalid_argument);
}

TEST(Multisig, WireSizeGrowsLinearlyInN) {
  // The paper's §1.2 point: the signer set costs Θ(n) bits.
  Multisig small, big;
  small.signers.assign(64, false);
  big.signers.assign(4096, false);
  EXPECT_GT(big.wire_size(), small.wire_size() + 4096 / 8 - 64 / 8 - 1);
}

TEST(Multisig, SerializationRoundTrip) {
  MultisigRegistry reg(20, 9);
  Bytes m = to_bytes("ser");
  Multisig ms = MultisigRegistry::aggregate(20, {0, 7, 19},
                                            {reg.sign(0, m), reg.sign(7, m), reg.sign(19, m)});
  Bytes ser = ms.serialize();
  EXPECT_EQ(ser.size(), ms.wire_size());
  Multisig back;
  ASSERT_TRUE(Multisig::deserialize(ser, back));
  EXPECT_EQ(back.signers, ms.signers);
  EXPECT_TRUE(reg.verify(m, back));
}

// --- Commitments ---

TEST(Commit, OpenCorrectly) {
  Bytes r = Rng(1).bytes(32);
  Bytes m = to_bytes("coin share");
  auto c = commit(m, r);
  EXPECT_TRUE(commit_open(c, m, r));
}

TEST(Commit, WrongMessageOrRandomnessRejected) {
  Bytes r = Rng(2).bytes(32);
  Bytes r2 = Rng(3).bytes(32);
  Bytes m = to_bytes("m");
  auto c = commit(m, r);
  EXPECT_FALSE(commit_open(c, to_bytes("m'"), r));
  EXPECT_FALSE(commit_open(c, m, r2));
}

TEST(Commit, HidingShape) {
  // Commitments to the same message under different randomness differ.
  Bytes m = to_bytes("m");
  EXPECT_NE(commit(m, Rng(4).bytes(32)).value, commit(m, Rng(5).bytes(32)).value);
}

// --- SimSig ---

TEST(SimSig, SignVerify) {
  SimSigRegistry reg(5, 77);
  Bytes m = to_bytes("ds round 2");
  auto s = reg.sign(3, m);
  EXPECT_TRUE(reg.verify(3, m, s));
  EXPECT_FALSE(reg.verify(2, m, s));
  EXPECT_FALSE(reg.verify(3, to_bytes("other"), s));
}

TEST(SimSig, OutOfRange) {
  SimSigRegistry reg(5, 77);
  EXPECT_THROW(reg.sign(5, to_bytes("m")), std::out_of_range);
  EXPECT_FALSE(reg.verify(9, to_bytes("m"), SimSig{}));
}

}  // namespace
}  // namespace srds

// P1 fixture: hot-path hygiene. Functions marked `// srds-lint: hotpath`
// must not throw, allocate with new, or build a std::function; unmarked
// functions may do all three. Presented as src/net/p1_hotpath.cpp.
#include <functional>
#include <stdexcept>

namespace srds {

// srds-lint: hotpath
int p1_marked_throw(int x) {
  if (x < 0) throw std::runtime_error("bad");  // expect: P1 (line 11)
  return x;
}

// srds-lint: hotpath
int* p1_marked_new() {
  return new int(7);  // expect: P1 (line 17)
}

// srds-lint: hotpath
int p1_marked_type_erase(int x) {
  std::function<int(int)> f = [](int v) { return v + 1; };  // expect: P1 (line 22)
  return f(x);
}

// srds-lint: hotpath
int p1_marked_clean(int x) {
  int acc = 0;
  for (int i = 0; i < x; ++i) acc += i;
  return acc;
}

int p1_unmarked(int x) {
  // No marker: throw/new/std::function are all allowed here.
  if (x < 0) throw std::runtime_error("bad");
  std::function<int(int)> f = [](int v) { return v + 1; };
  return f(*new int(x));
}

}  // namespace srds

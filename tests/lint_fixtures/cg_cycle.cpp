// Call-graph fixture: mutual recursion under a shard root. The traversal
// must terminate and report the one planted violation exactly once.

// srds-lint: shard-root(ping)
void ping(int n) {
  if (n > 0) pong(n - 1);
}

void pong(int n) {
  static int depth = 0;  // the only violation in the cycle
  ++depth;
  ping(n);
}

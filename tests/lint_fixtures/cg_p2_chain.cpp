// Call-graph fixture: the hotpath-marked body is clean (no P1 finding),
// but a callee throws — P2 must report it with the call path.

// srds-lint: hotpath(fast_path)
void fast_path(int n) {
  slow_helper(n);
}

void slow_helper(int n) {
  if (n < 0) throw 1;  // P2: unwind reachable from the hot path
}

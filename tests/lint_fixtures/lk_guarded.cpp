// Locks fixture: guarded_by discipline. Reg::add takes the lock before
// touching items_; the public entry Reg::reset reaches the unlocked write
// in Reg::clear_unlocked — expected C2 finding with the unlocked call
// path. Expected (rule, line) pairs are asserted by
// tests/lint_locks_test.cpp — renumbering lines here means renumbering
// there.
#include <mutex>
#include <vector>

class Reg {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lk(mu_);
    items_.push_back(v);  // held: clean
  }
  void reset() { clear_unlocked(); }

 private:
  void clear_unlocked() {
    items_.clear();  // line 20: unheld access via Reg::reset
  }

  std::mutex mu_;
  std::vector<int> items_;  // srds-lint: guarded_by(mu_)
};

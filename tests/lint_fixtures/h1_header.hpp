// srds-lint fixture: header hygiene violations (rule H1). Deliberately has
// no #pragma once / include guard (finding reported at line 1), and drags
// a namespace into every includer. Lines asserted by tests/lint_test.cpp.
#include <vector>

using namespace std;  // line 6: using-namespace in header

namespace fixture {

inline vector<int> numbers() { return {1, 2, 3}; }

}  // namespace fixture

// Locks fixture: the clean counterpart of lk_guarded.cpp — the helper
// never takes the lock itself, but every caller enters it with the mutex
// held, so the per-mutex unheld traversal must not flag it.
#include <mutex>
#include <vector>

class Clean {
 public:
  void add(int v) {
    std::lock_guard<std::mutex> lk(mu_);
    append_locked(v);
  }
  void add_twice(int v) {
    std::lock_guard<std::mutex> lk(mu_);
    append_locked(v);
    append_locked(v);
  }

 private:
  void append_locked(int v) {
    items_.push_back(v);  // only ever entered under mu_
  }

  std::mutex mu_;
  std::vector<int> items_;  // srds-lint: guarded_by(mu_)
};

// L1 fixture: one half of a two-module include cycle. Presented as
// src/net/l1_cycle_a.hpp; together with l1_cycle_b.hpp (presented as
// src/crypto/l1_cycle_b.hpp) it forms net -> crypto -> net. The manifest
// permits neither direction (net = ["common"], crypto = ["common"]), so
// both edges are L1 findings and each message names the shortest module
// cycle the edge closes.
#pragma once

#include "crypto/l1_cycle_b.hpp"  // expect: L1 (line 9)

namespace srds {
inline int l1_cycle_a_fixture() { return 1; }
}  // namespace srds

// Lexer-hardening fixture: every construct here once confused (or could
// confuse) the token stream and the brace-matching body map — raw strings
// holding braces and quotes, prefixed raw strings, backslash-continued
// line comments, block-comment braces, and preprocessor-conditional
// braces. tests/lint_test.cpp pins the expected body names and asserts no
// rule fires anywhere in this file.
#include <cstddef>

const char* kRaw = R"(unbalanced { brace, rand() and a stray "quote)";
const char* kPrefixed = u8R"delim(more } braces } and time(nullptr))delim";

// A line comment with an unbalanced { brace, continued by a backslash \
   so this line is still comment text: } rand() time(nullptr)

/* a block comment with an { unbalanced brace */

int braces_in_strings() {
  const char* s = "{";
  return s[0] == '{' ? 1 : 0;
}

#if SRDS_OPTION_A
int branch_a(int x) {
  return x + 1;
#else
int branch_b(int x) {
  return rand();  // never lexed: only the first live branch is
#endif
}

#if 0
} } } // dead junk braces, rand(), std::random_device
#endif

int after_conditional() {
  return 2;
}

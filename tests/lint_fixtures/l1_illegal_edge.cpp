// L1 fixture: an illegal layering edge. Presented to the engine as
// src/crypto/l1_illegal_edge.cpp; crypto declares deps = ["common"] only,
// so including from ba is a back-edge up the stack.
#include "ba/ae_boost.hpp"  // expect: L1 (line 4)

namespace srds {
int l1_illegal_edge_fixture() { return 1; }
}  // namespace srds

// Call-graph fixture: first `helper` overload candidate (see
// cg_overload_a.cpp). Planted: file-scope mutable state write.
int g_votes = 0;

void helper(int x) {
  g_votes += x;
}

// L1 fixture: the other half of the net <-> crypto cycle; see
// l1_cycle_a.hpp. Presented as src/crypto/l1_cycle_b.hpp.
#pragma once

#include "net/l1_cycle_a.hpp"  // expect: L1 (line 5)

namespace srds {
inline int l1_cycle_b_fixture() { return 1; }
}  // namespace srds

// Locks fixture (1/2): acquires g_a then g_b — the AB half of the
// lock-order cycle whose BA half lives in lk_order_b.cpp. Free mutexes
// agree across translation units by name.
#include <mutex>

std::mutex g_a;
std::mutex g_b;

void ab_path() {
  std::lock_guard<std::mutex> la(g_a);
  std::lock_guard<std::mutex> lb(g_b);  // line 11: edge g_a -> g_b
}

// T1 fixture: raw payload-byte reads with no prior validation, in every
// shape the rule recognizes. Presented as src/ba/t1_raw_read.cpp.
#include <cstring>

#include "common/message.hpp"

namespace srds {

std::size_t t1_index_read(const Message& m) {
  return static_cast<std::size_t>(m.payload[0]);  // expect: T1 (line 10)
}

std::size_t t1_pointer_read(const Message& m) {
  const unsigned char* p = m.payload.data();  // expect: T1 (line 14)
  return static_cast<std::size_t>(p[3]);
}

void t1_memcpy_read(const Message& m, unsigned char* out) {
  std::memcpy(out, m.payload.data(), 4);  // expect: T1 (line 19)
}

std::size_t t1_late_validation(const Message& m) {
  std::size_t first = m.payload[0];  // expect: T1 (line 23) — read precedes the check
  if (!validate_frame(m.payload)) return 0;
  return first;
}

}  // namespace srds

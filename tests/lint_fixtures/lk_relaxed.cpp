// Locks fixture: memory_order_relaxed sites for the C3 relaxed audit —
// flagged with no manifest, silenced by an [allow-relaxed] wildcard.
#include <atomic>

class Stat {
 public:
  void bump() { v_.fetch_add(1, std::memory_order_relaxed); }  // line 7
  unsigned read() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<unsigned> v_{0};
};

// Call-graph fixture: second `helper` overload candidate (see
// cg_overload_a.cpp). Planted: function-local static.
void helper(int x) {
  static int calls = 0;
  calls += x;
}

// T1 fixture: payload bytes read only after validation. Presented as
// src/ba/t1_validated.cpp. Every function here validates (deserialize /
// untag_body / a Reader) before touching Message::payload bytes, so T1
// reports nothing.
#include <cstring>

#include "common/message.hpp"
#include "common/serial.hpp"

namespace srds {

std::size_t t1_after_deserialize(const Message& m) {
  Header h;
  if (!deserialize_header(m.payload, h)) return 0;
  return static_cast<std::size_t>(m.payload[0]);  // validated above
}

std::size_t t1_via_reader(const Message& m) {
  Reader r(m.payload);
  const unsigned char* p = m.payload.data();
  return static_cast<std::size_t>(*p);
}

std::size_t t1_size_only(const Message& m) {
  // .size()/.empty() are not byte reads; no validation needed.
  if (m.payload.empty()) return 0;
  return m.payload.size();
}

void t1_pass_whole(const Message& m, Bytes& out) {
  // Handing the whole payload to another function is not a byte read at
  // this site; the callee is responsible for validating.
  out = m.payload;
}

}  // namespace srds

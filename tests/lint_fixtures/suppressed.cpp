// srds-lint fixture: suppression behavior. Lines asserted exactly by
// tests/lint_test.cpp.

namespace fixture {

long trailing_ok() {
  return time(nullptr);  // srds-lint: allow(D1): fixture exercises a justified trailing suppression
}

long line_above_ok() {
  // srds-lint: allow(D1): fixture exercises a comment-line suppression covering the next code line
  return time(nullptr);
}

long missing_justification() {
  return time(nullptr);  // srds-lint: allow(D1)
}

long unknown_rule() {
  return time(nullptr);  // srds-lint: allow(Z9): no such rule exists
}

}  // namespace fixture

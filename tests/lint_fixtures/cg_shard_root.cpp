// Call-graph fixture: a shard-root whose closure crosses into
// cg_shard_state.cpp, where every planted C1 violation lives. The root
// file itself is clean — findings must carry the cross-file call path.
#include "ba/cg_shard_state.hpp"

// srds-lint: shard-root(DemoParty::on_round)
std::vector<int> DemoParty::on_round(std::size_t round) {
  prepare(round);
  return {};
}

void DemoParty::prepare(std::size_t round) {
  bump_counter(round);
  cached_weight(round);
  sum_votes(votes_);
  draw(round);
  read_config();
}

// srds-lint fixture: raw Message construction (rule B1). Linted under a
// protocol path (src/consensus/...) where construction must go through
// make_msg; tests/lint_test.cpp also lints it under src/net/... where the
// same lines are legal. Line numbers are asserted exactly.
#include "net/message.hpp"

namespace fixture {

srds::Message braced(srds::PartyId me) {
  return srds::Message{me, 0, {}, srds::MsgKind::kUnknown};  // line 10: braced
}

srds::Message functional(srds::PartyId me) {
  return Message(me, 0);  // line 14: functional cast
}

void fine(srds::PartyId me) {
  std::vector<srds::Message> outbox;     // template arg: no finding
  const srds::Message& ref = outbox[0];  // reference: no finding
  (void)ref;
  (void)me;
}

}  // namespace fixture

// Call-graph fixture: `payload` is handed through two helpers before the
// caller validates; the innermost helper reads a byte before its own
// validation. T2 must report the read with the full handoff flow.

void consume(BytesView payload) {
  route(payload);     // handoff before the Reader below
  Reader r(payload);  // caller validates too late
}

void route(BytesView data) {
  forward(data);
}

void forward(BytesView body) {
  if (body[0] == 1) return;  // byte read before validation
  Reader r(body);
}

// Locks fixture: [shared] manifest fields for the C3 atomics audit — a
// plain counter mutated by read-modify-writes, an atomic mutated by a
// split load-store, and an unprotected field with no RMW site (flagged at
// its declaration). The [shared] list lives in the test, not a file.
#include <atomic>

class Tally {
 public:
  void hit() { hits_ += 1; }  // line 9: RMW on non-atomic shared
  void spin() { hits_++; }    // line 10: second RMW site
  void lose() { total_ = total_ + 1; }  // line 11: load-store on atomic
  void gain() { total_.fetch_add(1); }  // single RMW: clean
  long peek() const { return raw_; }

 private:
  long hits_ = 0;
  std::atomic<long> total_{0};
  long raw_ = 0;  // line 18: shared, unprotected, no RMW site
};

// srds-lint fixture: serialize/deserialize pairing (rule S1). Line numbers
// are asserted exactly by tests/lint_test.cpp.
#pragma once

#include "common/bytes.hpp"

namespace fixture {

// Well-formed: both directions declared in the same type.
struct RoundTrip {
  srds::Bytes serialize() const;
  static bool deserialize(srds::BytesView data, RoundTrip& out);
};

// Violation: one-way type.
struct OneWay {
  srds::Bytes serialize() const;  // line 17: serialize without deserialize
};

// Calls *named* serialize inside a member are not declarations — no finding.
struct Caller {
  void run(const RoundTrip& rt) { auto b = rt.serialize(); (void)b; }
};

}  // namespace fixture

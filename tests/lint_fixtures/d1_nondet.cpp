// srds-lint fixture: every D1 nondeterminism source, one per line group.
// Presented to the linter under a protocol-dir logical path (src/ba/...),
// so the unordered-container checks fire too. Line numbers are asserted
// exactly by tests/lint_test.cpp — edit with care.
#include <unordered_map>

#include <random>

namespace fixture {

int wall_clock_seed() {
  int x = rand();                 // line 12: rand()
  std::random_device rd;          // line 13: random_device
  long t = time(nullptr);         // line 14: time()
  auto now = std::chrono::system_clock::now();  // line 15: system_clock
  (void)now;
  return x + static_cast<int>(rd()) + static_cast<int>(t);
}

void container_order() {
  std::unordered_map<int, int> m;  // line 21: unordered_map
  std::unordered_set<int> s;       // line 22: unordered_set
  (void)m;
  (void)s;
}

// Comment mentions rand() and unordered_map — must NOT fire (lexer strips
// comments). Nor does the string literal below.
const char* kNote = "call rand() and iterate an unordered_map";

}  // namespace fixture

// T1 fixture: the read hides behind a helper that takes the raw payload.
// Presented as src/ba/t1_helper.cpp. The rule is per-function: the caller
// passing m.payload through is fine, but the helper that indexes the bytes
// without validating is flagged — exactly where the bounds check belongs.
#include "common/message.hpp"

namespace srds {

std::size_t t1_peek_helper(const Bytes& payload) {
  return static_cast<std::size_t>(payload[0]);  // expect: T1 (line 10)
}

std::size_t t1_caller(const Message& m) {
  if (m.payload.empty()) return 0;
  return t1_peek_helper(m.payload);  // passing through: no finding here
}

}  // namespace srds

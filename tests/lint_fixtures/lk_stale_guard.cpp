// Locks fixture: stale guarded_by markers — one naming a mutex that does
// not exist, one binding to no field declaration at all. Both must be
// findings; neither may silently register a guard.
#include <mutex>

class Odd {
 public:
  int get() const { return v_; }

 private:
  std::mutex mu_;
  int v_ = 0;  // srds-lint: guarded_by(gone_)

  // srds-lint: guarded_by(mu_)
};

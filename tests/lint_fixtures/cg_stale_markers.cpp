// Call-graph fixture: both marker kinds naming functions that no longer
// exist. Stale markers are findings (P1 for hotpath, C1 for shard-root),
// never silently dropped.

// srds-lint: hotpath(RemovedFast::send)
// srds-lint: shard-root(RemovedParty::on_round)

void unrelated(int x) {
  (void)x;
}

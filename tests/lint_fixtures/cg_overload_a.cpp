// Call-graph fixture: the root's file defines no `helper`, so resolution
// falls back to every same-name definition (cg_overload_b.cpp and
// cg_overload_c.cpp) — the documented over-approximation.

// srds-lint: shard-root(run_round)
void run_round() {
  helper(1);
}

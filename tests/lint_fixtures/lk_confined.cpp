// Locks fixture: confined state crossing into the shard surface — the
// shard root reaches Collector::absorb through Worker::relay, and absorb
// mutates a field annotated confined(sim-loop). Expected C3 finding with
// the full call path; a locks.toml [allow] on the *intermediate* hop must
// stop the traversal (absorb itself stays unlisted).
#include <cstddef>

class Collector {
 public:
  void absorb(int v) {
    total_ += v;  // line 11: confined field, shard-reachable
  }

 private:
  long total_ = 0;  // srds-lint: confined(sim-loop)
};

class Worker {
 public:
  // srds-lint: shard-root(Worker::on_round)
  void on_round(Collector& c) { relay(c); }

 private:
  void relay(Collector& c) { c.absorb(1); }
};

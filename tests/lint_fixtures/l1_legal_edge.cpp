// L1 fixture: a legal layering edge. Presented to the engine as
// src/ba/l1_legal_edge.cpp alongside the stock layers manifest; ba declares
// a dependency on crypto, so this include produces no finding.
#include "crypto/sig.hpp"

namespace srds {
int l1_legal_edge_fixture() { return 1; }
}  // namespace srds

// Call-graph fixture: one planted C1 violation per helper, all reachable
// from the shard-root in cg_shard_root.cpp. Expected findings (rule, line)
// are asserted by tests/lint_callgraph_test.cpp — renumbering lines here
// means renumbering there.
#include <cstddef>
#include <random>
#include <unordered_map>

std::size_t g_round_counter = 0;

void bump_counter(std::size_t round) {
  g_round_counter += round;  // file-scope mutable state write
}

std::size_t cached_weight(std::size_t round) {
  static std::size_t memo = 0;  // function-local static
  memo += round;
  return memo;
}

std::size_t sum_votes(const std::unordered_map<int, int>& votes) {
  std::size_t s = 0;
  for (const auto& kv : votes) s += kv.second;  // unordered iteration
  return s;
}

std::size_t draw(std::size_t seed) {
  std::mt19937 eng(seed);  // RNG engine outside the seeded chain
  return eng();
}

std::size_t read_config() {
  return Config::instance().limit;  // singleton escape
}

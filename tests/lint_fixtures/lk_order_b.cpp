// Locks fixture (2/2): acquires g_b then g_a — closes the cycle opened in
// lk_order_a.cpp. The BA acquisition is two calls deep so the cycle report
// must carry the call path, not just the edge site.
#include <mutex>

extern std::mutex g_a;
extern std::mutex g_b;

void grab_a() {
  std::lock_guard<std::mutex> la(g_a);  // line 10: edge g_b -> g_a lands here
}

void ba_step() { grab_a(); }

void ba_path() {
  std::lock_guard<std::mutex> lb(g_b);
  ba_step();
}

// srds-lint fixture: a fully clean protocol header — the linter must
// report nothing for it under any logical path.
#pragma once

#include <map>
#include <vector>

#include "common/bytes.hpp"

namespace fixture {

struct Pair {
  srds::Bytes serialize() const;
  static bool deserialize(srds::BytesView data, Pair& out);
};

/// Deterministic iteration: ordered map, sorted recipients.
inline std::vector<int> keys(const std::map<int, int>& m) {
  std::vector<int> out;
  for (const auto& [k, v] : m) out.push_back(k);
  return out;
}

}  // namespace fixture

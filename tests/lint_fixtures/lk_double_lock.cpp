// Locks fixture: double acquisition of one non-recursive mutex — once by
// locally nested guard scopes, once through a call made under the lock.
// Expected (rule, line) pairs are asserted by tests/lint_locks_test.cpp.
#include <mutex>

class Box {
 public:
  void local() {
    std::lock_guard<std::mutex> a(mu_);
    std::lock_guard<std::mutex> b(mu_);  // line 10: local double-lock
    ++n_;
  }
  void outer() {
    std::lock_guard<std::mutex> lk(mu_);
    inner();
  }

 private:
  void inner() {
    std::lock_guard<std::mutex> lk(mu_);  // line 20: double-lock via outer
    ++n_;
  }

  std::mutex mu_;
  int n_ = 0;
};

// Tests for the simulated FHE and the Corollary 1.2(2) scalable MPC.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mpc/fhe.hpp"
#include "mpc/scalable_mpc.hpp"

namespace srds {
namespace {

// --- FHE oracle ---

TEST(Fhe, EncryptDecryptRoundTrip) {
  auto oracle = FheOracle::create(1, 2);
  auto ct = oracle->encrypt(42);
  std::vector<DecryptionShare> shares{oracle->issue_share(0), oracle->issue_share(1)};
  auto pt = oracle->decrypt(ct, shares);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, 42u);
}

TEST(Fhe, ThresholdEnforced) {
  auto oracle = FheOracle::create(2, 3);
  auto ct = oracle->encrypt(7);
  std::vector<DecryptionShare> two{oracle->issue_share(0), oracle->issue_share(1)};
  EXPECT_FALSE(oracle->decrypt(ct, two).has_value());
  // Duplicate holders do not count twice.
  std::vector<DecryptionShare> dup{oracle->issue_share(0), oracle->issue_share(0),
                                   oracle->issue_share(0)};
  EXPECT_FALSE(oracle->decrypt(ct, dup).has_value());
}

TEST(Fhe, HomomorphicAdditionAndScaling) {
  auto oracle = FheOracle::create(3, 1);
  auto a = oracle->encrypt(10);
  auto b = oracle->encrypt(32);
  auto sum = oracle->add(a, b);
  ASSERT_TRUE(sum.has_value());
  auto scaled = oracle->mul_const(*sum, 3);
  ASSERT_TRUE(scaled.has_value());
  std::vector<DecryptionShare> shares{oracle->issue_share(0)};
  EXPECT_EQ(oracle->decrypt(*sum, shares), std::optional<std::uint64_t>(42));
  EXPECT_EQ(oracle->decrypt(*scaled, shares), std::optional<std::uint64_t>(126));
}

TEST(Fhe, DeterministicEvaluation) {
  // Two parties evaluating the same circuit over the same ciphertexts get
  // byte-identical results — the property committee voting relies on.
  auto oracle = FheOracle::create(4, 1);
  auto a = oracle->encrypt(1);
  auto b = oracle->encrypt(2);
  auto s1 = oracle->add(a, b);
  auto s2 = oracle->add(a, b);
  ASSERT_TRUE(s1.has_value() && s2.has_value());
  EXPECT_EQ(*s1, *s2);
}

TEST(Fhe, ForgedCiphertextsRejected) {
  auto oracle = FheOracle::create(5, 1);
  auto real = oracle->encrypt(1);
  Ciphertext forged = real;
  forged.tag.v[0] ^= 1;
  EXPECT_FALSE(oracle->valid(forged));
  EXPECT_FALSE(oracle->add(real, forged).has_value());
  std::vector<DecryptionShare> shares{oracle->issue_share(0)};
  EXPECT_FALSE(oracle->decrypt(forged, shares).has_value());
}

TEST(Fhe, CrossOracleSharesUseless) {
  auto o1 = FheOracle::create(6, 1);
  auto o2 = FheOracle::create(7, 1);
  auto ct = o1->encrypt(9);
  std::vector<DecryptionShare> wrong{o2->issue_share(0)};
  EXPECT_FALSE(o1->decrypt(ct, wrong).has_value());
}

TEST(Fhe, CiphertextSerializationRoundTrip) {
  auto oracle = FheOracle::create(8, 1);
  auto ct = oracle->encrypt(5);
  Bytes wire = ct.serialize();
  EXPECT_EQ(wire.size(), Ciphertext::kSize);
  Ciphertext back;
  ASSERT_TRUE(Ciphertext::deserialize(wire, back));
  EXPECT_EQ(back, ct);
}

// --- scalable MPC (Cor. 1.2(2)) ---

TEST(ScalableMpc, ComputesSumNoCorruption) {
  MpcRunConfig cfg;
  cfg.n = 128;
  cfg.beta = 0.0;
  cfg.seed = 10;
  auto r = run_scalable_sum_mpc(cfg);
  EXPECT_TRUE(r.agreement);
  ASSERT_TRUE(r.output.has_value());
  EXPECT_EQ(*r.output, r.expected_sum);
  EXPECT_EQ(r.decided, r.honest);
}

TEST(ScalableMpc, SilentCorruptionDegradesGracefully) {
  MpcRunConfig cfg;
  cfg.n = 128;
  cfg.beta = 0.2;
  cfg.seed = 11;
  auto r = run_scalable_sum_mpc(cfg);
  EXPECT_TRUE(r.agreement);
  ASSERT_TRUE(r.output.has_value());
  // Fail-silent parties contribute nothing; honest contributions must all
  // be counted (some may be lost only if an entire path went corrupt).
  EXPECT_GE(*r.output, r.expected_sum * 9 / 10);
  EXPECT_LE(*r.output, r.expected_sum);
  EXPECT_GE(static_cast<double>(r.decided), 0.9 * static_cast<double>(r.honest));
}

TEST(ScalableMpc, ArbitraryInputValues) {
  MpcRunConfig cfg;
  cfg.n = 96;
  cfg.beta = 0.0;
  cfg.seed = 12;
  cfg.input_value = 7;
  auto r = run_scalable_sum_mpc(cfg);
  ASSERT_TRUE(r.output.has_value());
  EXPECT_EQ(*r.output, 7u * r.honest);
}

TEST(ScalableMpc, TotalCommunicationQuasiLinear) {
  MpcRunConfig small, big;
  small.n = 128;
  small.seed = 13;
  big.n = 512;
  big.seed = 13;
  auto rs = run_scalable_sum_mpc(small);
  auto rb = run_scalable_sum_mpc(big);
  // Total communication n·polylog: 4x the parties must cost well under
  // 16x (quadratic would be 16x; allow polylog headroom over 4x).
  double growth = static_cast<double>(rb.stats.total_bytes()) /
                  static_cast<double>(rs.stats.total_bytes());
  EXPECT_LT(growth, 10.0);
  EXPECT_GT(growth, 2.0);
}

TEST(ScalableMpc, PerPartyLocalityPolylog) {
  MpcRunConfig cfg;
  cfg.n = 256;
  cfg.seed = 14;
  auto r = run_scalable_sum_mpc(cfg);
  // Scaled-committee constants are chunky at n=256; the slope is what
  // matters (see TotalCommunicationQuasiLinear). Far below the full graph:
  EXPECT_LT(r.stats.max_locality(), 256u * 9 / 10);
}

}  // namespace
}  // namespace srds

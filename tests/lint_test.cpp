// srds-lint engine tests: every rule against a fixture with known
// violations (exact rule IDs and line numbers), suppression semantics,
// severity overrides, path scoping, and — reusing the PR 2 determinism-
// guard pattern — byte-identical JSON output across two runs.
//
// Fixtures live in tests/lint_fixtures/ and are linted under *logical*
// paths (the engine scopes rules by repo-relative path, so the same bytes
// can be checked as protocol code, network code, or rng-home code).

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace srds::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(SRDS_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// (rule, line) pairs of unsuppressed findings, sorted.
std::set<std::pair<std::string, std::size_t>> hits(const std::vector<Finding>& fs) {
  std::set<std::pair<std::string, std::size_t>> out;
  for (const Finding& f : fs) {
    if (!f.suppressed) out.insert({f.rule, f.line});
  }
  return out;
}

TEST(LintD1, FlagsEveryNondeterminismSourceInProtocolDirs) {
  const auto fs = lint_file("src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"D1", 5},   // #include <unordered_map>
      {"D1", 12},  // rand()
      {"D1", 13},  // std::random_device
      {"D1", 14},  // time(nullptr)
      {"D1", 15},  // chrono::system_clock
      {"D1", 21},  // unordered_map
      {"D1", 22},  // unordered_set
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintD1, UnorderedContainersAllowedOutsideProtocolDirs) {
  const auto fs = lint_file("src/obs/d1_nondet.cpp", fixture("d1_nondet.cpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"D1", 12}, {"D1", 13}, {"D1", 14}, {"D1", 15},
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintD1, RngHomeIsExemptFromRandomnessChecks) {
  const auto fs = lint_file("src/common/rng.cpp", fixture("d1_nondet.cpp"), {});
  EXPECT_TRUE(hits(fs).empty());
}

TEST(LintB1, FlagsRawMessageConstructionOutsideNet) {
  const auto fs =
      lint_file("src/consensus/b1_raw_message.cpp", fixture("b1_raw_message.cpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"B1", 10},  // braced construction
      {"B1", 14},  // functional cast
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintB1, NetLayerMayConstructMessages) {
  const auto fs = lint_file("src/net/b1_raw_message.cpp", fixture("b1_raw_message.cpp"), {});
  EXPECT_TRUE(hits(fs).empty());
}

TEST(LintS1, FlagsSerializeWithoutDeserialize) {
  const auto fs = lint_file("src/srds/s1_serialize.hpp", fixture("s1_serialize.hpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"S1", 17},  // OneWay::serialize
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintS1, RequiresRoundTripTestReferenceWhenCorpusGiven) {
  Config cfg;
  cfg.test_corpus = "TEST(RoundTrip, Works) { fixture::RoundTrip x; }";
  const auto fs = lint_file("src/srds/s1_serialize.hpp", fixture("s1_serialize.hpp"), cfg);
  // RoundTrip is referenced; OneWay still lacks deserialize.
  EXPECT_EQ(hits(fs), (std::set<std::pair<std::string, std::size_t>>{{"S1", 17}}));

  Config empty_corpus;
  empty_corpus.test_corpus = "TEST(Unrelated, Nothing) {}";
  const auto fs2 =
      lint_file("src/srds/s1_serialize.hpp", fixture("s1_serialize.hpp"), empty_corpus);
  // Now RoundTrip (declared line 10) is also flagged: no test references it.
  EXPECT_EQ(hits(fs2),
            (std::set<std::pair<std::string, std::size_t>>{{"S1", 10}, {"S1", 17}}));
}

TEST(LintH1, FlagsMissingGuardAndUsingNamespace) {
  const auto fs = lint_file("src/tree/h1_header.hpp", fixture("h1_header.hpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"H1", 1},  // no #pragma once / include guard
      {"H1", 6},  // using namespace in header
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintH1, SourceFilesAreNotHeaderChecked) {
  // Same bytes as a .cpp: H1 does not apply.
  const auto fs = lint_file("src/tree/h1_header.cpp", fixture("h1_header.hpp"), {});
  EXPECT_TRUE(hits(fs).empty());
}

TEST(LintClean, CleanFixtureHasNoFindingsAnywhere) {
  const std::string content = fixture("clean.hpp");
  Config cfg;
  cfg.test_corpus = "fixture::Pair round trip";
  for (const char* path : {"src/ba/clean.hpp", "src/consensus/clean.hpp",
                           "src/net/clean.hpp", "src/obs/clean.hpp"}) {
    const auto fs = lint_file(path, content, cfg);
    EXPECT_TRUE(fs.empty()) << path << ": " << (fs.empty() ? "" : fs.front().message);
  }
}

TEST(LintSuppress, JustifiedSuppressionsCoverTrailingAndNextLine) {
  const auto fs = lint_file("src/obs/suppressed.cpp", fixture("suppressed.cpp"), {});
  // Unsuppressed: the malformed allow() lines keep their D1 findings and
  // gain A0 findings.
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"A0", 16},  // allow(D1) with no justification
      {"A0", 20},  // allow(Z9): unknown rule
      {"D1", 16},
      {"D1", 20},
  };
  EXPECT_EQ(hits(fs), expected);

  // Suppressed: the justified trailing comment (line 7) and the justified
  // comment-only line covering the next code line (12).
  std::set<std::pair<std::string, std::size_t>> suppressed;
  for (const Finding& f : fs) {
    if (f.suppressed) {
      EXPECT_FALSE(f.justification.empty());
      suppressed.insert({f.rule, f.line});
    }
  }
  const std::set<std::pair<std::string, std::size_t>> expected_suppressed = {
      {"D1", 7},
      {"D1", 12},
  };
  EXPECT_EQ(suppressed, expected_suppressed);

  EXPECT_TRUE(has_blocking(fs));  // the malformed ones still block
}

TEST(LintSeverity, OverridesDowngradeAndDisable) {
  Config warn;
  warn.overrides.emplace_back("D1", Severity::kWarn);
  const auto fs = lint_file("src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp"), warn);
  EXPECT_FALSE(fs.empty());
  EXPECT_FALSE(has_blocking(fs));  // warnings never block

  Config off;
  off.overrides.emplace_back("D1", Severity::kOff);
  const auto fs2 = lint_file("src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp"), off);
  EXPECT_TRUE(fs2.empty());
}

TEST(LintEngine, RuleTableLooksUpEveryRule) {
  for (const RuleInfo& r : rules()) {
    const RuleInfo* found = find_rule(r.id);
    ASSERT_NE(found, nullptr);
    EXPECT_STREQ(found->id, r.id);
  }
  EXPECT_EQ(find_rule("Z9"), nullptr);
}

// The determinism guard, ported from tests/trace_test.cpp: two full runs
// over the same inputs must produce byte-identical JSON artifacts (sorted
// findings, no timestamps, no environment leakage).
TEST(LintDeterminism, JsonIsByteIdenticalAcrossRuns) {
  const std::vector<std::pair<std::string, std::string>> inputs = {
      {"src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp")},
      {"src/consensus/b1_raw_message.cpp", fixture("b1_raw_message.cpp")},
      {"src/srds/s1_serialize.hpp", fixture("s1_serialize.hpp")},
      {"src/tree/h1_header.hpp", fixture("h1_header.hpp")},
      {"src/obs/suppressed.cpp", fixture("suppressed.cpp")},
      {"src/net/clean.hpp", fixture("clean.hpp")},
  };
  Config cfg;
  cfg.test_corpus = "fixture::Pair fixture::RoundTrip";

  const auto run = [&] {
    const auto fs = lint_files(inputs, cfg);
    return findings_json(fs, inputs.size()).dump(2);
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b) << "lint JSON must be byte-identical across runs";
  EXPECT_NE(a.find("\"tool\": \"srds-lint\""), std::string::npos);

  // Sanity on the summary block: the fixture set has a known shape.
  const auto fs = lint_files(inputs, cfg);
  std::size_t suppressed = 0;
  for (const Finding& f : fs) suppressed += f.suppressed ? 1 : 0;
  EXPECT_EQ(suppressed, 2u);
  EXPECT_TRUE(has_blocking(fs));
}

TEST(LintReport, HumanReportNamesRuleAndLocation) {
  const auto fs = lint_file("src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp"), {});
  const std::string rep = human_report(fs, 1, /*verbose_suppressed=*/false);
  EXPECT_NE(rep.find("src/ba/d1_nondet.cpp:12: error: [D1]"), std::string::npos);
  EXPECT_NE(rep.find("1 files"), std::string::npos);
}

}  // namespace
}  // namespace srds::lint

// srds-lint engine tests: every rule against a fixture with known
// violations (exact rule IDs and line numbers), suppression semantics,
// severity overrides, path scoping, and — reusing the PR 2 determinism-
// guard pattern — byte-identical JSON output across two runs.
//
// Fixtures live in tests/lint_fixtures/ and are linted under *logical*
// paths (the engine scopes rules by repo-relative path, so the same bytes
// can be checked as protocol code, network code, or rng-home code).

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <cstdio>
#include <filesystem>

#include "baseline.hpp"
#include "graph.hpp"
#include "lint.hpp"
#include "taint.hpp"

namespace srds::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(SRDS_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// (rule, line) pairs of unsuppressed findings, sorted.
std::set<std::pair<std::string, std::size_t>> hits(const std::vector<Finding>& fs) {
  std::set<std::pair<std::string, std::size_t>> out;
  for (const Finding& f : fs) {
    if (!f.suppressed) out.insert({f.rule, f.line});
  }
  return out;
}

TEST(LintD1, FlagsEveryNondeterminismSourceInProtocolDirs) {
  const auto fs = lint_file("src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"D1", 5},   // #include <unordered_map>
      {"D1", 12},  // rand()
      {"D1", 13},  // std::random_device
      {"D1", 14},  // time(nullptr)
      {"D1", 15},  // chrono::system_clock
      {"D1", 21},  // unordered_map
      {"D1", 22},  // unordered_set
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintD1, UnorderedContainersAllowedOutsideProtocolDirs) {
  const auto fs = lint_file("src/obs/d1_nondet.cpp", fixture("d1_nondet.cpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"D1", 12}, {"D1", 13}, {"D1", 14}, {"D1", 15},
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintD1, RngHomeIsExemptFromRandomnessChecks) {
  const auto fs = lint_file("src/common/rng.cpp", fixture("d1_nondet.cpp"), {});
  EXPECT_TRUE(hits(fs).empty());
}

TEST(LintB1, FlagsRawMessageConstructionOutsideNet) {
  const auto fs =
      lint_file("src/consensus/b1_raw_message.cpp", fixture("b1_raw_message.cpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"B1", 10},  // braced construction
      {"B1", 14},  // functional cast
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintB1, NetLayerMayConstructMessages) {
  const auto fs = lint_file("src/net/b1_raw_message.cpp", fixture("b1_raw_message.cpp"), {});
  EXPECT_TRUE(hits(fs).empty());
}

TEST(LintS1, FlagsSerializeWithoutDeserialize) {
  const auto fs = lint_file("src/srds/s1_serialize.hpp", fixture("s1_serialize.hpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"S1", 17},  // OneWay::serialize
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintS1, RequiresRoundTripTestReferenceWhenCorpusGiven) {
  Config cfg;
  cfg.test_corpus = "TEST(RoundTrip, Works) { fixture::RoundTrip x; }";
  const auto fs = lint_file("src/srds/s1_serialize.hpp", fixture("s1_serialize.hpp"), cfg);
  // RoundTrip is referenced; OneWay still lacks deserialize.
  EXPECT_EQ(hits(fs), (std::set<std::pair<std::string, std::size_t>>{{"S1", 17}}));

  Config empty_corpus;
  empty_corpus.test_corpus = "TEST(Unrelated, Nothing) {}";
  const auto fs2 =
      lint_file("src/srds/s1_serialize.hpp", fixture("s1_serialize.hpp"), empty_corpus);
  // Now RoundTrip (declared line 10) is also flagged: no test references it.
  EXPECT_EQ(hits(fs2),
            (std::set<std::pair<std::string, std::size_t>>{{"S1", 10}, {"S1", 17}}));
}

TEST(LintH1, FlagsMissingGuardAndUsingNamespace) {
  const auto fs = lint_file("src/tree/h1_header.hpp", fixture("h1_header.hpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"H1", 1},  // no #pragma once / include guard
      {"H1", 6},  // using namespace in header
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintH1, SourceFilesAreNotHeaderChecked) {
  // Same bytes as a .cpp: H1 does not apply.
  const auto fs = lint_file("src/tree/h1_header.cpp", fixture("h1_header.hpp"), {});
  EXPECT_TRUE(hits(fs).empty());
}

TEST(LintClean, CleanFixtureHasNoFindingsAnywhere) {
  const std::string content = fixture("clean.hpp");
  Config cfg;
  cfg.test_corpus = "fixture::Pair round trip";
  for (const char* path : {"src/ba/clean.hpp", "src/consensus/clean.hpp",
                           "src/net/clean.hpp", "src/obs/clean.hpp"}) {
    const auto fs = lint_file(path, content, cfg);
    EXPECT_TRUE(fs.empty()) << path << ": " << (fs.empty() ? "" : fs.front().message);
  }
}

TEST(LintSuppress, JustifiedSuppressionsCoverTrailingAndNextLine) {
  const auto fs = lint_file("src/obs/suppressed.cpp", fixture("suppressed.cpp"), {});
  // Unsuppressed: the malformed allow() lines keep their D1 findings and
  // gain A0 findings.
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"A0", 16},  // allow(D1) with no justification
      {"A0", 20},  // allow(Z9): unknown rule
      {"D1", 16},
      {"D1", 20},
  };
  EXPECT_EQ(hits(fs), expected);

  // Suppressed: the justified trailing comment (line 7) and the justified
  // comment-only line covering the next code line (12).
  std::set<std::pair<std::string, std::size_t>> suppressed;
  for (const Finding& f : fs) {
    if (f.suppressed) {
      EXPECT_FALSE(f.justification.empty());
      suppressed.insert({f.rule, f.line});
    }
  }
  const std::set<std::pair<std::string, std::size_t>> expected_suppressed = {
      {"D1", 7},
      {"D1", 12},
  };
  EXPECT_EQ(suppressed, expected_suppressed);

  EXPECT_TRUE(has_blocking(fs));  // the malformed ones still block
}

TEST(LintSeverity, OverridesDowngradeAndDisable) {
  Config warn;
  warn.overrides.emplace_back("D1", Severity::kWarn);
  const auto fs = lint_file("src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp"), warn);
  EXPECT_FALSE(fs.empty());
  EXPECT_FALSE(has_blocking(fs));  // warnings never block

  Config off;
  off.overrides.emplace_back("D1", Severity::kOff);
  const auto fs2 = lint_file("src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp"), off);
  EXPECT_TRUE(fs2.empty());
}

TEST(LintEngine, RuleTableLooksUpEveryRule) {
  for (const RuleInfo& r : rules()) {
    const RuleInfo* found = find_rule(r.id);
    ASSERT_NE(found, nullptr);
    EXPECT_STREQ(found->id, r.id);
  }
  EXPECT_EQ(find_rule("Z9"), nullptr);
}

// The determinism guard, ported from tests/trace_test.cpp: two full runs
// over the same inputs must produce byte-identical JSON artifacts (sorted
// findings, no timestamps, no environment leakage).
TEST(LintDeterminism, JsonIsByteIdenticalAcrossRuns) {
  const std::vector<std::pair<std::string, std::string>> inputs = {
      {"src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp")},
      {"src/consensus/b1_raw_message.cpp", fixture("b1_raw_message.cpp")},
      {"src/srds/s1_serialize.hpp", fixture("s1_serialize.hpp")},
      {"src/tree/h1_header.hpp", fixture("h1_header.hpp")},
      {"src/obs/suppressed.cpp", fixture("suppressed.cpp")},
      {"src/net/clean.hpp", fixture("clean.hpp")},
  };
  Config cfg;
  cfg.test_corpus = "fixture::Pair fixture::RoundTrip";

  const auto run = [&] {
    const auto fs = lint_files(inputs, cfg);
    return findings_json(fs, inputs.size()).dump(2);
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b) << "lint JSON must be byte-identical across runs";
  EXPECT_NE(a.find("\"tool\": \"srds-lint\""), std::string::npos);

  // Sanity on the summary block: the fixture set has a known shape.
  const auto fs = lint_files(inputs, cfg);
  std::size_t suppressed = 0;
  for (const Finding& f : fs) suppressed += f.suppressed ? 1 : 0;
  EXPECT_EQ(suppressed, 2u);
  EXPECT_TRUE(has_blocking(fs));
}

TEST(LintReport, HumanReportNamesRuleAndLocation) {
  const auto fs = lint_file("src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp"), {});
  const std::string rep = human_report(fs, 1, /*verbose_suppressed=*/false);
  EXPECT_NE(rep.find("src/ba/d1_nondet.cpp:12: error: [D1]"), std::string::npos);
  EXPECT_NE(rep.find("1 files"), std::string::npos);
}

// ---------------------------------------------------------------------------
// L1: cross-TU layering (graph.hpp). Tests use a reduced manifest with the
// same shape as tools/srds-lint/layers.toml.

const char* kTestManifest =
    "# test manifest\n"
    "[layers]\n"
    "common = []\n"
    "obs = [\"common\"]\n"
    "crypto = [\"common\"]\n"
    "net = [\"common\"]\n"
    "ba = [\"common\", \"crypto\", \"net\"]\n"
    "[open]\n"
    "modules = [\"obs\"]\n"
    "[unrestricted]\n"
    "modules = [\"tests\", \"bench\"]\n";

Config layered_cfg() {
  Config cfg;
  cfg.layers_manifest = kTestManifest;
  cfg.layers_manifest_path = "test-layers.toml";
  return cfg;
}

TEST(LintLayersManifest, ParsesTheCheckedInShape) {
  LayerManifest m;
  std::string error;
  ASSERT_TRUE(parse_layers(kTestManifest, m, error)) << error;
  ASSERT_NE(m.deps_of("ba"), nullptr);
  EXPECT_EQ(*m.deps_of("ba"), (std::vector<std::string>{"common", "crypto", "net"}));
  ASSERT_NE(m.deps_of("common"), nullptr);
  EXPECT_TRUE(m.deps_of("common")->empty());
  EXPECT_TRUE(m.is_open("obs"));
  EXPECT_FALSE(m.is_open("net"));
  EXPECT_TRUE(m.is_unrestricted("tests"));
  EXPECT_FALSE(m.declares("snark"));
}

TEST(LintLayersManifest, RejectsMalformedInput) {
  LayerManifest m;
  std::string error;
  EXPECT_FALSE(parse_layers("[layers]\nnet = [\"common\"\n", m, error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  EXPECT_FALSE(parse_layers("[nope]\n", m, error));
  EXPECT_NE(error.find("unknown section"), std::string::npos) << error;

  EXPECT_FALSE(parse_layers("net = []\n", m, error));
  EXPECT_NE(error.find("before any"), std::string::npos) << error;

  EXPECT_FALSE(parse_layers("[layers]\nnet = []\nnet = []\n", m, error));
  EXPECT_NE(error.find("duplicate module 'net'"), std::string::npos) << error;

  EXPECT_FALSE(parse_layers("[layers]\nnet = [\"ghost\"]\n", m, error));
  EXPECT_NE(error.find("undeclared module 'ghost'"), std::string::npos) << error;
}

TEST(LintLayersManifest, RejectsDeclaredDependencyCycle) {
  LayerManifest m;
  std::string error;
  const char* cyclic =
      "[layers]\n"
      "a = [\"b\"]\n"
      "b = [\"c\"]\n"
      "c = [\"a\"]\n";
  EXPECT_FALSE(parse_layers(cyclic, m, error));
  EXPECT_NE(error.find("declared dependencies form a cycle"), std::string::npos) << error;
  EXPECT_NE(error.find("a -> b -> c -> a"), std::string::npos) << error;
}

TEST(LintLayersGraph, ModuleOfMapsRepoPaths) {
  EXPECT_EQ(module_of("src/ba/ae_boost.cpp"), "ba");
  EXPECT_EQ(module_of("src/common/message.hpp"), "common");
  EXPECT_EQ(module_of("src/version.hpp"), "src");
  EXPECT_EQ(module_of("tests/lint_test.cpp"), "tests");
  EXPECT_EQ(module_of("bench/bench_main.cpp"), "bench");
}

TEST(LintL1, LegalEdgeProducesNoFinding) {
  const auto fs = lint_files({{"src/ba/l1_legal_edge.cpp", fixture("l1_legal_edge.cpp")}},
                             layered_cfg());
  EXPECT_TRUE(hits(fs).empty()) << (fs.empty() ? "" : fs.front().message);
}

TEST(LintL1, IllegalEdgeNamesTheOffendingInclude) {
  const auto fs = lint_files(
      {{"src/crypto/l1_illegal_edge.cpp", fixture("l1_illegal_edge.cpp")}}, layered_cfg());
  EXPECT_EQ(hits(fs), (std::set<std::pair<std::string, std::size_t>>{{"L1", 4}}));
  ASSERT_FALSE(fs.empty());
  EXPECT_NE(fs.front().message.find("crypto -> ba"), std::string::npos);
  EXPECT_NE(fs.front().message.find("#include \"ba/ae_boost.hpp\""), std::string::npos);
  // No back-edge ba -> crypto in this file set: no cycle text.
  EXPECT_EQ(fs.front().message.find("cycle"), std::string::npos);
}

TEST(LintL1, CycleIsReportedOnBothEdgesWithShortestPath) {
  const auto fs = lint_files({{"src/net/l1_cycle_a.hpp", fixture("l1_cycle_a.hpp")},
                              {"src/crypto/l1_cycle_b.hpp", fixture("l1_cycle_b.hpp")}},
                             layered_cfg());
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"L1", 9},  // net -> crypto in l1_cycle_a.hpp
      {"L1", 5},  // crypto -> net in l1_cycle_b.hpp
  };
  EXPECT_EQ(hits(fs), expected);
  for (const Finding& f : fs) {
    EXPECT_NE(f.message.find("closes module cycle"), std::string::npos) << f.message;
  }
}

TEST(LintL1, OpenAndUnrestrictedModulesAreExempt) {
  const auto fs = lint_files(
      {
          // obs is [open]: includable from any module.
          {"src/crypto/uses_obs.cpp", "#include \"obs/trace.hpp\"\n"},
          // tests/ is [unrestricted]: may include anything.
          {"tests/top_test.cpp", "#include \"ba/ae_boost.hpp\"\n"},
          // an include naming no declared module is third-party, not an edge.
          {"src/net/uses_vendor.cpp", "#include \"vendor/lib.hpp\"\n"},
      },
      layered_cfg());
  EXPECT_TRUE(hits(fs).empty()) << (fs.empty() ? "" : fs.front().message);
}

TEST(LintL1, UndeclaredSrcModuleIsFlagged) {
  const auto fs = lint_files({{"src/zzz/new_module.cpp", "#include \"net/message.hpp\"\n"}},
                             layered_cfg());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.front().rule, "L1");
  EXPECT_NE(fs.front().message.find("module 'zzz'"), std::string::npos);
  EXPECT_NE(fs.front().message.find("not declared in layers.toml"), std::string::npos);
}

TEST(LintL1, BadManifestIsItselfAFinding) {
  Config cfg;
  cfg.layers_manifest = "[layers]\nnet = [broken\n";
  cfg.layers_manifest_path = "test-layers.toml";
  const auto fs = lint_files({{"src/net/x.cpp", "int x;\n"}}, cfg);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.front().rule, "L1");
  EXPECT_EQ(fs.front().file, "test-layers.toml");
  EXPECT_NE(fs.front().message.find("bad layers manifest"), std::string::npos);
}

TEST(LintGraphDot, DotExportIsDeterministic) {
  const std::vector<std::pair<std::string, std::string>> inputs = {
      {"src/net/l1_cycle_a.hpp", fixture("l1_cycle_a.hpp")},
      {"src/crypto/l1_cycle_b.hpp", fixture("l1_cycle_b.hpp")},
      {"src/ba/l1_legal_edge.cpp", fixture("l1_legal_edge.cpp")},
  };
  const std::string a = dep_graph_dot(build_dep_graph(inputs));
  const std::string b = dep_graph_dot(build_dep_graph(inputs));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("digraph srds_modules"), std::string::npos);
  EXPECT_NE(a.find("\"ba\" -> \"crypto\";"), std::string::npos);
  EXPECT_NE(a.find("\"net\" -> \"crypto\";"), std::string::npos);
  EXPECT_NE(a.find("\"crypto\" -> \"net\";"), std::string::npos);
}

// ---------------------------------------------------------------------------
// T1: adversarial-input taint (taint.hpp).

TEST(LintT1, RawPayloadReadsAreFlagged) {
  const auto fs = lint_file("src/ba/t1_raw_read.cpp", fixture("t1_raw_read.cpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"T1", 10},  // indexing
      {"T1", 14},  // .data() pointer escape
      {"T1", 19},  // memcpy over the buffer
      {"T1", 23},  // read *before* the validate call
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintT1, ValidatedReadsPass) {
  const auto fs = lint_file("src/ba/t1_validated.cpp", fixture("t1_validated.cpp"), {});
  EXPECT_TRUE(hits(fs).empty()) << (fs.empty() ? "" : fs.front().message);
}

TEST(LintT1, HelperReadIsFlaggedInTheHelperOnly) {
  const auto fs = lint_file("src/ba/t1_helper.cpp", fixture("t1_helper.cpp"), {});
  EXPECT_EQ(hits(fs), (std::set<std::pair<std::string, std::size_t>>{{"T1", 10}}));
  ASSERT_FALSE(fs.empty());
  EXPECT_NE(fs.front().message.find("t1_peek_helper"), std::string::npos);
}

TEST(LintT1, OnlyProtocolDirsAreInScope) {
  // Same bytes under src/net (the layer that owns raw delivery): no T1.
  const auto fs = lint_file("src/net/t1_raw_read.cpp", fixture("t1_raw_read.cpp"), {});
  EXPECT_TRUE(hits(fs).empty());
}

// ---------------------------------------------------------------------------
// P1: hot-path hygiene (taint.hpp).

TEST(LintP1, MarkedFunctionsRejectThrowNewAndTypeErasure) {
  const auto fs = lint_file("src/net/p1_hotpath.cpp", fixture("p1_hotpath.cpp"), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"P1", 11},  // throw
      {"P1", 17},  // new
      {"P1", 22},  // std::function
  };
  EXPECT_EQ(hits(fs), expected);
}

TEST(LintP1, UnmatchedMarkerIsItselfFlagged) {
  const std::string content =
      "// srds-lint: hotpath\n"
      "int kNotAFunction = 3;\n";
  const auto fs = lint_file("src/net/p1_dangling.cpp", content, {});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.front().rule, "P1");
  EXPECT_NE(fs.front().message.find("matches no function body"), std::string::npos);
}

TEST(LintP1, FunctionBodyMapFindsDeclarators) {
  const Lexed lx = lex(fixture("p1_hotpath.cpp"));
  const std::vector<FuncBody> bodies = function_bodies(lx);
  std::vector<std::string> names;
  for (const FuncBody& b : bodies) names.push_back(b.name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"p1_marked_throw", "p1_marked_new",
                                      "p1_marked_type_erase", "p1_marked_clean",
                                      "p1_unmarked"}));
}

// ---------------------------------------------------------------------------
// Lexer hardening (lex.hpp): constructs that must not desynchronize the
// token stream or the brace-matching body map.

TEST(LintLex, HardeningFixtureProducesNoFindings) {
  // Raw strings (plain and prefixed) holding braces/quotes/rand(), a
  // backslash-continued line comment, block-comment braces, and dead
  // preprocessor branches: none of it is protocol code, so none of it may
  // fire a rule even under the strictest path scope.
  const auto fs = lint_file("src/ba/lex_hardening.cpp", fixture("lex_hardening.cpp"), {});
  EXPECT_TRUE(hits(fs).empty());
}

TEST(LintLex, BodyMapSurvivesRawStringsCommentsAndConditionals) {
  const Lexed lx = lex(fixture("lex_hardening.cpp"));
  const std::vector<FuncBody> bodies = function_bodies(lx);
  std::vector<std::string> names;
  for (const FuncBody& b : bodies) names.push_back(b.name);
  // branch_b lives in the dead #else arm and must be invisible; the junk
  // braces under #if 0 must not split after_conditional off the map.
  EXPECT_EQ(names, (std::vector<std::string>{"braces_in_strings", "branch_a",
                                             "after_conditional"}));
}

TEST(LintLex, MalformedRawStringDelimiterFallsBackToNormalLexing) {
  // A 17-char raw-string delimiter is ill-formed C++; the lexer must not
  // treat it as a raw string (and must keep lexing what follows).
  const Lexed lx = lex("int a = 0; // R\"aaaaaaaaaaaaaaaaa(not raw\n"
                       "int f() { return a; }\n");
  const std::vector<FuncBody> bodies = function_bodies(lx);
  ASSERT_EQ(bodies.size(), 1u);
  EXPECT_EQ(bodies[0].name, "f");
}

TEST(LintLex, ClassicIncludeGuardSurvivesConditionalLexing) {
  // H1 accepts classic guards; the conditional-branch tracking must still
  // record the guard's directives (the first branch of #ifndef is live).
  const std::string guarded =
      "#ifndef SRDS_X_HPP\n"
      "#define SRDS_X_HPP\n"
      "int x();\n"
      "#endif\n";
  const auto fs = lint_file("src/net/x.hpp", guarded, {});
  EXPECT_TRUE(hits(fs).empty());
}

// ---------------------------------------------------------------------------
// Baseline ratchet (baseline.hpp).

std::vector<Finding> baseline_fixture_findings() {
  return lint_file("src/ba/d1_nondet.cpp", fixture("d1_nondet.cpp"), {});
}

TEST(LintBaseline, IdenticalTreePasses) {
  const auto fs = baseline_fixture_findings();
  const Baseline b = make_baseline(fs);
  EXPECT_EQ(b.entries.size(), hits(fs).size());
  const BaselineDiff d = diff_baseline(fs, b);
  EXPECT_TRUE(d.fresh.empty());
  EXPECT_TRUE(d.stale.empty());
}

TEST(LintBaseline, NewViolationIsFresh) {
  auto fs = baseline_fixture_findings();
  const Baseline b = make_baseline(fs);
  Finding extra;
  extra.file = "src/ba/other.cpp";
  extra.line = 3;
  extra.rule = "T1";
  extra.severity = Severity::kError;
  extra.message = "new";
  fs.push_back(extra);
  const BaselineDiff d = diff_baseline(fs, b);
  ASSERT_EQ(d.fresh.size(), 1u);
  EXPECT_EQ(d.fresh.front().file, "src/ba/other.cpp");
  EXPECT_TRUE(d.stale.empty());
}

TEST(LintBaseline, FixedViolationIsStale) {
  const auto fs = baseline_fixture_findings();
  const Baseline b = make_baseline(fs);
  auto fixed = fs;
  fixed.pop_back();  // one finding fixed, baseline entry kept
  const BaselineDiff d = diff_baseline(fixed, b);
  EXPECT_TRUE(d.fresh.empty());
  ASSERT_EQ(d.stale.size(), 1u);
  EXPECT_EQ(d.stale.front().rule, fs.back().rule);
  EXPECT_EQ(d.stale.front().line, fs.back().line);
}

TEST(LintBaseline, MovedViolationIsFreshPlusStale) {
  auto fs = baseline_fixture_findings();
  const Baseline b = make_baseline(fs);
  fs.back().line += 1;  // same violation, new line: forces a refresh
  const BaselineDiff d = diff_baseline(fs, b);
  EXPECT_EQ(d.fresh.size(), 1u);
  EXPECT_EQ(d.stale.size(), 1u);
}

TEST(LintBaseline, SuppressedAndWarningFindingsNeverEnterTheBaseline) {
  auto fs = baseline_fixture_findings();
  fs.front().suppressed = true;
  fs.back().severity = Severity::kWarn;
  const Baseline b = make_baseline(fs);
  EXPECT_EQ(b.entries.size(), fs.size() - 2);
}

TEST(LintBaseline, JsonRoundTrips) {
  const Baseline b = make_baseline(baseline_fixture_findings());
  ASSERT_FALSE(b.entries.empty());
  const std::string doc = baseline_json(b).dump(2);
  // Byte-deterministic like every artifact.
  EXPECT_EQ(doc, baseline_json(b).dump(2));

  Baseline parsed;
  std::string error;
  ASSERT_TRUE(parse_baseline(doc, parsed, error)) << error;
  ASSERT_EQ(parsed.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    EXPECT_EQ(parsed.entries[i].file, b.entries[i].file);
    EXPECT_EQ(parsed.entries[i].line, b.entries[i].line);
    EXPECT_EQ(parsed.entries[i].rule, b.entries[i].rule);
    EXPECT_EQ(parsed.entries[i].message, b.entries[i].message);
  }
}

TEST(LintBaseline, ParseRejectsGarbage) {
  Baseline parsed;
  std::string error;
  EXPECT_FALSE(parse_baseline("not json", parsed, error));
  EXPECT_FALSE(parse_baseline("{\"tool\": \"srds-lint\"}", parsed, error));
  EXPECT_NE(error.find("baseline"), std::string::npos);
}

// Regression: artifact writes into a directory that does not exist yet must
// create the parents instead of failing (fresh CI workspace handing the
// linter artifacts/LINT_x.json before anything created artifacts/).
TEST(LintBaseline, WriteTextFileCreatesMissingParentDirs) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "srds_lint_test_artifacts" / "nested" / "deep";
  fs::remove_all(root.parent_path().parent_path());
  const fs::path target = root / "LINT_x.json";
  ASSERT_FALSE(fs::exists(root));
  EXPECT_TRUE(write_text_file(target.string(), "{}\n"));
  std::ifstream in(target);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{}\n");
  fs::remove_all(root.parent_path().parent_path());
}

// ---------------------------------------------------------------------------
// Extended determinism: the full engine (graph + taint passes, stats block)
// still emits byte-identical JSON across runs.

TEST(LintDeterminism, GraphAndTaintPassesKeepJsonByteIdentical) {
  const std::vector<std::pair<std::string, std::string>> inputs = {
      {"src/crypto/l1_illegal_edge.cpp", fixture("l1_illegal_edge.cpp")},
      {"src/net/l1_cycle_a.hpp", fixture("l1_cycle_a.hpp")},
      {"src/crypto/l1_cycle_b.hpp", fixture("l1_cycle_b.hpp")},
      {"src/ba/t1_raw_read.cpp", fixture("t1_raw_read.cpp")},
      {"src/ba/t1_validated.cpp", fixture("t1_validated.cpp")},
      {"src/net/p1_hotpath.cpp", fixture("p1_hotpath.cpp")},
  };
  const auto run = [&] {
    const auto fs = lint_files(inputs, layered_cfg());
    obs::Json stats = obs::Json::object();
    stats.set("files", static_cast<unsigned long long>(inputs.size()));
    return findings_json(fs, inputs.size(), &stats).dump(2);
  };
  const std::string a = run();
  EXPECT_EQ(a, run());
  EXPECT_NE(a.find("\"schema\": 2"), std::string::npos);
  EXPECT_NE(a.find("\"stats\""), std::string::npos);
  EXPECT_NE(a.find("\"rule\": \"L1\""), std::string::npos);
  EXPECT_NE(a.find("\"rule\": \"T1\""), std::string::npos);

  const auto fs = lint_files(inputs, layered_cfg());
  std::set<std::string> rules_seen;
  for (const Finding& f : fs) rules_seen.insert(f.rule);
  EXPECT_TRUE(rules_seen.count("L1"));
  EXPECT_TRUE(rules_seen.count("T1"));
  EXPECT_TRUE(rules_seen.count("P1"));
}

}  // namespace
}  // namespace srds::lint

// Tests for the round/phase tracer: a scripted-simulator unit test, the
// π_BA smoke test (tracer accounting must agree with the network-layer
// NetworkStats), Chrome trace export, and the determinism guard (two runs
// with identical seed and fault plan produce byte-identical Reporter JSON
// apart from the timestamp).
#include <gtest/gtest.h>

#include "ba/runner.hpp"
#include "json_parser.hpp"
#include "net/simulator.hpp"
#include "obs/prof.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"

namespace srds {
namespace {

using testjson::PJson;

/// Sends one tagged message to party 1 per round for `rounds` rounds.
class KindSender final : public Party {
 public:
  KindSender(PartyId me, std::size_t rounds, std::size_t bytes, MsgKind kind)
      : me_(me), rounds_(rounds), bytes_(bytes), kind_(kind) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&) override {
    if (round >= rounds_) {
      done_ = true;
      return {};
    }
    return {Message{me_, 1, Bytes(bytes_, 0xCD), kind_}};
  }
  bool done() const override { return done_; }

 private:
  PartyId me_;
  std::size_t rounds_, bytes_;
  MsgKind kind_;
  bool done_ = false;
};

class SilentSink final : public Party {
 public:
  std::vector<Message> on_round(std::size_t, const std::vector<Message>&) override {
    return {};
  }
  bool done() const override { return true; }
};

TEST(RoundTracer, ScriptedRunMatchesNetworkStats) {
  obs::RoundTracer tracer;
  tracer.on_phase(0, "warmup");
  tracer.on_phase(3, "main");

  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<KindSender>(0, 5, 40, MsgKind::kBoostFlood));
  parties.push_back(std::make_unique<SilentSink>());
  Simulator sim(std::move(parties), std::vector<bool>{false, false}, nullptr);
  sim.set_trace_sink(&tracer);
  std::size_t rounds = sim.run(32);

  EXPECT_EQ(tracer.rounds_run(), rounds);
  EXPECT_EQ(tracer.rounds_run(), sim.stats().rounds);
  EXPECT_EQ(tracer.n_parties(), 2u);

  std::uint64_t traced_bytes = 0, traced_msgs = 0;
  for (const auto& r : tracer.rounds()) {
    traced_bytes += r.bytes_sent;
    traced_msgs += r.msgs_sent;
  }
  EXPECT_EQ(traced_bytes, sim.stats().party[0].bytes_sent);
  EXPECT_EQ(traced_msgs, sim.stats().party[0].msgs_sent);

  auto phases = tracer.phase_totals();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "warmup");
  EXPECT_EQ(phases[0].rounds, 3u);
  EXPECT_EQ(phases[0].bytes_sent, 3u * 40u);
  EXPECT_EQ(phases[1].name, "main");
  EXPECT_EQ(phases[1].start, 3u);
  EXPECT_EQ(phases[1].bytes_sent, 2u * 40u);
  // Every byte is tagged with the sender's MsgKind.
  const auto flood = static_cast<std::size_t>(MsgKind::kBoostFlood);
  EXPECT_EQ(phases[0].kinds[flood].bytes, phases[0].bytes_sent);
  std::size_t phase_rounds = 0;
  for (const auto& p : phases) phase_rounds += p.rounds;
  EXPECT_EQ(phase_rounds, tracer.rounds_run());
}

TEST(RoundTracer, PiBaSmokeAgreesWithNetworkStats) {
  obs::RoundTracer tracer;
  BaRunConfig cfg;
  cfg.n = 64;
  cfg.beta = 0.2;
  cfg.seed = 7;
  cfg.protocol = BoostProtocol::kPiBaSnark;
  cfg.trace = &tracer;
  auto r = run_ba(cfg);

  ASSERT_TRUE(r.agreement);
  // The tracer observed exactly the rounds the network ran...
  EXPECT_EQ(tracer.rounds_run(), r.stats.rounds);
  EXPECT_EQ(tracer.rounds_run(), r.rounds);
  // ...and exactly the bytes/messages the network accounted.
  std::uint64_t traced_bytes = 0, traced_msgs = 0;
  for (const auto& rec : tracer.rounds()) {
    traced_bytes += rec.bytes_sent;
    traced_msgs += rec.msgs_sent;
  }
  std::uint64_t stats_bytes = 0, stats_msgs = 0;
  for (const auto& p : r.stats.party) {
    stats_bytes += p.bytes_sent;
    stats_msgs += p.msgs_sent;
  }
  EXPECT_EQ(traced_bytes, stats_bytes);
  EXPECT_EQ(traced_msgs, stats_msgs);

  // The harness registered the protocol's phase schedule; the boost phase
  // must carry traffic and the phases partition the run.
  auto phases = tracer.phase_totals();
  ASSERT_GE(phases.size(), 4u);
  EXPECT_EQ(phases[0].name, "f_ba");
  std::size_t covered = 0;
  bool saw_boost = false;
  for (const auto& p : phases) {
    covered += p.rounds;
    if (p.name == "boost") {
      saw_boost = true;
      EXPECT_GT(p.bytes_sent, 0u);
      // π_ba tags its boost traffic: signature shares must show up.
      const auto sign = static_cast<std::size_t>(MsgKind::kBoostSign);
      EXPECT_GT(p.kinds[sign].msgs, 0u);
    }
  }
  EXPECT_TRUE(saw_boost);
  EXPECT_EQ(covered, tracer.rounds_run());
  // Setup work was reported as spans (tree build + SRDS keygen).
  EXPECT_GE(tracer.to_json(false).find("spans")->items().size(), 2u);
}

TEST(Ledger, AgreesWithNetworkStatsAndTracerOnSeededRun) {
  // Three independent accounting planes observe one seeded fault-free run:
  // NetworkStats (the simulator's own books), the RoundTracer (per-round
  // aggregates) and the Ledger (per-party, per-phase). They must agree
  // exactly — party by party against NetworkStats, and phase by phase
  // against the tracer (attribution by observed round coincides with
  // attribution by send round only on fault-free runs, which is why this
  // guard pins a run without a fault plan).
  obs::RoundTracer tracer;
  obs::Ledger ledger;
  BaRunConfig cfg;
  cfg.n = 64;
  cfg.beta = 0.2;
  cfg.seed = 7;
  cfg.protocol = BoostProtocol::kPiBaSnark;
  cfg.trace = &tracer;
  cfg.ledger = &ledger;
  auto r = run_ba(cfg);
  ASSERT_TRUE(r.agreement);

  // Party-level: the ledger's books equal the network's, field for field.
  ASSERT_EQ(ledger.n_parties(), r.stats.party.size());
  for (PartyId i = 0; i < r.stats.party.size(); ++i) {
    const auto& net = r.stats.party[i];
    const obs::PartyTally& led = ledger.total(i);
    ASSERT_EQ(led.bytes_sent, net.bytes_sent) << "party " << i;
    ASSERT_EQ(led.bytes_recv, net.bytes_recv) << "party " << i;
    ASSERT_EQ(led.msgs_sent, net.msgs_sent) << "party " << i;
    ASSERT_EQ(led.msgs_recv, net.msgs_recv) << "party " << i;
  }

  // Round-level: the tracer's per-round sent totals sum to the ledger's.
  std::uint64_t traced_bytes = 0;
  for (const auto& rec : tracer.rounds()) traced_bytes += rec.bytes_sent;
  std::uint64_t ledger_sent = 0;
  for (PartyId i = 0; i < ledger.n_parties(); ++i) {
    ledger_sent += ledger.total(i).bytes_sent;
  }
  EXPECT_EQ(traced_bytes, ledger_sent);

  // Phase-level: both sinks consumed the same on_phase marks; on a
  // fault-free run each phase's sent bytes/messages must match too.
  const auto phases = tracer.phase_totals();
  ASSERT_EQ(phases.size(), ledger.phase_count());
  for (std::size_t p = 0; p < phases.size(); ++p) {
    EXPECT_EQ(phases[p].name, ledger.phase_name(p));
    std::uint64_t phase_bytes = 0, phase_msgs = 0;
    for (PartyId i = 0; i < ledger.n_parties(); ++i) {
      phase_bytes += ledger.phase_total(p, i).bytes_sent;
      phase_msgs += ledger.phase_total(p, i).msgs_sent;
    }
    EXPECT_EQ(phase_bytes, phases[p].bytes_sent) << phases[p].name;
    EXPECT_EQ(phase_msgs, phases[p].msgs_sent) << phases[p].name;
  }

  // The harness audited the run: the registered budgets all evaluated, and
  // the boost-phase stat the bench binaries report comes from the ledger.
  ASSERT_GE(r.budget_evals.size(), 3u);
  const obs::PartyStat boost =
      ledger.stat(obs::LedgerField::kBytesTotal, ledger.phase_index("boost"));
  EXPECT_GT(boost.max, 0u);
  EXPECT_GE(boost.max, boost.p50);
}

TEST(RoundTracer, ChromeTraceIsWellFormedJson) {
  obs::RoundTracer tracer;
  BaRunConfig cfg;
  cfg.n = 64;
  cfg.beta = 0.1;
  cfg.seed = 11;
  cfg.protocol = BoostProtocol::kPiBaSnark;
  cfg.trace = &tracer;
  run_ba(cfg);

  PJson doc = testjson::parse(tracer.chrome_trace().dump());
  const PJson* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->array.size(), 4u);
  std::size_t phase_events = 0, round_events = 0, counter_events = 0;
  for (const PJson& e : events->array) {
    const PJson* ph = e.get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      ASSERT_NE(e.get("ts"), nullptr);
      ASSERT_NE(e.get("dur"), nullptr);
      const PJson* cat = e.get("cat");
      ASSERT_NE(cat, nullptr);
      if (cat->string == "phase") ++phase_events;
      if (cat->string == "round") ++round_events;
    } else if (ph->string == "C") {
      ++counter_events;
    }
  }
  EXPECT_GE(phase_events, 4u);
  EXPECT_EQ(round_events, tracer.rounds_run());
  EXPECT_EQ(counter_events, round_events);
}

TEST(RoundTracer, ChromeTraceCarriesProfTrackOnlyWhenEnabled) {
  obs::prof_set_enabled(false);
  obs::prof_reset();

  auto trace_once = [] {
    obs::RoundTracer tracer;
    BaRunConfig cfg;
    cfg.n = 64;
    cfg.beta = 0.1;
    cfg.seed = 11;
    cfg.protocol = BoostProtocol::kPiBaSnark;
    cfg.trace = &tracer;
    run_ba(cfg);
    return tracer.chrome_trace().dump();
  };

  auto count_prof_events = [](const std::string& json) {
    PJson doc = testjson::parse(json);
    std::size_t prof_events = 0;
    for (const PJson& e : doc.get("traceEvents")->array) {
      const PJson* cat = e.get("cat");
      if (cat && cat->string == "prof") {
        ++prof_events;
        // Prof spans are full X events on their own track with the
        // aggregate stats in args.
        EXPECT_EQ(e.get("ph")->string, "X");
        EXPECT_NE(e.get("ts"), nullptr);
        EXPECT_NE(e.get("dur"), nullptr);
        const PJson* args = e.get("args");
        EXPECT_NE(args, nullptr);
        if (args && args->get("count")) {
          EXPECT_GT(args->get("count")->integer, 0);
        }
      }
    }
    return prof_events;
  };

  EXPECT_EQ(count_prof_events(trace_once()), 0u)
      << "profiling off: the trace must not grow a prof track";

  obs::prof_set_enabled(true);
  const std::size_t with_prof = count_prof_events(trace_once());
  obs::prof_set_enabled(false);
  obs::prof_reset();
  EXPECT_GT(with_prof, 0u)
      << "a profiled pi_ba run must surface instrumented sites in the trace";
}

/// Rebuild the metrics a bench binary would report for one traced run,
/// excluding wall-clock (the only non-deterministic tracer signal).
obs::Json deterministic_metrics(const BaRunResult& r, const obs::RoundTracer& tracer) {
  obs::Json m = obs::Json::object();
  m.set("rounds", r.rounds);
  m.set("max_comm_per_party_bytes", r.boost_stats.max_bytes_total());
  m.set("total_comm_bytes", r.stats.total_bytes());
  m.set("decided_fraction", r.decided_fraction());
  obs::Json phases = obs::Json::object();
  for (const auto& p : tracer.phase_totals()) {
    obs::Json j = obs::Json::object();
    j.set("rounds", p.rounds);
    j.set("msgs_sent", p.msgs_sent);
    j.set("bytes_sent", p.bytes_sent);
    phases.set(p.name, std::move(j));
  }
  m.set("phases", std::move(phases));
  return m;
}

TEST(DeterminismGuard, IdenticalRunsProduceByteIdenticalReports) {
  auto run_once = [] {
    obs::RoundTracer tracer;
    BaRunConfig cfg;
    cfg.n = 64;
    cfg.beta = 0.2;
    cfg.seed = 2026;
    cfg.protocol = BoostProtocol::kPiBaSnark;
    FaultPlan plan;
    plan.seed = 99;
    plan.drop_prob = 0.05;
    plan.delay_prob = 0.1;
    plan.max_delay = 2;
    cfg.faults = plan;
    cfg.trace = &tracer;
    auto r = run_ba(cfg);

    bench::Reporter rep("determinism_guard");
    rep.set_param("n", 64);
    rep.set_param("seed", 2026);
    rep.add_row(64.0, deterministic_metrics(r, tracer));
    return rep.to_json(/*with_timestamp=*/false).dump(2);
  };

  std::string first = run_once();
  std::string second = run_once();
  EXPECT_EQ(first, second) << "identical (seed, fault plan) runs must serialize "
                              "byte-identically apart from the timestamp";

  // The profiling determinism contract (docs/observability.md): timing
  // never enters deterministic documents, so running the same seed with
  // profiling ON must reproduce the same bytes.
  obs::prof_set_enabled(true);
  std::string profiled = run_once();
  obs::prof_set_enabled(false);
  obs::prof_reset();
  EXPECT_EQ(first, profiled)
      << "enabling profiling must not change any deterministic byte";
  // Sanity: the report is parseable and carries the faulted run's data.
  PJson doc = testjson::parse(first);
  EXPECT_EQ(doc.get("bench")->string, "determinism_guard");
  EXPECT_EQ(doc.get("timestamp"), nullptr);
  ASSERT_EQ(doc.get("series")->array.size(), 1u);
}

}  // namespace
}  // namespace srds

// Attack-campaign suite: end-to-end BA runs against the adaptive adversary
// engine (net/campaign.hpp + ba/attack.hpp make_campaign). The invariants:
//   * the SNARK-SRDS protocol keeps AGREEMENT across every campaign in the
//     grid, below and above each baseline's breaking point;
//   * at least one baseline demonstrably degrades earlier (the resilience
//     frontier bench/fig_resilience.cpp charts is not vacuous);
//   * adaptive corruption respects the budget, and every adaptive decision
//     is a pure function of (seed, round, party) — same seed, byte-identical
//     NetworkStats and per-party Ledger;
//   * churned parties rejoin mid-protocol with state intact and the run
//     still agrees.
// ctest label: chaos (run with `ctest -L chaos`, e.g. under sanitizers).
#include <gtest/gtest.h>

#include "ba/runner.hpp"
#include "obs/ledger.hpp"

namespace srds {
namespace {

BaRunResult campaign_run(BoostProtocol proto, CampaignKind kind, double rate,
                         std::size_t n = 64, std::uint64_t seed = 7,
                         obs::Ledger* ledger = nullptr) {
  BaRunConfig cfg;
  cfg.n = n;
  cfg.beta = 0.0;
  cfg.seed = seed;
  cfg.protocol = proto;
  cfg.campaign = kind;
  cfg.corruption_rate = rate;
  cfg.ledger = ledger;
  return run_ba(cfg);
}

// --- Determinism guard -----------------------------------------------------

TEST(CampaignDeterminism, SameSeedIsByteIdentical) {
  for (auto kind : {CampaignKind::kTakeover, CampaignKind::kEclipse,
                    CampaignKind::kPartitionHeal}) {
    obs::Ledger la, lb;
    auto a = campaign_run(BoostProtocol::kPiBaSnark, kind, 0.30, 64, 7, &la);
    auto b = campaign_run(BoostProtocol::kPiBaSnark, kind, 0.30, 64, 7, &lb);
    EXPECT_EQ(a.stats, b.stats) << campaign_name(kind);
    EXPECT_EQ(a.stats.faults, b.stats.faults) << campaign_name(kind);
    EXPECT_EQ(a.adaptively_corrupted, b.adaptively_corrupted) << campaign_name(kind);
    // The per-party ledger serialisation is the strongest determinism
    // witness we have: every send/recv of every party, byte-for-byte.
    EXPECT_EQ(la.to_json(true).dump(), lb.to_json(true).dump()) << campaign_name(kind);
  }
}

TEST(CampaignDeterminism, CampaignHashIsAPureFunction) {
  EXPECT_EQ(campaign_hash(7, 3, 11), campaign_hash(7, 3, 11));
  // Each argument perturbs the output (whitened before mixing).
  EXPECT_NE(campaign_hash(7, 3, 11), campaign_hash(8, 3, 11));
  EXPECT_NE(campaign_hash(7, 3, 11), campaign_hash(7, 4, 11));
  EXPECT_NE(campaign_hash(7, 3, 11), campaign_hash(7, 3, 12));
}

// --- Budget accounting -----------------------------------------------------

TEST(CampaignBudget, GrantsNeverExceedTheBudget) {
  // Takeover self-limits to a slim majority of the supreme committee even
  // when the rate would allow more; partition-heal spends everything.
  auto takeover = campaign_run(BoostProtocol::kPiBaSnark, CampaignKind::kTakeover, 0.30);
  EXPECT_EQ(takeover.corruption_budget, static_cast<std::size_t>(0.30 * 64));
  EXPECT_GT(takeover.adaptively_corrupted, 0u);
  EXPECT_LT(takeover.adaptively_corrupted, takeover.corruption_budget);
  EXPECT_EQ(takeover.stats.faults.adaptive_corruptions, takeover.adaptively_corrupted);

  auto heal = campaign_run(BoostProtocol::kPiBaSnark, CampaignKind::kPartitionHeal, 0.30);
  EXPECT_EQ(heal.adaptively_corrupted, heal.corruption_budget);

  // Honest counting excludes every adaptively-flipped slot.
  EXPECT_EQ(heal.honest, 64u - heal.adaptively_corrupted);
}

TEST(CampaignBudget, ZeroRateMeansNoCorruptions) {
  auto r = campaign_run(BoostProtocol::kStar, CampaignKind::kTakeover, 0.0);
  EXPECT_EQ(r.corruption_budget, 0u);
  EXPECT_EQ(r.adaptively_corrupted, 0u);
  EXPECT_TRUE(r.agreement);
  EXPECT_EQ(r.correct, r.honest);
}

// --- Per-campaign safety outcomes ------------------------------------------

TEST(CampaignTakeover, BelowThresholdEveryoneAgrees) {
  for (auto proto : {BoostProtocol::kPiBaSnark, BoostProtocol::kStar,
                     BoostProtocol::kSampling, BoostProtocol::kNaive}) {
    auto r = campaign_run(proto, CampaignKind::kTakeover, 0.05);
    EXPECT_TRUE(r.agreement) << protocol_name(proto);
    EXPECT_EQ(r.correct, r.honest) << protocol_name(proto);
  }
}

TEST(CampaignTakeover, AboveThresholdStarBreaksSnarkHolds) {
  // Seizing a slim majority of the supreme committee and split-pushing
  // conflicting signed values shatters the star topology's single-hub
  // trust; the SNARK certificate quorum is out of the adversary's reach.
  auto star = campaign_run(BoostProtocol::kStar, CampaignKind::kTakeover, 0.30);
  EXPECT_FALSE(star.agreement);

  auto snark = campaign_run(BoostProtocol::kPiBaSnark, CampaignKind::kTakeover, 0.30);
  EXPECT_TRUE(snark.agreement);
  EXPECT_EQ(snark.correct, snark.honest);
  EXPECT_DOUBLE_EQ(snark.decided_fraction(), 1.0);
}

TEST(CampaignEclipse, VictimsAreFooledOnlyWithoutCertificates) {
  // Eclipsed victims hear a forged dissemination feed that out-votes their
  // own leaf self-votes, then lose all partition-cut traffic. Baselines let
  // the victim decide on the forged value (agreement breaks); π_ba's
  // certificate discipline leaves the victim safely undecided.
  const std::size_t n = 128;
  auto star = campaign_run(BoostProtocol::kStar, CampaignKind::kEclipse, 0.05, n);
  EXPECT_FALSE(star.agreement);

  auto snark = campaign_run(BoostProtocol::kPiBaSnark, CampaignKind::kEclipse, 0.05, n);
  EXPECT_TRUE(snark.agreement);
  EXPECT_LT(snark.decided, snark.honest);            // victims undecided...
  EXPECT_GE(snark.decided_fraction(), 0.95);         // ...and only victims
  EXPECT_EQ(snark.correct, snark.decided);           // deciders all correct
}

TEST(CampaignPartitionHeal, SnarkTradesLivenessForSafety) {
  // A front-end partition (healed before the boost) plus fail-silencing of
  // the majority side starves π_ba of certificate shares: it refuses to
  // decide rather than guess (agreement intact). The baselines' grace
  // fallback adopts the almost-everywhere value and recovers fully.
  auto snark = campaign_run(BoostProtocol::kPiBaSnark, CampaignKind::kPartitionHeal, 0.30);
  EXPECT_TRUE(snark.agreement);
  EXPECT_LT(snark.decided_fraction(), 0.60);

  auto star = campaign_run(BoostProtocol::kStar, CampaignKind::kPartitionHeal, 0.30);
  EXPECT_TRUE(star.agreement);
  EXPECT_DOUBLE_EQ(star.decided_fraction(), 1.0);
  EXPECT_EQ(star.correct, star.honest);
}

// --- Churn through the full protocol stack ---------------------------------

TEST(CampaignChurn, PartiesRejoinMidProtocolAndAgree)  {
  // Two parties drop out for a stretch of the front end and rejoin with
  // state intact; the run must keep agreement and lose at most the churned
  // parties from the decided set.
  BaRunConfig cfg;
  cfg.n = 64;
  cfg.beta = 0.0;
  cfg.seed = 9;
  cfg.protocol = BoostProtocol::kPiBaSnark;
  FaultPlan plan;
  plan.seed = 9;
  plan.churn.push_back(ChurnWindow{5, 2, 8});
  plan.churn.push_back(ChurnWindow{23, 4, 10});
  cfg.faults = plan;
  auto r = run_ba(cfg);
  EXPECT_TRUE(r.agreement);
  EXPECT_GT(r.stats.faults.churn_dropped, 0u);
  EXPECT_GE(r.decided, r.honest - 2);
  EXPECT_EQ(r.correct, r.decided);
}

}  // namespace
}  // namespace srds

// Tests for the counting multisig (the paper's succinct-arguments
// connection): one-shot SNARG-certified aggregation works; forging a count
// or a tag fails; and the construction's structural limitation (no
// incremental merging) is what distinguishes it from SRDS.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "srds/counting_multisig.hpp"

namespace srds {
namespace {

struct Signed {
  std::vector<std::size_t> signers;
  std::vector<MultisigTag> tags;
};

Signed sign_range(const CountingMultisig& cms, BytesView m, std::size_t from,
                  std::size_t to) {
  Signed out;
  for (std::size_t i = from; i < to; ++i) {
    out.signers.push_back(i);
    out.tags.push_back(cms.sign(i, m));
  }
  return out;
}

TEST(CountingMultisig, AggregateVerifyHappyPath) {
  CountingMultisig cms(100, 1);
  Bytes m = to_bytes("block");
  auto s = sign_range(cms, m, 0, 70);
  auto cert = cms.aggregate(m, s.signers, s.tags);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->count, 70u);
  EXPECT_TRUE(cms.verify(m, *cert));
}

TEST(CountingMultisig, CertificateIsConstantSize) {
  CountingMultisig small(20, 2), big(2000, 3);
  Bytes m = to_bytes("m");
  auto s1 = sign_range(small, m, 0, 15);
  auto s2 = sign_range(big, m, 0, 1500);
  auto c1 = small.aggregate(m, s1.signers, s1.tags);
  auto c2 = big.aggregate(m, s2.signers, s2.tags);
  ASSERT_TRUE(c1.has_value() && c2.has_value());
  EXPECT_EQ(c1->serialize().size(), c2->serialize().size());
  EXPECT_EQ(c1->serialize().size(), CountingMultisigCert::kSize);
}

TEST(CountingMultisig, BelowThresholdRejected) {
  CountingMultisig cms(100, 4);
  Bytes m = to_bytes("m");
  auto s = sign_range(cms, m, 0, 30);  // threshold is 50
  auto cert = cms.aggregate(m, s.signers, s.tags);
  ASSERT_TRUE(cert.has_value());
  EXPECT_FALSE(cms.verify(m, *cert));
}

TEST(CountingMultisig, InflatedCountCannotBeProven) {
  CountingMultisig cms(100, 5);
  Bytes m = to_bytes("m");
  auto s = sign_range(cms, m, 0, 60);
  auto cert = cms.aggregate(m, s.signers, s.tags);
  ASSERT_TRUE(cert.has_value());
  // Tampering with the certified count invalidates the proof.
  CountingMultisigCert forged = *cert;
  forged.count = 90;
  EXPECT_FALSE(cms.verify(m, forged));
}

TEST(CountingMultisig, WrongTagRejectedAtAggregation) {
  CountingMultisig cms(50, 6);
  Bytes m = to_bytes("m");
  auto s = sign_range(cms, m, 0, 40);
  s.tags[3] = cms.sign(3, to_bytes("other message"));
  EXPECT_FALSE(cms.aggregate(m, s.signers, s.tags).has_value());
}

TEST(CountingMultisig, DuplicateSignersRejected) {
  CountingMultisig cms(50, 7);
  Bytes m = to_bytes("m");
  auto s = sign_range(cms, m, 0, 40);
  s.signers[5] = s.signers[6];
  s.tags[5] = s.tags[6];
  EXPECT_FALSE(cms.aggregate(m, s.signers, s.tags).has_value());
}

TEST(CountingMultisig, WrongMessageRejected) {
  CountingMultisig cms(50, 8);
  Bytes m = to_bytes("m1");
  auto s = sign_range(cms, m, 0, 40);
  auto cert = cms.aggregate(m, s.signers, s.tags);
  ASSERT_TRUE(cert.has_value());
  EXPECT_FALSE(cms.verify(to_bytes("m2"), *cert));
}

TEST(CountingMultisig, SerializationRoundTrip) {
  CountingMultisig cms(50, 9);
  Bytes m = to_bytes("m");
  auto s = sign_range(cms, m, 0, 40);
  auto cert = cms.aggregate(m, s.signers, s.tags);
  ASSERT_TRUE(cert.has_value());
  Bytes wire = cert->serialize();
  CountingMultisigCert back;
  ASSERT_TRUE(CountingMultisigCert::deserialize(wire, back));
  EXPECT_TRUE(cms.verify(m, back));
}

TEST(CountingMultisig, TheBarrierNoIncrementalMerge) {
  // The structural point of §2.2: two counting-multisig certificates over
  // disjoint signer halves CANNOT be merged into one — the only way to a
  // combined certificate is re-proving with the union witness, which
  // requires one party to hold all Θ(n) identities. (SRDS's PCD recursion
  // is precisely what removes this requirement.)
  CountingMultisig cms(80, 10);
  Bytes m = to_bytes("m");
  auto left = sign_range(cms, m, 0, 40);
  auto right = sign_range(cms, m, 40, 80);
  auto c_left = cms.aggregate(m, left.signers, left.tags);
  auto c_right = cms.aggregate(m, right.signers, right.tags);
  ASSERT_TRUE(c_left.has_value() && c_right.has_value());

  // A "merged" certificate built by XORing tags and adding counts carries
  // no valid proof for the combined statement:
  CountingMultisigCert merged;
  merged.tag = c_left->tag;
  merged.tag.xor_in(c_right->tag);
  merged.count = c_left->count + c_right->count;
  merged.proof = c_left->proof;  // best the merger has
  EXPECT_FALSE(cms.verify(m, merged));

  // Whereas the from-scratch union proof succeeds (with the full witness):
  Signed all = left;
  all.signers.insert(all.signers.end(), right.signers.begin(), right.signers.end());
  all.tags.insert(all.tags.end(), right.tags.begin(), right.tags.end());
  auto c_all = cms.aggregate(m, all.signers, all.tags);
  ASSERT_TRUE(c_all.has_value());
  EXPECT_TRUE(cms.verify(m, *c_all));
}

}  // namespace
}  // namespace srds

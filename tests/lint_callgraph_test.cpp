// srds-lint call-graph engine tests (callgraph.hpp): graph construction,
// resolution fallback, cycle termination, the C1/P2/T2 interprocedural
// passes, shard-roots manifest semantics (roots, allows, stale entries,
// parse errors), stale markers, the census stats, and the DOT export.
//
// Fixtures live in tests/lint_fixtures/ next to the per-rule ones and are
// linted under *logical* paths (the engine scopes rules by repo-relative
// path); expected line numbers are pinned to the fixture sources.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.hpp"
#include "lint.hpp"
#include "taint.hpp"

namespace srds::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(SRDS_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// (rule, line) pairs of unsuppressed findings for one rule, sorted.
std::set<std::pair<std::string, std::size_t>> rule_hits(const std::vector<Finding>& fs,
                                                        const std::string& rule) {
  std::set<std::pair<std::string, std::size_t>> out;
  for (const Finding& f : fs) {
    if (!f.suppressed && f.rule == rule) out.insert({f.rule, f.line});
  }
  return out;
}

const Finding* find_at(const std::vector<Finding>& fs, const std::string& rule,
                       std::size_t line) {
  for (const Finding& f : fs) {
    if (f.rule == rule && f.line == line) return &f;
  }
  return nullptr;
}

std::vector<std::pair<std::string, std::string>> shard_inputs() {
  return {{"src/mpc/cg_shard_root.cpp", fixture("cg_shard_root.cpp")},
          {"src/mpc/cg_shard_state.cpp", fixture("cg_shard_state.cpp")}};
}

// ---------------------------------------------------------------------------
// Graph construction.
// ---------------------------------------------------------------------------

TEST(CallGraphBuild, FindsDefinitionsAndCrossFileEdges) {
  const CallGraph cg = build_call_graph(shard_inputs());
  ASSERT_EQ(cg.files.size(), 2u);
  ASSERT_EQ(cg.defs.size(), 7u);  // on_round, prepare + 5 helpers

  // on_round's `prepare(round)` resolves to the same-class member.
  const FuncDef* on_round = nullptr;
  for (const FuncDef& d : cg.defs) {
    if (d.body.qual == "DemoParty::on_round") on_round = &d;
  }
  ASSERT_NE(on_round, nullptr);
  bool prepare_edge = false;
  for (const CallSite& cs : on_round->calls) {
    for (std::size_t cal : cg.resolve(*on_round, cs)) {
      if (cg.defs[cal].body.qual == "DemoParty::prepare") prepare_edge = true;
    }
  }
  EXPECT_TRUE(prepare_edge);

  // `Config::instance()` names no scanned definition: an external call.
  EXPECT_GT(cg.external_calls, 0u);
}

TEST(CallGraphBuild, StlMemberCallsStayOpaque) {
  // `out.push_back(x)` must not resolve into an unrelated class that
  // happens to define push_back — it is not recorded as a call at all.
  const CallGraph cg = build_call_graph(
      {{"src/mpc/a.cpp", "void caller(std::vector<int>& out, int x) {\n"
                         "  out.push_back(x);\n"
                         "}\n"},
       {"src/obs/b.cpp", "void Json::push_back(int v) {\n"
                         "  static int n = 0;\n"
                         "  ++n;\n"
                         "}\n"}});
  const FuncDef* caller = nullptr;
  for (const FuncDef& d : cg.defs) {
    if (d.body.qual == "caller") caller = &d;
  }
  ASSERT_NE(caller, nullptr);
  EXPECT_TRUE(caller->calls.empty());
}

// ---------------------------------------------------------------------------
// C1: concurrency readiness from shard roots.
// ---------------------------------------------------------------------------

TEST(LintC1, PlantedViolationsReportedWithCrossFileCallPath) {
  const auto fs = lint_files(shard_inputs(), {});
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"C1", 12},  // file-scope mutable write in bump_counter
      {"C1", 16},  // function-local static in cached_weight
      {"C1", 23},  // unordered iteration in sum_votes
      {"C1", 28},  // RNG engine in draw
      {"C1", 33},  // singleton accessor in read_config
  };
  EXPECT_EQ(rule_hits(fs, "C1"), expected);

  // The acceptance criterion: a shared-static write behind two hops of
  // calls is reported with the full path from the root.
  const Finding* f = find_at(fs, "C1", 12);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->file, "src/mpc/cg_shard_state.cpp");
  EXPECT_NE(f->message.find("g_round_counter"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find(
                "call path: DemoParty::on_round -> DemoParty::prepare -> bump_counter"),
            std::string::npos)
      << f->message;
}

TEST(LintC1, CycleTerminatesAndReportsOnce) {
  const auto fs =
      lint_files({{"src/consensus/cg_cycle.cpp", fixture("cg_cycle.cpp")}}, {});
  const std::set<std::pair<std::string, std::size_t>> expected = {{"C1", 10}};
  EXPECT_EQ(rule_hits(fs, "C1"), expected);
  const Finding* f = find_at(fs, "C1", 10);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("call path: ping -> pong"), std::string::npos) << f->message;
}

TEST(LintC1, UnresolvedCallFallsBackToEveryCandidate) {
  const auto fs = lint_files({{"src/srds/cg_overload_a.cpp", fixture("cg_overload_a.cpp")},
                              {"src/srds/cg_overload_b.cpp", fixture("cg_overload_b.cpp")},
                              {"src/srds/cg_overload_c.cpp", fixture("cg_overload_c.cpp")}},
                             {});
  // Both same-name candidates are treated as reachable (over-approximation
  // by design): the global write in b and the static in c.
  const std::set<std::pair<std::string, std::size_t>> expected = {{"C1", 6}, {"C1", 4}};
  EXPECT_EQ(rule_hits(fs, "C1"), expected);
}

TEST(LintC1, StaleMarkersOfBothKindsAreFindings) {
  const auto fs =
      lint_files({{"src/ba/cg_stale_markers.cpp", fixture("cg_stale_markers.cpp")}}, {});
  EXPECT_EQ(rule_hits(fs, "P1"),
            (std::set<std::pair<std::string, std::size_t>>{{"P1", 5}}));
  EXPECT_EQ(rule_hits(fs, "C1"),
            (std::set<std::pair<std::string, std::size_t>>{{"C1", 6}}));
  const Finding* p1 = find_at(fs, "P1", 5);
  ASSERT_NE(p1, nullptr);
  EXPECT_NE(p1->message.find("RemovedFast::send"), std::string::npos) << p1->message;
  const Finding* c1 = find_at(fs, "C1", 6);
  ASSERT_NE(c1, nullptr);
  EXPECT_NE(c1->message.find("RemovedParty::on_round"), std::string::npos) << c1->message;
  EXPECT_NE(c1->message.find("deleted or renamed"), std::string::npos) << c1->message;
}

TEST(LintC1, QualifiedNameNeverMatchesADifferentClass) {
  Lexed lx = lex("struct A { void run() { } };\nstruct B { void run() { } };\n");
  const auto funcs = function_bodies(lx);
  ASSERT_EQ(funcs.size(), 2u);
  EXPECT_TRUE(marker_name_matches("A::run", funcs[0]));
  EXPECT_FALSE(marker_name_matches("A::run", funcs[1]));
  EXPECT_TRUE(marker_name_matches("run", funcs[1]));
}

// ---------------------------------------------------------------------------
// The shard-roots manifest.
// ---------------------------------------------------------------------------

TEST(ShardManifest, ParsesRootsAndAllows) {
  ShardManifest m;
  std::string error;
  ASSERT_TRUE(parse_shard_manifest("# comment\n"
                                   "[roots]\n"
                                   "functions = [\n"
                                   "  \"A::run\",\n"
                                   "  \"helper\",\n"
                                   "]\n"
                                   "[allow]\n"
                                   "\"B::guard\" = \"cold error path\"\n",
                                   m, error))
      << error;
  ASSERT_EQ(m.roots.size(), 2u);
  EXPECT_EQ(m.roots[0], "A::run");
  ASSERT_EQ(m.allows.size(), 1u);
  EXPECT_EQ(m.allows[0].first, "B::guard");
  EXPECT_EQ(m.allows[0].second, "cold error path");
}

TEST(ShardManifest, AllowWithoutJustificationIsAParseError) {
  ShardManifest m;
  std::string error;
  EXPECT_FALSE(parse_shard_manifest("[allow]\n\"B::guard\" = \"\"\n", m, error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(ShardManifest, ManifestRootsSeedTheTraversal) {
  Config cfg;
  cfg.shard_manifest = "[roots]\nfunctions = [\"helper\"]\n";
  const auto fs = lint_files({{"src/srds/cg_overload_b.cpp", fixture("cg_overload_b.cpp")},
                              {"src/srds/cg_overload_c.cpp", fixture("cg_overload_c.cpp")}},
                             cfg);
  const std::set<std::pair<std::string, std::size_t>> expected = {{"C1", 6}, {"C1", 4}};
  EXPECT_EQ(rule_hits(fs, "C1"), expected);
}

TEST(ShardManifest, StaleEntriesAreFindingsAgainstTheManifest) {
  Config cfg;
  cfg.shard_manifest =
      "[roots]\nfunctions = [\"gone_root\"]\n[allow]\n\"gone_guard\" = \"cold path\"\n";
  cfg.shard_manifest_path = "tools/srds-lint/shard_roots.toml";
  const auto fs =
      lint_files({{"src/consensus/cg_cycle.cpp", fixture("cg_cycle.cpp")}}, cfg);
  std::size_t stale = 0;
  for (const Finding& f : fs) {
    if (f.rule != "C1" || f.file != cfg.shard_manifest_path) continue;
    ++stale;
    EXPECT_TRUE(f.message.find("gone_root") != std::string::npos ||
                f.message.find("gone_guard") != std::string::npos)
        << f.message;
  }
  EXPECT_EQ(stale, 2u);
}

TEST(ShardManifest, AllowedFunctionStopsTheTraversal) {
  Config cfg;
  cfg.shard_manifest = "[allow]\n\"pong\" = \"recursion fixture: deliberately dirty\"\n";
  const auto fs =
      lint_files({{"src/consensus/cg_cycle.cpp", fixture("cg_cycle.cpp")}}, cfg);
  EXPECT_TRUE(rule_hits(fs, "C1").empty());
}

TEST(ShardManifest, ParseFailureIsItselfAFinding) {
  Config cfg;
  cfg.shard_manifest = "[allow]\nB::guard = unquoted\n";
  const auto fs =
      lint_files({{"src/consensus/cg_cycle.cpp", fixture("cg_cycle.cpp")}}, cfg);
  const Finding* f = nullptr;
  for (const Finding& g : fs) {
    if (g.rule == "C1" && g.file == cfg.shard_manifest_path) f = &g;
  }
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("bad shard-roots manifest"), std::string::npos) << f->message;
}

// ---------------------------------------------------------------------------
// P2 / T2: interprocedural discipline propagation.
// ---------------------------------------------------------------------------

TEST(LintP2, ThrowInCalleeReportedWithCallPath) {
  const auto fs =
      lint_files({{"src/net/cg_p2_chain.cpp", fixture("cg_p2_chain.cpp")}}, {});
  EXPECT_TRUE(rule_hits(fs, "P1").empty());  // the marked body itself is clean
  const std::set<std::pair<std::string, std::size_t>> expected = {{"P2", 10}};
  EXPECT_EQ(rule_hits(fs, "P2"), expected);
  const Finding* f = find_at(fs, "P2", 10);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("call path: fast_path -> slow_helper"), std::string::npos)
      << f->message;
}

TEST(LintT2, UnvalidatedHandoffReportedWithFlow) {
  const auto fs =
      lint_files({{"src/ba/cg_t2_handoff.cpp", fixture("cg_t2_handoff.cpp")}}, {});
  const std::set<std::pair<std::string, std::size_t>> expected = {{"T2", 15}};
  EXPECT_EQ(rule_hits(fs, "T2"), expected);
  const Finding* f = find_at(fs, "T2", 15);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("consume -> route -> forward"), std::string::npos)
      << f->message;
}

TEST(LintT2, OutOfScopeFilesAreExempt) {
  const auto fs =
      lint_files({{"src/obs/cg_t2_handoff.cpp", fixture("cg_t2_handoff.cpp")}}, {});
  EXPECT_TRUE(rule_hits(fs, "T2").empty());
}

// ---------------------------------------------------------------------------
// Census + DOT export.
// ---------------------------------------------------------------------------

TEST(CallGraphStatsTest, CensusCountsRootsAndReachability) {
  CallGraphStats stats;
  const auto fs = lint_files(shard_inputs(), {}, &stats);
  (void)fs;
  EXPECT_EQ(stats.functions, 7u);
  EXPECT_EQ(stats.shard_roots, 1u);
  EXPECT_EQ(stats.shard_reachable, 7u);  // the whole closure, root included
  EXPECT_EQ(stats.hotpath_funcs, 0u);
  EXPECT_GT(stats.call_edges, 0u);
  EXPECT_GT(stats.external_calls, 0u);
}

TEST(CallGraphDot, RootsAreMarkedAndEdgesEmitted) {
  const CallGraph cg =
      build_call_graph({{"src/consensus/cg_cycle.cpp", fixture("cg_cycle.cpp")}});
  const std::string dot = call_graph_dot(cg, nullptr);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos) << dot;
  EXPECT_NE(dot.find("ping"), std::string::npos) << dot;
  EXPECT_NE(dot.find("pong"), std::string::npos) << dot;
  EXPECT_NE(dot.find("->"), std::string::npos) << dot;
}

}  // namespace
}  // namespace srds::lint

// Tiny recursive-descent JSON parser used ONLY by the tests, written
// independently of src/obs/json.cpp so the two implementations check each
// other: the writer's output must parse here, and the parsed values must
// match what was written. Not a production parser — throws std::runtime_error
// on any malformed input, keeps numbers as double plus an exact int64 when
// the token is integral.
#pragma once

#include <cctype>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace srds::testjson {

struct PJson {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::int64_t integer = 0;  // valid when is_integer
  bool is_integer = false;
  std::string string;
  std::vector<PJson> array;
  std::vector<std::pair<std::string, PJson>> object;

  const PJson* get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  PJson parse() {
    PJson v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t len = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  PJson value() {
    skip_ws();
    char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      PJson v;
      v.type = PJson::Type::kString;
      v.string = string();
      return v;
    }
    if (consume_literal("null")) return PJson{};
    if (consume_literal("true")) {
      PJson v;
      v.type = PJson::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      PJson v;
      v.type = PJson::Type::kBool;
      return v;
    }
    return number();
  }

  PJson object() {
    expect('{');
    PJson v;
    v.type = PJson::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  PJson array() {
    expect('[');
    PJson v;
    v.type = PJson::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit");
          }
          // The writer only emits \u00XX for control bytes; that is all the
          // tests need to decode.
          if (code > 0xFF) fail("non-latin1 \\u escape unsupported in test parser");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  PJson number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    bool integral = true;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ == start) fail("expected value");
    std::string tok = s_.substr(start, pos_ - start);
    PJson v;
    v.type = PJson::Type::kNumber;
    try {
      v.number = std::stod(tok);
    } catch (const std::exception&) {
      fail("bad number token: " + tok);
    }
    if (integral) {
      try {
        v.integer = std::stoll(tok);
        v.is_integer = true;
      } catch (const std::out_of_range&) {
        // Outside int64 range (e.g. uint64 max): keep the double only.
      }
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline PJson parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace srds::testjson

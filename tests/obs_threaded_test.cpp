// Concurrency stress for the observability layer. These are the tests the
// TSan leg of the sanitizer matrix exists for (SRDS_SANITIZE=thread runs
// `ctest -L chaos` in CI): worker threads hammer the metrics registry and
// a bench Reporter through every public entry point at once, and TSan
// checks the locking discipline while the assertions check the arithmetic.
//
// Labeled `chaos` (see tests/CMakeLists.txt) alongside the fault-injection
// suite: both probe behavior under hostile scheduling rather than protocol
// logic.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace srds {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 5000;

TEST(ObsThreaded, SharedCounterCountsEveryIncrement) {
  obs::Registry reg;
  obs::Counter& shared = reg.counter("shared_ops");
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) shared.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(shared.value(), kThreads * kOpsPerThread);
}

TEST(ObsThreaded, ConcurrentRegistrationDeduplicates) {
  obs::Registry reg;
  std::vector<std::thread> workers;
  // Every thread registers the *same* labeled metrics; the registry must
  // hand all of them the same storage, never a duplicate entry.
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        reg.counter("msgs", {{"proto", "pi_ba"}}).inc();
        reg.histogram("payload", {{"proto", "pi_ba"}}).record(i);
        reg.gauge("round", {{"proto", "pi_ba"}}).set(static_cast<double>(t));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.counter("msgs", {{"proto", "pi_ba"}}).value(), kThreads * kOpsPerThread);
  EXPECT_EQ(reg.histogram("payload", {{"proto", "pi_ba"}}).count(),
            kThreads * kOpsPerThread);
}

TEST(ObsThreaded, HistogramInvariantsHoldUnderContention) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("latency");
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (std::size_t i = 1; i <= kOpsPerThread; ++i) {
        h.record(t * kOpsPerThread + i);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), kThreads * kOpsPerThread);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), kThreads * kOpsPerThread);
  // Sum of 1..N.
  const std::uint64_t n = kThreads * kOpsPerThread;
  EXPECT_EQ(h.sum(), n * (n + 1) / 2);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < obs::Histogram::kBuckets; ++b) bucket_total += h.bucket(b);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsThreaded, ExportWhileWritingIsConsistent) {
  obs::Registry reg;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads / 2; ++t) {
    workers.emplace_back([&reg] {
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        reg.counter("ops").inc();
        reg.histogram("sizes").record(i);
      }
    });
  }
  // Readers export concurrently; every snapshot must parse as a complete
  // document (TSan checks the memory side, we check structure).
  for (std::size_t t = 0; t < 2; ++t) {
    workers.emplace_back([&reg] {
      for (std::size_t i = 0; i < 50; ++i) {
        obs::Json doc = reg.to_json();
        ASSERT_TRUE(doc.find("counters") != nullptr);
        ASSERT_TRUE(doc.find("histograms") != nullptr);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("ops").value(), (kThreads / 2) * kOpsPerThread);
}

TEST(ObsThreaded, ReporterRowsSurviveConcurrentAppends) {
  bench::Reporter rep("obs_threaded");
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rep, t] {
      for (std::size_t i = 0; i < 200; ++i) {
        obs::Json m = obs::Json::object();
        m.set("thread", static_cast<unsigned long long>(t));
        rep.add_row(static_cast<double>(i), std::move(m));
        rep.set_param("threads", static_cast<unsigned long long>(kThreads));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(rep.rows(), kThreads * 200);
  obs::Json doc = rep.to_json(/*with_timestamp=*/false);
  const obs::Json* series = doc.find("series");
  ASSERT_TRUE(series != nullptr);
  EXPECT_EQ(series->items().size(), kThreads * 200);
}

}  // namespace
}  // namespace srds

// Wire-format robustness: every parser that consumes network bytes must
// survive arbitrary garbage without crashing and without false accepts.
// These sweeps drive random and structure-adjacent mutations through every
// deserializer and through live sub-protocol inboxes.
#include <gtest/gtest.h>

#include <memory>

#include "ba/certified_dissem.hpp"
#include "ba/runner.hpp"
#include "common/rng.hpp"
#include "consensus/coin_toss.hpp"
#include "consensus/dolev_strong.hpp"
#include "crypto/lamport.hpp"
#include "crypto/merkle.hpp"
#include "crypto/multisig.hpp"
#include "crypto/threshold_sig.hpp"
#include "crypto/wots.hpp"
#include "mpc/fhe.hpp"
#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"
#include "svc/frame.hpp"
#include "tree/dissemination.hpp"

namespace srds {
namespace {

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Bytes random_garbage(Rng& rng) { return rng.bytes(rng.below(400)); }

  /// Truncations and single-byte flips of a valid wire blob.
  std::vector<Bytes> mutations(const Bytes& valid, Rng& rng) {
    std::vector<Bytes> out;
    if (valid.empty()) return out;
    out.push_back(Bytes(valid.begin(), valid.begin() + valid.size() / 2));
    out.push_back(Bytes(valid.begin(), valid.end() - 1));
    Bytes flipped = valid;
    flipped[rng.below(flipped.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    out.push_back(std::move(flipped));
    Bytes extended = valid;
    extended.push_back(0x55);
    out.push_back(std::move(extended));
    return out;
  }
};

TEST_P(WireFuzz, StructDeserializersNeverCrash) {
  Rng rng(GetParam() * 77 + 1);
  for (int trial = 0; trial < 40; ++trial) {
    Bytes junk = random_garbage(rng);
    WotsSignature wots;
    (void)WotsSignature::deserialize(junk, wots);
    LamportSignature lamport;
    (void)LamportSignature::deserialize(junk, lamport);
    MerklePath path;
    (void)MerklePath::deserialize(junk, path);
    Multisig ms;
    (void)Multisig::deserialize(junk, ms);
    PartialThresholdSig pts;
    (void)PartialThresholdSig::deserialize(junk, pts);
    Ciphertext ct;
    (void)Ciphertext::deserialize(junk, ct);
  }
  SUCCEED();
}

TEST_P(WireFuzz, MutatedWotsSignaturesRejected) {
  Rng rng(GetParam() * 77 + 2);
  auto kp = wots_keygen(rng.bytes(32));
  Bytes m = to_bytes("fuzz");
  Bytes valid = wots_sign(kp, m).serialize();
  for (const Bytes& mut : mutations(valid, rng)) {
    WotsSignature sig;
    if (WotsSignature::deserialize(mut, sig)) {
      EXPECT_FALSE(wots_verify(kp.verification_key, m, sig));
    }
  }
}

TEST_P(WireFuzz, MutatedSrdsBlobsRejected) {
  Rng rng(GetParam() * 77 + 3);
  SnarkSrdsParams p;
  p.n_signers = 24;
  p.backend = BaseSigBackend::kCompact;
  SnarkSrds scheme(p, GetParam());
  for (std::size_t i = 0; i < 24; ++i) scheme.keygen(i);
  scheme.finalize_keys();
  Bytes m = to_bytes("fuzz");
  std::vector<Bytes> sigs;
  for (std::size_t i = 0; i < 24; ++i) sigs.push_back(scheme.sign(i, m));
  Bytes agg = scheme.aggregate(m, sigs);
  ASSERT_TRUE(scheme.verify(m, agg));
  for (const Bytes& mut : mutations(agg, rng)) {
    EXPECT_FALSE(scheme.verify(m, mut));
  }
  for (const Bytes& mut : mutations(sigs[0], rng)) {
    EXPECT_TRUE(scheme.aggregate1(m, {mut}).empty());
  }
}

TEST_P(WireFuzz, SubProtocolInboxesSurviveGarbage) {
  Rng rng(GetParam() * 77 + 4);
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(64), 5);
  auto registry = std::make_shared<const SimSigRegistry>(64, 6);
  std::vector<PartyId> members{0, 1, 2, 3, 4, 5, 6};

  DolevStrongProto ds(registry, members, 0, 2, to_bytes("fz"), 1, std::nullopt);
  CoinTossProto ct(registry, members, 2, to_bytes("fz"), 1, 7);
  DisseminationProto dis(tree, 1, std::nullopt);
  CertifiedDissemProto cd(tree, 1, std::nullopt, {},
                          [](BytesView, BytesView) { return false; }, 3);

  for (std::size_t round = 0; round < 12; ++round) {
    std::vector<TaggedMsg> inbox;
    for (int k = 0; k < 6; ++k) {
      inbox.push_back(TaggedMsg{static_cast<PartyId>(rng.below(64)),
                                random_garbage(rng)});
    }
    if (round < ds.rounds()) (void)ds.step(round, inbox);
    if (round < ct.rounds()) (void)ct.step(round, inbox);
    if (round < dis.rounds()) (void)dis.step(round, inbox);
    if (round < cd.rounds()) (void)cd.step(round, inbox);
  }
  // Garbage must never produce an accepted output.
  EXPECT_FALSE(ds.output().has_value());
  EXPECT_FALSE(dis.output().has_value());
  EXPECT_TRUE(cd.certificate().empty());
}

TEST_P(WireFuzz, OwfSchemeSurvivesStructuredGarbage) {
  Rng rng(GetParam() * 77 + 5);
  OwfSrdsParams p;
  p.n_signers = 40;
  p.expected_signers = 12;
  p.backend = BaseSigBackend::kCompact;
  OwfSrds scheme(p, GetParam() + 1);
  for (std::size_t i = 0; i < 40; ++i) scheme.keygen(i);
  scheme.finalize_keys();
  Bytes m = to_bytes("fuzz");
  for (int trial = 0; trial < 25; ++trial) {
    Bytes junk = random_garbage(rng);
    if (!junk.empty()) junk[0] = 1;  // force the aggregate tag byte
    EXPECT_FALSE(scheme.verify(m, junk));
    IndexRange r;
    (void)scheme.index_range(junk, r);
    (void)scheme.base_count(junk);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Range<std::uint64_t>(0, 8));

// Chaos fuzz: randomized FaultPlan schedules driven through full BA runs.
// The invariants are absolute — whatever the plan drops, delays, duplicates,
// partitions or crashes, the run must not crash and no two honest parties
// may ever decide different values. (Availability is NOT asserted here; a
// hostile-enough plan may legitimately leave parties undecided.)
class ChaosFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  FaultPlan random_plan(Rng& rng, std::size_t n) {
    FaultPlan plan;
    plan.seed = rng.next();
    plan.drop_prob = static_cast<double>(rng.below(31)) / 100.0;  // 0..0.30
    if (rng.below(2) == 0) {
      plan.delay_prob = static_cast<double>(rng.below(26)) / 100.0;
      plan.max_delay = 1 + rng.below(3);
    }
    if (rng.below(2) == 0) {
      plan.duplicate_prob = static_cast<double>(rng.below(16)) / 100.0;
    }
    if (rng.below(2) == 0) {
      PartitionWindow w;
      w.from_round = rng.below(12);
      w.until_round = w.from_round + 2 + rng.below(10);
      for (PartyId p : rng.subset(n, 2 + rng.below(n / 4))) w.group.push_back(p);
      plan.partitions.push_back(w);
    }
    for (std::size_t c = rng.below(4); c > 0; --c) {
      plan.crashes.push_back(
          CrashFault{static_cast<PartyId>(rng.below(n)), rng.below(20)});
    }
    return plan;
  }
};

TEST_P(ChaosFuzz, RandomFaultPlansNeverBreakAgreement) {
  Rng rng(GetParam() * 131 + 9);
  const std::size_t n = 48;
  // Certificate-carrying protocols: late decisions are gated on verified
  // certificates, so agreement is unconditional by construction; the fuzz
  // checks the implementation honors that under arbitrary schedules.
  const BoostProtocol protos[] = {BoostProtocol::kPiBaSnark, BoostProtocol::kStar};
  for (int trial = 0; trial < 3; ++trial) {
    FaultPlan plan = random_plan(rng, n);
    BaRunConfig cfg;
    cfg.n = n;
    cfg.beta = 0.1;
    cfg.seed = rng.next();
    cfg.protocol = protos[trial % 2];
    cfg.faults = plan;
    auto r = run_ba(cfg);  // must not crash/throw
    EXPECT_TRUE(r.agreement)
        << protocol_name(cfg.protocol) << " seed=" << plan.seed
        << " drop=" << plan.drop_prob << " delay=" << plan.delay_prob
        << " dup=" << plan.duplicate_prob
        << " partitions=" << plan.partitions.size()
        << " crashes=" << plan.crashes.size();
    EXPECT_LE(r.decided, r.honest);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFuzz, ::testing::Range<std::uint64_t>(0, 6));

// Campaign fuzz: randomized attack-campaign schedules (kind x corruption
// rate, optionally overlaid with drop faults and churn windows) driven
// through full SNARK-SRDS runs. Safety is absolute: whatever the adaptive
// adversary seizes within its budget, no two finally-honest parties may
// decide differently — a hostile-enough campaign may only cost liveness.
class CampaignFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CampaignFuzz, RandomCampaignSchedulesNeverBreakSnarkAgreement) {
  Rng rng(GetParam() * 173 + 5);
  const std::size_t n = 48;
  const CampaignKind kinds[] = {CampaignKind::kTakeover, CampaignKind::kEclipse,
                                CampaignKind::kPartitionHeal};
  for (int trial = 0; trial < 3; ++trial) {
    BaRunConfig cfg;
    cfg.n = n;
    cfg.beta = 0.0;
    cfg.seed = rng.next();
    cfg.protocol = BoostProtocol::kPiBaSnark;
    cfg.campaign = kinds[rng.below(3)];
    cfg.corruption_rate = static_cast<double>(rng.below(41)) / 100.0;  // 0..0.40
    if (rng.below(2) == 0) {
      FaultPlan plan;
      plan.seed = rng.next();
      plan.drop_prob = static_cast<double>(rng.below(11)) / 100.0;
      if (rng.below(2) == 0) {
        std::size_t from = rng.below(8);
        plan.churn.push_back(ChurnWindow{static_cast<PartyId>(rng.below(n)), from,
                                         from + 1 + rng.below(6)});
      }
      cfg.faults = plan;
    }
    auto r = run_ba(cfg);  // must not crash/throw
    EXPECT_TRUE(r.agreement)
        << campaign_name(cfg.campaign) << " rate=" << cfg.corruption_rate
        << " seed=" << cfg.seed << " faults=" << cfg.faults.has_value();
    EXPECT_LE(r.adaptively_corrupted, r.corruption_budget);
    EXPECT_LE(r.decided, r.honest);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignFuzz, ::testing::Range<std::uint64_t>(0, 6));

// Service frame codec fuzz: the svc daemon's front door parses bytes from
// untrusted transport clients (not simulated parties), so its decoder gets
// the same treatment as the party-facing deserializers — random garbage,
// truncation, duplication and reordering must never crash it, and valid
// frames around the damage must still come through wherever the length
// prefix keeps the stream in sync.
class FrameFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<svc::Frame> sample_frames() {
    return {
        svc::make_hello(),
        svc::make_hello_ack(3, 8),
        svc::make_submit(3, 1, true),
        svc::make_decision(3, 1, false, true, 68, 9),
        svc::make_reject(3, 2, 40),
        svc::make_close(3),
        svc::make_error(3, 2, "diagnostic"),
    };
  }
};

TEST_P(FrameFuzz, DecoderSurvivesRandomGarbage) {
  Rng rng(GetParam() * 131 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    svc::FrameDecoder dec;
    dec.feed(rng.bytes(rng.below(600)));
    while (dec.next().has_value()) {
    }
    // No crash, and the accounting stays coherent: a poisoned stream was
    // counted at least once.
    if (dec.poisoned()) EXPECT_GE(dec.malformed(), 1u);
  }
}

TEST_P(FrameFuzz, TruncationIsCountedOrLeavesFrameIncomplete) {
  Rng rng(GetParam() * 137 + 11);
  for (const svc::Frame& f : sample_frames()) {
    const Bytes wire = svc::encode_frame(f);
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t cut = rng.below(wire.size());
      svc::FrameDecoder dec;
      dec.feed(BytesView(wire.data(), cut));
      // A truncated frame must never be surfaced as a complete one.
      EXPECT_FALSE(dec.next().has_value());
      // Completing the bytes later must always recover the frame (the
      // decoder is chunk-boundary agnostic).
      dec.feed(BytesView(wire.data() + cut, wire.size() - cut));
      auto got = dec.next();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->type, f.type);
      EXPECT_EQ(got->seq, f.seq);
      EXPECT_EQ(got->payload, f.payload);
    }
  }
}

TEST_P(FrameFuzz, DuplicationAndReorderDecodePerFrame) {
  Rng rng(GetParam() * 139 + 13);
  for (int trial = 0; trial < 20; ++trial) {
    // Build a shuffled multiset of frames: duplicates and arbitrary order
    // are a transport-level reality the codec must be indifferent to (the
    // router's watermark, not the decoder, is the dedup layer).
    std::vector<svc::Frame> frames = sample_frames();
    frames.push_back(frames[rng.below(frames.size())]);  // duplicate one
    rng.shuffle(frames);

    Bytes wire;
    for (const svc::Frame& f : frames) {
      Bytes one = svc::encode_frame(f);
      wire.insert(wire.end(), one.begin(), one.end());
    }
    svc::FrameDecoder dec;
    // Feed in random chunk sizes.
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t len = std::min<std::size_t>(1 + rng.below(23), wire.size() - pos);
      dec.feed(BytesView(wire.data() + pos, len));
      pos += len;
    }
    std::vector<svc::Frame> got;
    while (auto f = dec.next()) got.push_back(*f);
    ASSERT_EQ(got.size(), frames.size());
    EXPECT_EQ(dec.malformed(), 0u);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(got[i].type, frames[i].type) << i;
      EXPECT_EQ(got[i].session, frames[i].session) << i;
      EXPECT_EQ(got[i].seq, frames[i].seq) << i;
      EXPECT_EQ(got[i].payload, frames[i].payload) << i;
    }
  }
}

TEST_P(FrameFuzz, CorruptedStreamNeverFalselyAccepts) {
  Rng rng(GetParam() * 149 + 17);
  const std::vector<svc::Frame> frames = sample_frames();
  for (int trial = 0; trial < 40; ++trial) {
    Bytes wire;
    for (const svc::Frame& f : frames) {
      Bytes one = svc::encode_frame(f);
      wire.insert(wire.end(), one.begin(), one.end());
    }
    // Flip a few random bytes anywhere in the stream.
    for (int flips = 0; flips < 3; ++flips) {
      wire[rng.below(wire.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    svc::FrameDecoder dec;
    dec.feed(wire);
    std::size_t yielded = 0;
    while (auto f = dec.next()) {
      ++yielded;
      // Whatever survived must be structurally valid (a known type: the
      // decoder promises returned frames are parseable).
      EXPECT_GE(static_cast<std::uint8_t>(f->type),
                static_cast<std::uint8_t>(svc::FrameType::kHello));
      EXPECT_LE(static_cast<std::uint8_t>(f->type),
                static_cast<std::uint8_t>(svc::FrameType::kError));
    }
    EXPECT_LE(yielded, frames.size() + 3);  // flips cannot mint extra frames
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzz, ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace srds

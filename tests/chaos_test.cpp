// Chaos suite: end-to-end BA runs under seeded network fault injection
// (net/faults.hpp). The invariants, for every BoostProtocol variant and
// every fault class:
//   * SAFETY is never violated — no two honest parties decide differently,
//     whatever the network drops, delays, duplicates or partitions;
//   * AVAILABILITY degrades gracefully — the decided fraction stays above a
//     configured floor for each fault class;
//   * runs are DETERMINISTIC — the same seed reproduces byte-identical
//     NetworkStats, fault counters included.
// ctest label: chaos (run with `ctest -L chaos`, e.g. under sanitizers).
#include <gtest/gtest.h>

#include "ba/runner.hpp"

namespace srds {
namespace {

constexpr std::size_t kN = 64;

const BoostProtocol kAllProtocols[] = {
    BoostProtocol::kPiBaOwf,  BoostProtocol::kPiBaSnark, BoostProtocol::kNaive,
    BoostProtocol::kMultisig, BoostProtocol::kSampling,  BoostProtocol::kStar,
};

BaRunResult chaos_run(BoostProtocol proto, const FaultPlan& plan, double beta = 0.1,
                      std::uint64_t seed = 7, std::size_t n = kN) {
  BaRunConfig cfg;
  cfg.n = n;
  cfg.beta = beta;
  cfg.seed = seed;
  cfg.protocol = proto;
  cfg.faults = plan;
  return run_ba(cfg);
}

class ChaosSuite : public ::testing::TestWithParam<BoostProtocol> {};

TEST_P(ChaosSuite, SurvivesDropFaults) {
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_prob = 0.05;
  auto r = chaos_run(GetParam(), plan);
  EXPECT_TRUE(r.agreement) << protocol_name(GetParam());
  EXPECT_GE(r.decided_fraction(), 0.80) << protocol_name(GetParam());
  EXPECT_GT(r.stats.faults.dropped, 0u);
}

TEST_P(ChaosSuite, SurvivesDelayFaults) {
  FaultPlan plan;
  plan.seed = 12;
  plan.delay_prob = 0.25;
  plan.max_delay = 2;
  auto r = chaos_run(GetParam(), plan);
  EXPECT_TRUE(r.agreement) << protocol_name(GetParam());
  EXPECT_GE(r.decided_fraction(), 0.80) << protocol_name(GetParam());
  EXPECT_GT(r.stats.faults.delayed, 0u);
  // Bounded delay means delayed != lost: every deferred message that had
  // time left arrived.
  EXPECT_GT(r.stats.faults.late_delivered, 0u);
}

TEST_P(ChaosSuite, SurvivesDuplicationFaults) {
  FaultPlan plan;
  plan.seed = 13;
  plan.duplicate_prob = 0.2;
  auto r = chaos_run(GetParam(), plan);
  EXPECT_TRUE(r.agreement) << protocol_name(GetParam());
  // Duplication loses nothing; availability must match a fault-free run.
  EXPECT_GE(r.decided_fraction(), 0.95) << protocol_name(GetParam());
  EXPECT_GT(r.stats.faults.duplicated, 0u);
}

TEST_P(ChaosSuite, SurvivesCrashFaults) {
  FaultPlan plan;
  plan.seed = 14;
  // Crash-stop six parties at staggered rounds.
  for (PartyId p = 0; p < 6; ++p) {
    plan.crashes.push_back(CrashFault{p * 9 + 2, 3 + p * 2});
  }
  auto r = chaos_run(GetParam(), plan);
  EXPECT_TRUE(r.agreement) << protocol_name(GetParam());
  EXPECT_GT(r.crashed, 0u);
  EXPECT_GE(r.surviving_decided_fraction(), 0.80) << protocol_name(GetParam());
}

TEST_P(ChaosSuite, SurvivesPartitionFaults) {
  FaultPlan plan;
  plan.seed = 15;
  // Eight parties split off for the whole run: the majority side must still
  // reach agreement; the minority side may stay undecided but must never
  // decide a conflicting value.
  PartitionWindow w;
  w.from_round = 0;
  w.until_round = 1u << 20;
  for (PartyId p = 0; p < 8; ++p) w.group.push_back(p * 7 + 1);
  plan.partitions.push_back(w);
  auto r = chaos_run(GetParam(), plan);
  EXPECT_TRUE(r.agreement) << protocol_name(GetParam());
  EXPECT_GE(r.decided_fraction(), 0.70) << protocol_name(GetParam());
  EXPECT_GT(r.stats.faults.partitioned, 0u);
}

TEST_P(ChaosSuite, HealedPartitionRecovers) {
  FaultPlan plan;
  plan.seed = 18;
  // A transient cut across the front end that heals before the boost: the
  // boost phase must repair availability for the briefly-isolated side.
  PartitionWindow w;
  w.from_round = 4;
  w.until_round = 16;
  for (PartyId p = 0; p < 10; ++p) w.group.push_back(p * 5 + 2);
  plan.partitions.push_back(w);
  auto r = chaos_run(GetParam(), plan);
  EXPECT_TRUE(r.agreement) << protocol_name(GetParam());
  EXPECT_GE(r.decided_fraction(), 0.70) << protocol_name(GetParam());
}

TEST_P(ChaosSuite, SafetyUnderCombinedFaults) {
  FaultPlan plan;
  plan.seed = 16;
  plan.drop_prob = 0.03;
  plan.delay_prob = 0.15;
  plan.max_delay = 2;
  plan.duplicate_prob = 0.05;
  plan.crashes.push_back(CrashFault{5, 4});
  plan.crashes.push_back(CrashFault{23, 10});
  PartitionWindow w;
  w.from_round = 2;
  w.until_round = 5;
  for (PartyId p = 40; p < 46; ++p) w.group.push_back(p);
  plan.partitions.push_back(w);
  auto r = chaos_run(GetParam(), plan);
  EXPECT_TRUE(r.agreement) << protocol_name(GetParam());
  EXPECT_GE(r.surviving_decided_fraction(), 0.60) << protocol_name(GetParam());
}

TEST_P(ChaosSuite, ChaosRunsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 17;
  plan.drop_prob = 0.04;
  plan.delay_prob = 0.1;
  plan.max_delay = 2;
  plan.duplicate_prob = 0.05;
  auto a = chaos_run(GetParam(), plan);
  auto b = chaos_run(GetParam(), plan);
  EXPECT_EQ(a.stats, b.stats) << protocol_name(GetParam());
  EXPECT_EQ(a.stats.faults, b.stats.faults);
  EXPECT_EQ(a.decided, b.decided);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.rounds, b.rounds);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ChaosSuite, ::testing::ValuesIn(kAllProtocols),
                         [](const ::testing::TestParamInfo<BoostProtocol>& info) {
                           switch (info.param) {
                             case BoostProtocol::kPiBaOwf: return "PiBaOwf";
                             case BoostProtocol::kPiBaSnark: return "PiBaSnark";
                             case BoostProtocol::kNaive: return "Naive";
                             case BoostProtocol::kMultisig: return "Multisig";
                             case BoostProtocol::kSampling: return "Sampling";
                             case BoostProtocol::kStar: return "Star";
                           }
                           return "Unknown";
                         });

// A fault-free plan must reproduce the paper's model exactly: zero fault
// counters and full agreement/decision.
TEST(ChaosBaseline, EmptyPlanBehavesLikeNoPlan) {
  FaultPlan empty;
  BaRunConfig cfg;
  cfg.n = kN;
  cfg.beta = 0.1;
  cfg.seed = 7;
  cfg.protocol = BoostProtocol::kPiBaSnark;
  auto plain = run_ba(cfg);
  cfg.faults = empty;  // plan with no faults configured
  auto chaos = run_ba(cfg);
  EXPECT_EQ(plain.stats, chaos.stats);
  EXPECT_EQ(plain.decided, chaos.decided);
  EXPECT_EQ(chaos.stats.faults, FaultCounters{});
}

// Drop-rate sweep for the paper's protocol: safety at every point, and
// availability degrading monotonically-ish with loss (floor per rate).
TEST(ChaosSweep, PiBaSnarkDropSweepKeepsAgreement) {
  for (double rate : {0.0, 0.01, 0.05, 0.10}) {
    FaultPlan plan;
    plan.seed = 21;
    plan.drop_prob = rate;
    auto r = chaos_run(BoostProtocol::kPiBaSnark, plan);
    EXPECT_TRUE(r.agreement) << "drop=" << rate;
    EXPECT_GE(r.decided_fraction(), rate == 0.0 ? 1.0 : 0.75) << "drop=" << rate;
  }
}

}  // namespace
}  // namespace srds

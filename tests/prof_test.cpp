// Tests for the obs profiling layer (src/obs/prof.hpp): the lock-free
// record path under real concurrency, the tear-tolerant snapshot contract,
// scoped-timer enable/disable semantics, graceful perf_event absence, and
// the alloc-hook linkage model (this binary links the counting OBJECT
// library, so alloc_hooks_active() must be true here — obs_test asserts the
// stub side).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/alloc_hooks.hpp"
#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace srds::obs {
namespace {

/// Every test leaves the global registry the way it found it: disabled and
/// zeroed. (Tests in one binary run sequentially.)
struct ProfGuard {
  ~ProfGuard() {
    prof_set_enabled(false);
    prof_reset();
  }
};

TEST(ProfSites, NamesAreHierarchical) {
  for (std::size_t i = 0; i < kProfSiteCount; ++i) {
    const char* name = prof_site_name(static_cast<ProfSiteId>(i));
    ASSERT_NE(name, nullptr) << "site " << i;
    EXPECT_NE(std::string(name).find('/'), std::string::npos)
        << "site names are module/phase/site paths: " << name;
  }
  EXPECT_STREQ(prof_site_name(ProfSiteId::kSimRound), "sim/round");
}

TEST(ProfSites, RecordMathAndBuckets) {
  ProfGuard guard;
  prof_reset();
  ProfSite& site = prof_site(ProfSiteId::kCryptoSha256);
  site.record_ns(100);
  site.record_ns(300);
  site.record_ns(7);
  EXPECT_EQ(site.count(), 3u);
  EXPECT_EQ(site.total_ns(), 407u);
  EXPECT_EQ(site.min_ns(), 7u);
  EXPECT_EQ(site.max_ns(), 300u);
  // log2 buckets: 7 -> bucket 2 (2^2..2^3), 100 -> 6, 300 -> 8.
  EXPECT_EQ(site.bucket(2), 1u);
  EXPECT_EQ(site.bucket(6), 1u);
  EXPECT_EQ(site.bucket(8), 1u);

  site.reset();
  EXPECT_EQ(site.count(), 0u);
  EXPECT_EQ(site.total_ns(), 0u);
  EXPECT_EQ(site.min_ns(), 0u) << "min of an empty site reads as 0";
}

TEST(ProfScope, DisabledScopeRecordsNothingAndEnabledRecords) {
  ProfGuard guard;
  prof_reset();
  ASSERT_FALSE(prof_enabled()) << "profiling must default to off";
  {
    PROF_SCOPE(ProfSiteId::kSimDeliver);
  }
  EXPECT_EQ(prof_site(ProfSiteId::kSimDeliver).count(), 0u);

  prof_set_enabled(true);
  {
    PROF_SCOPE(ProfSiteId::kSimDeliver);
  }
  {
    PROF_SCOPE(ProfSiteId::kSimDeliver);
  }
  const ProfSite& site = prof_site(ProfSiteId::kSimDeliver);
  EXPECT_EQ(site.count(), 2u);
  EXPECT_GE(site.max_ns(), site.min_ns());
  EXPECT_GE(site.total_ns(), site.max_ns());
}

TEST(ProfSites, NamedSitesAreStableHandles) {
  ProfGuard guard;
  ProfSite& a = prof_site_named("test/dynamic/site");
  ProfSite& b = prof_site_named("test/dynamic/site");
  EXPECT_EQ(&a, &b) << "same name must return the same site";
  ProfSite& c = prof_site_named("test/dynamic/other");
  EXPECT_NE(&a, &c);
  a.record_ns(5);
  prof_reset();
  EXPECT_EQ(a.count(), 0u) << "prof_reset covers named sites";
}

// The core lock-free claim: concurrent recorders lose no events. Sharded
// relaxed fetch_adds must still sum exactly once the threads join (this is
// the test the chaos/TSan CI job runs under ThreadSanitizer).
TEST(ProfConcurrency, ConcurrentRecordersLoseNothing) {
  ProfGuard guard;
  prof_reset();
  ProfSite& site = prof_site(ProfSiteId::kSrdsVerify);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&site, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        site.record_ns(1 + ((i + static_cast<std::uint64_t>(t)) & 0xFF));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(site.count(), kThreads * kPerThread);
  // Totals are exact too: every recorded value was in [1, 256].
  EXPECT_GE(site.total_ns(), site.count());
  EXPECT_LE(site.total_ns(), site.count() * 256);
  EXPECT_GE(site.min_ns(), 1u);
  EXPECT_LE(site.max_ns(), 256u);
  // Bucket occupancy sums to the event count (each event lands in exactly
  // one log2 bucket).
  std::uint64_t bucket_sum = 0;
  for (std::size_t b = 0; b < ProfSite::kBuckets; ++b) bucket_sum += site.bucket(b);
  EXPECT_EQ(bucket_sum, site.count());
}

// Snapshots taken while recorders run may tear across fields; the contract
// is "never crash, never invent sites", not cross-field consistency.
TEST(ProfConcurrency, SnapshotUnderFireIsTearTolerant) {
  ProfGuard guard;
  prof_reset();
  prof_set_enabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      ProfSite& site = prof_site(ProfSiteId::kSrdsSign);
      site.record_ns(42);  // at least one event even if the readers win the race
      while (!stop.load(std::memory_order_relaxed)) site.record_ns(42);
    });
  }
  for (int i = 0; i < 50; ++i) {
    Json snap = prof_to_json();
    const Json* sites = snap.find("sites");
    ASSERT_NE(sites, nullptr);
    for (const Json& s : sites->items()) {
      ASSERT_NE(s.find("name"), nullptr);
      EXPECT_GT(s.find("count")->as_uint(), 0u)
          << "zero-count sites are skipped in the snapshot";
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();

  // Quiescent snapshot: mean is total/count and round-trips the parser.
  Json snap = prof_to_json();
  std::string err;
  Json back;
  ASSERT_TRUE(Json::parse(snap.dump(2), back, &err)) << err;
  const Json* sites = back.find("sites");
  ASSERT_NE(sites, nullptr);
  ASSERT_FALSE(sites->items().empty());
  const Json& s = sites->items().front();
  EXPECT_EQ(s.find("name")->as_string(), "srds/sign");
  EXPECT_DOUBLE_EQ(s.find("mean_ns")->as_double(0.0), 42.0);
}

TEST(ProfHw, PerfCountersDegradeGracefully) {
  // Containers routinely forbid perf_event_open; either outcome is valid,
  // but the API must never throw or crash and must report honestly.
  ProfHwSession session;
  session.start();
  // Burn a little work so an available session has something to count.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) sink += i * i;
  session.stop();
  ProfHwCounters c = session.read();
  EXPECT_EQ(c.available, session.available());
  if (session.available()) {
    EXPECT_GT(c.cycles + c.instructions, 0u);
    Json j = c.to_json();
    EXPECT_NE(j.find("cycles"), nullptr);
  } else {
    EXPECT_EQ(c.cycles, 0u);
    EXPECT_EQ(c.instructions, 0u);
  }
}

TEST(AllocHooks, ActiveInThisBinaryAndCounting) {
  // This test binary links the srds_alloc_hooks OBJECT library, so the
  // strong replacement operator new/delete must have won the link.
  ASSERT_TRUE(alloc_hooks_active());
  const std::uint64_t before = alloc_ops();
  {
    auto p = std::make_unique<std::uint64_t[]>(64);
    p[0] = 1;
  }
  EXPECT_GT(alloc_ops(), before) << "heap allocation must tick the counter";
}

TEST(ProfJson, DisabledProfilingStillSnapshotsRecordedSites) {
  ProfGuard guard;
  prof_reset();
  // prof_to_json reports whatever was recorded, independent of the enable
  // flag — the flag gates *recording*, not *reading*.
  prof_site(ProfSiteId::kSvcDaemonStep).record_ns(10);
  Json snap = prof_to_json();
  const Json* sites = snap.find("sites");
  ASSERT_NE(sites, nullptr);
  ASSERT_EQ(sites->items().size(), 1u);
  EXPECT_EQ(sites->items().front().find("name")->as_string(), "svc/daemon/step");
}

}  // namespace
}  // namespace srds::obs

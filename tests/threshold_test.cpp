// Tests for the threshold-signature stand-in and its contrast with SRDS
// (the §1.2 "identities needed to reconstruct" point).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/threshold_sig.hpp"

namespace srds {
namespace {

TEST(ThresholdSig, CombineAndVerify) {
  ThresholdSigScheme scheme(10, 3, 1);
  Bytes m = to_bytes("checkpoint");
  std::vector<PartialThresholdSig> partials;
  for (std::size_t i = 0; i < 4; ++i) partials.push_back(scheme.partial_sign(i, m));
  auto sig = scheme.combine(m, partials);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(scheme.verify(m, *sig));
}

TEST(ThresholdSig, TooFewPartialsFail) {
  ThresholdSigScheme scheme(10, 3, 2);
  Bytes m = to_bytes("m");
  std::vector<PartialThresholdSig> partials;
  for (std::size_t i = 0; i < 3; ++i) partials.push_back(scheme.partial_sign(i, m));
  EXPECT_FALSE(scheme.combine(m, partials).has_value());
}

TEST(ThresholdSig, DuplicateSignersDoNotCount) {
  ThresholdSigScheme scheme(10, 3, 3);
  Bytes m = to_bytes("m");
  std::vector<PartialThresholdSig> partials;
  for (int k = 0; k < 6; ++k) partials.push_back(scheme.partial_sign(2, m));
  EXPECT_FALSE(scheme.combine(m, partials).has_value());
}

TEST(ThresholdSig, InvalidPartialsFilteredOut) {
  ThresholdSigScheme scheme(10, 2, 4);
  Bytes m = to_bytes("m");
  std::vector<PartialThresholdSig> partials;
  for (std::size_t i = 0; i < 3; ++i) partials.push_back(scheme.partial_sign(i, m));
  PartialThresholdSig bogus{5, Digest::from(Rng(9).bytes(32))};
  partials.push_back(bogus);
  auto sig = scheme.combine(m, partials);
  ASSERT_TRUE(sig.has_value());  // the 3 valid ones suffice for t=2
  EXPECT_FALSE(scheme.verify_partial(m, bogus));
}

TEST(ThresholdSig, WrongMessageRejected) {
  ThresholdSigScheme scheme(8, 2, 5);
  Bytes m = to_bytes("m1");
  std::vector<PartialThresholdSig> partials;
  for (std::size_t i = 0; i < 3; ++i) partials.push_back(scheme.partial_sign(i, m));
  auto sig = scheme.combine(m, partials);
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(scheme.verify(to_bytes("m2"), *sig));
}

TEST(ThresholdSig, VerificationNeedsNoIdentitiesButCombiningDoes) {
  // The structural point: a combined signature is a bare 32-byte tag
  // (identity-free verification), but combine() must see signer indices to
  // establish distinctness — anonymity ends at the combiner. Erasing the
  // indices from the partials breaks combination.
  ThresholdSigScheme scheme(12, 4, 6);
  Bytes m = to_bytes("m");
  std::vector<PartialThresholdSig> partials;
  for (std::size_t i = 0; i < 5; ++i) partials.push_back(scheme.partial_sign(i, m));
  for (auto& p : partials) p.signer = 0;  // identity information destroyed
  EXPECT_FALSE(scheme.combine(m, partials).has_value());
}

TEST(ThresholdSig, SerializationRoundTrip) {
  ThresholdSigScheme scheme(6, 1, 7);
  auto p = scheme.partial_sign(4, to_bytes("m"));
  Bytes wire = p.serialize();
  PartialThresholdSig back;
  ASSERT_TRUE(PartialThresholdSig::deserialize(wire, back));
  EXPECT_EQ(back.signer, 4u);
  EXPECT_TRUE(scheme.verify_partial(to_bytes("m"), back));
}

TEST(ThresholdSig, RejectsBadParameters) {
  EXPECT_THROW(ThresholdSigScheme(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(ThresholdSigScheme(4, 4, 1), std::invalid_argument);
}

}  // namespace
}  // namespace srds

// Tests for the bench-diff core (tools/bench-diff/diff.hpp): flattening
// BENCH documents into keyed samples, metric direction classification, and
// the ratchet gate semantics (regression / improvement / stale / new).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "diff.hpp"
#include "obs/json.hpp"

namespace srds {
namespace {

using namespace srds::benchdiff;
using obs::Json;

/// A small two-row BENCH document in the Reporter's schema-v2 shape.
Json make_doc(std::uint64_t snark_bytes, std::uint64_t naive_bytes,
              double decided = 1.0) {
  Json doc = Json::object();
  doc.set("schema", 2);
  doc.set("bench", "table1");
  doc.set("git_describe", "cafef00d");  // volatile: must not become a sample
  doc.set("timestamp", "2026-01-01T00:00:00Z");
  Json series = Json::array();
  int x = 0;
  for (const char* proto : {"pi_ba/snark-srds", "naive-all-to-all"}) {
    Json m = Json::object();
    m.set("protocol", proto);
    m.set("max_comm_per_party_bytes",
          std::string(proto) == "naive-all-to-all" ? naive_bytes : snark_bytes);
    m.set("decided_fraction", decided);
    m.set("agreement", true);
    m.set("wall_ms", 123 + x);  // volatile: wall-clock never gates
    Json pp = Json::object();
    Json boost = Json::object();
    boost.set("max", std::string(proto) == "naive-all-to-all" ? naive_bytes
                                                              : snark_bytes);
    pp.set("boost", std::move(boost));
    m.set("per_party", std::move(pp));
    Json row = Json::object();
    row.set("x", x++);
    row.set("metrics", std::move(m));
    series.push_back(std::move(row));
  }
  doc.set("series", std::move(series));
  return doc;
}

TEST(BenchDiff, ClassifiesMetricDirections) {
  EXPECT_EQ(classify("max_comm_per_party_bytes"), Direction::kHigherWorse);
  EXPECT_EQ(classify("per_party.boost.max"), Direction::kHigherWorse);
  EXPECT_EQ(classify("phases.f_ct.msgs_sent"), Direction::kHigherWorse);
  EXPECT_EQ(classify("budgets.2.max_bits"), Direction::kHigherWorse);
  EXPECT_EQ(classify("boost_rounds"), Direction::kHigherWorse);
  EXPECT_EQ(classify("locality"), Direction::kHigherWorse);
  EXPECT_EQ(classify("decided_fraction"), Direction::kLowerWorse);
  EXPECT_EQ(classify("agreement"), Direction::kLowerWorse);
  EXPECT_EQ(classify("budgets.0.ok"), Direction::kLowerWorse);
  EXPECT_EQ(classify("per_party.run.argmax"), Direction::kInfo);
  EXPECT_EQ(classify("budgets.0.budget.c"), Direction::kInfo);
  EXPECT_EQ(classify("phases.boost.start"), Direction::kInfo);
}

TEST(BenchDiff, FlattenSkipsVolatileAndLabelsRows) {
  std::vector<Sample> samples;
  std::string err;
  ASSERT_TRUE(flatten(make_doc(100, 200), samples, &err)) << err;
  ASSERT_FALSE(samples.empty());
  bool saw_label = false;
  for (const Sample& s : samples) {
    EXPECT_EQ(s.bench, "table1");
    EXPECT_EQ(s.metric.find("wall"), std::string::npos);
    EXPECT_EQ(s.metric.find("timestamp"), std::string::npos);
    if (s.label == "pi_ba/snark-srds" && s.metric == "per_party.boost.max") {
      saw_label = true;
      EXPECT_EQ(s.value, 100.0);
    }
  }
  EXPECT_TRUE(saw_label);

  Json not_bench = Json::object();
  EXPECT_FALSE(flatten(not_bench, samples, &err));
  EXPECT_FALSE(err.empty());
}

TEST(BenchDiff, IdenticalRunsPass) {
  std::vector<Sample> base, fresh;
  ASSERT_TRUE(flatten(make_doc(100, 200), base));
  ASSERT_TRUE(flatten(make_doc(100, 200), fresh));
  DiffReport r = diff(base, fresh);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(r.stale, 0u);
  EXPECT_EQ(r.improvements, 0u);
  EXPECT_EQ(r.added, 0u);
  EXPECT_GT(r.compared, 0u);
  EXPECT_TRUE(r.deltas.empty());
}

TEST(BenchDiff, CostRegressionBeyondThresholdFails) {
  std::vector<Sample> base, fresh;
  ASSERT_TRUE(flatten(make_doc(100, 200), base));
  ASSERT_TRUE(flatten(make_doc(112, 200), fresh));  // snark +12%
  DiffReport r = diff(base, fresh);  // default threshold 10%
  EXPECT_TRUE(r.failed());
  // Both snark byte metrics regressed; naive's are untouched.
  EXPECT_EQ(r.regressions, 2u);
  for (const Delta& d : r.deltas) {
    EXPECT_EQ(d.kind, Delta::Kind::kRegression);
    EXPECT_EQ(d.sample.label, "pi_ba/snark-srds");
    EXPECT_NEAR(d.rel, 0.12, 1e-9);
  }

  // The same change under a looser threshold passes.
  DiffOptions loose;
  loose.threshold = 0.15;
  EXPECT_FALSE(diff(base, fresh, loose).failed());

  // A change within the default threshold passes too.
  std::vector<Sample> close;
  ASSERT_TRUE(flatten(make_doc(105, 200), close));
  EXPECT_FALSE(diff(base, close).failed());
}

TEST(BenchDiff, ImprovementIsReportedNotFailed) {
  std::vector<Sample> base, fresh;
  ASSERT_TRUE(flatten(make_doc(100, 200), base));
  ASSERT_TRUE(flatten(make_doc(100, 100), fresh));  // naive halved
  DiffReport r = diff(base, fresh);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.improvements, 2u);
  ASSERT_FALSE(r.deltas.empty());
  EXPECT_EQ(r.deltas[0].kind, Delta::Kind::kImprovement);
}

TEST(BenchDiff, QualityDropIsARegression) {
  std::vector<Sample> base, fresh;
  ASSERT_TRUE(flatten(make_doc(100, 200, /*decided=*/1.0), base));
  ASSERT_TRUE(flatten(make_doc(100, 200, /*decided=*/0.8), fresh));
  DiffReport r = diff(base, fresh);
  EXPECT_TRUE(r.failed());
  bool saw = false;
  for (const Delta& d : r.deltas) {
    if (d.sample.metric == "decided_fraction") {
      saw = true;
      EXPECT_EQ(d.kind, Delta::Kind::kRegression);
      EXPECT_EQ(d.direction, Direction::kLowerWorse);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(BenchDiff, StaleBaselineEntryFailsAndNewMetricDoesNot) {
  std::vector<Sample> base, fresh;
  ASSERT_TRUE(flatten(make_doc(100, 200), base));
  ASSERT_TRUE(flatten(make_doc(100, 200), fresh));

  // Fresh gains a metric the baseline lacks: reported, not failed.
  Sample extra = fresh.front();
  extra.metric = "brand_new_bytes";
  fresh.push_back(extra);
  DiffReport r1 = diff(base, fresh);
  EXPECT_FALSE(r1.failed());
  EXPECT_EQ(r1.added, 1u);

  // Baseline keeps a metric the fresh run no longer produces: the ratchet
  // fails until the baseline is refreshed.
  fresh.pop_back();
  fresh.pop_back();  // drop a real fresh sample -> its baseline entry is stale
  DiffReport r2 = diff(base, fresh);
  EXPECT_TRUE(r2.failed());
  EXPECT_EQ(r2.stale, 1u);
  EXPECT_EQ(r2.deltas[0].kind, Delta::Kind::kStale);
}

TEST(BenchDiff, ZeroBaselineHandledWithoutDivision) {
  Sample b{"bench", "", 1, "extra_bytes", 0};
  Sample f = b;
  f.value = 50;
  DiffReport r = diff({b}, {f});
  EXPECT_TRUE(r.failed());
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_TRUE(std::isinf(r.deltas[0].rel));

  // 0 -> 0 is no change.
  f.value = 0;
  EXPECT_FALSE(diff({b}, {f}).failed());
}

TEST(BenchDiff, ReportJsonAndVolatileStrip) {
  std::vector<Sample> base, fresh;
  ASSERT_TRUE(flatten(make_doc(100, 200), base));
  ASSERT_TRUE(flatten(make_doc(120, 200), fresh));
  DiffReport r = diff(base, fresh);
  Json j = r.to_json();
  ASSERT_TRUE(j.is_object());
  EXPECT_TRUE(j.find("failed")->as_bool());
  EXPECT_EQ(j.find("regressions")->as_uint(), r.regressions);
  ASSERT_TRUE(j.find("deltas")->is_array());
  const Json& first = j.find("deltas")->items().front();
  EXPECT_EQ(first.find("kind")->as_string(), "regression");
  EXPECT_EQ(first.find("metric")->as_string(), "max_comm_per_party_bytes");

  Json stripped = strip_volatile(make_doc(1, 2));
  EXPECT_EQ(stripped.find("timestamp"), nullptr);
  EXPECT_EQ(stripped.find("git_describe"), nullptr);
  ASSERT_NE(stripped.find("bench"), nullptr);
  // Round-trip through the parser: what --write-baseline persists reloads
  // into an identical document.
  Json back;
  ASSERT_TRUE(Json::parse(stripped.dump(2), back));
  EXPECT_EQ(back.dump(2), stripped.dump(2));
}

/// A one-row schema-3 document carrying the wall/alloc leaves the wall-mode
/// gate consumes.
Json make_wall_doc(double ns_per_op, double spread_rel, double allocs) {
  Json doc = Json::object();
  doc.set("schema", 3);
  doc.set("bench", "micro_x");
  Json m = Json::object();
  m.set("name", "BM_Thing");
  m.set("protocol", "BM_Thing");
  m.set("deterministic_bytes", 4096);
  Json wall = Json::object();
  wall.set("ns_per_op", ns_per_op);
  wall.set("spread_rel", spread_rel);
  wall.set("repeats", 3);
  m.set("wall", std::move(wall));
  m.set("allocs_per_op", allocs);
  Json row = Json::object();
  row.set("x", 0);
  row.set("metrics", std::move(m));
  Json series = Json::array();
  series.push_back(std::move(row));
  doc.set("series", std::move(series));
  return doc;
}

TEST(BenchDiffWall, WallLeavesOnlyFlattenInWallMode) {
  std::vector<Sample> plain, walled;
  ASSERT_TRUE(flatten(make_wall_doc(100, 0.05, 7), plain));
  for (const Sample& s : plain) {
    EXPECT_EQ(s.metric.find("wall"), std::string::npos) << s.metric;
    EXPECT_EQ(s.metric.find("allocs"), std::string::npos) << s.metric;
  }

  FlattenOptions opt;
  opt.include_wall = true;
  ASSERT_TRUE(flatten(make_wall_doc(100, 0.05, 7), walled, nullptr, opt));
  const Sample* wall = nullptr;
  const Sample* allocs = nullptr;
  for (const Sample& s : walled) {
    if (s.metric == "wall.ns_per_op") wall = &s;
    if (s.metric == "allocs_per_op") allocs = &s;
  }
  ASSERT_NE(wall, nullptr);
  EXPECT_TRUE(wall->wall);
  EXPECT_DOUBLE_EQ(wall->value, 100.0);
  EXPECT_DOUBLE_EQ(wall->spread_rel, 0.05);
  ASSERT_NE(allocs, nullptr);
  EXPECT_FALSE(allocs->wall) << "alloc counts gate with the exact threshold";
  EXPECT_DOUBLE_EQ(allocs->value, 7.0);
  EXPECT_EQ(classify("wall.ns_per_op"), Direction::kHigherWorse);
  EXPECT_EQ(classify("allocs_per_op"), Direction::kHigherWorse);
}

TEST(BenchDiffWall, NoiseWithinSpreadGuardPasses) {
  FlattenOptions opt;
  opt.include_wall = true;
  std::vector<Sample> base, fresh;
  // +25% median shift, but both runs measured a 10% spread: the effective
  // gate is spread_guard(3) * 0.10 = 30%, so this is machine noise.
  ASSERT_TRUE(flatten(make_wall_doc(100, 0.10, 7), base, nullptr, opt));
  ASSERT_TRUE(flatten(make_wall_doc(125, 0.10, 7), fresh, nullptr, opt));
  DiffReport r = diff(base, fresh);
  EXPECT_FALSE(r.failed());
  EXPECT_EQ(r.regressions, 0u);
}

TEST(BenchDiffWall, RealRegressionBeyondWallThresholdFails) {
  FlattenOptions opt;
  opt.include_wall = true;
  std::vector<Sample> base, fresh;
  // Tight spreads (1%): the gate bottoms out at wall_threshold (25%), and a
  // 2x slowdown is unambiguous.
  ASSERT_TRUE(flatten(make_wall_doc(100, 0.01, 7), base, nullptr, opt));
  ASSERT_TRUE(flatten(make_wall_doc(200, 0.01, 7), fresh, nullptr, opt));
  DiffReport r = diff(base, fresh);
  EXPECT_TRUE(r.failed());
  bool saw_wall = false;
  for (const Delta& d : r.deltas) {
    if (d.sample.metric == "wall.ns_per_op") {
      saw_wall = true;
      EXPECT_EQ(d.kind, Delta::Kind::kRegression);
      EXPECT_NEAR(d.rel, 1.0, 1e-9);
    }
  }
  EXPECT_TRUE(saw_wall);

  // The asymmetric case: only the *larger* spread of the two runs widens
  // the gate, so one noisy run is enough to avoid a false failure.
  std::vector<Sample> noisy_fresh;
  ASSERT_TRUE(flatten(make_wall_doc(200, 0.50, 7), noisy_fresh, nullptr, opt));
  EXPECT_FALSE(diff(base, noisy_fresh).failed());
}

TEST(BenchDiffWall, AllocRegressionFailsExactly) {
  FlattenOptions opt;
  opt.include_wall = true;
  std::vector<Sample> base, fresh;
  ASSERT_TRUE(flatten(make_wall_doc(100, 0.01, 8), base, nullptr, opt));
  ASSERT_TRUE(flatten(make_wall_doc(100, 0.01, 16), fresh, nullptr, opt));
  DiffReport r = diff(base, fresh);
  EXPECT_TRUE(r.failed());
  bool saw = false;
  for (const Delta& d : r.deltas) {
    if (d.sample.metric == "allocs_per_op") {
      saw = true;
      EXPECT_EQ(d.kind, Delta::Kind::kRegression);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(BenchDiffWall, StaleWallBaselineFails) {
  FlattenOptions opt;
  opt.include_wall = true;
  std::vector<Sample> base, fresh;
  ASSERT_TRUE(flatten(make_wall_doc(100, 0.05, 7), base, nullptr, opt));
  // Fresh run produced no wall/alloc leaves (e.g. run without --repeats):
  // the wall baseline entries go stale and the gate must fail rather than
  // silently stop ratcheting timing.
  ASSERT_TRUE(flatten(make_wall_doc(100, 0.05, 7), fresh));
  DiffReport r = diff(base, fresh);
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.stale, 2u);  // wall.ns_per_op and allocs_per_op
}

}  // namespace
}  // namespace srds

// srds-lint C2/C3 engine tests (locks.hpp): guarded_by discipline (unheld
// access with the unlocked call path, caller-held cleanliness, double-lock
// locally and through calls, whole-program lock-order cycles spanning
// translation units), the atomics audit (non-atomic RMW on [shared]
// fields, atomic load-store splits, unprotected shared state, the
// memory_order_relaxed policy with wildcard and stale entries), confined
// state crossing into the shard surface, the locks.toml manifest
// (sections, justifications, parse failures as findings, allow stopping
// the traversal), stale markers, suppressions, the census stats and the
// lock-order DOT export.
//
// Fixtures live in tests/lint_fixtures/ (lk_*.cpp) and are linted under
// *logical* src/ paths; expected line numbers are pinned to the fixture
// sources — renumbering there means renumbering here.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.hpp"
#include "lint.hpp"
#include "locks.hpp"

namespace srds::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path = std::string(SRDS_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::set<std::pair<std::string, std::size_t>> rule_hits(const std::vector<Finding>& fs,
                                                        const std::string& rule) {
  std::set<std::pair<std::string, std::size_t>> out;
  for (const Finding& f : fs) {
    if (!f.suppressed && f.rule == rule) out.insert({f.rule, f.line});
  }
  return out;
}

const Finding* find_at(const std::vector<Finding>& fs, const std::string& rule,
                       std::size_t line) {
  for (const Finding& f : fs) {
    if (f.rule == rule && f.line == line) return &f;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// C2: guarded_by discipline.
// ---------------------------------------------------------------------------

TEST(LintC2, UnguardedAccessReportedWithUnlockedPath) {
  const auto fs =
      lint_files({{"src/obs/lk_guarded.cpp", fixture("lk_guarded.cpp")}}, {});
  const std::set<std::pair<std::string, std::size_t>> expected = {{"C2", 20}};
  EXPECT_EQ(rule_hits(fs, "C2"), expected);
  const Finding* f = find_at(fs, "C2", 20);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("Reg::items_"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("guarded_by 'Reg::mu_'"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("Reg::reset -> Reg::clear_unlocked"), std::string::npos)
      << f->message;
}

TEST(LintC2, CallerHeldHelperIsClean) {
  // append_locked never takes the lock, but every path into it holds mu_:
  // the per-mutex traversal must not mark it unheld-enterable.
  const auto fs =
      lint_files({{"src/obs/lk_caller_held.cpp", fixture("lk_caller_held.cpp")}}, {});
  EXPECT_TRUE(rule_hits(fs, "C2").empty());
  EXPECT_TRUE(rule_hits(fs, "C3").empty());
}

TEST(LintC2, LocalDoubleLockReported) {
  const auto fs =
      lint_files({{"src/obs/lk_double_lock.cpp", fixture("lk_double_lock.cpp")}}, {});
  const std::set<std::pair<std::string, std::size_t>> expected = {{"C2", 10}, {"C2", 20}};
  EXPECT_EQ(rule_hits(fs, "C2"), expected);
  const Finding* f = find_at(fs, "C2", 10);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("Box::mu_"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("not recursive"), std::string::npos) << f->message;
}

TEST(LintC2, DoubleLockThroughCallCarriesHeldPath) {
  const auto fs =
      lint_files({{"src/obs/lk_double_lock.cpp", fixture("lk_double_lock.cpp")}}, {});
  const Finding* f = find_at(fs, "C2", 20);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("held along Box::outer -> Box::inner"), std::string::npos)
      << f->message;
}

TEST(LintC2, LockOrderCycleSpansTranslationUnits) {
  const auto fs = lint_files({{"src/obs/lk_order_a.cpp", fixture("lk_order_a.cpp")},
                              {"src/obs/lk_order_b.cpp", fixture("lk_order_b.cpp")}},
                             {});
  // Exactly one cycle report, anchored at its first edge's acquisition site.
  const std::set<std::pair<std::string, std::size_t>> expected = {{"C2", 11}};
  EXPECT_EQ(rule_hits(fs, "C2"), expected);
  const Finding* f = find_at(fs, "C2", 11);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("lock-order cycle: g_a -> g_b -> g_a"), std::string::npos)
      << f->message;
  // Both acquisition sites, with the BA edge's two-hop call path.
  EXPECT_NE(f->message.find("src/obs/lk_order_a.cpp:11"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("src/obs/lk_order_b.cpp:10"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("ba_path -> ba_step -> grab_a"), std::string::npos)
      << f->message;
}

TEST(LintC2, ConsistentOrderHasNoCycle) {
  // The AB half alone: one edge, no cycle, no double-lock.
  const auto fs =
      lint_files({{"src/obs/lk_order_a.cpp", fixture("lk_order_a.cpp")}}, {});
  EXPECT_TRUE(rule_hits(fs, "C2").empty());
}

TEST(LintC2, StaleGuardMarkersAreFindings) {
  const auto fs =
      lint_files({{"src/obs/lk_stale_guard.cpp", fixture("lk_stale_guard.cpp")}}, {});
  const std::set<std::pair<std::string, std::size_t>> expected = {{"C2", 12}, {"C2", 14}};
  EXPECT_EQ(rule_hits(fs, "C2"), expected);
  const Finding* unknown = find_at(fs, "C2", 12);
  ASSERT_NE(unknown, nullptr);
  EXPECT_NE(unknown->message.find("names no mutex member"), std::string::npos)
      << unknown->message;
  const Finding* unbound = find_at(fs, "C2", 14);
  ASSERT_NE(unbound, nullptr);
  EXPECT_NE(unbound->message.find("binds to no field declaration"), std::string::npos)
      << unbound->message;
}

TEST(LintC2, SuppressionWithJustificationApplies) {
  // The standard allow(RULE) suppression idiom covers C2 like every rule.
  std::string src = fixture("lk_guarded.cpp");
  const std::string anchor = "items_.clear();";
  const auto pos = src.find(anchor);
  ASSERT_NE(pos, std::string::npos);
  src.insert(pos + anchor.size(),
             "  // srds-lint: allow(C2): fixture exercises the suppression path");
  const auto fs = lint_files({{"src/obs/lk_guarded.cpp", src}}, {});
  EXPECT_TRUE(rule_hits(fs, "C2").empty());
  bool suppressed = false;
  for (const Finding& f : fs) {
    if (f.rule == "C2" && f.suppressed) suppressed = true;
  }
  EXPECT_TRUE(suppressed);
}

// ---------------------------------------------------------------------------
// C3: the atomics audit.
// ---------------------------------------------------------------------------

Config shared_cfg(const std::string& extra = {}) {
  Config cfg;
  cfg.locks_manifest =
      "[shared]\n"
      "fields = [\"Tally::hits_\", \"Tally::total_\", \"Tally::raw_\"]\n" +
      extra;
  cfg.locks_manifest_path = "tools/srds-lint/locks.toml";
  return cfg;
}

TEST(LintC3, NonAtomicRmwFlaggedPerSite) {
  const auto fs = lint_files({{"src/obs/lk_shared.cpp", fixture("lk_shared.cpp")}},
                             shared_cfg());
  // Two RMW sites on hits_, the load-store on total_, the bare decl of
  // raw_ — and nothing on the clean fetch_add in gain().
  const std::set<std::pair<std::string, std::size_t>> expected = {
      {"C3", 9}, {"C3", 10}, {"C3", 11}, {"C3", 18}};
  EXPECT_EQ(rule_hits(fs, "C3"), expected);
  const Finding* f = find_at(fs, "C3", 9);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("hits_ += ..."), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("Tally::hit"), std::string::npos) << f->message;
}

TEST(LintC3, AtomicLoadStoreSplitFlagged) {
  const auto fs = lint_files({{"src/obs/lk_shared.cpp", fixture("lk_shared.cpp")}},
                             shared_cfg());
  const Finding* f = find_at(fs, "C3", 11);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("two operations, not one RMW"), std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("fetch_add"), std::string::npos) << f->message;
}

TEST(LintC3, UnprotectedSharedFlaggedAtDeclaration) {
  const auto fs = lint_files({{"src/obs/lk_shared.cpp", fixture("lk_shared.cpp")}},
                             shared_cfg());
  const Finding* f = find_at(fs, "C3", 18);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("Tally::raw_"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("neither std::atomic nor guarded_by"), std::string::npos)
      << f->message;
}

TEST(LintC3, RelaxedOutsidePolicyFlagged) {
  const auto fs =
      lint_files({{"src/obs/lk_relaxed.cpp", fixture("lk_relaxed.cpp")}}, {});
  const std::set<std::pair<std::string, std::size_t>> expected = {{"C3", 7}, {"C3", 8}};
  EXPECT_EQ(rule_hits(fs, "C3"), expected);
  const Finding* f = find_at(fs, "C3", 7);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("memory_order_relaxed in 'Stat::bump'"), std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("[allow-relaxed]"), std::string::npos) << f->message;
}

TEST(LintC3, RelaxedWildcardSilencesAndCountsMatches) {
  Config cfg;
  cfg.locks_manifest = "[allow-relaxed]\n\"Stat::*\" = \"fixture statistics\"\n";
  LockStats stats;
  const auto fs = lint_files({{"src/obs/lk_relaxed.cpp", fixture("lk_relaxed.cpp")}},
                             cfg, nullptr, &stats);
  EXPECT_TRUE(rule_hits(fs, "C3").empty());
  EXPECT_EQ(stats.relaxed_allows, 2u);  // bump + read
}

TEST(LintC3, StaleRelaxedEntryIsAFinding) {
  Config cfg;
  cfg.locks_manifest =
      "[allow-relaxed]\n"
      "\"Stat::*\" = \"fixture statistics\"\n"
      "\"Gone::*\" = \"matches nothing\"\n";
  cfg.locks_manifest_path = "tools/srds-lint/locks.toml";
  const auto fs =
      lint_files({{"src/obs/lk_relaxed.cpp", fixture("lk_relaxed.cpp")}}, cfg);
  const Finding* f = find_at(fs, "C3", 0);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->file, cfg.locks_manifest_path);
  EXPECT_NE(f->message.find("'Gone::*' matches no memory_order_relaxed site"),
            std::string::npos)
      << f->message;
}

TEST(LintC3, ConfinedFieldReachableFromShardRootFlagged) {
  const auto fs =
      lint_files({{"src/obs/lk_confined.cpp", fixture("lk_confined.cpp")}}, {});
  const std::set<std::pair<std::string, std::size_t>> expected = {{"C3", 11}};
  EXPECT_EQ(rule_hits(fs, "C3"), expected);
  const Finding* f = find_at(fs, "C3", 11);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("confined to 'sim-loop'"), std::string::npos) << f->message;
  EXPECT_NE(
      f->message.find("call path: Worker::on_round -> Worker::relay -> Collector::absorb"),
      std::string::npos)
      << f->message;
}

TEST(LintC3, AllowOnIntermediateHopStopsTheTraversal) {
  // The allow names the hop, not the accessor: absorb must become
  // unreachable rather than merely skipped.
  Config cfg;
  cfg.locks_manifest = "[allow]\n\"Worker::relay\" = \"fixture: hop out of the surface\"\n";
  const auto fs =
      lint_files({{"src/obs/lk_confined.cpp", fixture("lk_confined.cpp")}}, cfg);
  EXPECT_TRUE(rule_hits(fs, "C3").empty());
}

// ---------------------------------------------------------------------------
// The locks.toml manifest.
// ---------------------------------------------------------------------------

TEST(LocksManifest, ParsesSectionsAndJustifications) {
  LocksManifest m;
  std::string error;
  ASSERT_TRUE(parse_locks_manifest("# comment\n"
                                   "[shared]\n"
                                   "fields = [\n"
                                   "  \"A::x_\",\n"
                                   "  \"B::y_\",\n"
                                   "]\n"
                                   "[allow-relaxed]\n"
                                   "\"A::*\" = \"statistics\"\n"
                                   "[allow]\n"
                                   "\"B::helper\" = \"daemon plane\"\n",
                                   m, error))
      << error;
  ASSERT_EQ(m.shared_fields.size(), 2u);
  EXPECT_EQ(m.shared_fields[0], "A::x_");
  ASSERT_EQ(m.relaxed_allows.size(), 1u);
  EXPECT_EQ(m.relaxed_allows[0].first, "A::*");
  EXPECT_EQ(m.relaxed_allows[0].second, "statistics");
  ASSERT_EQ(m.allows.size(), 1u);
  EXPECT_EQ(m.allows[0].first, "B::helper");
}

TEST(LocksManifest, UnqualifiedSharedFieldIsAParseError) {
  LocksManifest m;
  std::string error;
  EXPECT_FALSE(parse_locks_manifest("[shared]\nfields = [\"hits_\"]\n", m, error));
  EXPECT_NE(error.find("must be qualified"), std::string::npos) << error;
}

TEST(LocksManifest, MissingJustificationIsAParseError) {
  LocksManifest m;
  std::string error;
  EXPECT_FALSE(parse_locks_manifest("[allow-relaxed]\n\"A::*\" = \"\"\n", m, error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(LocksManifest, ParseFailureIsItselfAFinding) {
  Config cfg;
  cfg.locks_manifest = "[shared]\nfields = [\"hits_\"]\n";
  cfg.locks_manifest_path = "tools/srds-lint/locks.toml";
  const auto fs =
      lint_files({{"src/obs/lk_relaxed.cpp", fixture("lk_relaxed.cpp")}}, cfg);
  const Finding* f = nullptr;
  for (const Finding& g : fs) {
    if (g.rule == "C2" && g.file == cfg.locks_manifest_path) f = &g;
  }
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("bad locks manifest"), std::string::npos) << f->message;
}

// ---------------------------------------------------------------------------
// Census + DOT export.
// ---------------------------------------------------------------------------

TEST(LockStatsTest, CensusCountsEdgesCyclesAndAnnotations) {
  Config cfg;
  cfg.locks_manifest = "[allow-relaxed]\n\"Stat::*\" = \"fixture statistics\"\n";
  LockStats stats;
  const auto fs = lint_files({{"src/obs/lk_order_a.cpp", fixture("lk_order_a.cpp")},
                              {"src/obs/lk_order_b.cpp", fixture("lk_order_b.cpp")},
                              {"src/obs/lk_guarded.cpp", fixture("lk_guarded.cpp")},
                              {"src/obs/lk_relaxed.cpp", fixture("lk_relaxed.cpp")}},
                             cfg, nullptr, &stats);
  (void)fs;
  EXPECT_EQ(stats.annotated_fields, 1u);  // Reg::items_
  EXPECT_EQ(stats.lock_edges, 2u);        // g_a -> g_b and g_b -> g_a
  EXPECT_EQ(stats.order_cycles, 1u);
  EXPECT_EQ(stats.relaxed_allows, 2u);
}

TEST(LockOrderDot, CycleEdgesMarkedRedWithAcquisitionSites) {
  const CallGraph cg =
      build_call_graph({{"src/obs/lk_order_a.cpp", fixture("lk_order_a.cpp")},
                        {"src/obs/lk_order_b.cpp", fixture("lk_order_b.cpp")}});
  const std::string dot = lock_order_dot(cg, nullptr);
  EXPECT_NE(dot.find("g_a"), std::string::npos) << dot;
  EXPECT_NE(dot.find("g_b"), std::string::npos) << dot;
  EXPECT_NE(dot.find("->"), std::string::npos) << dot;
  EXPECT_NE(dot.find("red"), std::string::npos) << dot;
  EXPECT_NE(dot.find("lk_order_a.cpp:11"), std::string::npos) << dot;
}

TEST(LockOrderDot, AcyclicGraphHasNoRedEdges) {
  const CallGraph cg =
      build_call_graph({{"src/obs/lk_order_a.cpp", fixture("lk_order_a.cpp")}});
  const std::string dot = lock_order_dot(cg, nullptr);
  EXPECT_NE(dot.find("g_a"), std::string::npos) << dot;
  EXPECT_EQ(dot.find("red"), std::string::npos) << dot;
}

}  // namespace
}  // namespace srds::lint

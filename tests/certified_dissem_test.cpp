// Tests for the certified dissemination sub-protocol (π_ba step 6):
// self-certifying values, sparse certificate redundancy, forged-certificate
// resistance.
#include <gtest/gtest.h>

#include <memory>

#include "ba/certified_dissem.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/subproto.hpp"
#include "sim_helpers.hpp"

namespace srds {
namespace {

using testing::hosted;
using testing::make_subproto_sim;

/// Toy validator: σ is valid iff σ == SHA-256("cert" || value).
Bytes make_cert(const Bytes& value) {
  return sha256_tagged("cert", value).to_bytes();
}

bool toy_validate(BytesView value, BytesView sigma) {
  return Bytes(sigma.begin(), sigma.end()) ==
         sha256_tagged("cert", value).to_bytes();
}

std::unique_ptr<Simulator> cd_sim(std::shared_ptr<const CommTree> tree,
                                  const std::vector<bool>& corrupt, const Bytes& value,
                                  const Bytes& sigma, std::size_t redundancy,
                                  std::unique_ptr<Adversary> adv) {
  auto factory = [&](PartyId i) -> std::unique_ptr<SubProtocol> {
    const auto& sc = tree->supreme_committee();
    std::optional<Bytes> init;
    Bytes sig;
    if (std::find(sc.begin(), sc.end(), i) != sc.end()) {
      init = value;
      sig = sigma;
    }
    return std::make_unique<CertifiedDissemProto>(tree, i, init, sig, toy_validate,
                                                  redundancy);
  };
  return make_subproto_sim(tree->params().n, corrupt, factory, std::move(adv));
}

TEST(CertifiedDissem, EveryoneGetsValueAndCertificate) {
  const std::size_t n = 128;
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(n), 1);
  Bytes value = to_bytes("y=1|s=...");
  auto sim = cd_sim(tree, std::vector<bool>(n, false), value, make_cert(value), 3, nullptr);
  sim->run(64);
  std::size_t with_cert = 0;
  for (PartyId i = 0; i < n; ++i) {
    auto* cd = hosted<CertifiedDissemProto>(*sim, i);
    ASSERT_NE(cd, nullptr);
    ASSERT_TRUE(cd->value().has_value()) << "party " << i;
    EXPECT_EQ(*cd->value(), value);
    if (!cd->certificate().empty()) ++with_cert;
  }
  // Sparse redundancy: everyone votes correctly, and the overwhelming
  // majority also ends holding the certificate itself.
  EXPECT_GE(with_cert * 10, n * 9);
}

TEST(CertifiedDissem, HigherRedundancyMoreCertificates) {
  const std::size_t n = 128;
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(n), 2);
  Rng rng(3);
  std::vector<bool> corrupt(n, false);
  for (auto idx : rng.subset(n, n / 4)) corrupt[idx] = true;
  Bytes value = to_bytes("v");

  auto count_certs = [&](std::size_t redundancy) {
    auto sim = cd_sim(tree, corrupt, value, make_cert(value), redundancy, nullptr);
    sim->run(64);
    std::size_t certs = 0;
    for (PartyId i = 0; i < n; ++i) {
      if (corrupt[i]) continue;
      auto* cd = hosted<CertifiedDissemProto>(*sim, i);
      if (cd && !cd->certificate().empty()) ++certs;
    }
    return certs;
  };
  EXPECT_GE(count_certs(4), count_certs(1));
}

TEST(CertifiedDissem, BytesScaleWithRedundancy) {
  const std::size_t n = 128;
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(n), 4);
  Bytes value = to_bytes("v");
  Bytes big_cert = make_cert(value);

  auto bytes_at = [&](std::size_t redundancy) {
    auto sim = cd_sim(tree, std::vector<bool>(n, false), value, big_cert, redundancy,
                      nullptr);
    sim->run(64);
    return sim->stats().total_bytes();
  };
  // More redundancy = more certificate copies on the wire.
  EXPECT_GT(bytes_at(6), bytes_at(1));
}

/// Adversary pushing a forged certificate for a conflicting value.
class ForgedCertAdversary final : public Adversary {
 public:
  ForgedCertAdversary(std::shared_ptr<const CommTree> tree, std::vector<bool> corrupt)
      : tree_(std::move(tree)), corrupt_(std::move(corrupt)) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    std::vector<Message> out;
    const std::size_t h = tree_->height();
    if (round >= h) return out;
    Bytes evil = to_bytes("EVIL");
    Bytes fake = Rng(round).bytes(32);  // cannot match SHA-256("cert"||evil)
    std::size_t level = h - round;
    for (std::size_t id : tree_->level_nodes(level)) {
      const TreeNode& node = tree_->node(id);
      for (PartyId member : node.committee) {
        if (!corrupt_[member]) continue;
        if (level > 1) {
          for (std::size_t child : node.children) {
            Writer w;
            w.u8(0);
            w.u64(child);
            w.bytes(evil);
            w.bytes(fake);
            Bytes body = std::move(w).take();
            for (PartyId p : tree_->node(child).committee) {
              out.push_back(Message{member, p, tag_body(0, 0, body)});
            }
          }
        } else {
          Writer w;
          w.u8(1);
          w.u64(id);
          w.bytes(evil);
          w.bytes(fake);
          Bytes body = std::move(w).take();
          for (std::uint64_t v = node.vmin; v <= node.vmax; ++v) {
            out.push_back(Message{member, tree_->owner_of_virtual(v),
                                  tag_body(0, 0, body)});
          }
        }
      }
    }
    return out;
  }

 private:
  std::shared_ptr<const CommTree> tree_;
  std::vector<bool> corrupt_;
};

TEST(CertifiedDissem, ForgedCertificatesNeverAccepted) {
  const std::size_t n = 128;
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(n), 5);
  Rng rng(6);
  std::vector<bool> corrupt(n, false);
  for (auto idx : rng.subset(n, n / 5)) corrupt[idx] = true;
  Bytes value = to_bytes("truth");
  auto adv = std::make_unique<ForgedCertAdversary>(tree, corrupt);
  auto sim = cd_sim(tree, corrupt, value, make_cert(value), 3, std::move(adv));
  sim->run(64);
  for (PartyId i = 0; i < n; ++i) {
    if (corrupt[i]) continue;
    auto* cd = hosted<CertifiedDissemProto>(*sim, i);
    ASSERT_NE(cd, nullptr);
    if (!cd->certificate().empty()) {
      // Any certificate a party holds must validate for its value.
      ASSERT_TRUE(cd->value().has_value());
      EXPECT_TRUE(toy_validate(*cd->value(), cd->certificate())) << "party " << i;
      EXPECT_EQ(*cd->value(), value) << "party " << i;
    }
  }
}

TEST(CertifiedDissem, EmptyInitialCertificateStillDisseminatesValue) {
  const std::size_t n = 64;
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(n), 7);
  Bytes value = to_bytes("uncertified");
  auto sim = cd_sim(tree, std::vector<bool>(n, false), value, Bytes{}, 3, nullptr);
  sim->run(64);
  for (PartyId i = 0; i < n; ++i) {
    auto* cd = hosted<CertifiedDissemProto>(*sim, i);
    ASSERT_NE(cd, nullptr);
    ASSERT_TRUE(cd->value().has_value());
    EXPECT_EQ(*cd->value(), value);
    EXPECT_TRUE(cd->certificate().empty());
  }
}

}  // namespace
}  // namespace srds

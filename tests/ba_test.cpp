// Integration tests: full Byzantine-agreement executions of π_ba (Fig. 3)
// and the baseline boost protocols on the network simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "ba/runner.hpp"

namespace srds {
namespace {

BaRunConfig base_config(BoostProtocol p, std::size_t n, double beta, std::uint64_t seed) {
  BaRunConfig c;
  c.n = n;
  c.beta = beta;
  c.seed = seed;
  c.protocol = p;
  return c;
}

void expect_success(const BaRunResult& r, double min_decided, const char* label) {
  EXPECT_TRUE(r.agreement) << label;
  ASSERT_TRUE(r.value.has_value()) << label;
  EXPECT_TRUE(*r.value) << label << ": validity broken (all honest inputs were 1)";
  EXPECT_EQ(r.correct, r.decided) << label;
  EXPECT_GE(r.decided_fraction(), min_decided) << label;
}

// --- π_ba with both SRDS instantiations ---

class PiBaSweep : public ::testing::TestWithParam<std::tuple<BoostProtocol, std::size_t>> {};

TEST_P(PiBaSweep, NoCorruptionEveryoneDecides) {
  auto [proto, n] = GetParam();
  auto r = run_ba(base_config(proto, n, 0.0, 7));
  expect_success(r, 1.0, protocol_name(proto));
  EXPECT_EQ(r.decided, r.honest);
}

TEST_P(PiBaSweep, TwentyPercentSilentCorruption) {
  auto [proto, n] = GetParam();
  auto r = run_ba(base_config(proto, n, 0.20, 8));
  expect_success(r, 0.95, protocol_name(proto));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, PiBaSweep,
    ::testing::Combine(::testing::Values(BoostProtocol::kPiBaOwf,
                                         BoostProtocol::kPiBaSnark),
                       ::testing::Values(std::size_t{64}, std::size_t{128},
                                         std::size_t{256})));

TEST(PiBa, FaithfulWotsBackendEndToEnd) {
  // Full hash-based signatures at small n (the heavyweight faithful path).
  auto cfg = base_config(BoostProtocol::kPiBaSnark, 64, 0.15, 9);
  cfg.backend = BaseSigBackend::kWots;
  auto r = run_ba(cfg);
  expect_success(r, 0.9, "pi_ba/snark-wots");

  cfg = base_config(BoostProtocol::kPiBaOwf, 64, 0.15, 10);
  cfg.backend = BaseSigBackend::kWots;
  cfg.expected_signers = 32;
  r = run_ba(cfg);
  expect_success(r, 0.9, "pi_ba/owf-wots");
}

TEST(PiBa, InputZeroDecidesZero) {
  auto cfg = base_config(BoostProtocol::kPiBaSnark, 128, 0.1, 11);
  cfg.input = false;
  auto r = run_ba(cfg);
  EXPECT_TRUE(r.agreement);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_FALSE(*r.value);
}

TEST(PiBa, RoundsArePolylog) {
  auto r64 = run_ba(base_config(BoostProtocol::kPiBaSnark, 64, 0.0, 12));
  auto r512 = run_ba(base_config(BoostProtocol::kPiBaSnark, 512, 0.0, 13));
  // 8x the parties, rounds grow by far less than 2x (committee size + tree
  // height are polylog).
  EXPECT_LT(r512.rounds, r64.rounds * 2);
}

// --- Baselines: correctness ---

class BaselineSweep : public ::testing::TestWithParam<BoostProtocol> {};

TEST_P(BaselineSweep, DecidesCorrectlyUnderSilentCorruption) {
  auto proto = GetParam();
  auto r = run_ba(base_config(proto, 128, 0.2, 14));
  expect_success(r, 0.9, protocol_name(proto));
}

INSTANTIATE_TEST_SUITE_P(Protocols, BaselineSweep,
                         ::testing::Values(BoostProtocol::kNaive,
                                           BoostProtocol::kMultisig,
                                           BoostProtocol::kSampling,
                                           BoostProtocol::kStar));

// --- The headline claims, as testable cost shapes ---

TEST(CostShape, PiBaBeatsNaivePerParty) {
  const std::size_t n = 512;
  auto pi = run_ba(base_config(BoostProtocol::kPiBaSnark, n, 0.0, 15));
  auto naive = run_ba(base_config(BoostProtocol::kNaive, n, 0.0, 15));
  // Locality: π_ba talks to polylog-many peers, naive to everyone.
  EXPECT_LT(pi.stats.max_locality(), naive.stats.max_locality());
  EXPECT_EQ(naive.stats.max_locality(), n - 1);
}

TEST(CostShape, PiBaIsBalancedStarIsNot) {
  const std::size_t n = 256;
  auto pi = run_ba(base_config(BoostProtocol::kPiBaSnark, n, 0.0, 16));
  auto star = run_ba(base_config(BoostProtocol::kStar, n, 0.0, 16));
  // Star: max locality ~ n (committee members flood everyone); π_ba's
  // polylog committees keep every party's degree well below that (the
  // scaled constants are chunky at n=256; bench/fig_locality shows the
  // diverging slopes).
  EXPECT_EQ(star.stats.max_locality(), n - 1);
  EXPECT_LT(pi.stats.max_locality(), star.stats.max_locality());
}

TEST(CostShape, MultisigCertificateGrowsLinearly) {
  // BGT'13's per-party bytes grow ~linearly in n because every certificate
  // carries an n-bit signer bitmap; π_ba's certificate is constant-size.
  auto ms_small = run_ba(base_config(BoostProtocol::kMultisig, 128, 0.0, 17));
  auto ms_large = run_ba(base_config(BoostProtocol::kMultisig, 512, 0.0, 17));
  auto pi_small = run_ba(base_config(BoostProtocol::kPiBaSnark, 128, 0.0, 17));
  auto pi_large = run_ba(base_config(BoostProtocol::kPiBaSnark, 512, 0.0, 17));
  double ms_growth = static_cast<double>(ms_large.stats.max_bytes_total()) /
                     static_cast<double>(ms_small.stats.max_bytes_total());
  double pi_growth = static_cast<double>(pi_large.stats.max_bytes_total()) /
                     static_cast<double>(pi_small.stats.max_bytes_total());
  EXPECT_GT(ms_growth, pi_growth);
}

TEST(CostShape, SamplingLocalityIsSqrtish) {
  const std::size_t n = 1024;
  auto sampling = run_ba(base_config(BoostProtocol::kSampling, n, 0.0, 18));
  // Θ(√n log n) samples: well below n, well above polylog.
  EXPECT_LT(sampling.stats.max_locality(), n - 1);
  EXPECT_GT(sampling.stats.max_locality(),
            static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
}

}  // namespace
}  // namespace srds

// Additional adversarial executions for the committee sub-protocols:
// inconsistent coin-toss dealers, multi-value Dolev-Strong floods, and
// committee BA under equivocation.
#include <gtest/gtest.h>

#include <set>

#include "common/serial.hpp"
#include "consensus/coin_toss.hpp"
#include "consensus/committee_ba.hpp"
#include "consensus/dolev_strong.hpp"
#include "crypto/sha256.hpp"
#include "sim_helpers.hpp"

namespace srds {
namespace {

using testing::hosted;
using testing::make_subproto_sim;

struct Fixture {
  std::size_t n = 9;
  std::vector<PartyId> members{0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::size_t t = 2;
  SimSigRegistryPtr registry = std::make_shared<SimSigRegistry>(9, 1234);
};

/// Crafts valid Dolev-Strong bodies (mirrors the protocol's wire format).
Bytes ds_body(const Fixture& fx, const Bytes& domain, std::size_t sender_idx,
              const Bytes& value, const std::vector<PartyId>& signers) {
  Writer target;
  target.bytes(domain);
  target.u64(sender_idx);
  target.bytes(value);
  Digest digest = sha256_tagged("ds-sign", target.data());
  Writer w;
  w.bytes(value);
  w.u32(static_cast<std::uint32_t>(signers.size()));
  for (PartyId s : signers) {
    w.u64(s);
    w.raw(fx.registry->sign(s, digest.view()).view());
  }
  return std::move(w).take();
}

/// Floods the committee with MANY distinct signed values from a corrupt
/// sender (stress for the "track at most two extracted values" logic).
class MultiValueFlooder final : public Adversary {
 public:
  MultiValueFlooder(Fixture fx, Bytes domain) : fx_(std::move(fx)), domain_(std::move(domain)) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    if (round > fx_.t) return {};
    std::vector<Message> out;
    PartyId sender = fx_.members[0];
    for (int v = 0; v < 12; ++v) {
      Bytes value = to_bytes("flood-" + std::to_string(v) + "-" + std::to_string(round));
      Bytes body = ds_body(fx_, domain_, 0, value, {sender});
      for (PartyId to : fx_.members) {
        if (to != sender) out.push_back(Message{sender, to, tag_body(0, 0, body)});
      }
    }
    return out;
  }

 private:
  Fixture fx_;
  Bytes domain_;
};

TEST(DolevStrongAdversarial, MultiValueFloodYieldsConsistentBottom) {
  Fixture fx;
  Bytes domain = to_bytes("flood-test");
  std::vector<bool> corrupt(fx.n, false);
  corrupt[0] = true;
  auto factory = [&](PartyId i) -> std::unique_ptr<SubProtocol> {
    return std::make_unique<DolevStrongProto>(fx.registry, fx.members, 0, fx.t, domain, i,
                                              std::nullopt);
  };
  auto sim = make_subproto_sim(fx.n, corrupt,
                               factory, std::make_unique<MultiValueFlooder>(fx, domain));
  sim->run(16);
  for (PartyId i : fx.members) {
    if (corrupt[i]) continue;
    auto* ds = hosted<DolevStrongProto>(*sim, i);
    ASSERT_NE(ds, nullptr);
    EXPECT_FALSE(ds->output().has_value()) << "member " << i;
  }
}

/// A corrupt coin-toss dealer that distributes shares privately but then
/// broadcasts a commitment vector that matches only half of them, trying
/// to split the honest members' reconstruction.
class InconsistentDealer final : public Adversary {
 public:
  explicit InconsistentDealer(Fixture fx) : fx_(std::move(fx)), rng_(99) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    std::vector<Message> out;
    if (round != 0) return out;
    // Send garbage "private shares" to every member under the coin-toss
    // share framing (kind 1), from corrupt member 0.
    PartyId dealer = fx_.members[0];
    for (PartyId to : fx_.members) {
      if (to == dealer) continue;
      Writer w;
      w.u8(1);  // kKindShare
      w.u64(rng_.next() % 1000);
      w.raw(rng_.bytes(16));
      out.push_back(Message{dealer, to, tag_body(0, 0, std::move(w).take())});
    }
    return out;
  }

 private:
  Fixture fx_;
  Rng rng_;
};

TEST(CoinTossAdversarial, InconsistentDealerStillYieldsAgreedCoin) {
  Fixture fx;
  std::vector<bool> corrupt(fx.n, false);
  corrupt[0] = true;
  auto factory = [&](PartyId i) -> std::unique_ptr<SubProtocol> {
    return std::make_unique<CoinTossProto>(fx.registry, fx.members, fx.t,
                                           to_bytes("adv-coin"), i, 5000 + i);
  };
  auto sim = make_subproto_sim(fx.n, corrupt, factory,
                               std::make_unique<InconsistentDealer>(fx));
  sim->run(64);
  std::set<Bytes> coins;
  for (PartyId i : fx.members) {
    if (corrupt[i]) continue;
    auto* ct = hosted<CoinTossProto>(*sim, i);
    ASSERT_NE(ct, nullptr);
    ASSERT_TRUE(ct->output().has_value()) << "member " << i;
    coins.insert(*ct->output());
  }
  EXPECT_EQ(coins.size(), 1u) << "honest members derived different coins";
}

/// Committee BA where the corrupt members run honest-looking equivocation:
/// two different inputs broadcast to two halves via crafted DS round-0
/// messages (agreement must survive).
class BaEquivocator final : public Adversary {
 public:
  explicit BaEquivocator(Fixture fx) : fx_(std::move(fx)) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    if (round != 0) return {};
    std::vector<Message> out;
    PartyId sender = fx_.members[1];
    std::size_t sender_idx = 1;
    // The committee-BA frames DS bodies inside a parallel-instance wrapper
    // keyed by the sender index, with the domain derived from ("test-ba2",
    // sender_idx).
    Writer domain;
    domain.bytes(to_bytes("test-ba2"));
    domain.u64(sender_idx);
    Bytes dom = std::move(domain).take();
    for (std::size_t k = 0; k < fx_.members.size(); ++k) {
      PartyId to = fx_.members[k];
      if (to == sender) continue;
      Bytes value = (k % 2 == 0) ? Bytes{1} : Bytes{0};
      Bytes body = ds_body(fx_, dom, sender_idx, value, {sender});
      Writer wrapped;
      wrapped.u32(static_cast<std::uint32_t>(sender_idx));
      wrapped.raw(body);
      out.push_back(Message{sender, to, tag_body(0, 0, std::move(wrapped).take())});
    }
    return out;
  }

 private:
  Fixture fx_;
};

TEST(CommitteeBaAdversarial, EquivocatingMemberCannotSplitDecision) {
  Fixture fx;
  std::vector<bool> corrupt(fx.n, false);
  corrupt[1] = true;
  auto factory = [&](PartyId i) -> std::unique_ptr<SubProtocol> {
    return std::make_unique<CommitteeBaProto>(fx.registry, fx.members, fx.t,
                                              to_bytes("test-ba2"), i, Bytes{1});
  };
  auto sim = make_subproto_sim(fx.n, corrupt, factory,
                               std::make_unique<BaEquivocator>(fx));
  sim->run(32);
  std::set<Bytes> outputs;
  for (PartyId i : fx.members) {
    if (corrupt[i]) continue;
    auto* ba = hosted<CommitteeBaProto>(*sim, i);
    ASSERT_NE(ba, nullptr);
    ASSERT_TRUE(ba->output().has_value());
    outputs.insert(*ba->output());
  }
  EXPECT_EQ(outputs.size(), 1u);
  EXPECT_EQ(*outputs.begin(), Bytes{1});  // honest majority input wins
}

}  // namespace
}  // namespace srds

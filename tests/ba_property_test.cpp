// Property sweeps over π_ba's configuration space: seeds, corruption rates,
// tree committee factors, redundancy, and input values. Safety (agreement +
// validity among deciders) must hold at every point; liveness (decided
// fraction) may only degrade gracefully.
#include <gtest/gtest.h>

#include "ba/runner.hpp"

namespace srds {
namespace {

struct SweepPoint {
  std::uint64_t seed;
  double beta;
  bool input;
};

class PiBaProperty : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(PiBaProperty, SafetyInvariant) {
  auto [seed, beta, input] = GetParam();
  BaRunConfig cfg;
  cfg.n = 96;
  cfg.beta = beta;
  cfg.seed = seed;
  cfg.input = input;
  cfg.protocol = BoostProtocol::kPiBaSnark;
  auto r = run_ba(cfg);
  EXPECT_TRUE(r.agreement);
  if (r.value.has_value()) {
    EXPECT_EQ(*r.value, input);       // validity: all honest inputs agree
    EXPECT_EQ(r.correct, r.decided);  // no honest party decided wrongly
  }
  if (beta <= 0.25) {
    EXPECT_GE(r.decided_fraction(), 0.85) << "liveness collapsed";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PiBaProperty,
    ::testing::Values(SweepPoint{1, 0.0, true}, SweepPoint{2, 0.1, false},
                      SweepPoint{3, 0.2, true}, SweepPoint{4, 0.25, false},
                      SweepPoint{5, 0.3, true}, SweepPoint{6, 0.2, false},
                      SweepPoint{7, 0.15, true}, SweepPoint{8, 0.25, true}));

TEST(PiBaProperty, RedundancyNeverHurtsSafety) {
  for (std::size_t rho : {1u, 2u, 5u}) {
    BaRunConfig cfg;
    cfg.n = 96;
    cfg.beta = 0.2;
    cfg.seed = 50 + rho;
    cfg.certificate_redundancy = rho;
    auto r = run_ba(cfg);
    EXPECT_TRUE(r.agreement) << "rho=" << rho;
    ASSERT_TRUE(r.value.has_value()) << "rho=" << rho;
    EXPECT_TRUE(*r.value) << "rho=" << rho;
  }
}

TEST(PiBaProperty, BiggerCommitteesStillCorrect) {
  BaRunConfig cfg;
  cfg.n = 96;
  cfg.beta = 0.2;
  cfg.seed = 60;
  cfg.committee_factor = 2.0;
  auto r = run_ba(cfg);
  EXPECT_TRUE(r.agreement);
  ASSERT_TRUE(r.value.has_value());
  EXPECT_TRUE(*r.value);
  EXPECT_GE(r.decided_fraction(), 0.9);
}

TEST(PiBaProperty, OwfSortitionParameterSweep) {
  for (std::size_t lambda : {24u, 48u, 96u}) {
    BaRunConfig cfg;
    cfg.n = 96;
    cfg.beta = 0.15;
    cfg.seed = 70 + lambda;
    cfg.protocol = BoostProtocol::kPiBaOwf;
    cfg.expected_signers = lambda;
    auto r = run_ba(cfg);
    EXPECT_TRUE(r.agreement) << "lambda=" << lambda;
    ASSERT_TRUE(r.value.has_value()) << "lambda=" << lambda;
    EXPECT_TRUE(*r.value) << "lambda=" << lambda;
  }
}

}  // namespace
}  // namespace srds

// Tests for the interactive committee election (KSSV-lite, tree/election.hpp).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tree/election.hpp"

namespace srds {
namespace {

std::vector<bool> random_corrupt(std::size_t n, double beta, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> corrupt(n, false);
  for (auto idx : rng.subset(n, static_cast<std::size_t>(beta * n))) corrupt[idx] = true;
  return corrupt;
}

TEST(Election, ProducesCommitteeOfRequestedSize) {
  ElectionParams params;
  params.group_size = 12;
  params.merge_arity = 3;
  params.final_size = 10;
  auto r = run_committee_election(120, std::vector<bool>(120, false), params, 1);
  EXPECT_LE(r.supreme_committee.size(), 10u);
  EXPECT_GE(r.supreme_committee.size(), 6u);  // survivors of the last merge
  EXPECT_GT(r.levels, 1u);
  for (PartyId p : r.supreme_committee) EXPECT_LT(p, 120u);
  // No duplicates.
  auto c = r.supreme_committee;
  std::sort(c.begin(), c.end());
  EXPECT_TRUE(std::adjacent_find(c.begin(), c.end()) == c.end());
}

TEST(Election, DeterministicGivenSeedAndHonesty) {
  ElectionParams params;
  auto a = run_committee_election(96, std::vector<bool>(96, false), params, 7);
  auto b = run_committee_election(96, std::vector<bool>(96, false), params, 7);
  EXPECT_EQ(a.supreme_committee, b.supreme_committee);
  auto c = run_committee_election(96, std::vector<bool>(96, false), params, 8);
  EXPECT_NE(a.supreme_committee, c.supreme_committee);
}

TEST(Election, PreservesHonestFractionUnderRandomCorruption) {
  // Across trials, the elected committee's corrupt fraction should hover
  // around beta, not race to 1 — the sampling has no adversarial drift.
  const std::size_t n = 192;
  const double beta = 0.25;
  double worst = 0.0, sum = 0.0;
  const int trials = 6;
  for (int trial = 0; trial < trials; ++trial) {
    ElectionParams params;
    auto corrupt = random_corrupt(n, beta, 100 + trial);
    auto r = run_committee_election(n, corrupt, params, 200 + trial);
    worst = std::max(worst, r.committee_corrupt_fraction);
    sum += r.committee_corrupt_fraction;
  }
  EXPECT_LT(sum / trials, beta + 0.15);
  // Committees are ~16 strong, so one unlucky draw moves the fraction by
  // 1/16; allow the worst trial to touch one half but not exceed it.
  EXPECT_LE(worst, 0.5);
}

TEST(Election, PerPartyCostIsModest) {
  const std::size_t n = 256;
  ElectionParams params;
  auto r = run_committee_election(n, std::vector<bool>(n, false), params, 3);
  // Every party sits in at most one constant-size group per level, so its
  // locality stays far below n.
  EXPECT_LT(r.stats.max_locality(), n / 2);
  EXPECT_GT(r.rounds, 0u);
}

TEST(Election, SurvivesSilentCorruptGroups) {
  // Groups whose members are all silent still cannot block the election.
  const std::size_t n = 64;
  std::vector<bool> corrupt(n, false);
  for (std::size_t i = 0; i < 16; ++i) corrupt[i] = true;  // first group fully corrupt
  ElectionParams params;
  params.group_size = 16;
  auto r = run_committee_election(n, corrupt, params, 4);
  EXPECT_FALSE(r.supreme_committee.empty());
}

}  // namespace
}  // namespace srds

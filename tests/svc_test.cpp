// Tests for the long-lived BA service subsystem (src/svc): frame codec,
// session/backpressure semantics, the staggered instance pipeline, the
// daemon over both transports, and the Ledger-determinism guarantee of the
// loopback backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "obs/ledger.hpp"
#include "svc/frame.hpp"
#include "svc/service.hpp"
#include "svc/session.hpp"
#include "svc/tcp_transport.hpp"
#include "svc/transport.hpp"

namespace srds::svc {
namespace {

// --- Frame codec ------------------------------------------------------------

TEST(FrameCodec, RoundTripsEveryTypeAcrossArbitraryChunking) {
  std::vector<Frame> frames = {
      make_hello(),
      make_hello_ack(7, 8),
      make_submit(7, 1, true),
      make_submit(7, 2, false),
      make_decision(7, 1, true, true, 68, 42),
      make_reject(7, 3, 55),
      make_close(7),
      make_error(7, 9, "nope"),
  };
  Bytes wire;
  for (const Frame& f : frames) {
    Bytes one = encode_frame(f);
    wire.insert(wire.end(), one.begin(), one.end());
  }

  // Feed in pathological chunk sizes (1, 2, 3, ... bytes).
  FrameDecoder dec;
  std::size_t pos = 0, chunk = 1;
  while (pos < wire.size()) {
    const std::size_t len = std::min(chunk, wire.size() - pos);
    dec.feed(BytesView(wire.data() + pos, len));
    pos += len;
    chunk = chunk % 5 + 1;
  }

  std::vector<Frame> got;
  while (auto f = dec.next()) got.push_back(*f);
  ASSERT_EQ(got.size(), frames.size());
  EXPECT_EQ(dec.malformed(), 0u);
  EXPECT_FALSE(dec.poisoned());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(got[i].type, frames[i].type) << i;
    EXPECT_EQ(got[i].session, frames[i].session) << i;
    EXPECT_EQ(got[i].seq, frames[i].seq) << i;
    EXPECT_EQ(got[i].payload, frames[i].payload) << i;
  }

  DecisionPayload d;
  ASSERT_TRUE(parse_decision(got[4].payload, d));
  EXPECT_TRUE(d.value);
  EXPECT_TRUE(d.agreement);
  EXPECT_EQ(d.round_span, 68u);
  EXPECT_EQ(d.instance, 42u);
  std::uint32_t retry = 0;
  ASSERT_TRUE(parse_reject(got[5].payload, retry));
  EXPECT_EQ(retry, 55u);
  std::uint32_t window = 0;
  ASSERT_TRUE(parse_hello_ack(got[1].payload, window));
  EXPECT_EQ(window, 8u);
}

TEST(FrameCodec, UnknownTypeIsCountedAndStreamStaysInSync) {
  Bytes wire = encode_frame(make_submit(1, 1, true));
  wire[4] = 0xEE;  // corrupt the type byte (offset 4: right after the u32 len)
  Bytes good = encode_frame(make_submit(1, 2, false));
  wire.insert(wire.end(), good.begin(), good.end());

  FrameDecoder dec;
  dec.feed(wire);
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());  // the bad frame was skipped, not fatal
  EXPECT_EQ(f->seq, 2u);
  EXPECT_EQ(dec.malformed(), 1u);
  EXPECT_FALSE(dec.poisoned());
}

TEST(FrameCodec, TruncatedBodyIsCountedAndSkipped) {
  // Claim a 4-byte frame (shorter than the 17-byte header): in-sync skip.
  Writer w;
  w.u32(4);
  w.u8(1);
  w.u8(2);
  w.u8(3);
  w.u8(4);
  Bytes wire = std::move(w).take();
  Bytes good = encode_frame(make_hello());
  wire.insert(wire.end(), good.begin(), good.end());

  FrameDecoder dec;
  dec.feed(wire);
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kHello);
  EXPECT_EQ(dec.malformed(), 1u);
}

TEST(FrameCodec, OversizedLengthPoisonsTheStream) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(kMaxFrameLen + 1));
  FrameDecoder dec;
  dec.feed(std::move(w).take());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.poisoned());
  EXPECT_EQ(dec.malformed(), 1u);
  // Poisoned decoders never yield again, even fed a valid frame.
  dec.feed(encode_frame(make_hello()));
  EXPECT_FALSE(dec.next().has_value());
}

// --- SessionManager ---------------------------------------------------------

TEST(SessionManagerTest, WindowRejectionDoesNotConsumeTheSeq) {
  SessionManager sm(2, 8);
  const std::uint64_t s = sm.open();
  EXPECT_EQ(sm.submit(s, 1, 30).status, SubmitStatus::kAccepted);
  EXPECT_EQ(sm.submit(s, 2, 30).status, SubmitStatus::kAccepted);

  const SubmitResult full = sm.submit(s, 3, 30);
  EXPECT_EQ(full.status, SubmitStatus::kRejectedFull);
  EXPECT_EQ(full.retry_after, 30u);
  EXPECT_EQ(sm.rejected_full(), 1u);

  // Free a slot, then the SAME seq must be accepted.
  sm.track(s, 1, 100);
  DecisionRecord rec;
  rec.instance = 100;
  auto rel = sm.complete(100, rec);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel[0].seq, 1u);
  EXPECT_EQ(sm.submit(s, 3, 30).status, SubmitStatus::kAccepted);
}

TEST(SessionManagerTest, ReleasesInSubmissionOrderDespiteOutOfOrderCompletion) {
  SessionManager sm(4, 8);
  const std::uint64_t s = sm.open();
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_EQ(sm.submit(s, seq, 10).status, SubmitStatus::kAccepted);
    sm.track(s, seq, 100 + seq);
  }
  DecisionRecord rec;

  // Completing seq 2 and 3 first releases nothing (seq 1 still in flight).
  rec.instance = 102;
  EXPECT_TRUE(sm.complete(102, rec).empty());
  rec.instance = 103;
  EXPECT_TRUE(sm.complete(103, rec).empty());

  // Completing seq 1 unblocks all three, in seq order.
  rec.instance = 101;
  auto rel = sm.complete(101, rec);
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel[0].seq, 1u);
  EXPECT_EQ(rel[1].seq, 2u);
  EXPECT_EQ(rel[2].seq, 3u);
  EXPECT_EQ(rel[0].record.instance, 101u);
  EXPECT_EQ(rel[2].record.instance, 103u);
}

TEST(SessionManagerTest, DuplicatesReplayFromTheBoundedCache) {
  SessionManager sm(4, 2);  // cache only 2 decided records
  const std::uint64_t s = sm.open();
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_EQ(sm.submit(s, seq, 10).status, SubmitStatus::kAccepted);
    sm.track(s, seq, 100 + seq);
    DecisionRecord rec;
    rec.instance = 100 + seq;
    rec.value = (seq % 2) != 0;
    sm.complete(100 + seq, rec);
  }

  // seq 3 is cached; seq 1 was evicted (cache holds the latest 2).
  const SubmitResult dup3 = sm.submit(s, 3, 10);
  EXPECT_EQ(dup3.status, SubmitStatus::kDuplicateDecided);
  ASSERT_TRUE(dup3.cached.has_value());
  EXPECT_EQ(dup3.cached->instance, 103u);
  EXPECT_EQ(sm.submit(s, 1, 10).status, SubmitStatus::kDuplicateEvicted);
}

TEST(SessionManagerTest, BadSeqAndClosedSessionsAreRefused) {
  SessionManager sm(4, 8);
  const std::uint64_t s = sm.open();
  EXPECT_EQ(sm.submit(s, 2, 10).status, SubmitStatus::kBadSeq);  // must start at 1
  EXPECT_EQ(sm.submit(s + 9, 1, 10).status, SubmitStatus::kBadSession);
  sm.close(s);
  EXPECT_EQ(sm.submit(s, 1, 10).status, SubmitStatus::kBadSession);
}

// --- Router duplicate watermark --------------------------------------------

class RecordingHandler final : public FrameHandler {
 public:
  void on_hello(std::uint64_t, const Frame&) override { ++hellos; }
  void on_submit(std::uint64_t, const Frame& f) override { submits.push_back(f.seq); }
  void on_duplicate_submit(std::uint64_t, const Frame& f) override {
    duplicates.push_back(f.seq);
  }
  void on_close(std::uint64_t, const Frame&) override { ++closes; }

  int hellos = 0, closes = 0;
  std::vector<std::uint64_t> submits, duplicates;
};

TEST(FrameRouterTest, DuplicateSubmitsAreFlaggedAndUnforwardAllowsRetry) {
  RecordingHandler h;
  FrameRouter router(&h);
  router.on_bytes(1, encode_frame(make_submit(5, 1, true)));
  router.on_bytes(1, encode_frame(make_submit(5, 1, true)));  // resend
  EXPECT_EQ(h.submits, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(h.duplicates, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(router.duplicates_rejected(), 1u);

  // After unforward (a window rejection), the same seq goes through again.
  router.unforward(5, 1);
  router.on_bytes(1, encode_frame(make_submit(5, 1, true)));
  EXPECT_EQ(h.submits, (std::vector<std::uint64_t>{1, 1}));
}

TEST(FrameRouterTest, ServerBoundStreamRejectsClientBoundTypes) {
  RecordingHandler h;
  FrameRouter router(&h);
  router.on_bytes(1, encode_frame(make_decision(5, 1, true, true, 10, 1)));
  router.on_bytes(1, encode_frame(make_reject(5, 2, 4)));
  EXPECT_EQ(router.misdirected_frames(), 2u);
  EXPECT_TRUE(h.submits.empty());
}

// --- Daemon over the loopback transport ------------------------------------

struct ServiceRun {
  ServiceStats stats;
  std::vector<ServiceClient::ClientDecision> decisions;
  std::uint64_t client_rejects = 0;
  std::string ledger_json;
};

/// Drive one daemon + one client over the loopback transport until `ell`
/// decisions arrive at the client: submit-as-fast-as-allowed, honoring the
/// backpressure protocol (retry on reject). Void-returning (with an out
/// parameter) because gtest's ASSERT_* macros require it.
void run_loopback_service_into(ServiceRun& out, ServiceConfig cfg, std::size_t ell,
                               bool oversubscribe = false,
                               std::size_t max_rounds = 100000) {
  obs::Ledger ledger;
  cfg.ledger = &ledger;
  BaServiceDaemon daemon(std::move(cfg));
  LoopbackTransport transport;
  daemon.add_listener(transport.listener());

  ServiceClient client(transport.connect());
  client.open();

  out = ServiceRun{};
  std::size_t submitted = 0;
  std::size_t rounds = 0;
  bool overridden = false;
  while (out.decisions.size() < ell && rounds < max_rounds) {
    if (oversubscribe && client.opened() && !overridden) {
      // Optimistic client: run ahead of the granted window so the server's
      // reject-with-retry-after path actually fires.
      client.override_window(client.window() * 2 + 2);
      overridden = true;
    }
    client.retry();
    while (submitted < ell && client.can_submit()) {
      ASSERT_NE(client.submit(submitted % 3 == 0), 0u) << "submit refused";
      ++submitted;
    }
    daemon.poll();
    if (daemon.step()) ++rounds;
    client.poll();
    for (auto& d : client.take_decisions()) out.decisions.push_back(d);
  }
  EXPECT_LT(rounds, max_rounds) << "service did not converge";
  client.close();
  daemon.shutdown();
  out.stats = daemon.stats();
  out.client_rejects = client.rejects_received();
  out.ledger_json = ledger.to_json(true).dump();
}

ServiceConfig small_config() {
  ServiceConfig cfg;
  cfg.n = 64;
  cfg.beta = 0.1;
  cfg.seed = 7;
  cfg.session_window = 4;
  cfg.max_inflight = 8;
  return cfg;
}

TEST(ServiceDaemon, PipelinedDecisionsArriveInOrderAndAgree) {
  ServiceRun run;
  run_loopback_service_into(run, small_config(), 10, /*oversubscribe=*/true);

  ASSERT_EQ(run.decisions.size(), 10u);
  for (std::size_t i = 0; i < run.decisions.size(); ++i) {
    const auto& d = run.decisions[i];
    EXPECT_EQ(d.seq, i + 1) << "decisions must arrive in submission order";
    EXPECT_TRUE(d.decision.agreement) << "seq " << d.seq;
    EXPECT_EQ(d.decision.value, i % 3 == 0) << "seq " << d.seq;
  }
  EXPECT_EQ(run.stats.decisions, 10u);
  EXPECT_EQ(run.stats.agreed, 10u);
  EXPECT_EQ(run.stats.delivered, 10u);
  EXPECT_EQ(run.stats.sessions, 1u);

  // The session window (4) is smaller than the request count, so the
  // backpressure path must actually have fired — and been recovered from.
  EXPECT_GT(run.stats.rejected_backpressure, 0u);
  EXPECT_EQ(run.client_rejects, run.stats.rejected_backpressure);

  // Staggering: 10 instances in one window of rounds must beat 10 back-to-
  // back schedules (the whole point of the pipeline).
  EXPECT_GT(run.stats.rounds, 0u);
}

TEST(ServiceDaemon, PipeliningBeatsSequentialRoundCount) {
  ServiceConfig pipelined = small_config();
  ServiceRun pipe_run;
  run_loopback_service_into(pipe_run, pipelined, 8);

  ServiceConfig sequential = small_config();
  sequential.session_window = 1;  // one in flight: every request runs alone
  sequential.max_inflight = 1;
  ServiceRun seq_run;
  run_loopback_service_into(seq_run, sequential, 8);

  EXPECT_EQ(pipe_run.stats.decisions, 8u);
  EXPECT_EQ(seq_run.stats.decisions, 8u);
  // Not asserting a specific ratio here (that is the bench gate's job at
  // real sizes), just the direction.
  EXPECT_LT(pipe_run.stats.rounds, seq_run.stats.rounds);
}

TEST(ServiceDaemon, LoopbackRunsAreByteIdenticalInTheLedger) {
  ServiceRun a, b;
  run_loopback_service_into(a, small_config(), 6);
  run_loopback_service_into(b, small_config(), 6);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.rejected_backpressure, b.stats.rejected_backpressure);
  ASSERT_FALSE(a.ledger_json.empty());
  EXPECT_EQ(a.ledger_json, b.ledger_json);
}

TEST(ServiceDaemon, SurvivesAnEclipseCampaignWithAgreement) {
  ServiceConfig cfg = small_config();
  cfg.campaign = CampaignKind::kEclipse;
  cfg.corruption_rate = 0.15;
  ServiceRun run;
  run_loopback_service_into(run, cfg, 6);

  ASSERT_EQ(run.decisions.size(), 6u);
  for (const auto& d : run.decisions) {
    EXPECT_TRUE(d.decision.agreement) << "seq " << d.seq;
  }
  EXPECT_EQ(run.stats.agreed, 6u);
}

TEST(ServiceDaemon, ClosedSessionDropsQueuedSubmissions) {
  ServiceConfig cfg = small_config();
  cfg.max_inflight = 1;  // force the admission queue to hold work
  obs::Ledger ledger;
  cfg.ledger = &ledger;
  BaServiceDaemon daemon(std::move(cfg));
  LoopbackTransport transport;
  daemon.add_listener(transport.listener());

  ServiceClient client(transport.connect());
  client.open();
  daemon.poll();
  client.poll();
  ASSERT_TRUE(client.opened());
  ASSERT_NE(client.submit(true), 0u);
  ASSERT_NE(client.submit(false), 0u);  // queued behind max_inflight=1
  daemon.poll();
  ASSERT_TRUE(daemon.step());
  EXPECT_EQ(daemon.active_instances(), 1u);
  EXPECT_EQ(daemon.queued_admissions(), 1u);

  client.close();  // kClose: the queued submission must be dropped unminted
  daemon.poll();
  daemon.drain();
  daemon.shutdown();
  EXPECT_EQ(daemon.stats().accepted, 1u);
  EXPECT_EQ(daemon.stats().decisions, 1u);
}

// --- kStats snapshot --------------------------------------------------------

TEST(FrameCodec, StatsFramesRoundTrip) {
  FrameDecoder dec;
  Bytes wire = encode_frame(make_stats(42));
  Bytes reply = encode_frame(make_stats_reply(42, "{\"stats\":{}}"));
  wire.insert(wire.end(), reply.begin(), reply.end());
  dec.feed(BytesView(wire.data(), wire.size()));

  auto req = dec.next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->type, FrameType::kStats);
  EXPECT_EQ(req->session, 42u);
  EXPECT_TRUE(req->payload.empty());

  auto rep = dec.next();
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->type, FrameType::kStatsReply);
  std::string json;
  ASSERT_TRUE(parse_stats_reply(rep->payload, json));
  EXPECT_EQ(json, "{\"stats\":{}}");
  EXPECT_EQ(dec.malformed(), 0u);
}

TEST(ServiceDaemon, StatsSnapshotRoundTripsMidStream) {
  ServiceConfig cfg = small_config();
  obs::Ledger ledger;
  cfg.ledger = &ledger;
  BaServiceDaemon daemon(std::move(cfg));
  LoopbackTransport transport;
  daemon.add_listener(transport.listener());

  ServiceClient client(transport.connect());
  client.open();

  const std::size_t ell = 4;
  std::size_t submitted = 0, received = 0;
  bool stats_requested = false;
  for (std::size_t iter = 0; iter < 100000 && received < ell; ++iter) {
    client.retry();
    while (submitted < ell && client.can_submit()) {
      ASSERT_NE(client.submit(true), 0u);
      ++submitted;
    }
    // Request the snapshot mid-stream, once the session is live and the
    // pipeline has work in it.
    if (!stats_requested && client.opened() && submitted >= 1) {
      client.request_stats();
      stats_requested = true;
    }
    daemon.poll();
    daemon.step();
    client.poll();
    received += client.take_decisions().size();
  }
  ASSERT_EQ(received, ell);
  ASSERT_TRUE(stats_requested);
  ASSERT_GE(client.stats_received(), 1u) << "mid-stream snapshot never arrived";

  // Second snapshot after the last decision: totals are now deterministic.
  client.request_stats();
  daemon.poll();
  client.poll();
  ASSERT_GE(client.stats_received(), 2u);

  // The reply is one JSON document mirroring ServiceStats plus the Ledger
  // and pipeline gauges.
  obs::Json doc;
  std::string err;
  ASSERT_TRUE(obs::Json::parse(client.last_stats(), doc, &err)) << err;
  const obs::Json* stats = doc.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->find("decisions")->as_uint(), 1u);
  EXPECT_GE(stats->find("rounds")->as_uint(), 1u);
  ASSERT_NE(doc.find("current_round"), nullptr);
  ASSERT_NE(doc.find("sessions_opened"), nullptr);
  EXPECT_GE(doc.find("sessions_opened")->as_uint(), 1u);
  const obs::Json* lj = doc.find("ledger");
  ASSERT_NE(lj, nullptr) << "cfg.ledger was set: snapshot must carry totals";
  EXPECT_GT(lj->find("bytes_total")->as_uint(), 0u);

  client.close();
  daemon.shutdown();
}

// --- TCP transport ----------------------------------------------------------

TEST(TcpTransport, LoopbackSmoke) {
  ServiceConfig cfg = small_config();
  obs::Ledger ledger;
  cfg.ledger = &ledger;
  BaServiceDaemon daemon(std::move(cfg));
  TcpListener listener;  // ephemeral 127.0.0.1 port
  daemon.add_listener(&listener);

  ServiceClient client(connect_tcp(listener.port()));
  client.open();

  std::vector<ServiceClient::ClientDecision> decisions;
  std::size_t submitted = 0;
  for (std::size_t iter = 0; iter < 100000 && decisions.size() < 3; ++iter) {
    client.retry();
    while (submitted < 3 && client.can_submit()) {
      ASSERT_NE(client.submit(submitted % 2 == 0), 0u);
      ++submitted;
    }
    daemon.poll();
    daemon.step();
    client.poll();
    for (auto& d : client.take_decisions()) decisions.push_back(d);
  }

  ASSERT_EQ(decisions.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decisions[i].seq, i + 1);
    EXPECT_TRUE(decisions[i].decision.agreement);
    EXPECT_EQ(decisions[i].decision.value, i % 2 == 0);
  }
  client.close();
  daemon.shutdown();
  EXPECT_EQ(daemon.stats().decisions, 3u);
}

}  // namespace
}  // namespace srds::svc

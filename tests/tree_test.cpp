// Tests for the almost-everywhere communication tree (Defs. 2.3 / 3.4) and
// the f_ae-comm dissemination protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "common/rng.hpp"
#include "net/subproto.hpp"
#include "sim_helpers.hpp"
#include "tree/comm_tree.hpp"
#include "tree/dissemination.hpp"

namespace srds {
namespace {

using testing::hosted;
using testing::make_subproto_sim;

CommTree make_tree(std::size_t n, std::uint64_t seed = 1) {
  return CommTree(TreeParams::scaled(n), seed);
}

TEST(TreeParams, ScaledSane) {
  for (std::size_t n : {64u, 256u, 1024u, 4096u}) {
    auto p = TreeParams::scaled(n);
    EXPECT_GE(p.committee_size, 3u);
    EXPECT_GE(p.branching, 2u);
    EXPECT_GE(p.leaf_committee, p.repeats);
    EXPECT_GE(p.leaf_count(), 1u);
    EXPECT_EQ(p.virtual_count(), p.leaf_count() * p.leaf_committee);
    EXPECT_GE(p.virtual_count(), n * p.repeats);
  }
  EXPECT_THROW(TreeParams::scaled(4), std::invalid_argument);
}

TEST(CommTree, StructureInvariants) {
  CommTree tree = make_tree(256);
  const auto& p = tree.params();

  EXPECT_EQ(tree.leaf_count(), p.leaf_count());
  EXPECT_GE(tree.height(), 2u);

  // Leaves are nodes [0, L) at level 1 with contiguous slot ranges.
  for (std::size_t j = 0; j < tree.leaf_count(); ++j) {
    const auto& leaf = tree.node(tree.leaf_node(j));
    EXPECT_TRUE(leaf.is_leaf());
    EXPECT_EQ(leaf.level, 1u);
    EXPECT_EQ(leaf.vmin, j * p.leaf_committee);
    EXPECT_EQ(leaf.vmax, (j + 1) * p.leaf_committee - 1);
    EXPECT_EQ(leaf.committee.size(), p.leaf_committee);
  }

  // Every non-root node has a parent that lists it as a child; ranges nest.
  for (std::size_t id = 0; id < tree.node_count(); ++id) {
    const auto& node = tree.node(id);
    if (id == tree.root_id()) {
      EXPECT_EQ(node.parent, TreeNode::kNoParent);
      continue;
    }
    ASSERT_NE(node.parent, TreeNode::kNoParent);
    const auto& parent = tree.node(node.parent);
    EXPECT_EQ(parent.level, node.level + 1);
    bool listed = false;
    for (auto c : parent.children) listed |= (c == id);
    EXPECT_TRUE(listed);
    EXPECT_LE(parent.vmin, node.vmin);
    EXPECT_GE(parent.vmax, node.vmax);
  }

  // Children of one node cover disjoint contiguous increasing ranges — the
  // planar increasing-ID property the range checks of Fig. 3 rely on.
  for (std::size_t id = 0; id < tree.node_count(); ++id) {
    const auto& node = tree.node(id);
    for (std::size_t k = 1; k < node.children.size(); ++k) {
      EXPECT_EQ(tree.node(node.children[k]).vmin,
                tree.node(node.children[k - 1]).vmax + 1);
    }
    if (!node.children.empty()) {
      EXPECT_EQ(tree.node(node.children.front()).vmin, node.vmin);
      EXPECT_EQ(tree.node(node.children.back()).vmax, node.vmax);
    }
  }

  // Root covers all virtual ids.
  EXPECT_EQ(tree.root().vmin, 0u);
  EXPECT_EQ(tree.root().vmax, tree.virtual_count() - 1);
}

TEST(CommTree, VirtualIdentityMapping) {
  CommTree tree = make_tree(128);
  const auto& p = tree.params();

  // owner_of_virtual and virtuals_of are inverse.
  std::size_t total = 0;
  for (PartyId i = 0; i < p.n; ++i) {
    const auto& vids = tree.virtuals_of(i);
    EXPECT_GE(vids.size(), p.repeats);  // padding can only add appearances
    total += vids.size();
    for (auto v : vids) {
      EXPECT_EQ(tree.owner_of_virtual(v), i);
    }
  }
  EXPECT_EQ(total, tree.virtual_count());

  // Leaf committee = owners of its slots.
  for (std::size_t j = 0; j < tree.leaf_count(); ++j) {
    const auto& leaf = tree.node(j);
    for (std::size_t s = 0; s < p.leaf_committee; ++s) {
      EXPECT_EQ(leaf.committee[s], tree.owner_of_virtual(leaf.vmin + s));
    }
  }
}

TEST(CommTree, LevelsPartitionNodes) {
  CommTree tree = make_tree(512);
  std::set<std::size_t> seen;
  for (std::size_t lvl = 1; lvl <= tree.height(); ++lvl) {
    for (auto id : tree.level_nodes(lvl)) {
      EXPECT_EQ(tree.node(id).level, lvl);
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), tree.node_count());
  EXPECT_EQ(tree.level_nodes(tree.height()).size(), 1u);
}

TEST(CommTree, DeterministicInSeed) {
  CommTree a = make_tree(128, 7), b = make_tree(128, 7), c = make_tree(128, 8);
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.node(0).committee, b.node(0).committee);
  EXPECT_EQ(a.root().committee, b.root().committee);
  // Different seed gives (overwhelmingly) different assignment.
  EXPECT_NE(a.node(0).committee, c.node(0).committee);
}

TEST(CommTree, AnalyzeNoCorruption) {
  CommTree tree = make_tree(256);
  auto g = tree.analyze(std::vector<bool>(256, false));
  EXPECT_TRUE(g.root_good);
  EXPECT_DOUBLE_EQ(g.good_leaf_fraction, 1.0);
  auto connected = tree.connected_parties(g);
  for (bool c : connected) EXPECT_TRUE(c);
}

TEST(CommTree, AnalyzeFullCorruption) {
  CommTree tree = make_tree(256);
  auto g = tree.analyze(std::vector<bool>(256, true));
  EXPECT_FALSE(g.root_good);
  EXPECT_DOUBLE_EQ(g.good_leaf_fraction, 0.0);
}

TEST(CommTree, AnalyzeValidatesMaskSize) {
  CommTree tree = make_tree(64);
  EXPECT_THROW(tree.analyze(std::vector<bool>(65, false)), std::invalid_argument);
}

struct QualityCase {
  std::size_t n;
  double beta;
};

class TreeQuality : public ::testing::TestWithParam<QualityCase> {};

// Def. 2.3 properties (3) and (4) under assignment-independent corruption:
// root good and most leaves on good paths, with high probability. At scaled
// committee sizes the majority rule (what dissemination voting needs) holds
// robustly; the paper's one-third rule is checked at lower beta where the
// concentration margin exists (see DESIGN.md S5).
TEST_P(TreeQuality, RandomCorruptionKeepsGuarantees) {
  auto [n, beta] = GetParam();
  std::size_t trials = 12;
  std::size_t root_good_majority = 0;
  double min_fraction = 1.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    CommTree tree(TreeParams::scaled(n), 1000 + trial);
    Rng rng(5000 + trial);
    std::vector<bool> corrupt(n, false);
    for (auto idx : rng.subset(n, static_cast<std::size_t>(beta * n))) corrupt[idx] = true;
    auto g = tree.analyze(corrupt, GoodnessRule::kMajority);
    root_good_majority += g.root_good ? 1 : 0;
    min_fraction = std::min(min_fraction, g.good_leaf_fraction);
  }
  EXPECT_EQ(root_good_majority, trials) << "n=" << n << " beta=" << beta;
  // At n=64 the committees hold ~1/5 of all parties, so a single unlucky
  // corrupt draw moves the fraction a lot; the asymptotic bound bites from
  // a few hundred parties on (see bench/fig_tree_quality for the sweep).
  EXPECT_GE(min_fraction, n <= 64 ? 0.55 : 0.75) << "n=" << n << " beta=" << beta;
}

TEST_P(TreeQuality, OneThirdRuleHoldsAtLowBeta) {
  auto [n, beta] = GetParam();
  if (beta > 0.15) GTEST_SKIP() << "one-third margin needs low beta at scaled sizes";
  std::size_t trials = 12;
  std::size_t root_good = 0;
  double min_fraction = 1.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    CommTree tree(TreeParams::scaled(n), 2000 + trial);
    Rng rng(7000 + trial);
    std::vector<bool> corrupt(n, false);
    for (auto idx : rng.subset(n, static_cast<std::size_t>(beta * n))) corrupt[idx] = true;
    auto g = tree.analyze(corrupt, GoodnessRule::kOneThird);
    root_good += g.root_good ? 1 : 0;
    min_fraction = std::min(min_fraction, g.good_leaf_fraction);
  }
  EXPECT_GE(root_good, trials - 1) << "n=" << n << " beta=" << beta;
  EXPECT_GE(min_fraction, 0.6) << "n=" << n << " beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeQuality,
                         ::testing::Values(QualityCase{64, 0.10}, QualityCase{64, 0.20},
                                           QualityCase{256, 0.10}, QualityCase{256, 0.20},
                                           QualityCase{1024, 0.25}));

TEST(CommTree, ConnectedPartiesMajorityRule) {
  CommTree tree = make_tree(64);
  // With zero corruption all leaves are good, everyone is connected.
  auto g = tree.analyze(std::vector<bool>(64, false));
  auto conn = tree.connected_parties(g);
  EXPECT_EQ(std::count(conn.begin(), conn.end(), true), 64);
}

// --- Dissemination (f_ae-comm sends) ---

std::unique_ptr<Simulator> dissemination_sim(std::shared_ptr<const CommTree> tree,
                                             const std::vector<bool>& corrupt,
                                             const Bytes& value,
                                             std::unique_ptr<Adversary> adv) {
  auto factory = [&](PartyId i) -> std::unique_ptr<SubProtocol> {
    const auto& sc = tree->supreme_committee();
    std::optional<Bytes> init;
    if (std::find(sc.begin(), sc.end(), i) != sc.end()) init = value;
    return std::make_unique<DisseminationProto>(tree, i, init);
  };
  return make_subproto_sim(tree->params().n, corrupt, factory, std::move(adv));
}

TEST(Dissemination, AllHonestEveryoneReceives) {
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(128), 3);
  Bytes value = to_bytes("y=1,s=abc");
  std::vector<bool> corrupt(128, false);
  auto sim = dissemination_sim(tree, corrupt, value, nullptr);
  sim->run(64);
  for (PartyId i = 0; i < 128; ++i) {
    auto* d = hosted<DisseminationProto>(*sim, i);
    ASSERT_NE(d, nullptr);
    ASSERT_TRUE(d->output().has_value()) << "party " << i;
    EXPECT_EQ(*d->output(), value);
  }
}

TEST(Dissemination, PerPartyCommunicationIsSublinear) {
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(512), 4);
  Bytes value = to_bytes("v");
  std::vector<bool> corrupt(512, false);
  auto sim = dissemination_sim(tree, corrupt, value, nullptr);
  sim->run(64);
  // polylog-size committees => max locality well below the full graph's
  // degree (scaled constants are chunky at n=512; benches show the slope).
  EXPECT_LT(sim->stats().max_locality(), 512u * 3 / 4);
}

TEST(Dissemination, SilentCorruptionConnectedPartiesStillReceive) {
  const std::size_t n = 128;
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(n), 5);
  Rng rng(99);
  std::vector<bool> corrupt(n, false);
  for (auto idx : rng.subset(n, n / 5)) corrupt[idx] = true;
  auto g = tree->analyze(corrupt, GoodnessRule::kMajority);
  ASSERT_TRUE(g.root_good);
  auto connected = tree->connected_parties(g);

  Bytes value = to_bytes("agreed");
  auto sim = dissemination_sim(tree, corrupt, value, nullptr);
  sim->run(64);

  std::size_t correct = 0, honest = 0;
  for (PartyId i = 0; i < n; ++i) {
    if (corrupt[i]) continue;
    ++honest;
    auto* d = hosted<DisseminationProto>(*sim, i);
    ASSERT_NE(d, nullptr);
    if (d->output().has_value() && *d->output() == value) ++correct;
    // Parties connected through majority-good leaves must be correct.
    if (connected[i]) {
      ASSERT_TRUE(d->output().has_value()) << "connected party " << i;
      EXPECT_EQ(*d->output(), value) << "connected party " << i;
    }
  }
  EXPECT_GE(correct * 10, honest * 9);  // >= 90% of honest parties correct
}

/// Active attack: every corrupt party pushes a forged value along every
/// edge of the dissemination schedule it could legitimately use.
class EvilDisseminator final : public Adversary {
 public:
  EvilDisseminator(std::shared_ptr<const CommTree> tree, std::vector<bool> corrupt,
                   Bytes evil)
      : tree_(std::move(tree)), corrupt_(std::move(corrupt)), evil_(std::move(evil)) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    // Mirror DisseminationProto's schedule: at step k, members of level
    // h-k nodes forward; sends at step k arrive at k+1.
    std::vector<Message> out;
    const std::size_t h = tree_->height();
    if (round >= h) return out;
    std::size_t level = h - round;
    for (std::size_t id : tree_->level_nodes(level)) {
      const auto& node = tree_->node(id);
      for (PartyId member : node.committee) {
        if (!corrupt_[member]) continue;
        if (level > 1) {
          for (std::size_t child : node.children) {
            Writer w;
            w.u8(0);  // kStageCommittee
            w.u64(child);
            w.raw(evil_);
            Bytes body = std::move(w).take();
            for (PartyId p : tree_->node(child).committee) {
              out.push_back(Message{member, p, tag_body(0, 0, body)});
            }
          }
        } else {
          Writer w;
          w.u8(1);  // kStageParty
          w.u64(id);
          w.raw(evil_);
          Bytes body = std::move(w).take();
          for (std::uint64_t v = node.vmin; v <= node.vmax; ++v) {
            out.push_back(Message{member, tree_->owner_of_virtual(v), tag_body(0, 0, body)});
          }
        }
      }
    }
    return out;
  }

 private:
  std::shared_ptr<const CommTree> tree_;
  std::vector<bool> corrupt_;
  Bytes evil_;
};

TEST(Dissemination, ActiveAttackCannotFoolConnectedParties) {
  const std::size_t n = 128;
  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(n), 6);
  Rng rng(123);
  std::vector<bool> corrupt(n, false);
  for (auto idx : rng.subset(n, n / 5)) corrupt[idx] = true;
  auto g = tree->analyze(corrupt, GoodnessRule::kMajority);
  ASSERT_TRUE(g.root_good);
  auto connected = tree->connected_parties(g);

  Bytes value = to_bytes("truth");
  auto adv = std::make_unique<EvilDisseminator>(tree, corrupt, to_bytes("FORGERY"));
  auto sim = dissemination_sim(tree, corrupt, value, std::move(adv));
  sim->run(64);

  for (PartyId i = 0; i < n; ++i) {
    if (corrupt[i] || !connected[i]) continue;
    auto* d = hosted<DisseminationProto>(*sim, i);
    ASSERT_NE(d, nullptr);
    ASSERT_TRUE(d->output().has_value()) << "party " << i;
    EXPECT_EQ(*d->output(), value) << "party " << i;
  }
}

}  // namespace
}  // namespace srds

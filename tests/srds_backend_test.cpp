// Backend-parameterized SRDS property tests: every behavioural property of
// the schemes must hold identically for the faithful WOTS backend and the
// compact bench backend (TEST_P over both).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"

namespace srds {
namespace {

class BackendSweep : public ::testing::TestWithParam<BaseSigBackend> {
 protected:
  std::unique_ptr<OwfSrds> owf(std::size_t n, std::uint64_t seed) {
    OwfSrdsParams p;
    p.n_signers = n;
    p.expected_signers = 24;
    p.backend = GetParam();
    auto s = std::make_unique<OwfSrds>(p, seed);
    for (std::size_t i = 0; i < n; ++i) s->keygen(i);
    s->finalize_keys();
    return s;
  }

  std::unique_ptr<SnarkSrds> snark(std::size_t n, std::uint64_t seed) {
    SnarkSrdsParams p;
    p.n_signers = n;
    p.backend = GetParam();
    auto s = std::make_unique<SnarkSrds>(p, seed);
    for (std::size_t i = 0; i < n; ++i) s->keygen(i);
    s->finalize_keys();
    return s;
  }

  static std::vector<Bytes> sign_all(SrdsScheme& scheme, BytesView m) {
    std::vector<Bytes> sigs;
    for (std::size_t i = 0; i < scheme.signer_count(); ++i) {
      Bytes s = scheme.sign(i, m);
      if (!s.empty()) sigs.push_back(std::move(s));
    }
    return sigs;
  }
};

TEST_P(BackendSweep, OwfRoundTrip) {
  auto scheme = owf(120, 1);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  ASSERT_GE(sigs.size(), scheme->threshold());
  Bytes agg = scheme->aggregate(m, sigs);
  EXPECT_TRUE(scheme->verify(m, agg));
  EXPECT_FALSE(scheme->verify(to_bytes("other"), agg));
  EXPECT_EQ(scheme->base_count(agg), sigs.size());
}

TEST_P(BackendSweep, OwfTamperedAggregateRejected) {
  auto scheme = owf(120, 2);
  Bytes m = to_bytes("m");
  Bytes agg = scheme->aggregate(m, sign_all(*scheme, m));
  ASSERT_FALSE(agg.empty());
  Bytes bad = agg;
  bad[bad.size() / 2] ^= 0x20;
  EXPECT_FALSE(scheme->verify(m, bad));
}

TEST_P(BackendSweep, OwfLosersStillCannotSign) {
  auto scheme = owf(120, 3);
  Bytes m = to_bytes("m");
  for (std::size_t i = 0; i < 120; ++i) {
    EXPECT_EQ(scheme->sign(i, m).empty(), !scheme->has_signing_key(i));
  }
}

TEST_P(BackendSweep, SnarkRoundTrip) {
  auto scheme = snark(60, 4);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  ASSERT_EQ(sigs.size(), 60u);
  Bytes agg = scheme->aggregate(m, sigs);
  EXPECT_TRUE(scheme->verify(m, agg));
  EXPECT_EQ(scheme->base_count(agg), 60u);
  EXPECT_LT(agg.size(), 256u);  // Õ(1) regardless of backend
}

TEST_P(BackendSweep, SnarkTreeAggregationAndDedup) {
  auto scheme = snark(48, 5);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  std::vector<Bytes> groups;
  for (std::size_t g = 0; g < 4; ++g) {
    std::vector<Bytes> part(sigs.begin() + g * 12, sigs.begin() + (g + 1) * 12);
    // Inject duplicates into each batch.
    part.push_back(part.front());
    groups.push_back(scheme->aggregate(m, part));
    EXPECT_EQ(scheme->base_count(groups.back()), 12u);
  }
  Bytes root = scheme->aggregate(m, groups);
  EXPECT_TRUE(scheme->verify(m, root));
  EXPECT_EQ(scheme->base_count(root), 48u);
}

TEST_P(BackendSweep, SnarkBelowThresholdRejected) {
  auto scheme = snark(64, 6);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  sigs.resize(scheme->threshold() - 1);
  Bytes agg = scheme->aggregate(m, sigs);
  ASSERT_FALSE(agg.empty());
  EXPECT_FALSE(scheme->verify(m, agg));
}

TEST_P(BackendSweep, GarbageBlobsNeverParse) {
  auto owf_scheme = owf(60, 7);
  auto snark_scheme = snark(60, 8);
  Rng rng(9);
  Bytes m = to_bytes("m");
  for (int trial = 0; trial < 30; ++trial) {
    Bytes junk = rng.bytes(1 + rng.below(300));
    EXPECT_FALSE(owf_scheme->verify(m, junk));
    EXPECT_FALSE(snark_scheme->verify(m, junk));
    EXPECT_TRUE(owf_scheme->aggregate1(m, {junk}).empty());
    EXPECT_TRUE(snark_scheme->aggregate1(m, {junk}).empty());
  }
}

TEST_P(BackendSweep, Aggregate1DecompositionMatchesAggregate) {
  auto scheme = snark(40, 10);
  Bytes m = to_bytes("m");
  auto sigs = sign_all(*scheme, m);
  sigs.push_back(Rng(11).bytes(64));  // noise that aggregate1 must drop
  auto filtered = scheme->aggregate1(m, sigs);
  Bytes via_decomposition = scheme->aggregate2(m, filtered);
  Bytes direct = scheme->aggregate(m, sigs);
  EXPECT_EQ(via_decomposition, direct);
  EXPECT_TRUE(scheme->verify(m, direct));
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendSweep,
                         ::testing::Values(BaseSigBackend::kWots,
                                           BaseSigBackend::kCompact),
                         [](const auto& info) {
                           return info.param == BaseSigBackend::kWots ? "wots"
                                                                      : "compact";
                         });

}  // namespace
}  // namespace srds

#include "crypto/merkle.hpp"

#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/sha256.hpp"
#include "obs/prof.hpp"

namespace srds {

namespace {
Digest odd_pad(const Digest& d) { return sha256_tagged("merkle-odd", d.view()); }
}  // namespace

Bytes MerklePath::serialize() const {
  Writer w;
  w.u64(leaf_index);
  w.u32(static_cast<std::uint32_t>(siblings.size()));
  for (const auto& s : siblings) w.raw(s.view());
  return std::move(w).take();
}

bool MerklePath::deserialize(BytesView data, MerklePath& out) {
  Reader r(data);
  out.leaf_index = r.u64();
  std::uint32_t n = r.u32();
  if (n > 64) return false;  // a tree deeper than 2^64 leaves is malformed
  out.siblings.clear();
  out.siblings.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Bytes raw = r.raw(32);
    if (!r.ok()) return false;
    out.siblings.push_back(Digest::from(raw));
  }
  return r.done();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) : leaf_count_(leaves.size()) {
  PROF_SCOPE(obs::ProfSiteId::kCryptoMerkleBuild);
  if (leaves.empty()) throw std::invalid_argument("MerkleTree: needs >= 1 leaf");
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& cur = levels_.back();
    std::vector<Digest> next;
    next.reserve((cur.size() + 1) / 2);
    for (std::size_t i = 0; i < cur.size(); i += 2) {
      if (i + 1 < cur.size()) {
        next.push_back(sha256_pair(cur[i], cur[i + 1]));
      } else {
        next.push_back(sha256_pair(cur[i], odd_pad(cur[i])));
      }
    }
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerklePath MerkleTree::path(std::uint64_t leaf_index) const {
  if (leaf_index >= leaf_count_) throw std::out_of_range("MerkleTree::path: bad index");
  MerklePath p;
  p.leaf_index = leaf_index;
  std::size_t idx = static_cast<std::size_t>(leaf_index);
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& cur = levels_[lvl];
    std::size_t sib = (idx % 2 == 0) ? idx + 1 : idx - 1;
    if (sib < cur.size()) {
      p.siblings.push_back(cur[sib]);
    } else {
      p.siblings.push_back(odd_pad(cur[idx]));
    }
    idx /= 2;
  }
  return p;
}

bool MerkleTree::verify(const Digest& root, const Digest& leaf, const MerklePath& path,
                        std::size_t leaf_count) {
  PROF_SCOPE(obs::ProfSiteId::kCryptoMerkleVerify);
  if (leaf_count == 0 || path.leaf_index >= leaf_count) return false;
  // Depth check: path length must match the tree height for this leaf count.
  std::size_t expect_depth = 0;
  for (std::size_t w = leaf_count; w > 1; w = (w + 1) / 2) ++expect_depth;
  if (path.siblings.size() != expect_depth) return false;

  Digest cur = leaf;
  std::size_t idx = static_cast<std::size_t>(path.leaf_index);
  for (const auto& sib : path.siblings) {
    cur = (idx % 2 == 0) ? sha256_pair(cur, sib) : sha256_pair(sib, cur);
    idx /= 2;
  }
  return cur == root;
}

Digest merkle_root(const std::vector<Bytes>& leaves) {
  std::vector<Digest> hashed;
  hashed.reserve(leaves.size());
  for (const auto& l : leaves) hashed.push_back(sha256(l));
  return MerkleTree(std::move(hashed)).root();
}

}  // namespace srds

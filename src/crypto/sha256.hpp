// SHA-256 (FIPS 180-4), implemented from scratch — this project has no
// external crypto dependencies. Serves as the collision-resistant hash (CRH)
// assumed by the SNARK-based SRDS construction, and as the base primitive for
// HMAC, the PRF/PRG, Merkle trees and Lamport signatures.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  Sha256& update(BytesView data);
  Sha256& update(const char* s);  // convenience for domain-separation tags

  /// Finalize and return the digest. The context must not be reused after.
  Digest finish();

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot SHA-256.
Digest sha256(BytesView data);

/// Domain-separated hash: SHA-256(tag-length || tag || data).
Digest sha256_tagged(const char* tag, BytesView data);

/// Hash of the concatenation of two digests (Merkle interior node style).
Digest sha256_pair(const Digest& a, const Digest& b);

}  // namespace srds

#include "crypto/commit.hpp"

#include "crypto/sha256.hpp"

namespace srds {

Commitment commit(BytesView message, BytesView r) {
  Sha256 ctx;
  ctx.update("srds-commit");
  std::uint8_t rlen = static_cast<std::uint8_t>(r.size());
  ctx.update(BytesView{&rlen, 1});
  ctx.update(r);
  ctx.update(message);
  return Commitment{ctx.finish()};
}

bool commit_open(const Commitment& c, BytesView message, BytesView r) {
  return commit(message, r) == c;
}

}  // namespace srds

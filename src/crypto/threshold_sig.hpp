// Simulated (t, n)-threshold signatures — the closest existing relative the
// paper contrasts SRDS against (§1.2): verification of a combined threshold
// signature needs *no* signer identities, but *reconstruction* does — the
// combiner must know which t+1 partials it holds to run the Lagrange
// recombination. SRDS removes that last identity dependence, which is what
// makes polylog-batch incremental aggregation possible up a tree whose
// nodes cannot afford to track signer sets.
//
// SUBSTITUTION NOTE: no pairing/RSA backend is available offline, so this
// is a registry-backed stand-in with the real scheme's *shape*: a dealer
// Shamir-shares a master key; a partial signature is a per-share MAC tag
// (carrying its signer index, like a BLS partial carries its evaluation
// point); `combine` verifies t+1 index-distinct partials and emits the
// constant-size master tag; `verify` checks the master tag only. Sizes,
// identity requirements, and failure modes match a real threshold scheme.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

struct PartialThresholdSig {
  std::uint64_t signer = 0;
  Digest tag;

  Bytes serialize() const;
  static bool deserialize(BytesView data, PartialThresholdSig& out);
};

/// Final combined signature: constant 32 bytes, no identities.
struct ThresholdSig {
  Digest tag;
  bool operator==(const ThresholdSig&) const = default;
};

class ThresholdSigScheme {
 public:
  /// Trusted dealer: shares a master key among n parties with threshold t
  /// (any t+1 partials combine; t or fewer yield nothing).
  ThresholdSigScheme(std::size_t n, std::size_t t, std::uint64_t seed);

  std::size_t n() const { return n_; }
  std::size_t threshold() const { return t_; }

  /// Party `i`'s partial signature on m.
  PartialThresholdSig partial_sign(std::size_t i, BytesView m) const;

  /// Check one partial (identifies bad shares before combining).
  bool verify_partial(BytesView m, const PartialThresholdSig& partial) const;

  /// Combine >= t+1 valid partials with distinct signer indices. Returns
  /// nullopt when there are not enough valid distinct partials — note the
  /// combiner must *see the signer indices* to establish distinctness: this
  /// is the identity dependence SRDS eliminates.
  std::optional<ThresholdSig> combine(BytesView m,
                                      const std::vector<PartialThresholdSig>& partials) const;

  /// Verify a combined signature — no identities involved.
  bool verify(BytesView m, const ThresholdSig& sig) const;

 private:
  std::size_t n_;
  std::size_t t_;
  Bytes master_key_;
  std::vector<Bytes> share_keys_;
};

}  // namespace srds

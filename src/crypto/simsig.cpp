#include "crypto/simsig.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "crypto/hmac.hpp"

namespace srds {

SimSigRegistry::SimSigRegistry(std::size_t n, std::uint64_t seed) : n_(n) {
  Rng rng(seed ^ 0x73696d736967ULL);
  keys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys_.push_back(rng.bytes(32));
}

SimSig SimSigRegistry::sign(std::size_t signer, BytesView message) const {
  if (signer >= n_) throw std::out_of_range("SimSigRegistry::sign: bad signer");
  return hmac_sha256(keys_[signer], message);
}

bool SimSigRegistry::verify(std::size_t signer, BytesView message, const SimSig& sig) const {
  if (signer >= n_) return false;
  return hmac_sha256(keys_[signer], message) == sig;
}

}  // namespace srds

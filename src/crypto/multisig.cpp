#include "crypto/multisig.hpp"

#include <cstring>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace srds {

namespace {
MultisigTag tag_from_digests(const Digest& a, const Digest& b) {
  MultisigTag t;
  std::memcpy(t.v.data(), a.v.data(), 32);
  std::memcpy(t.v.data() + 32, b.v.data(), 16);
  return t;
}
}  // namespace

Bytes Multisig::serialize() const {
  Writer w;
  w.raw(BytesView{tag.v.data(), tag.v.size()});
  w.u32(static_cast<std::uint32_t>(signers.size()));
  Bytes bitmap((signers.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < signers.size(); ++i) {
    if (signers[i]) bitmap[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  w.raw(bitmap);
  return std::move(w).take();
}

bool Multisig::deserialize(BytesView data, Multisig& out) {
  Reader r(data);
  Bytes tag_raw = r.raw(48);
  if (!r.ok()) return false;
  std::memcpy(out.tag.v.data(), tag_raw.data(), 48);
  std::uint32_t n = r.u32();
  if (n > (1u << 26)) return false;
  Bytes bitmap = r.raw((n + 7) / 8);
  if (!r.ok() || !r.done()) return false;
  out.signers.assign(n, false);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.signers[i] = (bitmap[i / 8] >> (i % 8)) & 1;
  }
  return true;
}

std::size_t Multisig::signer_count() const {
  std::size_t c = 0;
  for (bool b : signers) c += b ? 1 : 0;
  return c;
}

MultisigRegistry::MultisigRegistry(std::size_t n, std::uint64_t seed) : n_(n) {
  Rng rng(seed ^ 0x6d756c7469736967ULL);
  keys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys_.push_back(rng.bytes(32));
}

MultisigTag MultisigRegistry::sign(std::size_t i, BytesView m) const {
  if (i >= n_) throw std::out_of_range("MultisigRegistry::sign: bad party index");
  Digest a = hmac_sha256(keys_[i], m);
  Digest b = hmac_sha256(keys_[i], sha256_tagged("ms-2", m).view());
  return tag_from_digests(a, b);
}

Multisig MultisigRegistry::aggregate(std::size_t n, const std::vector<std::size_t>& signers,
                                     const std::vector<MultisigTag>& tags) {
  if (signers.size() != tags.size()) {
    throw std::invalid_argument("MultisigRegistry::aggregate: size mismatch");
  }
  Multisig out;
  out.signers.assign(n, false);
  for (std::size_t k = 0; k < signers.size(); ++k) {
    if (signers[k] >= n) throw std::out_of_range("aggregate: signer index");
    if (out.signers[signers[k]]) {
      throw std::invalid_argument("aggregate: duplicate signer");
    }
    out.signers[signers[k]] = true;
    out.tag.xor_in(tags[k]);
  }
  return out;
}

bool MultisigRegistry::merge(Multisig& into, const Multisig& other) {
  if (into.signers.size() != other.signers.size()) return false;
  for (std::size_t i = 0; i < into.signers.size(); ++i) {
    if (into.signers[i] && other.signers[i]) return false;  // overlap
  }
  for (std::size_t i = 0; i < into.signers.size(); ++i) {
    if (other.signers[i]) into.signers[i] = true;
  }
  into.tag.xor_in(other.tag);
  return true;
}

bool MultisigRegistry::verify(BytesView m, const Multisig& sig) const {
  if (sig.signers.size() != n_) return false;
  MultisigTag expect;
  for (std::size_t i = 0; i < n_; ++i) {
    if (sig.signers[i]) expect.xor_in(sign(i, m));
  }
  return expect == sig.tag;
}

}  // namespace srds

// Hash-based commitments: commit(m; r) = SHA-256("commit" || r || m).
// Hiding under the hash's unpredictability, binding under collision
// resistance. Used in the committee coin-tossing protocol (f_ct).
#pragma once

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

struct Commitment {
  Digest value;

  bool operator==(const Commitment&) const = default;
};

/// Commit to `message` under 32-byte randomness `r`.
Commitment commit(BytesView message, BytesView r);

/// Check an opening.
bool commit_open(const Commitment& c, BytesView message, BytesView r);

}  // namespace srds

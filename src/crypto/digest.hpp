// 256-bit digest value type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

#include "common/bytes.hpp"

namespace srds {

/// A 32-byte hash value. Used for SHA-256 outputs, Merkle nodes,
/// commitments, and verification-key fingerprints.
struct Digest {
  std::array<std::uint8_t, 32> v{};

  auto operator<=>(const Digest&) const = default;

  BytesView view() const { return BytesView{v.data(), v.size()}; }
  Bytes to_bytes() const { return Bytes(v.begin(), v.end()); }

  static Digest from(BytesView b) {
    Digest d;
    std::size_t n = b.size() < 32 ? b.size() : 32;
    std::memcpy(d.v.data(), b.data(), n);
    return d;
  }

  bool is_zero() const {
    for (auto x : v)
      if (x != 0) return false;
    return true;
  }

  /// First 8 bytes as a little-endian integer (for cheap bucketing/tests).
  std::uint64_t prefix64() const {
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<std::uint64_t>(v[i]) << (8 * i);
    return r;
  }
};

struct DigestHasher {
  std::size_t operator()(const Digest& d) const {
    std::uint64_t r;
    std::memcpy(&r, d.v.data(), sizeof r);
    return static_cast<std::size_t>(r);
  }
};

}  // namespace srds

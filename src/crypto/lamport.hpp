// Lamport one-time signatures from a one-way function (SHA-256), with
// Merkle-compressed verification keys and an *oblivious key generation*
// algorithm (paper §2.2, OWF-based SRDS).
//
// Key generation derives 2×256 secret preimages from a 32-byte seed via the
// PRG; the verification key is the Merkle root over the 512 preimage hashes,
// i.e. 32 bytes. A signature reveals, for each bit b_i of the 256-bit message
// digest, the preimage at position (i, b_i) together with the *sibling leaf
// hash* at position (i, 1-b_i); the verifier recomputes all 512 leaves and
// the Merkle root. Signature size: 512 × 32 B = 16 KiB = poly(κ), independent
// of n — consistent with the Õ(·) accounting of the paper.
//
// Oblivious key generation (`oblivious_keygen`) outputs a uniformly random
// 32-byte verification key with no corresponding signing key. Against the
// hash modeled as a random function, such a key is indistinguishable from an
// honestly generated root — exactly the property the OWF-based SRDS sortition
// needs: an adversary inspecting the trusted PKI cannot tell which parties
// hold signing ability.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/digest.hpp"

namespace srds {

struct LamportKeyPair {
  Digest verification_key;
  Bytes seed;  // 32-byte secret seed from which all preimages derive
};

struct LamportSignature {
  // revealed[i]  = preimage of the leaf selected by digest bit i
  // sibling[i]   = leaf hash (not preimage) of the unselected position
  std::vector<Digest> revealed;  // size 256
  std::vector<Digest> sibling;   // size 256

  Bytes serialize() const;
  static bool deserialize(BytesView data, LamportSignature& out);
  static constexpr std::size_t kSerializedSize = 4 + 2 * 256 * 32;
};

/// Deterministic key generation from a seed.
LamportKeyPair lamport_keygen(BytesView seed32);

/// Sample a verification key with *no* signing key (oblivious key generation).
Digest lamport_oblivious_keygen(Rng& rng);

/// Sign the SHA-256 digest of `message`.
LamportSignature lamport_sign(const LamportKeyPair& kp, BytesView message);

/// Verify `sig` on `message` under `vk`.
bool lamport_verify(const Digest& vk, BytesView message, const LamportSignature& sig);

}  // namespace srds

// Pseudo-random function family F = {F_s} built from HMAC-SHA256.
//
// The BA protocol (paper Fig. 3, steps 7-8) uses a PRF mapping a party index
// to a polylog(n)-size subset of [n]: party P_i sends its certified output to
// C_i = F_s(i), and a receiver P_j accepts from P_i only if j ∈ F_s(i).
// `PrfSubset` implements exactly that map, deterministically from (s, i).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

/// Keyed PRF: F_s(x) for byte-string inputs.
class Prf {
 public:
  explicit Prf(Bytes key) : key_(std::move(key)) {}

  Digest eval(BytesView input) const;
  std::uint64_t eval_u64(std::uint64_t input) const;

  const Bytes& key() const { return key_; }

 private:
  Bytes key_;
};

/// F_s : [n] -> k-subsets of [n]. Deterministic in (seed, i, n, k).
/// Sampling is by counter-mode rejection, so all parties evaluating F_s(i)
/// obtain the same subset.
std::vector<std::size_t> prf_subset(BytesView seed, std::uint64_t i, std::size_t n,
                                    std::size_t k);

/// Membership test: j ∈ F_s(i)? (computed by evaluating the subset).
bool prf_subset_contains(BytesView seed, std::uint64_t i, std::size_t n, std::size_t k,
                         std::size_t j);

}  // namespace srds

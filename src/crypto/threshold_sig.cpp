#include "crypto/threshold_sig.hpp"

#include <set>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/hmac.hpp"

namespace srds {

Bytes PartialThresholdSig::serialize() const {
  Writer w;
  w.u64(signer);
  w.raw(tag.view());
  return std::move(w).take();
}

bool PartialThresholdSig::deserialize(BytesView data, PartialThresholdSig& out) {
  Reader r(data);
  out.signer = r.u64();
  Bytes t = r.raw(32);
  if (!r.done()) return false;
  out.tag = Digest::from(t);
  return true;
}

ThresholdSigScheme::ThresholdSigScheme(std::size_t n, std::size_t t, std::uint64_t seed)
    : n_(n), t_(t) {
  if (n == 0 || t >= n) throw std::invalid_argument("ThresholdSigScheme: need t < n");
  Rng rng(seed ^ 0x7468726573686f6cULL);
  master_key_ = rng.bytes(32);
  share_keys_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) share_keys_.push_back(rng.bytes(32));
}

PartialThresholdSig ThresholdSigScheme::partial_sign(std::size_t i, BytesView m) const {
  if (i >= n_) throw std::out_of_range("ThresholdSigScheme::partial_sign: bad signer");
  return PartialThresholdSig{i, hmac_sha256(share_keys_[i], m)};
}

bool ThresholdSigScheme::verify_partial(BytesView m,
                                        const PartialThresholdSig& partial) const {
  if (partial.signer >= n_) return false;
  return hmac_sha256(share_keys_[partial.signer], m) == partial.tag;
}

std::optional<ThresholdSig> ThresholdSigScheme::combine(
    BytesView m, const std::vector<PartialThresholdSig>& partials) const {
  std::set<std::uint64_t> distinct;
  for (const auto& p : partials) {
    if (verify_partial(m, p)) distinct.insert(p.signer);
  }
  if (distinct.size() < t_ + 1) return std::nullopt;
  return ThresholdSig{hmac_sha256(master_key_, m)};
}

bool ThresholdSigScheme::verify(BytesView m, const ThresholdSig& sig) const {
  return hmac_sha256(master_key_, m) == sig.tag;
}

}  // namespace srds

#include "crypto/lamport.hpp"

#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/merkle.hpp"
#include "crypto/prg.hpp"
#include "crypto/sha256.hpp"
#include "obs/prof.hpp"

namespace srds {

namespace {

// Leaf layout: index 2*i + b is the hash of the preimage for bit i, value b.
constexpr std::size_t kBits = 256;
constexpr std::size_t kLeaves = 2 * kBits;

Digest preimage(BytesView seed, std::size_t leaf_idx) {
  return Prg(seed).block(leaf_idx);
}

std::vector<Digest> all_leaf_hashes(BytesView seed) {
  std::vector<Digest> leaves;
  leaves.reserve(kLeaves);
  for (std::size_t i = 0; i < kLeaves; ++i) {
    leaves.push_back(sha256(preimage(seed, i).view()));
  }
  return leaves;
}

}  // namespace

Bytes LamportSignature::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(revealed.size()));
  for (const auto& d : revealed) w.raw(d.view());
  for (const auto& d : sibling) w.raw(d.view());
  return std::move(w).take();
}

bool LamportSignature::deserialize(BytesView data, LamportSignature& out) {
  Reader r(data);
  std::uint32_t n = r.u32();
  if (n != kBits) return false;
  out.revealed.clear();
  out.sibling.clear();
  out.revealed.reserve(n);
  out.sibling.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Bytes b = r.raw(32);
    if (!r.ok()) return false;
    out.revealed.push_back(Digest::from(b));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    Bytes b = r.raw(32);
    if (!r.ok()) return false;
    out.sibling.push_back(Digest::from(b));
  }
  return r.done();
}

LamportKeyPair lamport_keygen(BytesView seed32) {
  if (seed32.size() != 32) throw std::invalid_argument("lamport_keygen: seed must be 32 bytes");
  LamportKeyPair kp;
  kp.seed.assign(seed32.begin(), seed32.end());
  MerkleTree tree(all_leaf_hashes(seed32));
  kp.verification_key = tree.root();
  return kp;
}

Digest lamport_oblivious_keygen(Rng& rng) {
  Bytes r = rng.bytes(32);
  // A uniformly random 32-byte string, structurally identical to a Merkle
  // root. No party (including the sampler) knows preimages for it.
  return Digest::from(r);
}

LamportSignature lamport_sign(const LamportKeyPair& kp, BytesView message) {
  PROF_SCOPE(obs::ProfSiteId::kCryptoLamportSign);
  Digest md = sha256_tagged("lamport-msg", message);
  LamportSignature sig;
  sig.revealed.reserve(kBits);
  sig.sibling.reserve(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    int bit = (md.v[i / 8] >> (i % 8)) & 1;
    std::size_t sel = 2 * i + static_cast<std::size_t>(bit);
    std::size_t other = 2 * i + static_cast<std::size_t>(1 - bit);
    sig.revealed.push_back(preimage(kp.seed, sel));
    sig.sibling.push_back(sha256(preimage(kp.seed, other).view()));
  }
  return sig;
}

bool lamport_verify(const Digest& vk, BytesView message, const LamportSignature& sig) {
  PROF_SCOPE(obs::ProfSiteId::kCryptoLamportVerify);
  if (sig.revealed.size() != kBits || sig.sibling.size() != kBits) return false;
  Digest md = sha256_tagged("lamport-msg", message);
  std::vector<Digest> leaves(kLeaves);
  for (std::size_t i = 0; i < kBits; ++i) {
    int bit = (md.v[i / 8] >> (i % 8)) & 1;
    std::size_t sel = 2 * i + static_cast<std::size_t>(bit);
    std::size_t other = 2 * i + static_cast<std::size_t>(1 - bit);
    leaves[sel] = sha256(sig.revealed[i].view());
    leaves[other] = sig.sibling[i];
  }
  return MerkleTree(std::move(leaves)).root() == vk;
}

}  // namespace srds

// HMAC-SHA256 (RFC 2104). Backbone of the PRF/PRG and of the simulated
// SNARK oracle's authentication tags.
#pragma once

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

/// HMAC-SHA256(key, data).
Digest hmac_sha256(BytesView key, BytesView data);

}  // namespace srds

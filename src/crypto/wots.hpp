// Winternitz one-time signatures (WOTS) over SHA-256, with oblivious key
// generation.
//
// Functionally equivalent to the Lamport scheme in lamport.hpp (one-time,
// OWF-based, oblivious keygen) but ~8x smaller: with w = 16 a signature is
// 67 x 32 B ≈ 2.1 KiB. The SRDS constructions use WOTS for base signatures —
// in the OWF-based SRDS all base signatures travel to the root by
// concatenation, so base-signature size directly multiplies per-party
// communication (a poly(κ) factor the Õ(·) notation hides, but which
// simulation wall-clock does not).
//
// Layout: the message digest is split into 64 hex digits d_0..d_63; two
// checksum digits... (standard WOTS checksum over 4-bit digits needs
// ceil(log_16(64*15)) = 3 digits). Secret chain seeds derive from a 32-byte
// seed via the PRG; vk = SHA-256 over all 67 chain tops.
#pragma once

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/digest.hpp"

namespace srds {

struct WotsKeyPair {
  Digest verification_key;
  Bytes seed;  // 32 bytes
};

struct WotsSignature {
  std::vector<Digest> chain_values;  // 67 digests

  Bytes serialize() const;
  static bool deserialize(BytesView data, WotsSignature& out);

  static constexpr std::size_t kChains = 67;
  static constexpr std::size_t kSerializedSize = 4 + kChains * 32;
};

WotsKeyPair wots_keygen(BytesView seed32);

/// Uniformly random verification key with no signing key (see lamport.hpp
/// for why this gives sortition-compatible indistinguishability).
Digest wots_oblivious_keygen(Rng& rng);

WotsSignature wots_sign(const WotsKeyPair& kp, BytesView message);

bool wots_verify(const Digest& vk, BytesView message, const WotsSignature& sig);

}  // namespace srds

#include "crypto/hmac.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace srds {

Digest hmac_sha256(BytesView key, BytesView data) {
  std::uint8_t k[64] = {0};
  if (key.size() > 64) {
    Digest kd = sha256(key);
    std::memcpy(k, kd.v.data(), 32);
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(BytesView{ipad, 64});
  inner.update(data);
  Digest inner_d = inner.finish();

  Sha256 outer;
  outer.update(BytesView{opad, 64});
  outer.update(inner_d.view());
  return outer.finish();
}

}  // namespace srds

// Counter-mode PRG from HMAC-SHA256. Used to expand short seeds into
// key material (e.g., the 512 Lamport secret preimages of one key pair).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

class Prg {
 public:
  explicit Prg(BytesView seed) : seed_(seed.begin(), seed.end()) {}

  /// The `idx`-th 32-byte block of the stream (random access).
  Digest block(std::uint64_t idx) const;

  /// Next `n` bytes of the sequential stream.
  Bytes next(std::size_t n);

 private:
  Bytes seed_;
  std::uint64_t counter_ = 0;
  Bytes pending_;
};

}  // namespace srds

#include "crypto/prf.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/serial.hpp"
#include "crypto/hmac.hpp"

namespace srds {

Digest Prf::eval(BytesView input) const { return hmac_sha256(key_, input); }

std::uint64_t Prf::eval_u64(std::uint64_t input) const {
  Writer w;
  w.u64(input);
  return eval(w.data()).prefix64();
}

std::vector<std::size_t> prf_subset(BytesView seed, std::uint64_t i, std::size_t n,
                                    std::size_t k) {
  if (k > n) throw std::invalid_argument("prf_subset: k > n");
  std::vector<std::size_t> out;
  out.reserve(k);
  std::unordered_set<std::size_t> seen;
  std::uint64_t ctr = 0;
  while (out.size() < k) {
    Writer w;
    w.u64(i);
    w.u64(ctr++);
    Digest d = hmac_sha256(seed, w.data());
    // Use four 64-bit lanes per digest.
    for (int lane = 0; lane < 4 && out.size() < k; ++lane) {
      std::uint64_t v = 0;
      for (int b = 0; b < 8; ++b)
        v |= static_cast<std::uint64_t>(d.v[8 * lane + b]) << (8 * b);
      std::size_t cand = static_cast<std::size_t>(v % n);
      if (seen.insert(cand).second) out.push_back(cand);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool prf_subset_contains(BytesView seed, std::uint64_t i, std::size_t n, std::size_t k,
                         std::size_t j) {
  auto s = prf_subset(seed, i, n, k);
  return std::binary_search(s.begin(), s.end(), j);
}

}  // namespace srds

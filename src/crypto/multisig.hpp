// Simulated multi-signature scheme (stand-in for BLS-style multisigs).
//
// This module exists to implement the *baseline* protocol of Boyle,
// Goldwasser, Tessaro (TCC'13, "BGT'13") and to make the paper's §1.2
// observation measurable: a multi-signature itself is short, but *verifying*
// it requires the set of contributing signers, whose description is Θ(n)
// bits — the exact reason BGT'13-style boosting is stuck at Θ(n) per-party
// communication, and the gap SRDS closes.
//
// SUBSTITUTION NOTE (DESIGN.md S1-adjacent): no pairing library is available
// offline, so signatures here are symmetric-crypto stand-ins: party i's
// signature on m is HMAC(k_i, m) truncated to 48 bytes (the size of a BLS12-381
// G1 point), and the aggregate is the XOR of the constituent tags. A
// `MultisigRegistry` plays the role of the public parameters: it can verify an
// aggregate given the claimed signer set, just as a real verifier would pair
// against the aggregated public keys. The communication-relevant facts — a
// constant-size aggregate plus an n-bit signer bitmap — match the real scheme
// exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

/// Fixed-size aggregate tag (48 bytes, mimicking a G1 point).
struct MultisigTag {
  std::array<std::uint8_t, 48> v{};

  bool operator==(const MultisigTag&) const = default;
  void xor_in(const MultisigTag& other) {
    for (std::size_t i = 0; i < v.size(); ++i) v[i] ^= other.v[i];
  }
};

/// A multi-signature as it travels on the wire: constant-size tag plus the
/// Θ(n)-bit signer bitmap that verification requires.
struct Multisig {
  MultisigTag tag;
  std::vector<bool> signers;  // n bits

  /// Wire size in bytes: 48 + ceil(n/8) + 4. This is what the network
  /// simulator charges when a BGT'13-style protocol ships a multisig.
  std::size_t wire_size() const { return 48 + (signers.size() + 7) / 8 + 4; }

  Bytes serialize() const;
  static bool deserialize(BytesView data, Multisig& out);

  std::size_t signer_count() const;
};

/// Key registry standing in for the scheme's public parameters.
class MultisigRegistry {
 public:
  /// Create keys for `n` parties from a master seed.
  MultisigRegistry(std::size_t n, std::uint64_t seed);

  std::size_t n() const { return n_; }

  /// Party `i` signs `m` (the registry hands out per-party signing).
  MultisigTag sign(std::size_t i, BytesView m) const;

  /// Aggregate single-signer signatures into a multisig.
  static Multisig aggregate(std::size_t n, const std::vector<std::size_t>& signers,
                            const std::vector<MultisigTag>& tags);

  /// Combine two multisigs with disjoint signer sets; returns false on overlap.
  static bool merge(Multisig& into, const Multisig& other);

  /// Verify: recompute the expected XOR-aggregate over the claimed signer set.
  bool verify(BytesView m, const Multisig& sig) const;

 private:
  std::size_t n_;
  std::vector<Bytes> keys_;
};

}  // namespace srds

#include "crypto/prg.hpp"

#include "common/serial.hpp"
#include "crypto/hmac.hpp"

namespace srds {

Digest Prg::block(std::uint64_t idx) const {
  Writer w;
  w.u64(idx);
  return hmac_sha256(seed_, w.data());
}

Bytes Prg::next(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    if (pending_.empty()) {
      pending_ = block(counter_++).to_bytes();
    }
    std::size_t take = std::min(n - out.size(), pending_.size());
    out.insert(out.end(), pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(take));
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace srds

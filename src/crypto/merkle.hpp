// Merkle hash trees over byte-string leaves.
//
// Used to (a) compress Lamport verification keys to 32 bytes, and (b) bind
// partially-aggregated SRDS signatures to the multiset of base signatures
// they contain (the CRH-based anti-duplication device of the SNARK-based
// construction, paper §2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

/// An authentication path from a leaf to the root.
struct MerklePath {
  std::uint64_t leaf_index = 0;
  std::vector<Digest> siblings;  // bottom-up

  Bytes serialize() const;
  static bool deserialize(BytesView data, MerklePath& out);
};

/// Immutable Merkle tree built over a vector of pre-hashed leaves.
/// Interior node = SHA-256(left || right); odd nodes are paired with a
/// domain-separated copy of themselves, which keeps proofs well-defined for
/// any leaf count >= 1.
class MerkleTree {
 public:
  explicit MerkleTree(std::vector<Digest> leaves);

  const Digest& root() const { return root_; }
  std::size_t leaf_count() const { return leaf_count_; }

  MerklePath path(std::uint64_t leaf_index) const;

  /// Verify that `leaf` at `path.leaf_index` hashes up to `root`.
  static bool verify(const Digest& root, const Digest& leaf, const MerklePath& path,
                     std::size_t leaf_count);

 private:
  std::size_t leaf_count_;
  // levels_[0] = leaves, levels_.back() = {root}
  std::vector<std::vector<Digest>> levels_;
  Digest root_;
};

/// Convenience: Merkle root over raw byte leaves (each leaf hashed first).
Digest merkle_root(const std::vector<Bytes>& leaves);

}  // namespace srds

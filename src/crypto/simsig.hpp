// Registry-based many-time signature stand-in ("SimSig").
//
// Committee sub-protocols (Dolev-Strong broadcast, coin tossing) need
// ordinary many-time signatures. A hash-based many-time scheme (e.g., full
// XMSS) would add large code and signature weight without changing any
// measured quantity, so — consistent with DESIGN.md substitutions — committee
// authentication uses a symmetric stand-in: party i's signature on m is
// HMAC(k_i, m) (32 bytes, the size of a short Schnorr/EdDSA signature), and
// verification goes through a `SimSigRegistry` holding all keys, playing the
// role of public keys. Soundness against our adversaries holds because the
// adversary interface exposes `sign` only for corrupted parties.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

/// A 32-byte signature tag.
using SimSig = Digest;

class SimSigRegistry {
 public:
  SimSigRegistry(std::size_t n, std::uint64_t seed);

  std::size_t n() const { return n_; }

  SimSig sign(std::size_t signer, BytesView message) const;
  bool verify(std::size_t signer, BytesView message, const SimSig& sig) const;

 private:
  std::size_t n_;
  std::vector<Bytes> keys_;
};

/// Shared handle: committee protocols take this so one registry serves a
/// whole simulation.
using SimSigRegistryPtr = std::shared_ptr<const SimSigRegistry>;

}  // namespace srds

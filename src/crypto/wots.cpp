#include "crypto/wots.hpp"

#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/prg.hpp"
#include "crypto/sha256.hpp"

namespace srds {

namespace {

constexpr std::size_t kMsgDigits = 64;   // 256 bits / 4 bits per digit
constexpr std::size_t kCsumDigits = 3;   // max checksum 64*15 = 960 < 16^3
constexpr std::size_t kChains = WotsSignature::kChains;
static_assert(kChains == kMsgDigits + kCsumDigits);
constexpr unsigned kW = 15;  // chain length: digits in [0, 15]

/// Apply the chain function `steps` times: F(x) = SHA-256("wots-chain" || i || x)
/// where i is the position in the chain (prevents cross-position splicing).
Digest chain(Digest x, unsigned from, unsigned steps) {
  for (unsigned s = 0; s < steps; ++s) {
    Sha256 ctx;
    ctx.update("wots-chain");
    std::uint8_t pos = static_cast<std::uint8_t>(from + s);
    ctx.update(BytesView{&pos, 1});
    ctx.update(x.view());
    x = ctx.finish();
  }
  return x;
}

/// Message digest -> 67 base-16 digits (64 message + 3 checksum).
std::array<unsigned, kChains> digits_of(BytesView message) {
  Digest md = sha256_tagged("wots-msg", message);
  std::array<unsigned, kChains> d{};
  for (std::size_t i = 0; i < kMsgDigits; ++i) {
    std::uint8_t byte = md.v[i / 2];
    d[i] = (i % 2 == 0) ? (byte >> 4) : (byte & 0x0f);
  }
  unsigned csum = 0;
  for (std::size_t i = 0; i < kMsgDigits; ++i) csum += kW - d[i];
  for (std::size_t i = 0; i < kCsumDigits; ++i) {
    d[kMsgDigits + i] = (csum >> (4 * i)) & 0x0f;
  }
  return d;
}

Digest chain_seed(BytesView seed, std::size_t chain_idx) { return Prg(seed).block(chain_idx); }

Digest vk_from_tops(const std::array<Digest, kChains>& tops) {
  Sha256 ctx;
  ctx.update("wots-vk");
  for (const auto& t : tops) ctx.update(t.view());
  return ctx.finish();
}

}  // namespace

Bytes WotsSignature::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(chain_values.size()));
  for (const auto& d : chain_values) w.raw(d.view());
  return std::move(w).take();
}

bool WotsSignature::deserialize(BytesView data, WotsSignature& out) {
  Reader r(data);
  std::uint32_t n = r.u32();
  if (n != kChains) return false;
  out.chain_values.clear();
  out.chain_values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Bytes b = r.raw(32);
    if (!r.ok()) return false;
    out.chain_values.push_back(Digest::from(b));
  }
  return r.done();
}

WotsKeyPair wots_keygen(BytesView seed32) {
  if (seed32.size() != 32) throw std::invalid_argument("wots_keygen: seed must be 32 bytes");
  std::array<Digest, kChains> tops;
  for (std::size_t c = 0; c < kChains; ++c) {
    tops[c] = chain(chain_seed(seed32, c), 0, kW);
  }
  WotsKeyPair kp;
  kp.seed.assign(seed32.begin(), seed32.end());
  kp.verification_key = vk_from_tops(tops);
  return kp;
}

Digest wots_oblivious_keygen(Rng& rng) {
  Bytes r = rng.bytes(32);
  return Digest::from(r);
}

WotsSignature wots_sign(const WotsKeyPair& kp, BytesView message) {
  auto d = digits_of(message);
  WotsSignature sig;
  sig.chain_values.reserve(kChains);
  for (std::size_t c = 0; c < kChains; ++c) {
    sig.chain_values.push_back(chain(chain_seed(kp.seed, c), 0, d[c]));
  }
  return sig;
}

bool wots_verify(const Digest& vk, BytesView message, const WotsSignature& sig) {
  if (sig.chain_values.size() != kChains) return false;
  auto d = digits_of(message);
  std::array<Digest, kChains> tops;
  for (std::size_t c = 0; c < kChains; ++c) {
    tops[c] = chain(sig.chain_values[c], d[c], kW - d[c]);
  }
  return vk_from_tops(tops) == vk;
}

}  // namespace srds

// Run several SubProtocols side by side as one composite SubProtocol.
// Bodies are framed with the child index so instances multiplex over the
// same channel. Used for "every committee member broadcasts" blocks (c
// parallel Dolev-Strong instances) and similar fan-outs.
#pragma once

#include <memory>
#include <vector>

#include "common/serial.hpp"
#include "net/subproto.hpp"

namespace srds {

class ParallelProto final : public SubProtocol {
 public:
  explicit ParallelProto(std::vector<std::unique_ptr<SubProtocol>> children)
      : children_(std::move(children)) {
    for (const auto& c : children_) {
      if (c && c->rounds() > rounds_) rounds_ = c->rounds();
    }
  }

  std::size_t rounds() const override { return rounds_; }

  std::vector<std::pair<PartyId, Bytes>> step(
      std::size_t subround, const std::vector<TaggedMsg>& inbox) override {
    // Demux inbox by child index. Frames whose index header is truncated or
    // out of range are counted, not silently dropped — an adversary spraying
    // garbage at a committee shows up in faults.malformed_frames. A frame
    // addressed to a child whose schedule already ended is well-formed and is
    // discarded without counting (children legitimately differ in rounds()).
    std::vector<std::vector<TaggedMsg>> per_child(children_.size());
    for (const auto& msg : inbox) {
      Reader r(msg.body);
      std::uint32_t idx = r.u32();
      if (!r.ok() || idx >= children_.size()) {
        malformed_ += 1;
        continue;
      }
      Bytes inner = r.raw(r.remaining());
      if (!r.ok()) {
        malformed_ += 1;
        continue;
      }
      per_child[idx].push_back(TaggedMsg{msg.from, std::move(inner)});
    }
    std::vector<std::pair<PartyId, Bytes>> out;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (!children_[i] || subround >= children_[i]->rounds()) continue;
      auto msgs = children_[i]->step(subround, per_child[i]);
      for (auto& [to, body] : msgs) {
        Writer w;
        w.u32(static_cast<std::uint32_t>(i));
        w.raw(body);
        out.emplace_back(to, std::move(w).take());
      }
    }
    return out;
  }

  SubProtocol* child(std::size_t i) { return children_[i].get(); }
  const SubProtocol* child(std::size_t i) const { return children_[i].get(); }
  std::size_t size() const { return children_.size(); }

  std::uint64_t malformed_frames() const override {
    std::uint64_t total = malformed_;
    for (const auto& c : children_) {
      if (c) total += c->malformed_frames();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<SubProtocol>> children_;
  std::size_t rounds_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace srds

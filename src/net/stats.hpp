// Per-party communication accounting.
//
// Every quantitative claim this repository reproduces (Table 1 and the
// scaling figures) is measured here, inside the network layer — protocols
// never self-report their costs. We track, per party:
//   * bytes/messages sent and received,
//   * the set of distinct peers communicated with (the paper's
//     "communication locality" / communication-graph degree).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/message.hpp"

namespace srds {

struct PartyStats {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::unordered_set<PartyId> peers_out;
  std::unordered_set<PartyId> peers_in;

  bool operator==(const PartyStats&) const = default;

  /// Locality: number of distinct parties this party exchanged messages
  /// with. Computed without materializing the union — NetworkStats::
  /// max_locality() calls this per party on every query, and rebuilding a
  /// merged set made n=4096 sweeps pay O(n·deg) allocations repeatedly.
  std::size_t locality() const {
    std::size_t extra = 0;
    for (PartyId p : peers_in) {
      if (!peers_out.contains(p)) ++extra;
    }
    return peers_out.size() + extra;
  }

  std::uint64_t bytes_total() const { return bytes_sent + bytes_recv; }
};

/// Aggregate counts of network misbehavior during a run — populated only
/// when the simulator runs under a FaultPlan (see net/faults.hpp), except
/// `adversary_rejected`, which counts ill-formed adversary messages the
/// network discarded (bad `from`/`to` indices or oversized payloads).
struct FaultCounters {
  std::uint64_t dropped = 0;         // lost to random/link drop faults
  std::uint64_t partitioned = 0;     // lost crossing an active partition cut
  std::uint64_t delayed = 0;         // deliveries deferred by a delay fault
  std::uint64_t late_delivered = 0;  // deferred messages that did arrive
  std::uint64_t duplicated = 0;      // extra copies injected at receivers
  std::uint64_t crashed_parties = 0; // honest parties that crash-stopped
  std::uint64_t adversary_rejected = 0;
  std::uint64_t churn_dropped = 0;   // deliveries lost to an offline receiver
  // Adaptive corruption (docs/fault_model.md): grants consumed from the
  // simulator's corruption budget, and adversary requests that were refused
  // (budget exhausted, or the target was already corrupt/crashed/invalid).
  std::uint64_t adaptive_corruptions = 0;
  std::uint64_t corruptions_denied = 0;
  // Frames a multiplexing protocol layer (ParallelProto, the svc instance
  // pipeline) received but could not parse — truncated child index, index out
  // of range, or a bad instance header. These are accepted by the *network*
  // (channels are authenticated) and rejected by the *protocol framing*, so
  // they are counted here post-run from the honest parties' own tallies;
  // eclipse-style garbage floods become visible instead of vanishing.
  std::uint64_t malformed_frames = 0;

  bool operator==(const FaultCounters&) const = default;
};

struct NetworkStats {
  std::vector<PartyStats> party;
  std::size_t rounds = 0;
  FaultCounters faults;

  explicit NetworkStats(std::size_t n = 0) : party(n) {}

  void record(const Message& m) {
    record_send(m);
    record_recv(m);
  }

  /// Send-side half of `record` — used for messages the network accepted
  /// from the sender but then dropped or deferred.
  void record_send(const Message& m) {
    party[m.from].bytes_sent += m.payload.size();
    party[m.from].msgs_sent += 1;
    party[m.from].peers_out.insert(m.to);
  }

  /// Receive-side half of `record` — used at actual delivery time (late
  /// deliveries, duplicate copies).
  void record_recv(const Message& m) {
    party[m.to].bytes_recv += m.payload.size();
    party[m.to].msgs_recv += 1;
    party[m.to].peers_in.insert(m.from);
  }

  bool operator==(const NetworkStats&) const = default;

  std::uint64_t total_bytes() const {
    std::uint64_t t = 0;
    for (const auto& p : party) t += p.bytes_sent;
    return t;
  }

  /// Max bytes sent by any single party (the paper's "max com. per party").
  std::uint64_t max_bytes_sent() const {
    std::uint64_t m = 0;
    for (const auto& p : party) m = std::max(m, p.bytes_sent);
    return m;
  }

  /// Max of sent+received over parties.
  std::uint64_t max_bytes_total() const {
    std::uint64_t m = 0;
    for (const auto& p : party) m = std::max(m, p.bytes_total());
    return m;
  }

  std::size_t max_locality() const {
    std::size_t m = 0;
    for (const auto& p : party) m = std::max(m, p.locality());
    return m;
  }

  /// Max over a subset of parties only (e.g., honest parties).
  template <typename Pred>
  std::uint64_t max_bytes_total_if(Pred&& keep) const {
    std::uint64_t m = 0;
    for (PartyId i = 0; i < party.size(); ++i) {
      if (keep(i)) m = std::max(m, party[i].bytes_total());
    }
    return m;
  }
};

}  // namespace srds

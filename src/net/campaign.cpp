#include "net/campaign.hpp"

#include "common/rng.hpp"

namespace srds {

// srds-lint: hotpath(campaign_hash) — every adaptive decision a campaign makes (victim
// choice, corruption schedule, child targeting) draws through this hash,
// queried per (round, party); must not allocate or unwind (rule P1).
std::uint64_t campaign_hash(std::uint64_t seed, std::uint64_t round, std::uint64_t party) {
  std::uint64_t s = seed;
  std::uint64_t a = round ^ 0x9e3779b97f4a7c15ULL;
  std::uint64_t b = party ^ 0xbf58476d1ce4e5b9ULL;
  s ^= splitmix64(a);
  s ^= splitmix64(b);
  return splitmix64(s);
}

}  // namespace srds

// Seeded, deterministic fault injection for the synchronous simulator.
//
// The paper's model assumes perfect synchronous delivery; a production
// deployment does not get that luxury. A `FaultPlan` describes how the
// network misbehaves — per-message drop probability (globally or per link),
// bounded delay (messages arrive up to `max_delay` rounds late instead of
// being lost), duplication, crash-stop faults at a scheduled round,
// round-windowed partitions between party sets, and party churn (leave /
// rejoin windows during which a party is offline). The `Simulator` consults
// a `FaultInjector` built from the plan on every delivery.
//
// Determinism: every per-message decision is derived by hashing
// (plan seed, send round, from, to, per-link sequence number) through
// SplitMix64, so a chaos run is a pure function of (protocol, plan) — two
// runs with the same seed produce byte-identical `NetworkStats`, and a
// decision for one link never depends on traffic on another link.
//
// See docs/fault_model.md for the taxonomy and its relation to the paper's
// synchronous model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"

namespace srds {

/// Crash-stop fault: an honest party halts permanently at the start of
/// `round` — it neither executes nor sends from that round on. (Corrupt
/// parties are the adversary's business; crash entries for them are ignored.)
struct CrashFault {
  PartyId party = 0;
  std::size_t round = 0;
};

/// Network partition active during send rounds [from_round, until_round):
/// messages crossing the cut between `group` and its complement are dropped.
/// Traffic within either side is unaffected.
struct PartitionWindow {
  std::size_t from_round = 0;
  std::size_t until_round = 0;
  std::vector<PartyId> group;
};

/// Per-link drop-probability override (applies on top of the global rate).
struct LinkDropOverride {
  PartyId from = 0;
  PartyId to = 0;
  double drop_prob = 0.0;
};

/// Churn: the party is offline during send rounds [from_round, until_round).
/// While offline it neither executes nor sends, and messages that would be
/// delivered to it are lost (counted in FaultCounters::churn_dropped); at
/// `until_round` it rejoins with its protocol state intact — the leave /
/// rejoin model of the long-lived broadcast service (ROADMAP item 2). A
/// crash-stop dominates: a crashed party never rejoins.
struct ChurnWindow {
  PartyId party = 0;
  std::size_t from_round = 0;
  std::size_t until_round = 0;
};

struct FaultPlan {
  /// Seed for all randomized fault decisions (drop/delay/duplicate).
  std::uint64_t seed = 1;

  /// Probability an individual message is silently dropped.
  double drop_prob = 0.0;

  /// Probability an individual message is deferred; a deferred message is
  /// delivered 1..max_delay rounds late (uniform), never lost. Inactive
  /// unless max_delay >= 1.
  double delay_prob = 0.0;
  std::size_t max_delay = 0;

  /// Probability the receiver gets a second copy of a delivered message
  /// (within the same round's inbox).
  double duplicate_prob = 0.0;

  std::vector<LinkDropOverride> link_drops;
  std::vector<CrashFault> crashes;
  std::vector<PartitionWindow> partitions;
  std::vector<ChurnWindow> churn;

  /// True if the plan can affect any delivery at all.
  bool any() const {
    return drop_prob > 0.0 || (delay_prob > 0.0 && max_delay > 0) ||
           duplicate_prob > 0.0 || !link_drops.empty() || !crashes.empty() ||
           !partitions.empty() || !churn.empty();
  }

  /// Extra protocol rounds a harness should budget so that delayed traffic
  /// can still be ingested (see BaRunConfig::grace_rounds).
  std::size_t suggested_grace() const { return max_delay ? max_delay + 1 : 0; }
};

/// One finding from validate_fault_plan. Errors describe plans that are
/// ill-defined (out-of-range PartyIds, invalid probabilities, inverted
/// windows) and make Simulator::set_fault_plan throw; warnings describe
/// plans that are well-defined but probably not what the author meant
/// (crash entries for corrupt parties, overlapping windows on the same
/// cut). Warnings are surfaced — never silently ignored — through
/// Simulator::plan_issues() and BaRunResult::plan_issues.
struct FaultPlanIssue {
  enum class Severity { kWarning, kError };
  Severity severity = Severity::kWarning;
  std::string what;
};

/// Structural validation of a plan against a network of `n` parties.
/// `corrupt` (optional) enables the corrupt-party checks: crash or churn
/// entries naming corrupted parties are operationally inert (the adversary
/// already controls those slots) and come back as warnings.
std::vector<FaultPlanIssue> validate_fault_plan(const FaultPlan& plan, std::size_t n,
                                                const std::vector<bool>* corrupt = nullptr);

/// Per-delivery verdict of the injector.
struct FaultVerdict {
  bool deliver = true;       // false => message is lost
  bool partitioned = false;  // lost specifically to a partition cut
  std::size_t delay = 0;     // extra rounds before delivery (0 = on time)
  bool duplicate = false;    // receiver gets a second copy
};

/// Stateful evaluator of a FaultPlan over one simulation run. Not
/// thread-safe; the simulator drives it from a single thread in
/// deterministic message order.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::size_t n);

  /// Decide the fate of a message sent in `round`. Consumes one per-link
  /// sequence number, so duplicate calls for the same message disagree —
  /// call exactly once per send.
  FaultVerdict on_message(std::size_t round, const Message& m);

  /// Has party `i` crash-stopped at or before `round`?
  bool crashed(PartyId i, std::size_t round) const {
    return i < crash_round_.size() && crash_round_[i].has_value() &&
           *crash_round_[i] <= round;
  }

  // srds-lint: hotpath(FaultInjector::offline) — consulted once per delivery and once per party per
  // round under a churn-bearing plan; must not allocate or unwind (rule P1).
  /// Is party `i` churned offline during round `round`? Offline parties do
  /// not execute, and deliveries to them at that round are lost. A crashed
  /// party is reported through crashed(), not here.
  bool offline(PartyId i, std::size_t round) const {
    for (const ChurnWindow& w : plan_.churn) {
      if (w.party == i && round >= w.from_round && round < w.until_round) return true;
    }
    return false;
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  double link_drop_prob(PartyId from, PartyId to) const;
  bool crosses_partition(std::size_t round, PartyId from, PartyId to) const;

  FaultPlan plan_;
  std::size_t n_;
  std::vector<std::optional<std::size_t>> crash_round_;
  std::unordered_map<std::uint64_t, double> link_override_;
  std::vector<std::vector<bool>> partition_side_;  // per window: membership
  // Per-link sequence numbers within the current round (reset on round
  // change) so that two same-link messages in one round draw independent
  // randomness.
  std::size_t seq_round_ = static_cast<std::size_t>(-1);
  std::unordered_map<std::uint64_t, std::uint32_t> seq_;
};

}  // namespace srds

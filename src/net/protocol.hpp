// Interfaces implemented by protocol logic running on the simulator.
#pragma once

#include <memory>
#include <vector>

#include "net/message.hpp"

namespace srds {

/// Protocol logic of one honest party.
///
/// The simulator calls `on_round(r, inbox)` exactly once per synchronous
/// round; `inbox` holds the messages sent to this party in round r-1 (empty
/// in round 0). The return value is the party's outbox for round r.
///
/// Implementations must treat `inbox` as untrusted: any message may have been
/// crafted by the adversary. Malformed messages must be dropped, never cause
/// a throw that crosses this interface.
class Party {
 public:
  virtual ~Party() = default;

  virtual std::vector<Message> on_round(std::size_t round,
                                        const std::vector<Message>& inbox) = 0;

  /// True once the party has produced its final output.
  virtual bool done() const = 0;
};

/// The adversary controls all corrupted parties jointly and is *rushing*:
/// in each round it sees the honest parties' outgoing messages for that round
/// (full-information network) before choosing the corrupted parties' messages.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// `corrupt_inbox` — messages delivered this round to corrupted parties;
  /// `honest_outbox` — all messages honest parties are sending this round.
  /// Returns the corrupted parties' messages for this round (each message's
  /// `from` must be a corrupted party; the simulator enforces this).
  virtual std::vector<Message> on_round(std::size_t round,
                                        const std::vector<Message>& corrupt_inbox,
                                        const std::vector<Message>& honest_outbox) = 0;
};

/// An adversary whose corrupted parties stay silent (fail-stop-like).
class SilentAdversary final : public Adversary {
 public:
  std::vector<Message> on_round(std::size_t, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    return {};
  }
};

}  // namespace srds

// Interfaces implemented by protocol logic running on the simulator.
#pragma once

#include <memory>
#include <vector>

#include "net/message.hpp"

namespace srds {

/// Protocol logic of one honest party.
///
/// The simulator calls `on_round(r, inbox)` exactly once per synchronous
/// round; `inbox` holds the messages sent to this party in round r-1 (empty
/// in round 0). The return value is the party's outbox for round r.
///
/// Implementations must treat `inbox` as untrusted: any message may have been
/// crafted by the adversary. Malformed messages must be dropped, never cause
/// a throw that crosses this interface.
class Party {
 public:
  virtual ~Party() = default;

  virtual std::vector<Message> on_round(std::size_t round,
                                        const std::vector<Message>& inbox) = 0;

  /// True once the party has produced its final output.
  virtual bool done() const = 0;
};

/// The adversary controls all corrupted parties jointly and is *rushing*:
/// in each round it sees the honest parties' outgoing messages for that round
/// (full-information network) before choosing the corrupted parties' messages.
///
/// An *adaptive* adversary may additionally corrupt honest parties mid-run,
/// subject to the simulator's corruption budget (Simulator::
/// set_corruption_budget): at the start of each round the simulator asks for
/// `corruption_requests(round)` and grants them in order while budget
/// remains; each grant flips the party's slot to corrupt and hands the
/// seized party logic to `on_corrupted`. All requests must be derived
/// deterministically from (seed, round, party) so runs stay reproducible.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// `corrupt_inbox` — messages delivered this round to corrupted parties;
  /// `honest_outbox` — all messages honest parties are sending this round.
  /// Returns the corrupted parties' messages for this round (each message's
  /// `from` must be a corrupted party; the simulator enforces this).
  virtual std::vector<Message> on_round(std::size_t round,
                                        const std::vector<Message>& corrupt_inbox,
                                        const std::vector<Message>& honest_outbox) = 0;

  /// Parties this adversary wants to corrupt at the start of `round`,
  /// in priority order. Only consulted when a corruption budget is set;
  /// requests beyond the budget (or naming already-corrupt / crashed /
  /// out-of-range parties) are denied and counted, never granted.
  virtual std::vector<PartyId> corruption_requests(std::size_t round) {
    (void)round;
    return {};
  }

  /// A corruption request was granted: from `round` on, `party` is
  /// adversarial. `seized` is the party's protocol logic — its entire
  /// internal state is now visible to the adversary (read-only by
  /// convention; the simulator will never step it again). Messages already
  /// in flight to the party from earlier rounds still arrive — into the
  /// adversary's inbox.
  virtual void on_corrupted(std::size_t round, PartyId party, Party* seized) {
    (void)round;
    (void)party;
    (void)seized;
  }
};

/// An adversary whose corrupted parties stay silent (fail-stop-like).
class SilentAdversary final : public Adversary {
 public:
  std::vector<Message> on_round(std::size_t, const std::vector<Message>&,
                                const std::vector<Message>&) override {
    return {};
  }
};

}  // namespace srds

#include "net/simulator.hpp"

#include <stdexcept>

namespace srds {

Simulator::Simulator(std::vector<std::unique_ptr<Party>> parties, std::vector<bool> corrupt,
                     std::unique_ptr<Adversary> adversary)
    : parties_(std::move(parties)),
      corrupt_(std::move(corrupt)),
      adversary_(std::move(adversary)),
      stats_(parties_.size()) {
  if (corrupt_.size() != parties_.size()) {
    throw std::invalid_argument("Simulator: corrupt mask size mismatch");
  }
  for (PartyId i = 0; i < parties_.size(); ++i) {
    if (corrupt_[i] && parties_[i]) {
      throw std::invalid_argument("Simulator: corrupted slot must not hold honest logic");
    }
    if (!corrupt_[i] && !parties_[i]) {
      throw std::invalid_argument("Simulator: honest slot missing party logic");
    }
  }
  phase_stats_ = NetworkStats(parties_.size());
  if (!adversary_) adversary_ = std::make_unique<SilentAdversary>();
}

std::size_t Simulator::run(std::size_t max_rounds) {
  const std::size_t n = parties_.size();
  // inboxes[i] = messages to deliver to party i at the start of this round.
  std::vector<std::vector<Message>> inboxes(n);

  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool all_done = true;
    for (PartyId i = 0; i < n; ++i) {
      if (!corrupt_[i] && !parties_[i]->done()) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      stats_.rounds = round;
      return round;
    }

    std::vector<Message> honest_out;
    for (PartyId i = 0; i < n; ++i) {
      if (corrupt_[i]) continue;
      auto out = parties_[i]->on_round(round, inboxes[i]);
      for (auto& m : out) {
        if (m.from != i || m.to >= n) {
          throw std::logic_error("Simulator: honest party emitted ill-addressed message");
        }
        honest_out.push_back(std::move(m));
      }
    }

    // Rushing adversary: sees all honest traffic of this round, plus the
    // corrupted parties' inboxes, before choosing its own messages.
    std::vector<Message> corrupt_in;
    for (PartyId i = 0; i < n; ++i) {
      if (!corrupt_[i]) continue;
      for (auto& m : inboxes[i]) corrupt_in.push_back(std::move(m));
    }
    std::vector<Message> adv_out =
        adversary_->on_round(round, corrupt_in, honest_out);
    for (const auto& m : adv_out) {
      if (m.from >= n || !corrupt_[m.from] || m.to >= n) {
        // The adversary cannot spoof honest senders: channels are
        // authenticated. Ill-formed adversarial messages are dropped.
        continue;
      }
      honest_out.push_back(m);
    }

    for (auto& ib : inboxes) ib.clear();
    for (auto& m : honest_out) {
      // Loopback is free: a party "sending to itself" is local computation,
      // not network communication (standard accounting convention).
      if (m.from != m.to) {
        stats_.record(m);
        if (phase_mark_ && round >= *phase_mark_) phase_stats_.record(m);
      }
      inboxes[m.to].push_back(std::move(m));
    }
  }
  stats_.rounds = max_rounds;
  return max_rounds;
}

}  // namespace srds

#include "net/simulator.hpp"

#include <stdexcept>

#include "obs/prof.hpp"

namespace srds {

Simulator::Simulator(std::vector<std::unique_ptr<Party>> parties, std::vector<bool> corrupt,
                     std::unique_ptr<Adversary> adversary)
    : parties_(std::move(parties)),
      corrupt_(std::move(corrupt)),
      crashed_(parties_.size(), false),
      offline_(parties_.size(), false),
      adversary_(std::move(adversary)),
      stats_(parties_.size()) {
  if (corrupt_.size() != parties_.size()) {
    throw std::invalid_argument("Simulator: corrupt mask size mismatch");
  }
  // Construction-time invariant only: a slot that is *statically* corrupt
  // never holds honest logic. Adaptive corruption later flips corrupt_[i]
  // while parties_[i] keeps the seized logic (never stepped again, but its
  // outputs stay readable through party()).
  for (PartyId i = 0; i < parties_.size(); ++i) {
    if (corrupt_[i] && parties_[i]) {
      throw std::invalid_argument("Simulator: corrupted slot must not hold honest logic");
    }
    if (!corrupt_[i] && !parties_[i]) {
      throw std::invalid_argument("Simulator: honest slot missing party logic");
    }
  }
  phase_stats_ = NetworkStats(parties_.size());
  if (!adversary_) adversary_ = std::make_unique<SilentAdversary>();
}

void Simulator::set_fault_plan(const FaultPlan& plan) {
  plan_issues_ = validate_fault_plan(plan, parties_.size(), &corrupt_);
  for (const auto& issue : plan_issues_) {
    if (issue.severity == FaultPlanIssue::Severity::kError) {
      throw std::invalid_argument("Simulator::set_fault_plan: " + issue.what);
    }
  }
  injector_ = std::make_unique<FaultInjector>(plan, parties_.size());
}

// srds-lint: hotpath(Simulator::deliver) — runs once per message per round; must not allocate
// control structures, unwind, or type-erase (rule P1).
void Simulator::deliver(std::size_t round, Message m,
                        std::vector<std::vector<Message>>& inboxes) {
  PROF_SCOPE(obs::ProfSiteId::kSimDeliver);
  const bool in_phase = phase_mark_ && round >= *phase_mark_;
  for (obs::TraceSink* s : sinks_) s->on_send(round, m);
  if (!injector_) {
    stats_.record(m);
    if (in_phase) phase_stats_.record(m);
    for (obs::TraceSink* s : sinks_) s->on_delivery(round, m, obs::Delivery::kDelivered);
    inboxes[m.to].push_back(std::move(m));
    return;
  }

  // A receiver churned offline at the delivery round (round + 1) loses the
  // message outright; this is deterministic, so it consumes no fault
  // randomness. Corrupt slots are exempt — the adversary always receives.
  if (!corrupt_[m.to] && injector_->offline(m.to, round + 1)) {
    stats_.record_send(m);
    if (in_phase) phase_stats_.record_send(m);
    stats_.faults.churn_dropped += 1;
    for (obs::TraceSink* s : sinks_) s->on_delivery(round, m, obs::Delivery::kOffline);
    return;
  }

  FaultVerdict v = injector_->on_message(round, m);
  // The sender paid for the transmission whatever the network then does.
  stats_.record_send(m);
  if (in_phase) phase_stats_.record_send(m);

  if (!v.deliver) {
    if (v.partitioned) {
      stats_.faults.partitioned += 1;
      for (obs::TraceSink* s : sinks_) s->on_delivery(round, m, obs::Delivery::kPartitioned);
    } else {
      stats_.faults.dropped += 1;
      for (obs::TraceSink* s : sinks_) s->on_delivery(round, m, obs::Delivery::kDropped);
    }
    return;
  }
  if (v.delay > 0) {
    stats_.faults.delayed += 1;
    for (obs::TraceSink* s : sinks_) s->on_delivery(round, m, obs::Delivery::kDelayed);
    delayed_[round + 1 + v.delay].push_back(Pending{std::move(m), in_phase});
    return;
  }
  stats_.record_recv(m);
  if (in_phase) phase_stats_.record_recv(m);
  for (obs::TraceSink* s : sinks_) s->on_delivery(round, m, obs::Delivery::kDelivered);
  if (v.duplicate) {
    stats_.faults.duplicated += 1;
    stats_.record_recv(m);
    if (in_phase) phase_stats_.record_recv(m);
    for (obs::TraceSink* s : sinks_) s->on_delivery(round, m, obs::Delivery::kDuplicated);
    inboxes[m.to].push_back(m);
  }
  inboxes[m.to].push_back(std::move(m));
}

void Simulator::begin_run() {
  if (begun_) return;
  begun_ = true;
  inboxes_.resize(parties_.size());
  for (obs::TraceSink* s : sinks_) s->on_run_begin(parties_.size());
}

bool Simulator::tick() {
  PROF_SCOPE(obs::ProfSiteId::kSimRound);
  begin_run();
  const std::size_t n = parties_.size();
  const std::size_t round = cur_round_;

  // Crash-stop faults trigger at the start of their scheduled round.
  if (injector_) {
    for (PartyId i = 0; i < n; ++i) {
      if (!corrupt_[i] && !crashed_[i] && injector_->crashed(i, round)) {
        crashed_[i] = true;
        stats_.faults.crashed_parties += 1;
        for (obs::TraceSink* s : sinks_) s->on_crash(round, i);
      }
    }
  }

  // Churn transitions (leave/rejoin) observed at round boundaries. A
  // crashed party never transitions; a corrupt slot's churn is inert.
  if (injector_ && !injector_->plan().churn.empty()) {
    for (PartyId i = 0; i < n; ++i) {
      if (corrupt_[i] || crashed_[i]) continue;
      const bool off = injector_->offline(i, round);
      if (off != static_cast<bool>(offline_[i])) {
        offline_[i] = off;
        for (obs::TraceSink* s : sinks_) s->on_churn(round, i, !off);
      }
    }
  }

  // Adaptive corruption: grant the adversary's requests, in its priority
  // order, while budget remains. A grant flips the slot for the rest of
  // the run; the seized honest logic is handed to the adversary and never
  // stepped again. Denied requests (budget gone, bad/already-flipped/
  // crashed target) are counted, never retried by us.
  if (corruption_budget_ > 0 && adversary_) {
    for (PartyId p : adversary_->corruption_requests(round)) {
      if (p >= n || corrupt_[p] || crashed_[p] ||
          stats_.faults.adaptive_corruptions >= corruption_budget_) {
        stats_.faults.corruptions_denied += 1;
        continue;
      }
      corrupt_[p] = true;
      stats_.faults.adaptive_corruptions += 1;
      for (obs::TraceSink* s : sinks_) s->on_corrupt(round, p);
      adversary_->on_corrupted(round, p, parties_[p].get());
    }
  }

  // Deferred messages whose delay expires this round join the inbox —
  // unless the receiver is churned offline at the (re)delivery round.
  if (auto it = delayed_.find(round); it != delayed_.end()) {
    for (auto& p : it->second) {
      if (injector_ && !corrupt_[p.m.to] && injector_->offline(p.m.to, round)) {
        stats_.faults.churn_dropped += 1;
        for (obs::TraceSink* s : sinks_) s->on_delivery(round, p.m, obs::Delivery::kOffline);
        continue;
      }
      stats_.faults.late_delivered += 1;
      stats_.record_recv(p.m);
      if (p.in_phase) phase_stats_.record_recv(p.m);
      for (obs::TraceSink* s : sinks_) s->on_delivery(round, p.m, obs::Delivery::kLate);
      inboxes_[p.m.to].push_back(std::move(p.m));
    }
    delayed_.erase(it);
  }

  bool all_done = true;
  for (PartyId i = 0; i < n; ++i) {
    if (!corrupt_[i] && !crashed_[i] && !parties_[i]->done()) {
      all_done = false;
      break;
    }
  }
  if (all_done) return false;
  for (obs::TraceSink* s : sinks_) s->on_round_begin(round);

  std::vector<Message> honest_out;
  for (PartyId i = 0; i < n; ++i) {
    if (corrupt_[i] || crashed_[i]) continue;
    // Churned-offline parties neither execute nor send this round; their
    // protocol state is frozen until they rejoin.
    if (offline_[i]) continue;
    PROF_SCOPE(obs::ProfSiteId::kSimPartyStep);
    auto out = parties_[i]->on_round(round, inboxes_[i]);
    for (auto& m : out) {
      if (m.from != i || m.to >= n) {
        throw std::logic_error("Simulator: honest party emitted ill-addressed message");
      }
      honest_out.push_back(std::move(m));
    }
  }

  // Rushing adversary: sees all honest traffic of this round, plus the
  // corrupted parties' inboxes, before choosing its own messages.
  std::vector<Message> corrupt_in;
  for (PartyId i = 0; i < n; ++i) {
    if (!corrupt_[i]) continue;
    for (auto& m : inboxes_[i]) corrupt_in.push_back(std::move(m));
  }
  std::vector<Message> adv_out =
      adversary_->on_round(round, corrupt_in, honest_out);
  for (auto& m : adv_out) {
    // The adversary's messages are untrusted input to the network: it
    // cannot spoof honest senders (channels are authenticated), address
    // parties outside [0, n), or exceed the payload cap. Ill-formed
    // messages are dropped and counted — never indexed into stats.
    if (m.from >= n || !corrupt_[m.from] || m.to >= n ||
        m.payload.size() > max_adv_payload_) {
      stats_.faults.adversary_rejected += 1;
      continue;
    }
    honest_out.push_back(std::move(m));
  }

  for (auto& ib : inboxes_) ib.clear();
  for (auto& m : honest_out) {
    // Loopback is free: a party "sending to itself" is local computation,
    // not network communication (standard accounting convention). It is
    // also exempt from network faults.
    if (m.from == m.to) {
      inboxes_[m.to].push_back(std::move(m));
      continue;
    }
    deliver(round, std::move(m), inboxes_);
  }
  for (obs::TraceSink* s : sinks_) s->on_round_end(round);
  cur_round_ += 1;
  return true;
}

void Simulator::end_run() {
  if (ended_) return;
  ended_ = true;
  stats_.rounds = cur_round_;
  for (obs::TraceSink* s : sinks_) s->on_run_end(cur_round_);
}

std::size_t Simulator::run(std::size_t max_rounds) {
  begin_run();
  while (cur_round_ < max_rounds && tick()) {
  }
  end_run();
  return stats_.rounds;
}

}  // namespace srds

// Sub-protocol composition framework.
//
// The full BA protocol (paper Fig. 3) is a sequence of phases, several of
// which are themselves multi-round protocols run inside polylog-size
// committees (f_ba, f_ct, f_aggr-sig, Dolev-Strong broadcast, ...). Because
// the network is synchronous and every sub-protocol here has a *statically
// known* round count, all parties can compute the same global schedule:
// phase p occupies global rounds [start_p, start_p + duration_p).
//
// A `SubProtocol` is the per-party logic of one such embedded protocol.
// Its messages are bodies; the host party wraps them with a (phase, instance)
// tag so concurrent sub-protocols multiplex over the same channels.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/serial.hpp"
#include "net/message.hpp"

namespace srds {

/// A body received by a sub-protocol instance, with its authenticated sender.
struct TaggedMsg {
  PartyId from = 0;
  Bytes body;
};

/// Per-party logic of an embedded synchronous sub-protocol with a fixed
/// round schedule. `step` is called once per round while the instance is
/// active; call k (0-based) receives the bodies sent in call k-1.
class SubProtocol {
 public:
  virtual ~SubProtocol() = default;

  /// Number of `step` calls this protocol needs. Must be identical across
  /// all participants (it is derived from public parameters only).
  virtual std::size_t rounds() const = 0;

  /// Advance one round; returns (recipient, body) pairs.
  virtual std::vector<std::pair<PartyId, Bytes>> step(
      std::size_t subround, const std::vector<TaggedMsg>& inbox) = 0;

  /// Frames this protocol (or any protocol it composes) received but could
  /// not parse — e.g. a multiplexer's child-index header was truncated or out
  /// of range. Leaf protocols that do their own body validation may leave the
  /// default; composites must aggregate their children so the count surfaces
  /// in NetworkStats::faults.malformed_frames after the run.
  virtual std::uint64_t malformed_frames() const { return 0; }
};

/// Wrap a sub-protocol body with a channel tag.
inline Bytes tag_body(std::uint32_t phase, std::uint64_t instance, BytesView body) {
  Writer w;
  w.u32(phase);
  w.u64(instance);
  w.raw(body);
  return std::move(w).take();
}

/// Parse a tagged body. Returns false on malformed input.
inline bool untag_body(BytesView payload, std::uint32_t& phase, std::uint64_t& instance,
                       Bytes& body) {
  Reader r(payload);
  phase = r.u32();
  instance = r.u64();
  if (!r.ok()) return false;
  body = r.raw(r.remaining());
  return r.ok();
}

}  // namespace srds

#include "net/faults.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace srds {

namespace {

/// Derive an independent SplitMix64 state from a (seed, round, link, seq)
/// tuple. Each component is whitened before mixing so nearby tuples give
/// unrelated streams.
std::uint64_t derive(std::uint64_t seed, std::uint64_t round, std::uint64_t link,
                     std::uint64_t seq) {
  std::uint64_t s = seed;
  std::uint64_t a = round ^ 0x9e3779b97f4a7c15ULL;
  std::uint64_t b = link ^ 0xbf58476d1ce4e5b9ULL;
  std::uint64_t c = seq ^ 0x94d049bb133111ebULL;
  s ^= splitmix64(a);
  s ^= splitmix64(b);
  s ^= splitmix64(c);
  return splitmix64(s);
}

/// Map a 64-bit value to a uniform double in [0, 1).
double to_unit(std::uint64_t v) {
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

}  // namespace

std::vector<FaultPlanIssue> validate_fault_plan(const FaultPlan& plan, std::size_t n,
                                                const std::vector<bool>* corrupt) {
  std::vector<FaultPlanIssue> issues;
  auto error = [&](std::string what) {
    issues.push_back(FaultPlanIssue{FaultPlanIssue::Severity::kError, std::move(what)});
  };
  auto warn = [&](std::string what) {
    issues.push_back(FaultPlanIssue{FaultPlanIssue::Severity::kWarning, std::move(what)});
  };
  auto is_corrupt = [&](PartyId p) {
    return corrupt && p < corrupt->size() && (*corrupt)[p];
  };

  auto check_prob = [&](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      error(std::string(name) + " = " + std::to_string(p) + " outside [0, 1]");
    }
  };
  check_prob(plan.drop_prob, "drop_prob");
  check_prob(plan.delay_prob, "delay_prob");
  check_prob(plan.duplicate_prob, "duplicate_prob");
  if (plan.delay_prob > 0.0 && plan.max_delay == 0) {
    warn("delay_prob > 0 with max_delay == 0: delay faults are inactive");
  }

  for (const auto& o : plan.link_drops) {
    if (o.from >= n || o.to >= n) {
      error("link_drop override names out-of-range party " +
            std::to_string(o.from >= n ? o.from : o.to) + " (n = " + std::to_string(n) + ")");
    }
    check_prob(o.drop_prob, "link_drop.drop_prob");
  }

  for (const auto& c : plan.crashes) {
    if (c.party >= n) {
      error("crash entry names out-of-range party " + std::to_string(c.party) +
            " (n = " + std::to_string(n) + ")");
    } else if (is_corrupt(c.party)) {
      warn("crash entry for corrupt party " + std::to_string(c.party) +
           ": the adversary already controls that slot; the entry is inert");
    }
  }

  // Partitions: range-check every group member, and flag windows that are
  // degenerate (empty cut) or that overlap in time on the same cut — the
  // combined drop semantics of two identical concurrent cuts is well-defined
  // but almost certainly an authoring mistake.
  std::vector<std::pair<std::vector<PartyId>, std::size_t>> cuts;  // sorted group -> index
  for (std::size_t i = 0; i < plan.partitions.size(); ++i) {
    const PartitionWindow& w = plan.partitions[i];
    if (w.until_round <= w.from_round) {
      warn("partition window " + std::to_string(i) + " has until_round <= from_round; inert");
    }
    std::size_t in_range = 0;
    for (PartyId p : w.group) {
      if (p >= n) {
        error("partition window " + std::to_string(i) + " contains out-of-range party " +
              std::to_string(p) + " (n = " + std::to_string(n) + ")");
      } else {
        ++in_range;
      }
    }
    if (in_range == 0 || in_range >= n) {
      warn("partition window " + std::to_string(i) +
           " cuts nothing (group empty or covers every party)");
    }
    std::vector<PartyId> key(w.group.begin(), w.group.end());
    std::sort(key.begin(), key.end());
    key.erase(std::unique(key.begin(), key.end()), key.end());
    for (const auto& [other_key, j] : cuts) {
      if (other_key != key) continue;
      const PartitionWindow& o = plan.partitions[j];
      if (w.from_round < o.until_round && o.from_round < w.until_round) {
        warn("partition windows " + std::to_string(j) + " and " + std::to_string(i) +
             " overlap on the same cut; merge them into one window");
      }
    }
    cuts.emplace_back(std::move(key), i);
  }

  for (std::size_t i = 0; i < plan.churn.size(); ++i) {
    const ChurnWindow& w = plan.churn[i];
    if (w.party >= n) {
      error("churn window " + std::to_string(i) + " names out-of-range party " +
            std::to_string(w.party) + " (n = " + std::to_string(n) + ")");
    } else if (is_corrupt(w.party)) {
      warn("churn window " + std::to_string(i) + " for corrupt party " +
           std::to_string(w.party) + ": the adversary already controls that slot");
    }
    if (w.until_round <= w.from_round) {
      error("churn window " + std::to_string(i) + " has until_round <= from_round");
    }
  }
  return issues;
}

FaultInjector::FaultInjector(FaultPlan plan, std::size_t n)
    : plan_(std::move(plan)), n_(n), crash_round_(n) {
  for (const auto& c : plan_.crashes) {
    if (c.party >= n_) continue;
    if (!crash_round_[c.party].has_value() || *crash_round_[c.party] > c.round) {
      crash_round_[c.party] = c.round;
    }
  }
  for (const auto& o : plan_.link_drops) {
    if (o.from >= n_ || o.to >= n_) continue;
    link_override_[o.from * n_ + o.to] = o.drop_prob;
  }
  partition_side_.reserve(plan_.partitions.size());
  for (const auto& w : plan_.partitions) {
    std::vector<bool> side(n_, false);
    for (PartyId p : w.group) {
      if (p < n_) side[p] = true;
    }
    partition_side_.push_back(std::move(side));
  }
}

double FaultInjector::link_drop_prob(PartyId from, PartyId to) const {
  auto it = link_override_.find(from * n_ + to);
  return it != link_override_.end() ? it->second : plan_.drop_prob;
}

bool FaultInjector::crosses_partition(std::size_t round, PartyId from, PartyId to) const {
  // A crash-stopped party leaves every partition group: it has no network
  // position left to be on either side of a cut, so traffic addressed to
  // its (dead) mailbox is ordinary delivery, not a partition loss. Without
  // this, a crash inside a partitioned group kept attributing drops to the
  // cut for the rest of the window.
  if (crashed(from, round) || crashed(to, round)) return false;
  for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
    const auto& w = plan_.partitions[i];
    if (round < w.from_round || round >= w.until_round) continue;
    if (partition_side_[i][from] != partition_side_[i][to]) return true;
  }
  return false;
}

FaultVerdict FaultInjector::on_message(std::size_t round, const Message& m) {
  FaultVerdict v;
  if (m.from >= n_ || m.to >= n_) return v;

  // Partitions are deterministic: no randomness consumed.
  if (crosses_partition(round, m.from, m.to)) {
    v.deliver = false;
    v.partitioned = true;
    return v;
  }

  if (round != seq_round_) {
    seq_round_ = round;
    seq_.clear();
  }
  const std::uint64_t link = static_cast<std::uint64_t>(m.from) * n_ + m.to;
  const std::uint64_t seq = seq_[link]++;
  // A fixed number of draws per message, consumed in a fixed order, keeps
  // each fault class's decisions independent of the others' probabilities.
  std::uint64_t state = derive(plan_.seed, round, link, seq);
  const double drop_draw = to_unit(splitmix64(state));
  const double delay_draw = to_unit(splitmix64(state));
  const std::uint64_t delay_pick = splitmix64(state);
  const double dup_draw = to_unit(splitmix64(state));

  if (drop_draw < link_drop_prob(m.from, m.to)) {
    v.deliver = false;
    return v;
  }
  if (plan_.max_delay > 0 && delay_draw < plan_.delay_prob) {
    v.delay = 1 + static_cast<std::size_t>(delay_pick % plan_.max_delay);
  }
  if (dup_draw < plan_.duplicate_prob) {
    v.duplicate = true;
  }
  return v;
}

}  // namespace srds

#include "net/faults.hpp"

#include "common/rng.hpp"

namespace srds {

namespace {

/// Derive an independent SplitMix64 state from a (seed, round, link, seq)
/// tuple. Each component is whitened before mixing so nearby tuples give
/// unrelated streams.
std::uint64_t derive(std::uint64_t seed, std::uint64_t round, std::uint64_t link,
                     std::uint64_t seq) {
  std::uint64_t s = seed;
  std::uint64_t a = round ^ 0x9e3779b97f4a7c15ULL;
  std::uint64_t b = link ^ 0xbf58476d1ce4e5b9ULL;
  std::uint64_t c = seq ^ 0x94d049bb133111ebULL;
  s ^= splitmix64(a);
  s ^= splitmix64(b);
  s ^= splitmix64(c);
  return splitmix64(s);
}

/// Map a 64-bit value to a uniform double in [0, 1).
double to_unit(std::uint64_t v) {
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, std::size_t n)
    : plan_(std::move(plan)), n_(n), crash_round_(n) {
  for (const auto& c : plan_.crashes) {
    if (c.party >= n_) continue;
    if (!crash_round_[c.party].has_value() || *crash_round_[c.party] > c.round) {
      crash_round_[c.party] = c.round;
    }
  }
  for (const auto& o : plan_.link_drops) {
    if (o.from >= n_ || o.to >= n_) continue;
    link_override_[o.from * n_ + o.to] = o.drop_prob;
  }
  partition_side_.reserve(plan_.partitions.size());
  for (const auto& w : plan_.partitions) {
    std::vector<bool> side(n_, false);
    for (PartyId p : w.group) {
      if (p < n_) side[p] = true;
    }
    partition_side_.push_back(std::move(side));
  }
}

double FaultInjector::link_drop_prob(PartyId from, PartyId to) const {
  auto it = link_override_.find(from * n_ + to);
  return it != link_override_.end() ? it->second : plan_.drop_prob;
}

bool FaultInjector::crosses_partition(std::size_t round, PartyId from, PartyId to) const {
  for (std::size_t i = 0; i < plan_.partitions.size(); ++i) {
    const auto& w = plan_.partitions[i];
    if (round < w.from_round || round >= w.until_round) continue;
    if (partition_side_[i][from] != partition_side_[i][to]) return true;
  }
  return false;
}

FaultVerdict FaultInjector::on_message(std::size_t round, const Message& m) {
  FaultVerdict v;
  if (m.from >= n_ || m.to >= n_) return v;

  // Partitions are deterministic: no randomness consumed.
  if (crosses_partition(round, m.from, m.to)) {
    v.deliver = false;
    v.partitioned = true;
    return v;
  }

  if (round != seq_round_) {
    seq_round_ = round;
    seq_.clear();
  }
  const std::uint64_t link = static_cast<std::uint64_t>(m.from) * n_ + m.to;
  const std::uint64_t seq = seq_[link]++;
  // A fixed number of draws per message, consumed in a fixed order, keeps
  // each fault class's decisions independent of the others' probabilities.
  std::uint64_t state = derive(plan_.seed, round, link, seq);
  const double drop_draw = to_unit(splitmix64(state));
  const double delay_draw = to_unit(splitmix64(state));
  const std::uint64_t delay_pick = splitmix64(state);
  const double dup_draw = to_unit(splitmix64(state));

  if (drop_draw < link_drop_prob(m.from, m.to)) {
    v.deliver = false;
    return v;
  }
  if (plan_.max_delay > 0 && delay_draw < plan_.delay_prob) {
    v.delay = 1 + static_cast<std::size_t>(delay_pick % plan_.max_delay);
  }
  if (dup_draw < plan_.duplicate_prob) {
    v.duplicate = true;
  }
  return v;
}

}  // namespace srds

// Message and party-identity vocabulary for the synchronous network.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace srds {

/// Index of a party in [0, n).
using PartyId = std::size_t;

/// A point-to-point message. Delivery is synchronous: a message sent in
/// round r is delivered at the beginning of round r+1.
struct Message {
  PartyId from = 0;
  PartyId to = 0;
  Bytes payload;
};

}  // namespace srds

// Shim: the Message/PartyId/MsgKind vocabulary moved to common/message.hpp
// so the obs tracing sinks can name Message without a net dependency (obs
// must stay includable from every layer — see tools/srds-lint/layers.toml).
// Network code keeps including "net/message.hpp"; the definitions are
// identical.
#pragma once

#include "common/message.hpp"

// Synchronous network simulator.
//
// Executes n parties in lockstep rounds over a complete point-to-point
// network with authenticated channels (the receiver learns the true sender
// identity — the standard model of the paper; cryptographic authentication
// *within* payloads is still needed for transferable authentication, e.g.,
// Dolev-Strong). The adversary statically corrupts a subset of parties and is
// rushing; with `set_corruption_budget` it becomes *adaptive* and may flip
// honest parties mid-run (the seized party's state becomes visible to it,
// future traffic to the slot is rerouted into the adversary's inbox, and
// messages already in flight from earlier rounds still arrive). All
// communication costs are accounted in `NetworkStats`.
//
// Optionally the network itself misbehaves: `set_fault_plan` installs a
// seeded, deterministic fault-injection layer (drops, bounded delays,
// duplication, crash-stop faults, partitions, churn — see net/faults.hpp).
// Without a plan, delivery is perfect and behavior is identical to the
// paper's model. Plans are validated on installation: structurally invalid
// plans throw, suspicious-but-legal ones surface findings via plan_issues().
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/faults.hpp"
#include "net/protocol.hpp"
#include "net/stats.hpp"
#include "obs/trace.hpp"

namespace srds {

class Simulator {
 public:
  /// `parties[i]` must be non-null exactly for honest parties; corrupted
  /// slots are driven by `adversary` (nullptr = silent).
  Simulator(std::vector<std::unique_ptr<Party>> parties, std::vector<bool> corrupt,
            std::unique_ptr<Adversary> adversary);

  /// Install a fault plan. Call before run(). The plan is validated against
  /// this network first (see validate_fault_plan): a structurally invalid
  /// plan throws std::invalid_argument naming the first error; warnings are
  /// retained and queryable via plan_issues() — never silently ignored.
  void set_fault_plan(const FaultPlan& plan);

  /// Findings from validating the most recently installed fault plan
  /// (warnings only — errors threw out of set_fault_plan).
  const std::vector<FaultPlanIssue>& plan_issues() const { return plan_issues_; }

  /// Enable adaptive corruption: the adversary's corruption_requests() are
  /// consulted at the start of every round and granted — flipping the named
  /// honest party to corrupt for the rest of the run — until `budget` grants
  /// have been spent. 0 (the default) disables adaptive corruption entirely;
  /// requests are then never solicited. Call before run().
  void set_corruption_budget(std::size_t budget) { corruption_budget_ = budget; }
  std::size_t corruption_budget() const { return corruption_budget_; }

  /// Cap on adversary message payloads; larger payloads are rejected (and
  /// counted in stats().faults.adversary_rejected). Honest parties are
  /// trusted code and exempt.
  void set_max_adversary_payload(std::size_t bytes) { max_adv_payload_ = bytes; }

  /// Install an observability sink (non-owning; must outlive run()),
  /// replacing any previously installed sinks. The sink sees round
  /// boundaries, every accepted send and every delivery outcome — nullptr
  /// clears the set and costs nothing. Call before run().
  void set_trace_sink(obs::TraceSink* sink) {
    sinks_.clear();
    add_trace_sink(sink);
  }

  /// Add a sink alongside any already installed (e.g., a RoundTracer and an
  /// obs::Ledger observing the same run). Events fan out to every sink in
  /// installation order; nullptr is ignored. Call before run().
  void add_trace_sink(obs::TraceSink* sink) {
    if (sink) sinks_.push_back(sink);
  }

  /// Run until every live honest party reports done() or `max_rounds`
  /// elapse. Crash-stopped parties count as done. Returns the number of
  /// rounds executed. Implemented on top of the incremental API below;
  /// behavior (stats, trace events, determinism) is identical to the
  /// historical closed loop.
  std::size_t run(std::size_t max_rounds);

  // --- Incremental driving -------------------------------------------------
  //
  // A long-lived caller (the svc daemon) interleaves its own work between
  // rounds: mutate party state via party(i) (e.g. admit a new request into an
  // InstancePipeline), then tick(). The round preamble — crash-stop faults,
  // churn transitions, adaptive corruption grants, expired delayed
  // redeliveries — runs inside tick() exactly as it does inside run().

  /// Execute one round. Returns false — without executing — if every live
  /// honest party is done() (the preamble for the round still runs first,
  /// matching run()'s order); returns true after a round actually executed.
  bool tick();

  /// Stamp stats().rounds with the current round and emit on_run_end.
  /// Idempotent. run() == { while tick() under max_rounds; end_run(); }.
  void end_run();

  /// Next round tick() would execute (== rounds executed so far).
  std::size_t current_round() const { return cur_round_; }

  /// Additionally account messages sent from round `round` onward into a
  /// separate `phase_stats()` bucket (e.g., to isolate a protocol's boost
  /// phase from its shared front end). Call before run().
  void set_phase_mark(std::size_t round) { phase_mark_ = round; }

  const NetworkStats& stats() const { return stats_; }
  /// Stats restricted to rounds >= the phase mark (empty if no mark set).
  const NetworkStats& phase_stats() const { return phase_stats_; }
  std::size_t n() const { return parties_.size(); }
  /// True if party i is adversarial *now* — statically corrupted at
  /// construction, or adaptively corrupted during the run. Query after run()
  /// for the final mask (honest-cost accounting must use this, not the
  /// static mask the run started from).
  bool is_corrupt(PartyId i) const { return corrupt_[i]; }
  /// True if party i crash-stopped during the run (always false without a
  /// fault plan).
  bool is_crashed(PartyId i) const { return crashed_[i]; }

  /// Access a party's logic after the run (to read outputs).
  Party* party(PartyId i) { return parties_[i].get(); }
  const Party* party(PartyId i) const { return parties_[i].get(); }

  static constexpr std::size_t kDefaultMaxAdversaryPayload = 1u << 20;

 private:
  /// Route one accepted outgoing message through the fault layer into
  /// `inboxes` / the delayed queue, with full accounting.
  void deliver(std::size_t round, Message m,
               std::vector<std::vector<Message>>& inboxes);

  /// First-tick setup: size the inboxes and emit on_run_begin (idempotent).
  void begin_run();

  std::vector<std::unique_ptr<Party>> parties_;
  std::vector<bool> corrupt_;
  std::vector<bool> crashed_;
  std::vector<bool> offline_;  // churn state last observed, for transitions
  std::unique_ptr<Adversary> adversary_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<FaultPlanIssue> plan_issues_;
  std::size_t corruption_budget_ = 0;
  std::vector<obs::TraceSink*> sinks_;  // fan-out set, installation order
  std::size_t max_adv_payload_ = kDefaultMaxAdversaryPayload;
  NetworkStats stats_;
  NetworkStats phase_stats_;
  std::optional<std::size_t> phase_mark_;

  struct Pending {
    Message m;
    bool in_phase = false;  // sent at/after the phase mark
  };
  std::map<std::size_t, std::vector<Pending>> delayed_;  // delivery round -> msgs

  // Incremental-driving state. inboxes_[i] = messages to deliver to party i
  // at the start of the next tick.
  std::vector<std::vector<Message>> inboxes_;
  std::size_t cur_round_ = 0;
  bool begun_ = false;
  bool ended_ = false;
};

}  // namespace srds

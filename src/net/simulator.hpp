// Synchronous network simulator.
//
// Executes n parties in lockstep rounds over a complete point-to-point
// network with authenticated channels (the receiver learns the true sender
// identity — the standard model of the paper; cryptographic authentication
// *within* payloads is still needed for transferable authentication, e.g.,
// Dolev-Strong). The adversary statically corrupts a subset of parties and is
// rushing. All communication costs are accounted in `NetworkStats`.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/protocol.hpp"
#include "net/stats.hpp"

namespace srds {

class Simulator {
 public:
  /// `parties[i]` must be non-null exactly for honest parties; corrupted
  /// slots are driven by `adversary` (nullptr = silent).
  Simulator(std::vector<std::unique_ptr<Party>> parties, std::vector<bool> corrupt,
            std::unique_ptr<Adversary> adversary);

  /// Run until every honest party reports done() or `max_rounds` elapse.
  /// Returns the number of rounds executed.
  std::size_t run(std::size_t max_rounds);

  /// Additionally account messages sent from round `round` onward into a
  /// separate `phase_stats()` bucket (e.g., to isolate a protocol's boost
  /// phase from its shared front end). Call before run().
  void set_phase_mark(std::size_t round) { phase_mark_ = round; }

  const NetworkStats& stats() const { return stats_; }
  /// Stats restricted to rounds >= the phase mark (empty if no mark set).
  const NetworkStats& phase_stats() const { return phase_stats_; }
  std::size_t n() const { return parties_.size(); }
  bool is_corrupt(PartyId i) const { return corrupt_[i]; }

  /// Access a party's logic after the run (to read outputs).
  Party* party(PartyId i) { return parties_[i].get(); }
  const Party* party(PartyId i) const { return parties_[i].get(); }

 private:
  std::vector<std::unique_ptr<Party>> parties_;
  std::vector<bool> corrupt_;
  std::unique_ptr<Adversary> adversary_;
  NetworkStats stats_;
  NetworkStats phase_stats_;
  std::optional<std::size_t> phase_mark_;
};

}  // namespace srds

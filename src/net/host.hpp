// Host party that runs a single SubProtocol on the simulator.
//
// Used by tests and by standalone protocol drivers: the sub-protocol's
// bodies are wrapped with a fixed (phase=0, instance) tag and stepped once
// per global round. Production protocols (π_ba) embed sub-protocols with
// their own scheduling instead.
#pragma once

#include <memory>
#include <optional>

#include "net/protocol.hpp"
#include "net/subproto.hpp"

namespace srds {

class SubProtocolHost final : public Party {
 public:
  SubProtocolHost(PartyId me, std::unique_ptr<SubProtocol> proto,
                  std::uint64_t instance = 0)
      : me_(me), proto_(std::move(proto)), instance_(instance) {}

  std::vector<Message> on_round(std::size_t round,
                                const std::vector<Message>& inbox) override {
    if (round >= proto_->rounds()) {
      done_ = true;
      return {};
    }
    std::vector<TaggedMsg> bodies;
    for (const auto& m : inbox) {
      std::uint32_t phase;
      std::uint64_t inst;
      Bytes body;
      if (untag_body(m.payload, phase, inst, body) && phase == 0 && inst == instance_) {
        bodies.push_back(TaggedMsg{m.from, std::move(body)});
      }
    }
    auto outs = proto_->step(round, bodies);
    std::vector<Message> msgs;
    msgs.reserve(outs.size());
    for (auto& [to, body] : outs) {
      msgs.push_back(Message{me_, to, tag_body(0, instance_, body)});
    }
    if (round + 1 >= proto_->rounds()) done_ = true;
    return msgs;
  }

  bool done() const override { return done_; }

  SubProtocol* protocol() { return proto_.get(); }

 private:
  PartyId me_;
  std::unique_ptr<SubProtocol> proto_;
  std::uint64_t instance_;
  bool done_ = false;
};

}  // namespace srds

// Attack campaigns — named, reusable adaptive-adversary strategies.
//
// A campaign is an Adversary that spends the simulator's corruption budget
// (Simulator::set_corruption_budget) according to a plan: which honest
// parties to flip, when, and what the flipped coalition then does on the
// wire. This header holds the protocol-agnostic base: the campaign taxonomy,
// the deterministic decision hash, and CampaignAdversary — bookkeeping for
// scheduled corruption requests and the set of slots actually granted.
// Protocol-aware campaigns (they need the communication tree, committees and
// the signature registry) live one layer up, in src/ba/attack.*.
//
// Determinism contract: every adaptive decision a campaign makes — target
// selection, timing, which lie to tell — must be a pure function of
// (seed, round, party) via campaign_hash, never of wall-clock, pointer
// values or container iteration order. This is what keeps chaos runs
// replayable (same seed ⇒ byte-identical NetworkStats/Ledger) and is relied
// on by the trace determinism guard and the resilience-frontier bench gate.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/protocol.hpp"

namespace srds {

/// The campaign taxonomy exercised by tests and bench/fig_resilience.
enum class CampaignKind : std::uint8_t {
  kNone,           // no adaptive adversary
  kEclipse,        // cut chosen honest parties off from their comm-tree peers
  kTakeover,       // corrupt supreme-committee members as results become visible
  kPartitionHeal,  // partition the network, heal it during the boost phase
};

inline const char* campaign_name(CampaignKind k) {
  switch (k) {
    case CampaignKind::kNone: return "none";
    case CampaignKind::kEclipse: return "eclipse";
    case CampaignKind::kTakeover: return "takeover";
    case CampaignKind::kPartitionHeal: return "partition_heal";
  }
  return "?";
}

/// The one randomness source campaigns are allowed: an independent 64-bit
/// value per (seed, round, party) tuple, SplitMix64-whitened per component
/// so nearby tuples give unrelated streams (same construction as the fault
/// injector's per-link derivation in net/faults.cpp).
std::uint64_t campaign_hash(std::uint64_t seed, std::uint64_t round, std::uint64_t party);

/// Base class for budgeted adaptive adversaries. Derived campaigns populate
/// a (round -> parties) corruption schedule up front or as the run reveals
/// information, and react to grants via on_granted(). The base keeps the
/// authoritative view of which slots the campaign controls: the static
/// corrupt mask it started from plus every granted adaptive flip.
class CampaignAdversary : public Adversary {
 public:
  CampaignAdversary(std::vector<bool> static_corrupt, std::uint64_t seed)
      : controlled_(std::move(static_corrupt)), seed_(seed) {}

  std::vector<PartyId> corruption_requests(std::size_t round) final {
    auto it = schedule_.find(round);
    return it != schedule_.end() ? it->second : std::vector<PartyId>{};
  }

  void on_corrupted(std::size_t round, PartyId party, Party* seized) final {
    if (party < controlled_.size()) controlled_[party] = true;
    granted_ += 1;
    on_granted(round, party, seized);
  }

  /// Slots this campaign currently speaks for (static + granted adaptive).
  const std::vector<bool>& controlled() const { return controlled_; }
  bool controls(PartyId p) const { return p < controlled_.size() && controlled_[p]; }
  /// Number of adaptive grants received so far.
  std::size_t granted() const { return granted_; }

  /// Default: the coalition stays silent. Campaigns override.
  std::vector<Message> on_round(std::size_t round, const std::vector<Message>& corrupt_inbox,
                                const std::vector<Message>& honest_outbox) override {
    (void)round;
    (void)corrupt_inbox;
    (void)honest_outbox;
    return {};
  }

 protected:
  /// Ask the simulator to corrupt `party` at the start of `round` (queued;
  /// granted only if budget remains then). Idempotent per (round, party).
  void schedule_corruption(std::size_t round, PartyId party) {
    auto& at = schedule_[round];
    for (PartyId q : at) {
      if (q == party) return;
    }
    at.push_back(party);
  }

  /// A scheduled corruption was granted; `seized` is the captured honest
  /// logic (valid for the simulator's lifetime).
  virtual void on_granted(std::size_t round, PartyId party, Party* seized) {
    (void)round;
    (void)party;
    (void)seized;
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::vector<bool> controlled_;
  std::uint64_t seed_;
  std::size_t granted_ = 0;
  std::map<std::size_t, std::vector<PartyId>> schedule_;  // round -> targets
};

}  // namespace srds

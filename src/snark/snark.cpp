#include "snark/snark.hpp"

#include <cstring>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace srds {

namespace {

SnarkProof make_tag(const Bytes& key, std::uint64_t predicate_id, BytesView statement) {
  Writer w;
  w.u64(predicate_id);
  w.bytes(statement);
  Digest a = hmac_sha256(key, w.data());
  Writer w2;
  w2.u64(predicate_id ^ 0x736e61726b32ULL);
  w2.bytes(statement);
  Digest b = hmac_sha256(key, w2.data());
  SnarkProof p;
  std::memcpy(p.v.data(), a.v.data(), 32);
  std::memcpy(p.v.data() + 32, b.v.data(), 32);
  return p;
}

}  // namespace

SnarkProof SnarkProof::from(BytesView b) {
  SnarkProof p;
  std::size_t n = b.size() < kSize ? b.size() : kSize;
  std::memcpy(p.v.data(), b.data(), n);
  return p;
}

bool VerifierHandle::verify(BytesView statement, const SnarkProof& proof) const {
  return make_tag(*key_, predicate_id_, statement) == proof;
}

std::optional<SnarkProof> ProverHandle::prove(BytesView statement, BytesView witness,
                                              const std::vector<PriorMessage>& priors) const {
  // PCD compliance: all incoming edges must carry valid proofs.
  VerifierHandle v(key_, predicate_id_);
  for (const auto& prior : priors) {
    if (!v.verify(prior.statement, prior.proof)) return std::nullopt;
  }
  if (!predicate_(statement, witness, priors)) return std::nullopt;
  return make_tag(*key_, predicate_id_, statement);
}

SnarkOracle::SnarkOracle(std::uint64_t crs_seed) {
  Rng rng(crs_seed ^ 0x736e61726b6f7261ULL);
  key_ = std::make_shared<const Bytes>(rng.bytes(32));
}

ProverHandle SnarkOracle::register_predicate(CompliancePredicate predicate) {
  return ProverHandle(key_, next_predicate_id_++, std::move(predicate));
}

}  // namespace srds

// Simulated SNARK / proof-carrying-data (PCD) system.
//
// The paper's bare-PKI SRDS construction (Theorem 2.8) relies on SNARKs with
// linear extraction, recursively composed into a PCD system over the
// O(log n / log log n)-depth communication tree (via Bitansky et al., STOC'13).
// No proving backend exists offline, so — per DESIGN.md substitution S1 — we
// implement a *designated-oracle* simulation that preserves every property
// the distributed protocol and the experiments observe:
//
//   * succinctness  — proofs are a fixed 64 bytes regardless of witness size
//                     or recursion depth (this is what the communication
//                     measurements depend on);
//   * completeness  — Prove() succeeds exactly when the compliance predicate
//                     accepts the (statement, witness, prior-proof) triple;
//   * soundness     — proofs are HMAC tags under a trapdoor key held inside
//                     `SnarkOracle`. Parties and adversaries only receive
//                     `ProverHandle` / `VerifierHandle` capabilities, so no
//                     protocol participant can mint a tag for a statement
//                     whose predicate it did not satisfy;
//   * recursion     — Prove() takes prior proofs and verifies them before
//                     issuing a new tag, mirroring PCD compliance.
//
// The trapdoor key corresponds to the SNARK's structured reference string
// generation; the oracle object is the analogue of "the CRS was honestly
// sampled". An adversary breaking our simulation would need to forge HMAC,
// which is outside the simulated adversary's interface — mirroring how a real
// SNARK adversary would need to break the knowledge assumption.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

/// A succinct proof: constant 64 bytes.
struct SnarkProof {
  std::array<std::uint8_t, 64> v{};

  bool operator==(const SnarkProof&) const = default;

  Bytes to_bytes() const { return Bytes(v.begin(), v.end()); }
  static SnarkProof from(BytesView b);
  static constexpr std::size_t kSize = 64;
};

/// One edge of a PCD transcript: a statement proven earlier plus its proof.
struct PriorMessage {
  Bytes statement;
  SnarkProof proof;
};

/// Compliance predicate C(statement, witness, priors): does `statement`
/// follow from local witness data and the previously-proven statements?
using CompliancePredicate =
    std::function<bool(BytesView statement, BytesView witness,
                       const std::vector<PriorMessage>& priors)>;

class SnarkOracle;

/// Capability to verify proofs for one predicate. Freely copyable; safe to
/// hand to adversaries.
class VerifierHandle {
 public:
  bool verify(BytesView statement, const SnarkProof& proof) const;

 private:
  friend class SnarkOracle;
  friend class ProverHandle;
  VerifierHandle(std::shared_ptr<const Bytes> key, std::uint64_t predicate_id)
      : key_(std::move(key)), predicate_id_(predicate_id) {}

  std::shared_ptr<const Bytes> key_;
  std::uint64_t predicate_id_;
};

/// Capability to produce proofs for one predicate. Prove() enforces the
/// predicate — a holder cannot obtain a proof for a false statement.
class ProverHandle {
 public:
  /// Returns a proof iff the predicate accepts; std::nullopt otherwise.
  std::optional<SnarkProof> prove(BytesView statement, BytesView witness,
                                  const std::vector<PriorMessage>& priors) const;

  VerifierHandle verifier() const { return VerifierHandle(key_, predicate_id_); }

 private:
  friend class SnarkOracle;
  ProverHandle(std::shared_ptr<const Bytes> key, std::uint64_t predicate_id,
               CompliancePredicate predicate)
      : key_(std::move(key)), predicate_id_(predicate_id), predicate_(std::move(predicate)) {}

  std::shared_ptr<const Bytes> key_;
  std::uint64_t predicate_id_;
  CompliancePredicate predicate_;
};

/// The trusted setup. Constructed once per experiment from a seed (the CRS);
/// registers compliance predicates and hands out capabilities.
class SnarkOracle {
 public:
  explicit SnarkOracle(std::uint64_t crs_seed);

  /// Register a compliance predicate; returns the prover capability.
  ProverHandle register_predicate(CompliancePredicate predicate);

 private:
  std::shared_ptr<const Bytes> key_;
  std::uint64_t next_predicate_id_ = 1;
};

}  // namespace srds

// Certified top-down dissemination — step 6 of Fig. 3: the supreme
// committee pushes (y, s, σ_root) to (almost) all parties.
//
// Unlike the plain (y, s) dissemination, the certificate σ needs no voting:
// it is *self-certifying* — a receiver accepts any σ that verifies against
// the (y, s) it carries, and unforgeability guarantees no valid σ exists
// for a wrong value. The protocol exploits this split:
//   * the small (y, s) value is forwarded to every member of every child
//     committee and adopted by per-node majority (exactly like
//     DisseminationProto), and
//   * the certificate — Õ(1) but with a chunky poly(κ) constant for the
//     OWF-based SRDS — is forwarded with sparse redundancy: each member
//     sends σ to only `redundancy` members of each child (deterministic
//     rotation), so per-edge certificate copies drop from k² to ρ·k.
// A member missing σ (all its ρ sources corrupt, probability β^ρ) still
// votes and forwards (y, s); receivers that end without a certificate are
// picked up by the PRF round (step 7). Safety is unconditional — only
// availability relies on redundancy, and bench/fig_security_games and the
// integration tests measure it.
//
// Retransmission (`retries` > 0): under a lossy network (net/faults.hpp),
// each committee member re-sends its forwarding for up to `retries` extra
// rounds, and a member whose copy only arrived late forwards as soon as it
// can. Receivers deduplicate per (node, sender), so retransmits never skew
// tallies; they only recover deliveries the network lost. The schedule
// stretches to height + 1 + retries rounds — all parties derive the same
// schedule from public parameters.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "net/subproto.hpp"
#include "tree/comm_tree.hpp"

namespace srds {

class CertifiedDissemProto final : public SubProtocol {
 public:
  /// Validator: is `sigma` a valid certificate for `value`? (Typically
  /// scheme->verify(value, sigma).)
  using Validator = std::function<bool(BytesView value, BytesView sigma)>;

  CertifiedDissemProto(std::shared_ptr<const CommTree> tree, PartyId me,
                       std::optional<Bytes> initial_value, Bytes initial_sigma,
                       Validator validator, std::size_t redundancy = 3,
                       std::size_t retries = 0);

  std::size_t rounds() const override { return tree_->height() + 1 + retries_; }

  std::vector<std::pair<PartyId, Bytes>> step(
      std::size_t subround, const std::vector<TaggedMsg>& inbox) override;

  /// Final (value, certificate). The certificate is empty if none valid
  /// arrived; the value is empty if nothing arrived at all.
  const std::optional<Bytes>& value() const { return value_; }
  const Bytes& certificate() const { return certificate_; }

 private:
  std::shared_ptr<const CommTree> tree_;
  PartyId me_;
  std::optional<Bytes> initial_value_;
  Bytes initial_sigma_;
  Validator validator_;
  std::size_t redundancy_;
  std::size_t retries_;

  std::optional<Bytes> value_;
  Bytes certificate_;

  std::map<std::uint64_t, std::map<Bytes, std::size_t>> tallies_;  // per node
  std::map<std::uint64_t, Bytes> node_sigma_;  // first valid σ seen per node
  std::set<std::pair<std::uint64_t, PartyId>> counted_;
  std::map<Bytes, std::size_t> party_tally_;
  std::vector<std::vector<std::size_t>> my_nodes_by_level_;
  std::map<std::uint64_t, std::size_t> my_seat_;  // node id -> my committee seat
};

}  // namespace srds

#include "ba/pi_ba.hpp"

#include <algorithm>

#include "common/serial.hpp"
#include "crypto/prf.hpp"
#include "mpc/aggregation.hpp"

namespace srds {

namespace {

/// Read the instance prefix the base class attached to boost bodies.
bool split_instance(const TaggedMsg& msg, std::uint64_t& instance, Bytes& body) {
  Reader r(msg.body);
  instance = r.u64();
  if (!r.ok()) return false;
  body = r.raw(r.remaining());
  return r.ok();
}

}  // namespace

PiBaParty::PiBaParty(PiBaConfig config, PartyId me, bool input)
    : AeBoostParty(config.ae, me, input), cfg2_(std::move(config)) {
  prf_fanout_ = cfg2_.prf_fanout ? cfg2_.prf_fanout
                                 : cfg2_.ae.tree->params().committee_size;
}

obs::Budget PiBaParty::boost_budget() const {
  // Calibrated against seeded fault-free runs at n in [512, 2048] (see
  // docs/observability.md for the measured margins); the separation test in
  // tests/budget_test.cpp pins the SNARK constant against BGT'13.
  if (cfg2_.scheme && cfg2_.scheme->bare_pki()) {
    return {.c = 19'500, .k = 2, .min_n = 512};  // SNARK-SRDS
  }
  return {.c = 52'000, .k = 2, .min_n = 512};  // OWF-SRDS (sortition proofs)
}

std::size_t PiBaParty::boost_rounds() const {
  const std::size_t h = cfg2_.ae.tree->height();
  // step4 (1) + step5 (h) + step6 (h+1+retries) + step7 (1) + step8 ingest (1).
  return 1 + h + (h + 1 + cfg2_.dissem_retries) + 1 + 1;
}

// srds-lint: shard-root(PiBaParty::boost_step) — the boost-phase round
// body; everything it reaches must be shardable (rule C1).
std::vector<Message> PiBaParty::boost_step(std::size_t k,
                                           const std::vector<TaggedMsg>& inbox) {
  const std::size_t h = cfg2_.ae.tree->height();
  const std::size_t dissem_rounds = h + 1 + cfg2_.dissem_retries;

  if (k == 0) return step_sign_and_send();
  if (k >= 1 && k <= h) return step_aggregate(k, inbox);

  const std::size_t dissem_base = h + 1;
  if (k >= dissem_base && k < dissem_base + dissem_rounds) {
    std::size_t sub = k - dissem_base;
    if (sub == 0) {
      // Root members seed the certified dissemination with (y, s, σ_root).
      std::optional<Bytes> init;
      Bytes sigma;
      if (in_supreme_committee() && ae_blob().has_value()) {
        init = *ae_blob();
        sigma = sigma_root_;
      }
      const SrdsScheme* scheme = cfg2_.scheme.get();
      cert_dissem_ = std::make_unique<CertifiedDissemProto>(
          cfg2_.ae.tree, me(), std::move(init), std::move(sigma),
          [scheme](BytesView value, BytesView cert) {
            return scheme->verify(value, cert);
          },
          cfg2_.certificate_redundancy, cfg2_.dissem_retries);
    }
    std::vector<TaggedMsg> dissem_in;
    for (const auto& msg : inbox) {
      std::uint64_t instance;
      Bytes body;
      if (split_instance(msg, instance, body) && instance == kDissemInstance) {
        dissem_in.push_back(TaggedMsg{msg.from, std::move(body)});
      }
    }
    auto msgs = cert_dissem_->step(sub, dissem_in);
    std::vector<Message> out;
    out.reserve(msgs.size());
    for (auto& [to, body] : msgs) {
      out.push_back(make_boost_message(to, kDissemInstance, body, MsgKind::kBoostCert));
    }
    if (sub + 1 == dissem_rounds) {
      // Dissemination finished; fix my certified pair if valid.
      if (cert_dissem_->value().has_value() && !cert_dissem_->certificate().empty()) {
        certified_blob_ = cert_dissem_->value();
        certificate_ = cert_dissem_->certificate();
      }
    }
    return out;
  }

  if (k == dissem_base + dissem_rounds) return step_prf_send();
  if (k == dissem_base + dissem_rounds + 1) {
    ingest_prf(inbox);
    return {};
  }
  return {};
}

std::vector<Message> PiBaParty::step_sign_and_send() {
  std::vector<Message> out;
  if (!ae_blob().has_value()) return out;  // isolated: nothing to sign with
  const CommTree& tree = *cfg2_.ae.tree;
  for (std::uint64_t vid : tree.virtuals_of(me())) {
    Bytes sig = cfg2_.scheme->sign(vid, *ae_blob());
    if (sig.empty()) continue;  // ⊥ (e.g., OWF-SRDS sortition loser)
    std::size_t leaf = tree.leaf_of_virtual(vid);
    const TreeNode& node = tree.node(leaf);
    // Send to every party assigned to the leaf (its committee), deduped.
    std::vector<PartyId> recipients(node.committee.begin(), node.committee.end());
    std::sort(recipients.begin(), recipients.end());
    recipients.erase(std::unique(recipients.begin(), recipients.end()), recipients.end());
    for (PartyId p : recipients) {
      out.push_back(make_boost_message(p, leaf, sig, MsgKind::kBoostSign));
    }
  }
  return out;
}

void PiBaParty::ingest_aggregation(const std::vector<TaggedMsg>& inbox, std::size_t level) {
  const CommTree& tree = *cfg2_.ae.tree;
  for (const auto& msg : inbox) {
    std::uint64_t instance;
    Bytes body;
    if (!split_instance(msg, instance, body)) continue;
    if (instance >= tree.node_count()) continue;
    const TreeNode& node = tree.node(instance);
    if (node.level != level) continue;
    // Am I on this node's committee?
    if (std::find(node.committee.begin(), node.committee.end(), me()) ==
        node.committee.end()) {
      continue;
    }
    // Sender legitimacy.
    if (node.is_leaf()) {
      // Base signature: the sender must own the virtual identity it claims.
      IndexRange r;
      if (!cfg2_.scheme->index_range(body, r) || r.min != r.max) continue;
      if (r.min >= tree.virtual_count() || tree.owner_of_virtual(r.min) != msg.from) {
        continue;
      }
    } else {
      // Aggregate candidate: the sender must sit on some child committee.
      bool child_member = false;
      for (std::size_t child : node.children) {
        const auto& cc = tree.node(child).committee;
        if (std::find(cc.begin(), cc.end(), msg.from) != cc.end()) {
          child_member = true;
          break;
        }
      }
      if (!child_member) continue;
    }
    node_inputs_[instance].push_back(std::move(body));
  }
}

std::vector<Message> PiBaParty::step_aggregate(std::size_t level,
                                               const std::vector<TaggedMsg>& inbox) {
  ingest_aggregation(inbox, level);
  std::vector<Message> out;
  if (!ae_blob().has_value()) return out;
  const CommTree& tree = *cfg2_.ae.tree;
  for (std::size_t id : tree.level_nodes(level)) {
    const TreeNode& node = tree.node(id);
    if (std::find(node.committee.begin(), node.committee.end(), me()) ==
        node.committee.end()) {
      continue;
    }
    auto it = node_inputs_.find(id);
    std::vector<Bytes> inputs = (it != node_inputs_.end()) ? std::move(it->second)
                                                           : std::vector<Bytes>{};
    // Fig. 3 step 5c range checks, then f_aggr-sig.
    inputs = node_range_filter(*cfg2_.scheme, tree, node, std::move(inputs));
    Bytes sigma = f_aggr_sig(*cfg2_.scheme, *ae_blob(), inputs);
    if (sigma.empty()) continue;
    if (node.parent == TreeNode::kNoParent) {
      sigma_root_ = std::move(sigma);
    } else {
      const auto& pc = tree.node(node.parent).committee;
      std::vector<PartyId> recipients(pc.begin(), pc.end());
      std::sort(recipients.begin(), recipients.end());
      recipients.erase(std::unique(recipients.begin(), recipients.end()),
                       recipients.end());
      for (PartyId p : recipients) {
        out.push_back(make_boost_message(p, node.parent, sigma, MsgKind::kBoostAggregate));
      }
    }
  }
  return out;
}

std::vector<Message> PiBaParty::step_prf_send() {
  std::vector<Message> out;
  if (!certified_blob_.has_value() || certificate_.empty()) return out;
  bool y;
  Bytes s;
  if (!decode_ys(*certified_blob_, y, s)) return out;
  set_output(y);  // certified parties decide now

  Writer w;
  w.bytes(*certified_blob_);
  w.bytes(certificate_);
  Bytes body = std::move(w).take();
  const std::size_t n = cfg2_.ae.tree->params().n;
  for (std::size_t to : prf_subset(s, me(), n, std::min(prf_fanout_, n))) {
    if (to == me()) continue;
    out.push_back(
        make_boost_message(static_cast<PartyId>(to), kPrfInstance, body, MsgKind::kBoostPrf));
  }
  return out;
}

void PiBaParty::ingest_prf(const std::vector<TaggedMsg>& inbox) {
  if (output().has_value()) return;
  const std::size_t n = cfg2_.ae.tree->params().n;
  for (const auto& msg : inbox) {
    std::uint64_t instance;
    Bytes body;
    if (!split_instance(msg, instance, body) || instance != kPrfInstance) continue;
    Reader r(body);
    Bytes blob = r.bytes();
    Bytes cert = r.bytes();
    if (!r.done()) continue;
    bool y;
    Bytes s;
    if (!decode_ys(blob, y, s)) continue;
    // Fig. 3 step 8: accept only if I am in F_s(sender) and σ verifies.
    if (!prf_subset_contains(s, msg.from, n, std::min(prf_fanout_, n), me())) continue;
    if (!cfg2_.scheme->verify(blob, cert)) continue;
    certificate_ = cert;
    certified_blob_ = blob;
    set_output(y);
    return;
  }
}

void PiBaParty::boost_finish() {
  // Nothing further: outputs were set in steps 7/8.
}

void PiBaParty::grace_step(const std::vector<TaggedMsg>& inbox) {
  ingest_prf(inbox);
}

void PiBaParty::decide_with_partial_info() {
  // Only a verified certificate may settle a late decision: certificates
  // are self-certifying and unforgeable, so no two parties can late-decide
  // conflicting values no matter how the network misbehaved. The
  // uncertified almost-everywhere value is NOT safe here — under heavy
  // loss the front end can split, and adopting ae_y could break agreement.
  if (certified_blob_.has_value()) {
    bool y;
    Bytes s;
    if (decode_ys(*certified_blob_, y, s)) set_output(y);
  }
}

}  // namespace srds

#include "ba/certified_dissem.hpp"

#include <algorithm>

#include "common/serial.hpp"

namespace srds {

namespace {

constexpr std::uint8_t kStageCommittee = 0;
constexpr std::uint8_t kStageParty = 1;

Bytes make_body(std::uint8_t stage, std::uint64_t node_id, BytesView value, BytesView sigma) {
  Writer w;
  w.u8(stage);
  w.u64(node_id);
  w.bytes(value);
  w.bytes(sigma);
  return std::move(w).take();
}

bool parse_body(BytesView body, std::uint8_t& stage, std::uint64_t& node_id, Bytes& value,
                Bytes& sigma) {
  Reader r(body);
  stage = r.u8();
  node_id = r.u64();
  value = r.bytes();
  sigma = r.bytes();
  return r.done();
}

std::optional<std::size_t> seat_of(const TreeNode& node, PartyId p) {
  for (std::size_t s = 0; s < node.committee.size(); ++s) {
    if (node.committee[s] == p) return s;
  }
  return std::nullopt;
}

std::optional<Bytes> majority(const std::map<Bytes, std::size_t>& tally) {
  std::optional<Bytes> best;
  std::size_t best_count = 0;
  for (const auto& [value, count] : tally) {
    if (count > best_count) {
      best = value;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

CertifiedDissemProto::CertifiedDissemProto(std::shared_ptr<const CommTree> tree, PartyId me,
                                           std::optional<Bytes> initial_value,
                                           Bytes initial_sigma, Validator validator,
                                           std::size_t redundancy, std::size_t retries)
    : tree_(std::move(tree)),
      me_(me),
      initial_value_(std::move(initial_value)),
      initial_sigma_(std::move(initial_sigma)),
      validator_(std::move(validator)),
      redundancy_(redundancy == 0 ? 1 : redundancy),
      retries_(retries) {
  my_nodes_by_level_.resize(tree_->height());
  for (std::size_t lvl = 1; lvl <= tree_->height(); ++lvl) {
    for (std::size_t id : tree_->level_nodes(lvl)) {
      auto seat = seat_of(tree_->node(id), me_);
      if (seat.has_value()) {
        my_nodes_by_level_[lvl - 1].push_back(id);
        my_seat_[id] = *seat;
      }
    }
  }
}

std::vector<std::pair<PartyId, Bytes>> CertifiedDissemProto::step(
    std::size_t subround, const std::vector<TaggedMsg>& inbox) {
  const std::size_t h = tree_->height();

  // Ingest copies.
  for (const auto& msg : inbox) {
    std::uint8_t stage;
    std::uint64_t node_id;
    Bytes value, sigma;
    if (!parse_body(msg.body, stage, node_id, value, sigma)) continue;
    if (node_id >= tree_->node_count()) continue;
    const TreeNode& node = tree_->node(node_id);
    if (stage == kStageCommittee) {
      if (!my_seat_.count(node_id)) continue;
      if (node.parent == TreeNode::kNoParent) continue;
      if (!seat_of(tree_->node(node.parent), msg.from).has_value()) continue;
      if (counted_.insert({node_id, msg.from}).second) {
        tallies_[node_id][value] += 1;
      }
      if (!sigma.empty() && !node_sigma_.count(node_id) && validator_(value, sigma)) {
        node_sigma_[node_id] = sigma;
        tallies_[node_id][value] += tree_->node(node.parent).committee.size();  // trump
      }
    } else if (stage == kStageParty) {
      if (!node.is_leaf() || !seat_of(node, msg.from).has_value()) continue;
      bool assigned = false;
      for (auto vid : tree_->virtuals_of(me_)) {
        if (tree_->leaf_of_virtual(vid) == node_id) {
          assigned = true;
          break;
        }
      }
      if (!assigned) continue;
      if (counted_.insert({node_id | (1ULL << 63), msg.from}).second) {
        party_tally_[value] += 1;
      }
      if (!sigma.empty() && certificate_.empty() && validator_(value, sigma)) {
        certificate_ = sigma;
        value_ = value;  // a valid certificate settles the value
      }
    }
  }

  std::vector<std::pair<PartyId, Bytes>> out;

  // Forwarding helper: per node `id` at level `lvl`, send (value, σ) down.
  auto forward = [&](std::size_t id, std::size_t lvl, const Bytes& value,
                     const Bytes& sigma) {
    const TreeNode& node = tree_->node(id);
    std::size_t seat = my_seat_[id];
    if (lvl > 1) {
      for (std::size_t child : node.children) {
        const auto& cc = tree_->node(child).committee;
        std::set<std::size_t> sigma_seats;
        for (std::size_t j = 0; j < redundancy_ && j < cc.size(); ++j) {
          sigma_seats.insert((seat + j) % cc.size());
        }
        for (std::size_t r = 0; r < cc.size(); ++r) {
          bool with_sigma = !sigma.empty() && sigma_seats.count(r) > 0;
          out.emplace_back(cc[r], make_body(kStageCommittee, child, value,
                                            with_sigma ? sigma : Bytes{}));
        }
      }
    } else {
      // Leaf: deliver to slot owners; σ to a rotating subset of slots.
      std::vector<PartyId> owners;
      for (std::uint64_t v = node.vmin; v <= node.vmax; ++v) {
        owners.push_back(tree_->owner_of_virtual(v));
      }
      std::set<std::size_t> sigma_slots;
      for (std::size_t j = 0; j < redundancy_ && j < owners.size(); ++j) {
        sigma_slots.insert((seat + j) % owners.size());
      }
      // Dedup recipients, keeping "gets sigma" if any of their slots won.
      std::map<PartyId, bool> recip;
      for (std::size_t slot = 0; slot < owners.size(); ++slot) {
        bool with_sigma = !sigma.empty() && sigma_slots.count(slot) > 0;
        recip[owners[slot]] = recip[owners[slot]] || with_sigma;
      }
      for (const auto& [p, with_sigma] : recip) {
        out.emplace_back(p, make_body(kStageParty, id, value,
                                      with_sigma ? sigma : Bytes{}));
      }
    }
  };

  // Forwarding schedule. Level `lvl` first forwards at subround
  // r0 = h - lvl (the root, lvl == h, seeds at subround 0) and — under a
  // retry budget — re-sends for up to `retries_` further subrounds.
  // Receivers dedup per (node, sender), so retransmission is idempotent; a
  // member whose own copy only arrived late simply forwards late, inside
  // the same window. Sends at the last subround could never arrive in time
  // and are suppressed.
  const std::size_t last = h + retries_;
  for (std::size_t lvl = h; lvl >= 1; --lvl) {
    const std::size_t r0 = h - lvl;
    if (subround < r0 || subround > r0 + retries_ || subround >= last) continue;
    for (std::size_t id : my_nodes_by_level_[lvl - 1]) {
      if (lvl == h) {
        // Root committee: seed with the initial (value, σ_root).
        if (initial_value_.has_value()) {
          forward(id, lvl, *initial_value_, initial_sigma_);
          value_ = initial_value_;
          certificate_ = initial_sigma_;
        }
        continue;
      }
      // A valid certificate settles the node's pair; otherwise fall back to
      // the per-node majority with no certificate.
      auto cert_it = node_sigma_.find(id);
      if (cert_it != node_sigma_.end()) {
        // Find the certified value: it is the tally entry the validator
        // approved (stored by boosting its count; recompute via majority).
        auto val = majority(tallies_[id]);
        if (val) forward(id, lvl, *val, cert_it->second);
      } else {
        auto it = tallies_.find(id);
        if (it == tallies_.end()) continue;
        auto val = majority(it->second);
        if (val) forward(id, lvl, *val, {});
      }
    }
  }

  // Final step: party-level output.
  if (subround == last && !value_.has_value()) {
    value_ = majority(party_tally_);
  }
  return out;
}

}  // namespace srds

// An actively malicious adversary for full π_ba executions.
//
// Drives every corrupted party to attack each phase of the protocol with
// the strongest moves available to a rushing, full-information adversary
// that cannot break the cryptography:
//   * dissemination phases (steps 3 and 6): push a conflicting value (and
//     garbage certificates) along every tree edge a corrupt committee
//     member legitimately sits on — trying to out-vote good committees and
//     poison the certified value;
//   * signing phase (step 4): replay honest base signatures (lifted from
//     the rushing view of honest traffic) into *other* leaves, and inject
//     malformed signatures — trying to double-count or clog Aggregate₁;
//   * aggregation phase (step 5): send garbage aggregates and replayed
//     child candidates to parent committees;
//   * PRF phase (step 7): flood every honest party with forged
//     (y', s', σ') triples.
// π_ba must decide correctly despite all of this; the integration tests
// assert it (safety rests on SRDS unforgeability + the range checks + the
// per-sender vote dedup, all exercised here).
// This file also hosts the protocol-aware *adaptive* campaigns (see
// net/campaign.hpp for the protocol-agnostic base): eclipse, takeover and
// partition-then-heal. They need the communication tree, the committee
// election and the signature registry, so they live here in the ba layer.
#pragma once

#include <functional>
#include <memory>

#include "crypto/simsig.hpp"
#include "net/campaign.hpp"
#include "net/faults.hpp"
#include "net/protocol.hpp"
#include "srds/srds.hpp"
#include "tree/comm_tree.hpp"

namespace srds {

struct PiBaAttackConfig {
  std::shared_ptr<const CommTree> tree;
  SrdsSchemePtr scheme;           // the run's scheme (for wire-format sizes)
  std::vector<bool> corrupt;
  std::size_t boost_start = 0;    // schedule anchors (same for all parties)
  std::size_t prf_round = 0;      // absolute round of Fig. 3 step 7
  std::size_t dissem3_start = 0;  // absolute round where step-3 dissemination begins
  std::uint64_t seed = 1;
};

std::unique_ptr<Adversary> make_pi_ba_attacker(PiBaAttackConfig config);

/// Everything a campaign needs to plan its moves: the public protocol
/// schedule, the tree (committee election results are public), the static
/// corruption mask it starts from, and the adaptive budget the harness will
/// hand the simulator (floor(corruption_rate * n) in run_ba).
struct CampaignConfig {
  CampaignKind kind = CampaignKind::kNone;
  std::shared_ptr<const CommTree> tree;
  SimSigRegistryPtr registry;
  std::vector<bool> corrupt;     // static mask (fail-silent seed corruptions)
  std::size_t budget = 0;        // adaptive corruptions the simulator will grant
  std::uint64_t seed = 1;
  std::size_t dissem_start = 0;  // schedule anchors (same for all parties)
  std::size_t boost_start = 0;
  std::size_t total_rounds = 0;
};

/// A campaign instance: the adversary to install plus the partition windows
/// the campaign relies on (merged into the run's fault plan by the harness —
/// partitions are a network capability, not an adversary message).
struct CampaignSetup {
  std::unique_ptr<Adversary> adversary;
  std::vector<PartitionWindow> partitions;
};

/// Build the named campaign. kNone returns a silent adversary and no
/// partitions. All target choices derive from campaign_hash(seed, ·, ·).
CampaignSetup make_campaign(CampaignConfig config);

}  // namespace srds

// An actively malicious adversary for full π_ba executions.
//
// Drives every corrupted party to attack each phase of the protocol with
// the strongest moves available to a rushing, full-information adversary
// that cannot break the cryptography:
//   * dissemination phases (steps 3 and 6): push a conflicting value (and
//     garbage certificates) along every tree edge a corrupt committee
//     member legitimately sits on — trying to out-vote good committees and
//     poison the certified value;
//   * signing phase (step 4): replay honest base signatures (lifted from
//     the rushing view of honest traffic) into *other* leaves, and inject
//     malformed signatures — trying to double-count or clog Aggregate₁;
//   * aggregation phase (step 5): send garbage aggregates and replayed
//     child candidates to parent committees;
//   * PRF phase (step 7): flood every honest party with forged
//     (y', s', σ') triples.
// π_ba must decide correctly despite all of this; the integration tests
// assert it (safety rests on SRDS unforgeability + the range checks + the
// per-sender vote dedup, all exercised here).
#pragma once

#include <functional>
#include <memory>

#include "net/protocol.hpp"
#include "srds/srds.hpp"
#include "tree/comm_tree.hpp"

namespace srds {

struct PiBaAttackConfig {
  std::shared_ptr<const CommTree> tree;
  SrdsSchemePtr scheme;           // the run's scheme (for wire-format sizes)
  std::vector<bool> corrupt;
  std::size_t boost_start = 0;    // schedule anchors (same for all parties)
  std::size_t prf_round = 0;      // absolute round of Fig. 3 step 7
  std::size_t dissem3_start = 0;  // absolute round where step-3 dissemination begins
  std::uint64_t seed = 1;
};

std::unique_ptr<Adversary> make_pi_ba_attacker(PiBaAttackConfig config);

}  // namespace srds

// Baseline boost protocols — the other rows of Table 1, implemented over
// the same almost-everywhere front end as π_ba so the comparison isolates
// the boost step each row is famous for:
//
//   * NaiveBoostParty    — every party sends its signed value to everyone;
//                          1 boost round, Θ(n) bits and Θ(n) locality per
//                          party (the folklore strawman).
//   * MultisigBoostParty — BGT'13-style: multi-signatures aggregate up the
//                          tree, but every multisig ships the Θ(n)-bit
//                          signer bitmap, so per-party communication is
//                          stuck at Θ(n) — the paper's §1.2 culprit,
//                          measured.
//   * SamplingBoostParty — KS'11/KLST'11-style: each party polls Θ(√n·log n)
//                          random parties and takes the majority answer;
//                          Õ(√n) per party, no setup beyond the front end.
//   * StarBoostParty     — ACD+'19-style star: supreme-committee members
//                          push the signed value directly to all n parties;
//                          total communication Õ(n) (amortized Õ(1)/party)
//                          but maximally *unbalanced*: committee members
//                          send Θ(n) while everyone else is Õ(1).
#pragma once

#include <map>

#include "ba/ae_boost.hpp"
#include "ba/certified_dissem.hpp"
#include "crypto/multisig.hpp"

namespace srds {

class NaiveBoostParty final : public AeBoostParty {
 public:
  NaiveBoostParty(AeConfig config, PartyId me, bool input)
      : AeBoostParty(std::move(config), me, input) {}

  /// Θ(n): everyone sends (and receives) a signed value to/from everyone.
  obs::Budget boost_budget() const override { return {.c = 900, .k = 0, .n_exp = 1}; }

 protected:
  std::size_t boost_rounds() const override { return 2; }  // send + ingest
  std::vector<Message> boost_step(std::size_t k,
                                  const std::vector<TaggedMsg>& inbox) override;

 private:
  std::size_t votes_[2] = {0, 0};
};

class MultisigBoostParty final : public AeBoostParty {
 public:
  MultisigBoostParty(AeConfig config, std::shared_ptr<const MultisigRegistry> registry,
                     PartyId me, bool input)
      : AeBoostParty(std::move(config), me, input), msig_(std::move(registry)) {}

  /// Θ(n): every multisig ships the n-bit signer bitmap (§1.2's culprit).
  /// Below the validity floor the additive committee/certificate constants
  /// dominate the linear term, so the claim is only audited from n = 256.
  obs::Budget boost_budget() const override {
    return {.c = 4200, .k = 0, .n_exp = 1, .min_n = 256};
  }

 protected:
  std::size_t boost_rounds() const override;
  std::vector<Message> boost_step(std::size_t k,
                                  const std::vector<TaggedMsg>& inbox) override;

 private:
  static constexpr std::uint64_t kDissemInstance = 1ULL << 62;
  static constexpr std::uint64_t kPrfInstance = (1ULL << 62) + 1;

  /// The single leaf this party contributes its multisig share to
  /// (multisigs carry explicit signer sets, so no virtual identities).
  std::size_t home_leaf() const;
  bool validate(BytesView value, BytesView sigma) const;

  std::shared_ptr<const MultisigRegistry> msig_;
  std::map<std::uint64_t, std::vector<Bytes>> node_inputs_;
  Bytes sigma_root_;
  std::unique_ptr<CertifiedDissemProto> cert_dissem_;
  Bytes certificate_;
  std::optional<Bytes> certified_blob_;
};

class SamplingBoostParty final : public AeBoostParty {
 public:
  /// `samples`: how many random parties to poll (Θ(√n·log n) by default
  /// when 0 is passed).
  SamplingBoostParty(AeConfig config, PartyId me, bool input, std::size_t samples = 0);

  /// Õ(√n): each party polls Θ(√n·log n) random peers (and answers a
  /// comparable number of polls in expectation).
  obs::Budget boost_budget() const override {
    return {.c = 600, .k = 1, .n_exp = 0.5};
  }

 protected:
  std::size_t boost_rounds() const override { return 3; }  // query/respond/ingest
  std::vector<Message> boost_step(std::size_t k,
                                  const std::vector<TaggedMsg>& inbox) override;

 private:
  std::size_t samples_;
  Rng rng_;
  std::size_t votes_[2] = {0, 0};
};

class StarBoostParty final : public AeBoostParty {
 public:
  StarBoostParty(AeConfig config, PartyId me, bool input)
      : AeBoostParty(std::move(config), me, input) {}

  /// Θ(n) *max* per party: supreme-committee members each push to all n
  /// parties (the unbalanced star — amortized Õ(1), worst-case Θ(n)).
  obs::Budget boost_budget() const override { return {.c = 1100, .k = 0, .n_exp = 1}; }

 protected:
  std::size_t boost_rounds() const override { return 2; }  // push + ingest
  std::vector<Message> boost_step(std::size_t k,
                                  const std::vector<TaggedMsg>& inbox) override;

 private:
  std::map<Bytes, std::size_t> committee_votes_;
};

}  // namespace srds

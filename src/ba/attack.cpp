#include "ba/attack.hpp"

#include <algorithm>

#include "ba/ae_boost.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "net/subproto.hpp"

namespace srds {

namespace {

/// Forged (y', s') blob the attacker pushes everywhere.
Bytes evil_blob() {
  Bytes s(32, 0xEE);
  return encode_ys(false, s);
}

class PiBaAttacker final : public Adversary {
 public:
  explicit PiBaAttacker(PiBaAttackConfig config)
      : cfg_(std::move(config)), rng_(cfg_.seed ^ 0x61747461636bULL) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>& honest_outbox) override {
    std::vector<Message> out;
    const CommTree& tree = *cfg_.tree;
    const std::size_t h = tree.height();

    // --- Step-3 dissemination window: push a conflicting (y', s') along
    // every edge corrupted members sit on (committee + leaf delivery). ---
    if (round >= cfg_.dissem3_start && round < cfg_.dissem3_start + h) {
      attack_dissemination(round - cfg_.dissem3_start, /*phase=*/3, evil_blob(), out);
    }

    // --- Step-4 signing round: lift honest base signatures from the
    // rushing view and replay them into *every* leaf committee; also spray
    // malformed signatures. ---
    if (round == cfg_.boost_start) {
      attack_signing(honest_outbox, out);
    }

    // --- Step-5 aggregation: garbage candidates to every parent committee
    // corrupted parties can reach. ---
    if (round > cfg_.boost_start && round <= cfg_.boost_start + h) {
      attack_aggregation(round - cfg_.boost_start, out);
    }

    // --- Step-6 certified dissemination: conflicting value + garbage σ. ---
    std::size_t dissem6_start = cfg_.boost_start + h + 1;
    if (round >= dissem6_start && round < dissem6_start + h) {
      attack_certified(round - dissem6_start, out);
    }

    // --- Step-7 PRF round: flood everyone with a forged triple. ---
    if (round == cfg_.prf_round) {
      attack_prf_flood(out);
    }
    return out;
  }

 private:
  void for_each_corrupt_member(
      std::size_t level,
      const std::function<void(PartyId member, const TreeNode& node)>& fn) {
    for (std::size_t id : cfg_.tree->level_nodes(level)) {
      const TreeNode& node = cfg_.tree->node(id);
      for (PartyId member : node.committee) {
        if (cfg_.corrupt[member]) fn(member, node);
      }
    }
  }

  void attack_dissemination(std::size_t sub, std::uint32_t phase, const Bytes& value,
                            std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    const std::size_t h = tree.height();
    std::size_t level = h - sub;
    for_each_corrupt_member(level, [&](PartyId member, const TreeNode& node) {
      if (level > 1) {
        for (std::size_t child : node.children) {
          Writer w;
          w.u8(0);  // kStageCommittee
          w.u64(child);
          w.raw(value);
          Bytes body = std::move(w).take();
          for (PartyId p : tree.node(child).committee) {
            out.push_back(make_msg(member, p, tag_body(phase, 0, body),
                                   MsgKind::kUnknown));
          }
        }
      } else {
        Writer w;
        w.u8(1);  // kStageParty
        w.u64(node.id);
        w.raw(value);
        Bytes body = std::move(w).take();
        for (std::uint64_t v = node.vmin; v <= node.vmax; ++v) {
          out.push_back(make_msg(member, tree.owner_of_virtual(v),
                                 tag_body(phase, 0, body), MsgKind::kUnknown));
        }
      }
    });
  }

  void attack_signing(const std::vector<Message>& honest_outbox,
                      std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    // Collect honest base-signature bodies from the rushing view.
    std::vector<Bytes> lifted;
    for (const auto& m : honest_outbox) {
      std::uint32_t phase;
      std::uint64_t instance;
      Bytes body;
      if (!untag_body(m.payload, phase, instance, body)) continue;
      if (phase != AeBoostParty::kBoostPhase) continue;
      if (lifted.size() < 8) lifted.push_back(std::move(body));
    }
    // Replay them into every leaf from every corrupted party, plus garbage.
    std::vector<PartyId> corrupt_ids;
    for (PartyId p = 0; p < cfg_.corrupt.size(); ++p) {
      if (cfg_.corrupt[p]) corrupt_ids.push_back(p);
    }
    if (corrupt_ids.empty()) return;
    for (std::size_t leaf = 0; leaf < tree.leaf_count(); ++leaf) {
      const TreeNode& node = tree.node(leaf);
      PartyId sender = corrupt_ids[leaf % corrupt_ids.size()];
      for (const Bytes& body : lifted) {
        // Bodies carry the (instance || payload) inner framing of their
        // original leaf; strip it and replay the signature into this leaf.
        Reader r(body);
        r.u64();  // original instance
        Bytes sig = r.raw(r.remaining());
        for (PartyId p : node.committee) {
          out.push_back(make_msg(sender, p,
                                 tag_body(AeBoostParty::kBoostPhase, leaf, sig),
                                 MsgKind::kUnknown));
        }
      }
      Bytes junk = rng_.bytes(60);
      for (PartyId p : node.committee) {
        out.push_back(make_msg(sender, p,
                               tag_body(AeBoostParty::kBoostPhase, leaf, junk),
                               MsgKind::kUnknown));
      }
    }
  }

  void attack_aggregation(std::size_t level, std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    if (level > tree.height()) return;
    for_each_corrupt_member(level, [&](PartyId member, const TreeNode& node) {
      if (node.parent == TreeNode::kNoParent) return;
      Bytes junk = rng_.bytes(80 + rng_.below(64));
      for (PartyId p : tree.node(node.parent).committee) {
        out.push_back(make_msg(member, p,
                               tag_body(AeBoostParty::kBoostPhase, node.parent, junk),
                               MsgKind::kUnknown));
      }
    });
  }

  void attack_certified(std::size_t sub, std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    const std::size_t h = tree.height();
    std::size_t level = h - sub;
    Bytes evil = evil_blob();
    Bytes fake_sigma = rng_.bytes(160);
    for_each_corrupt_member(level, [&](PartyId member, const TreeNode& node) {
      auto push = [&](PartyId to, std::uint8_t stage, std::uint64_t nid) {
        Writer w;
        w.u8(stage);
        w.u64(nid);
        w.bytes(evil);
        w.bytes(fake_sigma);
        out.push_back(make_msg(member, to,
                               tag_body(AeBoostParty::kBoostPhase, 1ULL << 62,
                                        std::move(w).take()),
                               MsgKind::kUnknown));
      };
      if (level > 1) {
        for (std::size_t child : node.children) {
          for (PartyId p : tree.node(child).committee) push(p, 0, child);
        }
      } else {
        for (std::uint64_t v = node.vmin; v <= node.vmax; ++v) {
          push(tree.owner_of_virtual(v), 1, node.id);
        }
      }
    });
  }

  void attack_prf_flood(std::vector<Message>& out) {
    const std::size_t n = cfg_.corrupt.size();
    Bytes evil = evil_blob();
    Writer w;
    w.bytes(evil);
    w.bytes(rng_.bytes(160));  // forged certificate (cannot verify)
    Bytes body = std::move(w).take();
    for (PartyId c = 0; c < n; ++c) {
      if (!cfg_.corrupt[c]) continue;
      for (PartyId to = 0; to < n; ++to) {
        if (!cfg_.corrupt[to]) {
          out.push_back(make_msg(c, to,
                                 tag_body(AeBoostParty::kBoostPhase, (1ULL << 62) + 1,
                                          body),
                                 MsgKind::kUnknown));
        }
      }
    }
  }

  PiBaAttackConfig cfg_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<Adversary> make_pi_ba_attacker(PiBaAttackConfig config) {
  return std::make_unique<PiBaAttacker>(std::move(config));
}

}  // namespace srds

#include "ba/attack.hpp"

#include <algorithm>
#include <optional>

#include "ba/ae_boost.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "net/subproto.hpp"

namespace srds {

namespace {

/// Forged (y', s') blob the attacker pushes everywhere.
Bytes evil_blob() {
  Bytes s(32, 0xEE);
  return encode_ys(false, s);
}

class PiBaAttacker final : public Adversary {
 public:
  explicit PiBaAttacker(PiBaAttackConfig config)
      : cfg_(std::move(config)), rng_(cfg_.seed ^ 0x61747461636bULL) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>&,
                                const std::vector<Message>& honest_outbox) override {
    std::vector<Message> out;
    const CommTree& tree = *cfg_.tree;
    const std::size_t h = tree.height();

    // --- Step-3 dissemination window: push a conflicting (y', s') along
    // every edge corrupted members sit on (committee + leaf delivery). ---
    if (round >= cfg_.dissem3_start && round < cfg_.dissem3_start + h) {
      attack_dissemination(round - cfg_.dissem3_start, /*phase=*/3, evil_blob(), out);
    }

    // --- Step-4 signing round: lift honest base signatures from the
    // rushing view and replay them into *every* leaf committee; also spray
    // malformed signatures. ---
    if (round == cfg_.boost_start) {
      attack_signing(honest_outbox, out);
    }

    // --- Step-5 aggregation: garbage candidates to every parent committee
    // corrupted parties can reach. ---
    if (round > cfg_.boost_start && round <= cfg_.boost_start + h) {
      attack_aggregation(round - cfg_.boost_start, out);
    }

    // --- Step-6 certified dissemination: conflicting value + garbage σ. ---
    std::size_t dissem6_start = cfg_.boost_start + h + 1;
    if (round >= dissem6_start && round < dissem6_start + h) {
      attack_certified(round - dissem6_start, out);
    }

    // --- Step-7 PRF round: flood everyone with a forged triple. ---
    if (round == cfg_.prf_round) {
      attack_prf_flood(out);
    }
    return out;
  }

 private:
  void for_each_corrupt_member(
      std::size_t level,
      const std::function<void(PartyId member, const TreeNode& node)>& fn) {
    for (std::size_t id : cfg_.tree->level_nodes(level)) {
      const TreeNode& node = cfg_.tree->node(id);
      for (PartyId member : node.committee) {
        if (cfg_.corrupt[member]) fn(member, node);
      }
    }
  }

  void attack_dissemination(std::size_t sub, std::uint32_t phase, const Bytes& value,
                            std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    const std::size_t h = tree.height();
    std::size_t level = h - sub;
    for_each_corrupt_member(level, [&](PartyId member, const TreeNode& node) {
      if (level > 1) {
        for (std::size_t child : node.children) {
          Writer w;
          w.u8(0);  // kStageCommittee
          w.u64(child);
          w.raw(value);
          Bytes body = std::move(w).take();
          for (PartyId p : tree.node(child).committee) {
            out.push_back(make_msg(member, p, tag_body(phase, 0, body),
                                   MsgKind::kUnknown));
          }
        }
      } else {
        Writer w;
        w.u8(1);  // kStageParty
        w.u64(node.id);
        w.raw(value);
        Bytes body = std::move(w).take();
        for (std::uint64_t v = node.vmin; v <= node.vmax; ++v) {
          out.push_back(make_msg(member, tree.owner_of_virtual(v),
                                 tag_body(phase, 0, body), MsgKind::kUnknown));
        }
      }
    });
  }

  void attack_signing(const std::vector<Message>& honest_outbox,
                      std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    // Collect honest base-signature bodies from the rushing view.
    std::vector<Bytes> lifted;
    for (const auto& m : honest_outbox) {
      std::uint32_t phase;
      std::uint64_t instance;
      Bytes body;
      if (!untag_body(m.payload, phase, instance, body)) continue;
      if (phase != AeBoostParty::kBoostPhase) continue;
      if (lifted.size() < 8) lifted.push_back(std::move(body));
    }
    // Replay them into every leaf from every corrupted party, plus garbage.
    std::vector<PartyId> corrupt_ids;
    for (PartyId p = 0; p < cfg_.corrupt.size(); ++p) {
      if (cfg_.corrupt[p]) corrupt_ids.push_back(p);
    }
    if (corrupt_ids.empty()) return;
    for (std::size_t leaf = 0; leaf < tree.leaf_count(); ++leaf) {
      const TreeNode& node = tree.node(leaf);
      PartyId sender = corrupt_ids[leaf % corrupt_ids.size()];
      for (const Bytes& body : lifted) {
        // Bodies carry the (instance || payload) inner framing of their
        // original leaf; strip it and replay the signature into this leaf.
        Reader r(body);
        r.u64();  // original instance
        Bytes sig = r.raw(r.remaining());
        for (PartyId p : node.committee) {
          out.push_back(make_msg(sender, p,
                                 tag_body(AeBoostParty::kBoostPhase, leaf, sig),
                                 MsgKind::kUnknown));
        }
      }
      Bytes junk = rng_.bytes(60);
      for (PartyId p : node.committee) {
        out.push_back(make_msg(sender, p,
                               tag_body(AeBoostParty::kBoostPhase, leaf, junk),
                               MsgKind::kUnknown));
      }
    }
  }

  void attack_aggregation(std::size_t level, std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    if (level > tree.height()) return;
    for_each_corrupt_member(level, [&](PartyId member, const TreeNode& node) {
      if (node.parent == TreeNode::kNoParent) return;
      Bytes junk = rng_.bytes(80 + rng_.below(64));
      for (PartyId p : tree.node(node.parent).committee) {
        out.push_back(make_msg(member, p,
                               tag_body(AeBoostParty::kBoostPhase, node.parent, junk),
                               MsgKind::kUnknown));
      }
    });
  }

  void attack_certified(std::size_t sub, std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    const std::size_t h = tree.height();
    std::size_t level = h - sub;
    Bytes evil = evil_blob();
    Bytes fake_sigma = rng_.bytes(160);
    for_each_corrupt_member(level, [&](PartyId member, const TreeNode& node) {
      auto push = [&](PartyId to, std::uint8_t stage, std::uint64_t nid) {
        Writer w;
        w.u8(stage);
        w.u64(nid);
        w.bytes(evil);
        w.bytes(fake_sigma);
        out.push_back(make_msg(member, to,
                               tag_body(AeBoostParty::kBoostPhase, 1ULL << 62,
                                        std::move(w).take()),
                               MsgKind::kUnknown));
      };
      if (level > 1) {
        for (std::size_t child : node.children) {
          for (PartyId p : tree.node(child).committee) push(p, 0, child);
        }
      } else {
        for (std::uint64_t v = node.vmin; v <= node.vmax; ++v) {
          push(tree.owner_of_virtual(v), 1, node.id);
        }
      }
    });
  }

  void attack_prf_flood(std::vector<Message>& out) {
    const std::size_t n = cfg_.corrupt.size();
    Bytes evil = evil_blob();
    Writer w;
    w.bytes(evil);
    w.bytes(rng_.bytes(160));  // forged certificate (cannot verify)
    Bytes body = std::move(w).take();
    for (PartyId c = 0; c < n; ++c) {
      if (!cfg_.corrupt[c]) continue;
      for (PartyId to = 0; to < n; ++to) {
        if (!cfg_.corrupt[to]) {
          out.push_back(make_msg(c, to,
                                 tag_body(AeBoostParty::kBoostPhase, (1ULL << 62) + 1,
                                          body),
                                 MsgKind::kUnknown));
        }
      }
    }
  }

  PiBaAttackConfig cfg_;
  Rng rng_;
};

// ---------------------------------------------------------------------------
// Adaptive attack campaigns (see attack.hpp / net/campaign.hpp).
//
// All three campaigns first *lift* the honest (y, s) blob from the rushing
// view of the round-dissem_start root push and forge evil = encode_ys(!y, s)
// — same seed, flipped bit, so downstream PRF/signing machinery accepts the
// blob's shape and only the agreement bit is under attack.
//
//   kTakeover     corrupt supreme-committee members (hash order, budget
//                 capped) the round election results become actionable
//                 (dissem_start), out-vote ONE hash-chosen root child's
//                 committee with the evil blob — poisoning ~1/b of the
//                 almost-everywhere values while keeping evil signers well
//                 below the SNARK-SRDS certificate quorum — then split-push
//                 signed star votes (evil to parties [0, n/2), true value to
//                 the rest) and answer sampling polls with the evil bit.
//   kEclipse      pick ~n/128 honest victims by hash; corrupt one member of
//                 a leaf committee serving each victim; cut each victim off
//                 (single-party partition window) just before the leaf
//                 committees report, after slipping the victim an evil
//                 leaf-stage vote — the only dissemination vote it will ever
//                 see. Protocols whose last resort adopts the uncertified
//                 almost-everywhere value decide wrong; certificate-gated
//                 ones stay safely undecided.
//   kPartitionHeal cut a hash-chosen quarter of the parties from
//                 dissem_start until one round into the boost phase, then
//                 heal; the budget is spent silencing minority members.
//                 One-shot boosts (star push, sampling poll) fall inside the
//                 outage and never recover; π_ba's certified dissemination
//                 and PRF rounds run after the heal and carry the minority
//                 back to a decision.
// ---------------------------------------------------------------------------

class GridCampaignAdversary final : public CampaignAdversary {
 public:
  explicit GridCampaignAdversary(CampaignConfig cfg)
      : CampaignAdversary(cfg.corrupt, cfg.seed), cfg_(std::move(cfg)) {
    switch (cfg_.kind) {
      case CampaignKind::kNone: break;
      case CampaignKind::kTakeover: plan_takeover(); break;
      case CampaignKind::kEclipse: plan_eclipse(); break;
      case CampaignKind::kPartitionHeal: plan_partition_heal(); break;
    }
  }

  const std::vector<PartitionWindow>& partitions() const { return partitions_; }

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>& corrupt_inbox,
                                const std::vector<Message>& honest_outbox) override {
    std::vector<Message> out;
    if (round == cfg_.dissem_start) lift_blob(honest_outbox);
    if (!good_blob_.has_value()) return out;

    const std::size_t h = cfg_.tree->height();
    switch (cfg_.kind) {
      case CampaignKind::kNone:
      case CampaignKind::kPartitionHeal:
        break;  // fail-silent coalition; the partition does the work
      case CampaignKind::kTakeover:
        if (round == cfg_.dissem_start) takeover_poison_subtree(out);
        if (round == cfg_.boost_start) takeover_split_push(out);
        if (round == cfg_.boost_start + 1) takeover_answer_polls(corrupt_inbox, out);
        break;
      case CampaignKind::kEclipse:
        if (h >= 2 && round == cfg_.dissem_start + h - 2) eclipse_feed_victims(out);
        break;
    }
    return out;
  }

 private:
  /// All parties ordered by campaign_hash(seed, domain, party) — the
  /// deterministic stand-in for "pick uniformly at random".
  std::vector<PartyId> hash_order(std::uint64_t domain) const {
    const std::size_t n = cfg_.corrupt.size();
    std::vector<PartyId> order(n);
    for (PartyId p = 0; p < n; ++p) order[p] = p;
    std::sort(order.begin(), order.end(), [&](PartyId a, PartyId b) {
      const std::uint64_t ha = campaign_hash(seed(), domain, a);
      const std::uint64_t hb = campaign_hash(seed(), domain, b);
      return ha != hb ? ha < hb : a < b;
    });
    return order;
  }

  void plan_takeover() {
    const CommTree& tree = *cfg_.tree;
    std::vector<PartyId> members(tree.supreme_committee());
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    std::sort(members.begin(), members.end(), [&](PartyId a, PartyId b) {
      const std::uint64_t ha = campaign_hash(seed(), 0, a);
      const std::uint64_t hb = campaign_hash(seed(), 0, b);
      return ha != hb ? ha < hb : a < b;
    });
    // A slim majority is the whole prize: it out-votes the committee toward
    // the chosen child and flips any committee-majority acceptance rule.
    // Grabbing MORE only beheads dissemination outright (every protocol
    // flatlines identically — no frontier), so cap the spend there.
    std::size_t want = std::min({cfg_.budget, members.size(), members.size() / 2 + 2});
    for (PartyId p : members) {
      if (want == 0) break;
      if (controls(p)) continue;  // static corruption already owns it
      schedule_corruption(cfg_.dissem_start, p);
      --want;
    }
    const auto& children = tree.root().children;
    if (!children.empty()) {
      chosen_child_ = children[campaign_hash(seed(), 1, 0) % children.size()];
    }
  }

  void plan_eclipse() {
    const CommTree& tree = *cfg_.tree;
    const std::size_t n = cfg_.corrupt.size();
    std::size_t want = std::max<std::size_t>(1, n / 128);
    std::size_t budget_left = cfg_.budget;
    std::vector<bool> is_victim(n, false);
    std::vector<bool> planned(n, false);  // corruptions scheduled by this plan
    auto ours = [&](PartyId p) { return controls(p) || planned[p]; };
    for (PartyId v : hash_order(2)) {
      if (want == 0) break;
      if (ours(v) || is_victim[v]) continue;
      // The victim serves in its own leaf committees, so its loopback
      // self-votes (one per distinct leaf, exempt from partitions) always
      // arrive: the evil votes must OUT-NUMBER them, not merely exist. One
      // vote needs one controlled (leaf, member) pair with the member in
      // that leaf's committee; a member serving several of the victim's
      // leaves yields several votes for one corruption.
      std::vector<std::size_t> leaves;
      for (std::uint64_t vid : tree.virtuals_of(v)) {
        leaves.push_back(tree.leaf_of_virtual(vid));
      }
      std::sort(leaves.begin(), leaves.end());
      leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());

      std::vector<std::pair<PartyId, std::size_t>> pairs;  // (member, leaf)
      for (std::size_t leaf : leaves) {
        for (PartyId member : tree.node(leaf).committee) {
          if (member == v || is_victim[member]) continue;
          pairs.emplace_back(member, leaf);
        }
      }
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

      // Greedy cover: members we already control vote for free; then buy
      // the members covering the most of the victim's leaves first.
      std::vector<std::pair<PartyId, std::size_t>> feeds;
      std::vector<PartyId> buys;
      std::size_t votes = 0;
      for (const auto& [member, leaf] : pairs) {
        if (!ours(member)) continue;
        feeds.emplace_back(member, leaf);
        ++votes;
      }
      std::vector<std::pair<std::size_t, PartyId>> candidates;  // (-coverage, member)
      for (std::size_t i = 0; i < pairs.size();) {
        std::size_t j = i;
        while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
        if (!ours(pairs[i].first)) {
          candidates.emplace_back(pairs.size() - (j - i), pairs[i].first);
        }
        i = j;
      }
      std::sort(candidates.begin(), candidates.end());
      for (const auto& [neg_cov, member] : candidates) {
        if (votes > leaves.size() || buys.size() >= budget_left) break;
        buys.push_back(member);
        for (const auto& [m, leaf] : pairs) {
          if (m == member) feeds.emplace_back(m, leaf);
        }
        votes += pairs.size() - neg_cov;
      }
      if (votes <= leaves.size()) continue;  // cannot out-vote; spend nothing

      for (PartyId member : buys) {
        schedule_corruption(cfg_.dissem_start, member);
        planned[member] = true;
        --budget_left;
      }
      is_victim[v] = true;
      victims_.push_back(Victim{v, std::move(feeds)});
      // Isolate the victim from the send round in which honest leaf
      // committees report (dissem subround h-1) through the end of the run:
      // the evil votes planted one round earlier are the only ones that
      // land, and no later phase reaches the victim either.
      partitions_.push_back(PartitionWindow{
          cfg_.dissem_start + cfg_.tree->height() - 1, cfg_.total_rounds + 2, {v}});
      --want;
    }
  }

  void plan_partition_heal() {
    const std::size_t n = cfg_.corrupt.size();
    std::vector<PartyId> order = hash_order(4);
    std::vector<PartyId> group(order.begin(), order.begin() + n / 4);
    // The cut must cover the whole almost-everywhere front end: a cut that
    // starts at dissemination still leaks the agreed value to the minority
    // through same-side committee members, and then every protocol's
    // last-resort fallback adopts it — no frontier. From round 0 the
    // minority knows nothing until the heal, and only protocols with a
    // post-heal certified path (π_ba's step-6 dissemination and PRF rounds)
    // can still carry it to a decision.
    partitions_.push_back(PartitionWindow{0, cfg_.boost_start + 1, group});
    // Spend the budget fail-silencing majority-side parties once the value
    // is in flight: the recovery now runs on thinned committees.
    std::size_t budget_left = cfg_.budget;
    for (auto it = order.rbegin(); it != order.rend() && budget_left > 0; ++it) {
      PartyId p = *it;
      if (controls(p)) continue;
      bool in_group = false;
      for (PartyId g : group) {
        if (g == p) { in_group = true; break; }
      }
      if (in_group) continue;
      schedule_corruption(cfg_.dissem_start, p);
      --budget_left;
    }
  }

  /// Rushing lift of the true (y, s) from the root committee's dissemination
  /// push; the forged blob flips y and keeps s.
  void lift_blob(const std::vector<Message>& honest_outbox) {
    for (const Message& m : honest_outbox) {
      std::uint32_t phase;
      std::uint64_t instance;
      Bytes body;
      if (!untag_body(m.payload, phase, instance, body)) continue;
      if (phase != 3) continue;
      Reader r(body);
      r.u8();   // stage
      r.u64();  // node id
      Bytes value = r.raw(r.remaining());
      bool y;
      Bytes s;
      if (!r.ok() || !decode_ys(value, y, s)) continue;
      good_blob_ = std::move(value);
      evil_blob_ = encode_ys(!y, s);
      return;
    }
  }

  void takeover_poison_subtree(std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    if (tree.root().children.empty()) return;
    Writer w;
    w.u8(0);  // kStageCommittee
    w.u64(chosen_child_);
    w.raw(evil_blob_);
    Bytes body = std::move(w).take();
    for (PartyId member : tree.supreme_committee()) {
      if (!controls(member)) continue;
      for (PartyId p : tree.node(chosen_child_).committee) {
        out.push_back(make_msg(member, p, tag_body(3, 0, body), MsgKind::kUnknown));
      }
    }
  }

  void takeover_split_push(std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    const std::size_t n = cfg_.corrupt.size();
    auto framed = [&](PartyId signer, const Bytes& blob) {
      Writer w;
      w.bytes(blob);
      w.raw(cfg_.registry->sign(signer, blob).view());
      return tag_body(AeBoostParty::kBoostPhase, 0, std::move(w).take());
    };
    std::vector<PartyId> members(tree.supreme_committee());
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (PartyId member : members) {
      if (!controls(member)) continue;
      Bytes evil = framed(member, evil_blob_);
      Bytes good = framed(member, *good_blob_);
      for (PartyId p = 0; p < n; ++p) {
        if (p == member) continue;
        out.push_back(make_msg(member, p, p < n / 2 ? evil : good, MsgKind::kUnknown));
      }
    }
  }

  void takeover_answer_polls(const std::vector<Message>& corrupt_inbox,
                             std::vector<Message>& out) {
    bool y;
    Bytes s;
    if (!decode_ys(evil_blob_, y, s)) return;
    Bytes reply{std::uint8_t('r'), static_cast<std::uint8_t>(y ? 1 : 0)};
    for (const Message& m : corrupt_inbox) {
      std::uint32_t phase;
      std::uint64_t instance;
      Bytes body;
      if (!untag_body(m.payload, phase, instance, body)) continue;
      if (phase != AeBoostParty::kBoostPhase) continue;
      if (body.size() != 1 || body[0] != 'q') continue;
      if (!controls(m.to)) continue;
      out.push_back(make_msg(m.to, m.from,
                             tag_body(AeBoostParty::kBoostPhase, 0, reply),
                             MsgKind::kUnknown));
    }
  }

  void eclipse_feed_victims(std::vector<Message>& out) {
    const CommTree& tree = *cfg_.tree;
    for (const Victim& v : victims_) {
      for (const auto& [agent, leaf] : v.feeds) {
        if (!controls(agent)) continue;  // corruption request was denied
        Writer w;
        w.u8(1);  // kStageParty
        w.u64(tree.node(leaf).id);
        w.raw(evil_blob_);
        out.push_back(make_msg(agent, v.party, tag_body(3, 0, std::move(w).take()),
                               MsgKind::kUnknown));
      }
    }
  }

  struct Victim {
    PartyId party = 0;  // the eclipsed honest party
    // Controlled (member, leaf) pairs — one evil leaf-stage vote each; must
    // out-number the victim's own loopback self-votes.
    std::vector<std::pair<PartyId, std::size_t>> feeds;
  };

  CampaignConfig cfg_;
  std::vector<PartitionWindow> partitions_;
  std::vector<Victim> victims_;
  std::size_t chosen_child_ = 0;
  std::optional<Bytes> good_blob_;
  Bytes evil_blob_;
};

}  // namespace

std::unique_ptr<Adversary> make_pi_ba_attacker(PiBaAttackConfig config) {
  return std::make_unique<PiBaAttacker>(std::move(config));
}

CampaignSetup make_campaign(CampaignConfig config) {
  auto adversary = std::make_unique<GridCampaignAdversary>(std::move(config));
  CampaignSetup setup;
  setup.partitions = adversary->partitions();
  setup.adversary = std::move(adversary);
  return setup;
}

}  // namespace srds

// Common scaffold for "almost-everywhere agreement + boost" protocols.
//
// Every protocol row reproduced from Table 1 shares the same front end
// (steps 1-3 of Fig. 3):
//   P1  f_ba   — the supreme committee agrees on y from its inputs;
//   P2  f_ct   — the supreme committee tosses the seed s;
//   P3  f_ae-comm — (y, s) is disseminated down the tree, reaching all but
//       the isolated parties.
// Subclasses implement the *boost* that upgrades this certified/uncertified
// almost-everywhere agreement to full agreement — this is exactly the step
// whose per-party cost Table 1 compares (Θ(n) for naive/BGT'13/star,
// Õ(√n) for sampling, Õ(1) for the SRDS protocol of this paper).
//
// Message framing: payload = tag_body(phase, instance, body) with phases
//   1 = committee BA, 2 = coin toss, 3 = dissemination,
//   kBoostPhase (10) = subclass traffic (inner framing is subclass-defined).
#pragma once

#include <memory>
#include <optional>

#include "consensus/coin_toss.hpp"
#include "consensus/committee_ba.hpp"
#include "crypto/simsig.hpp"
#include "net/protocol.hpp"
#include "net/subproto.hpp"
#include "obs/budget.hpp"
#include "tree/comm_tree.hpp"
#include "tree/dissemination.hpp"

namespace srds {

struct AeConfig {
  std::shared_ptr<const CommTree> tree;
  SimSigRegistryPtr registry;
  std::uint64_t seed = 1;  // base for per-party local randomness

  /// Broadcast mode (Corollary 1.2(1)): when set, party inputs are ignored
  /// and the supreme committee agrees on the bit this party injects in an
  /// extra leading round — turning the protocol into a 1-bit broadcast with
  /// the same Õ(1) per-party cost.
  std::optional<PartyId> broadcaster;

  /// Graceful degradation under network faults (docs/fault_model.md): run
  /// this many extra rounds after the boost phase, during which late
  /// boost-phase traffic is still ingested (grace_step), and a party still
  /// undecided at the very end decides from partial information
  /// (decide_with_partial_info) instead of hanging undecided. 0 = paper
  /// schedule, decide only through the protocol's own steps.
  std::size_t grace_rounds = 0;
};

class AeBoostParty : public Party {
 public:
  AeBoostParty(AeConfig config, PartyId me, bool input);

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>& inbox) final;
  bool done() const final { return done_; }

  /// The decided bit (nullopt = undecided; isolated parties may stay
  /// undecided in protocols without a final boost-to-everyone).
  const std::optional<bool>& output() const { return output_; }

  /// Total protocol length in rounds (identical for all parties),
  /// including any grace rounds.
  std::size_t total_rounds() const {
    return boost_start_ + boost_rounds() + cfg_.grace_rounds;
  }

  /// First round of the boost phase (for phase-marked cost accounting).
  std::size_t boost_start() const { return boost_start_; }

  /// Payloads this party received but could not frame-parse (its own phase
  /// demux plus the committee sub-protocols' child-index demux). run_ba sums
  /// this over the surviving honest parties into stats.faults.malformed_frames.
  std::uint64_t malformed_frames() const {
    std::uint64_t total = malformed_;
    if (ba_) total += ba_->malformed_frames();
    if (ct_) total += ct_->malformed_frames();
    return total;
  }

  // Full phase schedule (round indices), exposed so the harness can
  // register phase marks with an observability TraceSink.
  std::size_t ba_start() const { return ba_start_; }
  std::size_t ct_start() const { return ct_start_; }
  std::size_t dissem_start() const { return dissem_start_; }
  std::size_t grace_start() const { return boost_start_ + boost_rounds(); }

  /// The protocol's declared per-party communication budget for its boost
  /// phase — the Table 1 asymptotic, as an executable claim the harness
  /// registers with an obs::BudgetAuditor (docs/observability.md). Bounds
  /// bits sent+received per honest party during the "boost" ledger phase.
  virtual obs::Budget boost_budget() const = 0;

  static constexpr std::uint32_t kBoostPhase = 10;

 protected:
  /// Rounds the subclass's boost needs (fixed, from public parameters).
  virtual std::size_t boost_rounds() const = 0;

  /// One boost round (k = 0 .. boost_rounds()-1). `inbox` holds boost-phase
  /// bodies addressed to me this round. Returned messages must already be
  /// fully framed (use make_boost_message).
  virtual std::vector<Message> boost_step(std::size_t k,
                                          const std::vector<TaggedMsg>& inbox) = 0;

  /// Called once after the final boost round's arrivals were processed.
  virtual void boost_finish() {}

  /// One grace round (only with cfg.grace_rounds > 0): `inbox` holds late
  /// boost-phase bodies. Subclasses may keep ingesting (e.g., delayed PRF
  /// sends); the default discards them.
  virtual void grace_step(const std::vector<TaggedMsg>& inbox) { (void)inbox; }

  /// Last resort at the very end of the grace window for a party without an
  /// output: decide from partial information. The default adopts the
  /// almost-everywhere value if one arrived. Subclasses with stronger
  /// partial evidence (e.g., a verified certificate) should prefer it.
  virtual void decide_with_partial_info() {
    if (ae_y_.has_value()) output_ = *ae_y_;
  }

  /// `kind` labels the send for the observability layer's per-kind
  /// breakdowns; it never affects delivery or protocol behavior.
  Message make_boost_message(PartyId to, std::uint64_t instance, BytesView body,
                             MsgKind kind = MsgKind::kUnknown) const {
    return make_msg(me_, to, tag_body(kBoostPhase, instance, body), kind);
  }

  void set_output(bool y) { output_ = y; }

  // Available to subclasses once the almost-everywhere phases finished
  // (from boost round 0 on): the (y, s) pair this party received, if any.
  const std::optional<bool>& ae_y() const { return ae_y_; }
  const std::optional<Bytes>& ae_seed() const { return ae_seed_; }
  /// Serialized (y, s) blob — the message the SRDS signs.
  const std::optional<Bytes>& ae_blob() const { return ae_blob_; }

  const AeConfig& config() const { return cfg_; }
  PartyId me() const { return me_; }
  bool in_supreme_committee() const { return in_committee_; }

 private:
  void finish_ae_phase();
  void make_committee_protocols(bool ba_input_bit);

  AeConfig cfg_;
  PartyId me_;
  bool input_;
  bool in_committee_ = false;
  std::size_t committee_t_ = 0;

  // Phase schedule (round indices). In broadcast mode everything shifts by
  // one round for the sender -> supreme-committee injection.
  std::size_t inject_rounds_ = 0;
  std::size_t ba_start_ = 0, ct_start_ = 0, dissem_start_ = 0, boost_start_ = 0;
  std::optional<bool> injected_bit_;  // committee members: bit from the sender

  std::unique_ptr<CommitteeBaProto> ba_;
  std::unique_ptr<CoinTossProto> ct_;
  std::unique_ptr<DisseminationProto> dissem_;

  std::optional<bool> ae_y_;
  std::optional<Bytes> ae_seed_;
  std::optional<Bytes> ae_blob_;

  std::optional<bool> output_;
  bool done_ = false;
  std::uint64_t malformed_ = 0;
};

/// Encode/decode the (y, s) pair disseminated in P3 and signed by the SRDS.
Bytes encode_ys(bool y, BytesView s);
bool decode_ys(BytesView blob, bool& y, Bytes& s);

}  // namespace srds

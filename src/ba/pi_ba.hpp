// π_ba — the paper's balanced Byzantine agreement protocol (Figure 3).
//
// Boost phases on top of the shared almost-everywhere front end (steps 1-3,
// provided by AeBoostParty):
//   B0           (step 4)  every party signs its received (y, s) under each
//                          of its virtual identities and sends the base
//                          signatures to the corresponding leaf committees;
//   B1..Bh       (step 5)  level-by-level aggregation: members of each node
//                          apply the range checks (step 5c, via
//                          node_range_filter) and the f_aggr-sig
//                          functionality, then pass σ_v to the parent's
//                          committee;
//   Bh+1..B2h+1  (step 6)  certified dissemination of (y, s, σ_root);
//   B2h+2        (step 7)  every certified party sends (y, s, σ) to the
//                          PRF-selected subset C_i = F_s(i);
//   B2h+3        (step 8)  a party accepting a valid (y, s, σ) from some
//                          P_i with me ∈ F_s(i) outputs y.
// Every party's communication is polylog(n)·poly(κ): committee memberships,
// z base signatures, and a PRF fan-out of polylog size.
#pragma once

#include <map>
#include <memory>

#include "ba/ae_boost.hpp"
#include "ba/certified_dissem.hpp"
#include "srds/srds.hpp"

namespace srds {

struct PiBaConfig {
  AeConfig ae;
  SrdsSchemePtr scheme;  // over ae.tree->virtual_count() signers, finalized
  std::size_t prf_fanout = 0;  // 0 = default: committee_size
  std::size_t certificate_redundancy = 3;
  /// Extra retransmission rounds for the certified dissemination (step 6)
  /// under a lossy network; 0 = paper schedule. All parties must agree.
  std::size_t dissem_retries = 0;
};

class PiBaParty final : public AeBoostParty {
 public:
  PiBaParty(PiBaConfig config, PartyId me, bool input);

  /// Whether this party ended with a verifying certificate (diagnostics).
  bool has_certificate() const { return !certificate_.empty(); }

  /// Õ(1) = polylog(n) bits per party — the paper's Theorem 1.1 claim.
  /// Constants differ per SRDS instantiation (SNARK aggregates are compact;
  /// OWF-SRDS ships sortition proofs); both are c·log²(n) with a validity
  /// floor of n = 512, below which ceil(log)-quantized committee sizes
  /// dominate every asymptotic separation (docs/observability.md).
  obs::Budget boost_budget() const override;

 protected:
  std::size_t boost_rounds() const override;
  std::vector<Message> boost_step(std::size_t k, const std::vector<TaggedMsg>& inbox)
      override;
  void boost_finish() override;
  /// Under a grace window, delayed step-7 sends are still accepted — they
  /// carry self-certifying (y, s, σ), so late acceptance is always safe.
  void grace_step(const std::vector<TaggedMsg>& inbox) override;
  /// Prefer the verified certificate's value; fall back to the
  /// almost-everywhere value (safe under benign faults only).
  void decide_with_partial_info() override;

 private:
  // Inner framing of boost bodies (after the instance prefix added by the
  // base class): instance = node id for aggregation traffic; kind bytes
  // distinguish base signatures, aggregates, dissemination and PRF sends.
  static constexpr std::uint64_t kDissemInstance = 1ULL << 62;
  static constexpr std::uint64_t kPrfInstance = (1ULL << 62) + 1;

  std::vector<Message> step_sign_and_send();                           // step 4
  void ingest_aggregation(const std::vector<TaggedMsg>& inbox, std::size_t level);
  std::vector<Message> step_aggregate(std::size_t level,
                                      const std::vector<TaggedMsg>& inbox);  // step 5
  std::vector<Message> step_prf_send();                                // step 7
  void ingest_prf(const std::vector<TaggedMsg>& inbox);                // step 8

  PiBaConfig cfg2_;
  std::size_t prf_fanout_;
  std::unique_ptr<CertifiedDissemProto> cert_dissem_;

  // Aggregation state: inputs collected per node (only for my nodes).
  std::map<std::uint64_t, std::vector<Bytes>> node_inputs_;
  Bytes sigma_root_;     // set for supreme-committee members after step 5
  Bytes certificate_;    // the certificate I ended with (step 6/8)
  std::optional<Bytes> certified_blob_;  // the (y,s) blob my certificate signs
};

}  // namespace srds

#include "ba/ae_boost.hpp"

#include <algorithm>

#include "common/serial.hpp"

namespace srds {

Bytes encode_ys(bool y, BytesView s) {
  Writer w;
  w.u8(y ? 1 : 0);
  w.bytes(s);
  return std::move(w).take();
}

bool decode_ys(BytesView blob, bool& y, Bytes& s) {
  Reader r(blob);
  y = r.u8() != 0;
  s = r.bytes();
  return r.done() && s.size() == 32;
}

AeBoostParty::AeBoostParty(AeConfig config, PartyId me, bool input)
    : cfg_(std::move(config)), me_(me), input_(input) {
  const auto& committee = cfg_.tree->supreme_committee();
  in_committee_ = std::find(committee.begin(), committee.end(), me_) != committee.end();
  committee_t_ = (committee.size() - 1) / 3;

  const std::size_t ba_rounds = committee_t_ + 2;
  const std::size_t ct_rounds = 2 * (committee_t_ + 2);
  const std::size_t dissem_rounds = cfg_.tree->height() + 1;

  inject_rounds_ = cfg_.broadcaster.has_value() ? 1 : 0;
  ba_start_ = inject_rounds_;
  ct_start_ = ba_start_ + ba_rounds;
  dissem_start_ = ct_start_ + ct_rounds;
  boost_start_ = dissem_start_ + dissem_rounds;

  if (in_committee_ && !cfg_.broadcaster.has_value()) {
    // BA mode: the committee BA exists from the start with my input. In
    // broadcast mode it is created after the sender's injection round.
    make_committee_protocols(input_);
  } else if (in_committee_) {
    ct_ = std::make_unique<CoinTossProto>(cfg_.registry, committee, committee_t_,
                                          to_bytes("pi-ba/f_ct"), me_,
                                          cfg_.seed * 0x10001ULL + me_);
  }
}

void AeBoostParty::make_committee_protocols(bool ba_input_bit) {
  const auto& committee = cfg_.tree->supreme_committee();
  Bytes ba_input{static_cast<std::uint8_t>(ba_input_bit ? 1 : 0)};
  ba_ = std::make_unique<CommitteeBaProto>(cfg_.registry, committee, committee_t_,
                                           to_bytes("pi-ba/f_ba"), me_, ba_input);
  if (!ct_) {
    ct_ = std::make_unique<CoinTossProto>(cfg_.registry, committee, committee_t_,
                                          to_bytes("pi-ba/f_ct"), me_,
                                          cfg_.seed * 0x10001ULL + me_);
  }
}

// srds-lint: shard-root(AeBoostParty::on_round) — the per-party round
// entry point; everything it reaches must be shardable (rule C1).
std::vector<Message> AeBoostParty::on_round(std::size_t round,
                                            const std::vector<Message>& inbox) {
  // Demux by phase tag.
  std::vector<TaggedMsg> ba_in, ct_in, dissem_in, boost_in;
  for (const auto& m : inbox) {
    std::uint32_t phase;
    std::uint64_t instance;
    Bytes body;
    if (!untag_body(m.payload, phase, instance, body)) {
      malformed_ += 1;
      continue;
    }
    switch (phase) {
      case 1:
        ba_in.push_back(TaggedMsg{m.from, std::move(body)});
        break;
      case 2:
        ct_in.push_back(TaggedMsg{m.from, std::move(body)});
        break;
      case 3:
        dissem_in.push_back(TaggedMsg{m.from, std::move(body)});
        break;
      case kBoostPhase: {
        // Re-attach the instance so subclasses can demultiplex: the boost
        // body delivered is (u64 instance || body).
        Writer w;
        w.u64(instance);
        w.raw(body);
        boost_in.push_back(TaggedMsg{m.from, std::move(w).take()});
        break;
      }
      default:
        break;
    }
  }

  std::vector<Message> out;
  auto emit = [&](std::uint32_t phase, std::vector<std::pair<PartyId, Bytes>> msgs) {
    MsgKind kind = MsgKind::kUnknown;
    switch (phase) {
      case 1: kind = MsgKind::kCommitteeBa; break;
      case 2: kind = MsgKind::kCoinToss; break;
      case 3: kind = MsgKind::kDissem; break;
      default: break;
    }
    for (auto& [to, body] : msgs) {
      out.push_back(make_msg(me_, to, tag_body(phase, 0, body), kind));
    }
  };

  // P0 (broadcast mode only): the sender injects its bit into the supreme
  // committee; committee members form their BA input from it next round.
  if (cfg_.broadcaster.has_value()) {
    if (round == 0 && me_ == *cfg_.broadcaster) {
      Bytes bit{static_cast<std::uint8_t>(input_ ? 1 : 0)};
      for (PartyId p : cfg_.tree->supreme_committee()) {
        if (p != me_) out.push_back(make_msg(me_, p, tag_body(4, 0, bit), MsgKind::kInject));
      }
      if (in_committee_) injected_bit_ = input_;
    }
    if (round == 1 && in_committee_) {
      for (const auto& m : inbox) {
        std::uint32_t phase;
        std::uint64_t instance;
        Bytes body;
        if (untag_body(m.payload, phase, instance, body) && phase == 4 &&
            m.from == *cfg_.broadcaster && body.size() == 1) {
          injected_bit_ = body[0] != 0;
        }
      }
      make_committee_protocols(injected_bit_.value_or(false));
    }
  }

  // P1: committee BA.
  if (ba_ && round >= ba_start_ && round < ba_start_ + ba_->rounds()) {
    emit(1, ba_->step(round - ba_start_, ba_in));
  }
  // P2: coin toss.
  if (ct_ && round >= ct_start_ && round < ct_start_ + ct_->rounds()) {
    emit(2, ct_->step(round - ct_start_, ct_in));
  }
  // P3: dissemination (constructed lazily; committee members seed it with
  // their agreed (y, s)).
  if (round == dissem_start_) {
    std::optional<Bytes> init;
    if (in_committee_ && ba_ && ct_ && ba_->output().has_value() &&
        ct_->output().has_value()) {
      bool y = !ba_->output()->empty() && (*ba_->output())[0] != 0;
      init = encode_ys(y, *ct_->output());
    }
    dissem_ = std::make_unique<DisseminationProto>(cfg_.tree, me_, std::move(init));
  }
  if (dissem_ && round >= dissem_start_ && round < dissem_start_ + dissem_->rounds()) {
    emit(3, dissem_->step(round - dissem_start_, dissem_in));
    if (round + 1 == dissem_start_ + dissem_->rounds()) finish_ae_phase();
  }

  // Boost phase. The subclass's round budget must include a final
  // ingest-only step (messages sent in its step k arrive at step k+1).
  const std::size_t boost_end = boost_start_ + boost_rounds();
  if (round >= boost_start_ && round < boost_end) {
    auto msgs = boost_step(round - boost_start_, boost_in);
    out.insert(out.end(), std::make_move_iterator(msgs.begin()),
               std::make_move_iterator(msgs.end()));
    if (round + 1 == boost_end) {
      boost_finish();
      if (cfg_.grace_rounds == 0) done_ = true;
    }
  }

  // Grace window: keep ingesting late boost traffic; at the very end, a
  // still-undecided party falls back to partial information rather than
  // ending the run undecided (graceful degradation under network faults).
  if (cfg_.grace_rounds > 0 && round >= boost_end && round < total_rounds()) {
    grace_step(boost_in);
    if (round + 1 == total_rounds()) {
      if (!output_.has_value()) decide_with_partial_info();
      done_ = true;
    }
  }
  return out;
}

void AeBoostParty::finish_ae_phase() {
  if (!dissem_ || !dissem_->output().has_value()) return;
  bool y;
  Bytes s;
  if (!decode_ys(*dissem_->output(), y, s)) return;
  ae_y_ = y;
  ae_seed_ = s;
  ae_blob_ = *dissem_->output();
}

}  // namespace srds

#include "ba/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "common/mathutil.hpp"
#include "common/serial.hpp"
#include "crypto/prf.hpp"

namespace srds {

// --- Naive: all-to-all signed value exchange ---

std::vector<Message> NaiveBoostParty::boost_step(std::size_t k,
                                                 const std::vector<TaggedMsg>& inbox) {
  const std::size_t n = config().tree->params().n;
  std::vector<Message> out;
  if (k == 0) {
    if (!ae_y().has_value()) return out;
    std::uint8_t y = *ae_y() ? 1 : 0;
    Writer w;
    w.u8(y);
    Bytes target{std::uint8_t('n'), std::uint8_t('v'), y};
    w.raw(config().registry->sign(me(), target).view());
    Bytes body = std::move(w).take();
    for (PartyId p = 0; p < n; ++p) {
      if (p != me()) out.push_back(make_boost_message(p, 0, body, MsgKind::kBoostFlood));
    }
    votes_[y] += 1;  // my own vote
    return out;
  }
  // Ingest: count one authenticated vote per sender.
  std::vector<bool> seen(n, false);
  for (const auto& msg : inbox) {
    if (msg.from >= n || seen[msg.from]) continue;
    Reader r(msg.body);
    r.u64();  // instance prefix
    std::uint8_t y = r.u8();
    Bytes sig_raw = r.raw(32);
    if (!r.done() || y > 1) continue;
    Bytes target{std::uint8_t('n'), std::uint8_t('v'), y};
    if (!config().registry->verify(msg.from, target, Digest::from(sig_raw))) continue;
    seen[msg.from] = true;
    votes_[y] += 1;
  }
  if (votes_[0] + votes_[1] > 0) set_output(votes_[1] > votes_[0]);
  return out;
}

// --- BGT'13-style multisig boost ---

std::size_t MultisigBoostParty::home_leaf() const {
  return config().tree->leaf_of_virtual(config().tree->virtuals_of(me()).front());
}

bool MultisigBoostParty::validate(BytesView value, BytesView sigma) const {
  Multisig ms;
  if (!Multisig::deserialize(sigma, ms)) return false;
  if (ms.signer_count() * 2 < config().tree->params().n) return false;
  return msig_->verify(value, ms);
}

std::size_t MultisigBoostParty::boost_rounds() const {
  const std::size_t h = config().tree->height();
  return 1 + h + (h + 1) + 1 + 1;  // sign, aggregate, disseminate, prf, ingest
}

std::vector<Message> MultisigBoostParty::boost_step(std::size_t k,
                                                    const std::vector<TaggedMsg>& inbox) {
  const CommTree& tree = *config().tree;
  const std::size_t h = tree.height();
  const std::size_t n = tree.params().n;
  std::vector<Message> out;

  auto split = [](const TaggedMsg& msg, std::uint64_t& instance, Bytes& body) {
    Reader r(msg.body);
    instance = r.u64();
    if (!r.ok()) return false;
    body = r.raw(r.remaining());
    return r.ok();
  };

  if (k == 0) {
    // Sign and send a singleton multisig to my home leaf's committee.
    if (!ae_blob().has_value()) return out;
    Multisig single = MultisigRegistry::aggregate(
        n, {me()}, {msig_->sign(me(), *ae_blob())});
    Bytes body = single.serialize();
    std::size_t leaf = home_leaf();
    std::vector<PartyId> recipients(tree.node(leaf).committee.begin(),
                                    tree.node(leaf).committee.end());
    std::sort(recipients.begin(), recipients.end());
    recipients.erase(std::unique(recipients.begin(), recipients.end()), recipients.end());
    for (PartyId p : recipients) {
      out.push_back(make_boost_message(p, leaf, body, MsgKind::kBoostSign));
    }
    return out;
  }

  if (k >= 1 && k <= h) {
    // Aggregate level k: merge valid candidates with disjoint signer sets.
    for (const auto& msg : inbox) {
      std::uint64_t instance;
      Bytes body;
      if (!split(msg, instance, body) || instance >= tree.node_count()) continue;
      if (tree.node(instance).level != k) continue;
      node_inputs_[instance].push_back(std::move(body));
    }
    if (!ae_blob().has_value()) return out;
    for (std::size_t id : tree.level_nodes(k)) {
      const TreeNode& node = tree.node(id);
      if (std::find(node.committee.begin(), node.committee.end(), me()) ==
          node.committee.end()) {
        continue;
      }
      auto it = node_inputs_.find(id);
      if (it == node_inputs_.end()) continue;
      Multisig merged;
      merged.signers.assign(n, false);
      bool any = false;
      for (const auto& blob : it->second) {
        Multisig ms;
        if (!Multisig::deserialize(blob, ms)) continue;
        if (!msig_->verify(*ae_blob(), ms)) continue;
        Multisig trial = merged;
        if (MultisigRegistry::merge(trial, ms)) {
          merged = std::move(trial);
          any = true;
        }
      }
      if (!any) continue;
      Bytes body = merged.serialize();
      if (node.parent == TreeNode::kNoParent) {
        sigma_root_ = std::move(body);
      } else {
        const auto& pc = tree.node(node.parent).committee;
        std::vector<PartyId> recipients(pc.begin(), pc.end());
        std::sort(recipients.begin(), recipients.end());
        recipients.erase(std::unique(recipients.begin(), recipients.end()),
                         recipients.end());
        for (PartyId p : recipients) {
          out.push_back(make_boost_message(p, node.parent, body, MsgKind::kBoostAggregate));
        }
      }
    }
    return out;
  }

  const std::size_t dissem_base = h + 1;
  if (k >= dissem_base && k < dissem_base + h + 1) {
    std::size_t sub = k - dissem_base;
    if (sub == 0) {
      std::optional<Bytes> init;
      Bytes sigma;
      if (in_supreme_committee() && ae_blob().has_value()) {
        init = *ae_blob();
        sigma = sigma_root_;
      }
      cert_dissem_ = std::make_unique<CertifiedDissemProto>(
          config().tree, me(), std::move(init), std::move(sigma),
          [this](BytesView value, BytesView sigma_bytes) {
            return validate(value, sigma_bytes);
          },
          /*redundancy=*/3);
    }
    std::vector<TaggedMsg> dissem_in;
    for (const auto& msg : inbox) {
      std::uint64_t instance;
      Bytes body;
      if (split(msg, instance, body) && instance == kDissemInstance) {
        dissem_in.push_back(TaggedMsg{msg.from, std::move(body)});
      }
    }
    for (auto& [to, body] : cert_dissem_->step(sub, dissem_in)) {
      out.push_back(make_boost_message(to, kDissemInstance, body, MsgKind::kBoostCert));
    }
    if (sub == h && cert_dissem_->value().has_value() &&
        !cert_dissem_->certificate().empty()) {
      certified_blob_ = cert_dissem_->value();
      certificate_ = cert_dissem_->certificate();
    }
    return out;
  }

  if (k == dissem_base + h + 1) {
    // PRF round (like Fig. 3 step 7, but the certificate is Θ(n) bits).
    if (!certified_blob_.has_value() || certificate_.empty()) return out;
    bool y;
    Bytes s;
    if (!decode_ys(*certified_blob_, y, s)) return out;
    set_output(y);
    Writer w;
    w.bytes(*certified_blob_);
    w.bytes(certificate_);
    Bytes body = std::move(w).take();
    std::size_t fanout = std::min(tree.params().committee_size, n);
    for (std::size_t to : prf_subset(s, me(), n, fanout)) {
      if (to != me()) {
        out.push_back(make_boost_message(static_cast<PartyId>(to), kPrfInstance, body,
                                         MsgKind::kBoostPrf));
      }
    }
    return out;
  }

  // Final ingest.
  if (!output().has_value()) {
    std::size_t fanout = std::min(tree.params().committee_size, n);
    for (const auto& msg : inbox) {
      std::uint64_t instance;
      Bytes body;
      if (!split(msg, instance, body) || instance != kPrfInstance) continue;
      Reader r(body);
      Bytes blob = r.bytes();
      Bytes cert = r.bytes();
      if (!r.done()) continue;
      bool y;
      Bytes s;
      if (!decode_ys(blob, y, s)) continue;
      if (!prf_subset_contains(s, msg.from, n, fanout, me())) continue;
      if (!validate(blob, cert)) continue;
      set_output(y);
      break;
    }
  }
  return out;
}

// --- KS'11-style sampling boost ---

SamplingBoostParty::SamplingBoostParty(AeConfig config, PartyId me, bool input,
                                       std::size_t samples)
    : AeBoostParty(std::move(config), me, input),
      samples_(samples),
      rng_(this->config().seed * 0x9e3779b9ULL + me + 1) {
  if (samples_ == 0) {
    const std::size_t n = this->config().tree->params().n;
    double s = std::sqrt(static_cast<double>(n)) *
               static_cast<double>(at_least(ceil_log2(n), 1));
    samples_ = std::min<std::size_t>(n - 1, static_cast<std::size_t>(s));
  }
}

std::vector<Message> SamplingBoostParty::boost_step(std::size_t k,
                                                    const std::vector<TaggedMsg>& inbox) {
  const std::size_t n = config().tree->params().n;
  std::vector<Message> out;
  if (k == 0) {
    // Query a random sample.
    for (std::size_t to : rng_.subset(n, samples_)) {
      if (to != me()) {
        out.push_back(
            make_boost_message(to, 0, Bytes{std::uint8_t('q')}, MsgKind::kBoostQuery));
      }
    }
    return out;
  }
  if (k == 1) {
    // Respond to queries with my almost-everywhere value.
    if (!ae_y().has_value()) return out;
    Bytes body{std::uint8_t('r'), static_cast<std::uint8_t>(*ae_y() ? 1 : 0)};
    std::vector<bool> replied(n, false);
    for (const auto& msg : inbox) {
      Reader r(msg.body);
      r.u64();
      if (r.u8() != 'q' || !r.done()) continue;
      if (msg.from >= n || replied[msg.from]) continue;
      replied[msg.from] = true;
      out.push_back(make_boost_message(msg.from, 0, body, MsgKind::kBoostResponse));
    }
    return out;
  }
  // Ingest responses; majority of polled answers.
  std::vector<bool> seen(n, false);
  for (const auto& msg : inbox) {
    Reader r(msg.body);
    r.u64();
    if (r.u8() != 'r') continue;
    std::uint8_t y = r.u8();
    if (!r.done() || y > 1) continue;
    if (msg.from >= n || seen[msg.from]) continue;
    seen[msg.from] = true;
    votes_[y] += 1;
  }
  if (ae_y().has_value()) votes_[*ae_y() ? 1 : 0] += 1;
  if (votes_[0] + votes_[1] > 0) set_output(votes_[1] > votes_[0]);
  return out;
}

// --- ACD'19-style star boost ---

std::vector<Message> StarBoostParty::boost_step(std::size_t k,
                                                const std::vector<TaggedMsg>& inbox) {
  const std::size_t n = config().tree->params().n;
  const auto& committee = config().tree->supreme_committee();
  std::vector<Message> out;
  if (k == 0) {
    // Supreme-committee members push the signed value to everyone.
    if (!in_supreme_committee() || !ae_blob().has_value()) return out;
    Writer w;
    w.bytes(*ae_blob());
    w.raw(config().registry->sign(me(), *ae_blob()).view());
    Bytes body = std::move(w).take();
    for (PartyId p = 0; p < n; ++p) {
      if (p != me()) out.push_back(make_boost_message(p, 0, body, MsgKind::kBoostFlood));
    }
    if (ae_y().has_value()) set_output(*ae_y());
    return out;
  }
  // Ingest: accept the value backed by a majority of the committee.
  std::vector<bool> seen(n, false);
  for (const auto& msg : inbox) {
    if (std::find(committee.begin(), committee.end(), msg.from) == committee.end()) {
      continue;
    }
    if (msg.from >= n || seen[msg.from]) continue;
    Reader r(msg.body);
    r.u64();
    Bytes blob = r.bytes();
    Bytes sig_raw = r.raw(32);
    if (!r.done()) continue;
    if (!config().registry->verify(msg.from, blob, Digest::from(sig_raw))) continue;
    seen[msg.from] = true;
    committee_votes_[blob] += 1;
  }
  for (const auto& [blob, votes] : committee_votes_) {
    if (votes * 2 > committee.size()) {
      bool y;
      Bytes s;
      if (decode_ys(blob, y, s)) set_output(y);
      break;
    }
  }
  return out;
}

}  // namespace srds

#include "ba/runner.hpp"

#include <chrono>
#include <memory>

#include "ba/attack.hpp"
#include "ba/baselines.hpp"
#include "ba/pi_ba.hpp"
#include "common/rng.hpp"
#include "net/simulator.hpp"
#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"

namespace srds {

namespace {

void accumulate(NetworkStats& into, const NetworkStats& add) {
  if (into.party.size() != add.party.size()) {
    into = NetworkStats(add.party.size());
  }
  into.rounds += add.rounds;
  for (std::size_t i = 0; i < add.party.size(); ++i) {
    into.party[i].bytes_sent += add.party[i].bytes_sent;
    into.party[i].bytes_recv += add.party[i].bytes_recv;
    into.party[i].msgs_sent += add.party[i].msgs_sent;
    into.party[i].msgs_recv += add.party[i].msgs_recv;
    into.party[i].peers_out.insert(add.party[i].peers_out.begin(),
                                   add.party[i].peers_out.end());
    into.party[i].peers_in.insert(add.party[i].peers_in.begin(),
                                  add.party[i].peers_in.end());
  }
}

/// Time `fn()` and report it to `sink` (if any) as an off-network span.
template <typename Fn>
void timed_span(obs::TraceSink* sink, const char* name, Fn&& fn) {
  if (!sink) {
    fn();
    return;
  }
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  sink->on_span(name, static_cast<std::uint64_t>(
                          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                              .count()));
}

}  // namespace

const char* protocol_name(BoostProtocol p) {
  switch (p) {
    case BoostProtocol::kPiBaOwf:
      return "pi_ba/owf-srds";
    case BoostProtocol::kPiBaSnark:
      return "pi_ba/snark-srds";
    case BoostProtocol::kNaive:
      return "naive-all-to-all";
    case BoostProtocol::kMultisig:
      return "bgt13-multisig";
    case BoostProtocol::kSampling:
      return "ks11-sampling";
    case BoostProtocol::kStar:
      return "acd19-star";
  }
  return "?";
}

BaRunResult run_ba(const BaRunConfig& config) {
  Rng rng(config.seed ^ 0x62612d72756e6e65ULL);

  TreeParams tp = TreeParams::scaled(config.n);
  if (config.committee_factor != 1.0) {
    auto scale = [&](std::size_t v) {
      return std::max<std::size_t>(
          3, static_cast<std::size_t>(static_cast<double>(v) * config.committee_factor));
    };
    tp.committee_size = scale(tp.committee_size) | 1;
    tp.leaf_committee = scale(tp.leaf_committee);
    tp.root_committee = scale(tp.root_committee) | 1;
  }
  std::shared_ptr<const CommTree> tree;
  timed_span(config.trace, "tree-build",
             [&] { tree = std::make_shared<const CommTree>(tp, rng.next()); });
  auto registry = std::make_shared<const SimSigRegistry>(config.n, rng.next());

  AeConfig ae;
  ae.tree = tree;
  ae.registry = registry;
  ae.seed = rng.next();

  // Chaos hardening: under a fault plan or an adaptive campaign, budget a
  // grace window for late traffic and retransmit certificate shares during
  // π_ba's step 6. Both knobs derive from public configuration, so all
  // parties agree on the stretched schedule.
  const bool chaos = (config.faults.has_value() && config.faults->any()) ||
                     config.campaign != CampaignKind::kNone;
  ae.grace_rounds = config.grace_rounds;
  if (ae.grace_rounds == 0 && chaos) {
    ae.grace_rounds = std::max<std::size_t>(
        config.faults ? config.faults->suggested_grace() : 0, 2);
  }
  std::size_t dissem_retries = 0;
  if (chaos && config.certificate_redundancy > 1) {
    dissem_retries = std::min<std::size_t>(config.certificate_redundancy - 1, 3);
  }

  // SRDS setup where needed. In the model every party generates its own
  // keys during the setup phase; the harness performs those calls centrally
  // (trusted-PKI dealer for OWF, bulletin-board collection for SNARK).
  SrdsSchemePtr scheme;
  if (config.protocol == BoostProtocol::kPiBaOwf) {
    OwfSrdsParams p;
    p.n_signers = tree->virtual_count();
    p.expected_signers = std::min(config.expected_signers, p.n_signers);
    p.backend = config.backend;
    scheme = std::make_shared<OwfSrds>(p, rng.next());
  } else if (config.protocol == BoostProtocol::kPiBaSnark) {
    SnarkSrdsParams p;
    p.n_signers = tree->virtual_count();
    p.backend = config.backend;
    scheme = std::make_shared<SnarkSrds>(p, rng.next());
  }
  if (scheme) {
    timed_span(config.trace, "srds-keygen", [&] {
      for (std::size_t i = 0; i < scheme->signer_count(); ++i) scheme->keygen(i);
      scheme->finalize_keys();
    });
  }

  std::shared_ptr<const MultisigRegistry> msig;
  if (config.protocol == BoostProtocol::kMultisig) {
    msig = std::make_shared<const MultisigRegistry>(config.n, rng.next());
  }

  // Static fail-silent corruption, chosen independently of the tree.
  std::vector<bool> corrupt(config.n, false);
  std::size_t t = static_cast<std::size_t>(config.beta * static_cast<double>(config.n));
  for (auto idx : rng.subset(config.n, t)) corrupt[idx] = true;

  std::vector<std::unique_ptr<Party>> parties(config.n);
  std::size_t total_rounds = 0;
  std::size_t boost_start = 0;
  std::size_t ct_start = 0, dissem_start = 0;
  obs::Budget boost_budget;  // the protocol's declared Table 1 claim
  for (PartyId i = 0; i < config.n; ++i) {
    if (corrupt[i]) continue;
    std::unique_ptr<AeBoostParty> party;
    switch (config.protocol) {
      case BoostProtocol::kPiBaOwf:
      case BoostProtocol::kPiBaSnark: {
        PiBaConfig pc;
        pc.ae = ae;
        pc.scheme = scheme;
        pc.certificate_redundancy = config.certificate_redundancy;
        pc.dissem_retries = dissem_retries;
        party = std::make_unique<PiBaParty>(std::move(pc), i, config.input);
        break;
      }
      case BoostProtocol::kNaive:
        party = std::make_unique<NaiveBoostParty>(ae, i, config.input);
        break;
      case BoostProtocol::kMultisig:
        party = std::make_unique<MultisigBoostParty>(ae, msig, i, config.input);
        break;
      case BoostProtocol::kSampling:
        party = std::make_unique<SamplingBoostParty>(ae, i, config.input);
        break;
      case BoostProtocol::kStar:
        party = std::make_unique<StarBoostParty>(ae, i, config.input);
        break;
    }
    total_rounds = party->total_rounds();
    boost_start = party->boost_start();
    ct_start = party->ct_start();
    dissem_start = party->dissem_start();
    boost_budget = party->boost_budget();
    parties[i] = std::move(party);
  }

  std::unique_ptr<Adversary> adversary;
  std::vector<PartitionWindow> campaign_partitions;
  std::size_t corruption_budget = 0;
  if (config.campaign != CampaignKind::kNone) {
    corruption_budget = static_cast<std::size_t>(config.corruption_rate *
                                                 static_cast<double>(config.n));
    CampaignConfig cc;
    cc.kind = config.campaign;
    cc.tree = tree;
    cc.registry = registry;
    cc.corrupt = corrupt;
    cc.budget = corruption_budget;
    cc.seed = rng.next();  // drawn only on this path: kNone runs keep their streams
    cc.dissem_start = dissem_start;
    cc.boost_start = boost_start;
    cc.total_rounds = total_rounds;
    CampaignSetup setup = make_campaign(std::move(cc));
    adversary = std::move(setup.adversary);
    campaign_partitions = std::move(setup.partitions);
  } else if (config.active_adversary && scheme) {
    const std::size_t h = tree->height();
    PiBaAttackConfig attack;
    attack.tree = tree;
    attack.scheme = scheme;
    attack.corrupt = corrupt;
    attack.boost_start = boost_start;
    attack.dissem3_start = boost_start - (h + 1);
    attack.prf_round = boost_start + 2 * h + 2 + dissem_retries;
    attack.seed = rng.next();
    adversary = make_pi_ba_attacker(std::move(attack));
  }

  // Effective fault plan = the configured one plus the campaign's partition
  // windows (a campaign without faults still gets a plan to carry them).
  std::optional<FaultPlan> plan = config.faults;
  if (!campaign_partitions.empty()) {
    if (!plan.has_value()) {
      plan.emplace();
      plan->seed = config.seed ^ 0x63616d706169676eULL;
    }
    plan->partitions.insert(plan->partitions.end(), campaign_partitions.begin(),
                            campaign_partitions.end());
  }

  Simulator sim(std::move(parties), corrupt, std::move(adversary));
  sim.set_phase_mark(boost_start);
  sim.set_corruption_budget(corruption_budget);
  if (plan.has_value() && plan->any()) sim.set_fault_plan(*plan);
  for (obs::TraceSink* sink : {static_cast<obs::TraceSink*>(config.trace),
                               static_cast<obs::TraceSink*>(config.ledger)}) {
    if (!sink) continue;
    sim.add_trace_sink(sink);
    // Register the public phase schedule so the sink can attribute every
    // round (and its traffic) to a protocol phase.
    sink->on_phase(0, "f_ba");
    sink->on_phase(ct_start, "f_ct");
    sink->on_phase(dissem_start, "f_ae-dissem");
    sink->on_phase(boost_start, "boost");
    if (ae.grace_rounds > 0) {
      sink->on_phase(total_rounds - ae.grace_rounds, "grace");
    }
  }
  BaRunResult result;
  result.corruption_budget = corruption_budget;
  result.rounds = sim.run(total_rounds + 2);
  result.stats = sim.stats();
  result.boost_stats = sim.phase_stats();
  result.boost_rounds = total_rounds - boost_start;
  result.adaptively_corrupted = sim.stats().faults.adaptive_corruptions;
  result.plan_issues = sim.plan_issues();

  // Account over the FINAL corruption mask: a party the campaign flipped
  // mid-run is the adversary's, not a data point about honest behavior.
  std::vector<bool> final_corrupt(config.n, false);
  for (PartyId i = 0; i < config.n; ++i) final_corrupt[i] = sim.is_corrupt(i);

  for (PartyId i = 0; i < config.n; ++i) {
    if (final_corrupt[i]) continue;
    ++result.honest;
    if (sim.is_crashed(i)) ++result.crashed;
    const auto* party = dynamic_cast<const AeBoostParty*>(sim.party(i));
    if (!party) continue;
    // Frame-parse failures are tallied by the parties themselves (the
    // network cannot read framing); surface the honest total next to the
    // network-level fault counters.
    result.stats.faults.malformed_frames += party->malformed_frames();
    if (!party->output().has_value()) continue;
    ++result.decided;
    bool y = *party->output();
    if (result.value.has_value() && *result.value != y) result.agreement = false;
    result.value = y;
    if (y == config.input) ++result.correct;
  }

  // Audit the declared communication budgets over the honest parties (the
  // paper's bounds quantify over honest parties; fail-silent corruptions
  // receive protocol traffic but owe nothing, and adaptively seized slots
  // carry adversary traffic that no honest budget governs).
  if (config.ledger) {
    obs::BudgetAuditor auditor;
    auditor.require(protocol_name(config.protocol), "boost", boost_budget);
    auditor.require("f_ba", "f_ba", CommitteeBaProto::phase_budget());
    auditor.require("f_ct", "f_ct", CoinTossProto::phase_budget());
    result.budget_evals = auditor.evaluate(*config.ledger, &final_corrupt);
    if (config.strict_budgets) {
      std::vector<obs::BudgetEval> findings;
      for (const obs::BudgetEval& e : result.budget_evals) {
        if (!e.skipped && !e.ok) findings.push_back(e);
      }
      if (!findings.empty()) {
        const obs::BudgetEval& f = findings.front();
        throw BudgetViolation(
            "budget violation: " + f.protocol + " phase '" + f.phase + "' at n=" +
                std::to_string(f.n) + ": party " + std::to_string(f.worst_party) +
                " used " + std::to_string(f.max_bits) + " bits > bound " +
                std::to_string(static_cast<std::uint64_t>(f.bound_bits)) + " (" +
                std::to_string(f.violators) + "/" + std::to_string(f.audited) +
                " parties over)",
            std::move(findings));
      }
    }
  }
  return result;
}

BroadcastRunResult run_broadcast_service(const BroadcastRunConfig& config) {
  Rng rng(config.seed ^ 0x62636173742d7376ULL);

  auto tree = std::make_shared<const CommTree>(TreeParams::scaled(config.n), rng.next());
  auto registry = std::make_shared<const SimSigRegistry>(config.n, rng.next());

  std::vector<bool> corrupt(config.n, false);
  std::size_t t = static_cast<std::size_t>(config.beta * static_cast<double>(config.n));
  for (auto idx : rng.subset(config.n, t)) corrupt[idx] = true;
  std::vector<PartyId> honest_ids;
  for (PartyId i = 0; i < config.n; ++i) {
    if (!corrupt[i]) honest_ids.push_back(i);
  }

  BroadcastRunResult result;
  result.stats = NetworkStats(config.n);

  for (std::size_t b = 0; b < config.ell; ++b) {
    PartyId sender = honest_ids[b % honest_ids.size()];
    bool bit = (b % 2 == 0);

    AeConfig ae;
    ae.tree = tree;
    ae.registry = registry;
    ae.seed = rng.next();
    ae.broadcaster = sender;

    // One-time signatures: a fresh SRDS key set per broadcast execution
    // (the ℓ sets would be pre-published on the bulletin board in one shot;
    // key generation is local and costs no communication either way).
    SrdsSchemePtr scheme =
        make_instance_scheme(config.protocol, config.backend, config.expected_signers,
                             tree->virtual_count(), rng.next());

    std::vector<std::unique_ptr<Party>> parties(config.n);
    std::size_t total_rounds = 0;
    for (PartyId i : honest_ids) {
      PiBaConfig pc;
      pc.ae = ae;
      pc.scheme = scheme;
      auto party = std::make_unique<PiBaParty>(std::move(pc), i, bit);
      total_rounds = party->total_rounds();
      parties[i] = std::move(party);
    }

    Simulator sim(std::move(parties), corrupt, nullptr);
    if (config.ledger) {
      config.ledger->set_accumulate(true);
      sim.add_trace_sink(config.ledger);
    }
    sim.run(total_rounds + 2);
    accumulate(result.stats, sim.stats());

    std::optional<bool> agreed;
    for (PartyId i : honest_ids) {
      ++result.possible;
      const auto* party = dynamic_cast<const AeBoostParty*>(sim.party(i));
      if (!party) continue;
      result.stats.faults.malformed_frames += party->malformed_frames();
      if (!party->output().has_value()) continue;
      bool y = *party->output();
      if (agreed.has_value() && *agreed != y) result.agreement = false;
      agreed = y;
      if (y == bit) ++result.delivered;
    }
  }
  return result;
}

ServiceEnv make_service_env(std::size_t n, double beta, std::uint64_t seed) {
  Rng rng(seed ^ 0x73766320656e7600ULL);
  ServiceEnv env;
  env.tree = std::make_shared<const CommTree>(TreeParams::scaled(n), rng.next());
  env.registry = std::make_shared<const SimSigRegistry>(n, rng.next());
  env.corrupt.assign(n, false);
  const std::size_t t = static_cast<std::size_t>(beta * static_cast<double>(n));
  for (auto idx : rng.subset(n, t)) env.corrupt[idx] = true;
  for (PartyId i = 0; i < n; ++i) {
    if (!env.corrupt[i]) env.honest.push_back(i);
  }
  return env;
}

SrdsSchemePtr make_instance_scheme(BoostProtocol protocol, BaseSigBackend backend,
                                   std::size_t expected_signers,
                                   std::size_t virtual_count, std::uint64_t seed) {
  SrdsSchemePtr scheme;
  if (protocol == BoostProtocol::kPiBaOwf) {
    OwfSrdsParams p;
    p.n_signers = virtual_count;
    p.expected_signers = std::min(expected_signers, p.n_signers);
    p.backend = backend;
    scheme = std::make_shared<OwfSrds>(p, seed);
  } else if (protocol == BoostProtocol::kPiBaSnark) {
    SnarkSrdsParams p;
    p.n_signers = virtual_count;
    p.backend = backend;
    scheme = std::make_shared<SnarkSrds>(p, seed);
  } else {
    throw std::invalid_argument("make_instance_scheme: protocol is not a pi_ba variant");
  }
  for (std::size_t i = 0; i < scheme->signer_count(); ++i) scheme->keygen(i);
  scheme->finalize_keys();
  return scheme;
}

}  // namespace srds

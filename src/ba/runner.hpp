// One-call harness for executing a full BA run on the simulator:
// builds the tree, PKI/SRDS setup, parties and adversary, runs to
// completion, and reports outputs plus the network-measured costs.
// Used by the integration tests, the benchmark binaries and the examples.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/simsig.hpp"
#include "net/campaign.hpp"
#include "net/faults.hpp"
#include "net/stats.hpp"
#include "obs/budget.hpp"
#include "obs/ledger.hpp"
#include "obs/trace.hpp"
#include "srds/srds.hpp"
#include "tree/comm_tree.hpp"

namespace srds {

enum class BoostProtocol {
  kPiBaOwf,     // this work, OWF-SRDS (trusted PKI)
  kPiBaSnark,   // this work, SNARK-SRDS (bare PKI + CRS)
  kNaive,       // all-to-all signed exchange
  kMultisig,    // BGT'13-style, Θ(n)-bit signer bitmaps
  kSampling,    // KS'11/KLST'11-style √n polling
  kStar,        // ACD+'19-style unbalanced star
};

const char* protocol_name(BoostProtocol p);

struct BaRunConfig {
  std::size_t n = 0;
  double beta = 0.0;  // fraction of parties corrupted (fail-silent)
  std::uint64_t seed = 1;
  BoostProtocol protocol = BoostProtocol::kPiBaSnark;
  /// Base-signature backend for the SRDS variants (kCompact recommended for
  /// n >= 256; kWots exercises the faithful hash-based signatures).
  BaseSigBackend backend = BaseSigBackend::kCompact;
  /// OWF-SRDS sortition target (expected signers, the paper's polylog(n)).
  std::size_t expected_signers = 48;
  /// Every honest party's input bit (protocol validity: output must match
  /// when all honest inputs agree).
  bool input = true;
  /// Drive corrupted parties with the active π_ba attacker (ba/attack.hpp)
  /// instead of fail-silence. Only meaningful for the π_ba protocols.
  /// Ignored when `campaign` is set — a campaign brings its own adversary.
  bool active_adversary = false;

  /// Adaptive attack campaign (ba/attack.hpp). When not kNone, the harness
  /// installs the campaign's adversary, merges its partition windows into
  /// the effective fault plan, and hands the simulator an adaptive
  /// corruption budget of floor(corruption_rate * n). The run counts as a
  /// chaos run (grace window, certificate retransmits) even without a
  /// FaultPlan of its own.
  CampaignKind campaign = CampaignKind::kNone;
  /// Fraction of n the campaign may adaptively corrupt mid-run.
  double corruption_rate = 0.0;
  /// Sparse-σ redundancy of the certified dissemination (π_ba step 6).
  std::size_t certificate_redundancy = 3;
  /// Multiplier on the scaled tree committee sizes (ablation knob).
  double committee_factor = 1.0;

  /// Optional network fault plan (chaos run — docs/fault_model.md). When
  /// set, the simulator injects drops/delays/duplicates/crashes/partitions
  /// and the protocols harden themselves: π_ba retransmits certificate
  /// shares (bounded by certificate_redundancy) and every protocol gets a
  /// grace window to ingest late traffic and degrade gracefully.
  std::optional<FaultPlan> faults;
  /// Extra rounds appended after the boost phase for late traffic; 0 =
  /// derive from the fault plan (faults->suggested_grace(), 0 without one).
  std::size_t grace_rounds = 0;

  /// Optional observability sink (non-owning; must outlive run_ba). The
  /// harness installs it on the simulator, registers the protocol's phase
  /// schedule (f_ba / f_ct / f_ae-dissem / boost / grace) as phase marks,
  /// and reports setup work (tree build, SRDS keygen) as wall-clock spans.
  obs::TraceSink* trace = nullptr;

  /// Optional per-party ledger (non-owning; must outlive run_ba), installed
  /// alongside `trace` — both observe the same run. When set, the harness
  /// additionally registers the protocol's declared communication budgets
  /// (the boost phase's Table 1 claim plus the shared f_ba/f_ct front-end
  /// bounds) and evaluates them over the honest parties after the run; the
  /// evaluations land in BaRunResult::budget_evals.
  obs::Ledger* ledger = nullptr;

  /// Hard-fail (throw srds::BudgetViolation) when any registered budget is
  /// violated. Requires `ledger`. This is the bench binaries'
  /// --strict-budgets flag.
  bool strict_budgets = false;
};

/// Thrown by run_ba under strict_budgets when an audited budget fails.
struct BudgetViolation : std::runtime_error {
  explicit BudgetViolation(const std::string& what, std::vector<obs::BudgetEval> f)
      : std::runtime_error(what), findings(std::move(f)) {}
  std::vector<obs::BudgetEval> findings;
};

struct BaRunResult {
  NetworkStats stats{0};
  /// Costs of the boost phase alone (Fig. 3 steps 4-8 / each baseline's
  /// boost) — the quantity Table 1 compares; the shared almost-everywhere
  /// front end (f_ba + f_ct + f_ae-comm) is excluded here.
  NetworkStats boost_stats{0};
  std::size_t boost_rounds = 0;
  std::size_t rounds = 0;
  /// Parties that finished the run honest — statically corrupted slots and
  /// adaptive mid-run corruptions are both excluded (the paper's guarantees
  /// quantify over parties honest at the end of the execution).
  std::size_t honest = 0;
  std::size_t decided = 0;   // honest parties with an output
  std::size_t correct = 0;   // honest parties whose output == input
  std::size_t crashed = 0;   // honest parties crash-stopped by the fault plan
  bool agreement = true;     // no two honest parties decided differently
  std::optional<bool> value; // the decided value (if any party decided)

  /// Adaptive-campaign accounting (zero without a campaign): the budget the
  /// simulator was given and the corruptions actually granted from it.
  std::size_t corruption_budget = 0;
  std::size_t adaptively_corrupted = 0;

  /// Validation findings for the effective fault plan (config.faults plus
  /// any campaign partitions) — warnings only; errors throw out of run_ba.
  std::vector<FaultPlanIssue> plan_issues;

  /// Budget evaluations (one per registered claim, in registration order);
  /// empty unless BaRunConfig::ledger was set. A *finding* is an entry with
  /// skipped == false && ok == false.
  std::vector<obs::BudgetEval> budget_evals;

  double decided_fraction() const {
    return honest ? static_cast<double>(decided) / static_cast<double>(honest) : 0.0;
  }

  /// Decided fraction among honest parties that did not crash-stop — the
  /// fair resilience metric (a crashed party cannot decide by definition).
  double surviving_decided_fraction() const {
    std::size_t live = honest - crashed;
    return live ? static_cast<double>(decided) / static_cast<double>(live) : 0.0;
  }
};

BaRunResult run_ba(const BaRunConfig& config);

/// Corollary 1.2(1): run `ell` one-bit broadcasts (rotating honest senders,
/// alternating bits) over one shared tree/PKI. Costs accumulate across
/// executions per party, so `stats` reports the ℓ-execution totals — the
/// corollary's claim is that the max per party grows as ℓ · polylog(n).
struct BroadcastRunConfig {
  std::size_t n = 0;
  std::size_t ell = 1;
  double beta = 0.0;
  std::uint64_t seed = 1;
  BoostProtocol protocol = BoostProtocol::kPiBaSnark;  // must be a π_ba variant
  BaseSigBackend backend = BaseSigBackend::kCompact;
  std::size_t expected_signers = 48;

  /// Optional ledger (non-owning). Switched to accumulate mode and fed from
  /// all ℓ executions, so its per-party totals are the corollary's
  /// ℓ-execution quantity.
  obs::Ledger* ledger = nullptr;
};

struct BroadcastRunResult {
  NetworkStats stats{0};      // summed over the ℓ executions
  std::size_t delivered = 0;  // honest deliveries matching the sender's bit
  std::size_t possible = 0;   // honest parties x ℓ
  bool agreement = true;
};

BroadcastRunResult run_broadcast_service(const BroadcastRunConfig& config);

/// Long-lived environment shared by every execution of a BA service
/// (Cor. 1.2): one comm tree + signature registry amortized over the ℓ
/// agreement requests, plus the static fail-silent corruption mask drawn the
/// same way run_ba draws it. The svc daemon builds this once at startup.
struct ServiceEnv {
  std::shared_ptr<const CommTree> tree;
  SimSigRegistryPtr registry;
  std::vector<bool> corrupt;
  std::vector<PartyId> honest;  // ids with corrupt[i] == false
};

ServiceEnv make_service_env(std::size_t n, double beta, std::uint64_t seed);

/// Build a fresh, fully keyed SRDS scheme for ONE broadcast execution over an
/// existing comm tree (`virtual_count` = tree->virtual_count()). This is the
/// Cor. 1.2 service pattern — one-time signatures need a fresh key set per
/// execution; the ℓ sets would be pre-published on the bulletin board in one
/// setup, and generation is local either way so it costs no communication.
/// `protocol` must be a π_ba variant (kPiBaOwf or kPiBaSnark; anything else
/// throws std::invalid_argument). Shared by run_broadcast_service and the
/// long-lived svc daemon, which mints one scheme per admitted request.
SrdsSchemePtr make_instance_scheme(BoostProtocol protocol, BaseSigBackend backend,
                                   std::size_t expected_signers,
                                   std::size_t virtual_count, std::uint64_t seed);

}  // namespace srds

#include "tree/election.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/mathutil.hpp"
#include "common/serial.hpp"
#include "consensus/coin_toss.hpp"
#include "crypto/prf.hpp"
#include "net/host.hpp"
#include "net/simulator.hpp"

namespace srds {

namespace {

/// Trivial idle logic for parties with no group at the current level.
class IdleProto final : public SubProtocol {
 public:
  explicit IdleProto(std::size_t rounds) : rounds_(rounds) {}
  std::size_t rounds() const override { return rounds_; }
  std::vector<std::pair<PartyId, Bytes>> step(std::size_t,
                                              const std::vector<TaggedMsg>&) override {
    return {};
  }

 private:
  std::size_t rounds_;
};

void accumulate(NetworkStats& into, const NetworkStats& add) {
  into.rounds += add.rounds;
  for (std::size_t i = 0; i < add.party.size(); ++i) {
    into.party[i].bytes_sent += add.party[i].bytes_sent;
    into.party[i].bytes_recv += add.party[i].bytes_recv;
    into.party[i].msgs_sent += add.party[i].msgs_sent;
    into.party[i].msgs_recv += add.party[i].msgs_recv;
    into.party[i].peers_out.insert(add.party[i].peers_out.begin(),
                                   add.party[i].peers_out.end());
    into.party[i].peers_in.insert(add.party[i].peers_in.begin(),
                                  add.party[i].peers_in.end());
  }
}

/// One synchronous level: every group tosses a coin in parallel; returns
/// each group's coin (empty when the group had no honest member to report).
std::vector<Bytes> run_coin_level(std::size_t n, const std::vector<bool>& corrupt,
                                  const SimSigRegistryPtr& registry,
                                  const std::vector<std::vector<PartyId>>& groups,
                                  std::size_t level, std::uint64_t seed,
                                  NetworkStats& stats, std::size_t& rounds) {
  // Map party -> its group index at this level.
  std::vector<std::size_t> group_of(n, groups.size());
  std::size_t max_rounds = 1;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (PartyId p : groups[gi]) group_of[p] = gi;
  }

  std::vector<std::unique_ptr<Party>> parties(n);
  for (PartyId p = 0; p < n; ++p) {
    if (corrupt[p]) continue;
    std::size_t gi = group_of[p];
    if (gi == groups.size()) {
      parties[p] = std::make_unique<SubProtocolHost>(p, std::make_unique<IdleProto>(1));
      continue;
    }
    const auto& members = groups[gi];
    std::size_t t = (members.size() - 1) / 3;
    Writer domain;
    domain.str("election");
    domain.u64(level);
    domain.u64(gi);
    auto coin = std::make_unique<CoinTossProto>(registry, members, t,
                                                std::move(domain).take(), p,
                                                seed * 1315423911ULL + p);
    max_rounds = std::max(max_rounds, coin->rounds());
    parties[p] = std::make_unique<SubProtocolHost>(p, std::move(coin), gi);
  }

  Simulator sim(std::move(parties), corrupt, nullptr);
  rounds += sim.run(max_rounds + 2);
  accumulate(stats, sim.stats());

  std::vector<Bytes> coins(groups.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (PartyId p : groups[gi]) {
      if (corrupt[p]) continue;
      auto* host = dynamic_cast<SubProtocolHost*>(sim.party(p));
      if (!host) continue;
      auto* ct = dynamic_cast<CoinTossProto*>(host->protocol());
      if (ct && ct->output().has_value()) {
        coins[gi] = *ct->output();
        break;
      }
    }
  }
  return coins;
}

/// Promote `quota` members of a group using its coin (first members when the
/// group produced no honest-visible coin — fully corrupted groups are the
/// adversary's to steer anyway).
std::vector<PartyId> promote(const std::vector<PartyId>& group, const Bytes& coin,
                             std::size_t group_index, std::size_t quota) {
  quota = std::min(quota, group.size());
  std::vector<PartyId> out;
  if (coin.empty()) {
    out.assign(group.begin(), group.begin() + static_cast<std::ptrdiff_t>(quota));
    return out;
  }
  for (std::size_t idx : prf_subset(coin, group_index, group.size(), quota)) {
    out.push_back(group[idx]);
  }
  return out;
}

}  // namespace

ElectionResult run_committee_election(std::size_t n, const std::vector<bool>& corrupt,
                                      const ElectionParams& params, std::uint64_t seed) {
  if (corrupt.size() != n) {
    throw std::invalid_argument("run_committee_election: corrupt mask size mismatch");
  }
  const std::size_t g = at_least(params.group_size, 4);
  const std::size_t b = at_least(params.merge_arity, 2);
  const std::size_t final_size = params.final_size ? params.final_size : g;

  auto registry = std::make_shared<const SimSigRegistry>(n, seed ^ 0xe1ec710aULL);

  // Level 0: partition by index (public, but carries no committee info —
  // the elections inject the post-corruption randomness).
  std::vector<std::vector<PartyId>> groups;
  for (PartyId p = 0; p < n; p += g) {
    std::vector<PartyId> group;
    for (PartyId q = p; q < std::min<PartyId>(p + g, n); ++q) group.push_back(q);
    if (group.size() >= 4) {
      groups.push_back(std::move(group));
    } else if (!groups.empty()) {
      // Fold a tiny tail group into its predecessor.
      groups.back().insert(groups.back().end(), group.begin(), group.end());
    }
  }

  ElectionResult result;
  result.stats = NetworkStats(n);

  std::size_t level = 0;
  while (groups.size() > 1) {
    auto coins = run_coin_level(n, corrupt, registry, groups, level, seed + level,
                                result.stats, result.rounds);
    // Promote ceil(size / b) members per group, then merge b groups each.
    std::vector<std::vector<PartyId>> next;
    for (std::size_t gi = 0; gi < groups.size(); gi += b) {
      std::vector<PartyId> merged;
      for (std::size_t k = gi; k < std::min(gi + b, groups.size()); ++k) {
        // Promote g/b from each group so full merges restore size ~g.
        auto promoted = promote(groups[k], coins[k], k, ceil_div(g, b));
        merged.insert(merged.end(), promoted.begin(), promoted.end());
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      next.push_back(std::move(merged));
    }
    groups = std::move(next);
    ++level;
  }

  // Final trim: one more coin inside the surviving group if it is larger
  // than the requested supreme-committee size.
  if (groups.front().size() > final_size) {
    auto coins = run_coin_level(n, corrupt, registry, groups, level, seed + level,
                                result.stats, result.rounds);
    groups.front() = promote(groups.front(), coins.front(), 0, final_size);
    ++level;
  }

  result.supreme_committee = groups.front();
  result.levels = level;
  std::size_t bad = 0;
  for (PartyId p : result.supreme_committee) bad += corrupt[p] ? 1 : 0;
  result.committee_corrupt_fraction =
      result.supreme_committee.empty()
          ? 0.0
          : static_cast<double>(bad) / static_cast<double>(result.supreme_committee.size());
  return result;
}

}  // namespace srds

#include "tree/comm_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/mathutil.hpp"
#include "common/rng.hpp"

namespace srds {

TreeParams TreeParams::scaled(std::size_t n) {
  if (n < 8) throw std::invalid_argument("TreeParams::scaled: need n >= 8");
  std::size_t lg = at_least(ceil_log2(n), 3);
  TreeParams p;
  p.n = n;
  p.committee_size = (2 * lg) | 1;     // odd, ~2 log n: keeps corrupt minority whp
  p.branching = at_least(lg / 2, 2);   // ~log n / 2 keeps height >= 2 at small n
  p.leaf_committee = 2 * lg;           // z*
  p.repeats = 4;                       // z
  p.root_committee = (4 * lg) | 1;     // supreme committee runs BA/coin: extra margin
  return p;
}

std::size_t TreeParams::leaf_count() const { return ceil_div(n * repeats, leaf_committee); }

std::size_t TreeParams::virtual_count() const { return leaf_count() * leaf_committee; }

CommTree::CommTree(const TreeParams& params, std::uint64_t seed) : params_(params) {
  if (params_.n == 0 || params_.committee_size == 0 || params_.branching < 2 ||
      params_.leaf_committee == 0 || params_.repeats == 0) {
    throw std::invalid_argument("CommTree: invalid parameters");
  }
  Rng rng(seed ^ 0x636f6d6d74726565ULL);

  leaf_count_ = params_.leaf_count();
  const std::size_t slots = params_.virtual_count();

  // Deal virtual-identity slots: each party appears `repeats` times, then
  // round-robin padding fills the remainder so every slot is owned. A random
  // shuffle assigns slots (and hence leaf committees) to parties.
  std::vector<PartyId> deal;
  deal.reserve(slots);
  for (PartyId i = 0; i < params_.n; ++i) {
    for (std::size_t r = 0; r < params_.repeats; ++r) deal.push_back(i);
  }
  for (PartyId i = 0; deal.size() < slots; i = (i + 1) % params_.n) deal.push_back(i);
  rng.shuffle(deal);
  virtual_owner_ = std::move(deal);

  party_virtuals_.assign(params_.n, {});
  for (std::uint64_t vid = 0; vid < virtual_owner_.size(); ++vid) {
    party_virtuals_[virtual_owner_[vid]].push_back(vid);
  }

  // Level 1: leaves. Leaf j's committee = owners of its slot range.
  nodes_.reserve(2 * leaf_count_ + 2);
  std::vector<std::size_t> current;
  for (std::size_t j = 0; j < leaf_count_; ++j) {
    TreeNode leaf;
    leaf.id = nodes_.size();
    leaf.level = 1;
    leaf.vmin = static_cast<std::uint64_t>(j) * params_.leaf_committee;
    leaf.vmax = leaf.vmin + params_.leaf_committee - 1;
    for (std::uint64_t v = leaf.vmin; v <= leaf.vmax; ++v) {
      leaf.committee.push_back(virtual_owner_[v]);
    }
    current.push_back(leaf.id);
    nodes_.push_back(std::move(leaf));
  }
  levels_.push_back(current);

  // Internal levels: group `branching` consecutive children per parent until
  // a single root remains. If there is a single leaf, still add a root above
  // it so a distinct supreme committee exists.
  std::size_t level = 1;
  while (current.size() > 1 || level == 1) {
    ++level;
    std::vector<std::size_t> next;
    for (std::size_t i = 0; i < current.size(); i += params_.branching) {
      TreeNode node;
      node.id = nodes_.size();
      node.level = level;
      std::size_t end = std::min(i + params_.branching, current.size());
      for (std::size_t c = i; c < end; ++c) {
        node.children.push_back(current[c]);
      }
      node.vmin = nodes_[node.children.front()].vmin;
      node.vmax = nodes_[node.children.back()].vmax;
      auto sample = rng.subset(params_.n, std::min(params_.committee_size, params_.n));
      node.committee.assign(sample.begin(), sample.end());
      next.push_back(node.id);
      nodes_.push_back(std::move(node));
    }
    for (std::size_t id : next) {
      for (std::size_t c : nodes_[id].children) nodes_[c].parent = id;
    }
    levels_.push_back(next);
    current = std::move(next);
  }

  root_id_ = current.front();
  height_ = level;

  // The supreme committee gets a larger sample: it must run BA and coin
  // tossing (corrupt fraction < 1/3 required), not just majority voting.
  std::size_t root_size = at_least(params_.root_committee, params_.committee_size);
  auto sample = rng.subset(params_.n, std::min(root_size, params_.n));
  nodes_[root_id_].committee.assign(sample.begin(), sample.end());
}

TreeGoodness CommTree::analyze(const std::vector<bool>& corrupt, GoodnessRule rule) const {
  if (corrupt.size() != params_.n) {
    throw std::invalid_argument("CommTree::analyze: corrupt mask size mismatch");
  }
  TreeGoodness g;
  g.node_good.assign(nodes_.size(), false);
  for (const auto& node : nodes_) {
    std::size_t bad = 0;
    for (PartyId p : node.committee) bad += corrupt[p] ? 1 : 0;
    g.node_good[node.id] = (rule == GoodnessRule::kOneThird)
                               ? (bad * 3 < node.committee.size())
                               : (bad * 2 < node.committee.size());
  }
  g.root_good = g.node_good[root_id_];

  g.leaf_on_good_path.assign(leaf_count_, false);
  std::size_t good_leaves = 0;
  for (std::size_t j = 0; j < leaf_count_; ++j) {
    bool ok = true;
    std::size_t id = j;
    while (true) {
      if (!g.node_good[id]) {
        ok = false;
        break;
      }
      if (id == root_id_) break;
      id = nodes_[id].parent;
    }
    g.leaf_on_good_path[j] = ok;
    good_leaves += ok ? 1 : 0;
  }
  g.good_leaf_fraction =
      leaf_count_ == 0 ? 0.0 : static_cast<double>(good_leaves) / static_cast<double>(leaf_count_);
  return g;
}

std::vector<bool> CommTree::connected_parties(const TreeGoodness& g) const {
  std::vector<bool> connected(params_.n, false);
  for (PartyId i = 0; i < params_.n; ++i) {
    std::size_t good = 0;
    const auto& vids = party_virtuals_[i];
    for (auto vid : vids) {
      if (g.leaf_on_good_path[leaf_of_virtual(vid)]) ++good;
    }
    connected[i] = (2 * good > vids.size());
  }
  return connected;
}

}  // namespace srds

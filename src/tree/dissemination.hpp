// Top-down dissemination over the communication tree — the "supreme
// committee sends a message to all parties except the isolated set D"
// operation of the f_ae-comm functionality (paper §3.1).
//
// Round schedule (height h, so root is level h):
//   step 0        : root-committee members send the value to every member of
//                   each child committee;
//   step k (1..h-1): members of level-(h-k) nodes take a per-node majority of
//                   the copies received from the parent committee and forward
//                   to their children (or, at leaves, to the parties assigned
//                   to the leaf's virtual-ID slots);
//   step h        : every party takes a majority over the copies received
//                   from the leaf committees it is assigned to and fixes its
//                   output.
// Total rounds: h + 1. Per-party communication: each committee membership
// costs O(k · b) copies of the value — polylog(n) overall.
//
// Copies are accepted only from legitimate senders (the parent committee of
// the node they claim to serve), so a Byzantine party cannot out-vote a good
// committee from the outside; within a bad committee the adversary wins that
// node, which is exactly the leeway Def. 2.3 goodness accounts for.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "net/subproto.hpp"
#include "tree/comm_tree.hpp"

namespace srds {

class DisseminationProto final : public SubProtocol {
 public:
  /// `initial_value`: engaged iff `me` is in the supreme committee (the
  /// value agreed by f_ba/f_ct that the committee wants to push down).
  DisseminationProto(std::shared_ptr<const CommTree> tree, PartyId me,
                     std::optional<Bytes> initial_value);

  std::size_t rounds() const override { return tree_->height() + 1; }

  std::vector<std::pair<PartyId, Bytes>> step(
      std::size_t subround, const std::vector<TaggedMsg>& inbox) override;

  /// Final output (engaged after the last step unless nothing was received).
  const std::optional<Bytes>& output() const { return output_; }

 private:
  std::shared_ptr<const CommTree> tree_;
  PartyId me_;
  std::optional<Bytes> initial_value_;
  std::optional<Bytes> output_;
  // node-id -> (value -> count) tallies for copies addressed to me as a
  // member of that node this round.
  std::map<std::uint64_t, std::map<Bytes, std::size_t>> tallies_;
  // One counted copy per (node, sender): a Byzantine sender must not be able
  // to inflate a tally by repeating itself across rounds.
  std::set<std::pair<std::uint64_t, PartyId>> counted_;
  // membership index: node ids (per level) where I sit on the committee
  std::vector<std::vector<std::size_t>> my_nodes_by_level_;  // [level-1]
  std::map<Bytes, std::size_t> party_tally_;  // stage-1 copies addressed to me
};

}  // namespace srds

// The (n, I)-party almost-everywhere-communication tree of King, Saia,
// Sanwalani, Vee (SODA'06), as specified in Definitions 2.3 and 3.4 of the
// paper, with repeated parties (virtual identities).
//
// Structure (paper parameters -> scaled defaults per DESIGN.md S5):
//   * L leaf nodes (paper n/log^5 n       -> ~n/log n here);
//   * each leaf is assigned z* parties    (paper log^5 n  -> ~2 log n);
//   * each party appears in ~z leaf slots (paper O(log^4) -> 4);
//   * internal nodes have b children      (paper log n    -> ~log n)
//     and a committee of k parties        (paper log^3 n  -> ~log n);
//   * height O(log n / log log n).
//
// Virtual identities: leaf slot s *is* virtual ID s, so the virtual IDs
// assigned to leaf j occupy the contiguous range [j*z*, (j+1)*z*), which is
// exactly the planar-increasing-ID property the SRDS robustness experiment
// and the BA protocol's range checks (Fig. 3 step 5c) rely on.
//
// Goodness (Def. 2.3): a node is good if strictly fewer than a third of its
// assigned parties are corrupted; a leaf has a good path if it and all its
// ancestors (incl. the root) are good. The paper's guarantee — all but a
// 3/log n fraction of leaves retain good paths and the root is good — holds
// with high probability over the committee sampling when the adversary
// corrupts independently of the assignment (the model of Section 3; see
// bench/fig_tree_quality for the measured bound and src/lb for what an
// assignment-aware adversary can do instead).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/message.hpp"

namespace srds {

struct TreeParams {
  std::size_t n = 0;               // number of real parties
  std::size_t committee_size = 0;  // k: parties per internal node
  std::size_t branching = 0;       // b: children per internal node
  std::size_t leaf_committee = 0;  // z*: parties per leaf node
  std::size_t repeats = 0;         // z: target leaf slots per party
  std::size_t root_committee = 0;  // supreme-committee size (>= committee_size)

  /// Scaled defaults for laptop-size n (DESIGN.md substitution S5).
  static TreeParams scaled(std::size_t n);

  /// Number of leaves implied: ceil(n * z / z*).
  std::size_t leaf_count() const;
  /// Total virtual identities: leaf_count * z*.
  std::size_t virtual_count() const;
};

struct TreeNode {
  std::size_t id = 0;
  std::size_t level = 0;  // 1 = leaves; root has the highest level
  std::size_t parent = kNoParent;
  std::vector<std::size_t> children;  // empty for leaves
  std::vector<PartyId> committee;     // assigned (real) parties
  std::uint64_t vmin = 0, vmax = 0;   // contiguous virtual-ID range covered

  static constexpr std::size_t kNoParent = std::numeric_limits<std::size_t>::max();
  bool is_leaf() const { return children.empty(); }
};

/// Which corruption threshold defines a "good" node.
///
/// kOneThird is Def. 2.3's notion (needed where committees run BA or coin
/// tossing, and in the SRDS robustness experiment). kMajority is the weaker
/// requirement the dissemination votes and the aggregation relay actually
/// need; the paper's asymptotic parameters make the two coincide whp, but at
/// scaled committee sizes the distinction matters (DESIGN.md S5).
enum class GoodnessRule { kOneThird, kMajority };

/// Per-corruption-set goodness analysis of a tree.
struct TreeGoodness {
  std::vector<bool> node_good;          // by node id
  std::vector<bool> leaf_on_good_path;  // by leaf index (0..L-1)
  bool root_good = false;
  double good_leaf_fraction = 0.0;
};

class CommTree {
 public:
  /// Build the tree with seeded random committee assignment.
  CommTree(const TreeParams& params, std::uint64_t seed);

  const TreeParams& params() const { return params_; }
  std::size_t node_count() const { return nodes_.size(); }
  const TreeNode& node(std::size_t id) const { return nodes_[id]; }
  const TreeNode& root() const { return nodes_[root_id_]; }
  std::size_t root_id() const { return root_id_; }
  /// Height = number of levels above level 0 (leaves are level 1).
  std::size_t height() const { return height_; }

  std::size_t leaf_count() const { return leaf_count_; }
  /// Node id of leaf `j` (leaves are nodes [0, L)).
  std::size_t leaf_node(std::size_t j) const { return j; }
  /// Node ids at a level (1 = leaves, height() = root).
  const std::vector<std::size_t>& level_nodes(std::size_t level) const {
    return levels_[level - 1];
  }

  /// The supreme committee: parties assigned to the root.
  const std::vector<PartyId>& supreme_committee() const { return root().committee; }

  // --- virtual identities (Def. 3.4) ---
  std::size_t virtual_count() const { return virtual_owner_.size(); }
  PartyId owner_of_virtual(std::uint64_t vid) const { return virtual_owner_[vid]; }
  /// The virtual IDs held by party `i` (its idmap row), sorted ascending.
  const std::vector<std::uint64_t>& virtuals_of(PartyId i) const { return party_virtuals_[i]; }
  std::size_t leaf_of_virtual(std::uint64_t vid) const {
    return static_cast<std::size_t>(vid) / params_.leaf_committee;
  }

  // --- goodness analysis ---
  TreeGoodness analyze(const std::vector<bool>& corrupt,
                       GoodnessRule rule = GoodnessRule::kOneThird) const;

  /// Parties whose leaf appearances are majority-on-good-paths; the
  /// complement is the isolated set D of f_ae-comm.
  std::vector<bool> connected_parties(const TreeGoodness& g) const;

 private:
  TreeParams params_;
  std::vector<TreeNode> nodes_;
  std::vector<std::vector<std::size_t>> levels_;  // levels_[l-1] = node ids at level l
  std::size_t root_id_ = 0;
  std::size_t height_ = 0;
  std::size_t leaf_count_ = 0;
  std::vector<PartyId> virtual_owner_;                  // by virtual id
  std::vector<std::vector<std::uint64_t>> party_virtuals_;  // by party
};

}  // namespace srds

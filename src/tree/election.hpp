// Interactive committee election — a lightweight realization of the
// King-Saia-Sanwalani-Vee iterated-sampling idea that f_ae-comm's tree
// construction rests on.
//
// Why this exists (the paper's §1.1 caveat): committees must NOT be
// readable from public setup alone, or the "adversary corrupts after seeing
// the setup" model is trivialized — an assignment-aware adversary simply
// corrupts the supreme committee. The defence is to elect committees
// *interactively*, from randomness that does not exist until after the
// corruption set is fixed.
//
// Protocol shape (KSSV-lite): parties start partitioned into constant-size
// groups; each group runs the VSS-backed coin toss (consensus/coin_toss.hpp)
// to agree on a fresh seed, and the seed pseudorandomly promotes a subset of
// the group; promoted members of b sibling groups merge into a next-level
// group, and the process iterates until one group — the supreme committee —
// remains. Under assignment-independent corruption each level preserves the
// honest fraction whp (sampling without foresight), and the adversary's
// only lever is its minority influence inside groups it already corrupted.
//
// The driver below runs the whole election on the network simulator and
// reports the resulting supreme committee together with the measured
// per-party communication (polylog: each party participates in at most one
// group per level). bench/ablation_election contrasts this against
// CRS-derived committees under a setup-aware adversary.
#pragma once

#include <memory>
#include <vector>

#include "crypto/simsig.hpp"
#include "net/stats.hpp"

namespace srds {

struct ElectionParams {
  std::size_t group_size = 16;   // g: members per group
  std::size_t merge_arity = 4;   // b: groups merged per level
  /// Upper bound on the supreme-committee size (0 = group_size). The actual
  /// committee is min(final_size, survivors of the last merge).
  std::size_t final_size = 0;
};

struct ElectionResult {
  std::vector<PartyId> supreme_committee;
  NetworkStats stats{0};
  std::size_t rounds = 0;
  std::size_t levels = 0;
  /// Fraction of the elected supreme committee that is corrupted (for the
  /// experiment harness; honest parties never learn this, of course).
  double committee_corrupt_fraction = 0.0;
};

/// Run the election among `n` parties with the given corruption mask
/// (corrupted parties are fail-silent here; the coin toss tolerates worse).
ElectionResult run_committee_election(std::size_t n, const std::vector<bool>& corrupt,
                                      const ElectionParams& params, std::uint64_t seed);

}  // namespace srds

#include "tree/dissemination.hpp"

#include <algorithm>

#include "common/serial.hpp"

namespace srds {

namespace {

constexpr std::uint8_t kStageCommittee = 0;
constexpr std::uint8_t kStageParty = 1;

Bytes make_body(std::uint8_t stage, std::uint64_t node_id, BytesView value) {
  Writer w;
  w.u8(stage);
  w.u64(node_id);
  w.raw(value);
  return std::move(w).take();
}

bool parse_body(BytesView body, std::uint8_t& stage, std::uint64_t& node_id, Bytes& value) {
  Reader r(body);
  stage = r.u8();
  node_id = r.u64();
  if (!r.ok()) return false;
  value = r.raw(r.remaining());
  return r.ok();
}

bool is_member(const TreeNode& node, PartyId p) {
  return std::find(node.committee.begin(), node.committee.end(), p) != node.committee.end();
}

/// Deterministic majority: most frequent value, ties broken by byte order.
std::optional<Bytes> majority(const std::map<Bytes, std::size_t>& tally) {
  std::optional<Bytes> best;
  std::size_t best_count = 0;
  for (const auto& [value, count] : tally) {
    if (count > best_count) {
      best = value;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

DisseminationProto::DisseminationProto(std::shared_ptr<const CommTree> tree, PartyId me,
                                       std::optional<Bytes> initial_value)
    : tree_(std::move(tree)), me_(me), initial_value_(std::move(initial_value)) {
  my_nodes_by_level_.resize(tree_->height());
  for (std::size_t lvl = 1; lvl <= tree_->height(); ++lvl) {
    for (std::size_t id : tree_->level_nodes(lvl)) {
      if (is_member(tree_->node(id), me_)) {
        my_nodes_by_level_[lvl - 1].push_back(id);
      }
    }
  }
}

std::vector<std::pair<PartyId, Bytes>> DisseminationProto::step(
    std::size_t subround, const std::vector<TaggedMsg>& inbox) {
  const std::size_t h = tree_->height();

  // Ingest this round's copies into tallies, validating sender legitimacy.
  for (const auto& msg : inbox) {
    std::uint8_t stage;
    std::uint64_t node_id;
    Bytes value;
    if (!parse_body(msg.body, stage, node_id, value)) continue;
    if (node_id >= tree_->node_count()) continue;
    const TreeNode& node = tree_->node(node_id);
    if (stage == kStageCommittee) {
      // Must be addressed to me as a member of `node`, sent by a member of
      // the parent committee.
      if (!is_member(node, me_)) continue;
      if (node.parent == TreeNode::kNoParent) continue;
      if (!is_member(tree_->node(node.parent), msg.from)) continue;
      if (!counted_.insert({node_id, msg.from}).second) continue;
      tallies_[node_id][value] += 1;
    } else if (stage == kStageParty) {
      // Must come from a member of a leaf I am assigned to.
      if (!node.is_leaf() || !is_member(node, msg.from)) continue;
      bool assigned = false;
      for (auto vid : tree_->virtuals_of(me_)) {
        if (tree_->leaf_of_virtual(vid) == node_id) {
          assigned = true;
          break;
        }
      }
      if (!assigned) continue;
      // Dedup per (leaf, sender); the same party may legitimately sit on
      // several of my leaves, each contributing one vote.
      if (!counted_.insert({node_id | (1ULL << 63), msg.from}).second) continue;
      party_tally_[value] += 1;
    }
  }

  std::vector<std::pair<PartyId, Bytes>> out;

  if (subround == 0) {
    // Root committee pushes to its children.
    if (initial_value_.has_value() && !my_nodes_by_level_[h - 1].empty()) {
      const TreeNode& root = tree_->root();
      for (std::size_t child : root.children) {
        Bytes body = make_body(kStageCommittee, child, *initial_value_);
        for (PartyId p : tree_->node(child).committee) {
          out.emplace_back(p, body);
        }
      }
      output_ = initial_value_;  // root members already know the value
    }
    return out;
  }

  if (subround < h) {
    // Members of level (h - subround) forward per-node majorities.
    std::size_t level = h - subround;
    for (std::size_t id : my_nodes_by_level_[level - 1]) {
      auto it = tallies_.find(id);
      if (it == tallies_.end()) continue;
      auto value = majority(it->second);
      if (!value) continue;
      const TreeNode& node = tree_->node(id);
      if (level > 1) {
        for (std::size_t child : node.children) {
          Bytes body = make_body(kStageCommittee, child, *value);
          for (PartyId p : tree_->node(child).committee) {
            out.emplace_back(p, body);
          }
        }
      } else {
        // Leaf: deliver to the owners of the leaf's virtual slots.
        Bytes body = make_body(kStageParty, id, *value);
        std::vector<PartyId> owners;
        for (std::uint64_t v = node.vmin; v <= node.vmax; ++v) {
          owners.push_back(tree_->owner_of_virtual(v));
        }
        std::sort(owners.begin(), owners.end());
        owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
        for (PartyId p : owners) out.emplace_back(p, body);
      }
      // Committee members are themselves parties; make sure they also adopt
      // a party-level value even if not assigned to any leaf slot here.
    }
    return out;
  }

  // Final step: fix the party-level output by majority over leaf copies.
  if (!output_.has_value()) {
    output_ = majority(party_tally_);
  }
  return out;
}

}  // namespace srds

// Empirical demonstrations of the paper's lower bounds for single-round
// boosting with o(n) messages per party (Theorems 1.3 and 1.4).
//
// Scenario: almost-everywhere agreement holds on a bit y; one honest party
// ("the target") is isolated and must catch up in a single round in which
// every honest party sends only polylog(n) messages (to a pseudorandomly
// chosen subset, dynamic filtering allowed). The adversary controls t
// parties and wants the target to output y' != y.
//
// Four setups map the feasibility landscape:
//   * kCrsOnly        (Thm 1.3) — messages carry only publicly computable
//     authentication (a hash involving the CRS). The adversary simulates an
//     alternative execution on y' and floods the target: forged support is
//     indistinguishable from honest support, and with t >> polylog honest
//     messages the target is outvoted. Attack succeeds.
//   * kPkiPlainSigs   — per-sender signatures (a PKI) stop *impersonation*
//     but not the vote: the t corrupted parties legitimately sign y'
//     themselves and still outnumber the polylog honest messages that reach
//     the target. Attack succeeds — individual signatures do not certify
//     majority, which is exactly the gap SRDS fills.
//   * kPkiSrds        — the sender attaches an SRDS certificate (π_ba's
//     step 7). Forging a certificate for y' needs >= threshold base
//     signatures; corrupt parties alone are below n/3 < threshold. Attack
//     fails: the isolated target is safe with a single polylog-size round.
//   * kPkiSrdsInvertedKeys (Thm 1.4) — same, but one-way functions are
//     "broken": the adversary inverts the public keys and signs on behalf
//     of every honest party, forging a certificate for y'. Attack succeeds,
//     showing computational assumptions are necessary even with a PKI.
#pragma once

#include <cstdint>

namespace srds {

enum class BoostSetup {
  kCrsOnly,
  kPkiPlainSigs,
  kPkiSrds,
  kPkiSrdsInvertedKeys,
};

const char* setup_name(BoostSetup s);

struct IsolationConfig {
  std::size_t n = 256;
  std::size_t t = 64;          // corrupted parties (< n/3)
  std::size_t fanout = 0;      // honest per-party message budget (0 = log²n)
  std::uint64_t seed = 1;
};

struct IsolationOutcome {
  bool target_fooled = false;   // target output y' (or nothing useful)
  bool target_correct = false;  // target output y
  std::size_t honest_support = 0;  // honest messages that reached the target
  std::size_t forged_support = 0;  // adversarial messages it accepted as support for y'
};

/// Run the single-round isolation experiment under the given setup.
IsolationOutcome run_isolation_attack(BoostSetup setup, const IsolationConfig& config);

}  // namespace srds

#include "lb/isolation.hpp"

#include <algorithm>

#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "crypto/prf.hpp"
#include "crypto/simsig.hpp"
#include "net/message.hpp"
#include "srds/snark_srds.hpp"

namespace srds {

const char* setup_name(BoostSetup s) {
  switch (s) {
    case BoostSetup::kCrsOnly:
      return "crs-only";
    case BoostSetup::kPkiPlainSigs:
      return "pki-plain-signatures";
    case BoostSetup::kPkiSrds:
      return "pki-srds-certificate";
    case BoostSetup::kPkiSrdsInvertedKeys:
      return "pki-srds-inverted-owf";
  }
  return "?";
}

IsolationOutcome run_isolation_attack(BoostSetup setup, const IsolationConfig& config) {
  Rng rng(config.seed ^ 0x69736f6c6174696fULL);
  const std::size_t n = config.n;
  const std::size_t t = std::min(config.t, n - 1);
  std::size_t lg = at_least(ceil_log2(n), 2);
  const std::size_t fanout =
      std::min(n - 1, config.fanout ? config.fanout : lg * lg / 2);

  // Party n-1 is the isolated honest target; the adversary controls
  // parties [0, t); the remaining parties are honest and hold y = 1.
  const PartyId target = n - 1;
  const bool y = true;    // the almost-everywhere agreed bit
  const bool y_bad = false;

  Bytes seed = rng.bytes(32);  // the honest execution's PRF seed s

  // Honest support: honest non-target parties send to F_s(i); count how
  // many of those subsets contain the target.
  IsolationOutcome out;
  for (PartyId i = t; i < n; ++i) {
    if (i == target) continue;
    if (prf_subset_contains(seed, i, n, fanout, target)) ++out.honest_support;
  }

  switch (setup) {
    case BoostSetup::kCrsOnly:
    case BoostSetup::kPkiPlainSigs: {
      // With or without per-sender signatures, each of the t corrupted
      // parties produces a perfectly well-formed "support y'" message of
      // its own (under a PKI it signs y' itself — no forgery needed). The
      // target's only defence is counting distinct supporters; honest
      // support is capped at its polylog in-degree while the adversary
      // spends its Θ(n) identities on this one victim.
      out.forged_support = t;
      out.target_fooled = out.forged_support > out.honest_support;
      out.target_correct = !out.target_fooled && out.honest_support > 0;
      break;
    }
    case BoostSetup::kPkiSrds:
    case BoostSetup::kPkiSrdsInvertedKeys: {
      // The honest messages carry an SRDS certificate on (y, s); support
      // counting is irrelevant — the target accepts any verifying
      // certificate. Signers = parties; threshold = n/2.
      SnarkSrdsParams params;
      params.n_signers = n;
      params.backend = BaseSigBackend::kCompact;
      SnarkSrds scheme(params, rng.next());
      for (std::size_t i = 0; i < n; ++i) scheme.keygen(i);
      scheme.finalize_keys();

      Bytes good_msg{1};
      Bytes bad_msg{0};
      std::vector<Bytes> honest_sigs;
      for (std::size_t i = t; i < n; ++i) {
        if (i == target) continue;
        honest_sigs.push_back(scheme.sign(i, good_msg));
      }
      Bytes good_cert = scheme.aggregate(good_msg, honest_sigs);
      bool good_valid = !good_cert.empty() && scheme.verify(good_msg, good_cert);

      std::vector<Bytes> adv_sigs;
      if (setup == BoostSetup::kPkiSrds) {
        // The adversary holds only its own t signing keys.
        for (std::size_t i = 0; i < t; ++i) adv_sigs.push_back(scheme.sign(i, bad_msg));
      } else {
        // Theorem 1.4's world: one-way functions are invertible, so the
        // adversary recovers every party's signing key from its public key
        // and signs y' on everyone's behalf.
        for (std::size_t i = 0; i < n; ++i) adv_sigs.push_back(scheme.sign(i, bad_msg));
      }
      Bytes forged_cert = scheme.aggregate(bad_msg, adv_sigs);
      bool forged_valid = !forged_cert.empty() && scheme.verify(bad_msg, forged_cert);

      out.forged_support = forged_valid ? 1 : 0;
      out.target_fooled = forged_valid;  // two "valid worlds" are fatal
      out.target_correct = good_valid && out.honest_support > 0 && !forged_valid;
      break;
    }
  }
  (void)y;
  (void)y_bad;
  return out;
}

}  // namespace srds

// InstancePipeline — staggered concurrent BA instances on one party.
//
// net/parallel.hpp composes sub-protocols in *lockstep*: all children start
// at subround 0 together. The service needs the general form: agreement
// requests arrive at arbitrary rounds, so each party hosts a set of π_ba
// instances that are each at a *different* local round, multiplexed over the
// same authenticated channels with per-instance framing:
//
//   payload' = u64 instance_id ‖ payload
//
// The pipeline is a net Party: the daemon admits an instance into every
// honest party's pipeline between simulator rounds (same round everywhere —
// admission is a daemon decision, so the synchronous schedule stays global),
// and each on_round steps every active instance at its own local round
// (global round − admission round). An instance whose schedule ends retires
// with its output; the daemon collects retirements and feeds decisions back
// to sessions in submission order (svc/session.hpp).
//
// Framing hygiene matches ParallelProto: a payload too short for the
// instance header is counted malformed; a parseable frame for an unknown or
// already-retired instance is counted stale and dropped (messages sent in an
// instance's final round legitimately arrive one round after retirement).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "ba/pi_ba.hpp"
#include "net/protocol.hpp"

namespace srds::svc {

class InstancePipeline final : public Party {
 public:
  explicit InstancePipeline(PartyId me) : me_(me) {}

  /// Admit one BA instance starting at the next simulator round. The daemon
  /// must call this with identical (id, config) on every live honest party
  /// before ticking that round; `input` is the submitted bit for the
  /// broadcaster party and immaterial elsewhere (broadcast mode ignores
  /// non-broadcaster inputs).
  void admit(std::uint64_t id, std::size_t base_round, const PiBaConfig& config,
             bool input);

  /// Instances still running.
  std::size_t active() const { return slots_.size(); }

  /// An instance that finished its schedule on this party.
  struct Retired {
    std::uint64_t id = 0;
    std::size_t retired_round = 0;       // global round of retirement
    std::optional<bool> output;
  };

  /// Drain instances retired since the last call (admission order).
  std::vector<Retired> take_retired();

  /// Keep the party alive with no active instances (a service daemon is
  /// long-lived); close() lets done() engage once the last instance retires.
  void close() { open_ = false; }
  bool done() const override { return !open_ && slots_.empty(); }

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>& inbox) override;

  /// Frame-parse failures: payloads too short for the instance header, plus
  /// whatever the hosted instances' own demux layers rejected.
  std::uint64_t malformed_frames() const;
  /// Well-formed frames for unknown/retired instances (dropped silently).
  std::uint64_t stale_frames() const { return stale_; }

 private:
  struct Slot {
    std::uint64_t id = 0;
    std::size_t base_round = 0;
    std::unique_ptr<PiBaParty> party;
  };

  PartyId me_;
  // Pipeline state is owned by the daemon's round loop (one thread drives
  // every hosted instance); srds-lint rule C3 flags any access from the C1
  // shard-reachable surface.
  bool open_ = true;  // srds-lint: confined(daemon-loop)
  // srds-lint: confined(daemon-loop)
  std::vector<Slot> slots_;  // admission order
  std::vector<Retired> retired_;  // srds-lint: confined(daemon-loop)
  std::uint64_t malformed_ = 0;   // srds-lint: confined(daemon-loop)
  // Carried over from retired instances.
  std::uint64_t retired_malformed_ = 0;  // srds-lint: confined(daemon-loop)
  std::uint64_t stale_ = 0;  // srds-lint: confined(daemon-loop)
};

}  // namespace srds::svc

// Request/response framing for the long-lived BA service (docs/service.md).
//
// The daemon talks to its clients over an ordered byte stream (a Transport
// connection — in-process loopback or TCP, see svc/transport.hpp). Frames are
// length-prefixed so the codec works over any stream transport:
//
//   u32  length        bytes following this field (cap: kMaxFrameLen)
//   u8   type          FrameType
//   u64  session       0 until the server assigns one (kHelloAck)
//   u64  seq           per-session submission sequence number
//   ...  payload       type-specific body (see each FrameType)
//
// Integers are little-endian via common/serial.hpp, like every other wire
// format in the repo. Decoding is incremental and bounds-checked: feed()
// arbitrary chunk boundaries, next() yields complete frames. A frame whose
// header or body fails to parse is *counted* (malformed()) and skipped — the
// length prefix keeps the stream in sync — except an oversized length, which
// desynchronizes the stream permanently and poisons the decoder; the
// connection must be dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/serial.hpp"

namespace srds::svc {

enum class FrameType : std::uint8_t {
  kHello = 1,     // client -> server: open a session (session/seq = 0)
  kHelloAck,      // server -> client: session id + granted window; payload u32 window
  kSubmit,        // client -> server: payload u8 bit to agree on
  kDecision,      // server -> client: payload u8 value, u8 agreement,
                  //   u32 round_span, u64 instance
  kReject,        // server -> client: window full; payload u32 retry_after rounds
  kClose,         // client -> server: end of session
  kError,         // server -> client: payload str diagnostic
  kStats,         // client -> server: request a stats snapshot (empty payload)
  kStatsReply,    // server -> client: payload str — one JSON document with
                  //   daemon/session/ledger totals and prof sites (service.md)
};

/// Largest accepted value of the length prefix. Far above any legitimate
/// frame (the largest body, kError, is a short diagnostic string); a length
/// beyond it means the stream is desynchronized or hostile.
inline constexpr std::size_t kMaxFrameLen = 1u << 16;

/// Bytes of header covered by the length prefix (type + session + seq).
inline constexpr std::size_t kFrameHeaderLen = 1 + 8 + 8;

struct Frame {
  FrameType type = FrameType::kHello;
  std::uint64_t session = 0;
  std::uint64_t seq = 0;
  Bytes payload;
};

/// Serialize one frame (length prefix included).
Bytes encode_frame(const Frame& f);

// Convenience payload builders/parsers for the typed frames.
Frame make_hello();
Frame make_hello_ack(std::uint64_t session, std::uint32_t window);
Frame make_submit(std::uint64_t session, std::uint64_t seq, bool bit);
Frame make_decision(std::uint64_t session, std::uint64_t seq, bool value, bool agreement,
                    std::uint32_t round_span, std::uint64_t instance);
Frame make_reject(std::uint64_t session, std::uint64_t seq, std::uint32_t retry_after);
Frame make_close(std::uint64_t session);
Frame make_error(std::uint64_t session, std::uint64_t seq, const std::string& what);
Frame make_stats(std::uint64_t session);
Frame make_stats_reply(std::uint64_t session, const std::string& json);

struct DecisionPayload {
  bool value = false;
  bool agreement = false;
  std::uint32_t round_span = 0;
  std::uint64_t instance = 0;
};
/// Parse a kDecision payload; false on malformed input.
bool parse_decision(BytesView payload, DecisionPayload& out);
/// Parse a kReject payload; false on malformed input.
bool parse_reject(BytesView payload, std::uint32_t& retry_after);
/// Parse a kHelloAck payload; false on malformed input.
bool parse_hello_ack(BytesView payload, std::uint32_t& window);
/// Parse a kStatsReply payload (the JSON text); false on malformed input.
bool parse_stats_reply(BytesView payload, std::string& json);

/// Incremental stream decoder: feed() chunks as they arrive off the wire,
/// next() pops complete frames in order. One decoder per connection.
class FrameDecoder {
 public:
  /// Append a received chunk (any framing: the transport may split or
  /// coalesce arbitrarily).
  void feed(BytesView chunk);

  /// Pop the next complete frame, if one is buffered. Malformed frames are
  /// counted and skipped internally, so a returned frame is always valid.
  std::optional<Frame> next();

  /// Frames skipped because the header or a known type's body failed to
  /// parse (truncated vs the length prefix, unknown type byte, ...).
  std::uint64_t malformed() const { return malformed_; }

  /// A length prefix exceeded kMaxFrameLen: framing is lost for good and
  /// next() will never return again. Drop the connection.
  bool poisoned() const { return poisoned_; }

  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::uint64_t malformed_ = 0;
  bool poisoned_ = false;
};

/// Where the router delivers valid frames. Implemented by the daemon.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;
  /// `conn` identifies the connection the frame arrived on.
  virtual void on_hello(std::uint64_t conn, const Frame& f) = 0;
  virtual void on_submit(std::uint64_t conn, const Frame& f) = 0;
  /// A kSubmit whose (session, seq) was already forwarded — the framing
  /// layer's duplicate rejection. Typical response: replay the cached
  /// decision if the instance already retired.
  virtual void on_duplicate_submit(std::uint64_t conn, const Frame& f) = 0;
  virtual void on_close(std::uint64_t conn, const Frame& f) = 0;
  /// A kStats snapshot request. Default: ignore (daemons that predate the
  /// stats surface stay valid handlers).
  virtual void on_stats(std::uint64_t conn, const Frame& f) {
    (void)conn;
    (void)f;
  }
};

/// Demultiplexes the server side of many connections: owns one FrameDecoder
/// per connection, rejects duplicate (session, seq) submissions, and
/// dispatches everything else to the handler. Client-bound frame types
/// arriving at the server (kDecision, ...) are counted as misdirected and
/// dropped.
class FrameRouter {
 public:
  explicit FrameRouter(FrameHandler* handler) : handler_(handler) {}

  /// Feed bytes received on `conn` and dispatch every complete frame.
  /// Returns the number of frames dispatched.
  std::size_t on_bytes(std::uint64_t conn, BytesView chunk);

  /// Forget a connection's decoder state (connection closed).
  void drop_connection(std::uint64_t conn);

  /// Roll the session's duplicate watermark back so `seq` may be submitted
  /// again. The daemon calls this when the session layer refused a forwarded
  /// submission without consuming its seq (window full, out-of-order): the
  /// client is expected to retry the SAME seq, which must not then be
  /// rejected as a duplicate.
  void unforward(std::uint64_t session, std::uint64_t seq);

  /// True if the connection's stream is poisoned (caller must close it).
  bool poisoned(std::uint64_t conn) const;

  /// Total malformed frames across all connections (live and dropped).
  std::uint64_t malformed_frames() const;
  /// Duplicate (session, seq) submissions rejected at this layer.
  std::uint64_t duplicates_rejected() const { return duplicates_; }
  /// Server frames that arrived pointed the wrong way (kDecision etc.).
  std::uint64_t misdirected_frames() const { return misdirected_; }

 private:
  FrameHandler* handler_;
  std::unordered_map<std::uint64_t, FrameDecoder> decoders_;
  // Highest seq forwarded per session; submissions at or below it are
  // duplicates. Sessions are monotone (SessionManager enforces ordering),
  // so one watermark per session suffices.
  std::unordered_map<std::uint64_t, std::uint64_t> forwarded_seq_;
  std::uint64_t malformed_dropped_ = 0;  // from decoders already dropped
  std::uint64_t duplicates_ = 0;
  std::uint64_t misdirected_ = 0;
};

}  // namespace srds::svc

#include "svc/pipeline.hpp"

#include "common/serial.hpp"
#include "obs/prof.hpp"

namespace srds::svc {

void InstancePipeline::admit(std::uint64_t id, std::size_t base_round,
                             const PiBaConfig& config, bool input) {
  Slot s;
  s.id = id;
  s.base_round = base_round;
  s.party = std::make_unique<PiBaParty>(config, me_, input);
  slots_.push_back(std::move(s));
}

std::vector<InstancePipeline::Retired> InstancePipeline::take_retired() {
  std::vector<Retired> out;
  out.swap(retired_);
  return out;
}

std::vector<Message> InstancePipeline::on_round(std::size_t round,
                                                const std::vector<Message>& inbox) {
  PROF_SCOPE(obs::ProfSiteId::kSvcPipelineStep);
  // Demux by instance id. Instance lookup is by linear scan over the (small,
  // bounded by the daemon's max_inflight) active set.
  std::vector<std::vector<Message>> per_slot(slots_.size());
  for (const Message& m : inbox) {
    Reader r(m.payload);
    const std::uint64_t id = r.u64();
    if (!r.ok()) {
      malformed_ += 1;
      continue;
    }
    Bytes inner = r.raw(r.remaining());
    if (!r.ok()) {
      malformed_ += 1;
      continue;
    }
    bool routed = false;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].id == id) {
        // Unwrapped copy with the original sender/kind: the instance's own
        // demux (phase tags) sees exactly what it would in a standalone run.
        per_slot[i].push_back(make_msg(m.from, m.to, std::move(inner), m.kind));
        routed = true;
        break;
      }
    }
    if (!routed) stale_ += 1;  // retired or never-admitted instance
  }

  std::vector<Message> out;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    const std::size_t local = round - s.base_round;
    auto msgs = s.party->on_round(local, per_slot[i]);
    for (Message& m : msgs) {
      Writer w;
      w.u64(s.id);
      w.raw(m.payload);
      out.push_back(make_msg(m.from, m.to, std::move(w).take(), m.kind));
    }
  }

  // Retire finished instances (done() engages when the schedule — including
  // grace rounds — has fully elapsed).
  std::vector<Slot> live;
  live.reserve(slots_.size());
  for (Slot& s : slots_) {
    if (s.party->done()) {
      Retired r;
      r.id = s.id;
      r.retired_round = round;
      r.output = s.party->output();
      retired_malformed_ += s.party->malformed_frames();
      retired_.push_back(std::move(r));
    } else {
      live.push_back(std::move(s));
    }
  }
  slots_ = std::move(live);
  return out;
}

std::uint64_t InstancePipeline::malformed_frames() const {
  std::uint64_t total = malformed_ + retired_malformed_;
  for (const Slot& s : slots_) total += s.party->malformed_frames();
  return total;
}

}  // namespace srds::svc

// BaServiceDaemon — the long-lived BA service (ROADMAP item 2, Cor. 1.2).
//
// One daemon owns one comm tree + supreme committee + signature registry and
// serves a *stream* of 1-bit agreement requests over its lifetime: clients
// connect over a Transport (deterministic loopback or TCP), open sessions,
// and submit bits; each accepted submission becomes a π_ba broadcast
// instance admitted into every honest party's InstancePipeline, so many
// instances run *staggered* — at different protocol rounds — over the same
// simulated network. Decisions flow back per session in submission order.
//
// The daemon drives the Simulator incrementally (Simulator::tick), which
// means every fault/campaign capability of the chaos engine applies to the
// service unchanged: fault plans, churn, adaptive corruption budgets and the
// campaign library can all attack the daemon mid-stream (docs/service.md
// describes what an eclipse looks like against a service).
//
// Cost accounting: an obs::Ledger in accumulate mode observes the whole
// service lifetime; amortized_budget() turns Corollary 1.2's ℓ·polylog(n)
// bits-per-party claim into a runtime assertion via obs::BudgetAuditor
// (audit() / --strict-budgets).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ba/runner.hpp"
#include "common/rng.hpp"
#include "net/simulator.hpp"
#include "obs/json.hpp"
#include "svc/frame.hpp"
#include "svc/pipeline.hpp"
#include "svc/session.hpp"
#include "svc/transport.hpp"

namespace srds::svc {

struct ServiceConfig {
  std::size_t n = 256;
  double beta = 0.0;          // static fail-silent corruption fraction
  std::uint64_t seed = 1;
  BoostProtocol protocol = BoostProtocol::kPiBaSnark;  // must be a π_ba variant
  BaseSigBackend backend = BaseSigBackend::kCompact;
  std::size_t expected_signers = 48;

  /// Backpressure: max in-flight submissions per session, and the global cap
  /// on concurrently running BA instances across all sessions. Submissions
  /// beyond the session window are rejected with a retry-after hint;
  /// accepted submissions beyond max_inflight queue until a slot retires.
  std::size_t session_window = 8;
  std::size_t max_inflight = 16;
  /// Decided records cached per session for duplicate replay.
  std::size_t completed_cache = 64;

  /// Extra grace rounds per instance (0 = derive: 2 under chaos, else 0).
  std::size_t grace_rounds = 0;

  /// Chaos: attack campaign against the service (net/campaign.hpp), its
  /// adaptive corruption budget as a fraction of n, and a network fault
  /// plan. The campaign's schedule anchors are the first instance's.
  CampaignKind campaign = CampaignKind::kNone;
  double corruption_rate = 0.0;
  std::optional<FaultPlan> faults;

  /// Observability (non-owning; must outlive the daemon). The ledger is
  /// switched to accumulate mode and observes the entire service lifetime.
  obs::Ledger* ledger = nullptr;
  obs::TraceSink* trace = nullptr;
  /// Throw BudgetViolation from shutdown()/audit() when the amortized
  /// per-party budget fails (requires `ledger`).
  bool strict_budgets = false;
};

struct ServiceStats {
  std::size_t decisions = 0;          // instances retired and released
  std::size_t accepted = 0;           // submissions admitted to the pipeline
  std::size_t rejected_backpressure = 0;
  std::size_t sessions = 0;
  std::size_t rounds = 0;             // simulator rounds actually ticked
  std::size_t agreed = 0;             // decisions with full honest agreement
  std::size_t delivered = 0;          // decisions matching the submitted bit
  std::uint64_t duplicates = 0;       // framing-layer duplicate rejections
  std::uint64_t transport_malformed = 0;  // malformed frames off the wire
  std::uint64_t pipeline_malformed = 0;   // malformed instance/phase frames
  std::uint64_t pipeline_stale = 0;   // well-formed frames for dead instances
  std::size_t adaptively_corrupted = 0;
};

class BaServiceDaemon final : public FrameHandler {
 public:
  explicit BaServiceDaemon(ServiceConfig config);
  ~BaServiceDaemon() override;

  BaServiceDaemon(const BaServiceDaemon&) = delete;
  BaServiceDaemon& operator=(const BaServiceDaemon&) = delete;

  /// Attach a front door (non-owning; must outlive the daemon). Several may
  /// be attached (e.g. loopback for a local client plus TCP).
  void add_listener(Listener* listener);

  /// Accept pending connections and process every frame that has arrived.
  /// Returns the number of frames dispatched (0 = nothing new).
  std::size_t poll();

  /// Admit queued submissions (up to max_inflight) and execute one simulator
  /// round if any instance is running. Returns false when idle (nothing
  /// admitted or active — no round is consumed).
  bool step();

  /// poll() + step() until the service is idle and no frames arrive:
  /// everything submitted so far is decided and delivered. `max_rounds`
  /// bounds the ticks (0 = no bound).
  void drain(std::size_t max_rounds = 0);

  /// Close every session, drain in-flight work, stamp the run end on the
  /// observability sinks, and (with a ledger) audit the amortized budget —
  /// throwing BudgetViolation under strict_budgets. Idempotent.
  void shutdown();

  const ServiceConfig& config() const { return cfg_; }
  const ServiceStats& stats() const { return stats_; }
  /// Every decision released so far, in release order (diagnostics).
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }

  /// The amortized per-party claim of Corollary 1.2 for `ell` decisions:
  /// bits per honest party across the whole service lifetime is at most
  /// ell · c · log⁴(n). The constant is calibrated against seeded runs
  /// (tests/svc_test.cpp, bench/fig_service.cpp); log⁴ because the f_ct
  /// front end dominates supreme-committee members (obs/budget.hpp).
  static obs::Budget amortized_budget(std::size_t ell);

  /// Evaluate the amortized budget over the final honest mask (empty
  /// without a ledger). Throws BudgetViolation under strict_budgets.
  std::vector<obs::BudgetEval> audit();

  /// Instances currently running (across all parties — they stay in
  /// lockstep, so this is the per-party active count).
  std::size_t active_instances() const;
  /// Submissions accepted but not yet admitted into the pipelines.
  std::size_t queued_admissions() const { return admission_queue_.size(); }

  /// Rounds until the oldest running instance retires (the retry-after hint
  /// attached to backpressure rejections; total schedule length when idle).
  std::uint32_t estimate_retry_after() const;

  /// The kStatsReply document (also served to on_stats requests): daemon
  /// counters, session/instance occupancy, ledger totals when a ledger is
  /// attached, live allocation count when the alloc hooks are linked, and
  /// the prof sites when profiling is enabled.
  obs::Json stats_json() const;

  // FrameHandler (the router calls these from poll()):
  void on_hello(std::uint64_t conn, const Frame& f) override;
  void on_submit(std::uint64_t conn, const Frame& f) override;
  void on_duplicate_submit(std::uint64_t conn, const Frame& f) override;
  void on_close(std::uint64_t conn, const Frame& f) override;
  void on_stats(std::uint64_t conn, const Frame& f) override;

 private:
  struct ConnState {
    std::unique_ptr<Connection> conn;
  };
  struct QueuedAdmission {
    std::uint64_t session = 0;
    std::uint64_t seq = 0;
    bool bit = false;
  };
  struct InstanceMeta {
    bool bit = false;
    std::size_t admitted_round = 0;
    std::uint64_t session = 0;
    std::uint64_t seq = 0;
  };

  InstancePipeline* pipeline(PartyId i);
  void admit_one(const QueuedAdmission& q);
  void collect_retirements();
  void send_frame(std::uint64_t session, const Frame& f);
  void send_to_conn(std::uint64_t conn, const Frame& f);
  void drop_closed_connections();

  ServiceConfig cfg_;
  Rng rng_;
  ServiceEnv env_;
  std::unique_ptr<Simulator> sim_;
  SessionManager sessions_;
  FrameRouter router_;

  // One schedule for every instance (derived from public parameters only).
  std::size_t instance_rounds_ = 0;  // total_rounds() incl. grace
  std::size_t grace_rounds_ = 0;     // per-instance grace window (chaos runs)
  std::size_t dissem_retries_ = 0;   // step-6 retransmits (chaos runs)
  SrdsSchemePtr first_scheme_;       // probe's scheme, reused by admission #1

  std::vector<Listener*> listeners_;
  std::unordered_map<std::uint64_t, ConnState> conns_;
  std::unordered_map<std::uint64_t, std::uint64_t> session_conn_;  // session -> conn
  std::uint64_t next_conn_ = 1;

  std::deque<QueuedAdmission> admission_queue_;
  std::unordered_map<std::uint64_t, InstanceMeta> instance_meta_;
  std::uint64_t next_instance_ = 1;
  std::size_t broadcaster_rr_ = 0;  // rotating broadcaster cursor

  ServiceStats stats_;
  std::vector<DecisionRecord> decisions_;
  bool shut_down_ = false;
};

/// Client-side protocol state over one Transport connection. Fully
/// non-blocking: every method returns immediately; call poll() to ingest
/// whatever the server has sent (drive the daemon/pump between polls when
/// running single-threaded over the loopback transport).
class ServiceClient {
 public:
  explicit ServiceClient(std::unique_ptr<Connection> conn);

  /// Send the session hello. opened() turns true once the ack arrives.
  void open();
  bool opened() const { return session_ != 0; }
  std::uint64_t session() const { return session_; }
  /// Server-granted submission window (0 until opened).
  std::uint32_t window() const { return window_; }

  /// Run ahead of the granted window: an optimistic client may keep up to
  /// `w` submissions in flight and absorb the resulting kReject/kError
  /// responses through retry(). This is how the backpressure protocol is
  /// exercised deliberately (tests, benches); well-behaved clients stay at
  /// the granted window.
  void override_window(std::uint32_t w) { window_ = w; }

  /// Submit a bit; returns the assigned seq, or 0 when not opened or a
  /// rejected submission is awaiting retry() (the server consumes sequence
  /// numbers in order, so the retry must go out first).
  std::uint64_t submit(bool bit);

  /// Re-send the oldest rejected submission; returns its seq (0 = none).
  std::uint64_t retry();
  bool needs_retry() const { return !retry_queue_.empty(); }

  /// Submissions sent and not yet answered (decision or reject).
  std::size_t inflight() const { return inflight_; }
  bool can_submit() const {
    return opened() && retry_queue_.empty() && inflight_ < window_;
  }

  /// Ingest server frames. Returns the number of frames processed.
  std::size_t poll();

  /// Request a stats snapshot from the daemon (kStats). The reply lands in
  /// last_stats() after a later poll().
  void request_stats();
  /// The most recent kStatsReply JSON text ("" until one arrives).
  const std::string& last_stats() const { return last_stats_; }
  std::size_t stats_received() const { return stats_received_; }

  struct ClientDecision {
    std::uint64_t seq = 0;
    bool bit = false;  // what was submitted
    DecisionPayload decision;
  };
  /// Decisions received since the last call (seq order per session).
  std::vector<ClientDecision> take_decisions();

  std::size_t decisions_received() const { return decisions_received_; }
  std::uint64_t rejects_received() const { return rejects_; }
  const std::string& last_error() const { return last_error_; }

  void close();

 private:
  std::unique_ptr<Connection> conn_;
  FrameDecoder decoder_;
  std::uint64_t session_ = 0;
  std::uint32_t window_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t inflight_ = 0;
  std::unordered_map<std::uint64_t, bool> sent_bits_;  // seq -> submitted bit
  std::deque<std::uint64_t> retry_queue_;              // rejected seqs, oldest first
  std::vector<ClientDecision> decisions_;
  std::size_t decisions_received_ = 0;
  std::uint64_t rejects_ = 0;
  std::string last_error_;
  std::string last_stats_;
  std::size_t stats_received_ = 0;
};

}  // namespace srds::svc

#include "svc/frame.hpp"

#include <string>

#include "obs/prof.hpp"

namespace srds::svc {

namespace {

Frame header_only(FrameType t, std::uint64_t session, std::uint64_t seq) {
  Frame f;
  f.type = t;
  f.session = session;
  f.seq = seq;
  return f;
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kStatsReply);
}

}  // namespace

Bytes encode_frame(const Frame& f) {
  Writer body;
  body.u8(static_cast<std::uint8_t>(f.type));
  body.u64(f.session);
  body.u64(f.seq);
  body.raw(f.payload);
  Writer w;
  w.u32(static_cast<std::uint32_t>(body.data().size()));
  w.raw(body.data());
  return std::move(w).take();
}

Frame make_hello() { return header_only(FrameType::kHello, 0, 0); }

Frame make_hello_ack(std::uint64_t session, std::uint32_t window) {
  Frame f = header_only(FrameType::kHelloAck, session, 0);
  Writer w;
  w.u32(window);
  f.payload = std::move(w).take();
  return f;
}

Frame make_submit(std::uint64_t session, std::uint64_t seq, bool bit) {
  Frame f = header_only(FrameType::kSubmit, session, seq);
  Writer w;
  w.u8(bit ? 1 : 0);
  f.payload = std::move(w).take();
  return f;
}

Frame make_decision(std::uint64_t session, std::uint64_t seq, bool value, bool agreement,
                    std::uint32_t round_span, std::uint64_t instance) {
  Frame f = header_only(FrameType::kDecision, session, seq);
  Writer w;
  w.u8(value ? 1 : 0);
  w.u8(agreement ? 1 : 0);
  w.u32(round_span);
  w.u64(instance);
  f.payload = std::move(w).take();
  return f;
}

Frame make_reject(std::uint64_t session, std::uint64_t seq, std::uint32_t retry_after) {
  Frame f = header_only(FrameType::kReject, session, seq);
  Writer w;
  w.u32(retry_after);
  f.payload = std::move(w).take();
  return f;
}

Frame make_close(std::uint64_t session) { return header_only(FrameType::kClose, session, 0); }

Frame make_error(std::uint64_t session, std::uint64_t seq, const std::string& what) {
  Frame f = header_only(FrameType::kError, session, seq);
  Writer w;
  w.str(what);
  f.payload = std::move(w).take();
  return f;
}

Frame make_stats(std::uint64_t session) {
  return header_only(FrameType::kStats, session, 0);
}

Frame make_stats_reply(std::uint64_t session, const std::string& json) {
  Frame f = header_only(FrameType::kStatsReply, session, 0);
  Writer w;
  w.str(json);
  f.payload = std::move(w).take();
  return f;
}

bool parse_stats_reply(BytesView payload, std::string& json) {
  Reader r(payload);
  json = r.str();
  return r.done();
}

bool parse_decision(BytesView payload, DecisionPayload& out) {
  Reader r(payload);
  out.value = r.u8() != 0;
  out.agreement = r.u8() != 0;
  out.round_span = r.u32();
  out.instance = r.u64();
  return r.done();
}

bool parse_reject(BytesView payload, std::uint32_t& retry_after) {
  Reader r(payload);
  retry_after = r.u32();
  return r.done();
}

bool parse_hello_ack(BytesView payload, std::uint32_t& window) {
  Reader r(payload);
  window = r.u32();
  return r.done();
}

// srds-lint: hotpath(FrameDecoder::feed) — runs once per received chunk on the service front
// door; must not throw or type-erase (rule P1).
void FrameDecoder::feed(BytesView chunk) {
  if (poisoned_) return;
  // Compact the consumed prefix before growing the buffer, so a long-lived
  // connection's memory stays bounded by its unconsumed backlog.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

// srds-lint: hotpath(FrameDecoder::next) — runs once per frame on the service front door; must
// not throw or type-erase (rule P1).
std::optional<Frame> FrameDecoder::next() {
  PROF_SCOPE(obs::ProfSiteId::kSvcFrameDecode);
  while (!poisoned_) {
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 4) return std::nullopt;
    Reader len_r(BytesView(buf_.data() + pos_, 4));
    const std::uint32_t len = len_r.u32();
    if (len > kMaxFrameLen) {
      // The length prefix itself is untrustworthy, so there is no way to
      // find the next frame boundary: framing is lost permanently.
      poisoned_ = true;
      malformed_ += 1;
      return std::nullopt;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;

    Reader r(BytesView(buf_.data() + pos_ + 4, len));
    pos_ += 4 + static_cast<std::size_t>(len);

    const std::uint8_t type = r.u8();
    Frame f;
    f.session = r.u64();
    f.seq = r.u64();
    if (!r.ok() || !known_type(type)) {
      malformed_ += 1;
      continue;  // length prefix was sane, so the stream stays in sync
    }
    f.type = static_cast<FrameType>(type);
    f.payload = r.raw(r.remaining());
    return f;
  }
  return std::nullopt;
}

std::size_t FrameRouter::on_bytes(std::uint64_t conn, BytesView chunk) {
  FrameDecoder& dec = decoders_[conn];
  dec.feed(chunk);
  std::size_t dispatched = 0;
  while (auto f = dec.next()) {
    switch (f->type) {
      case FrameType::kHello:
        handler_->on_hello(conn, *f);
        ++dispatched;
        break;
      case FrameType::kSubmit: {
        auto it = forwarded_seq_.find(f->session);
        if (it != forwarded_seq_.end() && f->seq <= it->second) {
          duplicates_ += 1;
          handler_->on_duplicate_submit(conn, *f);
          break;
        }
        forwarded_seq_[f->session] = f->seq;
        handler_->on_submit(conn, *f);
        ++dispatched;
        break;
      }
      case FrameType::kClose:
        handler_->on_close(conn, *f);
        ++dispatched;
        break;
      case FrameType::kStats:
        handler_->on_stats(conn, *f);
        ++dispatched;
        break;
      case FrameType::kHelloAck:
      case FrameType::kDecision:
      case FrameType::kReject:
      case FrameType::kError:
      case FrameType::kStatsReply:
        // Server-to-client types have no business arriving at the server.
        misdirected_ += 1;
        break;
    }
  }
  return dispatched;
}

void FrameRouter::unforward(std::uint64_t session, std::uint64_t seq) {
  auto it = forwarded_seq_.find(session);
  if (it == forwarded_seq_.end()) return;
  if (it->second >= seq) it->second = seq - 1;
}

void FrameRouter::drop_connection(std::uint64_t conn) {
  auto it = decoders_.find(conn);
  if (it == decoders_.end()) return;
  malformed_dropped_ += it->second.malformed();
  decoders_.erase(it);
}

bool FrameRouter::poisoned(std::uint64_t conn) const {
  auto it = decoders_.find(conn);
  return it != decoders_.end() && it->second.poisoned();
}

std::uint64_t FrameRouter::malformed_frames() const {
  std::uint64_t total = malformed_dropped_;
  for (const auto& [conn, dec] : decoders_) total += dec.malformed();
  return total;
}

}  // namespace srds::svc

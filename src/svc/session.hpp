// Per-client session state for the BA service daemon (docs/service.md).
//
// A session is one client's ordered stream of agreement submissions. The
// manager enforces the service's backpressure contract:
//   * each session has a bounded in-flight window; a submission beyond it is
//     rejected with a retry-after hint instead of queueing unboundedly;
//   * sequence numbers are strictly increasing from 1; duplicates replay the
//     cached decision (bounded cache) rather than re-running agreement;
//   * decisions are released strictly in submission (seq) order per session,
//     even when the underlying staggered BA instances finish out of order.
//
// The manager is transport- and protocol-agnostic: it maps (session, seq)
// submissions to instance ids and instance completions back to ordered
// (session, seq, record) releases. The daemon owns actually minting the BA
// instance and producing the DecisionRecord.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

namespace srds::svc {

/// Outcome of one retired BA instance, as released to a session.
struct DecisionRecord {
  std::uint64_t instance = 0;
  bool value = false;       // the agreed bit
  bool agreement = true;    // all honest deciders agreed
  bool delivered = false;   // value == the submitted bit (broadcast validity)
  std::uint32_t round_span = 0;  // rounds from admission to retirement
  std::size_t honest_decided = 0;
  std::size_t honest_live = 0;
};

enum class SubmitStatus : std::uint8_t {
  kAccepted,         // tracked; daemon must mint an instance
  kRejectedFull,     // window full — client should retry after `retry_after`
  kDuplicateInFlight,  // seq already tracked, still undecided
  kDuplicateDecided,   // seq already decided — cached record returned
  kDuplicateEvicted,   // seq decided long ago, record evicted from the cache
  kBadSession,       // unknown or closed session
  kBadSeq,           // not the next expected sequence number
};

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kBadSession;
  std::uint32_t retry_after = 0;              // rounds, for kRejectedFull
  std::optional<DecisionRecord> cached;       // for kDuplicateDecided
};

/// A decision ready to be sent to a client, in submission order.
struct Release {
  std::uint64_t session = 0;
  std::uint64_t seq = 0;
  DecisionRecord record;
};

class SessionManager {
 public:
  /// `window` = max in-flight submissions per session; `completed_cache` =
  /// decided records retained per session for duplicate replay;
  /// `retry_after` = the backpressure hint attached to window rejections
  /// (the daemon passes its estimate of rounds until a slot frees).
  SessionManager(std::size_t window, std::size_t completed_cache)
      : window_(window), completed_cache_(completed_cache) {}

  /// Open a new session; returns its id (sequential from 1).
  std::uint64_t open();

  /// Close a session (idempotent). In-flight instances keep running; their
  /// releases are discarded.
  void close(std::uint64_t session);

  bool is_open(std::uint64_t session) const;

  /// Record a submission. On kAccepted the caller must mint a BA instance
  /// and then call track(). `retry_after_hint` is embedded in window
  /// rejections.
  SubmitResult submit(std::uint64_t session, std::uint64_t seq,
                      std::uint32_t retry_after_hint);

  /// Bind the accepted (session, seq) to the BA instance the daemon minted.
  void track(std::uint64_t session, std::uint64_t seq, std::uint64_t instance);

  /// An instance retired: attach its record and return every decision that
  /// is now releasable in submission order (possibly none, if an earlier
  /// seq of the same session is still in flight; possibly several, if this
  /// completion unblocks queued later ones).
  std::vector<Release> complete(std::uint64_t instance, const DecisionRecord& record);

  /// In-flight submissions of one session (0 for unknown sessions).
  std::size_t inflight(std::uint64_t session) const;
  /// Total in-flight submissions across all sessions.
  std::size_t total_inflight() const { return instance_index_.size(); }

  std::size_t sessions_opened() const { return next_session_ - 1; }
  std::uint64_t rejected_full() const { return rejected_full_; }
  std::size_t window() const { return window_; }

 private:
  struct Pending {
    std::uint64_t instance = 0;
    bool tracked = false;  // instance id assigned by the daemon
    std::optional<DecisionRecord> record;
  };

  struct Session {
    bool open = true;
    std::uint64_t next_seq = 1;      // next acceptable submission seq
    std::uint64_t next_release = 1;  // next seq to release a decision for
    std::map<std::uint64_t, Pending> pending;  // seq -> in-flight state
    // Decided records kept for duplicate replay, oldest first.
    std::deque<std::pair<std::uint64_t, DecisionRecord>> completed;
  };

  std::size_t window_;
  std::size_t completed_cache_;
  // Session state is owned by the daemon's accept/dispatch loop; nothing
  // else may touch it until it moves behind a mutex or the frames are
  // funneled through a queue. srds-lint rule C3 enforces the claim against
  // the C1 shard-reachable surface.
  std::uint64_t next_session_ = 1;  // srds-lint: confined(daemon-loop)
  // srds-lint: confined(daemon-loop)
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      instance_index_;  // srds-lint: confined(daemon-loop)
  std::uint64_t rejected_full_ = 0;  // srds-lint: confined(daemon-loop)
};

}  // namespace srds::svc

// Transport abstraction for the BA service front door (docs/service.md).
//
// The daemon's protocol logic (framing, sessions, pipelines) never touches a
// socket: it speaks to clients through this minimal connection-oriented
// byte-stream interface, so the deterministic in-process loopback (used by
// tests, the simulator-backed demos and the benches — all fault/campaign
// machinery applies unchanged) and the real TCP backend
// (svc/tcp_transport.hpp) are interchangeable.
//
// Contract: ordered, reliable, non-blocking. send() enqueues the whole
// buffer; recv() drains whatever has arrived (possibly empty, never blocks);
// chunk boundaries carry no meaning (the FrameCodec reframes). closed()
// reports the peer's close or a transport failure.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "common/bytes.hpp"

namespace srds::svc {

class Connection {
 public:
  virtual ~Connection() = default;

  /// Enqueue bytes toward the peer (the full buffer; never partial).
  virtual void send(BytesView data) = 0;

  /// Drain everything that has arrived since the last call. Empty result
  /// means "nothing yet" — never blocks.
  virtual Bytes recv() = 0;

  /// Peer closed or the transport failed. Bytes already received may still
  /// be pending in recv().
  virtual bool closed() const = 0;

  /// Close this end (idempotent).
  virtual void close() = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  /// Accept one pending connection, or nullptr if none — never blocks.
  virtual std::unique_ptr<Connection> accept() = 0;
};

/// In-process transport: connect() hands back the client end of a fresh
/// connection and queues the server end for the listener. Single-threaded
/// by design — byte movement happens inside send()/recv() calls, so a
/// scripted client + daemon loop is fully deterministic (no timing, no
/// kernel buffers). This is the backend the Ledger-determinism test and the
/// campaign demos run on.
class LoopbackTransport {
 public:
  LoopbackTransport();
  ~LoopbackTransport();

  /// Client side of a new connection (server end becomes accept()-able).
  std::unique_ptr<Connection> connect();

  /// The daemon-facing listener (owned by the transport).
  Listener* listener() { return listener_.get(); }

  struct Shared;  // implementation detail (defined in transport.cpp)

 private:
  std::shared_ptr<Shared> shared_;
  std::unique_ptr<Listener> listener_;
};

}  // namespace srds::svc

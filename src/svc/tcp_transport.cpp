#include "svc/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace srds::svc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void raise_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) { set_nonblocking(fd_); }
  ~TcpConnection() override { close(); }

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  void send(BytesView data) override {
    if (fd_ < 0) return;
    // Append to the outbox and flush opportunistically: the transport
    // contract is non-blocking, so bytes the kernel will not take right now
    // stay queued until the next send()/recv() call.
    outbox_.insert(outbox_.end(), data.begin(), data.end());
    flush();
  }

  Bytes recv() override {
    Bytes got;
    if (fd_ < 0) return got;
    flush();
    std::uint8_t chunk[4096];
    while (true) {
      const ssize_t r = ::read(fd_, chunk, sizeof(chunk));
      if (r > 0) {
        got.insert(got.end(), chunk, chunk + r);
        continue;
      }
      if (r == 0) {  // orderly peer close
        peer_closed_ = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      peer_closed_ = true;  // hard error — treat as closed
      break;
    }
    return got;
  }

  bool closed() const override { return fd_ < 0 || peer_closed_; }

  void close() override {
    if (fd_ < 0) return;
    // Best effort: push out whatever the kernel will still take.
    flush();
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }

 private:
  void flush() {
    while (!outbox_.empty()) {
      const ssize_t w = ::write(fd_, outbox_.data(), outbox_.size());
      if (w > 0) {
        outbox_.erase(outbox_.begin(), outbox_.begin() + w);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      peer_closed_ = true;
      break;
    }
  }

  int fd_;
  Bytes outbox_;
  bool peer_closed_ = false;
};

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) raise_errno("TcpListener: socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    raise_errno("TcpListener: bind 127.0.0.1");
  }
  if (::listen(fd_, 16) != 0) {
    ::close(fd_);
    fd_ = -1;
    raise_errno("TcpListener: listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  set_nonblocking(fd_);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Connection> TcpListener::accept() {
  if (fd_ < 0) return nullptr;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return nullptr;  // EAGAIN and friends: nothing pending
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpConnection>(client);
}

std::unique_ptr<Connection> connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("connect_tcp: socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    raise_errno("connect_tcp: connect 127.0.0.1:" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace srds::svc

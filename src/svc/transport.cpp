#include "svc/transport.hpp"

#include <utility>
#include <vector>

namespace srds::svc {

namespace {

/// One direction of a loopback connection: a byte queue plus close flags.
struct Pipe {
  Bytes buffered;
  bool writer_closed = false;
};

/// Both directions of one loopback connection.
struct Duplex {
  Pipe client_to_server;
  Pipe server_to_client;
};

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<Duplex> duplex, bool is_client)
      : duplex_(std::move(duplex)), is_client_(is_client) {}

  ~LoopbackConnection() override { close(); }

  void send(BytesView data) override {
    Pipe& out = outgoing();
    if (out.writer_closed || peer_closed()) return;
    out.buffered.insert(out.buffered.end(), data.begin(), data.end());
  }

  Bytes recv() override {
    Pipe& in = incoming();
    Bytes got = std::move(in.buffered);
    in.buffered.clear();
    return got;
  }

  bool closed() const override {
    // Peer gone AND its backlog drained ⇒ nothing more will ever arrive.
    const Duplex& d = *duplex_;
    const Pipe& in = is_client_ ? d.server_to_client : d.client_to_server;
    return in.writer_closed && in.buffered.empty();
  }

  void close() override { outgoing().writer_closed = true; }

 private:
  Pipe& outgoing() {
    return is_client_ ? duplex_->client_to_server : duplex_->server_to_client;
  }
  Pipe& incoming() {
    return is_client_ ? duplex_->server_to_client : duplex_->client_to_server;
  }
  bool peer_closed() const {
    return is_client_ ? duplex_->client_to_server.writer_closed
                      : duplex_->server_to_client.writer_closed;
  }

  std::shared_ptr<Duplex> duplex_;
  bool is_client_;
};

}  // namespace

struct LoopbackTransport::Shared {
  std::deque<std::unique_ptr<Connection>> pending;  // server ends awaiting accept
};

namespace {

class LoopbackListener final : public Listener {
 public:
  explicit LoopbackListener(std::shared_ptr<LoopbackTransport::Shared> shared)
      : shared_(std::move(shared)) {}

  std::unique_ptr<Connection> accept() override {
    if (shared_->pending.empty()) return nullptr;
    auto conn = std::move(shared_->pending.front());
    shared_->pending.pop_front();
    return conn;
  }

 private:
  std::shared_ptr<LoopbackTransport::Shared> shared_;
};

}  // namespace

LoopbackTransport::LoopbackTransport()
    : shared_(std::make_shared<Shared>()),
      listener_(std::make_unique<LoopbackListener>(shared_)) {}

LoopbackTransport::~LoopbackTransport() = default;

std::unique_ptr<Connection> LoopbackTransport::connect() {
  auto duplex = std::make_shared<Duplex>();
  shared_->pending.push_back(std::make_unique<LoopbackConnection>(duplex, false));
  return std::make_unique<LoopbackConnection>(duplex, true);
}

}  // namespace srds::svc

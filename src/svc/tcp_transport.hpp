// Real-socket backend of the svc Transport contract (svc/transport.hpp):
// non-blocking TCP on the IPv4 loopback interface. The daemon's protocol
// logic is byte-for-byte the one the deterministic loopback runs — only the
// byte movement differs — so a TCP deployment exercises the exact framed
// protocol the simulator-backed tests verify.
//
// Scope: loopback deployment (bench/smoke/demo). Binding is restricted to
// 127.0.0.1; there is no TLS and no peer authentication — the service model
// authenticates *parties* inside the simulated network, while transport
// clients are untrusted request sources whose input is validated by the
// frame codec and session layer.
#pragma once

#include <cstdint>
#include <memory>

#include "svc/transport.hpp"

namespace srds::svc {

/// Listening socket on 127.0.0.1:`port` (0 = ephemeral; query port()).
/// Throws std::runtime_error when the socket cannot be set up.
class TcpListener final : public Listener {
 public:
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::unique_ptr<Connection> accept() override;

  /// The bound port (resolved after an ephemeral bind).
  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to a TcpListener on 127.0.0.1:`port`. Blocks for the handshake
/// (connect(2)), then the returned connection is non-blocking like every
/// other Transport connection. Throws std::runtime_error on failure.
std::unique_ptr<Connection> connect_tcp(std::uint16_t port);

}  // namespace srds::svc

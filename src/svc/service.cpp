#include "svc/service.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "ba/attack.hpp"
#include "ba/pi_ba.hpp"
#include "obs/alloc_hooks.hpp"
#include "obs/prof.hpp"

namespace srds::svc {

namespace {

/// Leading constant of the amortized per-decision budget, in bits per log⁴(n).
/// Calibrated against seeded service runs at n ∈ {256, 1024} (the worst
/// honest party is a supreme-committee member paying the f_ba/f_ct front end
/// of every instance): measured maxima are ≈8.3k bits/log⁴ per decision at
/// n=256 (8.5k under an eclipse campaign) and ≈7.0k at n=1024, decreasing in
/// n as a polylog claim should. Headroom ≈ 2x over the worst measurement so
/// the bound stays a real asymptotic claim, not a regression snapshot.
constexpr double kAmortizedBitsPerLog4 = 18000.0;

}  // namespace

BaServiceDaemon::BaServiceDaemon(ServiceConfig config)
    : cfg_(std::move(config)),
      rng_(cfg_.seed ^ 0x7376632d6261640dULL),
      env_(make_service_env(cfg_.n, cfg_.beta, cfg_.seed)),
      sessions_(cfg_.session_window, cfg_.completed_cache),
      router_(this) {
  if (cfg_.protocol != BoostProtocol::kPiBaOwf &&
      cfg_.protocol != BoostProtocol::kPiBaSnark) {
    throw std::invalid_argument("BaServiceDaemon: protocol must be a pi_ba variant");
  }
  if (env_.honest.empty()) {
    throw std::invalid_argument("BaServiceDaemon: no honest parties at beta=" +
                                std::to_string(cfg_.beta));
  }

  // Chaos hardening mirrors run_ba: under faults or a campaign every
  // instance gets a grace window and step-6 retransmits. Both derive from
  // public configuration, so all parties agree on the stretched schedule.
  const bool chaos = (cfg_.faults.has_value() && cfg_.faults->any()) ||
                     cfg_.campaign != CampaignKind::kNone;
  grace_rounds_ = cfg_.grace_rounds;
  if (grace_rounds_ == 0 && chaos) {
    grace_rounds_ = std::max<std::size_t>(
        cfg_.faults ? cfg_.faults->suggested_grace() : 0, 2);
  }
  dissem_retries_ = chaos ? 2 : 0;

  // Every instance shares one schedule (it depends only on the tree and the
  // grace/retry knobs), so probe it once with a throwaway party.
  first_scheme_ = make_instance_scheme(cfg_.protocol, cfg_.backend,
                                       cfg_.expected_signers,
                                       env_.tree->virtual_count(), rng_.next());
  std::size_t boost_start = 0, dissem_start = 0;
  {
    PiBaConfig pc;
    pc.ae.tree = env_.tree;
    pc.ae.registry = env_.registry;
    pc.ae.seed = 0;
    pc.ae.broadcaster = env_.honest.front();
    pc.ae.grace_rounds = grace_rounds_;
    pc.scheme = first_scheme_;
    pc.dissem_retries = dissem_retries_;
    PiBaParty probe(std::move(pc), env_.honest.front(), false);
    instance_rounds_ = probe.total_rounds();
    boost_start = probe.boost_start();
    dissem_start = probe.dissem_start();
  }

  // Campaign against the service: the adversary's schedule anchors are the
  // first instance's (admitted at round 0 in the intended deployments), so
  // its moves land on the early instances while later ones run through the
  // aftermath — partitions, seized committee seats, churned-out parties.
  std::unique_ptr<Adversary> adversary;
  std::vector<PartitionWindow> campaign_partitions;
  std::size_t corruption_budget = 0;
  if (cfg_.campaign != CampaignKind::kNone) {
    corruption_budget = static_cast<std::size_t>(cfg_.corruption_rate *
                                                 static_cast<double>(cfg_.n));
    CampaignConfig cc;
    cc.kind = cfg_.campaign;
    cc.tree = env_.tree;
    cc.registry = env_.registry;
    cc.corrupt = env_.corrupt;
    cc.budget = corruption_budget;
    cc.seed = rng_.next();
    cc.dissem_start = dissem_start;
    cc.boost_start = boost_start;
    cc.total_rounds = instance_rounds_;
    CampaignSetup setup = make_campaign(std::move(cc));
    adversary = std::move(setup.adversary);
    campaign_partitions = std::move(setup.partitions);
  }

  std::optional<FaultPlan> plan = cfg_.faults;
  if (!campaign_partitions.empty()) {
    if (!plan.has_value()) {
      plan.emplace();
      plan->seed = cfg_.seed ^ 0x63616d706169676eULL;
    }
    plan->partitions.insert(plan->partitions.end(), campaign_partitions.begin(),
                            campaign_partitions.end());
  }

  std::vector<std::unique_ptr<Party>> parties(cfg_.n);
  for (PartyId i : env_.honest) parties[i] = std::make_unique<InstancePipeline>(i);
  sim_ = std::make_unique<Simulator>(std::move(parties), env_.corrupt,
                                     std::move(adversary));
  sim_->set_corruption_budget(corruption_budget);
  if (plan.has_value() && plan->any()) sim_->set_fault_plan(*plan);
  for (obs::TraceSink* sink : {static_cast<obs::TraceSink*>(cfg_.trace),
                               static_cast<obs::TraceSink*>(cfg_.ledger)}) {
    if (!sink) continue;
    sim_->add_trace_sink(sink);
    sink->on_phase(0, "service");
  }
  // Accumulate mode: the ledger's per-party totals span the whole service
  // lifetime — exactly the quantity the amortized budget bounds.
  if (cfg_.ledger) cfg_.ledger->set_accumulate(true);
}

BaServiceDaemon::~BaServiceDaemon() {
  // Destruction without shutdown(): stamp the run end for the observability
  // sinks but skip the drain and the audit (a destructor must not throw).
  if (sim_) sim_->end_run();
}

InstancePipeline* BaServiceDaemon::pipeline(PartyId i) {
  return static_cast<InstancePipeline*>(sim_->party(i));
}

void BaServiceDaemon::add_listener(Listener* listener) {
  if (listener) listeners_.push_back(listener);
}

std::size_t BaServiceDaemon::poll() {
  for (Listener* l : listeners_) {
    while (auto conn = l->accept()) {
      conns_[next_conn_].conn = std::move(conn);
      ++next_conn_;
    }
  }
  std::size_t dispatched = 0;
  for (auto& [id, state] : conns_) {
    Bytes chunk = state.conn->recv();
    if (!chunk.empty()) dispatched += router_.on_bytes(id, chunk);
  }
  drop_closed_connections();
  return dispatched;
}

void BaServiceDaemon::drop_closed_connections() {
  std::vector<std::uint64_t> dead;
  for (auto& [id, state] : conns_) {
    if (state.conn->closed() || router_.poisoned(id)) dead.push_back(id);
  }
  for (std::uint64_t id : dead) {
    // A dead connection takes its sessions with it: releases for their
    // in-flight instances are discarded by the session manager.
    std::vector<std::uint64_t> orphaned;
    for (const auto& [session, conn] : session_conn_) {
      if (conn == id) orphaned.push_back(session);
    }
    for (std::uint64_t session : orphaned) {
      sessions_.close(session);
      session_conn_.erase(session);
    }
    conns_[id].conn->close();
    router_.drop_connection(id);
    conns_.erase(id);
  }
}

void BaServiceDaemon::on_hello(std::uint64_t conn, const Frame&) {
  const std::uint64_t session = sessions_.open();
  ++stats_.sessions;
  session_conn_[session] = conn;
  send_to_conn(conn, make_hello_ack(session, static_cast<std::uint32_t>(cfg_.session_window)));
}

void BaServiceDaemon::on_submit(std::uint64_t conn, const Frame& f) {
  auto bound = session_conn_.find(f.session);
  if (bound == session_conn_.end() || bound->second != conn) {
    // Unknown session, or a submit for someone else's session: refuse, and
    // leave the real owner's duplicate watermark untouched.
    router_.unforward(f.session, f.seq);
    send_to_conn(conn, make_error(f.session, f.seq, "unknown session on this connection"));
    return;
  }
  Reader r(f.payload);
  const bool bit = r.u8() != 0;
  if (!r.done()) {
    router_.unforward(f.session, f.seq);
    send_to_conn(conn, make_error(f.session, f.seq, "malformed submit payload"));
    return;
  }

  const SubmitResult res = sessions_.submit(f.session, f.seq, estimate_retry_after());
  switch (res.status) {
    case SubmitStatus::kAccepted:
      admission_queue_.push_back({f.session, f.seq, bit});
      break;
    case SubmitStatus::kRejectedFull:
      // Backpressure: the seq was NOT consumed, so the client retries the
      // same one — roll the router's duplicate watermark back accordingly.
      ++stats_.rejected_backpressure;
      router_.unforward(f.session, f.seq);
      send_frame(f.session, make_reject(f.session, f.seq, res.retry_after));
      break;
    case SubmitStatus::kDuplicateInFlight:
      break;  // the decision is coming; nothing to do
    case SubmitStatus::kDuplicateDecided:
      if (res.cached.has_value()) {
        send_frame(f.session, make_decision(f.session, f.seq, res.cached->value,
                                            res.cached->agreement, res.cached->round_span,
                                            res.cached->instance));
      }
      break;
    case SubmitStatus::kDuplicateEvicted:
      send_frame(f.session, make_error(f.session, f.seq, "decision evicted from cache"));
      break;
    case SubmitStatus::kBadSession:
      send_frame(f.session, make_error(f.session, f.seq, "session closed"));
      break;
    case SubmitStatus::kBadSeq:
      router_.unforward(f.session, f.seq);
      send_frame(f.session, make_error(f.session, f.seq, "out-of-order sequence number"));
      break;
  }
}

void BaServiceDaemon::on_duplicate_submit(std::uint64_t conn, const Frame& f) {
  // The framing layer already counted the duplicate; classify it against the
  // session state to decide between replay and silence.
  on_submit(conn, f);
}

void BaServiceDaemon::on_close(std::uint64_t, const Frame& f) {
  sessions_.close(f.session);
  session_conn_.erase(f.session);
}

std::uint32_t BaServiceDaemon::estimate_retry_after() const {
  // Rounds until the oldest running instance retires; a fresh submission on
  // an idle service would itself take a full schedule, so that is the floor.
  std::size_t best = instance_rounds_;
  const std::size_t now = sim_->current_round();
  for (const auto& [id, meta] : instance_meta_) {
    const std::size_t end = meta.admitted_round + instance_rounds_;
    best = std::min(best, end > now ? end - now : std::size_t{1});
  }
  return static_cast<std::uint32_t>(std::max<std::size_t>(best, 1));
}

std::size_t BaServiceDaemon::active_instances() const { return instance_meta_.size(); }

void BaServiceDaemon::admit_one(const QueuedAdmission& q) {
  const std::uint64_t id = next_instance_++;
  const std::size_t base = sim_->current_round();

  // Rotate the broadcaster over parties that are still honest and alive —
  // the service speaks for its clients, so any live honest party can carry
  // the submitted bit into the supreme committee.
  PartyId broadcaster = env_.honest.front();
  for (std::size_t probe = 0; probe < env_.honest.size(); ++probe) {
    const PartyId cand = env_.honest[broadcaster_rr_ % env_.honest.size()];
    ++broadcaster_rr_;
    if (!sim_->is_corrupt(cand) && !sim_->is_crashed(cand)) {
      broadcaster = cand;
      break;
    }
  }

  PiBaConfig pc;
  pc.ae.tree = env_.tree;
  pc.ae.registry = env_.registry;
  pc.ae.seed = rng_.next();
  pc.ae.broadcaster = broadcaster;
  pc.ae.grace_rounds = grace_rounds_;
  // One-time signatures: a fresh SRDS key set per instance (pre-published on
  // the bulletin board in one setup; generation is local so it costs no
  // communication). The probe's scheme serves the first admission.
  pc.scheme = first_scheme_ ? std::move(first_scheme_)
                            : make_instance_scheme(cfg_.protocol, cfg_.backend,
                                                   cfg_.expected_signers,
                                                   env_.tree->virtual_count(), rng_.next());
  pc.dissem_retries = dissem_retries_;

  for (PartyId i : env_.honest) {
    if (sim_->is_corrupt(i) || sim_->is_crashed(i)) continue;
    pipeline(i)->admit(id, base, pc, q.bit);
  }

  sessions_.track(q.session, q.seq, id);
  instance_meta_[id] = InstanceMeta{q.bit, base, q.session, q.seq};
  ++stats_.accepted;
}

bool BaServiceDaemon::step() {
  PROF_SCOPE(obs::ProfSiteId::kSvcDaemonStep);
  while (!admission_queue_.empty() && active_instances() < cfg_.max_inflight) {
    QueuedAdmission q = admission_queue_.front();
    admission_queue_.pop_front();
    // A session closed while the submission sat queued: drop it unminted.
    if (!sessions_.is_open(q.session)) continue;
    admit_one(q);
  }
  if (instance_meta_.empty()) return false;
  sim_->tick();
  ++stats_.rounds;
  collect_retirements();
  return true;
}

void BaServiceDaemon::collect_retirements() {
  // The schedule is global, so every live honest party retires an instance
  // in the same tick; parties corrupted or crashed mid-instance simply stop
  // reporting (the paper's guarantees quantify over end-honest parties).
  struct Group {
    std::vector<std::optional<bool>> outputs;
    std::size_t retired_round = 0;
  };
  std::map<std::uint64_t, Group> groups;
  for (PartyId i : env_.honest) {
    if (sim_->is_corrupt(i)) continue;
    for (InstancePipeline::Retired& r : pipeline(i)->take_retired()) {
      Group& g = groups[r.id];
      g.outputs.push_back(r.output);
      g.retired_round = r.retired_round;
    }
  }

  for (auto& [id, group] : groups) {
    auto meta_it = instance_meta_.find(id);
    if (meta_it == instance_meta_.end()) continue;
    const InstanceMeta meta = meta_it->second;
    instance_meta_.erase(meta_it);

    DecisionRecord rec;
    rec.instance = id;
    rec.honest_live = group.outputs.size();
    rec.round_span =
        static_cast<std::uint32_t>(group.retired_round - meta.admitted_round + 1);
    std::optional<bool> value;
    for (const std::optional<bool>& out : group.outputs) {
      if (!out.has_value()) continue;
      ++rec.honest_decided;
      if (value.has_value() && *value != *out) rec.agreement = false;
      value = *out;
    }
    rec.value = value.value_or(false);
    rec.delivered = value.has_value() && rec.agreement && *value == meta.bit;

    ++stats_.decisions;
    if (rec.agreement && rec.honest_decided > 0) ++stats_.agreed;
    if (rec.delivered) ++stats_.delivered;
    decisions_.push_back(rec);

    for (const Release& rel : sessions_.complete(id, rec)) {
      send_frame(rel.session, make_decision(rel.session, rel.seq, rel.record.value,
                                            rel.record.agreement, rel.record.round_span,
                                            rel.record.instance));
    }
  }
}

void BaServiceDaemon::drain(std::size_t max_rounds) {
  std::size_t ticks = 0;
  while (max_rounds == 0 || ticks < max_rounds) {
    poll();
    if (step()) {
      ++ticks;
      continue;
    }
    // Idle. One more poll: a frame may have landed since the last one (e.g.
    // a client replying to a decision we just pushed); truly quiet = done.
    if (poll() == 0 && admission_queue_.empty()) break;
  }
}

void BaServiceDaemon::shutdown() {
  if (shut_down_) return;
  drain();
  for (auto& [id, state] : conns_) {
    (void)id;
    state.conn->close();
  }
  // Final tallies over end-honest parties (frame hygiene is party-local; the
  // network cannot read framing, so the parties' own counters are the truth).
  for (PartyId i : env_.honest) {
    if (sim_->is_corrupt(i)) continue;
    stats_.pipeline_malformed += pipeline(i)->malformed_frames();
    stats_.pipeline_stale += pipeline(i)->stale_frames();
    pipeline(i)->close();
  }
  stats_.duplicates = router_.duplicates_rejected();
  stats_.transport_malformed = router_.malformed_frames();
  stats_.adaptively_corrupted = sim_->stats().faults.adaptive_corruptions;
  sim_->end_run();
  shut_down_ = true;
  audit();
}

obs::Budget BaServiceDaemon::amortized_budget(std::size_t ell) {
  obs::Budget b;
  b.c = kAmortizedBitsPerLog4 * static_cast<double>(std::max<std::size_t>(ell, 1));
  b.k = 4;
  b.n_exp = 0;
  b.min_n = 256;
  return b;
}

std::vector<obs::BudgetEval> BaServiceDaemon::audit() {
  if (!cfg_.ledger) return {};
  obs::BudgetAuditor auditor;
  auditor.require(std::string("svc/") + protocol_name(cfg_.protocol), "",
                  amortized_budget(stats_.decisions));
  std::vector<bool> exclude(cfg_.n, false);
  for (PartyId i = 0; i < cfg_.n; ++i) exclude[i] = sim_->is_corrupt(i);
  std::vector<obs::BudgetEval> evals = auditor.evaluate(*cfg_.ledger, &exclude);
  if (cfg_.strict_budgets) {
    for (const obs::BudgetEval& e : evals) {
      if (e.skipped || e.ok) continue;
      throw BudgetViolation(
          "amortized budget violation: " + e.protocol + " at n=" + std::to_string(e.n) +
              " over " + std::to_string(stats_.decisions) + " decisions: party " +
              std::to_string(e.worst_party) + " used " + std::to_string(e.max_bits) +
              " bits > bound " + std::to_string(static_cast<std::uint64_t>(e.bound_bits)),
          {e});
    }
  }
  return evals;
}

obs::Json BaServiceDaemon::stats_json() const {
  obs::Json j = obs::Json::object();
  obs::Json s = obs::Json::object();
  s.set("decisions", static_cast<unsigned long long>(stats_.decisions));
  s.set("accepted", static_cast<unsigned long long>(stats_.accepted));
  s.set("rejected_backpressure",
        static_cast<unsigned long long>(stats_.rejected_backpressure));
  s.set("sessions", static_cast<unsigned long long>(stats_.sessions));
  s.set("rounds", static_cast<unsigned long long>(stats_.rounds));
  s.set("agreed", static_cast<unsigned long long>(stats_.agreed));
  s.set("delivered", static_cast<unsigned long long>(stats_.delivered));
  s.set("duplicates", static_cast<unsigned long long>(stats_.duplicates));
  s.set("transport_malformed",
        static_cast<unsigned long long>(stats_.transport_malformed));
  s.set("pipeline_malformed",
        static_cast<unsigned long long>(stats_.pipeline_malformed));
  s.set("pipeline_stale", static_cast<unsigned long long>(stats_.pipeline_stale));
  s.set("adaptively_corrupted",
        static_cast<unsigned long long>(stats_.adaptively_corrupted));
  j.set("stats", std::move(s));
  j.set("active_instances", static_cast<unsigned long long>(active_instances()));
  j.set("queued_admissions", static_cast<unsigned long long>(queued_admissions()));
  j.set("sessions_opened",
        static_cast<unsigned long long>(sessions_.sessions_opened()));
  j.set("current_round", static_cast<unsigned long long>(sim_->current_round()));
  if (cfg_.ledger) {
    const obs::PartyStat ps = cfg_.ledger->stat(obs::LedgerField::kBytesTotal);
    obs::Json l = obs::Json::object();
    l.set("bytes_total", static_cast<unsigned long long>(ps.total));
    l.set("bytes_max_party", static_cast<unsigned long long>(ps.max));
    l.set("bytes_p90_party", static_cast<unsigned long long>(ps.p90));
    j.set("ledger", std::move(l));
  }
  if (obs::alloc_hooks_active()) {
    j.set("alloc_ops", static_cast<unsigned long long>(obs::alloc_ops()));
  }
  if (obs::prof_enabled()) {
    j.set("prof", obs::prof_to_json());
  }
  return j;
}

void BaServiceDaemon::on_stats(std::uint64_t conn, const Frame& f) {
  // Snapshot requests carry no session requirement: any connection may ask.
  send_to_conn(conn, make_stats_reply(f.session, stats_json().dump()));
}

void BaServiceDaemon::send_frame(std::uint64_t session, const Frame& f) {
  auto it = session_conn_.find(session);
  if (it == session_conn_.end()) return;  // session's connection is gone
  send_to_conn(it->second, f);
}

void BaServiceDaemon::send_to_conn(std::uint64_t conn, const Frame& f) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  const Bytes wire = encode_frame(f);
  it->second.conn->send(wire);
}

// --- ServiceClient ---------------------------------------------------------

ServiceClient::ServiceClient(std::unique_ptr<Connection> conn)
    : conn_(std::move(conn)) {}

void ServiceClient::open() { conn_->send(encode_frame(make_hello())); }

std::uint64_t ServiceClient::submit(bool bit) {
  if (!can_submit()) return 0;
  const std::uint64_t seq = next_seq_++;
  sent_bits_[seq] = bit;
  ++inflight_;
  conn_->send(encode_frame(make_submit(session_, seq, bit)));
  return seq;
}

std::uint64_t ServiceClient::retry() {
  if (retry_queue_.empty()) return 0;
  const std::uint64_t seq = retry_queue_.front();
  retry_queue_.pop_front();
  ++inflight_;
  conn_->send(encode_frame(make_submit(session_, seq, sent_bits_[seq])));
  return seq;
}

std::size_t ServiceClient::poll() {
  decoder_.feed(conn_->recv());
  std::size_t processed = 0;
  while (auto f = decoder_.next()) {
    ++processed;
    switch (f->type) {
      case FrameType::kHelloAck: {
        std::uint32_t window = 0;
        if (parse_hello_ack(f->payload, window)) {
          session_ = f->session;
          window_ = window;
        }
        break;
      }
      case FrameType::kDecision: {
        DecisionPayload d;
        if (!parse_decision(f->payload, d)) break;
        auto it = sent_bits_.find(f->seq);
        ClientDecision cd;
        cd.seq = f->seq;
        cd.bit = it != sent_bits_.end() && it->second;
        cd.decision = d;
        decisions_.push_back(cd);
        ++decisions_received_;
        if (it != sent_bits_.end() && inflight_ > 0) --inflight_;
        break;
      }
      case FrameType::kReject: {
        ++rejects_;
        if (inflight_ > 0) --inflight_;
        // Keep the retry queue in seq order: the server consumes sequence
        // numbers contiguously, so retries must go out lowest-first.
        auto pos = std::lower_bound(retry_queue_.begin(), retry_queue_.end(), f->seq);
        if (pos == retry_queue_.end() || *pos != f->seq) retry_queue_.insert(pos, f->seq);
        break;
      }
      case FrameType::kError: {
        Reader r(f->payload);
        last_error_ = r.str();
        if (sent_bits_.count(f->seq) != 0) {
          if (inflight_ > 0) --inflight_;
          auto pos = std::lower_bound(retry_queue_.begin(), retry_queue_.end(), f->seq);
          if (pos == retry_queue_.end() || *pos != f->seq) retry_queue_.insert(pos, f->seq);
        }
        break;
      }
      case FrameType::kStatsReply: {
        std::string json;
        if (parse_stats_reply(f->payload, json)) {
          last_stats_ = std::move(json);
          ++stats_received_;
        }
        break;
      }
      case FrameType::kHello:
      case FrameType::kSubmit:
      case FrameType::kClose:
      case FrameType::kStats:
        break;  // client-bound stream should not carry these; ignore
    }
  }
  return processed;
}

void ServiceClient::request_stats() {
  conn_->send(encode_frame(make_stats(session_)));
}

std::vector<ServiceClient::ClientDecision> ServiceClient::take_decisions() {
  std::vector<ClientDecision> out;
  out.swap(decisions_);
  return out;
}

void ServiceClient::close() {
  if (session_ != 0) conn_->send(encode_frame(make_close(session_)));
  conn_->close();
}

}  // namespace srds::svc

#include "svc/session.hpp"

namespace srds::svc {

std::uint64_t SessionManager::open() {
  const std::uint64_t id = next_session_++;
  sessions_.emplace(id, Session{});
  return id;
}

void SessionManager::close(std::uint64_t session) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  it->second.open = false;
  // In-flight instances keep running inside the pipelines (stopping them
  // mid-protocol would desynchronize the lockstep schedule); unbinding them
  // here makes complete() drop their releases on the floor.
  for (const auto& kv : it->second.pending) {
    if (kv.second.tracked) instance_index_.erase(kv.second.instance);
  }
  it->second.pending.clear();
}

bool SessionManager::is_open(std::uint64_t session) const {
  auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.open;
}

SubmitResult SessionManager::submit(std::uint64_t session, std::uint64_t seq,
                                    std::uint32_t retry_after_hint) {
  SubmitResult res;
  auto it = sessions_.find(session);
  if (it == sessions_.end() || !it->second.open || seq == 0) {
    res.status = SubmitStatus::kBadSession;
    if (it != sessions_.end() && seq == 0) res.status = SubmitStatus::kBadSeq;
    return res;
  }
  Session& s = it->second;

  if (seq < s.next_seq) {
    // Replay of an older submission. The FrameRouter already filters most of
    // these; this path covers duplicates arriving via a different connection.
    if (auto p = s.pending.find(seq); p != s.pending.end()) {
      res.status = SubmitStatus::kDuplicateInFlight;
      return res;
    }
    for (const auto& [cseq, record] : s.completed) {
      if (cseq == seq) {
        res.status = SubmitStatus::kDuplicateDecided;
        res.cached = record;
        return res;
      }
    }
    res.status = SubmitStatus::kDuplicateEvicted;
    return res;
  }
  if (seq != s.next_seq) {
    res.status = SubmitStatus::kBadSeq;  // gap — client-side bug
    return res;
  }
  if (s.pending.size() >= window_) {
    rejected_full_ += 1;
    res.status = SubmitStatus::kRejectedFull;
    res.retry_after = retry_after_hint;
    return res;
  }
  s.next_seq += 1;
  s.pending.emplace(seq, Pending{});
  res.status = SubmitStatus::kAccepted;
  return res;
}

void SessionManager::track(std::uint64_t session, std::uint64_t seq, std::uint64_t instance) {
  auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  auto p = it->second.pending.find(seq);
  if (p == it->second.pending.end()) return;
  p->second.instance = instance;
  p->second.tracked = true;
  instance_index_[instance] = {session, seq};
}

std::vector<Release> SessionManager::complete(std::uint64_t instance,
                                              const DecisionRecord& record) {
  std::vector<Release> out;
  auto idx = instance_index_.find(instance);
  if (idx == instance_index_.end()) return out;  // session closed meanwhile
  const auto [session, seq] = idx->second;
  instance_index_.erase(idx);

  auto it = sessions_.find(session);
  if (it == sessions_.end()) return out;
  Session& s = it->second;
  auto p = s.pending.find(seq);
  if (p == s.pending.end()) return out;
  p->second.record = record;

  // Release the contiguous decided prefix, preserving submission order even
  // when staggered instances retire out of order.
  while (true) {
    auto head = s.pending.find(s.next_release);
    if (head == s.pending.end() || !head->second.record.has_value()) break;
    out.push_back(Release{session, s.next_release, *head->second.record});
    s.completed.emplace_back(s.next_release, *head->second.record);
    while (s.completed.size() > completed_cache_) s.completed.pop_front();
    s.pending.erase(head);
    s.next_release += 1;
  }
  return out;
}

std::size_t SessionManager::inflight(std::uint64_t session) const {
  auto it = sessions_.find(session);
  return it == sessions_.end() ? 0 : it->second.pending.size();
}

}  // namespace srds::svc

// Counting multisig — the paper's "connection to succinct arguments"
// (§1.2 and the end of §2.2), in executable form.
//
// The natural approach toward SRDS from weaker assumptions is to take a
// multi-signature and *replace the Θ(n)-bit signer bitmap* with a succinct
// proof of the statement
//
//     "there exists a signer set S with |S| = c whose signatures on m
//      aggregate to the tag T"
//
// — an average-case instance of an NP-complete subset-aggregation problem
// (the paper's generalization of Subset-Sum/Subset-Product; here the group
// operation is the tag XOR). The paper shows this route *necessitates*
// SNARG-like tools; this module demonstrates the construction with the
// repository's simulated SNARG and makes the remaining gap concrete:
//
//   * one-shot aggregation works: the final certificate is (tag, count,
//     proof) — constant size, no identities — and verifies like an SRDS;
//   * but the PROVER's witness is the full signer set (Θ(n) bits) plus all
//     base signatures, so only a node that has seen *everything* can
//     aggregate. There is no way to merge two counting-multisig
//     certificates without re-proving from scratch — `merge()` below is
//     deliberately absent. Incremental polylog-batch reconstruction (the
//     "R" in SRDS) is exactly what the PCD-based construction
//     (snark_srds.hpp) adds via recursive composition.
#pragma once

#include <memory>
#include <optional>

#include "crypto/multisig.hpp"
#include "snark/snark.hpp"
#include "srds/srds.hpp"

namespace srds {

/// Certificate: 48-byte aggregate tag + u64 count + 64-byte SNARG proof.
struct CountingMultisigCert {
  MultisigTag tag;
  std::uint64_t count = 0;
  SnarkProof proof;

  Bytes serialize() const;
  static bool deserialize(BytesView data, CountingMultisigCert& out);
  static constexpr std::size_t kSize = 48 + 8 + SnarkProof::kSize;
};

class CountingMultisig {
 public:
  /// n parties; `threshold_fraction` of n must have signed for verify().
  CountingMultisig(std::size_t n, std::uint64_t seed, double threshold_fraction = 0.5);

  std::size_t n() const { return registry_.n(); }
  std::uint64_t threshold() const { return threshold_; }

  MultisigTag sign(std::size_t i, BytesView m) const { return registry_.sign(i, m); }

  /// One-shot aggregation: requires the full signer list and all tags (the
  /// Θ(n)-bit witness — see the header comment). Returns nullopt if any
  /// tag is invalid or signers repeat.
  std::optional<CountingMultisigCert> aggregate(
      BytesView m, const std::vector<std::size_t>& signers,
      const std::vector<MultisigTag>& tags) const;

  /// Constant-size verification: proof + count >= threshold. No identities.
  bool verify(BytesView m, const CountingMultisigCert& cert) const;

 private:
  Bytes statement_bytes(BytesView m, const MultisigTag& tag, std::uint64_t count) const;

  MultisigRegistry registry_;
  std::uint64_t threshold_;
  SnarkOracle oracle_;
  ProverHandle prover_;
};

}  // namespace srds

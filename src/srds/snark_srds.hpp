// SRDS from CRH + SNARKs (simulated PCD) in the bare-PKI + CRS model
// (paper Theorem 2.8).
//
// Every signer locally generates a WOTS key pair and publishes the
// verification key on the bulletin board (bare PKI: the adversary may
// replace corrupted signers' keys as a function of everything public). The
// CRS commits to nothing but the SNARK setup; at finalize_keys() the key
// list is Merkle-committed so that statements can reference all N keys in
// 32 bytes.
//
// An aggregated signature is a constant-size PCD message:
//     statement = (H(m), vk-root, count, min, max),  proof = 64 bytes,
// so every aggregate — including the final one — is Õ(1) regardless of how
// many base signatures it covers. The PCD compliance predicate enforces:
//   * leaf aggregation: `count` distinct signer indices in [min, max], each
//     with a WOTS signature valid under a key that Merkle-opens into
//     vk-root (witness carries keys + opening paths; the verifier never
//     sees them — this is where Θ(n) bits of signer identity disappear);
//   * recursive aggregation: child statements agree on (H(m), vk-root) and
//     cover strictly increasing, pairwise-disjoint index ranges whose
//     counts sum — the CRH-based anti-duplication device of §2.2: a base
//     signature cannot be counted twice because its index would have to lie
//     in two disjoint ranges.
// Verification accepts iff the proof verifies, the statement's vk-root is
// the finalized one, and count >= threshold (half the signers by default).
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "crypto/merkle.hpp"
#include "crypto/wots.hpp"
#include "snark/snark.hpp"
#include "srds/srds.hpp"

namespace srds {

struct SnarkSrdsParams {
  std::size_t n_signers = 0;
  /// Accepting threshold as a fraction of n_signers.
  double threshold_fraction = 0.5;
  /// kWots (faithful; supports bare-PKI key replacement) or kCompact
  /// (registry tags for large-n benches; replace_key unsupported there).
  BaseSigBackend backend = BaseSigBackend::kWots;
};

class SnarkSrds final : public SrdsScheme {
 public:
  SnarkSrds(const SnarkSrdsParams& params, std::uint64_t crs_seed);

  std::string name() const override { return "snark-bare-pki"; }
  std::size_t signer_count() const override { return params_.n_signers; }
  bool bare_pki() const override { return true; }
  std::uint64_t threshold() const override { return threshold_; }

  void keygen(std::size_t i) override;
  bool replace_key(std::size_t i, const Bytes& vk) override;  // bare PKI
  void finalize_keys() override;
  Bytes verification_key(std::size_t i) const override;

  Bytes sign(std::size_t i, BytesView m) override;
  std::vector<Bytes> aggregate1(BytesView m, const std::vector<Bytes>& sigs) const override;
  Bytes aggregate2(BytesView m, const std::vector<Bytes>& filtered) const override;
  bool verify(BytesView m, BytesView sig) const override;

  bool index_range(BytesView sig, IndexRange& out) const override;
  std::uint64_t base_count(BytesView sig) const override;

  /// The Merkle commitment to the finalized key list.
  const Digest& key_root() const { return key_root_; }

  /// WOTS signing target for signer `index` on message m (public: an
  /// adversary who replaced key i with its own WOTS key signs this itself).
  static Bytes signing_target(std::uint64_t index, BytesView m);

  /// Build a base-signature blob from an externally held WOTS key pair
  /// (used by bare-PKI adversaries for their replaced keys).
  static Bytes make_base_signature(std::uint64_t index, const WotsKeyPair& kp, BytesView m);

 private:
  struct ParsedAggregate {
    Digest m_digest;
    Digest root;
    std::uint64_t count = 0, min = 0, max = 0;
    SnarkProof proof;
  };

  static Digest message_digest(BytesView m);
  static Bytes statement_bytes(const Digest& md, const Digest& root, std::uint64_t count,
                               std::uint64_t min, std::uint64_t max);
  static bool parse_aggregate(BytesView blob, ParsedAggregate& out);
  bool parse_base(BytesView blob, BytesView m, std::uint64_t& index, Bytes& sig_raw) const;
  bool compliance_check(BytesView statement, BytesView witness,
                        const std::vector<PriorMessage>& priors) const;

  std::size_t base_sig_size() const;
  bool verify_base_raw(std::uint64_t index, BytesView sig_raw, BytesView target) const;

  SnarkSrdsParams params_;
  std::uint64_t threshold_;
  Rng keygen_rng_;
  SnarkOracle oracle_;
  ProverHandle prover_;

  std::vector<Digest> vks_;
  std::vector<std::optional<WotsKeyPair>> kps_;  // engaged for honest keygen (kWots)
  std::vector<std::optional<Bytes>> secrets_;    // engaged for honest keygen (kCompact)
  std::vector<bool> generated_;
  std::optional<MerkleTree> key_tree_;
  Digest key_root_;
  bool finalized_ = false;
};

}  // namespace srds

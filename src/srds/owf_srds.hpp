// SRDS from one-way functions in the trusted-PKI model (paper Theorem 2.7).
//
// The "sortition" construction influenced by Algorand: during trusted key
// generation, each signer's verification key is — with probability
// q = lambda / N — a real WOTS key, and otherwise an *obliviously generated*
// key (a uniformly random string with no known signing key). Only the
// expected-lambda sortition winners can sign; an adversary inspecting the
// PKI cannot tell winners from losers, so corrupting parties after seeing
// the keys preserves the honest fraction among winners (Chernoff).
//
//   * Sign: WOTS signature (one-time use is exactly what the one-shot BA
//     boost needs), ⊥ for losers.
//   * Aggregate: concatenation — the ordered, index-deduplicated list of
//     valid base signatures. Since only ~lambda = polylog(n) signers exist,
//     an aggregate is polylog(n) * poly(κ) bits: succinct in the paper's
//     Õ(·) accounting even though every base signature travels to the root.
//   * Verify: count valid distinct base signatures; accept at >= lambda/2.
//
// Trusted PKI is essential: with a bare PKI the adversary would replace its
// keys with real (signing-capable) ones and own every sortition seat.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "crypto/wots.hpp"
#include "srds/srds.hpp"

namespace srds {

/// kWots is the faithful OWF instantiation; kCompact (registry-backed
/// 32-byte tags, secrets API-gated) serves the large-n protocol benchmarks.
using OwfSigBackend = BaseSigBackend;

struct OwfSrdsParams {
  std::size_t n_signers = 0;
  /// Expected number of sortition winners (the paper's polylog(n)).
  std::size_t expected_signers = 48;
  /// Accepting threshold as a fraction of expected_signers.
  double threshold_fraction = 0.5;
  OwfSigBackend backend = OwfSigBackend::kWots;
};

class OwfSrds final : public SrdsScheme {
 public:
  OwfSrds(const OwfSrdsParams& params, std::uint64_t setup_seed);

  std::string name() const override { return "owf-trusted-pki"; }
  std::size_t signer_count() const override { return params_.n_signers; }
  bool bare_pki() const override { return false; }
  std::uint64_t threshold() const override { return threshold_; }

  void keygen(std::size_t i) override;
  bool replace_key(std::size_t, const Bytes&) override { return false; }  // trusted PKI
  void finalize_keys() override;
  Bytes verification_key(std::size_t i) const override;

  Bytes sign(std::size_t i, BytesView m) override;
  std::vector<Bytes> aggregate1(BytesView m, const std::vector<Bytes>& sigs) const override;
  Bytes aggregate2(BytesView m, const std::vector<Bytes>& filtered) const override;
  bool verify(BytesView m, BytesView sig) const override;

  bool index_range(BytesView sig, IndexRange& out) const override;
  std::uint64_t base_count(BytesView sig) const override;

  /// Whether signer i won the sortition. Exposed for experiments only — the
  /// model-level adversary must not consult this before corrupting (the real
  /// scheme hides it information-theoretically in the PKI).
  bool has_signing_key(std::size_t i) const;

  /// Actual number of sortition winners (experiments/diagnostics).
  std::size_t winner_count() const;

 private:
  struct Entry {
    Digest vk;
    std::optional<WotsKeyPair> kp;  // engaged iff sortition winner (kWots)
    std::optional<Bytes> secret;    // engaged iff winner (kCompact)
    bool generated = false;
    bool winner() const { return kp.has_value() || secret.has_value(); }
  };

  /// Validated (index, signature-bytes) pair extracted from a blob.
  /// sig_raw is a serialized WOTS signature (kWots) or a 32-byte tag.
  struct BaseSig {
    std::uint64_t index;
    Bytes sig_raw;
  };

  std::size_t base_sig_size() const;
  bool verify_base(std::uint64_t index, BytesView m, BytesView sig_raw) const;

  Bytes signing_target(std::uint64_t index, BytesView m) const;
  bool extract(BytesView blob, BytesView m, std::vector<BaseSig>& out) const;
  static Bytes encode(const std::vector<BaseSig>& sigs);

  OwfSrdsParams params_;
  std::uint64_t threshold_;
  Rng keygen_rng_;
  double win_probability_;
  std::vector<Entry> entries_;
  bool finalized_ = false;
};

}  // namespace srds

#include "srds/owf_srds.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "obs/prof.hpp"

namespace srds {

namespace {
// Blob layout: u8 tag (1 = aggregate; base signatures are singleton
// aggregates), u64 min, u64 max, u32 count, count x (u64 index, sig bytes).
constexpr std::uint8_t kTagAggregate = 1;
}  // namespace

OwfSrds::OwfSrds(const OwfSrdsParams& params, std::uint64_t setup_seed)
    : params_(params),
      threshold_(static_cast<std::uint64_t>(
          static_cast<double>(params.expected_signers) * params.threshold_fraction)),
      keygen_rng_(setup_seed ^ 0x6f77667372647321ULL),
      entries_(params.n_signers) {
  if (params_.n_signers == 0) throw std::invalid_argument("OwfSrds: n_signers == 0");
  if (params_.expected_signers == 0 || params_.expected_signers > params_.n_signers) {
    throw std::invalid_argument("OwfSrds: expected_signers out of range");
  }
  win_probability_ = static_cast<double>(params_.expected_signers) /
                     static_cast<double>(params_.n_signers);
  if (threshold_ == 0) threshold_ = 1;
}

std::size_t OwfSrds::base_sig_size() const {
  return params_.backend == OwfSigBackend::kWots ? WotsSignature::kSerializedSize : 32;
}

void OwfSrds::keygen(std::size_t i) {
  if (i >= entries_.size()) throw std::out_of_range("OwfSrds::keygen: bad index");
  if (finalized_) throw std::logic_error("OwfSrds::keygen: keys already finalized");
  Entry& e = entries_[i];
  if (e.generated) return;
  if (keygen_rng_.chance(win_probability_)) {
    if (params_.backend == OwfSigBackend::kWots) {
      Bytes seed = keygen_rng_.bytes(32);
      e.kp = wots_keygen(seed);
      e.vk = e.kp->verification_key;
    } else {
      e.secret = keygen_rng_.bytes(32);
      e.vk = sha256_tagged("owf-compact-vk", *e.secret);
    }
  } else {
    e.vk = wots_oblivious_keygen(keygen_rng_);
  }
  e.generated = true;
}

void OwfSrds::finalize_keys() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].generated) keygen(i);
  }
  finalized_ = true;
}

Bytes OwfSrds::verification_key(std::size_t i) const {
  if (i >= entries_.size() || !entries_[i].generated) return {};
  return entries_[i].vk.to_bytes();
}

bool OwfSrds::has_signing_key(std::size_t i) const {
  return i < entries_.size() && entries_[i].winner();
}

std::size_t OwfSrds::winner_count() const {
  std::size_t c = 0;
  for (const auto& e : entries_) c += e.winner() ? 1 : 0;
  return c;
}

Bytes OwfSrds::signing_target(std::uint64_t index, BytesView m) const {
  Writer w;
  w.u64(index);
  w.bytes(m);
  return sha256_tagged("owf-srds-msg", w.data()).to_bytes();
}

bool OwfSrds::verify_base(std::uint64_t index, BytesView m, BytesView sig_raw) const {
  const Entry& e = entries_[index];
  Bytes target = signing_target(index, m);
  if (params_.backend == OwfSigBackend::kWots) {
    WotsSignature sig;
    if (!WotsSignature::deserialize(sig_raw, sig)) return false;
    return wots_verify(e.vk, target, sig);
  }
  // Compact backend: only sortition winners have a registry secret; a tag
  // under a loser's (nonexistent) key can never verify.
  if (!e.secret.has_value() || sig_raw.size() != 32) return false;
  return hmac_sha256(*e.secret, target) == Digest::from(sig_raw);
}

Bytes OwfSrds::encode(const std::vector<BaseSig>& sigs) {
  PROF_SCOPE(obs::ProfSiteId::kSrdsSerialize);
  if (sigs.empty()) return {};
  Writer w;
  w.u8(kTagAggregate);
  w.u64(sigs.front().index);
  w.u64(sigs.back().index);
  w.u32(static_cast<std::uint32_t>(sigs.size()));
  for (const auto& bs : sigs) {
    w.u64(bs.index);
    w.raw(bs.sig_raw);
  }
  return std::move(w).take();
}

bool OwfSrds::extract(BytesView blob, BytesView m, std::vector<BaseSig>& out) const {
  PROF_SCOPE(obs::ProfSiteId::kSrdsDeserialize);
  Reader r(blob);
  if (r.u8() != kTagAggregate) return false;
  std::uint64_t min = r.u64();
  std::uint64_t max = r.u64();
  std::uint32_t count = r.u32();
  if (!r.ok() || count == 0 || count > entries_.size()) return false;
  std::vector<BaseSig> sigs;
  sigs.reserve(count);
  std::uint64_t prev = 0;
  for (std::uint32_t k = 0; k < count; ++k) {
    BaseSig bs;
    bs.index = r.u64();
    bs.sig_raw = r.raw(base_sig_size());
    if (!r.ok()) return false;
    if (bs.index >= entries_.size()) return false;
    if (k > 0 && bs.index <= prev) return false;  // strictly increasing
    prev = bs.index;
    if (!verify_base(bs.index, m, bs.sig_raw)) return false;
    sigs.push_back(std::move(bs));
  }
  if (!r.done()) return false;
  if (sigs.front().index != min || sigs.back().index != max) return false;
  out = std::move(sigs);
  return true;
}

Bytes OwfSrds::sign(std::size_t i, BytesView m) {
  PROF_SCOPE(obs::ProfSiteId::kSrdsSign);
  if (i >= entries_.size()) throw std::out_of_range("OwfSrds::sign: bad index");
  if (!finalized_) throw std::logic_error("OwfSrds::sign: keys not finalized");
  const Entry& e = entries_[i];
  if (!e.winner()) return {};  // ⊥: sortition loser
  Bytes target = signing_target(i, m);
  std::vector<BaseSig> one;
  if (params_.backend == OwfSigBackend::kWots) {
    one.push_back(BaseSig{i, wots_sign(*e.kp, target).serialize()});
  } else {
    one.push_back(BaseSig{i, hmac_sha256(*e.secret, target).to_bytes()});
  }
  return encode(one);
}

std::vector<Bytes> OwfSrds::aggregate1(BytesView m, const std::vector<Bytes>& sigs) const {
  PROF_SCOPE(obs::ProfSiteId::kSrdsAggregate1);
  // Deterministic filter: keep blobs that fully verify on m.
  std::vector<Bytes> kept;
  kept.reserve(sigs.size());
  for (const auto& blob : sigs) {
    std::vector<BaseSig> parsed;
    if (extract(blob, m, parsed)) kept.push_back(blob);
  }
  return kept;
}

Bytes OwfSrds::aggregate2(BytesView m, const std::vector<Bytes>& filtered) const {
  PROF_SCOPE(obs::ProfSiteId::kSrdsAggregate2);
  // Concatenation: merge all base signatures, dedup by index. Invalid blobs
  // (aggregate2 trusts aggregate1, but remains safe) are skipped.
  std::vector<BaseSig> merged;
  for (const auto& blob : filtered) {
    std::vector<BaseSig> parsed;
    if (!extract(blob, m, parsed)) continue;
    merged.insert(merged.end(), std::make_move_iterator(parsed.begin()),
                  std::make_move_iterator(parsed.end()));
  }
  if (merged.empty()) return {};
  std::sort(merged.begin(), merged.end(),
            [](const BaseSig& a, const BaseSig& b) { return a.index < b.index; });
  std::vector<BaseSig> dedup;
  dedup.reserve(merged.size());
  for (auto& bs : merged) {
    if (dedup.empty() || dedup.back().index != bs.index) dedup.push_back(std::move(bs));
  }
  return encode(dedup);
}

bool OwfSrds::verify(BytesView m, BytesView sig) const {
  PROF_SCOPE(obs::ProfSiteId::kSrdsVerify);
  std::vector<BaseSig> parsed;
  if (!extract(sig, m, parsed)) return false;
  return parsed.size() >= threshold_;
}

bool OwfSrds::index_range(BytesView sig, IndexRange& out) const {
  Reader r(sig);
  if (r.u8() != kTagAggregate) return false;
  out.min = r.u64();
  out.max = r.u64();
  return r.ok() && out.min <= out.max;
}

std::uint64_t OwfSrds::base_count(BytesView sig) const {
  Reader r(sig);
  if (r.u8() != kTagAggregate) return 0;
  r.u64();
  r.u64();
  std::uint32_t count = r.u32();
  return r.ok() ? count : 0;
}

}  // namespace srds

#include "srds/games.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"

namespace srds {

namespace {

Bytes agreed_message() { return to_bytes("the-agreed-value"); }
Bytes forged_message() { return to_bytes("EVIL-forged-value"); }

/// Corruption choice over *parties* (slot owners).
std::vector<bool> choose_corruptions(const SrdsScheme& scheme, const CommTree& tree,
                                     const GameConfig& config, Rng& rng) {
  const std::size_t n = tree.params().n;
  std::vector<bool> corrupt(n, false);
  std::size_t budget = std::min(config.t, n);
  if (config.selector == CorruptionSelector::kRandom) {
    for (auto idx : rng.subset(n, budget)) corrupt[idx] = true;
    return corrupt;
  }
  // Clairvoyant: maximise corrupted signing power. For the OWF scheme this
  // means targeting sortition winners — information the real PKI hides, so
  // this adversary models a *broken* oblivious keygen (ablation).
  const auto* owf = dynamic_cast<const OwfSrds*>(&scheme);
  std::vector<std::pair<std::size_t, PartyId>> scored;  // (score, party)
  for (PartyId p = 0; p < n; ++p) {
    std::size_t score = 0;
    for (auto vid : tree.virtuals_of(p)) {
      if (owf) {
        score += owf->has_signing_key(vid) ? 1000 : 0;
      }
      score += 1;
    }
    scored.emplace_back(score, p);
  }
  std::sort(scored.rbegin(), scored.rend());
  for (std::size_t k = 0; k < budget; ++k) corrupt[scored[k].second] = true;
  return corrupt;
}

Bytes garbage_blob(Rng& rng) { return rng.bytes(64 + rng.below(128)); }

}  // namespace

CommTree make_game_tree(std::size_t n_parties, std::uint64_t seed) {
  TreeParams p = TreeParams::scaled(n_parties);
  p.repeats = 1;  // Def. 2.3: each party sits at exactly one level-0 slot
  return CommTree(p, seed);
}

RobustnessOutcome run_robustness_game(SrdsScheme& scheme, const CommTree& tree,
                                      const GameConfig& config) {
  if (scheme.signer_count() != tree.virtual_count()) {
    throw std::invalid_argument("robustness game: scheme/tree size mismatch");
  }
  Rng rng(config.seed ^ 0x726f62757374ULL);
  const std::size_t N = scheme.signer_count();

  // A. Setup and corruption.
  for (std::size_t i = 0; i < N; ++i) scheme.keygen(i);
  std::vector<bool> corrupt_party = choose_corruptions(scheme, tree, config, rng);
  std::vector<bool> corrupt_slot(N, false);
  for (std::size_t vid = 0; vid < N; ++vid) {
    corrupt_slot[vid] = corrupt_party[tree.owner_of_virtual(vid)];
  }
  // Bare PKI: replace corrupted keys with adversary-known WOTS keys.
  std::map<std::size_t, WotsKeyPair> adv_keys;
  if (scheme.bare_pki()) {
    for (std::size_t vid = 0; vid < N; ++vid) {
      if (!corrupt_slot[vid]) continue;
      WotsKeyPair kp = wots_keygen(rng.bytes(32));
      if (scheme.replace_key(vid, kp.verification_key.to_bytes())) {
        adv_keys.emplace(vid, std::move(kp));
      }
    }
  }
  scheme.finalize_keys();

  // B.1-2: tree is fixed (the challenger verified its Def. 2.3 shape at
  // construction); adversary picks messages for isolated honest parties.
  auto goodness = tree.analyze(corrupt_party, GoodnessRule::kOneThird);
  const Bytes m = agreed_message();
  const Bytes m_evil = forged_message();

  RobustnessOutcome outcome;
  for (bool c : corrupt_party) outcome.corrupted += c ? 1 : 0;

  // B.3-4: honest signatures; adversary's corrupt signatures.
  std::vector<Bytes> slot_sig(N);
  Bytes an_honest_sig;
  for (std::size_t vid = 0; vid < N; ++vid) {
    if (corrupt_slot[vid]) continue;
    bool isolated = !goodness.leaf_on_good_path[tree.leaf_of_virtual(vid)];
    if (isolated) ++outcome.isolated_honest;
    Bytes msg = isolated ? to_bytes("isolated-" + std::to_string(vid)) : m;
    slot_sig[vid] = scheme.sign(vid, msg);
    if (!isolated && !slot_sig[vid].empty() && an_honest_sig.empty()) {
      an_honest_sig = slot_sig[vid];
    }
  }
  for (std::size_t vid = 0; vid < N; ++vid) {
    if (!corrupt_slot[vid]) continue;
    switch (config.strategy) {
      case AttackStrategy::kSilent:
        break;
      case AttackStrategy::kGarbage:
        slot_sig[vid] = garbage_blob(rng);
        break;
      case AttackStrategy::kWrongMessage: {
        auto it = adv_keys.find(vid);
        if (it != adv_keys.end()) {
          slot_sig[vid] = SnarkSrds::make_base_signature(vid, it->second, m_evil);
        } else {
          slot_sig[vid] = scheme.sign(vid, m_evil);
        }
        break;
      }
      case AttackStrategy::kDuplicate:
        slot_sig[vid] = an_honest_sig;  // replay an honest signature
        break;
      case AttackStrategy::kBestEffort: {
        auto it = adv_keys.find(vid);
        if (it != adv_keys.end()) {
          slot_sig[vid] = SnarkSrds::make_base_signature(vid, it->second, m);
        } else {
          slot_sig[vid] = scheme.sign(vid, m);
        }
        break;
      }
    }
  }

  // B.5: interactive aggregation up the tree.
  std::map<std::size_t, Bytes> node_sig;  // node id -> σ_v
  auto adversary_aggregate = [&](const std::vector<Bytes>& inputs) -> Bytes {
    switch (config.strategy) {
      case AttackStrategy::kSilent:
        return {};
      case AttackStrategy::kGarbage:
        return garbage_blob(rng);
      case AttackStrategy::kDuplicate: {
        // Feed the same inputs many times — and also replay an honest
        // signature repeatedly — trying to inflate the count.
        std::vector<Bytes> dup = inputs;
        dup.insert(dup.end(), inputs.begin(), inputs.end());
        for (int k = 0; k < 4; ++k) dup.push_back(an_honest_sig);
        return scheme.aggregate(m, dup);
      }
      case AttackStrategy::kWrongMessage:
        return scheme.aggregate(m_evil, inputs);
      case AttackStrategy::kBestEffort:
        return scheme.aggregate(m, inputs);
    }
    return {};
  };

  // The challenger applies the protocol's range checks (Fig. 3 step 5c):
  // at a leaf, a base signature must carry an index inside the leaf's slot
  // range; at an internal node, an input's [min, max] must fall inside the
  // range of exactly one child. This is the device that stops replayed
  // signatures from stretching an aggregate's range across siblings.
  auto range_filter = [&](const TreeNode& node, std::vector<Bytes> inputs) {
    std::vector<Bytes> kept;
    for (auto& blob : inputs) {
      IndexRange r;
      if (!scheme.index_range(blob, r)) continue;
      bool ok = false;
      if (node.is_leaf()) {
        ok = (r.min == r.max && r.min >= node.vmin && r.max <= node.vmax);
      } else {
        for (std::size_t child : node.children) {
          const TreeNode& c = tree.node(child);
          if (r.min >= c.vmin && r.max <= c.vmax) {
            ok = true;
            break;
          }
        }
      }
      if (ok) kept.push_back(std::move(blob));
    }
    return kept;
  };

  for (std::size_t lvl = 1; lvl <= tree.height(); ++lvl) {
    for (std::size_t id : tree.level_nodes(lvl)) {
      const TreeNode& node = tree.node(id);
      std::vector<Bytes> inputs;
      if (node.is_leaf()) {
        for (std::uint64_t vid = node.vmin; vid <= node.vmax; ++vid) {
          if (!slot_sig[vid].empty()) inputs.push_back(slot_sig[vid]);
        }
      } else {
        for (std::size_t child : node.children) {
          auto it = node_sig.find(child);
          if (it != node_sig.end() && !it->second.empty()) inputs.push_back(it->second);
        }
      }
      Bytes sigma = goodness.node_good[id]
                        ? scheme.aggregate(m, range_filter(node, std::move(inputs)))
                        : adversary_aggregate(inputs);
      node_sig[id] = std::move(sigma);
    }
  }

  // C. Output phase.
  const Bytes& root_sig = node_sig[tree.root_id()];
  outcome.root_base_count = root_sig.empty() ? 0 : scheme.base_count(root_sig);
  outcome.verified = !root_sig.empty() && scheme.verify(m, root_sig);
  outcome.adversary_wins = !outcome.verified;
  return outcome;
}

ForgeryOutcome run_forgery_game(SrdsScheme& scheme, const GameConfig& config) {
  Rng rng(config.seed ^ 0x666f72676572ULL);
  const std::size_t N = scheme.signer_count();

  // A. Setup and corruption (directly over signer indices here: the forgery
  // game has no tree, so parties and signers coincide).
  for (std::size_t i = 0; i < N; ++i) scheme.keygen(i);
  std::size_t n_corrupt = std::min(config.t, N);
  std::vector<bool> corrupt(N, false);
  for (auto idx : rng.subset(N, n_corrupt)) corrupt[idx] = true;

  std::map<std::size_t, WotsKeyPair> adv_keys;
  if (scheme.bare_pki()) {
    for (std::size_t i = 0; i < N; ++i) {
      if (!corrupt[i]) continue;
      WotsKeyPair kp = wots_keygen(rng.bytes(32));
      if (scheme.replace_key(i, kp.verification_key.to_bytes())) {
        adv_keys.emplace(i, std::move(kp));
      }
    }
  }
  scheme.finalize_keys();

  // B. Forgery challenge: S = honest indices topping I up to just below N/3.
  const Bytes m = agreed_message();
  const Bytes m_prime = forged_message();
  std::size_t budget = (N % 3 == 0) ? (N / 3 - 1) : (N / 3);  // |S ∪ I| < N/3
  std::vector<bool> in_s(N, false);
  std::size_t s_count = 0;
  for (std::size_t i = 0; i < N && n_corrupt + s_count < budget; ++i) {
    if (!corrupt[i]) {
      in_s[i] = true;
      ++s_count;
    }
  }

  // Honest signatures handed to the adversary. Its best play: have every
  // party in S sign the forgery target m'.
  std::vector<Bytes> on_target;  // signatures on m' the adversary can use
  for (std::size_t i = 0; i < N; ++i) {
    if (corrupt[i]) {
      auto it = adv_keys.find(i);
      Bytes sig = (it != adv_keys.end())
                      ? SnarkSrds::make_base_signature(i, it->second, m_prime)
                      : scheme.sign(i, m_prime);
      if (!sig.empty()) on_target.push_back(std::move(sig));
    } else if (in_s[i]) {
      Bytes sig = scheme.sign(i, m_prime);  // m_i := m'
      if (!sig.empty()) on_target.push_back(std::move(sig));
    } else {
      (void)scheme.sign(i, m);  // handed over, but useless for m' != m
    }
  }

  ForgeryOutcome outcome;
  outcome.corrupted = n_corrupt;

  Bytes forged;
  switch (config.strategy) {
    case AttackStrategy::kGarbage:
      forged = garbage_blob(rng);
      break;
    case AttackStrategy::kDuplicate: {
      std::vector<Bytes> dup;
      for (int k = 0; k < 8; ++k) {
        dup.insert(dup.end(), on_target.begin(), on_target.end());
      }
      forged = scheme.aggregate(m_prime, dup);
      break;
    }
    default:
      forged = scheme.aggregate(m_prime, on_target);
      break;
  }
  outcome.adversary_wins = !forged.empty() && scheme.verify(m_prime, forged);
  return outcome;
}

}  // namespace srds

// Succinctly Reconstructed Distributed Signatures (SRDS) — the paper's
// primary contribution (Definition 2.1).
//
// An SRDS scheme lets N signers each produce a base signature on a message
// m; signatures can be aggregated *succinctly* — in particular, the final
// signature (including everything needed to verify it) is Õ(1), and
// verification certifies that a large number (a majority-like threshold) of
// base signatures on m were aggregated, without naming the signers.
//
// The interface mirrors the paper's quintuple (Setup, KeyGen, Sign,
// Aggregate, Verify), with the Definition 2.2 decomposition
// Aggregate = Aggregate2 ∘ Aggregate1:
//   * aggregate1 is deterministic, may use the verification keys, and
//     filters the input signatures down to a valid polylog-size subset;
//   * aggregate2 combines the filtered signatures without touching the key
//     list (its input is short, so it could run inside a small MPC — both
//     of our constructions make it deterministic, which is why the
//     f_aggr-sig functionality degenerates to local computation; DESIGN.md
//     substitution S3).
//
// Per the paper's convention, every signature encodes the min and max signer
// index it covers (min == max for base signatures); the BA protocol's range
// checks (Fig. 3 step 5c) and the anti-duplication argument rely on these.
//
// Lifecycle: construct (Setup) -> keygen(i) for each signer i (or
// replace_key for bare-PKI adversaries) -> finalize_keys() -> sign /
// aggregate / verify.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace srds {

/// Base-signature backend shared by the concrete schemes.
///   kWots    — real hash-based one-time signatures (faithful, ~2.1 KiB);
///   kCompact — registry-backed 32-byte tags for large-n protocol
///              simulations (same interface and poly(κ)-size shape; see
///              DESIGN.md). Crypto-level tests always run kWots.
enum class BaseSigBackend { kWots, kCompact };

/// Inclusive signer-index range covered by a signature.
struct IndexRange {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};

class SrdsScheme {
 public:
  virtual ~SrdsScheme() = default;

  /// Human-readable scheme name ("owf-trusted-pki", "snark-bare-pki").
  virtual std::string name() const = 0;

  /// Number of signers N (virtual parties in the BA protocol).
  virtual std::size_t signer_count() const = 0;

  /// True for bare-PKI schemes (the adversary may replace corrupted keys).
  virtual bool bare_pki() const = 0;

  /// Accepting threshold: verify() succeeds only for aggregates covering at
  /// least this many base signatures.
  virtual std::uint64_t threshold() const = 0;

  // --- key management ---

  /// Honest key generation for signer i (KeyGen(pp)). Idempotent per index.
  virtual void keygen(std::size_t i) = 0;

  /// Bare-PKI schemes allow the adversary to substitute a corrupted
  /// signer's verification key before finalize_keys(); trusted-PKI schemes
  /// return false and ignore the call.
  virtual bool replace_key(std::size_t i, const Bytes& vk) = 0;

  /// Freeze the PKI (e.g., commit to the key list). Must be called once,
  /// after all keygen/replace_key calls and before sign/aggregate/verify.
  virtual void finalize_keys() = 0;

  /// Signer i's public verification key (valid after keygen(i)).
  virtual Bytes verification_key(std::size_t i) const = 0;

  // --- signing and aggregation ---

  /// Sign(pp, i, sk_i, m). Returns the base-signature blob, or empty for ⊥
  /// (e.g., OWF-SRDS signers whose sortition coin gave no signing key).
  virtual Bytes sign(std::size_t i, BytesView m) = 0;

  /// Aggregate1: deterministic filter of candidate signatures (base or
  /// aggregated) into a valid subset.
  virtual std::vector<Bytes> aggregate1(BytesView m,
                                        const std::vector<Bytes>& sigs) const = 0;

  /// Aggregate2: combine an Aggregate1-filtered subset into one signature.
  /// Returns empty on failure (e.g., nothing to combine).
  virtual Bytes aggregate2(BytesView m, const std::vector<Bytes>& filtered) const = 0;

  /// Aggregate = Aggregate2 ∘ Aggregate1 (convenience).
  Bytes aggregate(BytesView m, const std::vector<Bytes>& sigs) const {
    return aggregate2(m, aggregate1(m, sigs));
  }

  /// Verify(pp, {vk}, m, σ): accept iff σ aggregates >= threshold() base
  /// signatures on m.
  virtual bool verify(BytesView m, BytesView sig) const = 0;

  // --- signature introspection (paper's max(σ)/min(σ)) ---

  /// Extract the signer-index range encoded in a signature blob.
  /// Returns false on malformed input.
  virtual bool index_range(BytesView sig, IndexRange& out) const = 0;

  /// Number of base signatures a blob claims to aggregate (1 for base).
  virtual std::uint64_t base_count(BytesView sig) const = 0;
};

using SrdsSchemePtr = std::shared_ptr<SrdsScheme>;

}  // namespace srds

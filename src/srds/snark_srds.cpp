#include "srds/snark_srds.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "obs/prof.hpp"

namespace srds {

namespace {

constexpr std::uint8_t kTagBase = 0;
constexpr std::uint8_t kTagAggregate = 1;

Digest target_from_md(std::uint64_t index, const Digest& md) {
  Writer t;
  t.u64(index);
  t.raw(md.view());
  return sha256_tagged("snark-srds-sig", t.data());
}

}  // namespace

SnarkSrds::SnarkSrds(const SnarkSrdsParams& params, std::uint64_t crs_seed)
    : params_(params),
      threshold_(static_cast<std::uint64_t>(
          static_cast<double>(params.n_signers) * params.threshold_fraction)),
      keygen_rng_(crs_seed ^ 0x736e61726b737264ULL),
      oracle_(crs_seed),
      // The predicate closure captures `this` for base-signature
      // verification; SnarkSrds objects must stay at a fixed address (use
      // std::unique_ptr / std::shared_ptr, never copy).
      prover_(oracle_.register_predicate(
          [this](BytesView st, BytesView w, const std::vector<PriorMessage>& priors) {
            return this->compliance_check(st, w, priors);
          })),
      vks_(params.n_signers),
      kps_(params.n_signers),
      secrets_(params.n_signers),
      generated_(params.n_signers, false) {
  if (params_.n_signers == 0) throw std::invalid_argument("SnarkSrds: n_signers == 0");
  if (threshold_ == 0) threshold_ = 1;
}

std::size_t SnarkSrds::base_sig_size() const {
  return params_.backend == BaseSigBackend::kWots ? WotsSignature::kSerializedSize : 32;
}

Digest SnarkSrds::message_digest(BytesView m) { return sha256_tagged("snark-srds-m", m); }

Bytes SnarkSrds::signing_target(std::uint64_t index, BytesView m) {
  return target_from_md(index, message_digest(m)).to_bytes();
}

bool SnarkSrds::verify_base_raw(std::uint64_t index, BytesView sig_raw,
                                BytesView target) const {
  if (index >= vks_.size()) return false;
  if (params_.backend == BaseSigBackend::kWots) {
    WotsSignature sig;
    if (!WotsSignature::deserialize(sig_raw, sig)) return false;
    return wots_verify(vks_[index], target, sig);
  }
  if (!secrets_[index].has_value() || sig_raw.size() != 32) return false;
  return hmac_sha256(*secrets_[index], target) == Digest::from(sig_raw);
}

bool SnarkSrds::compliance_check(BytesView statement, BytesView witness,
                                 const std::vector<PriorMessage>& priors) const {
  const std::size_t n_signers = params_.n_signers;
  Reader st(statement);
  Bytes md_raw = st.raw(32);
  Bytes root_raw = st.raw(32);
  std::uint64_t count = st.u64();
  std::uint64_t min = st.u64();
  std::uint64_t max = st.u64();
  if (!st.done() || count == 0 || min > max) return false;
  Digest md = Digest::from(md_raw);
  Digest root = Digest::from(root_raw);

  if (priors.empty()) {
    // Leaf aggregation: verify `count` distinct base signatures whose keys
    // Merkle-open into the committed key list.
    Reader w(witness);
    std::uint32_t k = w.u32();
    if (k != count || k == 0 || k > n_signers) return false;
    std::uint64_t prev = 0;
    for (std::uint32_t e = 0; e < k; ++e) {
      std::uint64_t index = w.u64();
      Bytes vk_raw = w.raw(32);
      Bytes path_raw = w.bytes();
      Bytes sig_raw = w.bytes();
      if (!w.ok()) return false;
      if (index >= n_signers || index < min || index > max) return false;
      if (e > 0 && index <= prev) return false;
      if (e == 0 && index != min) return false;
      if (e + 1 == k && index != max) return false;
      prev = index;

      Digest vk = Digest::from(vk_raw);
      MerklePath path;
      if (!MerklePath::deserialize(path_raw, path)) return false;
      if (path.leaf_index != index) return false;
      if (!MerkleTree::verify(root, sha256_tagged("srds-vk-leaf", vk.view()), path,
                              n_signers)) {
        return false;
      }
      if (!verify_base_raw(index, sig_raw, target_from_md(index, md).view())) {
        return false;
      }
    }
    return w.done();
  }

  // Recursive aggregation: children sorted, disjoint, consistent, summing.
  std::uint64_t sum = 0;
  std::uint64_t prev_max = 0;
  for (std::size_t i = 0; i < priors.size(); ++i) {
    Reader pr(priors[i].statement);
    Bytes p_md = pr.raw(32);
    Bytes p_root = pr.raw(32);
    std::uint64_t p_count = pr.u64();
    std::uint64_t p_min = pr.u64();
    std::uint64_t p_max = pr.u64();
    if (!pr.done() || p_count == 0 || p_min > p_max) return false;
    if (Digest::from(p_md) != md || Digest::from(p_root) != root) return false;
    if (i == 0) {
      if (p_min != min) return false;
    } else if (p_min <= prev_max) {
      return false;  // overlap or disorder => a base signature could repeat
    }
    if (i + 1 == priors.size() && p_max != max) return false;
    if (p_max > max || p_min < min) return false;
    prev_max = p_max;
    sum += p_count;
  }
  return sum == count;
}

Bytes SnarkSrds::statement_bytes(const Digest& md, const Digest& root, std::uint64_t count,
                                 std::uint64_t min, std::uint64_t max) {
  Writer w;
  w.raw(md.view());
  w.raw(root.view());
  w.u64(count);
  w.u64(min);
  w.u64(max);
  return std::move(w).take();
}

void SnarkSrds::keygen(std::size_t i) {
  if (i >= vks_.size()) throw std::out_of_range("SnarkSrds::keygen: bad index");
  if (finalized_) throw std::logic_error("SnarkSrds::keygen: keys already finalized");
  if (generated_[i]) return;
  if (params_.backend == BaseSigBackend::kWots) {
    Bytes seed = keygen_rng_.bytes(32);
    kps_[i] = wots_keygen(seed);
    vks_[i] = kps_[i]->verification_key;
  } else {
    secrets_[i] = keygen_rng_.bytes(32);
    vks_[i] = sha256_tagged("snark-compact-vk", *secrets_[i]);
  }
  generated_[i] = true;
}

bool SnarkSrds::replace_key(std::size_t i, const Bytes& vk) {
  if (finalized_ || i >= vks_.size() || vk.size() != 32) return false;
  if (params_.backend != BaseSigBackend::kWots) return false;  // bench backend
  vks_[i] = Digest::from(vk);
  kps_[i].reset();  // the scheme no longer knows a signing key for i
  generated_[i] = true;
  return true;
}

void SnarkSrds::finalize_keys() {
  for (std::size_t i = 0; i < vks_.size(); ++i) {
    if (!generated_[i]) keygen(i);
  }
  std::vector<Digest> leaves;
  leaves.reserve(vks_.size());
  for (const auto& vk : vks_) leaves.push_back(sha256_tagged("srds-vk-leaf", vk.view()));
  key_tree_.emplace(std::move(leaves));
  key_root_ = key_tree_->root();
  finalized_ = true;
}

Bytes SnarkSrds::verification_key(std::size_t i) const {
  if (i >= vks_.size() || !generated_[i]) return {};
  return vks_[i].to_bytes();
}

Bytes SnarkSrds::make_base_signature(std::uint64_t index, const WotsKeyPair& kp, BytesView m) {
  PROF_SCOPE(obs::ProfSiteId::kSrdsSerialize);
  Writer w;
  w.u8(kTagBase);
  w.u64(index);
  w.raw(wots_sign(kp, signing_target(index, m)).serialize());
  return std::move(w).take();
}

// srds-lint: shard-root(SnarkSrds::sign) — per-party signing entry; a
// sharded simulator calls this concurrently across parties (rule C1).
Bytes SnarkSrds::sign(std::size_t i, BytesView m) {
  PROF_SCOPE(obs::ProfSiteId::kSrdsSign);
  if (i >= vks_.size()) throw std::out_of_range("SnarkSrds::sign: bad index");
  if (!finalized_) throw std::logic_error("SnarkSrds::sign: keys not finalized");
  if (params_.backend == BaseSigBackend::kWots) {
    if (!kps_[i].has_value()) return {};  // replaced key: scheme holds no sk
    return make_base_signature(i, *kps_[i], m);
  }
  Writer w;
  w.u8(kTagBase);
  w.u64(i);
  w.raw(hmac_sha256(*secrets_[i], signing_target(i, m)).view());
  return std::move(w).take();
}

bool SnarkSrds::parse_base(BytesView blob, BytesView m, std::uint64_t& index,
                           Bytes& sig_raw) const {
  Reader r(blob);
  if (r.u8() != kTagBase) return false;
  index = r.u64();
  sig_raw = r.raw(base_sig_size());
  if (!r.ok() || !r.done() || index >= vks_.size()) return false;
  return verify_base_raw(index, sig_raw, signing_target(index, m));
}

bool SnarkSrds::parse_aggregate(BytesView blob, ParsedAggregate& out) {
  PROF_SCOPE(obs::ProfSiteId::kSrdsDeserialize);
  Reader r(blob);
  if (r.u8() != kTagAggregate) return false;
  Bytes md = r.raw(32);
  Bytes root = r.raw(32);
  out.count = r.u64();
  out.min = r.u64();
  out.max = r.u64();
  Bytes proof = r.raw(SnarkProof::kSize);
  if (!r.ok() || !r.done()) return false;
  out.m_digest = Digest::from(md);
  out.root = Digest::from(root);
  out.proof = SnarkProof::from(proof);
  return true;
}

std::vector<Bytes> SnarkSrds::aggregate1(BytesView m, const std::vector<Bytes>& sigs) const {
  PROF_SCOPE(obs::ProfSiteId::kSrdsAggregate1);
  // Validate every candidate, then keep a maximal prefix-greedy set of
  // range-disjoint blobs ordered by min index (base = [i, i]).
  struct Cand {
    IndexRange range;
    std::uint64_t count;
    const Bytes* blob;
  };
  Digest md = message_digest(m);
  auto verifier = prover_.verifier();
  std::vector<Cand> cands;
  for (const auto& blob : sigs) {
    if (blob.empty()) continue;
    if (blob[0] == kTagBase) {
      std::uint64_t index;
      Bytes sig_raw;
      if (parse_base(blob, m, index, sig_raw)) {
        cands.push_back(Cand{{index, index}, 1, &blob});
      }
    } else {
      ParsedAggregate agg;
      if (!parse_aggregate(blob, agg)) continue;
      if (agg.m_digest != md || agg.root != key_root_) continue;
      if (!verifier.verify(
              statement_bytes(agg.m_digest, agg.root, agg.count, agg.min, agg.max),
              agg.proof)) {
        continue;
      }
      cands.push_back(Cand{{agg.min, agg.max}, agg.count, &blob});
    }
  }
  // Sort by (min asc, count desc) and greedily keep disjoint ranges,
  // preferring higher counts at equal min.
  std::stable_sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.range.min != b.range.min) return a.range.min < b.range.min;
    return a.count > b.count;
  });
  std::vector<Bytes> kept;
  std::uint64_t prev_max = 0;
  bool first = true;
  for (const auto& c : cands) {
    if (!first && c.range.min <= prev_max) continue;
    kept.push_back(*c.blob);
    prev_max = c.range.max;
    first = false;
  }
  return kept;
}

Bytes SnarkSrds::aggregate2(BytesView m, const std::vector<Bytes>& filtered) const {
  PROF_SCOPE(obs::ProfSiteId::kSrdsAggregate2);
  if (!finalized_) throw std::logic_error("SnarkSrds::aggregate2: keys not finalized");
  Digest md = message_digest(m);

  // Split into base signatures and aggregates. aggregate2 must not rely on
  // the key list (Def. 2.2) beyond the witness data, so base entries carry
  // their keys and Merkle openings as PCD witness material.
  struct BaseEntry {
    std::uint64_t index;
    Bytes sig_raw;
  };
  std::vector<BaseEntry> bases;
  std::vector<ParsedAggregate> aggs;
  for (const auto& blob : filtered) {
    if (blob.empty()) continue;
    if (blob[0] == kTagBase) {
      Reader r(blob);
      r.u8();
      std::uint64_t index = r.u64();
      Bytes sig_raw = r.raw(base_sig_size());
      if (!r.ok() || !r.done() || index >= vks_.size()) continue;
      bases.push_back(BaseEntry{index, std::move(sig_raw)});
    } else {
      ParsedAggregate agg;
      if (parse_aggregate(blob, agg)) aggs.push_back(agg);
    }
  }

  // Turn base signatures into one leaf-level aggregate.
  if (!bases.empty()) {
    std::sort(bases.begin(), bases.end(),
              [](const BaseEntry& a, const BaseEntry& b) { return a.index < b.index; });
    bases.erase(std::unique(bases.begin(), bases.end(),
                            [](const BaseEntry& a, const BaseEntry& b) {
                              return a.index == b.index;
                            }),
                bases.end());
    Writer witness;
    witness.u32(static_cast<std::uint32_t>(bases.size()));
    for (const auto& b : bases) {
      witness.u64(b.index);
      witness.raw(vks_[b.index].view());
      witness.bytes(key_tree_->path(b.index).serialize());
      witness.bytes(b.sig_raw);
    }
    Bytes st = statement_bytes(md, key_root_, bases.size(), bases.front().index,
                               bases.back().index);
    auto proof = prover_.prove(st, witness.data(), {});
    if (!proof) return {};
    ParsedAggregate leaf;
    leaf.m_digest = md;
    leaf.root = key_root_;
    leaf.count = bases.size();
    leaf.min = bases.front().index;
    leaf.max = bases.back().index;
    leaf.proof = *proof;
    aggs.push_back(leaf);
  }

  if (aggs.empty()) return {};

  std::sort(aggs.begin(), aggs.end(),
            [](const ParsedAggregate& a, const ParsedAggregate& b) { return a.min < b.min; });

  ParsedAggregate result;
  if (aggs.size() == 1) {
    result = aggs[0];
  } else {
    std::vector<PriorMessage> priors;
    std::uint64_t count = 0;
    for (const auto& a : aggs) {
      priors.push_back(PriorMessage{
          statement_bytes(a.m_digest, a.root, a.count, a.min, a.max), a.proof});
      count += a.count;
    }
    Bytes st = statement_bytes(md, key_root_, count, aggs.front().min, aggs.back().max);
    auto proof = prover_.prove(st, {}, priors);
    if (!proof) return {};
    result.m_digest = md;
    result.root = key_root_;
    result.count = count;
    result.min = aggs.front().min;
    result.max = aggs.back().max;
    result.proof = *proof;
  }

  Writer w;
  w.u8(kTagAggregate);
  w.raw(result.m_digest.view());
  w.raw(result.root.view());
  w.u64(result.count);
  w.u64(result.min);
  w.u64(result.max);
  w.raw(BytesView{result.proof.v.data(), result.proof.v.size()});
  return std::move(w).take();
}

bool SnarkSrds::verify(BytesView m, BytesView sig) const {
  PROF_SCOPE(obs::ProfSiteId::kSrdsVerify);
  ParsedAggregate agg;
  if (!parse_aggregate(sig, agg)) return false;
  if (agg.m_digest != message_digest(m) || agg.root != key_root_) return false;
  if (agg.count < threshold_) return false;
  return prover_.verifier().verify(
      statement_bytes(agg.m_digest, agg.root, agg.count, agg.min, agg.max), agg.proof);
}

bool SnarkSrds::index_range(BytesView sig, IndexRange& out) const {
  if (sig.empty()) return false;
  if (sig[0] == kTagBase) {
    Reader r(sig);
    r.u8();
    std::uint64_t idx = r.u64();
    if (!r.ok()) return false;
    out.min = out.max = idx;
    return true;
  }
  ParsedAggregate agg;
  if (!parse_aggregate(sig, agg)) return false;
  out.min = agg.min;
  out.max = agg.max;
  return agg.min <= agg.max;
}

std::uint64_t SnarkSrds::base_count(BytesView sig) const {
  if (sig.empty()) return 0;
  if (sig[0] == kTagBase) return 1;
  ParsedAggregate agg;
  return parse_aggregate(sig, agg) ? agg.count : 0;
}

}  // namespace srds

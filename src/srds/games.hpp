// Executable versions of the paper's security experiments:
//   * Figure 1 — the robustness game Expt^robust: the adversary corrupts up
//     to t parties (after seeing the PKI; replacing keys under bare PKI),
//     chooses an (n, I)-almost-everywhere-communication tree, messages for
//     the isolated honest parties, and the aggregates of every bad node;
//     the challenger signs and aggregates at good nodes. The adversary wins
//     if the root signature fails to verify on m.
//   * Figure 2 — the forgery game Expt^forge: the adversary picks S with
//     |S ∪ I| < n/3, receives honest signatures (on m outside S, on chosen
//     m_i inside S), and must output a verifying signature on some m' != m.
//
// The harnesses drive real SrdsScheme objects over a real CommTree and
// return the experiment outcome, so the benchmark suite can estimate the
// adversary's success probability empirically for a battery of strategies.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "srds/srds.hpp"
#include "tree/comm_tree.hpp"

namespace srds {

/// How the game adversary behaves at the steps where it has freedom.
enum class AttackStrategy {
  kSilent,          // corrupt parties contribute nothing; bad nodes output ⊥
  kGarbage,         // random byte strings as signatures/aggregates
  kWrongMessage,    // corrupt parties sign a different message m'
  kDuplicate,       // bad nodes try to aggregate the same honest signature
                    // many times (the anti-duplication attack of §2.2)
  kBestEffort,      // bad nodes aggregate honestly (sanity: robustness must
                    // hold a fortiori)
};

/// How the adversary selects whom to corrupt after seeing the PKI.
enum class CorruptionSelector {
  kRandom,       // assignment/key-independent choice (the model's adversary)
  kClairvoyant,  // cheats: inspects sortition outcomes / targets committees.
                 // Used by ablation benches to show why oblivious key
                 // generation and interactive committee election matter.
};

struct GameConfig {
  std::size_t t = 0;  // corruption budget (< n/3 for the theorems to apply)
  AttackStrategy strategy = AttackStrategy::kWrongMessage;
  CorruptionSelector selector = CorruptionSelector::kRandom;
  std::uint64_t seed = 1;
};

struct RobustnessOutcome {
  bool verified = false;      // challenger's final Verify on (m, σ_root)
  bool adversary_wins = false;  // = !verified
  std::uint64_t root_base_count = 0;
  std::size_t isolated_honest = 0;
  std::size_t corrupted = 0;
};

struct ForgeryOutcome {
  bool adversary_wins = false;  // produced verifying σ' on m' != m
  std::size_t corrupted = 0;
};

/// Run Expt^robust. `scheme` must be freshly constructed (keys not yet
/// generated); the harness performs the setup/corruption phase itself.
/// `tree` is built with repeats=1 semantics: the game's signers are the
/// tree's virtual slots, each owned by one party (Def. 2.3's level-0 nodes).
RobustnessOutcome run_robustness_game(SrdsScheme& scheme, const CommTree& tree,
                                      const GameConfig& config);

/// Run Expt^forge on a freshly constructed scheme.
ForgeryOutcome run_forgery_game(SrdsScheme& scheme, const GameConfig& config);

/// Convenience: a repeats=1 tree suitable for the robustness game over
/// `n_parties` (signers ~= n_parties, padded to fill leaf slots).
CommTree make_game_tree(std::size_t n_parties, std::uint64_t seed);

}  // namespace srds

#include "srds/counting_multisig.hpp"

#include <cstring>
#include <set>

#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace srds {

Bytes CountingMultisigCert::serialize() const {
  Writer w;
  w.raw(BytesView{tag.v.data(), tag.v.size()});
  w.u64(count);
  w.raw(BytesView{proof.v.data(), proof.v.size()});
  return std::move(w).take();
}

bool CountingMultisigCert::deserialize(BytesView data, CountingMultisigCert& out) {
  Reader r(data);
  Bytes tag_raw = r.raw(48);
  out.count = r.u64();
  Bytes proof_raw = r.raw(SnarkProof::kSize);
  if (!r.ok() || !r.done()) return false;
  std::memcpy(out.tag.v.data(), tag_raw.data(), 48);
  out.proof = SnarkProof::from(proof_raw);
  return true;
}

CountingMultisig::CountingMultisig(std::size_t n, std::uint64_t seed,
                                   double threshold_fraction)
    : registry_(n, seed),
      threshold_(static_cast<std::uint64_t>(static_cast<double>(n) * threshold_fraction)),
      oracle_(seed ^ 0x636f756e74ULL),
      // The compliance predicate is the subset-aggregation relation: the
      // witness is the signer bitmap + the message; the statement binds
      // (H(m), tag, count). The predicate recomputes each claimed signer's
      // tag and the XOR-aggregate — NP verification of the paper's
      // generalized Subset-Sum instance.
      prover_(oracle_.register_predicate(
          [this](BytesView st, BytesView witness, const std::vector<PriorMessage>& priors) {
            if (!priors.empty()) return false;  // no recursion: the barrier
            Reader sr(st);
            Bytes md_raw = sr.raw(32);
            Bytes tag_raw = sr.raw(48);
            std::uint64_t count = sr.u64();
            if (!sr.done()) return false;

            Reader wr(witness);
            Bytes m = wr.bytes();
            std::uint32_t k = wr.u32();
            if (!wr.ok() || k != count || k == 0 || k > registry_.n()) return false;
            if (sha256_tagged("cms-m", m) != Digest::from(md_raw)) return false;

            MultisigTag expect;
            std::set<std::uint64_t> seen;
            for (std::uint32_t e = 0; e < k; ++e) {
              std::uint64_t signer = wr.u64();
              if (!wr.ok() || signer >= registry_.n() || !seen.insert(signer).second) {
                return false;
              }
              expect.xor_in(registry_.sign(signer, m));
            }
            if (!wr.done()) return false;
            MultisigTag claimed;
            std::memcpy(claimed.v.data(), tag_raw.data(), 48);
            return expect == claimed;
          })) {
  if (threshold_ == 0) threshold_ = 1;
}

Bytes CountingMultisig::statement_bytes(BytesView m, const MultisigTag& tag,
                                        std::uint64_t count) const {
  Writer w;
  w.raw(sha256_tagged("cms-m", m).view());
  w.raw(BytesView{tag.v.data(), tag.v.size()});
  w.u64(count);
  return std::move(w).take();
}

std::optional<CountingMultisigCert> CountingMultisig::aggregate(
    BytesView m, const std::vector<std::size_t>& signers,
    const std::vector<MultisigTag>& tags) const {
  if (signers.size() != tags.size() || signers.empty()) return std::nullopt;
  MultisigTag agg;
  std::set<std::size_t> seen;
  for (std::size_t k = 0; k < signers.size(); ++k) {
    if (signers[k] >= registry_.n() || !seen.insert(signers[k]).second) {
      return std::nullopt;
    }
    if (!(registry_.sign(signers[k], m) == tags[k])) return std::nullopt;
    agg.xor_in(tags[k]);
  }

  // The witness: the message plus the full signer list — Θ(n log n) bits.
  Writer witness;
  witness.bytes(m);
  witness.u32(static_cast<std::uint32_t>(signers.size()));
  for (std::size_t s : signers) witness.u64(s);

  Bytes st = statement_bytes(m, agg, signers.size());
  auto proof = prover_.prove(st, witness.data(), {});
  if (!proof) return std::nullopt;
  return CountingMultisigCert{agg, signers.size(), *proof};
}

bool CountingMultisig::verify(BytesView m, const CountingMultisigCert& cert) const {
  if (cert.count < threshold_) return false;
  return prover_.verifier().verify(statement_bytes(m, cert.tag, cert.count), cert.proof);
}

}  // namespace srds

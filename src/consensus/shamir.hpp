// Shamir secret sharing over GF(2^61 - 1).
//
// share(): evaluate a random degree-t polynomial with f(0) = secret at
// points x = 1..n. reconstruct(): Lagrange interpolation at 0.
// consistent(): check that a set of shares lies on a single degree-<=t
// polynomial — the test the coin-tossing protocol applies to detect dealers
// who distributed inconsistent shares.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace srds {

struct Share {
  std::uint64_t x = 0;  // evaluation point (party index + 1), nonzero
  std::uint64_t y = 0;  // value in GF(p)
};

/// Split `secret` (reduced mod p) into n shares with threshold t
/// (any t+1 reconstruct; any t reveal nothing).
std::vector<Share> shamir_share(std::uint64_t secret, std::size_t t, std::size_t n, Rng& rng);

/// Reconstruct the secret from >= t+1 shares with distinct x. Returns
/// nullopt if fewer than t+1 distinct points are given.
std::optional<std::uint64_t> shamir_reconstruct(const std::vector<Share>& shares, std::size_t t);

/// True iff all given shares (distinct x, size >= t+1) lie on one
/// degree-<=t polynomial.
bool shamir_consistent(const std::vector<Share>& shares, std::size_t t);

}  // namespace srds

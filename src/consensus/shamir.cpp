#include "consensus/shamir.hpp"

#include <algorithm>
#include <stdexcept>

#include "consensus/field.hpp"

namespace srds {

namespace {

/// Evaluate polynomial (coefficients low-to-high) at x.
std::uint64_t poly_eval(const std::vector<std::uint64_t>& coeffs, std::uint64_t x) {
  std::uint64_t acc = 0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) {
    acc = Gf61::add(Gf61::mul(acc, x), *it);
  }
  return acc;
}

/// Lagrange interpolation of the polynomial through `pts`, evaluated at `x0`.
std::uint64_t lagrange_at(const std::vector<Share>& pts, std::uint64_t x0) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::uint64_t num = 1, den = 1;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (i == j) continue;
      num = Gf61::mul(num, Gf61::sub(x0, pts[j].x));
      den = Gf61::mul(den, Gf61::sub(pts[i].x, pts[j].x));
    }
    acc = Gf61::add(acc, Gf61::mul(pts[i].y, Gf61::mul(num, Gf61::inv(den))));
  }
  return acc;
}

/// Deduplicate by x (keeping first occurrence), sorted by x.
std::vector<Share> distinct_points(std::vector<Share> shares) {
  std::sort(shares.begin(), shares.end(),
            [](const Share& a, const Share& b) { return a.x < b.x; });
  std::vector<Share> out;
  for (const auto& s : shares) {
    if (out.empty() || out.back().x != s.x) out.push_back(s);
  }
  return out;
}

}  // namespace

std::vector<Share> shamir_share(std::uint64_t secret, std::size_t t, std::size_t n, Rng& rng) {
  if (n == 0 || t >= n) throw std::invalid_argument("shamir_share: need 0 <= t < n");
  std::vector<std::uint64_t> coeffs(t + 1);
  coeffs[0] = Gf61::reduce(secret);
  for (std::size_t i = 1; i <= t; ++i) coeffs[i] = rng.below(Gf61::kP);
  std::vector<Share> shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    shares[i].x = i + 1;
    shares[i].y = poly_eval(coeffs, shares[i].x);
  }
  return shares;
}

std::optional<std::uint64_t> shamir_reconstruct(const std::vector<Share>& shares,
                                                std::size_t t) {
  auto pts = distinct_points(shares);
  if (pts.size() < t + 1) return std::nullopt;
  pts.resize(t + 1);
  return lagrange_at(pts, 0);
}

bool shamir_consistent(const std::vector<Share>& shares, std::size_t t) {
  auto pts = distinct_points(shares);
  if (pts.size() < t + 1) return false;
  std::vector<Share> base(pts.begin(), pts.begin() + static_cast<std::ptrdiff_t>(t + 1));
  for (std::size_t i = t + 1; i < pts.size(); ++i) {
    if (lagrange_at(base, pts[i].x) != pts[i].y) return false;
  }
  return true;
}

}  // namespace srds

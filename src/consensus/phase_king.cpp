#include "consensus/phase_king.hpp"

#include <algorithm>

namespace srds {

namespace {
constexpr std::uint8_t kTagVote = 1;
constexpr std::uint8_t kTagKing = 2;
}  // namespace

PhaseKingProto::PhaseKingProto(std::vector<PartyId> members, std::size_t t, PartyId me,
                               bool input)
    : members_(std::move(members)), t_(t), me_(me), value_(input) {}

std::vector<std::pair<PartyId, Bytes>> PhaseKingProto::broadcast_bit(std::uint8_t tag,
                                                                     bool bit) const {
  Bytes body{tag, static_cast<std::uint8_t>(bit ? 1 : 0)};
  std::vector<std::pair<PartyId, Bytes>> out;
  out.reserve(members_.size());
  for (PartyId p : members_) {
    if (p != me_) out.emplace_back(p, body);
  }
  return out;
}

std::vector<std::pair<PartyId, Bytes>> PhaseKingProto::step(
    std::size_t subround, const std::vector<TaggedMsg>& inbox) {
  const std::size_t c = members_.size();

  if (subround == 0) {
    return broadcast_bit(kTagVote, value_);
  }

  if (subround % 2 == 1) {
    // Round A arrivals: tally votes (mine included), king sends its majority.
    std::size_t phase = (subround - 1) / 2;
    std::size_t ones = value_ ? 1 : 0, votes = 1;
    for (const auto& msg : inbox) {
      if (msg.body.size() != 2 || msg.body[0] != kTagVote) continue;
      if (std::find(members_.begin(), members_.end(), msg.from) == members_.end()) continue;
      ones += (msg.body[1] != 0) ? 1 : 0;
      ++votes;
    }
    (void)votes;
    maj_ = (2 * ones > c);
    mult_ = maj_ ? ones : (votes - ones);
    // Count absent senders as implicit 0-votes for multiplicity purposes:
    // the threshold test below uses c, so missing votes simply do not help.
    if (members_[phase % c] == me_) {
      return broadcast_bit(kTagKing, maj_);
    }
    return {};
  }

  // Round B arrivals: adopt king's bit unless my majority was overwhelming.
  std::size_t phase = subround / 2 - 1;
  std::optional<bool> king_bit;
  PartyId king = members_[phase % c];
  for (const auto& msg : inbox) {
    if (msg.body.size() != 2 || msg.body[0] != kTagKing) continue;
    if (msg.from != king) continue;
    king_bit = (msg.body[1] != 0);
  }
  if (king == me_) king_bit = maj_;
  if (mult_ > c / 2 + t_) {
    value_ = maj_;
  } else {
    value_ = king_bit.value_or(false);
  }

  if (phase == t_) {
    output_ = value_;
    return {};
  }
  return broadcast_bit(kTagVote, value_);
}

}  // namespace srds

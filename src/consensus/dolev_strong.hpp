// Dolev-Strong authenticated broadcast, run inside polylog-size committees.
//
// Realizes a broadcast channel among the committee members (used by f_ba and
// f_ct in paper §3.1; the paper cites Garay-Moses '93 for committee BA — we
// use the signature-based Dolev-Strong protocol instead, which is simpler,
// tolerates any t < c, and is legitimate here because the whole protocol
// already assumes a PKI; see DESIGN.md).
//
// Round structure (t = tolerated corruptions): the sender signs its value and
// multicasts in round 0; a member that extracts a new value in round r (a
// value carrying >= r distinct valid member signatures including the
// sender's) appends its own signature and relays. After round t+1 a member
// outputs the unique extracted value, or ⊥ (nullopt) if zero or multiple
// values were extracted. Guarantees: all honest members output the same
// value, and an honest sender's value is always delivered.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "crypto/simsig.hpp"
#include "net/subproto.hpp"

namespace srds {

class DolevStrongProto final : public SubProtocol {
 public:
  /// `members`: global party ids of the committee (defines local indices);
  /// `sender_idx`: local index of the designated sender;
  /// `t`: number of corruptions tolerated (rounds = t + 2);
  /// `domain`: instance-separation string mixed into every signature;
  /// `me`: my global party id;
  /// `input`: engaged iff I am the sender.
  DolevStrongProto(SimSigRegistryPtr registry, std::vector<PartyId> members,
                   std::size_t sender_idx, std::size_t t, Bytes domain, PartyId me,
                   std::optional<Bytes> input);

  std::size_t rounds() const override { return t_ + 2; }

  std::vector<std::pair<PartyId, Bytes>> step(
      std::size_t subround, const std::vector<TaggedMsg>& inbox) override;

  /// The broadcast value, or nullopt (⊥) for "sender faulty".
  const std::optional<Bytes>& output() const { return output_; }

 private:
  Digest sign_target(BytesView value) const;
  std::vector<std::pair<PartyId, Bytes>> relay(const Bytes& value,
                                               std::vector<std::pair<PartyId, SimSig>> chain);

  SimSigRegistryPtr registry_;
  std::vector<PartyId> members_;
  std::size_t sender_idx_;
  std::size_t t_;
  Bytes domain_;
  PartyId me_;
  std::optional<Bytes> input_;

  // Extracted values (at most 2 tracked; more adds no information).
  std::vector<Bytes> extracted_;
  std::optional<Bytes> output_;
};

}  // namespace srds

#include "consensus/dolev_strong.hpp"

#include <algorithm>
#include <set>

#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace srds {

namespace {

Bytes encode(const Bytes& value, const std::vector<std::pair<PartyId, SimSig>>& chain) {
  Writer w;
  w.bytes(value);
  w.u32(static_cast<std::uint32_t>(chain.size()));
  for (const auto& [party, sig] : chain) {
    w.u64(party);
    w.raw(sig.view());
  }
  return std::move(w).take();
}

bool decode(BytesView body, Bytes& value, std::vector<std::pair<PartyId, SimSig>>& chain) {
  Reader r(body);
  value = r.bytes();
  std::uint32_t n = r.u32();
  if (!r.ok() || n > 4096) return false;
  chain.clear();
  chain.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PartyId p = r.u64();
    Bytes sig_raw = r.raw(32);
    if (!r.ok()) return false;
    chain.emplace_back(p, Digest::from(sig_raw));
  }
  return r.done();
}

}  // namespace

DolevStrongProto::DolevStrongProto(SimSigRegistryPtr registry, std::vector<PartyId> members,
                                   std::size_t sender_idx, std::size_t t, Bytes domain,
                                   PartyId me, std::optional<Bytes> input)
    : registry_(std::move(registry)),
      members_(std::move(members)),
      sender_idx_(sender_idx),
      t_(t),
      domain_(std::move(domain)),
      me_(me),
      input_(std::move(input)) {}

Digest DolevStrongProto::sign_target(BytesView value) const {
  Writer w;
  w.bytes(domain_);
  w.u64(sender_idx_);
  w.bytes(value);
  return sha256_tagged("ds-sign", w.data());
}

std::vector<std::pair<PartyId, Bytes>> DolevStrongProto::relay(
    const Bytes& value, std::vector<std::pair<PartyId, SimSig>> chain) {
  chain.emplace_back(me_, registry_->sign(me_, sign_target(value).view()));
  Bytes body = encode(value, chain);
  std::vector<std::pair<PartyId, Bytes>> out;
  for (PartyId p : members_) {
    if (p != me_) out.emplace_back(p, body);
  }
  return out;
}

std::vector<std::pair<PartyId, Bytes>> DolevStrongProto::step(
    std::size_t subround, const std::vector<TaggedMsg>& inbox) {
  std::vector<std::pair<PartyId, Bytes>> out;

  if (subround == 0) {
    if (input_.has_value() && members_[sender_idx_] == me_) {
      extracted_.push_back(*input_);
      out = relay(*input_, {});
    }
    return out;
  }

  // Process arrivals: accept values carrying >= subround distinct valid
  // member signatures, the sender's among them.
  for (const auto& msg : inbox) {
    if (extracted_.size() >= 2) break;
    Bytes value;
    std::vector<std::pair<PartyId, SimSig>> chain;
    if (!decode(msg.body, value, chain)) continue;
    if (chain.size() < subround) continue;
    if (std::find(extracted_.begin(), extracted_.end(), value) != extracted_.end()) continue;

    Digest target = sign_target(value);
    std::set<PartyId> signers;
    bool ok = true, sender_signed = false;
    for (const auto& [party, sig] : chain) {
      if (std::find(members_.begin(), members_.end(), party) == members_.end() ||
          !signers.insert(party).second || !registry_->verify(party, target.view(), sig)) {
        ok = false;
        break;
      }
      if (party == members_[sender_idx_]) sender_signed = true;
    }
    if (!ok || !sender_signed || signers.size() < subround) continue;
    // Do not extend chains I already signed (I relayed this value before).
    if (signers.count(me_)) continue;

    extracted_.push_back(value);
    if (subround <= t_) {
      auto msgs = relay(value, std::move(chain));
      out.insert(out.end(), msgs.begin(), msgs.end());
    }
  }

  if (subround == t_ + 1) {
    output_ = (extracted_.size() == 1) ? std::optional<Bytes>(extracted_[0]) : std::nullopt;
  }
  return out;
}

}  // namespace srds

#include "consensus/coin_toss.hpp"

#include <algorithm>

#include "common/serial.hpp"
#include "consensus/dolev_strong.hpp"
#include "consensus/field.hpp"
#include "crypto/commit.hpp"
#include "crypto/sha256.hpp"

namespace srds {

namespace {

constexpr std::uint8_t kKindBlockA = 0;
constexpr std::uint8_t kKindShare = 1;
constexpr std::uint8_t kKindBlockB = 2;

Bytes share_commit_message(std::uint64_t y) {
  Writer w;
  w.u64(y);
  return std::move(w).take();
}

/// Parallel Dolev-Strong block where member s broadcasts `my_input` (only
/// used for my own instance).
std::unique_ptr<ParallelProto> make_ds_block(const SimSigRegistryPtr& registry,
                                             const std::vector<PartyId>& members, std::size_t t,
                                             const Bytes& domain, std::uint8_t block_id,
                                             PartyId me, const Bytes& my_input) {
  std::vector<std::unique_ptr<SubProtocol>> instances;
  instances.reserve(members.size());
  for (std::size_t s = 0; s < members.size(); ++s) {
    Writer w;
    w.bytes(domain);
    w.u8(block_id);
    w.u64(s);
    std::optional<Bytes> input;
    if (members[s] == me) input = my_input;
    instances.push_back(std::make_unique<DolevStrongProto>(registry, members, s, t,
                                                           std::move(w).take(), me,
                                                           std::move(input)));
  }
  return std::make_unique<ParallelProto>(std::move(instances));
}

Bytes wrap(std::uint8_t kind, BytesView inner) {
  Writer w;
  w.u8(kind);
  w.raw(inner);
  return std::move(w).take();
}

}  // namespace

CoinTossProto::CoinTossProto(SimSigRegistryPtr registry, std::vector<PartyId> members,
                             std::size_t t, Bytes domain, PartyId me, std::uint64_t local_seed)
    : registry_(std::move(registry)),
      members_(std::move(members)),
      t_(t),
      domain_(std::move(domain)),
      me_(me),
      rng_(local_seed),
      received_(members_.size()) {
  auto it = std::find(members_.begin(), members_.end(), me_);
  my_idx_ = static_cast<std::size_t>(it - members_.begin());

  const std::size_t c = members_.size();
  my_r_ = rng_.below(Gf61::kP);
  my_shares_ = shamir_share(my_r_, t_, c, rng_);
  my_rhos_.reserve(c);
  for (std::size_t j = 0; j < c; ++j) my_rhos_.push_back(rng_.bytes(16));

  // Block A input: my share-commitment vector.
  Writer commitments;
  commitments.u32(static_cast<std::uint32_t>(c));
  for (std::size_t j = 0; j < c; ++j) {
    commitments.raw(commit(share_commit_message(my_shares_[j].y), my_rhos_[j]).value.view());
  }
  block_a_ = make_ds_block(registry_, members_, t_, domain_, kKindBlockA, me_,
                           commitments.data());
}

// srds-lint: shard-root(CoinTossProto::step) — coin-toss sub-protocol
// round body; everything it reaches must be shardable (rule C1).
std::vector<std::pair<PartyId, Bytes>> CoinTossProto::step(
    std::size_t subround, const std::vector<TaggedMsg>& inbox) {
  const std::size_t block_rounds = t_ + 2;

  // Demux inbox by kind.
  std::vector<TaggedMsg> a_msgs, b_msgs;
  for (const auto& msg : inbox) {
    Reader r(msg.body);
    std::uint8_t kind = r.u8();
    if (!r.ok()) continue;
    Bytes inner = r.raw(r.remaining());
    if (kind == kKindBlockA) {
      a_msgs.push_back(TaggedMsg{msg.from, std::move(inner)});
    } else if (kind == kKindBlockB) {
      b_msgs.push_back(TaggedMsg{msg.from, std::move(inner)});
    } else if (kind == kKindShare && subround == 1) {
      // Private share delivered by a dealer in round 0.
      auto it = std::find(members_.begin(), members_.end(), msg.from);
      if (it == members_.end()) continue;
      std::size_t dealer = static_cast<std::size_t>(it - members_.begin());
      Reader sr(inner);
      std::uint64_t y = sr.u64();
      Bytes rho = sr.raw(16);
      if (!sr.done()) continue;
      received_[dealer] = ReceivedShare{true, y, std::move(rho)};
    }
  }

  std::vector<std::pair<PartyId, Bytes>> out;

  if (subround < block_rounds) {
    // Block A: commitment broadcasts (+ private shares in round 0).
    auto msgs = block_a_->step(subround, a_msgs);
    for (auto& [to, body] : msgs) out.emplace_back(to, wrap(kKindBlockA, body));
    if (subround == 0) {
      for (std::size_t j = 0; j < members_.size(); ++j) {
        Writer w;
        w.u64(my_shares_[j].y);
        w.raw(my_rhos_[j]);
        if (members_[j] == me_) {
          received_[my_idx_] = ReceivedShare{true, my_shares_[j].y, my_rhos_[j]};
        } else {
          out.emplace_back(members_[j], wrap(kKindShare, std::move(w).take()));
        }
      }
    }
    return out;
  }

  // Block B: reveal all received shares.
  if (subround == block_rounds) {
    Writer reveal;
    reveal.u32(static_cast<std::uint32_t>(received_.size()));
    for (const auto& rs : received_) {
      reveal.u8(rs.has ? 1 : 0);
      reveal.u64(rs.y);
      reveal.raw(rs.has ? rs.rho : Bytes(16, 0));
    }
    block_b_ = make_ds_block(registry_, members_, t_, domain_, kKindBlockB, me_,
                             reveal.data());
  }
  auto msgs = block_b_->step(subround - block_rounds, b_msgs);
  for (auto& [to, body] : msgs) out.emplace_back(to, wrap(kKindBlockB, body));

  if (subround + 1 == rounds()) decide();
  return out;
}

void CoinTossProto::decide() {
  const std::size_t c = members_.size();
  const std::size_t need = std::min(2 * t_ + 1, c);

  // Parse every member's block-B reveal vector (nullopt if DS failed).
  std::vector<std::optional<std::vector<ReceivedShare>>> reveals(c);
  for (std::size_t j = 0; j < c; ++j) {
    const auto* ds = dynamic_cast<const DolevStrongProto*>(block_b_->child(j));
    if (!ds || !ds->output().has_value()) continue;
    Reader r(*ds->output());
    std::uint32_t count = r.u32();
    if (count != c) continue;
    std::vector<ReceivedShare> vec(c);
    bool ok = true;
    for (std::uint32_t i = 0; i < count; ++i) {
      vec[i].has = r.u8() != 0;
      vec[i].y = r.u64();
      vec[i].rho = r.raw(16);
      if (!r.ok()) {
        ok = false;
        break;
      }
    }
    if (ok && r.done()) reveals[j] = std::move(vec);
  }

  Writer contributions;
  for (std::size_t dealer = 0; dealer < c; ++dealer) {
    std::uint64_t contribution = 0;
    const auto* ds = dynamic_cast<const DolevStrongProto*>(block_a_->child(dealer));
    std::vector<Digest> commitments;
    bool have_commitments = false;
    if (ds && ds->output().has_value()) {
      Reader r(*ds->output());
      std::uint32_t count = r.u32();
      if (count == c) {
        commitments.reserve(c);
        bool ok = true;
        for (std::uint32_t j = 0; j < count; ++j) {
          Bytes raw = r.raw(32);
          if (!r.ok()) {
            ok = false;
            break;
          }
          commitments.push_back(Digest::from(raw));
        }
        have_commitments = ok && r.done();
      }
    }
    if (have_commitments) {
      std::vector<Share> valid;
      for (std::size_t j = 0; j < c; ++j) {
        if (!reveals[j].has_value()) continue;
        const auto& rs = (*reveals[j])[dealer];
        if (!rs.has) continue;
        if (commit_open(Commitment{commitments[j]}, share_commit_message(rs.y), rs.rho)) {
          valid.push_back(Share{j + 1, rs.y});
        }
      }
      if (valid.size() >= need && shamir_consistent(valid, t_)) {
        if (auto rec = shamir_reconstruct(valid, t_)) contribution = *rec;
      }
    }
    contributions.u64(contribution);
  }
  output_ = sha256_tagged("coin", contributions.data()).to_bytes();
}

}  // namespace srds

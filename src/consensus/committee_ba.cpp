#include "consensus/committee_ba.hpp"

#include <algorithm>
#include <map>

#include "common/serial.hpp"

namespace srds {

namespace {

std::vector<std::unique_ptr<SubProtocol>> make_instances(const SimSigRegistryPtr& registry,
                                                         const std::vector<PartyId>& members,
                                                         std::size_t t, const Bytes& domain,
                                                         PartyId me, const Bytes& input) {
  std::vector<std::unique_ptr<SubProtocol>> instances;
  instances.reserve(members.size());
  for (std::size_t s = 0; s < members.size(); ++s) {
    Writer w;
    w.bytes(domain);
    w.u64(s);
    std::optional<Bytes> my_input;
    if (members[s] == me) my_input = input;
    instances.push_back(std::make_unique<DolevStrongProto>(
        registry, members, s, t, std::move(w).take(), me, std::move(my_input)));
  }
  return instances;
}

}  // namespace

CommitteeBaProto::CommitteeBaProto(SimSigRegistryPtr registry, std::vector<PartyId> members,
                                   std::size_t t, Bytes domain, PartyId me, Bytes input)
    : members_(members),
      inner_(make_instances(registry, members_, t, domain, me, input)) {}

// srds-lint: shard-root(CommitteeBaProto::step) — committee sub-protocol
// round body; everything it reaches must be shardable (rule C1).
std::vector<std::pair<PartyId, Bytes>> CommitteeBaProto::step(
    std::size_t subround, const std::vector<TaggedMsg>& inbox) {
  auto out = inner_.step(subround, inbox);
  if (subround + 1 == rounds()) {
    std::map<Bytes, std::size_t> tally;
    for (std::size_t i = 0; i < inner_.size(); ++i) {
      const auto* ds = dynamic_cast<const DolevStrongProto*>(inner_.child(i));
      if (ds && ds->output().has_value()) tally[*ds->output()] += 1;
    }
    std::size_t best = 0;
    for (const auto& [value, count] : tally) {
      if (count > best) {
        best = count;
        output_ = value;
      }
    }
  }
  return out;
}

}  // namespace srds

// Arithmetic in GF(p) for the Mersenne prime p = 2^61 - 1.
// Used by Shamir secret sharing in the coin-tossing protocol (f_ct).
// (DESIGN.md substitution S4: any field of size >= committee size works.)
#pragma once

#include <cstdint>

namespace srds {

struct Gf61 {
  static constexpr std::uint64_t kP = (1ULL << 61) - 1;

  static std::uint64_t reduce(std::uint64_t x) {
    x = (x & kP) + (x >> 61);
    if (x >= kP) x -= kP;
    return x;
  }

  static std::uint64_t add(std::uint64_t a, std::uint64_t b) { return reduce(a + b); }

  static std::uint64_t sub(std::uint64_t a, std::uint64_t b) {
    return reduce(a + kP - reduce(b));
  }

  static std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
    unsigned __int128 t = static_cast<unsigned __int128>(reduce(a)) * reduce(b);
    std::uint64_t lo = static_cast<std::uint64_t>(t & kP);
    std::uint64_t hi = static_cast<std::uint64_t>(t >> 61);
    return reduce(lo + hi);
  }

  static std::uint64_t pow(std::uint64_t base, std::uint64_t exp) {
    std::uint64_t r = 1;
    base = reduce(base);
    while (exp > 0) {
      if (exp & 1) r = mul(r, base);
      base = mul(base, base);
      exp >>= 1;
    }
    return r;
  }

  /// Multiplicative inverse; requires a != 0 (mod p).
  static std::uint64_t inv(std::uint64_t a) { return pow(a, kP - 2); }
};

}  // namespace srds

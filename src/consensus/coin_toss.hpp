// Committee coin tossing — the f_ct functionality of §3.1, in the style of
// Chor-Goldwasser-Micali-Awerbuch (VSS-backed contributory randomness).
//
// Each member ("dealer") samples a field element r_i, Shamir-shares it with
// threshold t, commits to every share, and Dolev-Strong-broadcasts the
// commitment vector while delivering shares privately (block A). In block B
// every member Dolev-Strong-broadcasts all shares it received. Each dealer's
// contribution is then reconstructed from the commitment-validated shares —
// *whether or not the dealer cooperates* — or deterministically zeroed if
// fewer than 2t+1 members ended up holding valid shares or the valid shares
// are inconsistent. The coin is a hash of all contributions.
//
//   * Agreement: every input to the decision rule is a Dolev-Strong output,
//     so all honest members derive the same coin.
//   * Unpredictability: honest contributions stay hidden (t shares reveal
//     nothing) until every dealer's contribution is already fixed by the
//     block-A commitments.
//   * Robustness: honest dealers always contribute (their >= 2t+1 honest
//     shares are revealed and reconstruct); a withholding dealer is zeroed.
//
// Known gap vs. the ideal functionality (documented, see DESIGN.md): a
// corrupt dealer who deals an *inconsistent* share vector to a carefully
// chosen subset can retain a binary influence on whether its contribution
// reconstructs or zeroes, resolved after honest values are revealed. Closing
// this needs a full VSS complaint phase; none of the reproduced experiments
// is sensitive to this bias (the seed retains >= 61 bits of honest entropy).
#pragma once

#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "consensus/shamir.hpp"
#include "crypto/digest.hpp"
#include "crypto/simsig.hpp"
#include "net/parallel.hpp"
#include "net/subproto.hpp"
#include "obs/budget.hpp"

namespace srds {

class CoinTossProto final : public SubProtocol {
 public:
  CoinTossProto(SimSigRegistryPtr registry, std::vector<PartyId> members, std::size_t t,
                Bytes domain, PartyId me, std::uint64_t local_seed);

  /// Block A (t+2 rounds) + block B (t+2 rounds).
  std::size_t rounds() const override { return 2 * (t_ + 2); }

  /// Per-party communication budget for the f_ct phase: every member
  /// Dolev-Strong-broadcasts a Θ(log n)-entry commitment vector and later
  /// all received shares, each broadcast costing Θ(log² n) messages —
  /// Θ(log⁴ n) bits per member, zero outside the committee. Constant
  /// calibrated against seeded runs (tests/budget_test.cpp).
  static obs::Budget phase_budget() { return {.c = 12'000, .k = 4}; }

  std::vector<std::pair<PartyId, Bytes>> step(
      std::size_t subround, const std::vector<TaggedMsg>& inbox) override;

  /// The 32-byte coin (engaged after the last step).
  const std::optional<Bytes>& output() const { return output_; }

  std::uint64_t malformed_frames() const override {
    std::uint64_t total = 0;
    if (block_a_) total += block_a_->malformed_frames();
    if (block_b_) total += block_b_->malformed_frames();
    return total;
  }

 private:
  struct ReceivedShare {
    bool has = false;
    std::uint64_t y = 0;
    Bytes rho;  // 16 bytes
  };

  void decide();

  SimSigRegistryPtr registry_;
  std::vector<PartyId> members_;
  std::size_t t_;
  Bytes domain_;
  PartyId me_;
  std::size_t my_idx_;
  Rng rng_;

  // My dealing.
  std::uint64_t my_r_ = 0;
  std::vector<Share> my_shares_;
  std::vector<Bytes> my_rhos_;

  // Shares received from each dealer (by dealer index).
  std::vector<ReceivedShare> received_;

  std::unique_ptr<ParallelProto> block_a_;
  std::unique_ptr<ParallelProto> block_b_;
  std::optional<Bytes> output_;
};

}  // namespace srds

// Phase-King Byzantine agreement (Berman-Garay-Perry style, the two-round
// per-phase variant), tolerating t < n/4.
//
// Included as the information-theoretic, setup-free baseline: it needs no
// signatures and no PKI, but every party talks to every other party in every
// phase — Θ(n) communication per party per phase and t+1 phases. The
// benchmark harness uses it to anchor the "no-setup" corner of Table 1.
//
// Phase k (kings are members[0..t] in order):
//   round A: everyone sends its current bit to everyone; each party computes
//            the majority bit `maj` and its multiplicity `mult`;
//   round B: the king sends its `maj`; each party keeps `maj` if
//            mult > c/2 + t, else adopts the king's bit.
// After t+1 phases every honest party holds the same bit; if all honest
// parties started with the same bit, that bit is the output (validity).
#pragma once

#include <optional>
#include <vector>

#include "net/subproto.hpp"

namespace srds {

class PhaseKingProto final : public SubProtocol {
 public:
  /// `members`: the participating parties; `t`: corruptions tolerated
  /// (requires 4t < members.size() for the guarantees to hold);
  /// `input`: my initial bit.
  PhaseKingProto(std::vector<PartyId> members, std::size_t t, PartyId me, bool input);

  std::size_t rounds() const override { return 2 * (t_ + 1) + 1; }

  std::vector<std::pair<PartyId, Bytes>> step(
      std::size_t subround, const std::vector<TaggedMsg>& inbox) override;

  const std::optional<bool>& output() const { return output_; }

 private:
  std::vector<std::pair<PartyId, Bytes>> broadcast_bit(std::uint8_t tag, bool bit) const;

  std::vector<PartyId> members_;
  std::size_t t_;
  PartyId me_;
  bool value_;
  bool maj_ = false;
  std::size_t mult_ = 0;
  std::optional<bool> output_;
};

}  // namespace srds

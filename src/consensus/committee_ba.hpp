// Byzantine agreement inside a committee (the f_ba functionality of §3.1).
//
// Construction: every member Dolev-Strong-broadcasts its input in parallel;
// after the broadcasts complete, each member outputs the most frequent
// delivered value (ties broken by byte order, ⊥ outputs ignored).
//   * Agreement: Dolev-Strong gives all honest members identical delivered
//     vectors, so the local tally is identical.
//   * Validity: with more than half the members honest and all honest inputs
//     equal to v, v has a strict majority of the delivered slots.
// Tolerates t < c/2 corruptions (the supreme committee guarantees t < c/3).
#pragma once

#include <memory>
#include <optional>

#include "consensus/dolev_strong.hpp"
#include "net/parallel.hpp"
#include "obs/budget.hpp"

namespace srds {

class CommitteeBaProto final : public SubProtocol {
 public:
  CommitteeBaProto(SimSigRegistryPtr registry, std::vector<PartyId> members, std::size_t t,
                   Bytes domain, PartyId me, Bytes input);

  /// Per-party communication budget for the f_ba phase: c parallel
  /// Dolev-Strong broadcasts inside a committee of c = Θ(log n) members
  /// with signature chains growing to t+1 = Θ(log n) entries — Θ(log³ n)
  /// bits per member, zero for everyone else. Constant calibrated against
  /// seeded runs (tests/budget_test.cpp).
  static obs::Budget phase_budget() { return {.c = 5'000, .k = 3}; }

  std::size_t rounds() const override { return inner_.rounds(); }

  std::vector<std::pair<PartyId, Bytes>> step(
      std::size_t subround, const std::vector<TaggedMsg>& inbox) override;

  /// Agreed value (engaged after the last step; nullopt only if every
  /// broadcast failed, which cannot happen with at least one honest member).
  const std::optional<Bytes>& output() const { return output_; }

  std::uint64_t malformed_frames() const override { return inner_.malformed_frames(); }

 private:
  std::vector<PartyId> members_;
  ParallelProto inner_;
  std::optional<Bytes> output_;
};

}  // namespace srds

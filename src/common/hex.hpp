// Hex encoding/decoding for debugging output and test vectors.
#pragma once

#include <string>

#include "common/bytes.hpp"

namespace srds {

/// Lowercase hex encoding of `data`.
std::string to_hex(BytesView data);

/// Decode a hex string; throws std::invalid_argument on malformed input.
Bytes from_hex(const std::string& hex);

}  // namespace srds

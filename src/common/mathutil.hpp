// Small integer math helpers used when scaling the paper's asymptotic
// parameters (log n, log^3 n, ...) to concrete instance sizes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace srds {

/// floor(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr std::size_t floor_log2(std::size_t x) {
  std::size_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr std::size_t ceil_log2(std::size_t x) {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

/// ceil(a / b), b > 0.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// max(lo, v) — clamp from below (readability helper for committee sizes).
constexpr std::size_t at_least(std::size_t v, std::size_t lo) { return v < lo ? lo : v; }

}  // namespace srds

// Deterministic, seedable pseudo-random generator for simulation.
//
// Every randomized component in this project takes an explicit `Rng` (or a
// 64-bit seed) so that simulations, tests and benchmarks are exactly
// reproducible. This RNG is for *simulation* randomness (corruption sets,
// committee sampling, workloads); cryptographic keys are derived via the PRG
// in src/crypto, which is itself seeded deterministically in tests.
//
// The core generator is xoshiro256**, seeded through SplitMix64.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace srds {

/// SplitMix64 step; used for seeding and cheap hashing of small integers.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli trial with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// `n` uniform bytes.
  Bytes bytes(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniform k-subset of {0, ..., n-1}, returned sorted.
  std::vector<std::size_t> subset(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for parallel components).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace srds

// Minimal deterministic binary serialization.
//
// Wire format conventions used across the project:
//   - fixed-width integers are little-endian
//   - variable-length payloads are prefixed with a u32 length
//   - containers are prefixed with a u32 element count
//
// Reading is bounds-checked: a truncated or malformed buffer results in
// `Reader::ok() == false` (and zero/empty values), never UB. Protocol code
// must check `ok()` after parsing an untrusted (possibly Byzantine) message.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace srds {

/// Append-only binary writer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed byte string.
  void bytes(BytesView b);
  /// Raw bytes, no length prefix (fixed-size fields).
  void raw(BytesView b);
  void str(const std::string& s);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked binary reader over a borrowed buffer.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Length-prefixed byte string.
  Bytes bytes();
  /// Exactly `n` raw bytes.
  Bytes raw(std::size_t n);
  std::string str();

  /// True iff no read so far has run past the end of the buffer.
  bool ok() const { return ok_; }
  /// True iff the whole buffer was consumed and all reads succeeded.
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace srds

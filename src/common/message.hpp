// Message and party-identity vocabulary for the synchronous network.
//
// This lives in common/ (not net/) because it is pure vocabulary — no
// delivery semantics — and both the network simulator and the obs tracing
// sinks consume it; keeping it in net/ made obs <-> net a module cycle
// under the L1 layering rule. net/message.hpp remains as a shim so send
// sites keep their natural include.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace srds {

/// Index of a party in [0, n).
using PartyId = std::size_t;

/// Coarse classification of what a message carries, tagged by the sender's
/// protocol logic for observability (per-kind byte/message breakdowns in
/// the round tracer). The kind is metadata only: it never influences
/// delivery, accounting of bytes, or protocol behavior, and receivers must
/// not trust it (the adversary may label its traffic arbitrarily).
enum class MsgKind : std::uint8_t {
  kUnknown = 0,     // untagged (e.g., raw adversary traffic)
  kInject,          // broadcast-mode sender -> supreme committee injection
  kCommitteeBa,     // f_ba: committee Byzantine agreement
  kCoinToss,        // f_ct: committee coin toss
  kDissem,          // f_ae-comm: tree dissemination of (y, s)
  kBoostSign,       // boost: base signatures to leaf committees (step 4)
  kBoostAggregate,  // boost: level-by-level aggregation (step 5)
  kBoostCert,       // boost: certified dissemination of (y, s, sigma) (step 6)
  kBoostPrf,        // boost: PRF-subset certificate pushes (steps 7/8)
  kBoostQuery,      // boost: sampling poll request
  kBoostResponse,   // boost: sampling poll response
  kBoostFlood,      // boost: direct value pushes (naive all-to-all / star)
  kMpc,             // scalable MPC phases (input/aggregate/decrypt/deliver)
  kCount,           // number of kinds (array sizing; not a real kind)
};

/// Short stable name for a kind (used as JSON keys in trace artifacts).
inline const char* msg_kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kUnknown: return "unknown";
    case MsgKind::kInject: return "inject";
    case MsgKind::kCommitteeBa: return "f_ba";
    case MsgKind::kCoinToss: return "f_ct";
    case MsgKind::kDissem: return "f_ae-dissem";
    case MsgKind::kBoostSign: return "boost-sign";
    case MsgKind::kBoostAggregate: return "boost-aggregate";
    case MsgKind::kBoostCert: return "boost-cert";
    case MsgKind::kBoostPrf: return "boost-prf";
    case MsgKind::kBoostQuery: return "boost-query";
    case MsgKind::kBoostResponse: return "boost-response";
    case MsgKind::kBoostFlood: return "boost-flood";
    case MsgKind::kMpc: return "mpc";
    case MsgKind::kCount: break;
  }
  return "?";
}

/// A point-to-point message. Delivery is synchronous: a message sent in
/// round r is delivered at the beginning of round r+1.
struct Message {
  PartyId from = 0;
  PartyId to = 0;
  Bytes payload;
  MsgKind kind = MsgKind::kUnknown;
};

/// The sanctioned way for protocol code to build an outbox message.
/// srds-lint rule B1 forbids raw `Message{...}` construction outside
/// src/net: this factory makes the MsgKind tag an explicit, reviewed
/// decision at every send site, so the per-kind byte breakdowns behind the
/// Table 1 comparison never silently lose traffic to the untagged bucket.
inline Message make_msg(PartyId from, PartyId to, Bytes payload, MsgKind kind) {
  Message m;
  m.from = from;
  m.to = to;
  m.payload = std::move(payload);
  m.kind = kind;
  return m;
}

}  // namespace srds

#include "common/rng.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace srds {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::below: bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
  return lo + below(hi - lo + 1);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // 53-bit uniform in [0,1).
  double u = static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  return u < p;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t v = next();
    for (int k = 0; k < 8; ++k) out[i++] = static_cast<std::uint8_t>(v >> (8 * k));
  }
  if (i < n) {
    std::uint64_t v = next();
    for (int k = 0; i < n; ++k) out[i++] = static_cast<std::uint8_t>(v >> (8 * k));
  }
  return out;
}

std::vector<std::size_t> Rng::subset(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::subset: k > n");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and take a prefix.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    shuffle(idx);
    out.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    // Sparse case: rejection sample.
    std::unordered_set<std::size_t> seen;
    while (seen.size() < k) {
      std::size_t v = static_cast<std::size_t>(below(n));
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace srds

// Basic byte-buffer vocabulary types shared by every module.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace srds {

/// Owning byte buffer. All wire formats in this project are `Bytes`.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Append `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Concatenate any number of byte views into a fresh buffer.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  std::size_t total = (std::size_t{0} + ... + views.size());
  out.reserve(total);
  (append(out, BytesView{views.data(), views.size()}), ...);
  return out;
}

/// Bytes of an ASCII string (no terminator).
inline Bytes to_bytes(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

}  // namespace srds

// Weak fallbacks for the alloc-hooks accessors (see alloc_hooks.hpp).
// Built into srds_obs: binaries that also link the srds_alloc_hooks OBJECT
// library get the strong counting definitions from alloc_hooks.cpp and
// these lose; everything else links these and reports "hooks inactive".
#include "obs/alloc_hooks.hpp"

namespace srds::obs {

#if defined(__GNUC__) || defined(__clang__)

[[gnu::weak]] std::uint64_t alloc_ops() { return 0; }
[[gnu::weak]] bool alloc_hooks_active() { return false; }

#else

std::uint64_t alloc_ops() { return 0; }
bool alloc_hooks_active() { return false; }

#endif

}  // namespace srds::obs

#include "obs/report.hpp"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <stdexcept>

#include "obs/prof.hpp"
#include "obs/tracer.hpp"

namespace srds::bench {

void Reporter::add_row(double x, obs::Json metrics) {
  if (!metrics.is_object()) {
    throw std::invalid_argument("Reporter::add_row: metrics must be an object");
  }
  obs::Json row = obs::Json::object();
  row.set("x", x);
  row.set("metrics", std::move(metrics));
  std::lock_guard<std::mutex> lk(mu_);
  series_.push_back(std::move(row));
}

obs::Json Reporter::to_json(bool with_timestamp) const {
  std::lock_guard<std::mutex> lk(mu_);
  obs::Json out = obs::Json::object();
  // v2 added per_party/budgets row blocks; v3 adds wall/allocs row metrics
  // and the optional top-level prof block below.
  out.set("schema", 3);
  out.set("bench", bench_);
  out.set("git_describe", git_describe());
  if (with_timestamp) {
    // srds-lint: allow(D1): wall-clock here is bench-artifact metadata, not protocol state; the determinism guard compares with_timestamp=false documents.
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    out.set("timestamp", buf);
  }
  out.set("params", params_);
  out.set("series", series_);
  // The prof block rides the same gate as the timestamp: it is wall-clock
  // data, so it must never appear in the deterministic document the
  // trace_test determinism guard compares.
  if (with_timestamp && obs::prof_enabled()) {
    out.set("prof", obs::prof_to_json());
  }
  return out;
}

std::string Reporter::write(const std::string& dir) const {
  std::string path = dir.empty() ? std::string(".") : dir;
  if (path.back() != '/') path.push_back('/');
  path += "BENCH_" + bench_ + ".json";
  // write_text_file creates missing parent directories.
  if (!obs::write_text_file(path, to_json().dump(2) + "\n")) return {};
  return path;
}

std::string Reporter::git_describe() {
  static const std::string cached = [] {
    std::string out;
    if (std::FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
      char buf[128];
      while (std::fgets(buf, sizeof buf, p)) out += buf;
      ::pclose(p);
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
    return out.empty() ? std::string("unknown") : out;
  }();
  return cached;
}

}  // namespace srds::bench

#include "obs/report.hpp"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <stdexcept>

#include "obs/tracer.hpp"

namespace srds::bench {

void Reporter::add_row(double x, obs::Json metrics) {
  if (!metrics.is_object()) {
    throw std::invalid_argument("Reporter::add_row: metrics must be an object");
  }
  obs::Json row = obs::Json::object();
  row.set("x", x);
  row.set("metrics", std::move(metrics));
  std::lock_guard<std::mutex> lk(mu_);
  series_.push_back(std::move(row));
}

obs::Json Reporter::to_json(bool with_timestamp) const {
  std::lock_guard<std::mutex> lk(mu_);
  obs::Json out = obs::Json::object();
  out.set("schema", 2);  // v2: rows may carry per_party/budgets blocks
  out.set("bench", bench_);
  out.set("git_describe", git_describe());
  if (with_timestamp) {
    // srds-lint: allow(D1): wall-clock here is bench-artifact metadata, not protocol state; the determinism guard compares with_timestamp=false documents.
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    out.set("timestamp", buf);
  }
  out.set("params", params_);
  out.set("series", series_);
  return out;
}

std::string Reporter::write(const std::string& dir) const {
  std::string path = dir.empty() ? std::string(".") : dir;
  if (path.back() != '/') path.push_back('/');
  path += "BENCH_" + bench_ + ".json";
  // CI points --json-out at not-yet-existing artifact directories; create
  // missing parents instead of failing the write (same convention as the
  // lint baseline artifacts).
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  if (!obs::write_text_file(path, to_json().dump(2) + "\n")) return {};
  return path;
}

std::string Reporter::git_describe() {
  static const std::string cached = [] {
    std::string out;
    if (std::FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r")) {
      char buf[128];
      while (std::fgets(buf, sizeof buf, p)) out += buf;
      ::pclose(p);
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
    return out.empty() ? std::string("unknown") : out;
  }();
  return cached;
}

}  // namespace srds::bench

// Structured metrics: a registry of named counters, gauges and log-scale
// histograms with labeled dimensions.
//
// The registry gives every quantitative signal in the repo a stable,
// machine-readable home: a metric is (name, sorted label set) -> storage,
// and the whole registry exports as one JSON document. Labels carry the
// experiment dimensions the paper's artifacts compare across — protocol,
// n, seed, fault plan — so downstream tooling can pivot without parsing
// fixed-width text tables.
//
// Handles returned by the registry are stable for the registry's lifetime
// (storage is a deque; no reallocation moves a live metric).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace srds::obs {

/// Label dimensions, e.g. {{"protocol","pi_ba"},{"n","512"}}. Order given
/// by the caller is irrelevant: the registry canonicalizes by sorting.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Log2-bucketed histogram for long-tailed size/latency distributions.
/// Bucket b counts samples v with 2^b <= v < 2^(b+1); bucket 0 also takes
/// v in {0, 1}. Exact count/sum/min/max are kept alongside the buckets.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }
  /// Index of the bucket `v` falls into.
  static std::size_t bucket_of(std::uint64_t v);
  std::uint64_t bucket(std::size_t b) const { return buckets_[b]; }

  /// Upper bound (exclusive) of a quantile q in [0, 1]: the smallest bucket
  /// boundary 2^(b+1) such that at least q*count samples fall at or below
  /// it. Log-scale resolution only — intended for reporting, not math.
  std::uint64_t quantile_bound(double q) const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

class Registry {
 public:
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {});

  /// Export every metric:
  ///   {"counters":[{name,labels{},value}...],
  ///    "gauges":[...],
  ///    "histograms":[{name,labels{},count,sum,min,max,mean,buckets{"2^b":c}}...]}
  /// Metrics appear in registration order; labels in sorted order.
  Json to_json() const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  struct Key {
    std::string name;
    Labels labels;  // sorted
    bool operator==(const Key&) const = default;
  };

  template <typename T>
  struct Entry {
    Key key;
    T metric;
  };

  static Key make_key(const std::string& name, Labels labels);
  static Json labels_json(const Labels& labels);

  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
};

}  // namespace srds::obs

// Structured metrics: a registry of named counters, gauges and log-scale
// histograms with labeled dimensions.
//
// The registry gives every quantitative signal in the repo a stable,
// machine-readable home: a metric is (name, sorted label set) -> storage,
// and the whole registry exports as one JSON document. Labels carry the
// experiment dimensions the paper's artifacts compare across — protocol,
// n, seed, fault plan — so downstream tooling can pivot without parsing
// fixed-width text tables.
//
// Handles returned by the registry are stable for the registry's lifetime
// (metrics are heap-allocated; nothing moves a live metric).
//
// Thread safety: registration, updates and export are safe to call from
// concurrent threads (the TSan leg of the sanitizer matrix runs
// tests/obs_threaded_test.cpp against exactly this). Counters, gauges and
// histograms are relaxed atomics — they are statistics, not
// synchronization; nothing may be ordered against them (the policy is
// docs/observability.md "memory-order policy", machine-checked by
// srds-lint rule C3 against tools/srds-lint/locks.toml). Histogram::record
// is lock-free: each log2 bucket is its own atomic and min/max are CAS
// loops, so the per-message hot path never serializes through a mutex. The
// price is that a concurrent reader can observe a sum whose count has not
// landed yet — fine for statistics, which is all a histogram is. The
// registry's entry lists keep a mutex (registration + export only, never
// the record path); those fields carry guarded_by annotations that
// srds-lint rule C2 enforces interprocedurally.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace srds::obs {

/// Label dimensions, e.g. {{"protocol","pi_ba"},{"n","512"}}. Order given
/// by the caller is irrelevant: the registry canonicalizes by sorting.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Log2-bucketed histogram for long-tailed size/latency distributions.
/// Bucket b counts samples v with 2^b <= v < 2^(b+1); bucket 0 also takes
/// v in {0, 1}. Exact count/sum/min/max are kept alongside the buckets.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const {
    return count() ? min_.load(std::memory_order_relaxed) : 0;
  }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t c = count();
    return c ? static_cast<double>(sum()) / static_cast<double>(c) : 0.0;
  }
  /// Index of the bucket `v` falls into.
  static std::size_t bucket_of(std::uint64_t v);
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Upper bound (exclusive) of a quantile q in [0, 1]: the smallest bucket
  /// boundary 2^(b+1) such that at least q*count samples fall at or below
  /// it. Log-scale resolution only — intended for reporting, not math.
  std::uint64_t quantile_bound(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

class Registry {
 public:
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {});

  /// Export every metric:
  ///   {"counters":[{name,labels{},value}...],
  ///    "gauges":[...],
  ///    "histograms":[{name,labels{},count,sum,min,max,mean,buckets{"2^b":c}}...]}
  /// Metrics appear in registration order; labels in sorted order.
  Json to_json() const;

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  struct Key {
    std::string name;
    Labels labels;  // sorted
    bool operator==(const Key&) const = default;
  };

  // Metrics live behind unique_ptr so they can hold atomics/mutexes (non-
  // movable) while entries are still appendable; handle stability follows
  // from the heap allocation rather than from deque semantics.
  template <typename T>
  struct Entry {
    Key key;
    std::unique_ptr<T> metric;
  };

  static Key make_key(const std::string& name, Labels labels);
  static Json labels_json(const Labels& labels);

  // Guards the entry lists (registration + export); the metrics themselves
  // synchronize their own updates.
  mutable std::mutex mu_;
  std::deque<Entry<Counter>> counters_;      // srds-lint: guarded_by(mu_)
  std::deque<Entry<Gauge>> gauges_;          // srds-lint: guarded_by(mu_)
  std::deque<Entry<Histogram>> histograms_;  // srds-lint: guarded_by(mu_)
};

}  // namespace srds::obs

// bench::Reporter — machine-readable benchmark output.
//
// Every bench binary routes its result rows through a Reporter alongside
// the fixed-width text tables, producing a `BENCH_<name>.json` artifact:
//
//   {
//     "schema": 3,
//     "bench": "<name>",
//     "git_describe": "<git describe --always --dirty>",
//     "timestamp": "<ISO 8601 UTC>",
//     "params": { ... fixed experiment parameters ... },
//     "series": [ {"x": <number>, "metrics": { ... }}, ... ],
//     "prof": { "sites": [ ... ] }        (only when profiling is enabled)
//   }
//
// `x` is the sweep coordinate (n, ell, drop rate, row index...); `metrics`
// is a flat-ish object of numbers/strings (nested objects allowed, e.g. a
// per-phase breakdown). Schema v2 adds per-party distribution blocks
// (obs::Ledger stats under "per_party") and "budgets" evaluation arrays to
// the simulator-driven benches; v3 adds the per-row wall/allocs metrics
// ("wall": {ns_per_op, spread_rel, repeats} and "allocs_per_op", see
// bench_util.hpp timed_repeats) plus the optional top-level "prof" block
// (obs/prof.hpp). tools/bench-diff consumes these documents
// and compares any two of them metric-by-metric. Output is byte-deterministic for a deterministic
// benchmark apart from the `timestamp` and `prof` fields — both ride the
// with_timestamp gate, and the determinism guard in
// tests/trace_test.cpp enforces exactly that, so the perf trajectory
// across PRs can be diffed mechanically.
//
// Thread safety: add_row/set_param/to_json may be called from concurrent
// worker threads (sweeps that parallelize over n); rows appear in call
// order, so a bench that needs deterministic row order must either stay
// single-threaded or add rows after joining its workers.
#pragma once

#include <mutex>
#include <string>

#include "obs/json.hpp"

namespace srds::bench {

class Reporter {
 public:
  explicit Reporter(std::string bench_name) : bench_(std::move(bench_name)) {}

  const std::string& name() const { return bench_; }

  /// Record a fixed experiment parameter (beta, seed, sizes...).
  void set_param(const std::string& key, obs::Json value) {
    std::lock_guard<std::mutex> lk(mu_);
    params_.set(key, std::move(value));
  }

  /// Append one series row. `metrics` must be a JSON object.
  void add_row(double x, obs::Json metrics);

  std::size_t rows() const {
    std::lock_guard<std::mutex> lk(mu_);
    return series_.items().size();
  }

  /// The full document. `with_timestamp=false` omits the timestamp field
  /// (used by the determinism guard).
  obs::Json to_json(bool with_timestamp = true) const;

  /// Write BENCH_<name>.json under `dir` ("." = cwd). Returns the path, or
  /// empty on I/O failure.
  std::string write(const std::string& dir) const;

  /// `git describe --always --dirty` of the working tree, or "unknown"
  /// when git/repo is unavailable. Cached after the first call.
  static std::string git_describe();

 private:
  mutable std::mutex mu_;  // guards params_ and series_
  std::string bench_;
  obs::Json params_ = obs::Json::object();  // srds-lint: guarded_by(mu_)
  obs::Json series_ = obs::Json::array();   // srds-lint: guarded_by(mu_)
};

}  // namespace srds::bench

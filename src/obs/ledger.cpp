#include "obs/ledger.hpp"

#include <algorithm>

namespace srds::obs {

void Ledger::on_run_begin(std::size_t n_parties) {
  const bool carry = accumulate_ && n_ == n_parties && !totals_.empty();
  n_ = n_parties;
  if (!carry) {
    totals_.assign(n_, PartyTally{});
    kinds_.assign(static_cast<std::size_t>(MsgKind::kCount), {});
    for (auto& k : kinds_) k.assign(n_, PartyTally{});
    rounds_run_ = 0;
  }
  // Phase marks describe one run's schedule; they restart either way (an
  // accumulating ledger keeps whole-run and per-kind totals only).
  if (phases_.empty() || phases_.front().start > 0) {
    phases_.insert(phases_.begin(), Phase{"pre", 0, {}});
  }
  for (Phase& p : phases_) p.parties.assign(n_, PartyTally{});
  // Re-anchor onto round 0's phase: marks surviving from a previous
  // accumulated execution may place it past the implicit "pre" entry.
  cur_phase_ = 0;
  advance_phase(0);
}

void Ledger::on_phase(std::size_t start_round, const std::string& name) {
  // Re-registering an existing mark is a no-op: an accumulating ledger sees
  // the same schedule once per execution, and piling up duplicate entries
  // would leave phase_index() pointing at a stale copy.
  for (const Phase& existing : phases_) {
    if (existing.start == start_round && existing.name == name) return;
  }
  Phase p{name, start_round, {}};
  if (n_ > 0) p.parties.assign(n_, PartyTally{});
  auto pos = std::upper_bound(
      phases_.begin(), phases_.end(), start_round,
      [](std::size_t r, const Phase& ph) { return r < ph.start; });
  phases_.insert(pos, std::move(p));
  // A mark registered mid-run at or before the current round re-anchors the
  // current phase; recompute from scratch (cold path, phases are few).
  cur_phase_ = 0;
  advance_phase(cur_round_);
}

void Ledger::advance_phase(std::size_t round) {
  cur_round_ = round;
  while (cur_phase_ + 1 < phases_.size() && phases_[cur_phase_ + 1].start <= round) {
    ++cur_phase_;
  }
}

// srds-lint: hotpath(Ledger::on_send) — one call per accepted send; indexes preallocated
// tallies only (no allocation, unwinding, or type erasure; rule P1).
void Ledger::on_send(std::size_t round, const Message& m) {
  if (m.from >= n_) return;
  if (round != cur_round_) advance_phase(round);
  const std::uint64_t bytes = m.payload.size();
  auto charge = [&](PartyTally& t) {
    t.bytes_sent += bytes;
    t.msgs_sent += 1;
  };
  charge(totals_[m.from]);
  charge(phases_[cur_phase_].parties[m.from]);
  auto k = static_cast<std::size_t>(m.kind);
  if (k >= kinds_.size()) k = 0;
  charge(kinds_[k][m.from]);
}

// srds-lint: hotpath(Ledger::on_delivery) — one call per delivery outcome; same constraints as
// on_send.
void Ledger::on_delivery(std::size_t round, const Message& m, Delivery outcome) {
  switch (outcome) {
    case Delivery::kDelivered:
    case Delivery::kDuplicated:
    case Delivery::kLate:
      break;
    case Delivery::kDropped:
    case Delivery::kPartitioned:
    case Delivery::kDelayed:
    case Delivery::kOffline:
      return;  // nobody received anything
  }
  if (m.to >= n_) return;
  if (round != cur_round_) advance_phase(round);
  const std::uint64_t bytes = m.payload.size();
  auto charge = [&](PartyTally& t) {
    t.bytes_recv += bytes;
    t.msgs_recv += 1;
  };
  charge(totals_[m.to]);
  charge(phases_[cur_phase_].parties[m.to]);
  auto k = static_cast<std::size_t>(m.kind);
  if (k >= kinds_.size()) k = 0;
  charge(kinds_[k][m.to]);
}

void Ledger::on_run_end(std::size_t rounds) {
  rounds_run_ = std::max(rounds_run_, rounds);
}

std::size_t Ledger::phase_index(const std::string& name) const {
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    if (phases_[p].name == name) return p;
  }
  return kAllPhases;
}

namespace {

std::uint64_t field_of(const PartyTally& t, LedgerField f) {
  switch (f) {
    case LedgerField::kBytesSent: return t.bytes_sent;
    case LedgerField::kBytesRecv: return t.bytes_recv;
    case LedgerField::kBytesTotal: return t.bytes_total();
    case LedgerField::kMsgsSent: return t.msgs_sent;
    case LedgerField::kMsgsRecv: return t.msgs_recv;
  }
  return 0;
}

}  // namespace

PartyStat Ledger::stat_of(const std::vector<PartyTally>& tallies, LedgerField field,
                          const std::vector<bool>* exclude) const {
  PartyStat s;
  std::vector<std::uint64_t> values;
  values.reserve(tallies.size());
  for (PartyId i = 0; i < tallies.size(); ++i) {
    if (exclude && i < exclude->size() && (*exclude)[i]) continue;
    const std::uint64_t v = field_of(tallies[i], field);
    if (v > s.max) {
      s.max = v;
      s.argmax = i;
    }
    s.total += v;
    values.push_back(v);
  }
  s.parties = values.size();
  if (!values.empty()) {
    std::sort(values.begin(), values.end());
    s.p50 = values[values.size() / 2];
    s.p90 = values[std::min(values.size() - 1, (values.size() * 9) / 10)];
  }
  return s;
}

PartyStat Ledger::stat(LedgerField field, std::size_t phase,
                       const std::vector<bool>* exclude) const {
  if (phase == kAllPhases) return stat_of(totals_, field, exclude);
  return stat_of(phases_[phase].parties, field, exclude);
}

namespace {

Json stat_json(const PartyStat& s) {
  Json j = Json::object();
  j.set("max", s.max);
  j.set("argmax", s.argmax);
  j.set("p50", s.p50);
  j.set("p90", s.p90);
  j.set("total", s.total);
  return j;
}

}  // namespace

Json Ledger::to_json(bool per_party) const {
  Json out = Json::object();
  out.set("n", n_);
  out.set("rounds", rounds_run_);

  Json totals = Json::object();
  totals.set("bytes_sent", stat_json(stat(LedgerField::kBytesSent)));
  totals.set("bytes_recv", stat_json(stat(LedgerField::kBytesRecv)));
  totals.set("bytes_total", stat_json(stat(LedgerField::kBytesTotal)));
  totals.set("msgs_sent", stat_json(stat(LedgerField::kMsgsSent)));
  out.set("totals", std::move(totals));

  Json phases = Json::array();
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    Json j = Json::object();
    j.set("name", phases_[p].name);
    j.set("start", phases_[p].start);
    j.set("bytes_total", stat_json(stat(LedgerField::kBytesTotal, p)));
    j.set("bytes_sent", stat_json(stat(LedgerField::kBytesSent, p)));
    j.set("msgs_sent", stat_json(stat(LedgerField::kMsgsSent, p)));
    phases.push_back(std::move(j));
  }
  out.set("phases", std::move(phases));

  Json kinds = Json::object();
  for (std::size_t k = 0; k < kinds_.size(); ++k) {
    PartyStat sent = stat_of(kinds_[k], LedgerField::kBytesSent, nullptr);
    PartyStat msgs = stat_of(kinds_[k], LedgerField::kMsgsSent, nullptr);
    if (sent.total == 0 && msgs.total == 0) continue;
    Json j = Json::object();
    j.set("bytes_sent", stat_json(sent));
    j.set("msgs_sent", stat_json(msgs));
    kinds.set(msg_kind_name(static_cast<MsgKind>(k)), std::move(j));
  }
  out.set("kinds", std::move(kinds));

  if (per_party) {
    Json parties = Json::array();
    for (const PartyTally& t : totals_) {
      Json j = Json::object();
      j.set("bytes_sent", t.bytes_sent);
      j.set("bytes_recv", t.bytes_recv);
      j.set("msgs_sent", t.msgs_sent);
      j.set("msgs_recv", t.msgs_recv);
      parties.push_back(std::move(j));
    }
    out.set("per_party", std::move(parties));
  }
  return out;
}

}  // namespace srds::obs

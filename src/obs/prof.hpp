// obs profiling layer: lock-free scoped timers + optional HW counters.
//
// The Ledger audits the paper's *bit* budgets; this file is the equivalent
// runtime layer for *time and allocation* (ROADMAP items 1 and 3 — sharding
// the simulator and optimizing the crypto/serialization hot path — only
// count if regressions are caught). A `PROF_SCOPE(site)` expands to a RAII
// timer that aggregates into the site's sharded atomics:
//
//   * wait-free and allocation-free on the record path (srds-lint rule P1
//     checks the hotpath markers in prof.cpp): relaxed fetch_add into a
//     per-thread-hashed shard for count/total, relaxed fetch_add into one
//     log2 bucket, CAS loops for min/max — the same shape as
//     obs::Histogram::record;
//   * disabled by default: one seq_cst bool load and no clock read when
//     profiling is off, so instrumented hot paths cost ~nothing in
//     deterministic runs;
//   * hierarchical site names (`module/phase/site`, e.g.
//     "sim/round/deliver") so downstream tooling can roll spans up by
//     prefix.
//
// Determinism contract (docs/observability.md "Profiling"): timing never
// enters deterministic documents. prof output is exported only through
// Reporter::to_json(with_timestamp=true) — the same gate that keeps the
// timestamp out of the determinism guard — and through the chrome trace,
// which is already wall-clock-shaped. Enabling profiling must not change
// any deterministic byte (tests/trace_test.cpp enforces this).
//
// Memory-order policy: prof counters are statistics, not synchronization —
// all site atomics are relaxed (tools/srds-lint/locks.toml [allow-relaxed]
// "ProfSite::*"); the global enable flag keeps default seq_cst ordering
// because it is read once per scope, not per event. A concurrent snapshot
// can tear across fields (a count without its total); prof_to_json is
// explicitly tear-tolerant reporting, never an invariant.
#pragma once

#include <cstdint>
#include <string>

#include <atomic>
#include <chrono>

#include "obs/json.hpp"

namespace srds::obs {

/// Statically-known profiling sites, one per instrumented hot path. The
/// enum is the allocation-free handle: `prof_site(id)` is an array index.
enum class ProfSiteId : std::uint32_t {
  kSimRound = 0,       // sim/round           — one Simulator::tick
  kSimPartyStep,       // sim/round/party_step — honest parties' on_round
  kSimDeliver,         // sim/round/deliver   — per-message delivery
  kCryptoSha256,       // crypto/sha256       — one-shot sha256()
  kCryptoMerkleBuild,  // crypto/merkle/build
  kCryptoMerkleVerify, // crypto/merkle/verify
  kCryptoLamportSign,  // crypto/lamport/sign
  kCryptoLamportVerify,// crypto/lamport/verify
  kSrdsSign,           // srds/sign
  kSrdsAggregate1,     // srds/aggregate1
  kSrdsAggregate2,     // srds/aggregate2
  kSrdsVerify,         // srds/verify
  kSrdsSerialize,      // srds/serialize      — signature/path encode
  kSrdsDeserialize,    // srds/deserialize    — adversarial decode path
  kSvcFrameDecode,     // svc/frame/decode    — FrameDecoder::next
  kSvcPipelineStep,    // svc/pipeline/step   — InstancePipeline::on_round
  kSvcDaemonStep,      // svc/daemon/step     — BaServiceDaemon::step
  kCount,
};

inline constexpr std::size_t kProfSiteCount =
    static_cast<std::size_t>(ProfSiteId::kCount);

/// Hierarchical name ("module/phase/site") of a static site.
const char* prof_site_name(ProfSiteId id);

/// One profiling site: count/total sharded by thread hash (the contended
/// fetch_adds), plus a log2 latency histogram and CAS'd min/max. All
/// methods are safe from concurrent threads; readers aggregate with
/// relaxed loads and tolerate tearing between fields.
class ProfSite {
 public:
  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kBuckets = 64;

  /// Record one span of `ns` nanoseconds. Wait-free, allocation-free.
  void record_ns(std::uint64_t ns);

  std::uint64_t count() const;
  std::uint64_t total_ns() const;
  std::uint64_t min_ns() const {
    return count() ? min_.load(std::memory_order_relaxed) : 0;
  }
  std::uint64_t max_ns() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Zero every field (not atomic as a whole: concurrent recorders may
  /// land between stores; only call quiescent or accept the smear).
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
  };

  Shard shards_[kShards];
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// The static site table (array index, wait-free; srds-lint shard_roots
/// [allow] boundary — the table itself lives in prof.cpp).
ProfSite& prof_site(ProfSiteId id);

/// Dynamically-registered site (mutex'd registration; the returned handle
/// is stable for process lifetime). For bench/daemon-level names that are
/// not compile-time sites; never call on a hot path.
ProfSite& prof_site_named(const std::string& name);

/// Global enable flag. Off by default: PROF_SCOPE reads it once per scope
/// and skips the clock entirely when off.
bool prof_enabled();
void prof_set_enabled(bool on);

/// Zero all sites (static and named).
void prof_reset();

/// Tear-tolerant snapshot of every site with count > 0:
///   {"sites":[{"name","count","total_ns","mean_ns","min_ns","max_ns",
///              "buckets":{"2^b":c}}...]}
Json prof_to_json();

/// RAII span timer. Construct with nullptr (profiling off) and it does
/// nothing at all — no clock read.
class ProfTimer {
 public:
  explicit ProfTimer(ProfSite* site)
      : site_(site),
        start_ns_(site ? std::chrono::steady_clock::now().time_since_epoch().count()
                       : 0) {}
  ~ProfTimer() {
    if (site_) finish();
  }

  ProfTimer(const ProfTimer&) = delete;
  ProfTimer& operator=(const ProfTimer&) = delete;

 private:
  void finish();

  ProfSite* site_;
  std::int64_t start_ns_;
};

// -- Hardware counters (perf_event_open) -----------------------------------

/// Counter values from one ProfHwSession measurement window.
struct ProfHwCounters {
  bool available = false;  // false: the kernel/container forbade perf_event
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;

  Json to_json() const;
};

/// A perf_event_open session over {cycles, instructions, cache-misses}.
/// Opening degrades gracefully: in containers without perf_event access
/// (EACCES/EPERM/ENOSYS) `available()` is false and start/stop/read are
/// no-ops returning an unavailable ProfHwCounters. Not a hot-path tool —
/// open once around a measured region.
class ProfHwSession {
 public:
  ProfHwSession();
  ~ProfHwSession();

  ProfHwSession(const ProfHwSession&) = delete;
  ProfHwSession& operator=(const ProfHwSession&) = delete;

  bool available() const { return fds_[0] >= 0; }
  void start();
  void stop();
  ProfHwCounters read() const;

 private:
  int fds_[3] = {-1, -1, -1};  // cycles, instructions, cache-misses
};

}  // namespace srds::obs

// PROF_SCOPE(id): time the enclosing scope into the static site `id`.
// One seq_cst bool load when profiling is off; two steady_clock reads and
// one wait-free record when on. Timing never feeds back into protocol
// state, so instrumented code stays deterministic (D1: steady_clock is not
// a banned source; the contract is documented in docs/observability.md).
#define SRDS_PROF_CONCAT2(a, b) a##b
#define SRDS_PROF_CONCAT(a, b) SRDS_PROF_CONCAT2(a, b)
#define PROF_SCOPE(id)                                              \
  ::srds::obs::ProfTimer SRDS_PROF_CONCAT(srds_prof_scope_,         \
                                          __LINE__)(                \
      ::srds::obs::prof_enabled() ? &::srds::obs::prof_site(id)     \
                                  : nullptr)

// Counting replacement operator new/delete (see alloc_hooks.hpp for the
// linkage model). This TU is the OBJECT library `srds_alloc_hooks`: its
// definitions are strong and always reach the link, overriding the weak
// fallbacks in alloc_hooks_stub.cpp.
#include "obs/alloc_hooks.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace srds::obs {

namespace {

/// Allocations observed process-wide since startup (all threads).
std::atomic<std::uint64_t> g_alloc_ops{0};

}  // namespace

std::uint64_t alloc_ops() { return g_alloc_ops.load(); }

bool alloc_hooks_active() { return true; }

}  // namespace srds::obs

// Counting replacements. Default (seq_cst) ordering: the counter is
// bookkeeping, and an allocation dwarfs the fence anyway. The
// nothrow/aligned variants are not replaced — those allocations go
// uncounted, which no current caller exercises on a measured path.
// noinline keeps the malloc/free internals opaque at call sites: inlined,
// GCC's -Wmismatched-new-delete heuristic pairs the caller's `new` with
// the exposed `free` and misfires (and replacement allocation functions
// are not meant to inline in the first place).
#if defined(__GNUC__) || defined(__clang__)
#define SRDS_ALLOC_NOINLINE __attribute__((noinline))
#else
#define SRDS_ALLOC_NOINLINE
#endif

SRDS_ALLOC_NOINLINE void* operator new(std::size_t sz) {
  srds::obs::g_alloc_ops.fetch_add(1);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
SRDS_ALLOC_NOINLINE void* operator new[](std::size_t sz) { return operator new(sz); }
SRDS_ALLOC_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
SRDS_ALLOC_NOINLINE void operator delete[](void* p) noexcept { std::free(p); }
SRDS_ALLOC_NOINLINE void operator delete(void* p, std::size_t) noexcept { std::free(p); }
SRDS_ALLOC_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

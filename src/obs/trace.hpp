// TraceSink — the lightweight hook interface between the network simulator
// and the observability layer.
//
// The Simulator drives one sink (if installed) through the lifecycle of a
// run: round boundaries, every send the network accepted, every delivery
// outcome the fault layer chose, crash-stop events, plus out-of-band
// annotations from the harness (protocol phase marks, off-network setup
// spans such as SRDS key generation). All callbacks default to no-ops so
// sinks implement only what they need; the interface is header-only and
// adds a single pointer test per event on the simulator's hot path.
#pragma once

#include <cstdint>
#include <string>

#include "common/message.hpp"

namespace srds::obs {

/// What the network decided to do with a sent message.
enum class Delivery : std::uint8_t {
  kDelivered,    // arrives next round
  kDuplicated,   // extra copy injected by a duplication fault
  kLate,         // a delayed message finally arriving this round
  kDropped,      // lost to a random/link drop fault
  kPartitioned,  // lost crossing an active partition cut
  kDelayed,      // deferred by a delay fault (a kLate event follows, or not)
  kOffline,      // lost because the receiver was churned offline
};

inline const char* delivery_name(Delivery d) {
  switch (d) {
    case Delivery::kDelivered: return "delivered";
    case Delivery::kDuplicated: return "duplicated";
    case Delivery::kLate: return "late";
    case Delivery::kDropped: return "dropped";
    case Delivery::kPartitioned: return "partitioned";
    case Delivery::kDelayed: return "delayed";
    case Delivery::kOffline: return "offline";
  }
  return "?";
}

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void on_run_begin(std::size_t n_parties) { (void)n_parties; }
  virtual void on_round_begin(std::size_t round) { (void)round; }

  /// A message the network accepted from its sender this round (the sender
  /// paid for it whatever happens next).
  virtual void on_send(std::size_t round, const Message& m) {
    (void)round;
    (void)m;
  }

  /// A delivery outcome. kDelivered/kDuplicated/kLate reach the receiver
  /// this round; kDropped/kPartitioned/kDelayed do not.
  virtual void on_delivery(std::size_t round, const Message& m, Delivery outcome) {
    (void)round;
    (void)m;
    (void)outcome;
  }

  /// An honest party crash-stopped at the start of `round`.
  virtual void on_crash(std::size_t round, PartyId party) {
    (void)round;
    (void)party;
  }

  /// The adversary's corruption request for `party` was granted from the
  /// simulator's corruption budget at the start of `round`: the party is
  /// adversarial from this round on (docs/fault_model.md, adaptive model).
  virtual void on_corrupt(std::size_t round, PartyId party) {
    (void)round;
    (void)party;
  }

  /// Churn transition at the start of `round`: `online` false = the party
  /// left the network, true = it rejoined with its state intact.
  virtual void on_churn(std::size_t round, PartyId party, bool online) {
    (void)round;
    (void)party;
    (void)online;
  }

  virtual void on_round_end(std::size_t round) { (void)round; }
  virtual void on_run_end(std::size_t rounds) { (void)rounds; }

  /// Harness annotation: protocol phase `name` starts at `start_round`
  /// (rounds belong to the most recent mark at or before them). May be
  /// called before or during the run.
  virtual void on_phase(std::size_t start_round, const std::string& name) {
    (void)start_round;
    (void)name;
  }

  /// Harness annotation: an off-network span of local work (e.g. SRDS key
  /// generation, tree construction) took `wall_ns`.
  virtual void on_span(const std::string& name, std::uint64_t wall_ns) {
    (void)name;
    (void)wall_ns;
  }
};

}  // namespace srds::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>

namespace srds::obs {

std::size_t Histogram::bucket_of(std::uint64_t v) {
  if (v <= 1) return 0;
  std::size_t b = 0;
  while (v >>= 1) ++b;
  return std::min(b, kBuckets - 1);
}

void Histogram::record(std::uint64_t v) {
  // Lock-free: one relaxed RMW per statistic. min/max are CAS loops — the
  // compare_exchange updates `cur` on failure, so the loop re-tests the
  // ordering condition against the freshest observed value.
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::quantile_bound(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (static_cast<double>(seen) >= target) {
      return b + 1 >= 64 ? ~0ull : (1ull << (b + 1));
    }
  }
  return max();
}

Registry::Key Registry::make_key(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key{name, std::move(labels)};
}

namespace {

template <typename Deque, typename Key>
auto& find_or_add(Deque& entries, Key key) {
  for (auto& e : entries) {
    if (e.key == key) return *e.metric;
  }
  using Metric = typename std::remove_reference_t<decltype(*entries.front().metric)>;
  entries.push_back({std::move(key), std::make_unique<Metric>()});
  return *entries.back().metric;
}

}  // namespace

Counter& Registry::counter(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return find_or_add(counters_, make_key(name, std::move(labels)));
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return find_or_add(gauges_, make_key(name, std::move(labels)));
}

Histogram& Registry::histogram(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return find_or_add(histograms_, make_key(name, std::move(labels)));
}

Json Registry::labels_json(const Labels& labels) {
  Json j = Json::object();
  for (const auto& [k, v] : labels) j.set(k, v);
  return j;
}

Json Registry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  Json counters = Json::array();
  for (const auto& e : counters_) {
    Json m = Json::object();
    m.set("name", e.key.name);
    m.set("labels", labels_json(e.key.labels));
    m.set("value", e.metric->value());
    counters.push_back(std::move(m));
  }
  Json gauges = Json::array();
  for (const auto& e : gauges_) {
    Json m = Json::object();
    m.set("name", e.key.name);
    m.set("labels", labels_json(e.key.labels));
    m.set("value", e.metric->value());
    gauges.push_back(std::move(m));
  }
  Json histograms = Json::array();
  for (const auto& e : histograms_) {
    Json m = Json::object();
    m.set("name", e.key.name);
    m.set("labels", labels_json(e.key.labels));
    m.set("count", e.metric->count());
    m.set("sum", e.metric->sum());
    m.set("min", e.metric->min());
    m.set("max", e.metric->max());
    m.set("mean", e.metric->mean());
    Json buckets = Json::object();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (e.metric->bucket(b) == 0) continue;
      buckets.set("2^" + std::to_string(b), e.metric->bucket(b));
    }
    m.set("buckets", std::move(buckets));
    histograms.push_back(std::move(m));
  }

  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace srds::obs

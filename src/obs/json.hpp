// Minimal hand-rolled JSON document builder (no external dependencies).
//
// The observability layer needs to *emit* machine-readable artifacts —
// BENCH_*.json benchmark series, Chrome trace_event files, metric dumps —
// with byte-stable output so identical runs diff clean (the determinism
// guard in tests/trace_test.cpp relies on this). Design choices to that end:
//   * objects preserve insertion order (no hash-map iteration order leaks
//     into the file),
//   * integers are kept exact (separate from doubles) and doubles render
//     via the shortest round-trip representation (std::to_chars),
//   * non-finite doubles serialize as null (JSON has no NaN/Inf).
// Json::parse reads the subset the writer emits (tools/bench-diff loads
// BENCH_*.json artifacts through it); the tests additionally round-trip the
// writer against a tiny independent parser as a conformance check.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace srds::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(long v) : type_(Type::kInt), int_(v) {}
  Json(long long v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kUint), uint_(v) {}
  Json(unsigned long v) : type_(Type::kUint), uint_(v) {}
  Json(unsigned long long v) : type_(Type::kUint), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Array append. The value must be an array (or null, which promotes).
  Json& push_back(Json v);

  /// Object insert/overwrite, preserving first-insertion order. The value
  /// must be an object (or null, which promotes).
  Json& set(const std::string& key, Json v);

  /// Object lookup; returns nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
  Json* find(const std::string& key) {
    return const_cast<Json*>(static_cast<const Json*>(this)->find(key));
  }

  const std::vector<Json>& items() const { return array_; }
  const std::vector<std::pair<std::string, Json>>& members() const { return object_; }

  /// Scalar accessors with coercion across the numeric kinds; the fallback
  /// value is returned on type mismatch (readers of bench artifacts treat
  /// absent/mistyped fields as missing data, not errors).
  bool as_bool(bool fallback = false) const;
  std::int64_t as_int(std::int64_t fallback = 0) const;
  std::uint64_t as_uint(std::uint64_t fallback = 0) const;
  double as_double(double fallback = 0) const;
  const std::string& as_string() const { return string_; }

  /// Parse `text` into `out`. Accepts standard JSON (the writer's output is
  /// a subset). Returns false and fills *err (when non-null) with a
  /// byte-offset message on malformed input.
  static bool parse(std::string_view text, Json& out, std::string* err = nullptr);

  /// Serialize. indent < 0 = compact single line; indent >= 0 = pretty,
  /// `indent` spaces per nesting level.
  std::string dump(int indent = -1) const;

  /// Append the JSON escaping of `s` (quotes included) to `out`.
  static void escape(const std::string& s, std::string& out);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace srds::obs

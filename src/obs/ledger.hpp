// obs::Ledger — the per-party accounting plane.
//
// The paper's headline claim is a *per-party* bound (every honest party
// sends/receives only polylog(n) bits), but the RoundTracer aggregates per
// round/kind only, and the one number Table 1 pivots on — max communication
// per party — was recomputed ad hoc in every bench binary from
// NetworkStats. The Ledger is a TraceSink that accounts every accepted
// send and every actual delivery *per party*, split by protocol phase (the
// same on_phase marks the RoundTracer consumes) and by MsgKind, so the
// paper's Theorem-level claims can be audited on any traced run (see
// obs/budget.hpp) and every bench binary reports per-party distribution
// statistics from one shared implementation.
//
// Accounting conventions (identical to NetworkStats):
//   * on_send charges the sender — whatever the network does next, the
//     sender paid for the transmission;
//   * kDelivered / kDuplicated / kLate charge the receiver at actual
//     delivery; kDropped / kPartitioned / kDelayed charge nobody.
// Phase attribution is by the round the event was observed in. For a
// delayed message this differs from the simulator's phase_stats (which
// attributes the late receive to the *send* round's phase); on fault-free
// runs the two agree exactly, and tests/trace_test.cpp enforces it.
//
// The per-event paths are allocation-free: all storage is sized at
// on_run_begin / on_phase, and on_send / on_delivery only index into it
// (srds-lint rule P1 checks the markers below).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace srds::obs {

/// Per-party byte/message tally (one protocol phase, or the whole run).
struct PartyTally {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;

  std::uint64_t bytes_total() const { return bytes_sent + bytes_recv; }

  bool operator==(const PartyTally&) const = default;
};

/// Distribution of one per-party quantity over the (optionally masked)
/// party set: the paper's "max com. per party" plus median/p90 context.
struct PartyStat {
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t total = 0;
  std::size_t parties = 0;  // parties the stat ranges over
  PartyId argmax = 0;       // a party attaining max
};

/// Which per-party quantity a PartyStat summarizes.
enum class LedgerField : std::uint8_t {
  kBytesSent,
  kBytesRecv,
  kBytesTotal,
  kMsgsSent,
  kMsgsRecv,
};

class Ledger final : public TraceSink {
 public:
  /// Sentinel phase index: the whole-run totals rather than one phase.
  static constexpr std::size_t kAllPhases = static_cast<std::size_t>(-1);

  /// Accumulate across simulator runs instead of resetting at each
  /// on_run_begin (same n required): the ℓ-execution services (broadcast,
  /// Cor 1.2(1)) account their per-party totals over all executions, which
  /// is exactly the quantity the corollary bounds. Phase marks still reset
  /// per run. Default off.
  void set_accumulate(bool on) { accumulate_ = on; }

  void on_run_begin(std::size_t n_parties) override;
  void on_send(std::size_t round, const Message& m) override;
  void on_delivery(std::size_t round, const Message& m, Delivery outcome) override;
  void on_run_end(std::size_t rounds) override;
  void on_phase(std::size_t start_round, const std::string& name) override;

  std::size_t n_parties() const { return n_; }
  std::size_t rounds_run() const { return rounds_run_; }

  /// Phase names in start-round order (an implicit "pre" phase covers
  /// rounds before the first registered mark, exactly like the tracer).
  std::size_t phase_count() const { return phases_.size(); }
  const std::string& phase_name(std::size_t p) const { return phases_[p].name; }
  std::size_t phase_start(std::size_t p) const { return phases_[p].start; }
  /// Index of the named phase, or kAllPhases when absent.
  std::size_t phase_index(const std::string& name) const;

  /// Whole-run tally for one party.
  const PartyTally& total(PartyId i) const { return totals_[i]; }
  /// One phase's tally for one party.
  const PartyTally& phase_total(std::size_t phase, PartyId i) const {
    return phases_[phase].parties[i];
  }
  /// Sent/received tally of one MsgKind for one party (whole run).
  const PartyTally& kind_total(MsgKind k, PartyId i) const {
    return kinds_[static_cast<std::size_t>(k)][i];
  }

  /// Distribution of `field` over parties, for one phase (kAllPhases = the
  /// whole run). `exclude` masks parties out (e.g., corrupted parties —
  /// the paper's bounds quantify over honest parties); nullptr = everyone.
  PartyStat stat(LedgerField field, std::size_t phase = kAllPhases,
                 const std::vector<bool>* exclude = nullptr) const;

  /// Structured summary:
  ///   {n, rounds,
  ///    totals:  {bytes_sent/bytes_recv/bytes_total/msgs_sent: stat...},
  ///    phases:  [{name, start, bytes_total: stat, bytes_sent: stat, ...}],
  ///    kinds:   {kind: {bytes_sent: stat, msgs_sent: stat}},
  ///    per_party: [{bytes_sent, bytes_recv, msgs_sent, msgs_recv}...]}
  /// where stat = {max, argmax, p50, p90, total}. per_party only with
  /// `per_party=true` (it is O(n) artifact bytes). Deterministic for a
  /// deterministic run — the ledger records no wall-clock at all.
  Json to_json(bool per_party = false) const;

  /// Reset to a fresh ledger (phase marks cleared too).
  void clear() { *this = Ledger{}; }

 private:
  struct Phase {
    std::string name;
    std::size_t start = 0;
    std::vector<PartyTally> parties;
  };

  void advance_phase(std::size_t round);
  PartyStat stat_of(const std::vector<PartyTally>& tallies, LedgerField field,
                    const std::vector<bool>* exclude) const;

  std::size_t n_ = 0;
  std::size_t rounds_run_ = 0;
  bool accumulate_ = false;
  // Tallies (accumulate mode included) are owned by the simulator loop that
  // feeds the sink; per-worker ledgers merge after the join in a sharded
  // run. srds-lint rule C3 enforces the claim against the C1 shard-
  // reachable surface.
  std::vector<PartyTally> totals_;  // srds-lint: confined(sim-loop)
  // Sorted by start round.
  std::vector<Phase> phases_;  // srds-lint: confined(sim-loop)
  std::size_t cur_phase_ = 0;       // phase of the last observed round
  std::size_t cur_round_ = 0;
  // kinds_[kind][party]: sent/recv tallies per message kind.
  // srds-lint: confined(sim-loop)
  std::vector<std::vector<PartyTally>> kinds_;
};

}  // namespace srds::obs

#include "obs/tracer.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "obs/prof.hpp"

namespace srds::obs {

void RoundTracer::on_run_begin(std::size_t n_parties) { n_parties_ = n_parties; }

RoundRecord& RoundTracer::at(std::size_t round) {
  while (rounds_.size() <= round) {
    rounds_.push_back(RoundRecord{rounds_.size()});
  }
  return rounds_[round];
}

void RoundTracer::on_round_begin(std::size_t round) {
  at(round);
  round_start_ = std::chrono::steady_clock::now();
}

void RoundTracer::on_send(std::size_t round, const Message& m) {
  RoundRecord& r = at(round);
  r.msgs_sent += 1;
  r.bytes_sent += m.payload.size();
  auto k = static_cast<std::size_t>(m.kind);
  if (k >= r.kinds.size()) k = 0;
  r.kinds[k].msgs += 1;
  r.kinds[k].bytes += m.payload.size();
}

void RoundTracer::on_delivery(std::size_t round, const Message& m, Delivery outcome) {
  RoundRecord& r = at(round);
  switch (outcome) {
    case Delivery::kDelivered:
    case Delivery::kDuplicated:
    case Delivery::kLate:
      r.msgs_delivered += 1;
      r.bytes_delivered += m.payload.size();
      break;
    case Delivery::kDropped:
    case Delivery::kPartitioned:
    case Delivery::kOffline:
      r.dropped += 1;
      break;
    case Delivery::kDelayed:
      r.delayed += 1;
      break;
  }
}

void RoundTracer::on_crash(std::size_t round, PartyId) { at(round).crashes += 1; }

void RoundTracer::on_round_end(std::size_t round) {
  auto now = std::chrono::steady_clock::now();
  at(round).wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - round_start_).count());
}

void RoundTracer::on_run_end(std::size_t rounds) {
  rounds_run_ = std::max(rounds_run_, rounds);
}

void RoundTracer::on_phase(std::size_t start_round, const std::string& name) {
  marks_.push_back(Mark{start_round, name});
  std::stable_sort(marks_.begin(), marks_.end(),
                   [](const Mark& a, const Mark& b) { return a.round < b.round; });
}

void RoundTracer::on_span(const std::string& name, std::uint64_t wall_ns) {
  spans_.push_back(Span{name, wall_ns});
}

void RoundTracer::clear() { *this = RoundTracer{}; }

std::vector<PhaseTotal> RoundTracer::phase_totals() const {
  std::vector<PhaseTotal> phases;
  if (marks_.empty() || marks_.front().round > 0) {
    phases.push_back(PhaseTotal{"pre", 0, 0, 0, 0, 0, {}});
  }
  for (const Mark& m : marks_) {
    phases.push_back(PhaseTotal{m.name, m.round, 0, 0, 0, 0, {}});
  }
  const std::size_t end = std::max(rounds_run_, rounds_.size());
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const std::size_t stop =
        std::min(p + 1 < phases.size() ? phases[p + 1].start : end, end);
    if (stop > phases[p].start) phases[p].rounds = stop - phases[p].start;
    for (std::size_t r = phases[p].start; r < stop && r < rounds_.size(); ++r) {
      phases[p].wall_ns += rounds_[r].wall_ns;
      phases[p].msgs_sent += rounds_[r].msgs_sent;
      phases[p].bytes_sent += rounds_[r].bytes_sent;
      for (std::size_t k = 0; k < phases[p].kinds.size(); ++k) {
        phases[p].kinds[k].msgs += rounds_[r].kinds[k].msgs;
        phases[p].kinds[k].bytes += rounds_[r].kinds[k].bytes;
      }
    }
  }
  return phases;
}

namespace {

Json kinds_json(const std::array<KindTally, static_cast<std::size_t>(MsgKind::kCount)>& kinds) {
  Json out = Json::object();
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    if (kinds[k].msgs == 0) continue;
    Json t = Json::object();
    t.set("msgs", kinds[k].msgs);
    t.set("bytes", kinds[k].bytes);
    out.set(msg_kind_name(static_cast<MsgKind>(k)), std::move(t));
  }
  return out;
}

}  // namespace

Json RoundTracer::to_json(bool per_round) const {
  Json out = Json::object();
  out.set("n", n_parties_);
  out.set("rounds", rounds_run_);

  std::uint64_t bytes = 0, msgs = 0, wall = 0, dropped = 0, delayed = 0, crashes = 0;
  std::array<KindTally, static_cast<std::size_t>(MsgKind::kCount)> kinds{};
  for (const RoundRecord& r : rounds_) {
    bytes += r.bytes_sent;
    msgs += r.msgs_sent;
    wall += r.wall_ns;
    dropped += r.dropped;
    delayed += r.delayed;
    crashes += r.crashes;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      kinds[k].msgs += r.kinds[k].msgs;
      kinds[k].bytes += r.kinds[k].bytes;
    }
  }
  Json totals = Json::object();
  totals.set("bytes_sent", bytes);
  totals.set("msgs_sent", msgs);
  totals.set("wall_ns", wall);
  totals.set("dropped", dropped);
  totals.set("delayed", delayed);
  totals.set("crashes", crashes);
  totals.set("kinds", kinds_json(kinds));
  out.set("totals", std::move(totals));

  Json phases = Json::array();
  for (const PhaseTotal& p : phase_totals()) {
    Json j = Json::object();
    j.set("name", p.name);
    j.set("start", p.start);
    j.set("rounds", p.rounds);
    j.set("wall_ns", p.wall_ns);
    j.set("msgs_sent", p.msgs_sent);
    j.set("bytes_sent", p.bytes_sent);
    j.set("kinds", kinds_json(p.kinds));
    phases.push_back(std::move(j));
  }
  out.set("phases", std::move(phases));

  Json spans = Json::array();
  for (const Span& s : spans_) {
    Json j = Json::object();
    j.set("name", s.name);
    j.set("wall_ns", s.wall_ns);
    spans.push_back(std::move(j));
  }
  out.set("spans", std::move(spans));

  if (per_round) {
    Json rounds = Json::array();
    for (const RoundRecord& r : rounds_) {
      Json j = Json::object();
      j.set("round", r.round);
      j.set("wall_ns", r.wall_ns);
      j.set("msgs_sent", r.msgs_sent);
      j.set("bytes_sent", r.bytes_sent);
      j.set("msgs_delivered", r.msgs_delivered);
      j.set("bytes_delivered", r.bytes_delivered);
      j.set("dropped", r.dropped);
      j.set("delayed", r.delayed);
      j.set("crashes", r.crashes);
      j.set("kinds", kinds_json(r.kinds));
      rounds.push_back(std::move(j));
    }
    out.set("per_round", std::move(rounds));
  }
  return out;
}

Json RoundTracer::chrome_trace() const {
  // Round r spans trace time [r, r+1) ms; ts/dur are microseconds.
  constexpr std::uint64_t kRoundUs = 1000;
  Json events = Json::array();

  auto meta = [&](int tid, const char* what, const char* name) {
    Json e = Json::object();
    e.set("name", what);
    e.set("ph", "M");
    e.set("pid", 1);
    e.set("tid", tid);
    Json args = Json::object();
    args.set("name", name);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  };
  meta(1, "thread_name", "phases");
  meta(2, "thread_name", "rounds");

  const std::size_t end = std::max(rounds_run_, rounds_.size());
  for (const PhaseTotal& p : phase_totals()) {
    if (p.rounds == 0) continue;
    Json e = Json::object();
    e.set("name", p.name);
    e.set("cat", "phase");
    e.set("ph", "X");
    e.set("ts", static_cast<std::uint64_t>(p.start) * kRoundUs);
    e.set("dur", static_cast<std::uint64_t>(p.rounds) * kRoundUs);
    e.set("pid", 1);
    e.set("tid", 1);
    Json args = Json::object();
    args.set("bytes_sent", p.bytes_sent);
    args.set("msgs_sent", p.msgs_sent);
    args.set("wall_ns", p.wall_ns);
    args.set("kinds", kinds_json(p.kinds));
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  }

  for (const RoundRecord& r : rounds_) {
    if (r.round >= end) break;
    Json e = Json::object();
    e.set("name", "round " + std::to_string(r.round));
    e.set("cat", "round");
    e.set("ph", "X");
    e.set("ts", static_cast<std::uint64_t>(r.round) * kRoundUs);
    e.set("dur", kRoundUs);
    e.set("pid", 1);
    e.set("tid", 2);
    Json args = Json::object();
    args.set("wall_ns", r.wall_ns);
    args.set("msgs_sent", r.msgs_sent);
    args.set("bytes_sent", r.bytes_sent);
    args.set("dropped", r.dropped);
    args.set("delayed", r.delayed);
    args.set("crashes", r.crashes);
    args.set("kinds", kinds_json(r.kinds));
    e.set("args", std::move(args));
    events.push_back(std::move(e));

    Json c = Json::object();
    c.set("name", "bytes_sent");
    c.set("ph", "C");
    c.set("ts", static_cast<std::uint64_t>(r.round) * kRoundUs);
    c.set("pid", 1);
    Json cargs = Json::object();
    cargs.set("bytes", r.bytes_sent);
    c.set("args", std::move(cargs));
    events.push_back(std::move(c));
  }

  // Off-network spans render before round 0 on their own track.
  if (!spans_.empty()) {
    meta(3, "thread_name", "setup");
    std::uint64_t ts = 0;
    for (const Span& s : spans_) {
      Json e = Json::object();
      e.set("name", s.name);
      e.set("cat", "setup");
      e.set("ph", "X");
      e.set("ts", ts);
      e.set("dur", std::max<std::uint64_t>(s.wall_ns / 1000, 1));
      e.set("pid", 1);
      e.set("tid", 3);
      Json args = Json::object();
      args.set("wall_ns", s.wall_ns);
      e.set("args", std::move(args));
      events.push_back(std::move(e));
      ts += std::max<std::uint64_t>(s.wall_ns / 1000, 1);
    }
  }

  // Profiling flame track: one duration slice per hot prof site, laid out
  // end to end in recorded-time proportion. Only present when profiling is
  // on, so deterministic-trace comparisons (prof off) are unaffected.
  if (prof_enabled()) {
    bool titled = false;
    std::uint64_t ts = 0;
    for (std::size_t i = 0; i < kProfSiteCount; ++i) {
      const ProfSite& site = prof_site(static_cast<ProfSiteId>(i));
      const std::uint64_t count = site.count();
      if (count == 0) continue;
      if (!titled) {
        meta(4, "thread_name", "prof");
        titled = true;
      }
      Json e = Json::object();
      e.set("name", prof_site_name(static_cast<ProfSiteId>(i)));
      e.set("cat", "prof");
      e.set("ph", "X");
      e.set("ts", ts);
      const std::uint64_t dur = std::max<std::uint64_t>(site.total_ns() / 1000, 1);
      e.set("dur", dur);
      e.set("pid", 1);
      e.set("tid", 4);
      Json args = Json::object();
      args.set("count", count);
      args.set("total_ns", site.total_ns());
      args.set("mean_ns", site.total_ns() / count);
      args.set("min_ns", site.min_ns());
      args.set("max_ns", site.max_ns());
      e.set("args", std::move(args));
      events.push_back(std::move(e));
      ts += dur;
    }
  }

  Json out = Json::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", "ms");
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  // CI points artifact writers (BENCH_/TRACE_/PROF_ json) at not-yet-existing
  // directories; create missing parents instead of failing the write.
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace srds::obs

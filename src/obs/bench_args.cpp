#include "obs/bench_args.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/prof.hpp"

namespace srds::bench {

namespace {

bool g_quiet = false;

[[noreturn]] void usage(const char* prog, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s [--n-list N1,N2,...] [--seed S] [--json-out DIR | --no-json]\n"
               "          [--quiet] [--strict-budgets] [--repeats K] [--prof]\n"
               "  --n-list   override the sweep sizes (comma-separated)\n"
               "  --seed     override the base RNG seed\n"
               "  --json-out directory for BENCH_*.json artifacts (default: .)\n"
               "  --no-json  do not write JSON artifacts\n"
               "  --quiet    suppress the text tables\n"
               "  --strict-budgets  abort (exit 3) on a communication-budget violation\n"
               "  --repeats  timed repeats per row; rows report median wall ns/op + spread\n"
               "  --prof     enable the profiling layer (prof block in the artifact)\n",
               prog);
  std::exit(code);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  if (!*s) return false;
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end && *end == '\0';
}

bool parse_n_list(const char* s, std::vector<std::size_t>& out) {
  out.clear();
  std::string token;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      std::uint64_t v;
      if (!parse_u64(token.c_str(), v) || v == 0) return false;
      out.push_back(static_cast<std::size_t>(v));
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return !out.empty();
}

}  // namespace

bool quiet() { return g_quiet; }
void set_quiet(bool q) { g_quiet = q; }

Args Args::parse(int& argc, char** argv) {
  Args args;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(argv[0], 0);
    } else if (std::strcmp(a, "--n-list") == 0) {
      if (!parse_n_list(value("--n-list"), args.n_list)) {
        std::fprintf(stderr, "%s: bad --n-list (want comma-separated sizes)\n", argv[0]);
        std::exit(2);
      }
    } else if (std::strcmp(a, "--seed") == 0) {
      if (!parse_u64(value("--seed"), args.seed) || args.seed == 0) {
        std::fprintf(stderr, "%s: bad --seed (want a positive integer)\n", argv[0]);
        std::exit(2);
      }
    } else if (std::strcmp(a, "--json-out") == 0) {
      args.json_out = value("--json-out");
    } else if (std::strcmp(a, "--no-json") == 0) {
      args.json_out.clear();
    } else if (std::strcmp(a, "--quiet") == 0) {
      args.quiet = true;
    } else if (std::strcmp(a, "--strict-budgets") == 0) {
      args.strict_budgets = true;
    } else if (std::strcmp(a, "--repeats") == 0) {
      std::uint64_t k = 0;
      if (!parse_u64(value("--repeats"), k) || k == 0) {
        std::fprintf(stderr, "%s: bad --repeats (want a positive integer)\n", argv[0]);
        std::exit(2);
      }
      args.repeats = static_cast<std::size_t>(k);
    } else if (std::strcmp(a, "--prof") == 0) {
      args.prof = true;
    } else {
      argv[out++] = argv[i];  // unknown: leave for the caller's parser
    }
  }
  argc = out;
  argv[argc] = nullptr;
  set_quiet(args.quiet);
  obs::prof_set_enabled(args.prof);
  return args;
}

}  // namespace srds::bench

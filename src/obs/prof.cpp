#include "obs/prof.hpp"

#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace srds::obs {

namespace {

// The static site table. File-scope mutable state is confined to this TU:
// everything outside reaches it through prof_site()/prof_enabled(), which
// are the declared traversal boundaries in tools/srds-lint/shard_roots.toml.
ProfSite g_prof_sites[kProfSiteCount];

// Default (seq_cst) ordering: read once per PROF_SCOPE, not per event, and
// flipping it wants to be promptly visible to every thread.
std::atomic<bool> g_prof_enabled{false};

constexpr const char* kProfSiteNames[kProfSiteCount] = {
    "sim/round",
    "sim/round/party_step",
    "sim/round/deliver",
    "crypto/sha256",
    "crypto/merkle/build",
    "crypto/merkle/verify",
    "crypto/lamport/sign",
    "crypto/lamport/verify",
    "srds/sign",
    "srds/aggregate1",
    "srds/aggregate2",
    "srds/verify",
    "srds/serialize",
    "srds/deserialize",
    "svc/frame/decode",
    "svc/pipeline/step",
    "svc/daemon/step",
};

struct NamedSite {
  std::string name;
  // Heap-allocated so handles stay stable while the deque grows (atomics
  // are not movable anyway); same shape as Registry's metric entries.
  std::unique_ptr<ProfSite> site;
};

std::mutex g_named_mu;
std::deque<NamedSite> g_named_sites;  // every access below holds g_named_mu

// Same bucketing as obs::Histogram::bucket_of — log2, bucket 0 takes {0,1}.
std::size_t bucket_of_ns(std::uint64_t v) {
  std::size_t b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

void site_json(Json& arr, const std::string& name, const ProfSite& s) {
  const std::uint64_t c = s.count();
  if (c == 0) return;
  Json j = Json::object();
  j.set("name", name);
  j.set("count", static_cast<long long>(c));
  j.set("total_ns", static_cast<long long>(s.total_ns()));
  j.set("mean_ns", static_cast<double>(s.total_ns()) / static_cast<double>(c));
  j.set("min_ns", static_cast<long long>(s.min_ns()));
  j.set("max_ns", static_cast<long long>(s.max_ns()));
  Json buckets = Json::object();
  for (std::size_t b = 0; b < ProfSite::kBuckets; ++b) {
    const std::uint64_t n = s.bucket(b);
    if (n) buckets.set("2^" + std::to_string(b), static_cast<long long>(n));
  }
  j.set("buckets", std::move(buckets));
  arr.push_back(std::move(j));
}

}  // namespace

const char* prof_site_name(ProfSiteId id) {
  return kProfSiteNames[static_cast<std::size_t>(id)];
}

// srds-lint: hotpath(ProfSite::record_ns)
void ProfSite::record_ns(std::uint64_t ns) {
  // Shard by thread hash: single-threaded runs always hit shard 0's line,
  // concurrent recorders mostly avoid each other's.
  const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  shards_[shard].count.fetch_add(1, std::memory_order_relaxed);
  shards_[shard].total_ns.fetch_add(ns, std::memory_order_relaxed);
  buckets_[bucket_of_ns(ns)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t ProfSite::count() const {
  std::uint64_t c = 0;
  for (const Shard& s : shards_) c += s.count.load(std::memory_order_relaxed);
  return c;
}

std::uint64_t ProfSite::total_ns() const {
  std::uint64_t t = 0;
  for (const Shard& s : shards_) t += s.total_ns.load(std::memory_order_relaxed);
  return t;
}

void ProfSite::reset() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
  }
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

ProfSite& prof_site(ProfSiteId id) {
  return g_prof_sites[static_cast<std::size_t>(id)];
}

ProfSite& prof_site_named(const std::string& name) {
  std::lock_guard<std::mutex> lk(g_named_mu);
  for (NamedSite& e : g_named_sites) {
    if (e.name == name) return *e.site;
  }
  g_named_sites.push_back({name, std::make_unique<ProfSite>()});
  return *g_named_sites.back().site;
}

bool prof_enabled() { return g_prof_enabled.load(); }

void prof_set_enabled(bool on) { g_prof_enabled.store(on); }

void prof_reset() {
  for (ProfSite& s : g_prof_sites) s.reset();
  std::lock_guard<std::mutex> lk(g_named_mu);
  for (NamedSite& e : g_named_sites) e.site->reset();
}

Json prof_to_json() {
  Json sites = Json::array();
  for (std::size_t i = 0; i < kProfSiteCount; ++i) {
    site_json(sites, kProfSiteNames[i], g_prof_sites[i]);
  }
  {
    std::lock_guard<std::mutex> lk(g_named_mu);
    for (const NamedSite& e : g_named_sites) site_json(sites, e.name, *e.site);
  }
  Json out = Json::object();
  out.set("sites", std::move(sites));
  return out;
}

// srds-lint: hotpath(ProfTimer::finish)
void ProfTimer::finish() {
  const std::int64_t now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const std::int64_t delta = now - start_ns_;
  site_->record_ns(delta > 0 ? static_cast<std::uint64_t>(delta) : 0);
}

// -- Hardware counters ------------------------------------------------------

Json ProfHwCounters::to_json() const {
  Json j = Json::object();
  j.set("available", available);
  if (available) {
    j.set("cycles", static_cast<long long>(cycles));
    j.set("instructions", static_cast<long long>(instructions));
    j.set("cache_misses", static_cast<long long>(cache_misses));
  }
  return j;
}

#if defined(__linux__)

namespace {

int open_counter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          group_fd, /*flags=*/0UL);
  return static_cast<int>(fd);
}

std::uint64_t read_counter(int fd) {
  if (fd < 0) return 0;
  std::uint64_t v = 0;
  if (::read(fd, &v, sizeof(v)) != static_cast<ssize_t>(sizeof(v))) return 0;
  return v;
}

}  // namespace

ProfHwSession::ProfHwSession() {
  // Cycles is the group leader; if the container forbids perf_event (the
  // common CI case: EACCES/EPERM, or ENOSYS under seccomp) every fd stays
  // -1 and the session reports unavailable instead of failing the run.
  fds_[0] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fds_[0] >= 0) {
    fds_[1] =
        open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, fds_[0]);
    fds_[2] =
        open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, fds_[0]);
  }
}

ProfHwSession::~ProfHwSession() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void ProfHwSession::start() {
  for (int fd : fds_) {
    if (fd >= 0) ::ioctl(fd, PERF_EVENT_IOC_RESET, 0);
  }
  for (int fd : fds_) {
    if (fd >= 0) ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void ProfHwSession::stop() {
  for (int fd : fds_) {
    if (fd >= 0) ::ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
}

ProfHwCounters ProfHwSession::read() const {
  ProfHwCounters c;
  if (!available()) return c;
  c.available = true;
  c.cycles = read_counter(fds_[0]);
  c.instructions = read_counter(fds_[1]);
  c.cache_misses = read_counter(fds_[2]);
  return c;
}

#else  // !__linux__

ProfHwSession::ProfHwSession() {}
ProfHwSession::~ProfHwSession() {}
void ProfHwSession::start() {}
void ProfHwSession::stop() {}
ProfHwCounters ProfHwSession::read() const { return ProfHwCounters{}; }

#endif

}  // namespace srds::obs

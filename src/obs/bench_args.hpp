// bench::Args — the shared CLI surface of every bench binary, replacing
// per-binary hardcoded parameter lists:
//
//   --n-list 64,128,256   override the binary's default sweep sizes
//   --seed S              override the binary's default base seed
//   --json-out DIR        directory for BENCH_*.json artifacts (default ".")
//   --no-json             disable JSON artifacts
//   --quiet               suppress the fixed-width text tables
//   --strict-budgets      hard-fail when a declared communication budget is
//                         violated (simulator-driven benches only)
//   --repeats K           run each measured row K times; rows report the
//                         median wall ns/op and the relative spread
//   --prof                enable the obs profiling layer (PROF_SCOPE sites;
//                         adds a `prof` block to the JSON artifact)
//   --help                usage
//
// `parse` consumes the flags it recognizes and compacts argv, so binaries
// with their own flag parser downstream (the google-benchmark micro
// suites) can hand the remainder over untouched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace srds::bench {

struct Args {
  std::vector<std::size_t> n_list;  // empty = binary default
  std::uint64_t seed = 0;           // 0 = binary default
  std::string json_out = ".";       // artifact directory; empty = disabled
  bool quiet = false;
  bool strict_budgets = false;      // violations abort the binary (exit 3)
  std::size_t repeats = 1;          // timed repeats per row (median reported)
  bool prof = false;                // enable PROF_SCOPE + `prof` JSON block

  /// Parse known flags out of argv (argc/argv are rewritten in place to the
  /// unconsumed remainder). Prints usage and exits on --help; prints an
  /// error and exits(2) on a malformed value for a known flag. Unknown
  /// flags are left in argv for the caller.
  static Args parse(int& argc, char** argv);

  bool json_enabled() const { return !json_out.empty(); }

  /// The sweep sizes: --n-list if given, otherwise the binary's defaults.
  std::vector<std::size_t> sizes(std::vector<std::size_t> defaults) const {
    return n_list.empty() ? std::move(defaults) : n_list;
  }

  /// Single-n convenience: first --n-list entry, or the default.
  std::size_t n_or(std::size_t def) const { return n_list.empty() ? def : n_list.front(); }

  std::uint64_t seed_or(std::uint64_t def) const { return seed == 0 ? def : seed; }
};

/// Global quiet flag consulted by the table printers in bench_util.hpp;
/// set by Args::parse.
bool quiet();
void set_quiet(bool q);

}  // namespace srds::bench

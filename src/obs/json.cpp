#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace srds::obs {

Json& Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::logic_error("Json::push_back on non-array");
  array_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::logic_error("Json::set on non-object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::escape(const std::string& s, std::string& out) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

namespace {

void append_double(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) {
    out += "null";
    return;
  }
  out.append(buf, ptr);
}

void newline_indent(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kUint:
      out += std::to_string(uint_);
      break;
    case Type::kDouble:
      append_double(double_, out);
      break;
    case Type::kString:
      escape(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out.push_back(',');
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out.push_back(',');
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        escape(object_[i].first, out);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        object_[i].second.write(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

bool Json::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const {
  switch (type_) {
    case Type::kInt: return int_;
    case Type::kUint: return static_cast<std::int64_t>(uint_);
    case Type::kDouble: return static_cast<std::int64_t>(double_);
    default: return fallback;
  }
}

std::uint64_t Json::as_uint(std::uint64_t fallback) const {
  switch (type_) {
    case Type::kInt: return int_ < 0 ? fallback : static_cast<std::uint64_t>(int_);
    case Type::kUint: return uint_;
    case Type::kDouble: return double_ < 0 ? fallback : static_cast<std::uint64_t>(double_);
    default: return fallback;
  }
}

double Json::as_double(double fallback) const {
  switch (type_) {
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kDouble: return double_;
    default: return fallback;
  }
}

namespace {

// Recursive-descent parser for standard JSON. Numbers without '.', 'e', or
// a leading '-' land in kUint (then kInt when negative), matching how the
// writer partitions the numeric kinds, so parse(dump(x)) preserves types.
class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  bool run(Json& out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool fail(const std::string& what) {
    if (err_ && err_->empty()) {
      *err_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char want) {
    if (pos_ < text_.size() && text_[pos_] == want) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= text_.size()) return fail("truncated \\u escape");
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad hex digit in \\u escape");
            }
            // UTF-8 encode the code point (surrogate pairs are not combined;
            // the writer only emits \u for control characters < 0x20).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("bad escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool number(Json& out) {
    const std::size_t start = pos_;
    const bool negative = consume('-');
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start + (negative ? 1u : 0u)) return fail("expected digits");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      if (negative) {
        std::int64_t v = 0;
        if (std::from_chars(first, last, v).ec == std::errc()) {
          out = Json(v);
          return true;
        }
      } else {
        std::uint64_t v = 0;
        if (std::from_chars(first, last, v).ec == std::errc()) {
          out = Json(v);
          return true;
        }
      }
      // Out-of-range integer: fall back to double below.
    }
    double v = 0;
    if (std::from_chars(first, last, v).ec != std::errc()) {
      return fail("malformed number");
    }
    out = Json(v);
    return true;
  }

  bool value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (literal("null")) {
          out = Json(nullptr);
          return true;
        }
        return fail("expected 'null'");
      case 't':
        if (literal("true")) {
          out = Json(true);
          return true;
        }
        return fail("expected 'true'");
      case 'f':
        if (literal("false")) {
          out = Json(false);
          return true;
        }
        return fail("expected 'false'");
      case '"': {
        std::string s;
        if (!string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        out = Json::array();
        skip_ws();
        if (consume(']')) return true;
        while (true) {
          Json elem;
          skip_ws();
          if (!value(elem, depth + 1)) return false;
          out.push_back(std::move(elem));
          skip_ws();
          if (consume(']')) return true;
          if (!consume(',')) return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        out = Json::object();
        skip_ws();
        if (consume('}')) return true;
        while (true) {
          skip_ws();
          std::string key;
          if (!string(key)) return false;
          skip_ws();
          if (!consume(':')) return fail("expected ':'");
          Json elem;
          skip_ws();
          if (!value(elem, depth + 1)) return false;
          out.set(key, std::move(elem));
          skip_ws();
          if (consume('}')) return true;
          if (!consume(',')) return fail("expected ',' or '}'");
        }
      }
      default:
        return number(out);
    }
  }

  std::string_view text_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::parse(std::string_view text, Json& out, std::string* err) {
  if (err) err->clear();
  Parser p(text, err);
  Json parsed;
  if (!p.run(parsed)) {
    if (err && err->empty()) *err = "malformed JSON";
    return false;
  }
  out = std::move(parsed);
  return true;
}

}  // namespace srds::obs

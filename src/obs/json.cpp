#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace srds::obs {

Json& Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::logic_error("Json::push_back on non-array");
  array_.push_back(std::move(v));
  return *this;
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::logic_error("Json::set on non-object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::escape(const std::string& s, std::string& out) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

namespace {

void append_double(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) {
    out += "null";
    return;
  }
  out.append(buf, ptr);
}

void newline_indent(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::write(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kUint:
      out += std::to_string(uint_);
      break;
    case Type::kDouble:
      append_double(double_, out);
      break;
    case Type::kString:
      escape(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out.push_back(',');
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        array_[i].write(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out.push_back(',');
        if (indent >= 0) newline_indent(out, indent, depth + 1);
        escape(object_[i].first, out);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        object_[i].second.write(out, indent, depth + 1);
      }
      if (indent >= 0) newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace srds::obs

#include "obs/budget.hpp"

#include <cmath>

namespace srds::obs {

double Budget::bound_bits(std::size_t n) const {
  const double nn = static_cast<double>(n < 2 ? 2 : n);
  const double lg = std::log2(nn);
  double bound = c;
  for (int i = 0; i < k; ++i) bound *= lg;
  if (n_exp != 0) bound *= std::pow(nn, n_exp);
  return bound;
}

Json Budget::to_json() const {
  Json j = Json::object();
  j.set("c", c);
  j.set("k", k);
  if (n_exp != 0) j.set("n_exp", n_exp);
  if (min_n != 0) j.set("min_n", min_n);
  return j;
}

Json BudgetEval::to_json() const {
  Json j = Json::object();
  j.set("protocol", protocol);
  j.set("phase", phase.empty() ? std::string("<run>") : phase);
  j.set("budget", budget.to_json());
  j.set("n", n);
  if (skipped) {
    j.set("skipped", true);
    j.set("skip_reason", skip_reason);
    return j;
  }
  j.set("bound_bits", bound_bits);
  j.set("max_bits", max_bits);
  j.set("worst_party", worst_party);
  j.set("violators", violators);
  j.set("audited", audited);
  j.set("ok", ok);
  return j;
}

void BudgetAuditor::require(std::string protocol, std::string phase, Budget budget) {
  reqs_.push_back(Requirement{std::move(protocol), std::move(phase), budget});
}

std::vector<BudgetEval> BudgetAuditor::evaluate(const Ledger& ledger,
                                                const std::vector<bool>* exclude) const {
  std::vector<BudgetEval> out;
  out.reserve(reqs_.size());
  const std::size_t n = ledger.n_parties();
  for (const Requirement& r : reqs_) {
    BudgetEval e;
    e.protocol = r.protocol;
    e.phase = r.phase;
    e.budget = r.budget;
    e.n = n;
    if (!r.budget.applicable(n)) {
      e.skipped = true;
      e.skip_reason = "n below the budget's validity floor";
      out.push_back(std::move(e));
      continue;
    }
    std::size_t phase = Ledger::kAllPhases;
    if (!r.phase.empty()) {
      phase = ledger.phase_index(r.phase);
      if (phase == Ledger::kAllPhases) {
        e.skipped = true;
        e.skip_reason = "phase not present in the ledger";
        out.push_back(std::move(e));
        continue;
      }
    }
    e.bound_bits = r.budget.bound_bits(n);
    for (PartyId i = 0; i < n; ++i) {
      if (exclude && i < exclude->size() && (*exclude)[i]) continue;
      const PartyTally& t = phase == Ledger::kAllPhases ? ledger.total(i)
                                                        : ledger.phase_total(phase, i);
      const std::uint64_t bits = 8 * t.bytes_total();
      ++e.audited;
      if (bits > e.max_bits) {
        e.max_bits = bits;
        e.worst_party = i;
      }
      if (static_cast<double>(bits) > e.bound_bits) ++e.violators;
    }
    e.ok = e.violators == 0;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<BudgetEval> BudgetAuditor::audit(const Ledger& ledger,
                                             const std::vector<bool>* exclude) const {
  std::vector<BudgetEval> findings;
  for (BudgetEval& e : evaluate(ledger, exclude)) {
    if (!e.skipped && !e.ok) findings.push_back(std::move(e));
  }
  return findings;
}

Json BudgetAuditor::to_json(const std::vector<BudgetEval>& evals) {
  Json arr = Json::array();
  for (const BudgetEval& e : evals) arr.push_back(e.to_json());
  return arr;
}

}  // namespace srds::obs

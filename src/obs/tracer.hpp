// RoundTracer — the standard TraceSink: per-round wall-clock, byte,
// message, fault and message-kind accounting, segmented into protocol
// phases, exportable both as structured JSON and as Chrome trace_event
// JSON loadable in chrome://tracing (or https://ui.perfetto.dev).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace srds::obs {

/// Bytes/message tally for one message kind.
struct KindTally {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
};

struct RoundRecord {
  std::size_t round = 0;
  std::uint64_t wall_ns = 0;       // party logic + delivery work this round
  std::uint64_t msgs_sent = 0;     // accepted from senders
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_delivered = 0;  // reached a receiver (incl. dup/late)
  std::uint64_t bytes_delivered = 0;
  std::uint64_t dropped = 0;       // drop + partition losses
  std::uint64_t delayed = 0;
  std::uint64_t crashes = 0;
  std::array<KindTally, static_cast<std::size_t>(MsgKind::kCount)> kinds{};
};

/// Totals for one protocol phase (rounds [start, start+rounds)).
struct PhaseTotal {
  std::string name;
  std::size_t start = 0;
  std::size_t rounds = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::array<KindTally, static_cast<std::size_t>(MsgKind::kCount)> kinds{};
};

class RoundTracer final : public TraceSink {
 public:
  void on_run_begin(std::size_t n_parties) override;
  void on_round_begin(std::size_t round) override;
  void on_send(std::size_t round, const Message& m) override;
  void on_delivery(std::size_t round, const Message& m, Delivery outcome) override;
  void on_crash(std::size_t round, PartyId party) override;
  void on_round_end(std::size_t round) override;
  void on_run_end(std::size_t rounds) override;
  void on_phase(std::size_t start_round, const std::string& name) override;
  void on_span(const std::string& name, std::uint64_t wall_ns) override;

  std::size_t n_parties() const { return n_parties_; }
  std::size_t rounds_run() const { return rounds_run_; }
  const std::vector<RoundRecord>& rounds() const { return rounds_; }

  /// Rounds grouped under the phase marks (in mark order; rounds before the
  /// first mark fall into an implicit "pre" phase). Empty phases included.
  std::vector<PhaseTotal> phase_totals() const;

  /// Structured summary: {n, rounds, totals{...}, phases:[...], spans:[...],
  /// per_round:[...]}. Deterministic for a deterministic run *except* the
  /// wall_ns fields.
  Json to_json(bool per_round = true) const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}). The timeline is the
  /// round axis (1 round = 1ms of trace time) so identical runs line up
  /// exactly; measured wall-clock is attached as event args. Phases render
  /// as one track, rounds as another, per-round bytes as counter series.
  Json chrome_trace() const;

  /// Reset to a fresh tracer (run accumulation starts over; phase marks
  /// and spans are cleared too).
  void clear();

 private:
  RoundRecord& at(std::size_t round);

  struct Mark {
    std::size_t round;
    std::string name;
  };
  struct Span {
    std::string name;
    std::uint64_t wall_ns;
  };

  // Trace accumulation is owned by the simulator loop that drives the sink
  // callbacks; a sharded simulator must give each worker its own tracer (or
  // funnel events through a queue) rather than share this one. srds-lint
  // rule C3 enforces the claim against the C1 shard-reachable surface.
  std::size_t n_parties_ = 0;  // srds-lint: confined(sim-loop)
  std::size_t rounds_run_ = 0;  // srds-lint: confined(sim-loop)
  std::vector<RoundRecord> rounds_;  // srds-lint: confined(sim-loop)
  std::vector<Mark> marks_;  // srds-lint: confined(sim-loop)
  std::vector<Span> spans_;  // srds-lint: confined(sim-loop)
  std::chrono::steady_clock::time_point round_start_{};
};

/// Write `text` to `path`; false on I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace srds::obs

// obs::Budget / obs::BudgetAuditor — executable complexity claims.
//
// Every protocol row in Table 1 comes with an asymptotic per-party
// communication bound (Õ(1) for the SRDS boosts, Õ(√n) for sampling, Θ(n)
// for naive/BGT'13/star). The auditor turns those Theorem-level statements
// into assertions that run on every traced execution: a protocol registers
// a declarative Budget for each phase it owns, the auditor evaluates the
// Ledger's per-party bit counts against the bound, and violations surface
// as structured findings — recorded into the BENCH_*.json artifacts, and
// fatal under `--strict-budgets`.
//
// A Budget bounds bits := 8 * (bytes_sent + bytes_recv) per audited party:
//
//   bound_bits(n) = c * log2(n)^k * n^n_exp
//
// with n_exp = 0 the paper's polylog claim, 1 a Θ(n) claim, 0.5 a Θ(√n)
// claim. `min_n` is the claim's validity floor: below it the bound is not
// audited (committee sizes are ceil(log)-quantized, so at small n the
// additive committee constants dominate every asymptotic separation — the
// measured crossover between the SRDS rows and BGT'13 sits near n = 2048).
// Skipped audits are reported as evaluations with `skipped = true`, never
// silently dropped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/ledger.hpp"

namespace srds::obs {

struct Budget {
  double c = 0;          // leading constant, in bits
  int k = 0;             // polylog exponent (log2(n)^k)
  double n_exp = 0;      // polynomial exponent (n^n_exp); 0 = pure polylog
  std::size_t min_n = 0; // validity floor; audits below it are skipped

  /// The bound in bits for a system of n parties.
  double bound_bits(std::size_t n) const;
  bool applicable(std::size_t n) const { return n >= min_n; }

  Json to_json() const;
};

/// One evaluated (protocol, phase, budget) registration. `ok` is only
/// meaningful when `skipped` is false; a *finding* is an evaluation with
/// skipped == false && ok == false.
struct BudgetEval {
  std::string protocol;
  std::string phase;          // "" = whole-run totals
  Budget budget;
  std::size_t n = 0;
  double bound_bits = 0;
  std::uint64_t max_bits = 0; // worst audited party's sent+received bits
  PartyId worst_party = 0;
  std::uint64_t violators = 0;  // audited parties over the bound
  std::size_t audited = 0;      // parties the audit ranged over
  bool ok = false;
  bool skipped = false;       // n below the budget's validity floor, or
                              // the phase never appeared in the ledger
  std::string skip_reason;

  Json to_json() const;
};

class BudgetAuditor {
 public:
  /// Register a claim: `protocol` labels the registrant, `phase` names the
  /// ledger phase the bound covers ("" = the whole run).
  void require(std::string protocol, std::string phase, Budget budget);

  bool empty() const { return reqs_.empty(); }
  std::size_t size() const { return reqs_.size(); }

  /// Evaluate every registered claim against the ledger. Parties with
  /// exclude[i] == true are left out (corrupted parties — the paper's
  /// bounds quantify over honest parties); nullptr audits everyone.
  std::vector<BudgetEval> evaluate(const Ledger& ledger,
                                   const std::vector<bool>* exclude = nullptr) const;

  /// The violations only (evaluations that ran and failed).
  std::vector<BudgetEval> audit(const Ledger& ledger,
                                const std::vector<bool>* exclude = nullptr) const;

  /// JSON array of evaluations (one object per registration, in
  /// registration order) — the bench artifacts' "budgets" block.
  static Json to_json(const std::vector<BudgetEval>& evals);

 private:
  struct Requirement {
    std::string protocol;
    std::string phase;
    Budget budget;
  };
  std::vector<Requirement> reqs_;
};

}  // namespace srds::obs

// Allocation accounting, promoted out of bench/micro_main.hpp so any
// binary — micro suite, figure bench, or the svc daemon — can report
// allocs/op next to ns/op. Allocation-free hot paths are a contract here
// (srds-lint rule P1); linking the hooks is how the contract is *measured*
// rather than pattern-matched.
//
// Linkage model: the counting replacement operator new/delete live in
// alloc_hooks.cpp, built as the CMake OBJECT library `srds_alloc_hooks` —
// object files always reach the link, so the replacement is one strong,
// non-inline definition per binary (replacement allocation functions must
// not be inline or duplicated). Binaries that do NOT link the object
// library get the [[gnu::weak]] fallbacks in alloc_hooks_stub.cpp:
// alloc_ops() pins at 0 and alloc_hooks_active() reports false, so callers
// can always link against srds_obs and branch on activity at runtime.
#pragma once

#include <cstdint>

namespace srds::obs {

/// Allocations observed process-wide since startup (all threads). Always 0
/// when the counting hooks are not linked into this binary.
std::uint64_t alloc_ops();

/// True iff the counting replacement operator new/delete from
/// alloc_hooks.cpp are linked into this binary.
bool alloc_hooks_active();

}  // namespace srds::obs

#include "mpc/fhe.hpp"

#include <set>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/hmac.hpp"

namespace srds {

Bytes Ciphertext::serialize() const {
  Writer w;
  w.raw(id.view());
  w.raw(tag.view());
  return std::move(w).take();
}

bool Ciphertext::deserialize(BytesView data, Ciphertext& out) {
  Reader r(data);
  Bytes id_raw = r.raw(32);
  Bytes tag_raw = r.raw(32);
  if (!r.done()) return false;
  out.id = Digest::from(id_raw);
  out.tag = Digest::from(tag_raw);
  return true;
}

std::shared_ptr<FheOracle> FheOracle::create(std::uint64_t seed, std::size_t threshold) {
  return std::shared_ptr<FheOracle>(new FheOracle(seed, threshold));
}

FheOracle::FheOracle(std::uint64_t seed, std::size_t threshold) : threshold_(threshold) {
  Rng rng(seed ^ 0x6668652d6f7261ULL);
  key_ = rng.bytes(32);
}

Digest FheOracle::tag_for(const Digest& id) const { return hmac_sha256(key_, id.view()); }

Ciphertext FheOracle::encrypt(std::uint64_t plaintext) {
  Writer w;
  w.u64(counter_++);
  w.u64(plaintext);
  Digest id = hmac_sha256(key_, concat(to_bytes("ct-id"), w.data()));
  plaintexts_[id] = plaintext;
  return Ciphertext{id, tag_for(id)};
}

bool FheOracle::valid(const Ciphertext& c) const {
  return plaintexts_.count(c.id) > 0 && tag_for(c.id) == c.tag;
}

std::optional<Ciphertext> FheOracle::add(const Ciphertext& a, const Ciphertext& b) {
  if (!valid(a) || !valid(b)) return std::nullopt;
  // Deterministic in the operand handles: every party evaluating the same
  // homomorphic circuit over the same ciphertexts derives the *same* output
  // handle, so committee members' results can be compared/majority-voted.
  // (Real FHE achieves the same by agreeing on evaluation randomness.)
  Digest id = hmac_sha256(key_, concat(to_bytes("ct-add"), a.id.to_bytes(),
                                       b.id.to_bytes()));
  plaintexts_[id] = plaintexts_[a.id] + plaintexts_[b.id];
  return Ciphertext{id, tag_for(id)};
}

std::optional<Ciphertext> FheOracle::mul_const(const Ciphertext& a, std::uint64_t k) {
  if (!valid(a)) return std::nullopt;
  Writer w;
  w.u64(k);
  Digest id = hmac_sha256(key_, concat(to_bytes("ct-mul"), a.id.to_bytes(), w.data()));
  plaintexts_[id] = plaintexts_[a.id] * k;
  return Ciphertext{id, tag_for(id)};
}

DecryptionShare FheOracle::issue_share(std::size_t holder) {
  return DecryptionShare(shared_from_this(), holder);
}

std::optional<std::uint64_t> FheOracle::decrypt(
    const Ciphertext& c, const std::vector<DecryptionShare>& shares) const {
  if (!valid(c)) return std::nullopt;
  std::set<std::size_t> holders;
  for (const auto& s : shares) {
    if (s.oracle_.get() == this) holders.insert(s.holder());
  }
  if (holders.size() < threshold_) return std::nullopt;
  return plaintexts_.at(c.id);
}

}  // namespace srds

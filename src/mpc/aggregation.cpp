#include "mpc/aggregation.hpp"

namespace srds {

// srds-lint: hotpath(node_range_filter) — the aggregation filter runs at every internal tree
// node per round; no throw/new/std::function on this path (rule P1).
std::vector<Bytes> node_range_filter(const SrdsScheme& scheme, const CommTree& tree,
                                     const TreeNode& node, std::vector<Bytes> inputs) {
  std::vector<Bytes> kept;
  kept.reserve(inputs.size());
  for (auto& blob : inputs) {
    IndexRange r;
    if (!scheme.index_range(blob, r)) continue;
    bool ok = false;
    if (node.is_leaf()) {
      ok = (r.min == r.max && r.min >= node.vmin && r.max <= node.vmax);
    } else {
      for (std::size_t child : node.children) {
        const TreeNode& c = tree.node(child);
        if (r.min >= c.vmin && r.max <= c.vmax) {
          ok = true;
          break;
        }
      }
    }
    if (ok) kept.push_back(std::move(blob));
  }
  return kept;
}

// srds-lint: hotpath(f_aggr_sig)
Bytes f_aggr_sig(const SrdsScheme& scheme, BytesView m, const std::vector<Bytes>& inputs) {
  return scheme.aggregate(m, inputs);
}

}  // namespace srds

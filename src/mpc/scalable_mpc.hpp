// Scalable MPC over the communication tree — Corollary 1.2(2).
//
// The corollary: given FHE, any f over n inputs is securely computable
// with *total* communication n·polylog(n)·poly(κ)·(ℓ_in + ℓ_out). This
// module reproduces the protocol shape for the canonical aggregate
// functions (sum, and majority as sum-vs-threshold):
//   * round 0: every party encrypts its input under the committee's public
//     key and sends the constant-size ciphertext to its home leaf committee
//     (one leaf per party, so inputs count once);
//   * aggregation: each tree node's committee homomorphically sums the
//     (per-sender-deduplicated) ciphertexts and passes one ciphertext up —
//     deterministic evaluation makes honest members' outputs identical, so
//     parents vote per child exactly as in dissemination;
//   * decryption: supreme-committee members exchange partial-decryption
//     messages; with a threshold of cooperating members the result opens;
//   * delivery: the plaintext result is disseminated down the tree.
// Every message is O(κ) bits and every party touches polylog(n) peers, so
// total communication is n·polylog — the corollary's bound, measured by
// the simulator.
#pragma once

#include <cstdint>
#include <optional>

#include "net/stats.hpp"
#include "obs/trace.hpp"

namespace srds {

struct MpcRunConfig {
  std::size_t n = 0;
  double beta = 0.0;  // fail-silent corruption
  std::uint64_t seed = 1;
  /// Each honest party's input (corrupted parties contribute nothing).
  std::uint64_t input_value = 1;
  /// Optional observability sink (non-owning; e.g. an obs::Ledger for the
  /// per-party byte distribution). Installed on the simulator for the run.
  obs::TraceSink* trace = nullptr;
};

struct MpcRunResult {
  NetworkStats stats{0};
  std::size_t rounds = 0;
  std::size_t honest = 0;
  std::size_t decided = 0;     // honest parties that learned the output
  bool agreement = true;
  std::optional<std::uint64_t> output;  // the (unique) decided sum
  std::uint64_t expected_sum = 0;       // sum of honest inputs
};

/// Run the tree-MPC computing the sum of all parties' inputs.
MpcRunResult run_scalable_sum_mpc(const MpcRunConfig& config);

}  // namespace srds

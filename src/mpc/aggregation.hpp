// The f_aggr-sig functionality of §3.1 — committee signature aggregation.
//
// In the paper this n'-party functionality is realized with the
// Damgård–Ishai constant-round MPC (over a broadcast channel) because
// Aggregate₂ could in principle be randomized with secret coins. Both SRDS
// constructions in this repository have *deterministic* Aggregate₂ (the
// paper notes this property holds for its constructions too, footnote 14),
// so the functionality's output is a deterministic function of inputs that
// every committee member can evaluate locally once the inputs are public —
// no MPC needed, and any disagreement between members is resolved one level
// up by cryptographic validity checks (DESIGN.md substitution S3).
//
// This header also hosts the protocol-side range checks of Fig. 3 step 5c:
// a signature entering node v must cover an index range lying inside the
// slot range of exactly one child of v (for leaves: a single index among
// the leaf's own slots). Together with the strictly-increasing virtual-ID
// layout this prevents a replayed base signature from being counted twice
// or stretching an aggregate across sibling subtrees.
#pragma once

#include <vector>

#include "srds/srds.hpp"
#include "tree/comm_tree.hpp"

namespace srds {

/// Fig. 3 step 5c: drop signatures whose index range does not belong at
/// `node`. Leaf nodes accept only base signatures (min == max) of their own
/// slots; internal nodes accept inputs covered by exactly one child range.
std::vector<Bytes> node_range_filter(const SrdsScheme& scheme, const CommTree& tree,
                                     const TreeNode& node, std::vector<Bytes> inputs);

/// f_aggr-sig: aggregate the (range-filtered) inputs on message m.
/// Deterministic; all honest members of a node obtain the same result when
/// fed the same inputs, and results that differ (possible at nodes with
/// Byzantine members feeding different inputs) are reconciled by validity
/// checks at the parent.
Bytes f_aggr_sig(const SrdsScheme& scheme, BytesView m, const std::vector<Bytes>& inputs);

}  // namespace srds

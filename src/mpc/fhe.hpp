// Simulated fully homomorphic encryption — the ingredient Corollary 1.2(2)
// adds on top of the BA machinery to get scalable MPC.
//
// SUBSTITUTION (DESIGN.md S1-style): no lattice FHE backend exists offline,
// and none of the corollary's *communication* claims depend on the
// ciphertext algebra — only on ciphertexts being (a) constant size and
// (b) combinable without decryption. We therefore implement a
// designated-oracle FHE: a `FheOracle` holds the secret key; `Ciphertext`
// is an opaque fixed-size handle (an authenticated reference into the
// oracle's plaintext store, randomized so equal plaintexts are
// unlinkable); `add`/`mul` create fresh handles whose plaintexts the
// oracle computes; decryption is gated behind a threshold of key-share
// capabilities handed to the supreme committee. Parties and adversaries
// never see plaintexts they did not encrypt — semantic security holds
// against the simulated adversaries by construction, and every
// communication measurement matches a real FHE deployment with ~constant
// ciphertext size.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace srds {

/// Opaque fixed-size ciphertext handle (64 bytes on the wire: 32-byte id +
/// 32-byte authentication tag, standing in for a compact FHE ciphertext).
struct Ciphertext {
  Digest id;
  Digest tag;

  bool operator==(const Ciphertext&) const = default;
  Bytes serialize() const;
  static bool deserialize(BytesView data, Ciphertext& out);
  static constexpr std::size_t kSize = 64;
};

class FheOracle;

/// One committee member's decryption-share capability. `t+1` distinct
/// shares jointly decrypt (mirroring threshold FHE key distribution).
class DecryptionShare {
 public:
  std::size_t holder() const { return holder_; }

 private:
  friend class FheOracle;
  DecryptionShare(std::shared_ptr<FheOracle> oracle, std::size_t holder)
      : oracle_(std::move(oracle)), holder_(holder) {}
  std::shared_ptr<FheOracle> oracle_;
  std::size_t holder_;
};

/// The trusted setup: key generation + the homomorphic evaluator.
/// Plaintexts are 64-bit integers (enough for counting/majority circuits).
class FheOracle : public std::enable_shared_from_this<FheOracle> {
 public:
  static std::shared_ptr<FheOracle> create(std::uint64_t seed, std::size_t threshold);

  /// Public encryption (anyone can encrypt).
  Ciphertext encrypt(std::uint64_t plaintext);

  /// Homomorphic operations: valid input handles yield a fresh handle;
  /// forged handles yield nullopt.
  std::optional<Ciphertext> add(const Ciphertext& a, const Ciphertext& b);
  std::optional<Ciphertext> mul_const(const Ciphertext& a, std::uint64_t k);

  /// Is this a well-formed ciphertext under this key?
  bool valid(const Ciphertext& c) const;

  /// Hand out key shares (done once at setup, to the supreme committee).
  DecryptionShare issue_share(std::size_t holder);

  /// Threshold decryption: needs >= threshold distinct holders' shares.
  std::optional<std::uint64_t> decrypt(const Ciphertext& c,
                                       const std::vector<DecryptionShare>& shares) const;

  std::size_t threshold() const { return threshold_; }

 private:
  explicit FheOracle(std::uint64_t seed, std::size_t threshold);
  Digest tag_for(const Digest& id) const;

  Bytes key_;
  std::size_t threshold_;
  std::uint64_t counter_ = 0;
  std::map<Digest, std::uint64_t> plaintexts_;
};

}  // namespace srds

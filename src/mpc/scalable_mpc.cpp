#include "mpc/scalable_mpc.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "mpc/fhe.hpp"
#include "net/simulator.hpp"
#include "net/subproto.hpp"
#include "tree/comm_tree.hpp"
#include "tree/dissemination.hpp"

namespace srds {

namespace {

constexpr std::uint32_t kPhaseInput = 1;
constexpr std::uint32_t kPhaseAggregate = 2;
constexpr std::uint32_t kPhaseDecrypt = 3;
constexpr std::uint32_t kPhaseDeliver = 4;

struct MpcShared {
  std::shared_ptr<const CommTree> tree;
  std::shared_ptr<FheOracle> oracle;
  // Decryption capabilities by supreme-committee member (in-process
  // plumbing; cooperation is what travels on the wire).
  std::map<PartyId, DecryptionShare> shares;
  std::size_t decrypt_threshold = 0;
};

class MpcParty final : public Party {
 public:
  MpcParty(std::shared_ptr<MpcShared> shared, PartyId me, std::uint64_t input)
      : shared_(std::move(shared)), me_(me), input_(input) {
    const CommTree& tree = *shared_->tree;
    const std::size_t h = tree.height();
    aggregate_start_ = 1;
    decrypt_round_ = aggregate_start_ + h;   // root holds the sum ct here
    deliver_start_ = decrypt_round_ + 2;     // after partial exchange + open
    total_rounds_ = deliver_start_ + (h + 1);
    const auto& sc = tree.supreme_committee();
    in_committee_ = std::find(sc.begin(), sc.end(), me_) != sc.end();
  }

  std::size_t total_rounds() const { return total_rounds_; }

  std::vector<Message> on_round(std::size_t round,
                                const std::vector<Message>& inbox) override {
    const CommTree& tree = *shared_->tree;
    const std::size_t h = tree.height();
    std::vector<Message> out;

    // Demux.
    std::vector<TaggedMsg> agg_in, dec_in, del_in;
    for (const auto& m : inbox) {
      std::uint32_t phase;
      std::uint64_t instance;
      Bytes body;
      if (!untag_body(m.payload, phase, instance, body)) continue;
      Writer w;
      w.u64(instance);
      w.raw(body);
      if (phase == kPhaseInput || phase == kPhaseAggregate) {
        agg_in.push_back(TaggedMsg{m.from, std::move(w).take()});
      } else if (phase == kPhaseDecrypt) {
        dec_in.push_back(TaggedMsg{m.from, std::move(body)});
      } else if (phase == kPhaseDeliver) {
        del_in.push_back(TaggedMsg{m.from, std::move(body)});
      }
    }

    if (round == 0) {
      // Encrypt my input, send to my home leaf's committee.
      Ciphertext ct = shared_->oracle->encrypt(input_);
      std::size_t leaf = tree.leaf_of_virtual(tree.virtuals_of(me_).front());
      std::vector<PartyId> recipients(tree.node(leaf).committee.begin(),
                                      tree.node(leaf).committee.end());
      std::sort(recipients.begin(), recipients.end());
      recipients.erase(std::unique(recipients.begin(), recipients.end()),
                       recipients.end());
      for (PartyId p : recipients) {
        out.push_back(make_msg(me_, p, tag_body(kPhaseInput, leaf, ct.serialize()), MsgKind::kMpc));
      }
      return out;
    }

    if (round >= aggregate_start_ && round < aggregate_start_ + h) {
      std::size_t level = round - aggregate_start_ + 1;
      ingest_aggregation(agg_in, level);
      aggregate_level(level, out);
      return out;
    }

    if (round == decrypt_round_) {
      // Supreme-committee members announce cooperation (a partial
      // decryption message) to each other.
      if (in_committee_ && root_ct_.has_value()) {
        Writer w;
        w.raw(root_ct_->serialize());
        Bytes body = std::move(w).take();
        for (PartyId p : tree.supreme_committee()) {
          if (p != me_) out.push_back(make_msg(me_, p, tag_body(kPhaseDecrypt, 0, body), MsgKind::kMpc));
        }
      }
      return out;
    }

    if (round == decrypt_round_ + 1) {
      // Open the result with the cooperating members' shares.
      if (in_committee_ && root_ct_.has_value()) {
        std::vector<DecryptionShare> shares;
        auto mine = shared_->shares.find(me_);
        if (mine != shared_->shares.end()) shares.push_back(mine->second);
        std::set<PartyId> cooperating;
        for (const auto& msg : dec_in) {
          Ciphertext ct;
          if (!Ciphertext::deserialize(msg.body, ct) || !(ct == *root_ct_)) continue;
          if (!cooperating.insert(msg.from).second) continue;
          auto it = shared_->shares.find(msg.from);
          if (it != shared_->shares.end()) shares.push_back(it->second);
        }
        result_ = shared_->oracle->decrypt(*root_ct_, shares);
      }
      return out;
    }

    if (round >= deliver_start_ && round < deliver_start_ + h + 1) {
      std::size_t sub = round - deliver_start_;
      if (sub == 0) {
        std::optional<Bytes> init;
        if (in_committee_ && result_.has_value()) {
          Writer w;
          w.u64(*result_);
          init = std::move(w).take();
        }
        dissem_ = std::make_unique<DisseminationProto>(shared_->tree, me_, std::move(init));
      }
      for (auto& [to, body] : dissem_->step(sub, del_in)) {
        out.push_back(make_msg(me_, to, tag_body(kPhaseDeliver, 0, body), MsgKind::kMpc));
      }
      if (sub == h && dissem_->output().has_value()) {
        Reader r(*dissem_->output());
        std::uint64_t v = r.u64();
        if (r.done()) result_ = v;
      }
      if (sub == h) done_ = true;
      return out;
    }
    return out;
  }

  bool done() const override { return done_; }
  const std::optional<std::uint64_t>& result() const { return result_; }

 private:
  void ingest_aggregation(const std::vector<TaggedMsg>& inbox, std::size_t level) {
    const CommTree& tree = *shared_->tree;
    for (const auto& msg : inbox) {
      Reader r(msg.body);
      std::uint64_t instance = r.u64();
      Bytes body = r.raw(r.remaining());
      if (!r.ok() || instance >= tree.node_count()) continue;
      const TreeNode& node = tree.node(instance);
      if (node.level != level) continue;
      if (std::find(node.committee.begin(), node.committee.end(), me_) ==
          node.committee.end()) {
        continue;
      }
      if (node.is_leaf()) {
        Ciphertext ct;
        if (!Ciphertext::deserialize(body, ct) || !shared_->oracle->valid(ct)) continue;
        // One input ciphertext per sender, and only from parties homed here.
        std::size_t home =
            tree.leaf_of_virtual(tree.virtuals_of(msg.from).front());
        if (home != instance) continue;
        node_inputs_[instance].emplace(msg.from, ct);
      } else {
        // Aggregate candidate: the body names the child node it sums (a
        // sender may sit on several sibling committees, so membership alone
        // cannot attribute it — mis-attribution would double-count a
        // subtree). Validate the claimed child and the sender's seat on it.
        Reader br(body);
        std::uint64_t child = br.u64();
        Bytes ct_raw = br.raw(Ciphertext::kSize);
        if (!br.done()) continue;
        Ciphertext ct;
        if (!Ciphertext::deserialize(ct_raw, ct) || !shared_->oracle->valid(ct)) continue;
        if (std::find(node.children.begin(), node.children.end(), child) ==
            node.children.end()) {
          continue;
        }
        const auto& cc = tree.node(child).committee;
        if (std::find(cc.begin(), cc.end(), msg.from) == cc.end()) continue;
        child_votes_[{instance, child}][ct] += 1;
      }
    }
  }

  void aggregate_level(std::size_t level, std::vector<Message>& out) {
    const CommTree& tree = *shared_->tree;
    for (std::size_t id : tree.level_nodes(level)) {
      const TreeNode& node = tree.node(id);
      if (std::find(node.committee.begin(), node.committee.end(), me_) ==
          node.committee.end()) {
        continue;
      }
      std::optional<Ciphertext> sum;
      if (node.is_leaf()) {
        auto it = node_inputs_.find(id);
        if (it == node_inputs_.end()) continue;
        for (const auto& [sender, ct] : it->second) {
          sum = sum ? shared_->oracle->add(*sum, ct) : std::optional<Ciphertext>(ct);
          if (!sum) break;
        }
      } else {
        // Per child: take the majority candidate (honest members agree
        // because homomorphic evaluation is deterministic).
        for (std::size_t child : node.children) {
          auto it = child_votes_.find({id, child});
          if (it == child_votes_.end()) continue;
          const Ciphertext* best = nullptr;
          std::size_t best_votes = 0;
          for (const auto& [ct, votes] : it->second) {
            if (votes > best_votes) {
              best = &ct;
              best_votes = votes;
            }
          }
          if (!best) continue;
          sum = sum ? shared_->oracle->add(*sum, *best)
                    : std::optional<Ciphertext>(*best);
          if (!sum) break;
        }
      }
      if (!sum) continue;
      if (node.parent == TreeNode::kNoParent) {
        root_ct_ = *sum;
      } else {
        Writer bw;
        bw.u64(node.id);  // which child this candidate sums
        bw.raw(sum->serialize());
        Bytes body = std::move(bw).take();
        const auto& pc = tree.node(node.parent).committee;
        std::vector<PartyId> recipients(pc.begin(), pc.end());
        std::sort(recipients.begin(), recipients.end());
        recipients.erase(std::unique(recipients.begin(), recipients.end()),
                         recipients.end());
        for (PartyId p : recipients) {
          out.push_back(make_msg(me_, p, tag_body(kPhaseAggregate, node.parent, body), MsgKind::kMpc));
        }
      }
    }
  }

  struct CtLess {
    bool operator()(const Ciphertext& a, const Ciphertext& b) const {
      return a.id < b.id || (a.id == b.id && a.tag < b.tag);
    }
  };

  std::shared_ptr<MpcShared> shared_;
  PartyId me_;
  std::uint64_t input_;
  bool in_committee_ = false;
  std::size_t aggregate_start_ = 0, decrypt_round_ = 0, deliver_start_ = 0,
              total_rounds_ = 0;
  std::map<std::uint64_t, std::map<PartyId, Ciphertext>> node_inputs_;
  std::map<std::pair<std::uint64_t, std::size_t>, std::map<Ciphertext, std::size_t, CtLess>>
      child_votes_;
  std::optional<Ciphertext> root_ct_;
  std::optional<std::uint64_t> result_;
  std::unique_ptr<DisseminationProto> dissem_;
  bool done_ = false;
};

}  // namespace

MpcRunResult run_scalable_sum_mpc(const MpcRunConfig& config) {
  Rng rng(config.seed ^ 0x6d70632d72756eULL);
  auto shared = std::make_shared<MpcShared>();
  shared->tree =
      std::make_shared<const CommTree>(TreeParams::scaled(config.n), rng.next());
  const auto& sc = shared->tree->supreme_committee();
  shared->decrypt_threshold = sc.size() / 2 + 1;
  shared->oracle = FheOracle::create(rng.next(), shared->decrypt_threshold);
  for (PartyId p : sc) shared->shares.emplace(p, shared->oracle->issue_share(p));

  std::vector<bool> corrupt(config.n, false);
  std::size_t t = static_cast<std::size_t>(config.beta * static_cast<double>(config.n));
  for (auto idx : rng.subset(config.n, t)) corrupt[idx] = true;

  std::vector<std::unique_ptr<Party>> parties(config.n);
  std::size_t total_rounds = 0;
  MpcRunResult result;
  for (PartyId i = 0; i < config.n; ++i) {
    if (corrupt[i]) continue;
    auto party = std::make_unique<MpcParty>(shared, i, config.input_value);
    total_rounds = party->total_rounds();
    parties[i] = std::move(party);
    result.expected_sum += config.input_value;
  }

  Simulator sim(std::move(parties), corrupt, nullptr);
  sim.add_trace_sink(config.trace);
  result.rounds = sim.run(total_rounds + 2);
  result.stats = sim.stats();

  for (PartyId i = 0; i < config.n; ++i) {
    if (corrupt[i]) continue;
    ++result.honest;
    const auto* party = dynamic_cast<const MpcParty*>(sim.party(i));
    if (!party || !party->result().has_value()) continue;
    ++result.decided;
    if (result.output.has_value() && *result.output != *party->result()) {
      result.agreement = false;
    }
    result.output = *party->result();
  }
  return result;
}

}  // namespace srds

// Scenario: a private census (Corollary 1.2(2) in action).
//
// n organizations each hold a sensitive count (say, incident numbers) and
// want the industry-wide total — without revealing individual inputs and
// without any party shouldering Θ(n) communication. The tree-MPC encrypts
// each input under a committee-held threshold key, sums homomorphically up
// the communication tree, threshold-decrypts only the total, and
// disseminates it. Total traffic is n·polylog(n); no party talks to more
// than polylog(n) peers.
#include <cstdio>

#include "mpc/scalable_mpc.hpp"

int main() {
  using namespace srds;

  MpcRunConfig config;
  config.n = 512;          // participating organizations
  config.beta = 0.15;      // some submit nothing / misbehave silently
  config.input_value = 3;  // every honest org reports 3 incidents (demo)
  config.seed = 424242;

  std::printf("running the census across %zu organizations (%.0f%% unresponsive)...\n",
              config.n, config.beta * 100);
  auto r = run_scalable_sum_mpc(config);

  std::printf("agreement            : %s\n", r.agreement ? "yes" : "NO (bug!)");
  if (r.output.has_value()) {
    std::printf("census total         : %llu (honest inputs sum to %llu)\n",
                static_cast<unsigned long long>(*r.output),
                static_cast<unsigned long long>(r.expected_sum));
  } else {
    std::printf("census total         : (none decided)\n");
  }
  std::printf("orgs with the result : %zu / %zu\n", r.decided, r.honest);
  std::printf("rounds               : %zu\n", r.rounds);
  std::printf("total communication  : %.1f KiB (%.1f KiB max for any single org)\n",
              static_cast<double>(r.stats.total_bytes()) / 1024.0,
              static_cast<double>(r.stats.max_bytes_total()) / 1024.0);
  std::printf("max peers contacted  : %zu of %zu\n", r.stats.max_locality(), config.n - 1);

  bool ok = r.agreement && r.output.has_value() && *r.output <= r.expected_sum &&
            *r.output * 10 >= r.expected_sum * 9;
  std::printf("\n%s\n", ok ? "census completed: every responsive org holds the same total"
                           : "census FAILED");
  return ok ? 0 : 1;
}

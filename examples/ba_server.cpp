// Scenario: a long-lived BA service daemon (ROADMAP item 2, Corollary 1.2).
//
// One daemon owns one comm tree + supreme committee for a 256-node
// deployment and serves a *stream* of one-bit agreement requests: clients
// open sessions, submit bits, and receive decisions in submission order
// while many π_ba instances run staggered over the same network.
//
// Two front doors are demonstrated back to back:
//   1. real TCP sockets on 127.0.0.1 (svc/tcp_transport.hpp) — the framed
//      protocol over an actual kernel byte stream;
//   2. the deterministic in-process loopback, with an eclipse campaign
//      adaptively attacking the daemon mid-stream (the chaos engine applies
//      to the service unchanged).
// Both legs run with strict budgets: shutdown audits Corollary 1.2's
// amortized ℓ·polylog(n) bits-per-party claim and the demo fails if any
// decision lost agreement or the audit fails.
//
// Usage: ba_server [n] [eclipse_ell] [tcp_ell]   (defaults 256, 48, 16)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "obs/ledger.hpp"
#include "svc/service.hpp"
#include "svc/tcp_transport.hpp"
#include "svc/transport.hpp"

namespace {

using namespace srds;
using namespace srds::svc;

/// Drive one client against the daemon until `ell` decisions arrive,
/// honoring the backpressure protocol (retry rejected seqs, lowest first).
/// Returns the number of decisions whose honest parties agreed.
std::size_t serve(BaServiceDaemon& daemon, ServiceClient& client, std::size_t ell,
                  bool oversubscribe) {
  std::size_t submitted = 0, agreed = 0, received = 0;
  bool overridden = false;
  for (std::size_t iter = 0; iter < 1000000 && received < ell; ++iter) {
    if (oversubscribe && client.opened() && !overridden) {
      // Optimistic client: run ahead of the granted window so the server's
      // reject-with-retry-after backpressure path is exercised for real.
      client.override_window(client.window() * 2 + 2);
      overridden = true;
    }
    client.retry();
    while (submitted < ell && client.can_submit()) {
      client.submit(submitted % 3 != 0);
      ++submitted;
    }
    // Poke the stats surface once mid-stream: a kStats round-trip while
    // instances are in flight, answered out of band from decisions.
    if (received == ell / 2 && client.stats_received() == 0) client.request_stats();
    daemon.poll();
    daemon.step();
    client.poll();
    for (const auto& d : client.take_decisions()) {
      ++received;
      if (d.decision.agreement) ++agreed;
    }
  }
  return agreed;
}

struct LegConfig {
  const char* label = "";
  std::size_t n = 256;
  std::size_t ell = 16;
  bool tcp = false;
  CampaignKind campaign = CampaignKind::kNone;
  double corruption_rate = 0.0;
  bool oversubscribe = false;
};

bool run_leg(const LegConfig& leg) {
  std::printf("\n--- %s: n=%zu, %zu decisions ---\n", leg.label, leg.n, leg.ell);

  obs::Ledger ledger;
  ServiceConfig cfg;
  cfg.n = leg.n;
  cfg.beta = 0.1;
  cfg.seed = 20210727;  // PODC'21
  cfg.campaign = leg.campaign;
  cfg.corruption_rate = leg.corruption_rate;
  cfg.ledger = &ledger;
  cfg.strict_budgets = true;
  BaServiceDaemon daemon(std::move(cfg));

  // Either front door feeds the same framed protocol into the same daemon.
  LoopbackTransport loopback;
  std::unique_ptr<TcpListener> tcp;
  std::unique_ptr<Connection> conn;
  if (leg.tcp) {
    tcp = std::make_unique<TcpListener>();  // ephemeral 127.0.0.1 port
    daemon.add_listener(tcp.get());
    std::printf("listening on 127.0.0.1:%u\n", tcp->port());
    conn = connect_tcp(tcp->port());
  } else {
    daemon.add_listener(loopback.listener());
    conn = loopback.connect();
  }

  ServiceClient client(std::move(conn));
  client.open();
  const std::size_t agreed = serve(daemon, client, leg.ell, leg.oversubscribe);
  if (client.stats_received() > 0) {
    std::printf("mid-stream stats      : %s\n", client.last_stats().c_str());
  }
  client.close();

  bool audit_ok = true;
  std::string audit_msg = "ok";
  try {
    daemon.shutdown();  // drains, then audits (strict: throws on violation)
  } catch (const BudgetViolation& v) {
    audit_ok = false;
    audit_msg = v.what();
  }

  const ServiceStats& s = daemon.stats();
  std::printf("decisions             : %zu (%zu agreed, %zu delivered)\n",
              s.decisions, s.agreed, s.delivered);
  std::printf("rounds                : %zu simulated (%.1f decisions per 100 rounds)\n",
              s.rounds,
              s.rounds ? 100.0 * static_cast<double>(s.decisions) /
                             static_cast<double>(s.rounds)
                       : 0.0);
  std::printf("backpressure rejects  : %zu (client retried each)\n",
              s.rejected_backpressure);
  if (leg.campaign != CampaignKind::kNone) {
    std::printf("adaptive corruptions  : %zu granted to the campaign\n",
                s.adaptively_corrupted);
  }
  // Re-evaluate for the printout; under strict a violation throws again, so
  // harvest the findings from the exception instead.
  std::vector<obs::BudgetEval> evals;
  try {
    evals = daemon.audit();
  } catch (const BudgetViolation& v) {
    evals = v.findings;
  }
  for (const obs::BudgetEval& e : evals) {
    if (e.skipped) {
      std::printf("amortized budget      : skipped (%s)\n", e.skip_reason.c_str());
      continue;
    }
    std::printf("amortized budget      : worst party %.1f KiB vs bound %.1f KiB "
                "(%zu decisions x polylog) -- %s\n",
                static_cast<double>(e.max_bits) / 8.0 / 1024.0,
                e.bound_bits / 8.0 / 1024.0, s.decisions, e.ok ? "ok" : "VIOLATED");
  }
  if (!audit_ok) std::printf("audit                 : FAILED: %s\n", audit_msg.c_str());

  const bool ok = audit_ok && agreed == leg.ell && s.decisions == leg.ell;
  std::printf("leg result            : %s\n", ok ? "ok" : "FAILED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 256;
  const std::size_t eclipse_ell =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 48;
  const std::size_t tcp_ell =
      argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 16;

  std::printf("BA service daemon demo: one tree + supreme committee, "
              "a stream of %zu agreement requests\n",
              eclipse_ell + tcp_ell);

  LegConfig tcp_leg;
  tcp_leg.label = "TCP loopback";
  tcp_leg.n = n;
  tcp_leg.ell = tcp_ell;
  tcp_leg.tcp = true;

  LegConfig eclipse;
  eclipse.label = "simulator loopback + eclipse campaign";
  eclipse.n = n;
  eclipse.ell = eclipse_ell;
  eclipse.campaign = CampaignKind::kEclipse;
  eclipse.corruption_rate = 0.15;
  eclipse.oversubscribe = true;  // exercise the backpressure protocol too

  const bool ok = run_leg(tcp_leg) & run_leg(eclipse);
  std::printf("\n%s\n", ok ? "service demo: all decisions agreed, budgets audited"
                           : "service demo: FAILURE (see legs above)");
  return ok ? 0 : 1;
}

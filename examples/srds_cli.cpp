// srds_cli — command-line driver for the protocols in this repository.
//
//   srds_cli ba       --protocol snark|owf|naive|multisig|sampling|star
//                     [--n 256] [--beta 0.2] [--seed 1] [--input 1]
//                     [--attack]
//   srds_cli bcast    [--n 256] [--ell 4] [--beta 0.1] [--seed 1]
//   srds_cli isolate  --setup crs|pki|srds|inverted [--n 512] [--t 128]
//   srds_cli elect    [--n 256] [--beta 0.2] [--seed 1]
//
// Exit code 0 on success (agreement + validity where applicable).
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "ba/runner.hpp"
#include "common/rng.hpp"
#include "lb/isolation.hpp"
#include "tree/election.hpp"

namespace {

using namespace srds;

std::map<std::string, std::string> parse_flags(int argc, char** argv, int from) {
  std::map<std::string, std::string> flags;
  for (int i = from; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    std::string key = arg.substr(2);
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags[key] = argv[++i];
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

std::size_t flag_u(const std::map<std::string, std::string>& flags, const char* key,
                   std::size_t def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : static_cast<std::size_t>(std::stoull(it->second));
}

double flag_d(const std::map<std::string, std::string>& flags, const char* key,
              double def) {
  auto it = flags.find(key);
  return it == flags.end() ? def : std::stod(it->second);
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  srds_cli ba      --protocol snark|owf|naive|multisig|sampling|star"
               " [--n N] [--beta B] [--seed S] [--input 0|1] [--attack]\n"
               "  srds_cli bcast   [--n N] [--ell L] [--beta B] [--seed S]\n"
               "  srds_cli isolate --setup crs|pki|srds|inverted [--n N] [--t T]\n"
               "  srds_cli elect   [--n N] [--beta B] [--seed S]\n");
  return 2;
}

int cmd_ba(const std::map<std::string, std::string>& flags) {
  BaRunConfig cfg;
  cfg.n = flag_u(flags, "n", 256);
  cfg.beta = flag_d(flags, "beta", 0.2);
  cfg.seed = flag_u(flags, "seed", 1);
  cfg.input = flag_u(flags, "input", 1) != 0;
  cfg.active_adversary = flags.count("attack") > 0;
  std::string proto = flags.count("protocol") ? flags.at("protocol") : "snark";
  if (proto == "snark") cfg.protocol = BoostProtocol::kPiBaSnark;
  else if (proto == "owf") cfg.protocol = BoostProtocol::kPiBaOwf;
  else if (proto == "naive") cfg.protocol = BoostProtocol::kNaive;
  else if (proto == "multisig") cfg.protocol = BoostProtocol::kMultisig;
  else if (proto == "sampling") cfg.protocol = BoostProtocol::kSampling;
  else if (proto == "star") cfg.protocol = BoostProtocol::kStar;
  else return usage();

  auto r = run_ba(cfg);
  std::printf("protocol=%s n=%zu beta=%.2f rounds=%zu agreement=%s value=%s "
              "decided=%zu/%zu max_bytes=%llu boost_bytes=%llu locality=%zu\n",
              protocol_name(cfg.protocol), cfg.n, cfg.beta, r.rounds,
              r.agreement ? "yes" : "NO",
              r.value.has_value() ? (*r.value ? "1" : "0") : "-", r.decided, r.honest,
              static_cast<unsigned long long>(r.stats.max_bytes_total()),
              static_cast<unsigned long long>(r.boost_stats.max_bytes_total()),
              r.stats.max_locality());
  return (r.agreement && r.value == std::optional<bool>(cfg.input)) ? 0 : 1;
}

int cmd_bcast(const std::map<std::string, std::string>& flags) {
  BroadcastRunConfig cfg;
  cfg.n = flag_u(flags, "n", 256);
  cfg.ell = flag_u(flags, "ell", 4);
  cfg.beta = flag_d(flags, "beta", 0.1);
  cfg.seed = flag_u(flags, "seed", 1);
  auto r = run_broadcast_service(cfg);
  std::printf("n=%zu ell=%zu delivered=%zu/%zu agreement=%s max_bytes=%llu\n", cfg.n,
              cfg.ell, r.delivered, r.possible, r.agreement ? "yes" : "NO",
              static_cast<unsigned long long>(r.stats.max_bytes_total()));
  return r.agreement ? 0 : 1;
}

int cmd_isolate(const std::map<std::string, std::string>& flags) {
  IsolationConfig cfg;
  cfg.n = flag_u(flags, "n", 512);
  cfg.t = flag_u(flags, "t", cfg.n / 4);
  cfg.seed = flag_u(flags, "seed", 1);
  std::string setup = flags.count("setup") ? flags.at("setup") : "srds";
  BoostSetup bs;
  if (setup == "crs") bs = BoostSetup::kCrsOnly;
  else if (setup == "pki") bs = BoostSetup::kPkiPlainSigs;
  else if (setup == "srds") bs = BoostSetup::kPkiSrds;
  else if (setup == "inverted") bs = BoostSetup::kPkiSrdsInvertedKeys;
  else return usage();
  auto out = run_isolation_attack(bs, cfg);
  std::printf("setup=%s n=%zu t=%zu honest_support=%zu forged_support=%zu fooled=%s\n",
              setup_name(bs), cfg.n, cfg.t, out.honest_support, out.forged_support,
              out.target_fooled ? "YES" : "no");
  return out.target_fooled ? 1 : 0;
}

int cmd_elect(const std::map<std::string, std::string>& flags) {
  std::size_t n = flag_u(flags, "n", 256);
  double beta = flag_d(flags, "beta", 0.2);
  std::uint64_t seed = flag_u(flags, "seed", 1);
  Rng rng(seed);
  std::vector<bool> corrupt(n, false);
  for (auto idx : rng.subset(n, static_cast<std::size_t>(beta * n))) corrupt[idx] = true;
  ElectionParams params;
  auto r = run_committee_election(n, corrupt, params, seed);
  std::printf("n=%zu beta=%.2f levels=%zu rounds=%zu committee=%zu corrupt=%.1f%% "
              "max_bytes=%llu\n",
              n, beta, r.levels, r.rounds, r.supreme_committee.size(),
              100.0 * r.committee_corrupt_fraction,
              static_cast<unsigned long long>(r.stats.max_bytes_total()));
  return r.committee_corrupt_fraction < 0.5 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  auto flags = parse_flags(argc, argv, 2);
  if (cmd == "ba") return cmd_ba(flags);
  if (cmd == "bcast") return cmd_bcast(flags);
  if (cmd == "isolate") return cmd_isolate(flags);
  if (cmd == "elect") return cmd_elect(flags);
  return usage();
}

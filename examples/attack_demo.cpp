// Scenario: why the setup assumptions matter — a guided tour of the
// paper's lower bounds (Theorems 1.3 and 1.4) and security games, run live.
//
// An isolated node missed the agreement phase and must catch up in one
// round while everyone spends only polylog messages. We try to fool it
// under four trust models, then attack the SRDS schemes directly.
#include <cstdio>

#include "lb/isolation.hpp"
#include "srds/games.hpp"
#include "srds/owf_srds.hpp"
#include "srds/snark_srds.hpp"

int main() {
  using namespace srds;

  std::printf("— single-round catch-up for an isolated node (n=512, t=128) —\n\n");
  for (auto setup : {BoostSetup::kCrsOnly, BoostSetup::kPkiPlainSigs,
                     BoostSetup::kPkiSrds, BoostSetup::kPkiSrdsInvertedKeys}) {
    IsolationConfig cfg;
    cfg.n = 512;
    cfg.t = 128;
    cfg.seed = 7;
    auto out = run_isolation_attack(setup, cfg);
    std::printf("%-26s honest support %3zu | forged support %3zu | node %s\n",
                setup_name(setup), out.honest_support, out.forged_support,
                out.target_fooled ? "FOOLED" : "safe");
  }

  std::printf(
      "\nTakeaways: with public setup only (Thm 1.3) or plain signatures the\n"
      "adversary's %s identities outvote ~polylog honest messages; the SRDS\n"
      "certificate flips it (support counting is irrelevant, forging needs a\n"
      "majority); and inverting the one-way function (Thm 1.4) breaks it again.\n\n",
      "Θ(n)");

  std::printf("— attacking SRDS robustness directly (Fig. 1 experiment) —\n\n");
  CommTree tree = make_game_tree(150, 11);
  OwfSrdsParams params;
  params.n_signers = tree.virtual_count();
  params.expected_signers = 48;
  params.backend = BaseSigBackend::kCompact;

  for (auto [strategy, label] :
       std::vector<std::pair<AttackStrategy, const char*>>{
           {AttackStrategy::kWrongMessage, "sign a conflicting value"},
           {AttackStrategy::kDuplicate, "replay an honest signature"},
           {AttackStrategy::kGarbage, "inject garbage aggregates"}}) {
    OwfSrds scheme(params, 12);
    GameConfig cfg;
    cfg.t = 15;
    cfg.strategy = strategy;
    cfg.seed = 13;
    auto out = run_robustness_game(scheme, tree, cfg);
    std::printf("%-28s -> certificate %s (%llu base signatures at the root)\n", label,
                out.verified ? "still verifies" : "DESTROYED",
                static_cast<unsigned long long>(out.root_base_count));
  }

  std::printf("\n— forging a certificate from below the n/3 threshold (Fig. 2) —\n\n");
  SnarkSrdsParams sp;
  sp.n_signers = 120;
  sp.backend = BaseSigBackend::kCompact;
  SnarkSrds snark(sp, 14);
  GameConfig fcfg;
  fcfg.t = 39;
  fcfg.strategy = AttackStrategy::kWrongMessage;
  fcfg.seed = 15;
  auto forge = run_forgery_game(snark, fcfg);
  std::printf("adversary with %zu corruptions + isolated-signer help: forgery %s\n",
              forge.corrupted, forge.adversary_wins ? "SUCCEEDED (bug!)" : "rejected");
  return forge.adversary_wins ? 1 : 0;
}

// Scenario: blockchain checkpoint certificates.
//
// A proof-of-stake network with thousands of validators wants light clients
// to verify that a majority of validators signed off on a checkpoint block
// — with a certificate small enough to gossip and embed. This is the
// paper's §1.2 motivation in miniature:
//   * a multi-signature is compact but the verifier also needs the Θ(n)-bit
//     validator bitmap;
//   * an SRDS certificate carries *everything* a verifier needs in Õ(1)
//     bytes, and it can be aggregated incrementally by relay committees.
//
// The example builds both certificates for a 4096-validator checkpoint and
// prints what a light client must download.
#include <cstdio>

#include "common/rng.hpp"
#include "crypto/multisig.hpp"
#include "srds/snark_srds.hpp"

int main() {
  using namespace srds;
  const std::size_t n_validators = 4096;
  const Bytes checkpoint = to_bytes("block 81920 | state root 3fb2...e1 | epoch 640");

  // --- SRDS certificate (this paper) ---
  SnarkSrdsParams params;
  params.n_signers = n_validators;
  params.backend = BaseSigBackend::kCompact;
  SnarkSrds srds_scheme(params, /*crs_seed=*/99);
  for (std::size_t v = 0; v < n_validators; ++v) srds_scheme.keygen(v);
  srds_scheme.finalize_keys();

  // 70% of validators sign; relay committees aggregate in batches of 64,
  // then one final aggregation — mimicking the tree flow.
  std::vector<Bytes> batches;
  std::vector<Bytes> pending;
  std::size_t signed_count = 0;
  for (std::size_t v = 0; v < n_validators; ++v) {
    if (v % 10 < 7) {
      pending.push_back(srds_scheme.sign(v, checkpoint));
      ++signed_count;
    }
    if (pending.size() == 64 || (v + 1 == n_validators && !pending.empty())) {
      batches.push_back(srds_scheme.aggregate(checkpoint, pending));
      pending.clear();
    }
  }
  Bytes certificate = srds_scheme.aggregate(checkpoint, batches);

  bool ok = srds_scheme.verify(checkpoint, certificate);
  std::printf("validators            : %zu (signed: %zu)\n", n_validators, signed_count);
  std::printf("srds certificate      : %zu bytes, verifies: %s, covers %llu signatures\n",
              certificate.size(), ok ? "yes" : "NO",
              static_cast<unsigned long long>(srds_scheme.base_count(certificate)));

  // --- multi-signature certificate (the status quo) ---
  MultisigRegistry msig(n_validators, 7);
  std::vector<std::size_t> signers;
  std::vector<MultisigTag> tags;
  for (std::size_t v = 0; v < n_validators; ++v) {
    if (v % 10 < 7) {
      signers.push_back(v);
      tags.push_back(msig.sign(v, checkpoint));
    }
  }
  Multisig ms = MultisigRegistry::aggregate(n_validators, signers, tags);
  std::printf("multisig certificate  : %zu bytes (48 B tag + %zu B signer bitmap), verifies: %s\n",
              ms.wire_size(), (n_validators + 7) / 8,
              msig.verify(checkpoint, ms) ? "yes" : "NO");

  // --- what a light client learns ---
  std::printf("\nlight-client download : %zu bytes (srds) vs %zu bytes (multisig)\n",
              certificate.size(), ms.wire_size());
  std::printf("the srds certificate alone proves a majority signed; the multisig\n"
              "needs the bitmap — and the gap grows linearly with the validator set.\n");

  // A forged certificate for a conflicting checkpoint must fail.
  Bytes conflicting = to_bytes("block 81920 | state root deadbeef | epoch 640");
  std::vector<Bytes> minority;
  for (std::size_t v = 0; v < n_validators / 10; ++v) {
    minority.push_back(srds_scheme.sign(v * 10 + 9, conflicting));
  }
  Bytes forged = srds_scheme.aggregate(conflicting, minority);
  std::printf("minority fork cert    : verifies: %s (must be 'NO')\n",
              (!forged.empty() && srds_scheme.verify(conflicting, forged)) ? "yes" : "NO");
  return ok ? 0 : 1;
}

// Scenario: a broadcast service for a large deployment (Corollary 1.2(1)).
//
// A fleet of 512 nodes needs a stream of authenticated one-bit decisions
// (feature flags, failover votes, epoch bumps) delivered to everyone,
// Byzantine-fault-tolerantly. Running a fresh quadratic broadcast per
// decision would melt the network; the paper's tree + SRDS machinery gives
// ℓ broadcasts for ℓ · polylog(n) bits per node, reusing one setup.
#include <cstdio>

#include "ba/runner.hpp"

int main() {
  using namespace srds;

  BroadcastRunConfig config;
  config.n = 512;
  config.ell = 6;        // six decisions through the same tree/PKI
  config.beta = 0.15;    // 15% of the fleet is compromised
  config.seed = 31415;
  config.protocol = BoostProtocol::kPiBaSnark;

  std::printf("broadcasting %zu decisions across %zu nodes (%.0f%% Byzantine)...\n",
              config.ell, config.n, config.beta * 100);
  auto result = run_broadcast_service(config);

  std::printf("deliveries            : %zu / %zu honest receptions correct\n",
              result.delivered, result.possible);
  std::printf("agreement             : %s\n", result.agreement ? "yes" : "NO (bug!)");
  double max_total = static_cast<double>(result.stats.max_bytes_total());
  std::printf("max bytes per node    : %.1f KiB total, %.1f KiB per decision\n",
              max_total / 1024.0, max_total / 1024.0 / static_cast<double>(config.ell));
  std::printf("max locality          : %zu distinct peers (fleet size %zu)\n",
              result.stats.max_locality(), config.n);

  // Honest framing: at this fleet size the polylog committee machinery has
  // chunky constants (the supreme committee's Dolev-Strong rounds dominate),
  // so a naive Θ(n)-per-node all-to-all exchange is still cheaper in
  // absolute bytes. Measure it rather than guessing: one kNaive decision at
  // the same fleet size and fault fraction, through the same harness.
  double per_decision = max_total / static_cast<double>(config.ell);
  BaRunConfig naive;
  naive.n = config.n;
  naive.beta = config.beta;
  naive.seed = config.seed;
  naive.protocol = BoostProtocol::kNaive;
  auto naive_result = run_ba(naive);
  double naive_per_decision =
      static_cast<double>(naive_result.stats.max_bytes_total());
  std::printf("naive flood (measured): %.1f KiB per node per decision (Θ(n))\n",
              naive_per_decision / 1024.0);
  // The naive cost grows linearly in fleet size while the committee cost is
  // ~flat, so extrapolate the measured naive run to find where they cross.
  double naive_bytes_per_peer = naive_per_decision / static_cast<double>(naive.n);
  std::printf("estimated crossover   : fleets larger than ~%.1fk nodes favour this\n"
              "                        service per decision (its cost is ~flat in n)\n",
              per_decision / naive_bytes_per_peer / 1000.0);
  return result.agreement ? 0 : 1;
}

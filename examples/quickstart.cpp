// Quickstart: run the paper's balanced Byzantine agreement protocol (π_ba,
// Fig. 3) with the SNARK-based SRDS on a simulated synchronous network of
// 256 parties, 20% of which are corrupted, and inspect what it cost.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "ba/runner.hpp"

int main() {
  srds::BaRunConfig config;
  config.n = 256;                                    // parties
  config.beta = 0.20;                                // corrupted fraction
  config.protocol = srds::BoostProtocol::kPiBaSnark; // this work, bare PKI + CRS
  config.input = true;                               // every honest party inputs 1
  config.seed = 2026;

  srds::BaRunResult result = srds::run_ba(config);

  std::printf("protocol            : %s\n", srds::protocol_name(config.protocol));
  std::printf("parties / corrupted : %zu / %zu\n", config.n,
              static_cast<std::size_t>(config.beta * config.n));
  std::printf("rounds              : %zu\n", result.rounds);
  std::printf("agreement           : %s\n", result.agreement ? "yes" : "NO (bug!)");
  std::printf("decided value       : %s\n",
              result.value.has_value() ? (*result.value ? "1" : "0") : "none");
  std::printf("honest decided      : %zu / %zu\n", result.decided, result.honest);
  std::printf("max bytes per party : %llu (full run)  %llu (boost step only)\n",
              static_cast<unsigned long long>(result.stats.max_bytes_total()),
              static_cast<unsigned long long>(result.boost_stats.max_bytes_total()));
  std::printf("max locality        : %zu of %zu possible peers\n",
              result.stats.max_locality(), config.n - 1);

  return result.agreement && result.value == std::optional<bool>(true) ? 0 : 1;
}

#!/usr/bin/env sh
# Pre-commit gate: run the same srds-lint invocation CI runs (layering,
# taint, hot-path rules, ratchet baseline) plus a formatting check, from a
# local checkout. Install with:
#   ln -s ../../tools/precommit.sh .git/hooks/pre-commit
#
# Assumes a configured build/ (for the compile database and the linter
# binary); falls back to a plain src/ scan when there is none yet.
set -eu

cd "$(git rev-parse --show-toplevel)"

LINT=build/tools/srds-lint/srds-lint
if [ ! -x "$LINT" ]; then
  echo "precommit: $LINT not built; run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

if [ -f build/compile_commands.json ]; then
  "$LINT" --tests-dir tests \
    --compile-db build/compile_commands.json \
    --layers tools/srds-lint/layers.toml \
    --shard-roots tools/srds-lint/shard_roots.toml \
    --locks tools/srds-lint/locks.toml \
    --baseline LINT_BASELINE.json \
    --quiet src
else
  "$LINT" --tests-dir tests --layers tools/srds-lint/layers.toml \
    --shard-roots tools/srds-lint/shard_roots.toml \
    --locks tools/srds-lint/locks.toml \
    --baseline LINT_BASELINE.json --quiet src
fi

# Formatting: advisory locally (clang-format versions drift), enforced in CI.
if command -v clang-format >/dev/null 2>&1; then
  git diff --cached --name-only --diff-filter=ACM |
    grep -E '\.(cpp|hpp|h|cc)$' |
    while IFS= read -r f; do
      if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
        echo "precommit: needs clang-format: $f" >&2
      fi
    done
fi

echo "precommit: lint gate passed"

#include "lex.hpp"

#include <algorithm>
#include <cctype>

namespace srds::lint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

Lexed lex(const std::string& s) {
  Lexed out;
  std::size_t i = 0, line = 1;
  const std::size_t n = s.size();
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto push = [&](Tok::Kind k, std::string text, std::size_t ln) {
    out.code_lines.insert(ln);
    out.toks.push_back(Tok{k, std::move(text), ln});
  };

  while (i < n) {
    char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Preprocessor directive: '#' first on the line. Consumed wholesale
    // (with backslash continuations); its tokens stay out of the stream.
    if (c == '#' && at_line_start) {
      std::size_t start_line = line;
      std::string text;
      while (i < n) {
        if (s[i] == '\\' && i + 1 < n && (s[i + 1] == '\n' || (s[i + 1] == '\r' && i + 2 < n && s[i + 2] == '\n'))) {
          i += (s[i + 1] == '\n') ? 2 : 3;
          ++line;
          text.push_back(' ');
          continue;
        }
        if (s[i] == '\n') break;
        text.push_back(s[i]);
        ++i;
      }
      out.directives.push_back(PpDirective{start_line, std::move(text)});
      at_line_start = true;  // the upcoming '\n' handler resets anyway
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t start_line = line;
      std::size_t j = i + 2;
      while (j < n && s[j] != '\n') ++j;
      out.comments.push_back(Comment{start_line, s.substr(i + 2, j - (i + 2))});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      std::size_t start_line = line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) {
        if (s[j] == '\n') ++line;
        text.push_back(s[j]);
        ++j;
      }
      out.comments.push_back(Comment{start_line, std::move(text)});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && s[j] != '(') delim.push_back(s[j++]);
      std::string close = ")" + delim + "\"";
      std::size_t end = s.find(close, j);
      std::size_t stop = (end == std::string::npos) ? n : end + close.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (s[k] == '\n') ++line;
      }
      push(Tok::kStr, "", line);
      i = stop;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < n && s[j] != quote) {
        if (s[j] == '\\' && j + 1 < n) ++j;
        if (s[j] == '\n') ++line;  // unterminated literal; stay line-accurate
        ++j;
      }
      push(Tok::kStr, "", line);
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(s[j])) ++j;
      push(Tok::kIdent, s.substr(i, j - i), line);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) ++j;
      push(Tok::kNum, s.substr(i, j - i), line);
      i = j;
      continue;
    }
    // Two-char puncts the rules care about; everything else single-char.
    if (c == ':' && i + 1 < n && s[i + 1] == ':') {
      push(Tok::kPunct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && s[i + 1] == '>') {
      push(Tok::kPunct, "->", line);
      i += 2;
      continue;
    }
    push(Tok::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  if (p.rfind("./", 0) == 0) p.erase(0, 2);
  return p;
}

bool path_under(const std::string& path, const std::string& dir) {
  // `dir` like "src/ba": match a leading or embedded directory prefix.
  const std::string pre = dir + "/";
  return path.rfind(pre, 0) == 0 || path.find("/" + pre) != std::string::npos;
}

bool is_header_path(const std::string& path) {
  for (const char* ext : {".hpp", ".h", ".hh", ".hxx"}) {
    std::string e = ext;
    if (path.size() >= e.size() && path.compare(path.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

bool in_protocol_dir(const std::string& path) {
  return path_under(path, "src/ba") || path_under(path, "src/consensus") ||
         path_under(path, "src/srds") || path_under(path, "src/tree");
}

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

std::string quoted_include_target(const PpDirective& d) {
  std::size_t inc = d.text.find("include");
  if (inc == std::string::npos) return "";
  std::size_t open = d.text.find('"', inc);
  if (open == std::string::npos) return "";
  std::size_t close = d.text.find('"', open + 1);
  if (close == std::string::npos) return "";
  return d.text.substr(open + 1, close - (open + 1));
}

}  // namespace srds::lint

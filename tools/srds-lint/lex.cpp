#include "lex.hpp"

#include <algorithm>
#include <cctype>

namespace srds::lint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Encoding prefixes that may precede a raw string literal: R"..., u8R"...,
/// uR"..., UR"..., LR"...
bool is_raw_string_prefix(const std::string& s) {
  return s == "R" || s == "u8R" || s == "uR" || s == "UR" || s == "LR";
}

/// One entry per open preprocessor conditional. Only the branch chosen at
/// lex time is tokenized; the other branches are skipped wholesale so their
/// braces/strings can never desynchronize the body matcher (the classic
/// `#if`/`#else` pair that opens one function body twice).
struct CondState {
  bool taken;   // some branch of this conditional has been lexed
  bool active;  // the branch we are currently inside is being lexed
};

/// First word of a directive after '#' (e.g. "ifndef"), or "".
std::string directive_keyword(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && (text[i] == '#' || text[i] == ' ' || text[i] == '\t')) ++i;
  std::size_t j = i;
  while (j < text.size() && ident_char(text[j])) ++j;
  return text.substr(i, j - i);
}

/// Condition text after the keyword, trimmed.
std::string directive_condition(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && (text[i] == '#' || text[i] == ' ' || text[i] == '\t')) ++i;
  while (i < text.size() && ident_char(text[i])) ++i;
  return trim(text.substr(i));
}

}  // namespace

Lexed lex(const std::string& s) {
  Lexed out;
  std::size_t i = 0, line = 1;
  const std::size_t n = s.size();
  bool at_line_start = true;  // only whitespace seen so far on this line

  // Preprocessor conditional tracking. `enabled` is true iff every open
  // conditional's current branch is the one being lexed.
  std::vector<CondState> cond_stack;
  auto enabled = [&] {
    for (const CondState& c : cond_stack) {
      if (!c.active) return false;
    }
    return true;
  };

  auto push = [&](Tok::Kind k, std::string text, std::size_t ln) {
    out.code_lines.insert(ln);
    out.toks.push_back(Tok{k, std::move(text), ln});
  };

  /// Consume a raw string literal starting at `start` (the first char of
  /// the R prefix, with s[quote] == '"'). Returns the index one past the
  /// closing quote, or `start` when the delimiter is malformed (caller
  /// falls back to ordinary lexing).
  auto consume_raw_string = [&](std::size_t start, std::size_t quote) -> std::size_t {
    std::size_t j = quote + 1;
    std::string delim;
    // d-char-seq: at most 16 chars, none of space/(/)/backslash/quote/newline.
    while (j < n && s[j] != '(') {
      char c = s[j];
      if (delim.size() >= 16 || c == ' ' || c == ')' || c == '\\' || c == '"' ||
          c == '\n' || c == '\t') {
        return start;  // malformed raw string; not a raw literal after all
      }
      delim.push_back(c);
      ++j;
    }
    if (j >= n) return start;
    const std::string close = ")" + delim + "\"";
    std::size_t end = s.find(close, j);
    std::size_t stop = (end == std::string::npos) ? n : end + close.size();
    for (std::size_t k = start; k < stop; ++k) {
      if (s[k] == '\n') ++line;
    }
    push(Tok::kStr, "", line);
    return stop;
  };

  while (i < n) {
    char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Preprocessor directive: '#' first on the line. Consumed wholesale
    // (with backslash continuations); its tokens stay out of the stream.
    if (c == '#' && at_line_start) {
      std::size_t start_line = line;
      std::string text;
      while (i < n) {
        if (s[i] == '\\' && i + 1 < n && (s[i + 1] == '\n' || (s[i + 1] == '\r' && i + 2 < n && s[i + 2] == '\n'))) {
          i += (s[i + 1] == '\n') ? 2 : 3;
          ++line;
          text.push_back(' ');
          continue;
        }
        if (s[i] == '\n') break;
        text.push_back(s[i]);
        ++i;
      }
      // Conditional-compilation handling. Only the first live branch of
      // each conditional is lexed (`#if 0` counts as dead); the rest is
      // skipped so per-branch brace imbalance cannot corrupt body matching.
      const std::string kw = directive_keyword(text);
      const bool was_enabled = enabled();
      if (kw == "if" || kw == "ifdef" || kw == "ifndef") {
        const std::string cond = directive_condition(text);
        const bool live =
            was_enabled && !(kw == "if" && (cond == "0" || cond == "false"));
        cond_stack.push_back(CondState{live, live});
      } else if (kw == "elif" && !cond_stack.empty()) {
        CondState& top = cond_stack.back();
        const std::string cond = directive_condition(text);
        bool parent_ok = true;
        for (std::size_t d = 0; d + 1 < cond_stack.size(); ++d) parent_ok &= cond_stack[d].active;
        top.active = parent_ok && !top.taken && cond != "0" && cond != "false";
        top.taken = top.taken || top.active;
      } else if (kw == "else" && !cond_stack.empty()) {
        CondState& top = cond_stack.back();
        bool parent_ok = true;
        for (std::size_t d = 0; d + 1 < cond_stack.size(); ++d) parent_ok &= cond_stack[d].active;
        top.active = parent_ok && !top.taken;
        top.taken = true;
      } else if (kw == "endif" && !cond_stack.empty()) {
        cond_stack.pop_back();
      }
      // Record the directive when its surrounding region is lexed (the
      // include graph and H1 guard detection must not see dead branches).
      // Conditional directives themselves are recorded when either side of
      // the transition is live, so include-guard `#ifndef` is kept.
      if (was_enabled || enabled()) {
        out.directives.push_back(PpDirective{start_line, std::move(text)});
      }
      at_line_start = true;  // the upcoming '\n' handler resets anyway
      continue;
    }
    // Inside a dead conditional branch: skip everything except newlines and
    // directives (handled above). Dead code is not tokenized at all.
    if (!enabled()) {
      at_line_start = false;
      ++i;
      continue;
    }
    at_line_start = false;
    // Comments. A line comment whose last character is a backslash
    // continues onto the next line (phase-2 splicing happens before
    // comment removal), so the continuation must stay comment text.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t start_line = line;
      std::size_t j = i + 2;
      std::string text;
      while (j < n) {
        if (s[j] == '\n') {
          std::size_t back = j;
          while (back > i + 2 && s[back - 1] == '\r') --back;
          if (back > i + 2 && s[back - 1] == '\\') {
            ++line;
            text.push_back(' ');
            ++j;
            continue;
          }
          break;
        }
        text.push_back(s[j]);
        ++j;
      }
      out.comments.push_back(Comment{start_line, std::move(text)});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      std::size_t start_line = line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(s[j] == '*' && s[j + 1] == '/')) {
        if (s[j] == '\n') ++line;
        text.push_back(s[j]);
        ++j;
      }
      out.comments.push_back(Comment{start_line, std::move(text)});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < n && s[j] != quote) {
        if (s[j] == '\\' && j + 1 < n) ++j;
        if (s[j] == '\n') ++line;  // unterminated literal; stay line-accurate
        ++j;
      }
      push(Tok::kStr, "", line);
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(s[j])) ++j;
      const std::string ident = s.substr(i, j - i);
      // Raw strings, with or without encoding prefix: R"( u8R"( LR"( ...
      // The identifier scan owns this so `LR"(x)"` is never misread as
      // ident `LR` followed by an ordinary string.
      if (j < n && s[j] == '"' && is_raw_string_prefix(ident)) {
        const std::size_t stop = consume_raw_string(i, j);
        if (stop != i) {
          i = stop;
          continue;
        }
      }
      push(Tok::kIdent, ident, line);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) ++j;
      push(Tok::kNum, s.substr(i, j - i), line);
      i = j;
      continue;
    }
    // Two-char puncts the rules care about; everything else single-char.
    if (c == ':' && i + 1 < n && s[i + 1] == ':') {
      push(Tok::kPunct, "::", line);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && s[i + 1] == '>') {
      push(Tok::kPunct, "->", line);
      i += 2;
      continue;
    }
    push(Tok::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  if (p.rfind("./", 0) == 0) p.erase(0, 2);
  return p;
}

bool path_under(const std::string& path, const std::string& dir) {
  // `dir` like "src/ba": match a leading or embedded directory prefix.
  const std::string pre = dir + "/";
  return path.rfind(pre, 0) == 0 || path.find("/" + pre) != std::string::npos;
}

bool is_header_path(const std::string& path) {
  for (const char* ext : {".hpp", ".h", ".hh", ".hxx"}) {
    std::string e = ext;
    if (path.size() >= e.size() && path.compare(path.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

bool in_protocol_dir(const std::string& path) {
  return path_under(path, "src/ba") || path_under(path, "src/consensus") ||
         path_under(path, "src/srds") || path_under(path, "src/tree");
}

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

std::string quoted_include_target(const PpDirective& d) {
  std::size_t inc = d.text.find("include");
  if (inc == std::string::npos) return "";
  std::size_t open = d.text.find('"', inc);
  if (open == std::string::npos) return "";
  std::size_t close = d.text.find('"', open + 1);
  if (close == std::string::npos) return "";
  return d.text.substr(open + 1, close - (open + 1));
}

}  // namespace srds::lint

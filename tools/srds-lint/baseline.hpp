// Ratcheting lint baseline.
//
// `srds-lint --write-baseline LINT_BASELINE.json` records every currently
// blocking finding; `--baseline LINT_BASELINE.json` then fails CI on any
// finding *not* in the file (new violation) and on any entry whose finding
// no longer occurs (stale baseline — the fix landed but the entry was kept,
// which would let a later regression hide behind it). Both directions
// failing is what makes the count monotone: the only way the baseline
// changes is an explicit, reviewed `--write-baseline` commit, and it can
// only shrink unless a diff visibly adds entries.
//
// Entries are keyed (file, rule, line) exactly — a violation that moves
// lines shows up as one new + one stale and forces a baseline refresh, by
// design: the file stays a precise mirror of the tree, never a fuzzy
// allowlist. The JSON is byte-deterministic (sorted entries, no
// timestamps), same contract as the LINT_/BENCH_ artifacts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint.hpp"

namespace srds::lint {

struct BaselineEntry {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;  // informational; not part of the comparison key
};

struct Baseline {
  std::vector<BaselineEntry> entries;  // sorted by (file, line, rule)
};

/// Baseline of the current tree: every unsuppressed error-severity finding.
Baseline make_baseline(const std::vector<Finding>& findings);

/// {"tool":"srds-lint","schema":1,"baseline":[{file,line,rule,message}...]}
obs::Json baseline_json(const Baseline& b);

/// Parse a baseline artifact (the subset of JSON baseline_json emits). On
/// failure returns false with a one-line reason in `error`.
bool parse_baseline(const std::string& text, Baseline& out, std::string& error);

struct BaselineDiff {
  std::vector<Finding> fresh;        // blocking now, absent from the baseline
  std::vector<BaselineEntry> stale;  // in the baseline, no longer occurring
};

BaselineDiff diff_baseline(const std::vector<Finding>& findings, const Baseline& b);

/// Write `content` to `path`, creating missing parent directories first.
/// All artifact writes (--json, --write-baseline, --dot) go through this:
/// a fresh CI workspace handing us `artifacts/LINT_x.json` before anything
/// created `artifacts/` must not turn into a spurious failure exit.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace srds::lint

// Cross-TU dependency graph + L1 layering pass.
//
// The paper's protocol stack composes in one direction (common -> crypto ->
// net -> {srds,tree,snark,lb} -> {consensus,ba,mpc}); rule L1 makes that an
// enforced property of the include graph rather than a convention. The
// checked-in manifest tools/srds-lint/layers.toml declares, per module, the
// modules it may include directly; every quoted #include crossing a module
// boundary is checked against it. A violation is reported as the offending
// include edge (file:line, from-module -> to-module) and, when the edge
// lies on a module cycle, the shortest such cycle is appended — cycles are
// the failure mode that silently dissolves the layering under refactors.
//
// L1 has no inline allow(): a deliberately-kept back-edge is recorded in
// layers.toml next to a justification comment, so every exception lives in
// one reviewed file instead of being scattered through the tree.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace srds::lint {

struct LayerManifest {
  /// module -> allowed direct dependencies, in declaration order.
  std::vector<std::pair<std::string, std::vector<std::string>>> layers;
  /// Modules includable from anywhere (the observability layer).
  std::vector<std::string> open;
  /// Top-level directories with no layering constraints (bench, tests...).
  std::vector<std::string> unrestricted;

  const std::vector<std::string>* deps_of(const std::string& m) const;
  bool is_open(const std::string& m) const;
  bool is_unrestricted(const std::string& m) const;
  bool declares(const std::string& m) const { return deps_of(m) != nullptr; }
};

/// Parse the layers.toml subset used by the manifest:
///   [layers]           module = ["dep", ...] lines
///   [open]             modules = [...]
///   [unrestricted]     modules = [...]
/// '#' comments, blank lines. Rejects unknown sections/syntax, duplicate
/// modules, deps on undeclared modules, and — since the manifest *is* the
/// DAG — any cycle in the declared dependency relation. On failure returns
/// false with `error` = "line N: why".
bool parse_layers(const std::string& text, LayerManifest& out, std::string& error);

/// Module of a repo-relative path: "src/ba/x.cpp" -> "ba", "src/x.hpp" ->
/// "src", otherwise the first path component ("bench", "tests", "tools").
std::string module_of(const std::string& path);

/// One quoted include crossing a module boundary.
struct IncludeEdge {
  std::string from_file;
  std::size_t line = 0;
  std::string target;  // include text, e.g. "crypto/sha256.hpp"
  std::string from_module;
  std::string to_module;
};

struct DepGraph {
  std::vector<std::string> files;   // scanned paths, sorted
  std::vector<IncludeEdge> edges;   // cross-module edges, sorted by (file, line)
  /// module -> modules it includes (every edge, allowed or not).
  std::map<std::string, std::set<std::string>> module_edges;
};

/// Build the graph from (path, content) pairs. Only quoted includes whose
/// first path component differs from the including file's module become
/// edges; angle-bracket and same-module includes are ignored.
DepGraph build_dep_graph(const std::vector<std::pair<std::string, std::string>>& files);

/// Deterministic Graphviz DOT of the module graph (CI artifact).
std::string dep_graph_dot(const DepGraph& g);

/// The L1 check. Findings carry rule "L1" and are unsorted/unsuppressed raw
/// findings; the engine applies severity and ordering.
std::vector<Finding> check_layers(const DepGraph& g, const LayerManifest& m);

}  // namespace srds::lint

#include "baseline.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <tuple>

namespace srds::lint {

namespace {

auto entry_key(const BaselineEntry& e) { return std::tie(e.file, e.line, e.rule); }

/// Minimal JSON reader for the baseline schema: objects, arrays, strings
/// and unsigned integers — written independently of obs::Json (which is
/// writer-only by design; see src/obs/json.hpp).
class MiniJson {
 public:
  explicit MiniJson(const std::string& s) : s_(s) {}

  bool parse(Baseline& out, std::string& error) {
    try {
      skip_ws();
      expect('{');
      bool seen_baseline = false;
      while (true) {
        skip_ws();
        std::string key = string();
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "baseline") {
          parse_entries(out);
          seen_baseline = true;
        } else {
          skip_value();
        }
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
      if (!seen_baseline) throw std::string("missing \"baseline\" array");
      return true;
    } catch (const std::string& why) {
      error = "baseline parse error at byte " + std::to_string(pos_) + ": " + why;
      return false;
    }
  }

 private:
  [[noreturn]] void fail(const std::string& why) const { throw why; }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit");
          }
          if (code > 0xFF) fail("unsupported \\u escape");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  std::size_t integer() {
    std::size_t start = pos_;
    std::size_t v = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      v = v * 10 + static_cast<std::size_t>(s_[pos_] - '0');
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    return v;
  }

  void parse_entries(Baseline& out) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      expect('{');
      BaselineEntry e;
      while (true) {
        skip_ws();
        std::string key = string();
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "file") {
          e.file = string();
        } else if (key == "rule") {
          e.rule = string();
        } else if (key == "message") {
          e.message = string();
        } else if (key == "line") {
          e.line = integer();
        } else {
          skip_value();
        }
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
      if (e.file.empty() || e.rule.empty()) fail("entry missing file/rule");
      out.entries.push_back(std::move(e));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  void skip_value() {
    skip_ws();
    char c = peek();
    if (c == '"') {
      (void)string();
      return;
    }
    if (c == '{' || c == '[') {
      char close = (c == '{') ? '}' : ']';
      int depth = 0;
      bool in_str = false;
      while (pos_ < s_.size()) {
        char x = s_[pos_++];
        if (in_str) {
          if (x == '\\') ++pos_;
          else if (x == '"') in_str = false;
          continue;
        }
        if (x == '"') in_str = true;
        else if (x == c) ++depth;
        else if (x == close && --depth == 0) return;
      }
      fail("unterminated value");
    }
    // number / literal
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}' && s_[pos_] != ']') ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Baseline make_baseline(const std::vector<Finding>& findings) {
  Baseline b;
  for (const Finding& f : findings) {
    if (f.suppressed || f.severity != Severity::kError) continue;
    b.entries.push_back(BaselineEntry{f.file, f.line, f.rule, f.message});
  }
  std::sort(b.entries.begin(), b.entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& c) {
              return entry_key(a) < entry_key(c);
            });
  b.entries.erase(std::unique(b.entries.begin(), b.entries.end(),
                              [](const BaselineEntry& a, const BaselineEntry& c) {
                                return entry_key(a) == entry_key(c);
                              }),
                  b.entries.end());
  return b;
}

obs::Json baseline_json(const Baseline& b) {
  obs::Json arr = obs::Json::array();
  for (const BaselineEntry& e : b.entries) {
    obs::Json j = obs::Json::object();
    j.set("file", e.file);
    j.set("line", static_cast<unsigned long long>(e.line));
    j.set("rule", e.rule);
    j.set("message", e.message);
    arr.push_back(std::move(j));
  }
  obs::Json out = obs::Json::object();
  out.set("tool", "srds-lint");
  out.set("schema", 1);
  out.set("baseline", std::move(arr));
  return out;
}

bool parse_baseline(const std::string& text, Baseline& out, std::string& error) {
  out = Baseline{};
  if (!MiniJson(text).parse(out, error)) return false;
  std::sort(out.entries.begin(), out.entries.end(),
            [](const BaselineEntry& a, const BaselineEntry& c) {
              return entry_key(a) < entry_key(c);
            });
  return true;
}

BaselineDiff diff_baseline(const std::vector<Finding>& findings, const Baseline& b) {
  std::set<std::tuple<std::string, std::size_t, std::string>> listed;
  for (const BaselineEntry& e : b.entries) listed.insert({e.file, e.line, e.rule});

  std::set<std::tuple<std::string, std::size_t, std::string>> current;
  BaselineDiff d;
  for (const Finding& f : findings) {
    if (f.suppressed || f.severity != Severity::kError) continue;
    current.insert({f.file, f.line, f.rule});
    if (!listed.count({f.file, f.line, f.rule})) d.fresh.push_back(f);
  }
  for (const BaselineEntry& e : b.entries) {
    if (!current.count({e.file, e.line, e.rule})) d.stale.push_back(e);
  }
  return d;
}

bool write_text_file(const std::string& path, const std::string& content) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path(), ec);
  std::ofstream out(p, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace srds::lint
